package wal

import (
	"fmt"
	"io"

	"rept/internal/graph"
)

// Recovered is a log directory scanned by Recover, ready to be replayed
// and then reopened for appending. The intended sequence is
//
//	rec, _ := wal.Recover(backend, fpHash)
//	// decode rec.Snapshot, restore the estimator, note its Processed
//	pos, _ := rec.Replay(base, apply)      // base = snapshot Processed
//	lg, _  := rec.Log(opts)                // fresh segment at pos
type Recovered struct {
	be Backend
	fp uint64

	// Snapshot is the raw bytes of the directory's checkpoint, nil when
	// it has none (a fresh log, or one never compacted). The caller
	// decodes it with the snapshot package — its Processed tally is the
	// replay base.
	Snapshot []byte

	segs     []segment
	replayed bool
	base     uint64
	pos      uint64
}

// Recover scans the directory behind be: it loads the checkpoint bytes
// (if any), discards a leftover checkpoint.tmp from an interrupted
// compaction, and indexes the segment files by base position. Nothing is
// decoded yet — segment validation happens in Replay.
func Recover(be Backend, fpHash uint64) (*Recovered, error) {
	names, err := be.List()
	if err != nil {
		return nil, fmt.Errorf("wal: listing log directory: %w", err)
	}
	rec := &Recovered{be: be, fp: fpHash}
	for _, name := range names {
		switch name {
		case CheckpointName:
			f, err := be.Open(name)
			if err != nil {
				return nil, fmt.Errorf("wal: opening checkpoint: %w", err)
			}
			rec.Snapshot, err = io.ReadAll(f)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("wal: reading checkpoint: %w", err)
			}
		case CheckpointTmp:
			// An interrupted compaction's staging file: never published,
			// so its contents are meaningless. Best-effort cleanup.
			_ = be.Remove(name)
		default:
			if base, ok := parseSegName(name); ok {
				rec.segs = append(rec.segs, segment{name: name, base: base, end: base})
			}
			// Foreign files are left alone.
		}
	}
	sortSegments(rec.segs)
	return rec, nil
}

// Empty reports whether the directory held no log state at all — no
// checkpoint and no segments — so a caller can require an untouched
// directory (e.g. when seeding it from an external restore file).
func (r *Recovered) Empty() bool {
	return r.Snapshot == nil && len(r.segs) == 0
}

// Replay streams every event after base through apply, in stream order,
// exactly once. base is the position the caller's restored snapshot
// covers (0 for a fresh estimator). It returns the position one past the
// last replayed event. The slice passed to apply is reused between
// calls; apply must not retain it.
//
// The chain rule: pos starts at base and every segment, in base order,
// must start at or below pos (above is ErrGap — acknowledged events are
// missing). Records below pos are skipped, a record straddling pos is
// applied from pos on, and within a segment each record must start
// exactly where the previous ended (records are written sequentially, so
// anything else is a torn tail). A torn tail, short header, or CRC
// failure ends the segment's clean extent; that is harmless at the
// log's end — after a post-crash restart the next segment begins exactly
// there, or nothing does and the torn events were never acknowledged —
// but a tear that leaves a later segment's base unreachable is ErrGap.
// A fingerprint from a different configuration is ErrMismatch, and a
// header whose base contradicts the file name is ErrCorrupt (a copied
// or renamed segment, not a crash artifact).
func (r *Recovered) Replay(base uint64, apply func([]graph.Update) error) (uint64, error) {
	pos := base
	for i := range r.segs {
		seg := &r.segs[i]
		if seg.base > pos {
			return pos, fmt.Errorf("%w: segment %s starts at position %d but the log only covers up to %d", ErrGap, seg.name, seg.base, pos)
		}
		end, err := r.replaySegment(seg, pos, i == len(r.segs)-1, apply)
		if err != nil {
			return pos, err
		}
		seg.end = end
		if end > pos {
			pos = end
		}
	}
	r.replayed = true
	r.base = base
	r.pos = pos
	return pos, nil
}

// replaySegment scans one segment, applying the events above pos, and
// returns the end of the segment's clean record extent. last marks the
// final segment in base order, whose tail may be torn without error.
func (r *Recovered) replaySegment(seg *segment, pos uint64, last bool, apply func([]graph.Update) error) (uint64, error) {
	f, err := r.be.Open(seg.name)
	if err != nil {
		return seg.base, fmt.Errorf("wal: opening segment %s: %w", seg.name, err)
	}
	defer f.Close()
	// Count bytes as they are consumed so the clean extent's byte length
	// (snapshotted after each fully decoded record) can feed the reopened
	// log's live-size accounting.
	cr := &countingReader{r: f}
	hdr, err := readHeader(cr, r.fp)
	if err == errTorn {
		// A half-written header can only be the youngest segment,
		// created moments before the crash with nothing acknowledged
		// from it yet.
		if last {
			return seg.base, nil
		}
		return seg.base, fmt.Errorf("%w: segment %s has a garbled header but is not the last segment", ErrCorrupt, seg.name)
	}
	if err != nil {
		return seg.base, fmt.Errorf("segment %s: %w", seg.name, err)
	}
	if hdr.base != seg.base {
		return seg.base, fmt.Errorf("%w: segment %s declares base position %d in its header", ErrCorrupt, seg.name, hdr.base)
	}
	seg.bytes = cr.n
	segPos := seg.base
	rr := recordReader{r: cr}
	for {
		rec, err := rr.next()
		if err == io.EOF {
			return segPos, nil
		}
		if err == errTorn {
			if last {
				return segPos, nil
			}
			// A torn interior record is fine only if the successor
			// segment resumes exactly at the clean extent (the writer
			// restarted there after the crash that tore this one). The
			// caller's gap check enforces that; flag the tear only if
			// this segment was supposed to cover more.
			return segPos, nil
		}
		if err != nil {
			return segPos, fmt.Errorf("segment %s: %w", seg.name, err)
		}
		if rec.startPos != segPos {
			// Records are written strictly sequentially; a mismatched
			// start is trailing garbage from an earlier, longer life of
			// this file region. Treat as the end of the clean extent.
			return segPos, nil
		}
		end := segPos + uint64(len(rec.ups))
		if end > pos {
			ups := rec.ups
			if segPos < pos {
				ups = ups[pos-segPos:]
			}
			if err := apply(ups); err != nil {
				return segPos, fmt.Errorf("wal: replaying segment %s at position %d: %w", seg.name, segPos, err)
			}
			pos = end
		}
		segPos = end
		seg.bytes = cr.n
	}
}

// countingReader counts the bytes consumed from the underlying reader.
// replaySegment snapshots the count after each fully decoded record, so a
// torn tail's partial bytes never enter the clean extent.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Log reopens the directory for appending: a fresh active segment is
// started at the replayed position (torn tails are left behind in their
// sealed segments — the chain rule skips them on the next recovery).
// Replay must have been called first, even for an empty directory.
func (r *Recovered) Log(opt Options) (*Log, error) {
	if !r.replayed {
		return nil, fmt.Errorf("wal: Log called before Replay")
	}
	return open(r.be, r.fp, opt, r.pos, r.base, r.segs)
}
