package wal

import (
	"errors"
	"io"
	"testing"
)

func TestFailedSyncDoesNotAdvanceDurable(t *testing.T) {
	be := NewMemBackend()
	lg, _, _ := openFresh(t, be, 0, Options{})
	ups := testUpdates(200, 11)
	appendBatches(t, lg, ups[:100], 50)

	be.FailSync(1)
	if err := lg.Append(ups[100:150]); err != nil {
		t.Fatal(err)
	}
	if err := lg.Commit(); !errors.Is(err, ErrInjected) {
		t.Fatalf("commit under injected sync failure: %v, want ErrInjected", err)
	}
	st := lg.Stats()
	if st.DurablePos != 100 {
		t.Fatalf("failed sync advanced durable position to %d, want 100", st.DurablePos)
	}
	if !st.Failed {
		t.Fatal("stats do not report the sticky failure")
	}
	// The error is sticky: the log refuses further work.
	if err := lg.Append(ups[150:]); !errors.Is(err, ErrInjected) {
		t.Fatalf("append after failed sync: %v, want sticky ErrInjected", err)
	}
	if err := lg.Commit(); !errors.Is(err, ErrInjected) {
		t.Fatalf("commit after failed sync: %v, want sticky ErrInjected", err)
	}

	// Crash and recover: exactly the durable prefix survives.
	be.Crash()
	got, pos, err := replayAll(t, be)
	if err != nil {
		t.Fatal(err)
	}
	if pos != 100 {
		t.Fatalf("recovered to %d, want the durable prefix 100", pos)
	}
	wantUpdates(t, got, ups[:100])
}

func TestFailedMidAppendIsSticky(t *testing.T) {
	be := NewMemBackend()
	lg, _, _ := openFresh(t, be, 0, Options{})
	ups := testUpdates(150, 12)
	appendBatches(t, lg, ups[:100], 50)

	// The next file write tears half-way through the record.
	be.FailWrite(1)
	if err := lg.Append(ups[100:]); !errors.Is(err, ErrInjected) {
		t.Fatalf("append under injected write failure: %v, want ErrInjected", err)
	}
	st := lg.Stats()
	if st.AppendedPos != 100 || st.DurablePos != 100 {
		t.Fatalf("torn append moved positions: appended=%d durable=%d, want 100/100", st.AppendedPos, st.DurablePos)
	}
	if err := lg.Commit(); !errors.Is(err, ErrInjected) {
		t.Fatalf("commit after torn append: %v, want sticky ErrInjected", err)
	}

	// The half-written record is a torn tail: recovery cuts it off.
	be.Crash()
	got, pos, err := replayAll(t, be)
	if err != nil {
		t.Fatal(err)
	}
	if pos != 100 {
		t.Fatalf("recovered to %d, want 100", pos)
	}
	wantUpdates(t, got, ups[:100])
}

func TestFailedCompactionRenameLeavesLogRecoverable(t *testing.T) {
	be := NewMemBackend()
	lg, _, _ := openFresh(t, be, 0, Options{SegmentBytes: 256})
	ups := testUpdates(300, 13)
	appendBatches(t, lg, ups[:200], 25)

	// First compaction succeeds: checkpoint at 200.
	ck1 := []byte("checkpoint-at-200")
	err := lg.Compact(func(w io.Writer) (uint64, error) {
		_, err := w.Write(ck1)
		return 200, err
	})
	if err != nil {
		t.Fatal(err)
	}

	appendBatches(t, lg, ups[200:], 25)
	segsBefore := lg.Stats().Segments

	// Second compaction dies at the publish rename: the previous
	// checkpoint and every segment must stay untouched.
	be.FailRename(1)
	err = lg.Compact(func(w io.Writer) (uint64, error) {
		_, err := w.Write([]byte("checkpoint-at-300"))
		return 300, err
	})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("compaction under injected rename failure: %v, want ErrInjected", err)
	}
	if st := lg.Stats(); st.CheckpointPos != 200 {
		t.Fatalf("failed compaction moved the checkpoint to %d, want 200", st.CheckpointPos)
	}
	if st := lg.Stats(); st.Segments != segsBefore {
		t.Fatalf("failed compaction trimmed segments: %d, want %d", st.Segments, segsBefore)
	}

	// Crash: recovery must see the OLD checkpoint and replay the full
	// tail after it — nothing was lost to the failed compaction.
	be.Crash()
	rec, err := Recover(be, testFP)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Snapshot) != string(ck1) {
		t.Fatalf("recovered checkpoint %q, want %q", rec.Snapshot, ck1)
	}
	var c collector
	pos, err := rec.Replay(200, c.apply)
	if err != nil {
		t.Fatal(err)
	}
	if pos != 300 {
		t.Fatalf("recovered to %d, want 300", pos)
	}
	wantUpdates(t, c.ups, ups[200:])

	// And the log reopens and keeps working after the failed compaction.
	lg2, err := rec.Log(Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	more := testUpdates(50, 14)
	appendBatches(t, lg2, more, 25)
	if st := lg2.Stats(); st.DurablePos != 350 {
		t.Fatalf("post-recovery appends reached %d, want 350", st.DurablePos)
	}
}

func TestFailedCompactionWriteLeavesCheckpoint(t *testing.T) {
	be := NewMemBackend()
	lg, _, _ := openFresh(t, be, 0, Options{})
	appendBatches(t, lg, testUpdates(100, 15), 50)

	ck1 := []byte("checkpoint-at-100")
	if err := lg.Compact(func(w io.Writer) (uint64, error) {
		_, err := w.Write(ck1)
		return 100, err
	}); err != nil {
		t.Fatal(err)
	}

	// The snapshot writer itself fails mid-way (e.g. the estimator's
	// encoder hit an I/O error): the staged tmp file must not be
	// published.
	boom := errors.New("snapshot writer failed")
	err := lg.Compact(func(w io.Writer) (uint64, error) {
		_, _ = w.Write([]byte("partial gar"))
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("compaction with failing writer: %v, want the writer's error", err)
	}
	be.Crash()
	rec, err := Recover(be, testFP)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Snapshot) != string(ck1) {
		t.Fatalf("recovered checkpoint %q, want %q", rec.Snapshot, ck1)
	}
	// The abandoned tmp file is cleaned up by Recover.
	names, err := be.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == CheckpointTmp {
			t.Fatal("stale checkpoint.tmp survived recovery")
		}
	}
}
