// Package wal implements the append-only, segmented write-ahead log that
// closes REPT's durability gap between checkpoints: every accepted edge
// event (a signed graph.Update, exactly the payload the engines consume)
// is logged in arrival order, so recovery is "load the last REPTSNAP
// checkpoint, then replay the log tail" and an acknowledged event is
// never lost to a crash.
//
// # Position arithmetic
//
// The log is addressed by STREAM POSITION: the number of accepted
// non-loop events (insertions plus deletions) since the estimator was
// born — the same quantity the snapshot layer persists as Processed.
// Every record states the position of its first event, every segment
// header states the position its records start at, and a checkpoint
// covers exactly the prefix [0, Processed). Recovery therefore composes
// by position alone: replay skips any record the snapshot already
// covers, applies the sub-slice of a record that straddles the boundary,
// and detects missing data as a position gap. Self-loops are NOT logged
// (the ingest layer drops them before batching, and they do not touch
// estimator state); the self-loop tally is the one counter with a
// checkpoint-granularity loss window, documented at the API layer.
//
// # On-disk format
//
// A segment is
//
//	magic   "REPTWAL1"                  (8 bytes)
//	version byte                        (currently 1)
//	fphash  uint64 little-endian        (snapshot.Fingerprint.Hash)
//	base    uint64 little-endian        (stream position of first event)
//	records...
//
// and each record is
//
//	length  uint32 little-endian        (payload bytes)
//	crc32   uint32 little-endian        (IEEE, over the payload)
//	payload uvarint startPos,
//	        uvarint count,
//	        count × (uvarint u<<1|del, uvarint v)
//
// Segments are named wal-%016x.seg after their base position, so the
// directory listing alone orders them; the checkpoint lives next to them
// as checkpoint.reptsnap (written to checkpoint.tmp and renamed, so a
// crashed compaction never damages the previous checkpoint).
//
// # Crash semantics
//
// Appends become durable at Commit (one fsync per group of appended
// batches). A crash can therefore leave a torn tail: a partially written
// record, a record whose CRC fails, or a half-written segment header.
// Recovery treats the tail of the LAST segment as best-effort — the
// longest clean record prefix wins, everything after it is discarded as
// never-acknowledged — but holds interior segments to the strict chain
// rule: every position after the checkpoint must be covered by exactly
// the clean prefixes of the segments in base order, or recovery fails
// with a typed error (ErrCorrupt, ErrGap, ErrMismatch) instead of
// silently dropping acknowledged events.
//
// Persistence is abstracted behind the small Backend interface; DiskBackend
// is the production implementation and MemBackend the fault-injecting
// in-memory one the crash tests are built on.
package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Typed recovery errors. Replay failures wrap one of these so callers can
// distinguish "the directory is damaged" from "this log belongs to a
// different estimator".
var (
	// ErrCorrupt reports a structurally invalid segment where strictness
	// is required: a bad magic or version in an interior segment, or a
	// header whose base contradicts the segment's name.
	ErrCorrupt = errors.New("wal: corrupt")
	// ErrGap reports that the segment chain does not cover every position
	// after the checkpoint: events were acknowledged (they are referenced
	// by later positions) but their bytes are missing.
	ErrGap = errors.New("wal: position gap")
	// ErrMismatch reports a segment written under a different statistical
	// configuration (fingerprint hash differs).
	ErrMismatch = errors.New("wal: fingerprint mismatch")
)

const (
	segPrefix = "wal-"
	segSuffix = ".seg"
	// CheckpointName is the compacted snapshot the log folds sealed
	// segments into; CheckpointTmp is its atomic-rename staging name.
	CheckpointName = "checkpoint.reptsnap"
	CheckpointTmp  = "checkpoint.tmp"
)

// segName formats the canonical segment file name for a base position.
func segName(base uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, base, segSuffix)
}

// parseSegName extracts the base position from a segment file name,
// reporting ok=false for names that are not segments at all.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hexs := name[len(segPrefix) : len(name)-len(segSuffix)]
	if len(hexs) != 16 {
		return 0, false
	}
	var base uint64
	for i := 0; i < len(hexs); i++ {
		c := hexs[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0, false
		}
		base = base<<4 | d
	}
	return base, true
}

// File is one writable log file. Writes are buffered by the operating
// system (or the in-memory backend) until Sync, which must make every
// byte written so far durable before returning.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// Backend abstracts the directory a log lives in, so tests can inject
// faults (failed syncs, torn writes, reordered listings) without touching
// a real filesystem. Implementations must make Create, Rename, and Remove
// durably visible in the listing — DiskBackend fsyncs the directory —
// and Rename must be atomic with respect to crashes.
type Backend interface {
	// Create creates or truncates the named file for appending.
	Create(name string) (File, error)
	// Open opens the named file for reading from the start.
	Open(name string) (io.ReadCloser, error)
	// List returns the names of all files present, in no particular
	// order (recovery sorts; a backend is free to shuffle).
	List() ([]string, error)
	// Remove deletes the named file.
	Remove(name string) error
	// Rename atomically replaces newName with oldName's file.
	Rename(oldName, newName string) error
}

// DiskBackend stores log files in one local directory, fsyncing the
// directory after every namespace change so names survive a crash as
// reliably as the bytes behind them.
type DiskBackend struct {
	dir string
}

// NewDiskBackend opens (creating if needed) dir as a log directory.
func NewDiskBackend(dir string) (*DiskBackend, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &DiskBackend{dir: dir}, nil
}

// Dir returns the backing directory path.
func (b *DiskBackend) Dir() string { return b.dir }

// syncDir fsyncs the directory inode, making renames/creates/removes
// durable.
func (b *DiskBackend) syncDir() error {
	d, err := os.Open(b.dir)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// Create implements Backend.
func (b *DiskBackend) Create(name string) (File, error) {
	f, err := os.OpenFile(filepath.Join(b.dir, name), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return nil, err
	}
	if err := b.syncDir(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// Open implements Backend.
func (b *DiskBackend) Open(name string) (io.ReadCloser, error) {
	return os.Open(filepath.Join(b.dir, name))
}

// List implements Backend.
func (b *DiskBackend) List() ([]string, error) {
	ents, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// Remove implements Backend.
func (b *DiskBackend) Remove(name string) error {
	if err := os.Remove(filepath.Join(b.dir, name)); err != nil {
		return err
	}
	return b.syncDir()
}

// Rename implements Backend.
func (b *DiskBackend) Rename(oldName, newName string) error {
	if err := os.Rename(filepath.Join(b.dir, oldName), filepath.Join(b.dir, newName)); err != nil {
		return err
	}
	return b.syncDir()
}

// sortSegments orders segment infos by base position (equivalently by
// name, since the name embeds the zero-padded hex base).
func sortSegments(segs []segment) {
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
}

// segment is one log segment's identity plus, once scanned, the clean
// position extent of its records.
type segment struct {
	name string
	base uint64
	// end is the position one past the last cleanly decoded record,
	// filled in by Replay (end == base for an unscanned or empty
	// segment).
	end uint64
	// bytes is the byte length of the clean extent (header plus cleanly
	// decoded records), filled in by Replay for recovered segments and by
	// rotation for segments sealed in this process. Torn tail bytes are
	// excluded — they are dead weight the next recovery discards.
	bytes int64
}
