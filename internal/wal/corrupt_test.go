package wal

import (
	"errors"
	"testing"

	"rept/internal/graph"
)

// corpusDir builds a three-segment log directory: positions [0, 300) in
// ~100-event segments, all committed, then a crash. Returns the backend,
// the full event list, and the segment names in base order.
func corpusDir(t *testing.T) (*MemBackend, []graph.Update, []string) {
	t.Helper()
	be := NewMemBackend()
	lg, _, _ := openFresh(t, be, 0, Options{SegmentBytes: 512})
	ups := testUpdates(300, 42)
	appendBatches(t, lg, ups, 25)
	be.Crash()
	names, err := be.List()
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, n := range names {
		if _, ok := parseSegName(n); ok {
			segs = append(segs, n)
		}
	}
	if len(segs) < 3 {
		t.Fatalf("corpus needs >= 3 segments, got %v", segs)
	}
	return be, ups, segs
}

// replayAll recovers and replays from 0, returning the events, final
// position, and error.
func replayAll(t *testing.T, be Backend) ([]graph.Update, uint64, error) {
	t.Helper()
	rec, err := Recover(be, testFP)
	if err != nil {
		t.Fatal(err)
	}
	var c collector
	pos, err := rec.Replay(0, c.apply)
	return c.ups, pos, err
}

func TestTornTailLastSegment(t *testing.T) {
	be, ups, segs := corpusDir(t)
	last := segs[len(segs)-1]
	data, _ := be.Bytes(last)
	// Chop mid-way through the last segment's records: the clean record
	// prefix must survive, the torn record must vanish, no error.
	if err := be.Tear(last, len(data)-7); err != nil {
		t.Fatal(err)
	}
	got, pos, err := replayAll(t, be)
	if err != nil {
		t.Fatal(err)
	}
	if pos >= 300 || pos == 0 {
		t.Fatalf("torn tail recovered to %d, want a proper prefix", pos)
	}
	if pos%25 != 0 {
		t.Fatalf("recovered position %d is not a record boundary", pos)
	}
	wantUpdates(t, got, ups[:pos])
}

func TestTruncatedLengthPrefix(t *testing.T) {
	be, ups, segs := corpusDir(t)
	last := segs[len(segs)-1]
	base, _ := parseSegName(last)
	// Find the byte offset of the second record in the last segment and
	// cut 3 bytes into its length prefix.
	data, _ := be.Bytes(last)
	firstRecLen := recordByteLen(t, data)
	if err := be.Tear(last, headerLen+firstRecLen+3); err != nil {
		t.Fatal(err)
	}
	got, pos, err := replayAll(t, be)
	if err != nil {
		t.Fatal(err)
	}
	if pos != base+25 {
		t.Fatalf("recovered to %d, want exactly one record past base %d", pos, base)
	}
	wantUpdates(t, got, ups[:pos])
}

// recordByteLen reads the first record's total byte length from a
// segment image.
func recordByteLen(t *testing.T, seg []byte) int {
	t.Helper()
	if len(seg) < headerLen+recHdrLen {
		t.Fatal("segment too short")
	}
	payload := int(uint32(seg[headerLen]) | uint32(seg[headerLen+1])<<8 | uint32(seg[headerLen+2])<<16 | uint32(seg[headerLen+3])<<24)
	return recHdrLen + payload
}

func TestFlippedCRCLastSegmentIsPrefix(t *testing.T) {
	be, ups, segs := corpusDir(t)
	last := segs[len(segs)-1]
	data, _ := be.Bytes(last)
	// Flip a byte in the middle of the last segment's record area.
	if err := be.Corrupt(last, headerLen+(len(data)-headerLen)/2); err != nil {
		t.Fatal(err)
	}
	got, pos, err := replayAll(t, be)
	if err != nil {
		t.Fatal(err)
	}
	if pos >= 300 {
		t.Fatalf("flipped byte went unnoticed: recovered to %d", pos)
	}
	wantUpdates(t, got, ups[:pos])
}

func TestFlippedCRCInteriorSegmentIsGap(t *testing.T) {
	be, _, segs := corpusDir(t)
	mid := segs[1]
	data, _ := be.Bytes(mid)
	if err := be.Corrupt(mid, headerLen+(len(data)-headerLen)/2); err != nil {
		t.Fatal(err)
	}
	_, _, err := replayAll(t, be)
	if !errors.Is(err, ErrGap) {
		t.Fatalf("interior corruption: %v, want ErrGap", err)
	}
}

func TestGarbledInteriorHeader(t *testing.T) {
	be, _, segs := corpusDir(t)
	if err := be.Corrupt(segs[0], 2); err != nil { // magic byte
		t.Fatal(err)
	}
	_, _, err := replayAll(t, be)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbled interior header: %v, want ErrCorrupt", err)
	}
}

func TestGarbledLastHeaderIsEmptyTail(t *testing.T) {
	be, ups, segs := corpusDir(t)
	last := segs[len(segs)-1]
	base, _ := parseSegName(last)
	if err := be.Tear(last, headerLen/2); err != nil { // half a header
		t.Fatal(err)
	}
	got, pos, err := replayAll(t, be)
	if err != nil {
		t.Fatal(err)
	}
	if pos != base {
		t.Fatalf("recovered to %d, want the last segment ignored at %d", pos, base)
	}
	wantUpdates(t, got, ups[:pos])
}

func TestMissingInteriorSegmentIsGap(t *testing.T) {
	be, _, segs := corpusDir(t)
	if err := be.Remove(segs[1]); err != nil {
		t.Fatal(err)
	}
	_, _, err := replayAll(t, be)
	if !errors.Is(err, ErrGap) {
		t.Fatalf("missing interior segment: %v, want ErrGap", err)
	}
}

func TestCopiedSegmentUnderWrongNameIsCorrupt(t *testing.T) {
	be, _, segs := corpusDir(t)
	// Duplicate an interior segment under a name whose base lies inside
	// the chain: the header/name contradiction must be caught, not
	// replayed twice.
	data, _ := be.Bytes(segs[1])
	base1, _ := parseSegName(segs[1])
	be.SetBytes(segName(base1+1), data)
	_, _, err := replayAll(t, be)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("copied segment: %v, want ErrCorrupt", err)
	}
}

func TestOverlappingSegmentsReplayOnce(t *testing.T) {
	// Build overlapping coverage legitimately: a second log directory is
	// seeded at base 150 and fed the same stream's events [150, 300), so
	// its segment overlaps the first directory's [100, ...) segments
	// when copied in. Every event must replay exactly once.
	be, ups, _ := corpusDir(t)

	be2 := NewMemBackend()
	rec, err := Recover(be2, testFP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Replay(150, discard); err != nil {
		t.Fatal(err)
	}
	lg2, err := rec.Log(Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendBatches(t, lg2, ups[150:], 25)
	be2.Crash()
	overlap, ok := be2.Bytes(segName(150))
	if !ok {
		t.Fatal("overlap segment missing")
	}
	be.SetBytes(segName(150), overlap)

	got, pos, err := replayAll(t, be)
	if err != nil {
		t.Fatal(err)
	}
	if pos != 300 {
		t.Fatalf("recovered to %d, want 300", pos)
	}
	wantUpdates(t, got, ups)
}
