package wal

import (
	"io"
	"testing"

	"rept/internal/mem"
)

// sumBackendBytes totals the on-media size of every live file in the
// backend whose name looks like a segment.
func segmentDiskBytes(t *testing.T, be *MemBackend) int64 {
	t.Helper()
	names, err := be.List()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, n := range names {
		if _, ok := parseSegName(n); !ok {
			continue
		}
		data, ok := be.Bytes(n)
		if !ok {
			t.Fatalf("segment %s listed but unreadable", n)
		}
		total += int64(len(data))
	}
	return total
}

// TestStatsLiveBytes: LiveBytes tracks the clean on-disk footprint —
// sealed extents plus the active segment — exactly, across rotation,
// recovery, and compaction; and the accountant's wal_segments entry
// follows it.
func TestStatsLiveBytes(t *testing.T) {
	be := NewMemBackend()
	ac := mem.New()
	// Tiny segments force rotations.
	lg, _, _ := openFresh(t, be, 0, Options{SegmentBytes: 512, Mem: ac})

	ups := testUpdates(300, 42)
	appendBatches(t, lg, ups, 32)

	st := lg.Stats()
	if st.LiveBytes <= 0 {
		t.Fatalf("LiveBytes = %d after %d events, want > 0", st.LiveBytes, len(ups))
	}
	if st.Segments < 2 {
		t.Fatalf("Segments = %d with 512-byte rotation, want several", st.Segments)
	}
	if disk := segmentDiskBytes(t, be); st.LiveBytes != disk {
		t.Fatalf("LiveBytes = %d, backend holds %d segment bytes (no crash, so they must match)", st.LiveBytes, disk)
	}
	if got := ac.Bytes(mem.CompWALSegments); got != st.LiveBytes {
		t.Fatalf("ledger wal_segments = %d, Stats.LiveBytes = %d", got, st.LiveBytes)
	}
	// Disk-class bytes must not count toward the process-memory total.
	if total := ac.MemoryTotal(); total >= st.LiveBytes {
		t.Fatalf("MemoryTotal %d includes disk-class segment bytes %d", total, st.LiveBytes)
	}

	// Close returns every ledger charge.
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	if got := ac.Bytes(mem.CompWALSegments); got != 0 {
		t.Fatalf("ledger wal_segments = %d after Close, want 0", got)
	}
	if got := ac.Bytes(mem.CompWALBuffers); got != 0 {
		t.Fatalf("ledger wal_buffers = %d after Close, want 0", got)
	}

	// Recovery reconstructs the same footprint from the directory: the
	// sealed clean extents are re-measured by replay, the fresh active
	// segment starts at its header.
	ac2 := mem.New()
	lg2, pos, _ := openFresh(t, be, 0, Options{SegmentBytes: 512, Mem: ac2})
	if pos != uint64(len(ups)) {
		t.Fatalf("recovered to %d, want %d", pos, len(ups))
	}
	st2 := lg2.Stats()
	if disk := segmentDiskBytes(t, be); st2.LiveBytes != disk {
		t.Fatalf("recovered LiveBytes = %d, backend holds %d", st2.LiveBytes, disk)
	}
	if got := ac2.Bytes(mem.CompWALSegments); got != st2.LiveBytes {
		t.Fatalf("recovered ledger wal_segments = %d, LiveBytes = %d", got, st2.LiveBytes)
	}

	// Compaction trims sealed segments: LiveBytes and the ledger drop by
	// exactly the trimmed extents.
	if err := lg2.Compact(func(w io.Writer) (uint64, error) {
		_, err := w.Write([]byte("snapshot-stand-in"))
		return uint64(len(ups)), err
	}); err != nil {
		t.Fatal(err)
	}
	st3 := lg2.Stats()
	if st3.LiveBytes >= st2.LiveBytes {
		t.Fatalf("LiveBytes %d did not shrink from %d after compaction", st3.LiveBytes, st2.LiveBytes)
	}
	if disk := segmentDiskBytes(t, be); st3.LiveBytes != disk {
		t.Fatalf("post-compaction LiveBytes = %d, backend holds %d", st3.LiveBytes, disk)
	}
	if got := ac2.Bytes(mem.CompWALSegments); got != st3.LiveBytes {
		t.Fatalf("post-compaction ledger wal_segments = %d, LiveBytes = %d", got, st3.LiveBytes)
	}
	if err := lg2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := ac2.Bytes(mem.CompWALSegments); got != 0 {
		t.Fatalf("ledger wal_segments = %d after second Close, want 0", got)
	}
}

// TestLiveBytesExcludesTornTail: a torn tail (simulated crash mid-append)
// is not part of the clean extent the next recovery reports.
func TestLiveBytesExcludesTornTail(t *testing.T) {
	be := NewMemBackend()
	lg, _, _ := openFresh(t, be, 0, Options{Mem: mem.New()})
	ups := testUpdates(64, 7)
	appendBatches(t, lg, ups, 16)
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear 3 bytes off the (only) segment's end: the last record becomes
	// a torn tail.
	names, err := be.List()
	if err != nil {
		t.Fatal(err)
	}
	var seg string
	for _, n := range names {
		if _, ok := parseSegName(n); ok {
			seg = n
		}
	}
	if seg == "" {
		t.Fatal("no segment file found")
	}
	full, _ := be.Bytes(seg)
	if err := be.Tear(seg, 3); err != nil {
		t.Fatal(err)
	}

	ac := mem.New()
	lg2, pos, _ := openFresh(t, be, 0, Options{Mem: ac})
	defer lg2.Close()
	if pos >= uint64(len(ups)) {
		t.Fatalf("recovered to %d despite a torn tail, want < %d", pos, len(ups))
	}
	st := lg2.Stats()
	// The sealed clean extent must be strictly shorter than the original
	// file (the torn record is excluded), and the ledger must agree.
	sealedClean := st.LiveBytes - st.ActiveBytes
	if sealedClean >= int64(len(full)) {
		t.Fatalf("clean extent %d not shorter than pre-tear segment %d", sealedClean, len(full))
	}
	if got := ac.Bytes(mem.CompWALSegments); got != st.LiveBytes {
		t.Fatalf("ledger wal_segments = %d, LiveBytes = %d", got, st.LiveBytes)
	}
}
