package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"rept/internal/graph"
)

const (
	version = 1

	headerLen = 8 + 1 + 8 + 8 // magic + version + fingerprint hash + base
	recHdrLen = 4 + 4         // payload length + payload crc32

	// maxRecordBytes bounds a single record's payload. The writer never
	// comes close (a batch is a few thousand events), so any length above
	// it is corruption and the reader can reject it before allocating.
	maxRecordBytes = 1 << 26
	// maxPrealloc caps slice pre-allocation from decoded counts, so a
	// corrupt count cannot OOM the reader before the bytes run out.
	maxPrealloc = 1 << 12
)

var segMagic = [8]byte{'R', 'E', 'P', 'T', 'W', 'A', 'L', '1'}

// putHeader encodes a segment header.
func putHeader(buf *[headerLen]byte, fp, base uint64) {
	copy(buf[:8], segMagic[:])
	buf[8] = version
	binary.LittleEndian.PutUint64(buf[9:17], fp)
	binary.LittleEndian.PutUint64(buf[17:25], base)
}

// headerInfo is a decoded segment header.
type headerInfo struct {
	fp   uint64
	base uint64
}

// errTorn is the internal sentinel for "the bytes stop making sense
// here": short reads, CRC failures, impossible lengths. Whether that is
// fine (tail of the last segment) or fatal (interior segment not covered
// by its successor) is decided by the chain rule in Replay, not here.
var errTorn = errors.New("wal: torn")

// readHeader decodes a segment header from r. It reports errTorn for a
// short or garbled header (possible for a segment created just before a
// crash) and ErrMismatch for a well-formed header with the wrong
// fingerprint.
func readHeader(r io.Reader, wantFP uint64) (headerInfo, error) {
	var buf [headerLen]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return headerInfo{}, errTorn
	}
	if [8]byte(buf[:8]) != segMagic || buf[8] != version {
		return headerInfo{}, errTorn
	}
	h := headerInfo{
		fp:   binary.LittleEndian.Uint64(buf[9:17]),
		base: binary.LittleEndian.Uint64(buf[17:25]),
	}
	if h.fp != wantFP {
		return h, fmt.Errorf("%w: segment written under fingerprint %#x, want %#x", ErrMismatch, h.fp, wantFP)
	}
	return h, nil
}

// record is one decoded log record.
type record struct {
	startPos uint64
	ups      []graph.Update
}

// recordReader decodes the record stream of one segment. It reuses its
// buffers across records; the returned record's ups slice is only valid
// until the next call.
type recordReader struct {
	r   io.Reader
	buf []byte
	ups []graph.Update
}

// next decodes the next record. It returns io.EOF at a clean end of the
// segment and errTorn for anything undecodable — the caller applies the
// chain rule to decide whether torn is acceptable.
func (rr *recordReader) next() (record, error) {
	var hdr [recHdrLen]byte
	if _, err := io.ReadFull(rr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return record{}, io.EOF
		}
		return record{}, errTorn // partial record header
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
	if length == 0 || length > maxRecordBytes {
		return record{}, errTorn
	}
	if cap(rr.buf) < int(length) {
		n := cap(rr.buf) * 2
		if n < int(length) {
			n = int(length)
		}
		if n > maxRecordBytes {
			n = maxRecordBytes
		}
		rr.buf = make([]byte, n)
	}
	payload := rr.buf[:length]
	if _, err := io.ReadFull(rr.r, payload); err != nil {
		return record{}, errTorn
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return record{}, errTorn
	}
	rec := record{ups: rr.ups[:0]}
	pos := 0
	var ok bool
	if rec.startPos, pos, ok = uvarintAt(payload, pos); !ok {
		return record{}, errTorn
	}
	var count uint64
	if count, pos, ok = uvarintAt(payload, pos); !ok {
		return record{}, errTorn
	}
	// Two varints of at least one byte each per event: a count the
	// remaining bytes cannot possibly hold is corruption, reject before
	// allocating for it.
	if count == 0 || count > uint64(len(payload)-pos) {
		return record{}, errTorn
	}
	if cap(rec.ups) < int(count) && cap(rec.ups) < maxPrealloc {
		rec.ups = make([]graph.Update, 0, min(int(count), maxPrealloc))
	}
	for i := uint64(0); i < count; i++ {
		var uv, v uint64
		if uv, pos, ok = uvarintAt(payload, pos); !ok {
			return record{}, errTorn
		}
		if v, pos, ok = uvarintAt(payload, pos); !ok {
			return record{}, errTorn
		}
		u := uv >> 1
		if u > math.MaxUint32 || v > math.MaxUint32 || u == v {
			return record{}, errTorn
		}
		rec.ups = append(rec.ups, graph.Update{
			U:   graph.NodeID(u),
			V:   graph.NodeID(v),
			Del: uv&1 != 0,
		})
	}
	if pos != len(payload) {
		return record{}, errTorn // trailing garbage inside a valid CRC: impossible from the writer
	}
	rr.ups = rec.ups[:0]
	return rec, nil
}

// uvarintAt decodes one uvarint from p at offset off.
func uvarintAt(p []byte, off int) (uint64, int, bool) {
	x, n := binary.Uvarint(p[off:])
	if n <= 0 {
		return 0, off, false
	}
	return x, off + n, true
}
