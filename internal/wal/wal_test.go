package wal

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"rept/internal/graph"
)

const testFP = 0x5eed5eed5eed5eed

// testUpdates builds n deterministic loop-free signed events.
func testUpdates(n int, seed uint64) []graph.Update {
	ups := make([]graph.Update, n)
	x := seed*0x9e3779b97f4a7c15 + 1
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	for i := range ups {
		u := graph.NodeID(next() % 1000)
		v := graph.NodeID(next() % 1000)
		if u == v {
			v++
		}
		ups[i] = graph.Update{U: u, V: v, Del: next()%4 == 0}
	}
	return ups
}

// discard is a no-op replay sink.
func discard([]graph.Update) error { return nil }

// collector accumulates replayed events.
type collector struct {
	ups []graph.Update
}

func (c *collector) apply(ups []graph.Update) error {
	c.ups = append(c.ups, ups...)
	return nil
}

// openFresh recovers an empty (or existing) directory and opens a log.
func openFresh(t *testing.T, be Backend, base uint64, opt Options) (*Log, uint64, []graph.Update) {
	t.Helper()
	rec, err := Recover(be, testFP)
	if err != nil {
		t.Fatal(err)
	}
	var c collector
	pos, err := rec.Replay(base, c.apply)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := rec.Log(opt)
	if err != nil {
		t.Fatal(err)
	}
	return lg, pos, c.ups
}

// appendBatches feeds ups to lg in batches of batchLen, committing after
// each batch.
func appendBatches(t *testing.T, lg *Log, ups []graph.Update, batchLen int) {
	t.Helper()
	for len(ups) > 0 {
		n := min(batchLen, len(ups))
		if err := lg.Append(ups[:n]); err != nil {
			t.Fatal(err)
		}
		if err := lg.Commit(); err != nil {
			t.Fatal(err)
		}
		ups = ups[n:]
	}
}

func wantUpdates(t *testing.T, got, want []graph.Update) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestRoundTripAfterCrash(t *testing.T) {
	be := NewMemBackend()
	lg, pos, _ := openFresh(t, be, 0, Options{})
	if pos != 0 {
		t.Fatalf("fresh log starts at %d, want 0", pos)
	}
	ups := testUpdates(1000, 1)
	appendBatches(t, lg, ups, 64)

	// One more batch appended but NOT committed: a crash must drop it.
	tail := testUpdates(32, 2)
	if err := lg.Append(tail); err != nil {
		t.Fatal(err)
	}
	st := lg.Stats()
	if st.AppendedPos != 1032 || st.DurablePos != 1000 {
		t.Fatalf("stats appended=%d durable=%d, want 1032/1000", st.AppendedPos, st.DurablePos)
	}
	be.Crash()

	_, pos, got := openFresh(t, be, 0, Options{})
	if pos != 1000 {
		t.Fatalf("recovered to position %d, want 1000", pos)
	}
	wantUpdates(t, got, ups)
}

func TestRotationAndShuffledListing(t *testing.T) {
	be := NewMemBackend()
	be.ShuffleList(true)
	lg, _, _ := openFresh(t, be, 0, Options{SegmentBytes: 256})
	ups := testUpdates(2000, 3)
	appendBatches(t, lg, ups, 50)
	if st := lg.Stats(); st.Segments < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", st.Segments)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}

	_, pos, got := openFresh(t, be, 0, Options{SegmentBytes: 256})
	if pos != 2000 {
		t.Fatalf("recovered to position %d, want 2000", pos)
	}
	wantUpdates(t, got, ups)
}

func TestCleanShutdownDurableWithoutCommit(t *testing.T) {
	be := NewMemBackend()
	lg, _, _ := openFresh(t, be, 0, Options{})
	ups := testUpdates(100, 4)
	if err := lg.Append(ups); err != nil {
		t.Fatal(err)
	}
	// Close syncs: a clean shutdown loses nothing even in interval mode.
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	be.Crash()
	_, pos, got := openFresh(t, be, 0, Options{})
	if pos != 100 {
		t.Fatalf("recovered to position %d, want 100", pos)
	}
	wantUpdates(t, got, ups)
}

func TestCompactionTrimsAndRecovers(t *testing.T) {
	be := NewMemBackend()
	lg, _, _ := openFresh(t, be, 0, Options{SegmentBytes: 256})
	ups := testUpdates(1500, 5)
	appendBatches(t, lg, ups[:1000], 50)

	// Compact at position 1000: the checkpoint is opaque to the wal
	// layer, so persist a marker blob the recovery below can verify.
	snapBytes := []byte("snapshot-covering-1000")
	err := lg.Compact(func(w io.Writer) (uint64, error) {
		_, err := w.Write(snapBytes)
		return 1000, err
	})
	if err != nil {
		t.Fatal(err)
	}
	st := lg.Stats()
	if st.CheckpointPos != 1000 {
		t.Fatalf("checkpoint position %d, want 1000", st.CheckpointPos)
	}
	if st.Segments > 2 {
		t.Fatalf("compaction left %d segments, want the active one and at most one straddler", st.Segments)
	}

	appendBatches(t, lg, ups[1000:], 50)
	be.Crash()

	rec, err := Recover(be, testFP)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Snapshot, snapBytes) {
		t.Fatalf("recovered checkpoint %q, want %q", rec.Snapshot, snapBytes)
	}
	var c collector
	pos, err := rec.Replay(1000, c.apply)
	if err != nil {
		t.Fatal(err)
	}
	if pos != 1500 {
		t.Fatalf("recovered to position %d, want 1500", pos)
	}
	wantUpdates(t, c.ups, ups[1000:])
}

func TestReplayStraddlesCheckpointBoundary(t *testing.T) {
	be := NewMemBackend()
	lg, _, _ := openFresh(t, be, 0, Options{})
	ups := testUpdates(100, 6)
	// One 100-event record; a checkpoint at 60 cuts through it.
	if err := lg.Append(ups); err != nil {
		t.Fatal(err)
	}
	if err := lg.Commit(); err != nil {
		t.Fatal(err)
	}
	be.Crash()

	rec, err := Recover(be, testFP)
	if err != nil {
		t.Fatal(err)
	}
	var c collector
	pos, err := rec.Replay(60, c.apply)
	if err != nil {
		t.Fatal(err)
	}
	if pos != 100 {
		t.Fatalf("recovered to position %d, want 100", pos)
	}
	wantUpdates(t, c.ups, ups[60:])
}

func TestRepeatedRestartsDoNotAccumulateSegments(t *testing.T) {
	be := NewMemBackend()
	lg, _, _ := openFresh(t, be, 0, Options{})
	appendBatches(t, lg, testUpdates(10, 7), 10)
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		lg, pos, _ := openFresh(t, be, 0, Options{})
		if pos != 10 {
			t.Fatalf("restart %d: position %d, want 10", i, pos)
		}
		if err := lg.Close(); err != nil {
			t.Fatal(err)
		}
	}
	names, err := be.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) > 3 {
		t.Fatalf("idle restarts accumulated files: %v", names)
	}
}

func TestLogRequiresReplay(t *testing.T) {
	be := NewMemBackend()
	rec, err := Recover(be, testFP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Log(Options{}); err == nil {
		t.Fatal("Log before Replay succeeded")
	}
}

func TestFingerprintMismatch(t *testing.T) {
	be := NewMemBackend()
	lg, _, _ := openFresh(t, be, 0, Options{})
	appendBatches(t, lg, testUpdates(10, 8), 10)
	be.Crash()

	rec, err := Recover(be, testFP+1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = rec.Replay(0, discard)
	if !errors.Is(err, ErrMismatch) {
		t.Fatalf("replay under a different fingerprint: %v, want ErrMismatch", err)
	}
}
