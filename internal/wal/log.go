package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"rept/internal/graph"
	"rept/internal/mem"
	"rept/internal/obs"
)

// DefaultSegmentBytes is the rotation threshold when Options leaves
// SegmentBytes zero.
const DefaultSegmentBytes = 64 << 20

// Options shape a Log opened by Recovered.Log.
type Options struct {
	// SegmentBytes is the rotation threshold: after a Commit that leaves
	// the active segment at or past this many bytes, the segment is
	// sealed and a fresh one started. Defaults to DefaultSegmentBytes.
	SegmentBytes int64
	// AppendHist, when non-nil, records the latency of every Append
	// (record encode plus buffered write). Telemetry only; nil disables.
	AppendHist *obs.Histogram
	// SyncHist, when non-nil, records the latency of every Commit sync —
	// the group-commit fsync, usually the widest bar in the pipeline.
	SyncHist *obs.Histogram
	// Flight, when non-nil, receives one wal_append event per Append
	// (value = events in the record) and one wal_sync event per Commit
	// (value = the durable stream position).
	Flight *obs.Flight
	// Mem, when non-nil, receives the log's byte accounting: the reused
	// group-commit record buffer under mem.CompWALBuffers (heap), and the
	// live segment bytes owned by this log — sealed clean extents plus
	// the active segment — under mem.CompWALSegments (disk-class, so it
	// is excluded from the accountant's MemoryTotal). Observational only;
	// never part of the statistical fingerprint.
	Mem *mem.Accountant
}

// Stats is a point-in-time view of a Log's positions and size, safe to
// read from any goroutine.
type Stats struct {
	// AppendedPos is the stream position one past the last appended
	// event (durable only up to DurablePos).
	AppendedPos uint64
	// DurablePos is the stream position covered by the last successful
	// Commit — the position an acknowledged client write is never rolled
	// back behind.
	DurablePos uint64
	// CheckpointPos is the stream position the last compacted checkpoint
	// covers; segments wholly below it are trimmed by Compact.
	CheckpointPos uint64
	// Segments counts live segment files, including the active one.
	Segments int
	// ActiveBytes is the byte size of the active (unsealed) segment.
	ActiveBytes int64
	// LiveBytes is the total byte size of the log's live data: the clean
	// extents of every sealed segment plus the active segment. Torn tail
	// bytes left behind by a crash are excluded (the next recovery
	// discards them), so this is the floor of the directory's footprint,
	// and exactly what Compact can shrink.
	LiveBytes int64
	// Failed reports a sticky append/sync error: the log stopped
	// accepting writes and every durable ingest since has been refused.
	Failed bool
}

// Log is an open write-ahead log. Append, Commit, and Close must be
// driven by ONE goroutine (the ingest layer's dedicated logger); Compact
// and Stats are safe from any goroutine concurrently with it. Errors are
// sticky: after a failed write or sync the log refuses further appends,
// because a hole in the middle of a segment cannot be represented.
type Log struct {
	be Backend
	fp uint64

	segBytes int64

	// Telemetry instruments (Options.AppendHist/SyncHist/Flight); nil
	// when off.
	appendHist *obs.Histogram
	syncHist   *obs.Histogram
	flight     *obs.Flight

	// acct receives byte accounting (Options.Mem; nil-safe). acBuf is the
	// record buffer capacity last reported under CompWALBuffers
	// (appender-owned); segment bytes flow to CompWALSegments wherever
	// sealedBytes/activeBytes change.
	acct  *mem.Accountant
	acBuf int64

	// Appender-owned state (single goroutine).
	buf         []byte
	active      File
	activeBase  uint64
	activeBytes int64
	pos         uint64
	err         error

	// mu guards the sealed-segment list, its total clean-extent bytes,
	// and the checkpoint position, shared between the appender (rotation)
	// and Compact (trimming).
	mu          sync.Mutex
	sealed      []segment
	sealedBytes int64
	ckptPos     uint64

	// compactMu serializes whole Compact calls: two at once would race on
	// the shared checkpoint temp-file name.
	compactMu sync.Mutex

	// Published mirrors for Stats readers.
	statAppended atomic.Uint64
	statDurable  atomic.Uint64
	statCkpt     atomic.Uint64
	statSegments atomic.Int64
	statActiveB  atomic.Int64
	statSealedB  atomic.Int64
	statFailed   atomic.Bool
}

// open starts a fresh active segment at position pos over the given
// sealed history. The header is written and synced before open returns,
// so the segment is well-formed on disk from the start.
func open(be Backend, fp uint64, opt Options, pos, ckptPos uint64, sealed []segment) (*Log, error) {
	segBytes := opt.SegmentBytes
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	l := &Log{
		be:         be,
		fp:         fp,
		segBytes:   segBytes,
		appendHist: opt.AppendHist,
		syncHist:   opt.SyncHist,
		flight:     opt.Flight,
		acct:       opt.Mem,
		pos:        pos,
		ckptPos:    ckptPos,
		sealed:     sealed,
	}
	// A recovered segment whose base is exactly pos would collide with
	// the new active segment's name. Its clean extent is necessarily
	// empty (base == end == pos: a crash right after rotation, or a
	// fully torn tail), so replacing it loses nothing.
	if n := len(l.sealed); n > 0 && l.sealed[n-1].base == pos {
		last := l.sealed[n-1]
		l.sealed = l.sealed[:n-1]
		if err := be.Remove(last.name); err != nil {
			return nil, fmt.Errorf("wal: removing empty segment %s: %w", last.name, err)
		}
	}
	for _, s := range l.sealed {
		l.sealedBytes += s.bytes
	}
	l.statSealedB.Store(l.sealedBytes)
	l.acct.Add(mem.CompWALSegments, l.sealedBytes)
	if err := l.startSegment(pos); err != nil {
		return nil, err
	}
	l.statAppended.Store(pos)
	l.statDurable.Store(pos)
	l.statCkpt.Store(ckptPos)
	l.statSegments.Store(int64(len(l.sealed)) + 1)
	return l, nil
}

// startSegment creates and headers a fresh active segment at base.
func (l *Log) startSegment(base uint64) error {
	f, err := l.be.Create(segName(base))
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	var hdr [headerLen]byte
	putHeader(&hdr, l.fp, base)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing segment header: %w", err)
	}
	l.active = f
	l.activeBase = base
	l.activeBytes = headerLen
	l.statActiveB.Store(headerLen)
	l.acct.Add(mem.CompWALSegments, headerLen)
	return nil
}

// Append encodes ups as one record at the current position and writes it
// to the active segment. The record is NOT durable until the next
// Commit. ups must be non-empty and already loop-free (the ingest layer
// filters self-loops before batching). Append is the per-batch hot path:
// the record buffer is reused and only ever grows, so steady state is
// allocation-free.
//
//rept:hotpath
func (l *Log) Append(ups []graph.Update) error {
	if l.err != nil {
		return l.err
	}
	var start time.Time
	if l.appendHist != nil {
		start = time.Now()
	}
	l.buf = l.buf[:0]
	l.buf = append(l.buf, 0, 0, 0, 0, 0, 0, 0, 0) // length + crc backfilled below
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], l.pos)
	l.buf = append(l.buf, tmp[:n]...)
	n = binary.PutUvarint(tmp[:], uint64(len(ups)))
	l.buf = append(l.buf, tmp[:n]...)
	for _, up := range ups {
		uv := uint64(up.U) << 1
		if up.Del {
			uv |= 1
		}
		n = binary.PutUvarint(tmp[:], uv)
		l.buf = append(l.buf, tmp[:n]...)
		n = binary.PutUvarint(tmp[:], uint64(up.V))
		l.buf = append(l.buf, tmp[:n]...)
	}
	binary.LittleEndian.PutUint32(l.buf[0:4], uint32(len(l.buf)-recHdrLen))
	binary.LittleEndian.PutUint32(l.buf[4:8], crc32.ChecksumIEEE(l.buf[recHdrLen:]))
	if _, err := l.active.Write(l.buf); err != nil {
		l.err = err
		l.statFailed.Store(true)
		return err
	}
	l.pos += uint64(len(ups))
	l.activeBytes += int64(len(l.buf))
	l.statAppended.Store(l.pos)
	l.statActiveB.Store(l.activeBytes)
	l.acct.Add(mem.CompWALSegments, int64(len(l.buf)))
	if c := int64(cap(l.buf)); c != l.acBuf {
		l.acct.Add(mem.CompWALBuffers, c-l.acBuf)
		l.acBuf = c
	}
	if l.appendHist != nil {
		d := time.Since(start)
		l.appendHist.ObserveDuration(d)
		l.flight.Record(obs.KindWALAppend, -1, uint64(len(ups)), d)
	}
	return nil
}

// Commit makes every appended record durable (one sync — the group
// commit boundary) and rotates the active segment once it has grown past
// the threshold. Acknowledge clients only after Commit returns nil.
func (l *Log) Commit() error {
	if l.err != nil {
		return l.err
	}
	var start time.Time
	if l.syncHist != nil {
		start = time.Now()
	}
	if err := l.active.Sync(); err != nil {
		l.err = err
		l.statFailed.Store(true)
		return err
	}
	if l.syncHist != nil {
		d := time.Since(start)
		l.syncHist.ObserveDuration(d)
		l.flight.Record(obs.KindWALSync, -1, l.pos, d)
	}
	l.statDurable.Store(l.pos)
	if l.activeBytes >= l.segBytes {
		return l.rotate()
	}
	return nil
}

// rotate seals the active segment and starts a fresh one at the current
// position. The caller has just synced, so the sealed segment is durable
// through its end.
func (l *Log) rotate() error {
	if err := l.active.Close(); err != nil {
		l.err = err
		l.statFailed.Store(true)
		return fmt.Errorf("wal: sealing segment: %w", err)
	}
	l.mu.Lock()
	l.sealed = append(l.sealed, segment{name: segName(l.activeBase), base: l.activeBase, end: l.pos, bytes: l.activeBytes})
	l.sealedBytes += l.activeBytes
	l.statSealedB.Store(l.sealedBytes)
	l.mu.Unlock()
	if err := l.startSegment(l.pos); err != nil {
		l.err = err
		l.statFailed.Store(true)
		return err
	}
	l.statSegments.Add(1)
	return nil
}

// Compact folds the log prefix into a checkpoint: write persists a
// snapshot (returning the stream position it covers — for REPT, the
// snapshot's Processed tally) to a temporary file that is synced and
// atomically renamed over the previous checkpoint, and every sealed
// segment wholly covered by it is then removed. A crash or error at any
// point leaves the previous checkpoint and all segments intact, so the
// directory stays recoverable. Safe to call concurrently with Append,
// Commit, and other Compact calls (concurrent compactions serialize).
func (l *Log) Compact(write func(io.Writer) (uint64, error)) error {
	l.compactMu.Lock()
	defer l.compactMu.Unlock()
	f, err := l.be.Create(CheckpointTmp)
	if err != nil {
		return fmt.Errorf("wal: creating checkpoint: %w", err)
	}
	pos, err := write(f)
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: writing checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: closing checkpoint: %w", err)
	}
	if err := l.be.Rename(CheckpointTmp, CheckpointName); err != nil {
		return fmt.Errorf("wal: publishing checkpoint: %w", err)
	}
	// The checkpoint is durable; trim every sealed segment it covers.
	l.mu.Lock()
	if pos > l.ckptPos {
		l.ckptPos = pos
		l.statCkpt.Store(pos)
	}
	var trim []segment
	kept := l.sealed[:0]
	for _, s := range l.sealed {
		if s.end <= l.ckptPos {
			trim = append(trim, s)
			l.sealedBytes -= s.bytes
			l.acct.Add(mem.CompWALSegments, -s.bytes)
		} else {
			kept = append(kept, s)
		}
	}
	l.sealed = kept
	l.statSealedB.Store(l.sealedBytes)
	l.mu.Unlock()
	var firstErr error
	for _, s := range trim {
		if err := l.be.Remove(s.name); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("wal: trimming segment %s: %w", s.name, err)
		}
		l.statSegments.Add(-1)
	}
	return firstErr
}

// Stats returns the log's current positions and sizes.
func (l *Log) Stats() Stats {
	return Stats{
		AppendedPos:   l.statAppended.Load(),
		DurablePos:    l.statDurable.Load(),
		CheckpointPos: l.statCkpt.Load(),
		Segments:      int(l.statSegments.Load()),
		ActiveBytes:   l.statActiveB.Load(),
		LiveBytes:     l.statSealedB.Load() + l.statActiveB.Load(),
		Failed:        l.statFailed.Load(),
	}
}

// Close syncs and closes the active segment; appends after Close fail.
// Close is idempotent and returns the first error of its own sync/close
// pair (a prior sticky append error does not resurface here — the
// ingest layer already saw it).
func (l *Log) Close() error {
	if l.active == nil {
		return nil
	}
	var ret error
	if l.err == nil {
		if err := l.active.Sync(); err != nil {
			l.err = err
			l.statFailed.Store(true)
			ret = err
		} else {
			l.statDurable.Store(l.pos)
		}
	}
	if err := l.active.Close(); err != nil && ret == nil {
		ret = err
	}
	l.active = nil
	if l.err == nil {
		l.err = errClosed
	}
	// Return the log's ledger charges: the record buffer is garbage now,
	// and the segment bytes stop being this process's liability (a
	// reopening recovery re-accounts whatever survives on disk).
	l.acct.Add(mem.CompWALBuffers, -l.acBuf)
	l.acBuf = 0
	l.mu.Lock()
	live := l.sealedBytes + l.activeBytes
	l.sealedBytes = 0
	l.mu.Unlock()
	l.acct.Add(mem.CompWALSegments, -live)
	l.activeBytes = 0
	return ret
}

var errClosed = errors.New("wal: log closed")
