package wal

import (
	"testing"

	"rept/internal/graph"
)

// FuzzReadWAL: segment replay must never panic or allocate unboundedly,
// whatever bytes a segment file holds — recovery of a damaged directory
// yields a clean prefix or a typed error. The seed corpus holds a valid
// multi-record segment plus truncations and near-misses so mutations
// explore the record decoder rather than dying on the magic check.
func FuzzReadWAL(f *testing.F) {
	be := NewMemBackend()
	rec, err := Recover(be, testFP)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := rec.Replay(0, func([]graph.Update) error { return nil }); err != nil {
		f.Fatal(err)
	}
	lg, err := rec.Log(Options{})
	if err != nil {
		f.Fatal(err)
	}
	ups := testUpdates(100, 99)
	for i := 0; i < 100; i += 20 {
		if err := lg.Append(ups[i : i+20]); err != nil {
			f.Fatal(err)
		}
		if err := lg.Commit(); err != nil {
			f.Fatal(err)
		}
	}
	valid, ok := be.Bytes(segName(0))
	if !ok {
		f.Fatal("no segment written")
	}
	f.Add(valid)
	f.Add(valid[:headerLen])
	f.Add(valid[:headerLen+recHdrLen+1])
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("REPTWAL1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fz := NewMemBackend()
		fz.SetBytes(segName(0), data)
		rec, err := Recover(fz, testFP)
		if err != nil {
			t.Fatalf("recover of in-memory dir: %v", err)
		}
		var n uint64
		pos, err := rec.Replay(0, func(ups []graph.Update) error {
			for _, up := range ups {
				if up.U == up.V {
					t.Fatalf("replayed a self-loop: %+v", up)
				}
			}
			n += uint64(len(ups))
			return nil
		})
		if err != nil {
			return // typed rejection is fine; losing position accounting is not
		}
		if pos != n {
			t.Fatalf("replay position %d but %d events delivered", pos, n)
		}
	})
}
