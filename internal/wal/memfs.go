package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
)

// ErrInjected is the error every MemBackend fault returns, so tests can
// assert the failure they observed is the one they injected.
var ErrInjected = errors.New("wal: injected fault")

// MemBackend is an in-memory Backend with fault injection, the errfs of
// the WAL test suite. Beyond behaving like a crash-consistent directory
// (every file tracks its synced prefix separately from its written
// bytes), it can fail the Nth sync, tear the Nth write after a byte
// offset, fail the Nth rename, shuffle listing order, and simulate a
// whole-process crash that discards all unsynced bytes. Counters are
// global across files and 1-based; 0 disarms a fault.
type MemBackend struct {
	mu    sync.Mutex
	files map[string]*memFile

	syncCalls   int
	failSyncN   int
	writeCalls  int
	failWriteN  int
	renameCalls int
	failRenameN int
	shuffle     bool
}

// NewMemBackend returns an empty in-memory log directory.
func NewMemBackend() *MemBackend {
	return &MemBackend{files: map[string]*memFile{}}
}

type memFile struct {
	be     *MemBackend
	name   string
	data   []byte
	synced int
	closed bool
}

// FailSync arms the backend to fail the nth Sync call from now (1 = the
// very next). The failed sync does not advance the file's durable prefix.
func (b *MemBackend) FailSync(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.syncCalls = 0
	b.failSyncN = n
}

// FailWrite arms the backend to fail the nth Write call from now,
// writing only the first half of the buffer before erroring — a torn
// in-flight append.
func (b *MemBackend) FailWrite(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.writeCalls = 0
	b.failWriteN = n
}

// FailRename arms the backend to fail the nth Rename call from now,
// leaving the file at its old name.
func (b *MemBackend) FailRename(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.renameCalls = 0
	b.failRenameN = n
}

// ShuffleList makes List return names in reversed-sorted-insertion
// order, exercising readers that assume directory order.
func (b *MemBackend) ShuffleList(on bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.shuffle = on
}

// Crash simulates a process crash plus remount: every file's bytes
// revert to its synced prefix. Names always survive (Create, Rename,
// and Remove model a directory-synced filesystem).
func (b *MemBackend) Crash() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, f := range b.files {
		f.data = f.data[:f.synced]
		f.closed = true
	}
}

// Tear truncates the named file to n bytes, modeling a torn tail found
// after a crash. It clamps the synced prefix too.
func (b *MemBackend) Tear(name string, n int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	f, ok := b.files[name]
	if !ok {
		return fmt.Errorf("wal: no such file %q", name)
	}
	if n < len(f.data) {
		f.data = f.data[:n]
	}
	if f.synced > len(f.data) {
		f.synced = len(f.data)
	}
	return nil
}

// Corrupt flips one bit of the named file at byte offset off.
func (b *MemBackend) Corrupt(name string, off int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	f, ok := b.files[name]
	if !ok {
		return fmt.Errorf("wal: no such file %q", name)
	}
	if off < 0 || off >= len(f.data) {
		return fmt.Errorf("wal: corrupt offset %d out of range [0, %d)", off, len(f.data))
	}
	f.data[off] ^= 0x40
	return nil
}

// Bytes returns a copy of the named file's current contents and whether
// it exists.
func (b *MemBackend) Bytes(name string) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	f, ok := b.files[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), f.data...), true
}

// SetBytes creates or replaces the named file with fully synced
// contents — the hook duplicate-segment tests build adversarial
// directories with.
func (b *MemBackend) SetBytes(name string, data []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.files[name] = &memFile{be: b, name: name, data: append([]byte(nil), data...), synced: len(data)}
}

// Create implements Backend.
func (b *MemBackend) Create(name string) (File, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	f := &memFile{be: b, name: name}
	b.files[name] = f
	return f, nil
}

// Open implements Backend. The reader sees a stable copy of the bytes at
// open time.
func (b *MemBackend) Open(name string) (io.ReadCloser, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	f, ok := b.files[name]
	if !ok {
		return nil, fmt.Errorf("wal: no such file %q", name)
	}
	return io.NopCloser(bytes.NewReader(append([]byte(nil), f.data...))), nil
}

// List implements Backend.
func (b *MemBackend) List() ([]string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.files))
	for name := range b.files {
		names = append(names, name)
	}
	// Deterministic but adversarial when shuffling: reverse-sorted, the
	// worst case for readers that trust listing order. Sorted otherwise;
	// map iteration order must never leak out (determinism discipline).
	sort.Strings(names)
	if b.shuffle {
		for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
			names[i], names[j] = names[j], names[i]
		}
	}
	return names, nil
}

// Remove implements Backend.
func (b *MemBackend) Remove(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.files[name]; !ok {
		return fmt.Errorf("wal: no such file %q", name)
	}
	delete(b.files, name)
	return nil
}

// Rename implements Backend.
func (b *MemBackend) Rename(oldName, newName string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	f, ok := b.files[oldName]
	if !ok {
		return fmt.Errorf("wal: no such file %q", oldName)
	}
	b.renameCalls++
	if b.failRenameN > 0 && b.renameCalls == b.failRenameN {
		return fmt.Errorf("rename %s -> %s: %w", oldName, newName, ErrInjected)
	}
	delete(b.files, oldName)
	f.name = newName
	b.files[newName] = f
	return nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.be.mu.Lock()
	defer f.be.mu.Unlock()
	if f.closed {
		return 0, fmt.Errorf("wal: write to closed file %q", f.name)
	}
	f.be.writeCalls++
	if f.be.failWriteN > 0 && f.be.writeCalls == f.be.failWriteN {
		n := len(p) / 2
		f.data = append(f.data, p[:n]...)
		return n, fmt.Errorf("write %s: %w", f.name, ErrInjected)
	}
	f.data = append(f.data, p...)
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.be.mu.Lock()
	defer f.be.mu.Unlock()
	if f.closed {
		return fmt.Errorf("wal: sync of closed file %q", f.name)
	}
	f.be.syncCalls++
	if f.be.failSyncN > 0 && f.be.syncCalls == f.be.failSyncN {
		return fmt.Errorf("sync %s: %w", f.name, ErrInjected)
	}
	f.synced = len(f.data)
	return nil
}

func (f *memFile) Close() error {
	f.be.mu.Lock()
	defer f.be.mu.Unlock()
	f.closed = true
	return nil
}
