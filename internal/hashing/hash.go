// Package hashing implements the seeded edge-hash family used by REPT to
// partition stream edges across logical processors.
//
// The paper requires a function h mapping each edge uniformly and
// independently to {1,...,m} (Section III-A), and, for c > m, a series of
// mutually independent functions h₁, h₂, ... (one per processor group).
// We realize them as a strong 64-bit mixing permutation applied to the
// canonical edge key xored with a per-function random seed, reduced to
// [0, m) without modulo bias via the fixed-point multiply ("fastrange")
// technique.
package hashing

import "math/bits"

// SplitMix64 advances the splitmix64 state and returns the next value in
// the sequence. It is the standard generator used to derive independent
// seeds from one master seed.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	return Mix64(*state)
}

// Mix64 is the splitmix64 finalizer: a bijective 64-bit mixer with full
// avalanche, adequate as a pairwise-quasi-independent hash of distinct
// keys for partitioning purposes.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// EdgeHash maps canonical edge keys to colors in [0, m).
type EdgeHash struct {
	seed uint64
	m    uint64
}

// New returns an EdgeHash with the given seed mapping to [0, m).
// m must be >= 1.
func New(seed uint64, m int) EdgeHash {
	if m < 1 {
		panic("hashing: m must be >= 1")
	}
	return EdgeHash{seed: seed, m: uint64(m)}
}

// M returns the size of the hash's range.
func (h EdgeHash) M() int { return int(h.m) }

// Color returns the color of the edge key, uniform in [0, m).
func (h EdgeHash) Color(key uint64) int {
	hi, _ := bits.Mul64(Mix64(key^h.seed), h.m)
	return int(hi)
}

// Family derives count independent EdgeHash functions over [0, m) from a
// master seed, one per REPT processor group.
func Family(masterSeed uint64, count, m int) []EdgeHash {
	state := masterSeed
	out := make([]EdgeHash, count)
	for i := range out {
		out[i] = New(SplitMix64(&state), m)
	}
	return out
}

// WeakModHash is a deliberately poor hash (plain modulo of the key) kept
// for the hash-quality ablation experiment: on structured node ids it
// correlates with graph structure and biases REPT's partition.
type WeakModHash struct {
	m uint64
}

// NewWeakMod returns a WeakModHash over [0, m).
func NewWeakMod(m int) WeakModHash {
	if m < 1 {
		panic("hashing: m must be >= 1")
	}
	return WeakModHash{m: uint64(m)}
}

// Color returns key mod m.
func (h WeakModHash) Color(key uint64) int { return int(key % h.m) }
