package hashing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMix64Bijective(t *testing.T) {
	// Spot-check injectivity on sequential keys (a bijection cannot
	// collide; any collision would be a real implementation bug).
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix64 collision: %d and %d -> %#x", prev, i, h)
		}
		seen[h] = i
	}
}

func TestColorRange(t *testing.T) {
	f := func(seed, key uint64, m uint8) bool {
		mm := int(m%64) + 1
		c := New(seed, mm).Color(key)
		return c >= 0 && c < mm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestColorDeterministic(t *testing.T) {
	h1 := New(12345, 10)
	h2 := New(12345, 10)
	for key := uint64(0); key < 1000; key++ {
		if h1.Color(key) != h2.Color(key) {
			t.Fatalf("same seed, different colors for key %d", key)
		}
	}
}

// TestColorUniform checks per-bucket occupancy of sequential (worst-case
// structured) keys via a chi-square-style bound.
func TestColorUniform(t *testing.T) {
	const n = 200000
	for _, m := range []int{2, 7, 10, 100} {
		h := New(0xfeedbeef, m)
		counts := make([]int, m)
		for key := uint64(0); key < n; key++ {
			counts[h.Color(key)]++
		}
		expect := float64(n) / float64(m)
		chi2 := 0.0
		for _, c := range counts {
			d := float64(c) - expect
			chi2 += d * d / expect
		}
		// For m-1 degrees of freedom, mean is m-1 and stddev sqrt(2(m-1));
		// allow a generous 6-sigma band.
		limit := float64(m-1) + 6*math.Sqrt(2*float64(m-1)) + 6
		if chi2 > limit {
			t.Errorf("m=%d: chi2 = %.1f exceeds %.1f; counts %v...", m, chi2, limit, counts[:min(8, m)])
		}
	}
}

// TestColorPairwise estimates P(h(k1)=i ∧ h(k2)=i') ≈ 1/m² on random key
// pairs, the pairwise-independence property Theorem 1 relies on.
func TestColorPairwise(t *testing.T) {
	const m = 8
	const n = 400000
	h := New(99, m)
	hits := 0
	state := uint64(123)
	for i := 0; i < n; i++ {
		k1 := SplitMix64(&state)
		k2 := SplitMix64(&state)
		if h.Color(k1) == 3 && h.Color(k2) == 5 {
			hits++
		}
	}
	got := float64(hits) / n
	want := 1.0 / (m * m)
	sigma := math.Sqrt(want * (1 - want) / n)
	if math.Abs(got-want) > 6*sigma {
		t.Errorf("pairwise rate = %.5f, want %.5f ± %.5f", got, want, 6*sigma)
	}
}

func TestFamilyIndependence(t *testing.T) {
	fam := Family(42, 4, 10)
	if len(fam) != 4 {
		t.Fatalf("len(Family) = %d, want 4", len(fam))
	}
	// Different family members must disagree on many keys.
	same := 0
	const n = 10000
	for key := uint64(0); key < n; key++ {
		if fam[0].Color(key) == fam[1].Color(key) {
			same++
		}
	}
	// Expected agreement 1/m = 10%; 20% would indicate correlated seeds.
	if same > n/5 {
		t.Errorf("families agree on %d/%d keys; seeds look correlated", same, n)
	}
	// Same master seed must reproduce the family.
	fam2 := Family(42, 4, 10)
	for i := range fam {
		if fam[i] != fam2[i] {
			t.Errorf("Family not deterministic at index %d", i)
		}
	}
	// Different master seed must give a different family.
	fam3 := Family(43, 4, 10)
	if fam[0] == fam3[0] {
		t.Error("different master seeds produced identical hash")
	}
}

func TestNewPanicsOnBadM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(seed, 0) did not panic")
		}
	}()
	New(1, 0)
}

func TestWeakModHash(t *testing.T) {
	h := NewWeakMod(10)
	for key := uint64(0); key < 100; key++ {
		if got, want := h.Color(key), int(key%10); got != want {
			t.Fatalf("WeakMod.Color(%d) = %d, want %d", key, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("NewWeakMod(0) did not panic")
		}
	}()
	NewWeakMod(0)
}

func BenchmarkColor(b *testing.B) {
	h := New(7, 100)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += h.Color(uint64(i))
	}
	_ = sink
}
