package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"rept/internal/graph"
)

// TestCtabMatchesMap cross-checks the open-addressing counter table
// against a plain map under a random churn of bumps, sets, and deletes —
// including enough delete/re-insert cycles to exercise tombstone reuse
// and purge rehashes.
func TestCtabMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	ct := newCtab(nil)
	naive := make(map[uint64]int32)
	keys := make([]uint64, 200)
	for i := range keys {
		// Real edge keys (u < v, never 0 or ^0).
		keys[i] = graph.Key(graph.NodeID(rng.IntN(40)), graph.NodeID(40+rng.IntN(40)))
	}
	for i := 0; i < 50000; i++ {
		k := keys[rng.IntN(len(keys))]
		switch rng.IntN(6) {
		case 0:
			ct.del(k)
			delete(naive, k)
		case 1:
			v := int64(rng.IntN(100) - 50)
			ct.setClamped(k, v)
			naive[k] = int32(v)
		default:
			delta := int32(1)
			if rng.IntN(2) == 0 {
				delta = -1
			}
			old, cur := ct.bump(k, delta)
			if old != naive[k] {
				t.Fatalf("op %d: bump old = %d, want %d", i, old, naive[k])
			}
			naive[k] = naive[k] + delta
			if cur != naive[k] {
				t.Fatalf("op %d: bump cur = %d, want %d", i, cur, naive[k])
			}
		}
		if ct.len() != len(naive) {
			t.Fatalf("op %d: len = %d, want %d", i, ct.len(), len(naive))
		}
	}
	for k, v := range naive {
		if got := ct.get(k); got != v {
			t.Fatalf("get(%#x) = %d, want %d", k, got, v)
		}
	}
	got := ct.toMap()
	if len(got) != len(naive) {
		t.Fatalf("toMap has %d entries, want %d", len(got), len(naive))
	}
	for k, v := range naive {
		if got[k] != v {
			t.Fatalf("toMap[%#x] = %d, want %d", k, got[k], v)
		}
	}
	if ct.sat != 0 {
		t.Fatalf("sat = %d on a boundary-free workload, want 0", ct.sat)
	}
}

// TestCtabSaturation: per-edge closing counters clamp at the int32
// boundaries instead of wrapping, and every clamp is counted. This is the
// overflow guard for adversarially hot edges.
func TestCtabSaturation(t *testing.T) {
	k := graph.Key(1, 2)
	ct := newCtab(nil)
	ct.setClamped(k, math.MaxInt32-1)
	if old, cur := ct.bump(k, 1); old != math.MaxInt32-1 || cur != math.MaxInt32 {
		t.Fatalf("bump to max = (%d, %d)", old, cur)
	}
	if ct.sat != 0 {
		t.Fatalf("sat = %d before any clamp", ct.sat)
	}
	// One past the top: clamp, count.
	if _, cur := ct.bump(k, 1); cur != math.MaxInt32 {
		t.Fatalf("bump past max stored %d, want clamp at MaxInt32", cur)
	}
	if ct.sat != 1 {
		t.Fatalf("sat = %d after clamp, want 1", ct.sat)
	}
	// And the bottom boundary.
	ct.setClamped(k, math.MinInt32)
	if _, cur := ct.bump(k, -1); cur != math.MinInt32 {
		t.Fatalf("bump past min stored %d, want clamp at MinInt32", cur)
	}
	if ct.sat != 2 {
		t.Fatalf("sat = %d after min clamp, want 2", ct.sat)
	}
	// setClamped clamps out-of-range int64 values too.
	ct.setClamped(k, int64(math.MaxInt32)+7)
	if got := ct.get(k); got != math.MaxInt32 {
		t.Fatalf("setClamped stored %d, want MaxInt32", got)
	}
	if ct.sat != 3 {
		t.Fatalf("sat = %d after clamped set, want 3", ct.sat)
	}
}

// TestEngineEtaSaturations: the engine surfaces clamp events from its
// processors' counter tables (zero everywhere on a normal stream).
func TestEngineEtaSaturations(t *testing.T) {
	e, err := NewEngine(Config{M: 2, C: 3, Seed: 1, TrackEta: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := graph.NodeID(1); i < 40; i++ {
		e.Add(0, i)
		e.Add(i, i+1)
	}
	if got := e.EtaSaturations(); got != 0 {
		t.Fatalf("EtaSaturations = %d on a tiny stream, want 0", got)
	}
	// Reach in and force a processor counter to the boundary, then feed
	// an event that closes a wedge through it.
	p := e.procs[0]
	if p.tcnt == nil {
		t.Fatal("proc 0 has no counter table despite TrackEta")
	}
	p.tcnt.sat = 41
	if got := e.EtaSaturations(); got != 41 {
		t.Fatalf("EtaSaturations = %d, want 41", got)
	}
}

// TestShardedEtaSaturationsPlumbing is covered at the shard and HTTP
// layers via Observation.EtaSaturations and /stats (see
// cmd/reptserve.TestStatsEndpoint); here we only pin the engine-level
// zero baseline for every tracked configuration.
func TestEngineEtaSaturationsZeroWithoutEta(t *testing.T) {
	e, err := NewEngine(Config{M: 4, C: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Add(1, 2)
	if got := e.EtaSaturations(); got != 0 {
		t.Fatalf("EtaSaturations = %d without η tracking, want 0", got)
	}
}

// TestRestoreRejectsTcntWithoutEta: a crafted snapshot that carries
// per-edge counters for a configuration whose effective trackEta is
// false must be rejected as corrupt (the presence check), never reach
// the nil counter table, and never panic.
func TestRestoreRejectsTcntWithoutEta(t *testing.T) {
	cfg := Config{M: 4, C: 2, Seed: 3} // C < M, no eta needed or forced
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Add(1, 2)
	st := e.State()
	e.Close()
	if st.Procs[0].Tcnt != nil {
		t.Fatal("no-eta engine exported counter tables")
	}
	st.Procs[0].Tcnt = map[uint64]int32{graph.Key(1, 2): 1} // crafted
	r, err := RestoreEngine(cfg, st)
	if err == nil {
		r.Close()
		t.Fatal("RestoreEngine accepted counters for a no-eta config")
	}
}

// TestCtabTombstoneChurnStaysCompact: deleting and re-inserting the same
// working set must not grow the table (tombstone slots are reused), the
// property that keeps fully-dynamic steady state allocation-free.
func TestCtabTombstoneChurnStaysCompact(t *testing.T) {
	ct := newCtab(nil)
	keys := make([]uint64, 64)
	for i := range keys {
		keys[i] = graph.Key(graph.NodeID(i), graph.NodeID(100+i))
		ct.setClamped(keys[i], int64(i))
	}
	capBefore := len(ct.keys)
	for round := 0; round < 1000; round++ {
		for _, k := range keys {
			ct.del(k)
		}
		for i, k := range keys {
			ct.setClamped(k, int64(i))
		}
	}
	if len(ct.keys) > 2*capBefore {
		t.Fatalf("table grew from %d to %d slots under pure churn", capBefore, len(ct.keys))
	}
	for i, k := range keys {
		if got := ct.get(k); got != int32(i) {
			t.Fatalf("get(%#x) = %d after churn, want %d", k, got, i)
		}
	}
}
