package core

import "math"

// This file exposes the paper's closed-form variance expressions. They are
// used by the variance-validation experiment (empirical vs theoretical)
// and to overlay theory curves on the accuracy figures.

// VarREPT returns the theoretical Var(τ̂) of REPT with sampling probability
// p = 1/m on c processors, for a stream with triangle count tau and
// shared-edge pair count eta (paper Theorem 3 and Section III-B):
//
//	c ≤ m:        (τ(m²−c) + 2η(m−c)) / c
//	c = c₁m:      τ(m−1)/c₁
//	c = c₁m+c₂:   harmonic combination of the two cases above
//	              (inverse-variance optimal combination of independent
//	              unbiased estimates, Graybill–Deal).
func VarREPT(m, c int, tau, eta float64) float64 {
	if m < 1 || c < 1 {
		return math.NaN()
	}
	mf := float64(m)
	c1, c2 := c/m, c%m
	switch {
	case c1 == 0:
		cf := float64(c)
		return (tau*(mf*mf-cf) + 2*eta*(mf-cf)) / cf
	case c2 == 0:
		return tau * (mf - 1) / float64(c1)
	default:
		v1 := tau * (mf - 1) / float64(c1)
		v2 := (tau*(mf*mf-float64(c2)) + 2*eta*(mf-float64(c2))) / float64(c2)
		if v1 == 0 && v2 == 0 {
			return 0
		}
		return v1 * v2 / (v1 + v2)
	}
}

// VarParallelMascot returns the theoretical variance of averaging c
// independent MASCOT estimates with sampling probability p = 1/m
// (Section III-C, derived from MASCOT's Lemma 6):
//
//	(τ(m²−1) + 2η(m−1)) / c
//
// The 2η(m−1) term is the covariance contribution REPT eliminates.
func VarParallelMascot(m, c int, tau, eta float64) float64 {
	if m < 1 || c < 1 {
		return math.NaN()
	}
	mf := float64(m)
	return (tau*(mf*mf-1) + 2*eta*(mf-1)) / float64(c)
}

// NRMSETheory converts a variance of an unbiased estimator of tau into the
// paper's error metric NRMSE = sqrt(MSE)/τ.
func NRMSETheory(variance, tau float64) float64 {
	if tau <= 0 {
		return math.NaN()
	}
	return math.Sqrt(variance) / tau
}
