package core

import (
	"fmt"
	"math"

	"rept/internal/graph"
)

// Aggregates holds the per-processor counters gathered from an engine,
// reduced just enough to evaluate the paper's estimators. TauProc[i] is
// τ⁽ⁱ⁾, the number of semi-triangles observed by logical processor i;
// EtaProc[i] is η⁽ⁱ⁾ (nil when η was not tracked).
//
// Local counters are pre-summed over the two processor classes the
// estimators distinguish: class 1 is the c₁ full groups (τ̂⁽¹⁾), class 2
// the partial group (τ̂⁽²⁾). For c ≤ m all processors form one partial
// group (c₁ = 0), so TauV1 is empty and TauV2 carries everything, which
// makes Algorithm 1 the c₁ = 0 special case of Algorithm 2.
// Counters are signed: in fully-dynamic mode individual processors can
// hold transiently negative τ⁽ⁱ⁾/η⁽ⁱ⁾ (see proc); insert-only streams
// never produce negative values.
type Aggregates struct {
	M, C int
	// Shift is the cumulative sample down-shift the counters were gathered
	// under (see Engine.Downsample): the effective sampling denominator is
	// M·2^Shift. Non-zero Shift implies η was not tracked and routes the
	// estimate through the pooled estimator at the effective denominator.
	Shift   int
	TauProc []int64
	EtaProc []int64

	TauV1 map[graph.NodeID]int64 // Σ τ⁽ⁱ⁾_v over full-group processors
	TauV2 map[graph.NodeID]int64 // Σ τ⁽ⁱ⁾_v over partial-group processors
	EtaV  map[graph.NodeID]int64 // Σ η⁽ⁱ⁾_v over all processors
}

// Estimate holds the REPT output.
type Estimate struct {
	// Global is τ̂, the estimated number of triangles in the stream — the
	// NET (live-graph) count in fully-dynamic mode, where small samples
	// can produce slightly negative values (the estimator is unbiased;
	// clamping would bias it upward).
	Global float64
	// Local is τ̂_v for every node that appeared in at least one sampled
	// semi-triangle; absent nodes have estimate 0. Nil unless the engine
	// tracked local counts.
	Local map[graph.NodeID]float64
	// EtaHat is η̂ = (m³/c)·Σ η⁽ⁱ⁾ when η was tracked, else 0.
	EtaHat float64
	// Variance is the plug-in estimate of Var(τ̂): the paper's closed form
	// (Theorem 3 / Section III-B) with τ̂ and η̂ substituted for τ and η.
	// It supports confidence intervals (τ̂ ± z·sqrt(Variance)) without a
	// second pass. NaN when the needed η counters were not tracked (set
	// Config.TrackEta to force them); the c = c₁m case needs no η and is
	// always available.
	Variance float64
	// Combined reports whether the Graybill–Deal inverse-variance
	// combination of τ̂⁽¹⁾ and τ̂⁽²⁾ was used (c > m with c % m ≠ 0).
	Combined bool
}

// Estimate evaluates the paper's estimators on the gathered counters.
func (a *Aggregates) Estimate() Estimate {
	lay := newLayout(a.M, a.C)
	if a.Shift > 0 {
		// Downsampled counters: the group structure of the original layout
		// no longer partitions the effective denominator m·2^Shift into
		// whole groups, so every processor is treated as one partial-class
		// cell at the effective denominator and combine evaluates the
		// pooled estimator m_eff²·Στ/c — unbiased for any processor count.
		lay = layout{m: a.M << uint(a.Shift), c: a.C, c2: a.C, groups: 1}
	}
	m := float64(lay.m)

	var sum1, sum2, etaSum int64
	for i, t := range a.TauProc {
		if lay.isPartialProc(i) {
			sum2 += t
		} else {
			sum1 += t
		}
	}
	for _, h := range a.EtaProc {
		etaSum += h
	}

	est := Estimate{}
	if a.EtaProc != nil {
		est.EtaHat = m * m * m * float64(etaSum) / float64(a.C)
	}
	est.Global, est.Combined = combine(lay, float64(sum1), float64(sum2), est.EtaHat)
	est.Variance = plugInVariance(lay, a.EtaProc != nil, est.Global, est.EtaHat)

	if a.TauV1 != nil || a.TauV2 != nil {
		est.Local = make(map[graph.NodeID]float64, maxLen(a.TauV1, a.TauV2))
		fill := func(src map[graph.NodeID]int64) {
			for v := range src {
				if _, done := est.Local[v]; done {
					continue
				}
				var etaV float64
				if a.EtaV != nil {
					etaV = m * m * m * float64(a.EtaV[v]) / float64(a.C)
				}
				g, _ := combine(lay, float64(a.TauV1[v]), float64(a.TauV2[v]), etaV)
				est.Local[v] = g
			}
		}
		fill(a.TauV1)
		fill(a.TauV2)
	}
	return est
}

// combine evaluates τ̂ from the class sums. sum1 is Σ τ⁽ⁱ⁾ over full-group
// processors, sum2 over partial-group processors, etaHat the η̂ estimate
// (used only when both classes are non-empty).
//
// Paper estimators:
//
//	c ≤ m:          τ̂ = (m²/c)·Σ τ⁽ⁱ⁾                       (Algorithm 1)
//	c = c₁m:        τ̂ = (m/c₁)·Σ τ⁽ⁱ⁾                        (Section III-B.1)
//	c = c₁m + c₂:   τ̂⁽¹⁾ = (m/c₁)·Σ₁,  τ̂⁽²⁾ = (m²/c₂)·Σ₂,
//	                w⁽¹⁾ = τ̂⁽¹⁾(m−1)/c₁,
//	                w⁽²⁾ = (τ̂⁽¹⁾(m²−c₂) + 2η̂(m−c₂))/c₂,
//	                τ̂ = (w⁽²⁾τ̂⁽¹⁾ + w⁽¹⁾τ̂⁽²⁾)/(w⁽¹⁾+w⁽²⁾)   (Algorithm 2)
//
// When both variance proxies are zero (e.g. no semi-triangles were seen)
// the combination degenerates; we fall back to the unbiased pooled
// estimator m²·(Σ₁+Σ₂)/c, which coincides with the paper's estimator in
// the pure cases.
func combine(lay layout, sum1, sum2, etaHat float64) (float64, bool) {
	m := float64(lay.m)
	pooled := m * m * (sum1 + sum2) / float64(lay.c)
	if lay.c1 == 0 || lay.c2 == 0 {
		// Single-class cases: pooled is exactly the paper's estimator.
		return pooled, false
	}
	c1, c2 := float64(lay.c1), float64(lay.c2)
	t1 := m / c1 * sum1
	t2 := m * m / c2 * sum2
	w1 := t1 * (m - 1) / c1
	w2 := (t1*(m*m-c2) + 2*etaHat*(m-c2)) / c2
	if w1+w2 <= 0 {
		return pooled, false
	}
	return (w2*t1 + w1*t2) / (w1 + w2), true
}

// plugInVariance evaluates the paper's closed-form variance with the
// estimates substituted for the true τ and η. Negative plug-ins are
// clamped to zero; NaN when η is required but was not tracked.
func plugInVariance(lay layout, haveEta bool, tauHat, etaHat float64) float64 {
	if tauHat < 0 {
		tauHat = 0
	}
	if etaHat < 0 {
		etaHat = 0
	}
	// The c = c₁m case (including m = 1) needs no η.
	etaFree := lay.c1 > 0 && lay.c2 == 0
	if !haveEta && !etaFree {
		return math.NaN()
	}
	return VarREPT(lay.m, lay.c, tauHat, etaHat)
}

func maxLen(a, b map[graph.NodeID]int64) int {
	if len(a) > len(b) {
		return len(a)
	}
	return len(b)
}

// SanityCheck verifies structural invariants of the aggregates (lengths
// consistent with C, non-nil slices). It is used by tests and the harness.
func (a *Aggregates) SanityCheck() error {
	if len(a.TauProc) != a.C {
		return fmt.Errorf("core: TauProc has %d entries, want C=%d", len(a.TauProc), a.C)
	}
	if a.EtaProc != nil && len(a.EtaProc) != a.C {
		return fmt.Errorf("core: EtaProc has %d entries, want C=%d", len(a.EtaProc), a.C)
	}
	if a.Shift != 0 && a.EtaProc != nil {
		return fmt.Errorf("core: Shift=%d with η counters present (downsampling is unavailable under η tracking)", a.Shift)
	}
	if a.Shift < 0 {
		return fmt.Errorf("core: negative Shift=%d", a.Shift)
	}
	return nil
}
