package core

import (
	"fmt"

	"rept/internal/graph"
)

// Sim evaluates all of REPT's logical processors in a single pass over one
// shared adjacency structure. Each stored edge is labeled with its color
// under every group hash; a processor (g, j)'s semi-triangle counter
// increases exactly when an arriving edge (u,v) has a common neighbor w
// whose two wedge edges both have color j under hash g — which is
// precisely the event "both first edges sampled by processor (g, j)".
//
// Sim produces counters bit-identical to Engine's (property-tested), runs
// ~c/L times faster for Monte-Carlo experiments (L = number of groups),
// and can emit Aggregates for any c' ≤ C in the same pass because it
// counts all m colors of every group, not only the active ones.
type Sim struct {
	cfg      Config
	lay      layout
	trackEta bool
	hashes   []Hasher
	numL     int

	adj      map[graph.NodeID]map[graph.NodeID]int32 // node -> neighbor -> edge id
	colors   []uint16                                // [edgeID*numL + l] color of edge under hash l
	tcnt     []uint32                                // [edgeID*numL + l] τ⁽ⁱ⁾_edge counters (η bookkeeping)
	numEdges int

	tau [][]int64 // [group][color] semi-triangle counts, all m colors
	eta [][]int64 // [group][color] η⁽ⁱ⁾ counts

	tauV1 map[graph.NodeID]int64
	tauV2 map[graph.NodeID]int64
	etaV  map[graph.NodeID]int64

	scratch  []simWedge
	matchNew []uint32

	processed uint64
	selfLoops uint64
}

type simWedge struct {
	w            graph.NodeID
	eidUW, eidVW int32
}

// NewSim builds a Sim for cfg. Workers and BatchSize are ignored.
func NewSim(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lay := newLayout(cfg.M, cfg.C)
	s := &Sim{
		cfg:      cfg,
		lay:      lay,
		trackEta: cfg.TrackEta || lay.needsEta(),
		hashes:   cfg.hashFamily(lay.groups),
		numL:     lay.groups,
		adj:      make(map[graph.NodeID]map[graph.NodeID]int32),
		matchNew: make([]uint32, lay.groups),
	}
	s.tau = make([][]int64, lay.groups)
	for l := range s.tau {
		s.tau[l] = make([]int64, cfg.M)
	}
	if s.trackEta {
		s.eta = make([][]int64, lay.groups)
		for l := range s.eta {
			s.eta[l] = make([]int64, cfg.M)
		}
	}
	if cfg.TrackLocal {
		s.tauV1 = make(map[graph.NodeID]int64)
		s.tauV2 = make(map[graph.NodeID]int64)
		if s.trackEta {
			s.etaV = make(map[graph.NodeID]int64)
		}
	}
	return s, nil
}

// Add feeds one stream edge. Self-loops are skipped; duplicate edges go
// through the counting phase but are not re-inserted, matching Engine.
func (s *Sim) Add(u, v graph.NodeID) {
	if u == v {
		s.selfLoops++
		return
	}
	s.processed++
	key := graph.Key(u, v)
	L := s.numL

	// Colors of the arriving edge under every group hash (needed both for
	// the insertion decision and for initializing its τ_edge counters).
	for l := 0; l < L; l++ {
		s.matchNew[l] = 0
	}
	newColors := make([]uint16, L)
	for l := 0; l < L; l++ {
		newColors[l] = uint16(s.hashes[l].Color(key))
	}

	// Enumerate common neighbors in the full graph, iterating the smaller
	// neighborhood and probing the larger. scratch records the edge ids of
	// the wedge edges (u,w) and (v,w).
	nu, nv := s.adj[u], s.adj[v]
	s.scratch = s.scratch[:0]
	if len(nu) <= len(nv) {
		for w, eidUW := range nu {
			if eidVW, ok := nv[w]; ok {
				s.scratch = append(s.scratch, simWedge{w: w, eidUW: eidUW, eidVW: eidVW})
			}
		}
	} else {
		for w, eidVW := range nv {
			if eidUW, ok := nu[w]; ok {
				s.scratch = append(s.scratch, simWedge{w: w, eidUW: eidUW, eidVW: eidVW})
			}
		}
	}

	for _, cn := range s.scratch {
		baseU := int(cn.eidUW) * L
		baseV := int(cn.eidVW) * L
		for l := 0; l < L; l++ {
			cu := s.colors[baseU+l]
			cv := s.colors[baseV+l]
			if cu != cv {
				continue
			}
			// Processor (l, cu) closes a semi-triangle at this edge.
			var a, b uint32
			if s.trackEta {
				a, b = s.tcnt[baseU+l], s.tcnt[baseV+l]
			}
			active := int(cu) < s.lay.activeColors(l)
			if active {
				s.tau[l][cu]++
				if s.tauV1 != nil {
					dst := s.tauV1
					if s.lay.isPartialGroup(l) {
						dst = s.tauV2
					}
					dst[u]++
					dst[v]++
					dst[cn.w]++
				}
				if s.trackEta {
					s.eta[l][cu] += int64(a) + int64(b)
					if s.etaV != nil {
						if ab := int64(a) + int64(b); ab > 0 {
							s.etaV[cn.w] += ab
						}
						if a > 0 {
							s.etaV[u] += int64(a)
						}
						if b > 0 {
							s.etaV[v] += int64(b)
						}
					}
				}
			}
			if s.trackEta {
				s.tcnt[baseU+l] = a + 1
				s.tcnt[baseV+l] = b + 1
			}
			if cu == newColors[l] {
				s.matchNew[l]++
			}
		}
	}

	// Insert the edge unless it is a duplicate.
	if _, dup := s.adj[u][v]; dup {
		return
	}
	eid := int32(s.numEdges)
	s.numEdges++
	s.linkSim(u, v, eid)
	s.linkSim(v, u, eid)
	s.colors = append(s.colors, newColors...)
	if s.trackEta {
		s.tcnt = append(s.tcnt, s.matchNew...)
	}
}

func (s *Sim) linkSim(u, v graph.NodeID, eid int32) {
	m := s.adj[u]
	if m == nil {
		m = make(map[graph.NodeID]int32)
		s.adj[u] = m
	}
	m[v] = eid
}

// AddEdge feeds one stream edge.
func (s *Sim) AddEdge(e graph.Edge) { s.Add(e.U, e.V) }

// AddAll feeds a slice of stream edges in order.
func (s *Sim) AddAll(edges []graph.Edge) {
	for _, e := range edges {
		s.Add(e.U, e.V)
	}
}

// Aggregates gathers the counters for the configured C.
func (s *Sim) Aggregates() *Aggregates {
	agg, err := s.AggregatesFor(s.cfg.C)
	if err != nil {
		panic(err) // unreachable: cfg.C is always valid for itself
	}
	return agg
}

// AggregatesFor gathers counters for an alternative processor count
// c ≤ cfg.C with the same m. Global counters (TauProc, EtaProc) are exact
// for every such c because Sim counts all colors of every group; local
// per-node sums are class-specific and therefore only available when
// c == cfg.C (they are omitted otherwise).
func (s *Sim) AggregatesFor(c int) (*Aggregates, error) {
	if c < 1 || c > s.cfg.C {
		return nil, fmt.Errorf("core: AggregatesFor(%d) out of range [1, %d]", c, s.cfg.C)
	}
	lay := newLayout(s.cfg.M, c)
	if lay.groups > s.numL {
		return nil, fmt.Errorf("core: AggregatesFor(%d) needs %d groups, have %d", c, lay.groups, s.numL)
	}
	agg := &Aggregates{M: s.cfg.M, C: c, TauProc: make([]int64, c)}
	needEta := s.trackEta && (s.cfg.TrackEta || lay.needsEta())
	if needEta {
		agg.EtaProc = make([]int64, c)
	}
	for i := 0; i < c; i++ {
		g, j := lay.groupOf(i), lay.colorOf(i)
		agg.TauProc[i] = s.tau[g][j]
		if needEta {
			agg.EtaProc[i] = s.eta[g][j]
		}
	}
	if c == s.cfg.C && s.cfg.TrackLocal {
		agg.TauV1 = s.tauV1
		agg.TauV2 = s.tauV2
		if s.trackEta {
			agg.EtaV = s.etaV
		}
	}
	return agg, nil
}

// Result evaluates the estimators for the configured C.
func (s *Sim) Result() Estimate { return s.Aggregates().Estimate() }

// ResultFor evaluates the estimators for an alternative c ≤ cfg.C (global
// estimate only unless c == cfg.C; see AggregatesFor).
func (s *Sim) ResultFor(c int) (Estimate, error) {
	agg, err := s.AggregatesFor(c)
	if err != nil {
		return Estimate{}, err
	}
	return agg.Estimate(), nil
}

// Processed returns the number of non-loop edges fed so far.
func (s *Sim) Processed() uint64 { return s.processed }

// SelfLoops returns the number of self-loop arrivals skipped.
func (s *Sim) SelfLoops() uint64 { return s.selfLoops }
