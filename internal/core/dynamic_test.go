package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"rept/internal/gen"
	"rept/internal/graph"
)

// TestFullyDynamicInsertOnlyBitIdentical: with no deletions in the
// stream, an engine built with FullyDynamic produces counters that are
// bit-for-bit identical to one built without — the flag must cost
// nothing on insert-only workloads.
func TestFullyDynamicInsertOnlyBitIdentical(t *testing.T) {
	edges := gen.Shuffle(gen.HolmeKim(300, 4, 0.4, 21), 5)
	for _, workers := range []int{1, 4} {
		cfg := Config{M: 4, C: 10, Seed: 7, TrackLocal: true, TrackEta: true, Workers: workers}
		plain, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.FullyDynamic = true
		dyn, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		plain.AddAll(edges)
		dyn.ApplyAll(graph.Inserts(edges))
		ap, ad := plain.Aggregates(), dyn.Aggregates()
		if !reflect.DeepEqual(ap, ad) {
			t.Fatalf("workers=%d: insert-only counters diverge between FullyDynamic on/off", workers)
		}
		if ps := dyn.PairingCounters(); ps != (PairingStats{}) {
			t.Errorf("workers=%d: pairing counters %+v on an insert-only stream", workers, ps)
		}
		plain.Close()
		dyn.Close()
	}
}

// TestFullyDynamicLIFOTeardown: deleting every edge in exact reverse
// insertion order applies the exact inverse of each insertion against the
// same intermediate state, so every counter — not just in expectation —
// returns to zero, on every processor.
func TestFullyDynamicLIFOTeardown(t *testing.T) {
	edges := gen.Shuffle(gen.HolmeKim(200, 4, 0.5, 3), 9)
	eng, err := NewEngine(Config{M: 3, C: 8, Seed: 11, TrackLocal: true, TrackEta: true, FullyDynamic: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.AddAll(edges)
	if eng.SampledEdges() == 0 {
		t.Fatal("no edges sampled; stream too small for the test")
	}
	for i := len(edges) - 1; i >= 0; i-- {
		eng.Delete(edges[i].U, edges[i].V)
	}
	if got := eng.SampledEdges(); got != 0 {
		t.Errorf("SampledEdges = %d after full teardown, want 0", got)
	}
	agg := eng.Aggregates()
	for i, tau := range agg.TauProc {
		if tau != 0 {
			t.Errorf("TauProc[%d] = %d after LIFO teardown, want 0", i, tau)
		}
		if agg.EtaProc[i] != 0 {
			t.Errorf("EtaProc[%d] = %d after LIFO teardown, want 0", i, agg.EtaProc[i])
		}
	}
	for v, x := range agg.TauV1 {
		if x != 0 {
			t.Errorf("TauV1[%d] = %d, want 0", v, x)
		}
	}
	for v, x := range agg.TauV2 {
		if x != 0 {
			t.Errorf("TauV2[%d] = %d, want 0", v, x)
		}
	}
	if g := eng.Result().Global; g != 0 {
		t.Errorf("Global = %v after LIFO teardown, want exactly 0", g)
	}
	ps := eng.PairingCounters()
	if ps.PhantomDeletes != 0 {
		t.Errorf("PhantomDeletes = %d on a well-formed stream", ps.PhantomDeletes)
	}
	if ps.SampledDeletes == 0 || ps.UnsampledDeletes == 0 {
		t.Errorf("pairing counters %+v: expected both d_i and d_o activity", ps)
	}
	if want := uint64(len(edges)); eng.Deleted() != want {
		t.Errorf("Deleted = %d, want %d", eng.Deleted(), want)
	}
}

// TestDeleteRequiresFullyDynamic: deletions against a plain engine panic
// with ErrNotDynamic before mutating anything.
func TestDeleteRequiresFullyDynamic(t *testing.T) {
	eng, err := NewEngine(Config{M: 2, C: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.Add(1, 2)
	defer func() {
		if r := recover(); r != ErrNotDynamic {
			t.Errorf("recovered %v, want ErrNotDynamic", r)
		}
		if eng.Processed() != 1 || eng.Deleted() != 0 {
			t.Errorf("tallies mutated by rejected delete: processed=%d deleted=%d", eng.Processed(), eng.Deleted())
		}
	}()
	eng.Delete(1, 2)
}

// checkDynamicInvariants asserts the structural invariants that must
// hold for ANY signed sequence, well-formed or not: finite estimates and
// per-processor sampled-set/counter-map consistency.
func checkDynamicInvariants(t *testing.T, eng *Engine) {
	t.Helper()
	st := eng.State()
	for i := range st.Procs {
		p := &st.Procs[i]
		if p.Tcnt != nil && len(p.Tcnt) != len(p.Edges) {
			t.Fatalf("processor %d: %d tcnt entries for %d sampled edges", i, len(p.Tcnt), len(p.Edges))
		}
		for _, e := range p.Edges {
			if e.U == e.V {
				t.Fatalf("processor %d: sampled self-loop (%d,%d)", i, e.U, e.V)
			}
			if p.Tcnt != nil {
				if _, ok := p.Tcnt[e.Key()]; !ok {
					t.Fatalf("processor %d: sampled edge (%d,%d) has no tcnt entry", i, e.U, e.V)
				}
			}
		}
	}
	res := eng.Result()
	if math.IsNaN(res.Global) || math.IsInf(res.Global, 0) {
		t.Fatalf("Global = %v", res.Global)
	}
	if math.IsNaN(res.EtaHat) || math.IsInf(res.EtaHat, 0) {
		t.Fatalf("EtaHat = %v", res.EtaHat)
	}
	for v, x := range res.Local {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("Local[%d] = %v", v, x)
		}
	}
	if eng.SampledEdges() < 0 {
		t.Fatalf("SampledEdges = %d", eng.SampledEdges())
	}
}

// FuzzFullyDynamicCore throws arbitrary signed sequences — including
// malformed ones that delete absent edges or re-insert live ones — at a
// fully-dynamic engine and asserts the state invariants hold: no panics,
// no NaN/Inf estimates, no negative sampled-set sizes, the per-processor
// counter maps consistent with the sampled sets, and the whole state
// snapshot-round-trippable into an engine with bit-identical counters.
func FuzzFullyDynamicCore(f *testing.F) {
	f.Add(uint8(3), uint8(7), int64(1), []byte{0x10, 0x21, 0x20, 0x91, 0x30})
	f.Add(uint8(2), uint8(5), int64(2), []byte{0x10, 0x21, 0x20, 0xa0, 0xa0, 0x20})
	f.Add(uint8(1), uint8(1), int64(3), []byte{0xff, 0x7f, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, mRaw, cRaw uint8, seed int64, data []byte) {
		m := int(mRaw%6) + 1
		c := int(cRaw%13) + 1
		if len(data) > 256 {
			data = data[:256]
		}
		cfg := Config{M: m, C: c, Seed: seed, TrackLocal: true, TrackEta: true, FullyDynamic: true}
		eng, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		// Each byte is one event: low nibbles pick endpoints in [0, 8), the
		// top bit selects deletion — so duplicate inserts, deletes of
		// absent edges, and self-loops all occur naturally.
		for _, b := range data {
			u, v := graph.NodeID(b&0x7), graph.NodeID((b>>3)&0x7)
			eng.Apply(graph.Update{U: u, V: v, Del: b&0x80 != 0})
		}
		checkDynamicInvariants(t, eng)

		// Snapshot round trip: the restored engine must carry bit-identical
		// counters and keep producing identical estimates on a suffix.
		var buf bytes.Buffer
		if err := eng.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		restored, err := ResumeEngine(cfg, bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		defer restored.Close()
		if !reflect.DeepEqual(eng.Aggregates(), restored.Aggregates()) {
			t.Fatal("restored aggregates diverge")
		}
		eng.Add(1, 2)
		restored.Add(1, 2)
		if eng.Result().Global != restored.Result().Global {
			t.Fatal("restored estimate diverges on suffix")
		}
	})
}
