package core

import (
	"bytes"
	"reflect"
	"testing"

	"rept/internal/gen"
	"rept/internal/graph"
)

// batchStream builds a signed stream with deletions trailing a window
// behind their insertions, so the mask table sees real removals (nodes
// whose last sampled edge disappears must drop out of the mask).
func batchStream() []graph.Update {
	edges := gen.Shuffle(gen.HolmeKim(250, 5, 0.4, 17), 7)
	ups := make([]graph.Update, 0, len(edges)+len(edges)/3)
	for i, e := range edges {
		ups = append(ups, graph.Update{U: e.U, V: e.V})
		if i >= 30 && i%3 == 0 {
			d := edges[i-30]
			ups = append(ups, graph.Update{U: d.U, V: d.V, Del: true})
		}
	}
	return ups
}

// TestEngineApplyBatchBitIdentical is the presence-mask correctness
// contract: ApplyBatch must produce aggregates bit-identical to
// ApplyAll on the same stream for every configuration — mask fast path
// on (single worker, C <= 64), degraded off (C > 64), and worker mode —
// with deletions, η bookkeeping, and partial groups in the mix.
func TestEngineApplyBatchBitIdentical(t *testing.T) {
	ups := batchStream()
	for _, cfg := range []Config{
		{M: 3, C: 12, Seed: 11, TrackLocal: true, FullyDynamic: true},
		{M: 4, C: 10, Seed: 11, TrackLocal: true, TrackEta: true, FullyDynamic: true}, // partial group
		{M: 2, C: 64, Seed: 11, FullyDynamic: true},                                   // widest mask
		{M: 2, C: 65, Seed: 11, FullyDynamic: true},                                   // one past the mask width: fallback
		{M: 3, C: 12, Seed: 11, Workers: 4, FullyDynamic: true},                       // worker mode: fallback
	} {
		ref, err := NewEngine(cfg)
		if err != nil {
			t.Fatalf("NewEngine(%+v): %v", cfg, err)
		}
		ref.ApplyAll(ups)

		eng, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Deliver in uneven slabs so batch boundaries land mid-window.
		for i := 0; i < len(ups); i += 97 {
			hi := i + 97
			if hi > len(ups) {
				hi = len(ups)
			}
			eng.ApplyBatch(ups[i:hi])
		}

		if !reflect.DeepEqual(ref.Aggregates(), eng.Aggregates()) {
			t.Errorf("cfg %+v: ApplyBatch aggregates diverge from ApplyAll", cfg)
		}
		if ref.Processed() != eng.Processed() || ref.Deleted() != eng.Deleted() || ref.SelfLoops() != eng.SelfLoops() {
			t.Errorf("cfg %+v: tallies diverge: (%d,%d,%d) vs (%d,%d,%d)", cfg,
				ref.Processed(), ref.Deleted(), ref.SelfLoops(),
				eng.Processed(), eng.Deleted(), eng.SelfLoops())
		}
		ref.Close()
		eng.Close()
	}
}

// TestEngineApplyBatchAfterResume: a restored engine must rebuild its
// presence masks from the snapshot's adjacency state — a stale or empty
// mask table would silently skip processors on the suffix.
func TestEngineApplyBatchAfterResume(t *testing.T) {
	ups := batchStream()
	half := len(ups) / 2
	cfg := Config{M: 3, C: 12, Seed: 19, TrackLocal: true, TrackEta: true, FullyDynamic: true}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.ApplyBatch(ups[:half])

	var buf bytes.Buffer
	if err := eng.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ResumeEngine(cfg, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()

	eng.ApplyBatch(ups[half:])
	restored.ApplyBatch(ups[half:])
	if !reflect.DeepEqual(eng.Aggregates(), restored.Aggregates()) {
		t.Error("restored engine diverges from the original on a batch suffix")
	}

	// Cross-check against a fresh engine fed the whole stream per-event.
	ref, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	ref.ApplyAll(ups)
	if !reflect.DeepEqual(ref.Aggregates(), restored.Aggregates()) {
		t.Error("restored engine diverges from a fresh per-event run")
	}
}
