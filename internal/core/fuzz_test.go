package core

import (
	"testing"

	"rept/internal/graph"
)

// FuzzEngineEqualsSim feeds arbitrary byte-derived streams and (m, c)
// shapes into both engines and requires bit-identical counters — the
// cross-implementation property that guards the whole reproduction.
func FuzzEngineEqualsSim(f *testing.F) {
	f.Add(uint8(3), uint8(7), int64(1), []byte{0x10, 0x21, 0x20, 0x31, 0x30})
	f.Add(uint8(1), uint8(1), int64(2), []byte{0x10, 0x21, 0x20})
	f.Add(uint8(5), uint8(11), int64(3), []byte{0xab, 0xcd, 0xef, 0x12, 0x34, 0x56})
	f.Fuzz(func(t *testing.T, mRaw, cRaw uint8, seed int64, data []byte) {
		m := int(mRaw%6) + 1
		c := int(cRaw%13) + 1
		if len(data) > 256 {
			data = data[:256]
		}
		cfg := Config{M: m, C: c, Seed: seed, TrackLocal: true, TrackEta: true}
		eng, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := NewSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range data {
			u, v := graph.NodeID(b&0xf), graph.NodeID(b>>4)
			eng.Add(u, v)
			sim.Add(u, v)
		}
		aggE := eng.Aggregates()
		eng.Close()
		aggS := sim.Aggregates()
		for i := range aggE.TauProc {
			if aggE.TauProc[i] != aggS.TauProc[i] {
				t.Fatalf("TauProc[%d]: engine %d, sim %d", i, aggE.TauProc[i], aggS.TauProc[i])
			}
			if aggE.EtaProc[i] != aggS.EtaProc[i] {
				t.Fatalf("EtaProc[%d]: engine %d, sim %d", i, aggE.EtaProc[i], aggS.EtaProc[i])
			}
		}
		for v, x := range aggE.TauV1 {
			if aggS.TauV1[v] != x {
				t.Fatalf("TauV1[%d]: engine %d, sim %d", v, x, aggS.TauV1[v])
			}
		}
		for v, x := range aggE.TauV2 {
			if aggS.TauV2[v] != x {
				t.Fatalf("TauV2[%d]: engine %d, sim %d", v, x, aggS.TauV2[v])
			}
		}
		for v, x := range aggE.EtaV {
			if aggS.EtaV[v] != x {
				t.Fatalf("EtaV[%d]: engine %d, sim %d", v, x, aggS.EtaV[v])
			}
		}
		if aggE.Estimate().Global != aggS.Estimate().Global {
			t.Fatalf("Global: engine %v, sim %v", aggE.Estimate().Global, aggS.Estimate().Global)
		}
	})
}
