package core

import (
	"fmt"
	"io"
	"maps"

	"rept/internal/graph"
	"rept/internal/snapshot"
)

// fingerprint returns the statistical identity of the configuration: the
// fields that determine estimator state. Workers and BatchSize are
// execution details and excluded, so a snapshot can be restored under a
// different parallelism. A custom HashFamily cannot be fingerprinted; the
// caller must supply the identical family on restore.
func (c Config) fingerprint() snapshot.Fingerprint {
	return snapshot.Fingerprint{
		M:            c.M,
		C:            c.C,
		Seed:         c.Seed,
		TrackLocal:   c.TrackLocal,
		TrackEta:     c.TrackEta,
		FullyDynamic: c.FullyDynamic,
	}
}

// State drains pending batches and captures the engine's complete state:
// the config fingerprint, every processor's sampled adjacency and
// counters, and the processed/self-loop tallies. The returned state is a
// deep copy — the engine may keep ingesting edges afterwards without
// invalidating it.
func (e *Engine) State() *snapshot.EngineState {
	if e.closed {
		panic(ErrClosed)
	}
	if e.workers > 1 {
		e.flush()
	}
	st := &snapshot.EngineState{
		Fingerprint: e.cfg.fingerprint(),
		Processed:   e.processed,
		Deleted:     e.deleted,
		SelfLoops:   e.selfLoops,
		SampleShift: int(e.shift),
		Procs:       make([]snapshot.ProcState, len(e.procs)),
	}
	for i, p := range e.procs {
		p.reaccountLocal()
		ps := &st.Procs[i]
		ps.Tau, ps.Eta = p.tau, p.eta
		ps.Di, ps.Do, ps.Phantom = p.di, p.do, p.phantom
		ps.Edges = p.adj.AppendEdges(make([]graph.Edge, 0, p.adj.Edges()))
		ps.TauV = maps.Clone(p.tauV)
		ps.EtaV = maps.Clone(p.etaV)
		if p.tcnt != nil {
			ps.Tcnt = p.tcnt.toMap()
		}
	}
	return st
}

// WriteSnapshot drains pending batches and writes the engine's full state
// to w in the versioned binary snapshot format. The engine stays usable:
// checkpoints can be taken mid-stream. Restoring the snapshot with
// ResumeEngine under the same Config yields an estimator that produces
// identical estimates on any suffix stream.
func (e *Engine) WriteSnapshot(w io.Writer) error {
	return snapshot.WriteEngine(w, e.State())
}

// RestoreEngine builds an Engine for cfg and loads st into it. The
// snapshot's config fingerprint must match cfg exactly (M, C, Seed,
// TrackLocal, TrackEta); a mismatch is rejected with an error wrapping
// snapshot.ErrMismatch that names every differing field. RestoreEngine
// takes ownership of st.
func RestoreEngine(cfg Config, st *snapshot.EngineState) (*Engine, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	if err := e.loadState(st); err != nil {
		e.Close()
		return nil, err
	}
	return e, nil
}

// ResumeEngine reads a single-engine snapshot from r and restores it into
// a new Engine built for cfg. See RestoreEngine for the matching rules.
func ResumeEngine(cfg Config, r io.Reader) (*Engine, error) {
	st, err := snapshot.ReadEngine(r)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return RestoreEngine(cfg, st)
}

// loadState replays st into a freshly built engine.
func (e *Engine) loadState(st *snapshot.EngineState) error {
	if err := st.Fingerprint.Match(e.cfg.fingerprint()); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if len(st.Procs) != len(e.procs) {
		return fmt.Errorf("%w: %d processor records, want C=%d", snapshot.ErrCorrupt, len(st.Procs), len(e.procs))
	}
	if st.SampleShift < 0 || st.SampleShift > maxSampleShift {
		return fmt.Errorf("%w: sample shift %d out of range [0, %d]", snapshot.ErrCorrupt, st.SampleShift, maxSampleShift)
	}
	if st.SampleShift > 0 && e.trackEta {
		return fmt.Errorf("%w: sample shift %d on an η-tracking configuration (downsampling is unavailable there)", snapshot.ErrCorrupt, st.SampleShift)
	}
	e.shift = uint(st.SampleShift)
	for _, p := range e.procs {
		p.shift = e.shift
	}
	for i, p := range e.procs {
		ps := &st.Procs[i]
		// Map presence is dictated by the (already matched) fingerprint;
		// disagreement means the payload was assembled inconsistently.
		if p.trackLocal != (ps.TauV != nil) {
			return fmt.Errorf("%w: processor %d τ_v presence disagrees with TrackLocal=%v", snapshot.ErrCorrupt, i, p.trackLocal)
		}
		if (p.trackLocal && p.trackEta) != (ps.EtaV != nil) {
			return fmt.Errorf("%w: processor %d η_v presence disagrees with tracking flags", snapshot.ErrCorrupt, i)
		}
		if p.trackEta != (ps.Tcnt != nil) {
			return fmt.Errorf("%w: processor %d edge-triangle counters presence disagrees with η tracking=%v", snapshot.ErrCorrupt, i, p.trackEta)
		}
		// Every sampled edge owns exactly one per-edge closing counter
		// while η is tracked (entries are created at insertion and removed
		// with their edge on deletion), so the sizes must agree.
		if p.trackEta && len(ps.Tcnt) != len(ps.Edges) {
			return fmt.Errorf("%w: processor %d has %d edge-triangle counters for %d sampled edges", snapshot.ErrCorrupt, i, len(ps.Tcnt), len(ps.Edges))
		}
		for _, ed := range ps.Edges {
			if !p.adj.Add(ed.U, ed.V) {
				return fmt.Errorf("%w: processor %d sampled edge (%d,%d) is a duplicate or self-loop", snapshot.ErrCorrupt, i, ed.U, ed.V)
			}
			if p.trackEta {
				// With the size check above, per-edge presence makes the
				// counter key set exactly the sampled edge set — anything
				// else silently corrupts η on the resumed stream.
				if _, ok := ps.Tcnt[ed.Key()]; !ok {
					return fmt.Errorf("%w: processor %d sampled edge (%d,%d) has no edge-triangle counter", snapshot.ErrCorrupt, i, ed.U, ed.V)
				}
			}
		}
		p.tau, p.eta = ps.Tau, ps.Eta
		p.di, p.do, p.phantom = ps.Di, ps.Do, ps.Phantom
		if ps.TauV != nil {
			p.tauV = ps.TauV
		}
		if ps.EtaV != nil {
			p.etaV = ps.EtaV
		}
		if ps.Tcnt != nil {
			p.tcnt.load(ps.Tcnt)
		}
	}
	e.processed, e.deleted, e.selfLoops = st.Processed, st.Deleted, st.SelfLoops
	// The loop above loaded sampled edges through Adjacency.Add directly,
	// bypassing the presence-mask maintenance of the live insert path, so
	// rebuild the table wholesale before the engine takes events.
	e.rebuildMasks()
	return nil
}

// rebuildMasks repopulates the presence-mask table from the processors'
// current sampled adjacencies (no-op when the fast path is disabled).
func (e *Engine) rebuildMasks() {
	if e.masks == nil {
		return
	}
	for _, p := range e.procs {
		bit := p.maskBit
		p.adj.EachNode(func(u graph.NodeID) { e.masks.Or(u, bit) })
	}
}
