package core

import (
	"bytes"
	"errors"
	"math"
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"

	"rept/internal/gen"
	"rept/internal/graph"
	"rept/internal/snapshot"
)

// feed drives edges into an engine one at a time.
func feed(e *Engine, edges []graph.Edge) {
	for _, ed := range edges {
		e.Add(ed.U, ed.V)
	}
}

// sameEstimate compares two estimates for bit-identical equality,
// treating NaN variances (η not tracked) as equal.
func sameEstimate(a, b Estimate) bool {
	if a.Global != b.Global || a.EtaHat != b.EtaHat || a.Combined != b.Combined {
		return false
	}
	if a.Variance != b.Variance && !(math.IsNaN(a.Variance) && math.IsNaN(b.Variance)) {
		return false
	}
	return reflect.DeepEqual(a.Local, b.Local)
}

// TestSnapshotRoundTripProperty: for random (M, C, TrackLocal, TrackEta)
// configurations and a random interruption point, snapshot → restore →
// continue must produce estimates identical to an uninterrupted run —
// the core durability contract.
func TestSnapshotRoundTripProperty(t *testing.T) {
	edges := gen.Shuffle(gen.HolmeKim(300, 5, 0.4, 7), 3)
	rng := rand.New(rand.NewPCG(42, 99))

	for trial := 0; trial < 25; trial++ {
		cfg := Config{
			M:          1 + rng.IntN(12),
			C:          1 + rng.IntN(30),
			Seed:       int64(rng.Uint64()),
			TrackLocal: rng.IntN(2) == 0,
			TrackEta:   rng.IntN(2) == 0,
			Workers:    rng.IntN(3), // 0..2: both sequential and parallel paths
			BatchSize:  64,
		}
		cut := rng.IntN(len(edges) + 1)

		uninterrupted, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		feed(uninterrupted, edges)
		want := uninterrupted.Result()
		uninterrupted.Close()

		first, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		feed(first, edges[:cut])
		var buf bytes.Buffer
		if err := first.WriteSnapshot(&buf); err != nil {
			t.Fatalf("trial %d (%+v cut %d): WriteSnapshot: %v", trial, cfg, cut, err)
		}
		// The engine keeps running after a snapshot; finishing the stream
		// on it must also match the uninterrupted run.
		feed(first, edges[cut:])
		if got := first.Result(); !sameEstimate(got, want) {
			t.Errorf("trial %d (%+v cut %d): snapshotted-but-continued engine diverged: %+v vs %+v", trial, cfg, cut, got, want)
		}
		first.Close()

		resumed, err := ResumeEngine(cfg, &buf)
		if err != nil {
			t.Fatalf("trial %d (%+v cut %d): ResumeEngine: %v", trial, cfg, cut, err)
		}
		feed(resumed, edges[cut:])
		if got := resumed.Result(); !sameEstimate(got, want) {
			t.Errorf("trial %d (%+v cut %d): resumed engine diverged: %+v vs %+v", trial, cfg, cut, got, want)
		}
		if resumed.Processed() != uint64(len(edges)) {
			t.Errorf("trial %d: resumed Processed = %d, want %d", trial, resumed.Processed(), len(edges))
		}
		resumed.Close()
	}
}

// TestSnapshotResumeStateCounters: tallies (processed, self-loops) and
// the sampled-edge diagnostic survive the round trip exactly.
func TestSnapshotResumeStateCounters(t *testing.T) {
	cfg := Config{M: 4, C: 10, Seed: 5, TrackLocal: true}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	feed(e, gen.HolmeKim(100, 3, 0.5, 1))
	e.Add(7, 7) // self-loop
	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := ResumeEngine(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Processed() != e.Processed() || r.SelfLoops() != 1 {
		t.Errorf("resumed tallies = (%d, %d), want (%d, 1)", r.Processed(), r.SelfLoops(), e.Processed())
	}
	if r.SampledEdges() != e.SampledEdges() {
		t.Errorf("resumed SampledEdges = %d, want %d", r.SampledEdges(), e.SampledEdges())
	}
}

// TestResumeRejectsConfigMismatch: restoring under any differing
// statistical parameter must fail with a descriptive error; execution
// details (Workers, BatchSize) must not be rejected.
func TestResumeRejectsConfigMismatch(t *testing.T) {
	base := Config{M: 6, C: 15, Seed: 3, TrackLocal: true, TrackEta: true}
	e, err := NewEngine(base)
	if err != nil {
		t.Fatal(err)
	}
	feed(e, gen.HolmeKim(80, 3, 0.3, 2))
	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	e.Close()
	data := buf.Bytes()

	cases := []struct {
		name string
		mut  func(*Config)
		want string // substring the error must contain; "" means must succeed
	}{
		{"SameConfig", func(c *Config) {}, ""},
		{"DifferentWorkers", func(c *Config) { c.Workers = 4; c.BatchSize = 32 }, ""},
		{"DifferentM", func(c *Config) { c.M = 7 }, "M = 6 in snapshot, 7 in config"},
		{"DifferentC", func(c *Config) { c.C = 16 }, "C = 15 in snapshot, 16 in config"},
		{"DifferentSeed", func(c *Config) { c.Seed = 4 }, "Seed = 3 in snapshot, 4 in config"},
		{"LocalOff", func(c *Config) { c.TrackLocal = false }, "TrackLocal = true in snapshot, false in config"},
		{"EtaOff", func(c *Config) { c.TrackEta = false }, "TrackEta = true in snapshot, false in config"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			got, err := ResumeEngine(cfg, bytes.NewReader(data))
			if tc.want == "" {
				if err != nil {
					t.Fatalf("ResumeEngine: %v", err)
				}
				got.Close()
				return
			}
			if err == nil {
				got.Close()
				t.Fatal("mismatched resume succeeded")
			}
			if !errors.Is(err, snapshot.ErrMismatch) {
				t.Errorf("err = %v, want ErrMismatch", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err %q missing %q", err, tc.want)
			}
		})
	}
}

// TestRestoreRejectsInconsistentState: a state whose payload disagrees
// with its own fingerprint is corrupt, not restorable.
func TestRestoreRejectsInconsistentState(t *testing.T) {
	cfg := Config{M: 3, C: 4, Seed: 1, TrackLocal: true, TrackEta: true}
	mutations := []struct {
		name string
		mut  func(*snapshot.EngineState)
	}{
		{"MissingTauV", func(s *snapshot.EngineState) { s.Procs[0].TauV = nil }},
		{"MissingEtaV", func(s *snapshot.EngineState) { s.Procs[1].EtaV = nil }},
		{"MissingTcnt", func(s *snapshot.EngineState) { s.Procs[2].Tcnt = nil }},
		{"TcntEdgeCountSkew", func(s *snapshot.EngineState) {
			p := &s.Procs[0]
			p.Tcnt[graph.Key(1000, 1001)] = 1 // counter for an edge not sampled
		}},
		{"DuplicateEdge", func(s *snapshot.EngineState) {
			p := &s.Procs[0]
			if len(p.Edges) == 0 {
				p.Edges = []graph.Edge{{U: 1, V: 2}}
				p.Tcnt = map[uint64]int32{graph.Key(1, 2): 0}
			}
			p.Edges = append(p.Edges, p.Edges[0])
			p.Tcnt[graph.Key(2000, 2001)] = 0 // keep sizes consistent
		}},
	}
	for _, tc := range mutations {
		t.Run(tc.name, func(t *testing.T) {
			fresh, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			feed(fresh, gen.Complete(12))
			st := fresh.State()
			fresh.Close()
			tc.mut(st)
			if eng, err := RestoreEngine(cfg, st); err == nil {
				eng.Close()
				t.Error("inconsistent state restored without error")
			} else if !errors.Is(err, snapshot.ErrCorrupt) {
				t.Errorf("err = %v, want ErrCorrupt", err)
			}
		})
	}
}

// TestSnapshotAfterResumeIsCanonical: state → bytes → state → bytes is
// byte-identical, so repeated checkpoint/restore cycles cannot drift.
func TestSnapshotAfterResumeIsCanonical(t *testing.T) {
	cfg := Config{M: 5, C: 12, Seed: 9, TrackLocal: true, TrackEta: true, Workers: 3}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(e, gen.Shuffle(gen.HolmeKim(200, 4, 0.5, 11), 5))
	var first bytes.Buffer
	if err := e.WriteSnapshot(&first); err != nil {
		t.Fatal(err)
	}
	e.Close()

	r, err := ResumeEngine(cfg, bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := r.WriteSnapshot(&second); err != nil {
		t.Fatal(err)
	}
	r.Close()
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("snapshot of a resumed engine differs from the snapshot it was resumed from")
	}
}
