package core

import (
	"math"
	"testing"

	"rept/internal/gen"
	"rept/internal/graph"
)

// TestMergeGroupsEquivalence: merging K single-group shards (C = M) with
// the seeds a monolithic engine would derive must reproduce the
// monolithic engine's counters and estimate exactly. This requires
// feeding the shards the hash each group would have used, so we drive
// them through HashFamily overrides.
func TestMergeGroupsEquivalence(t *testing.T) {
	edges := gen.Shuffle(gen.HolmeKim(200, 5, 0.6, 4), 9)
	const m, k = 3, 3 // merged: c = 9 = 3 groups of 3
	mono, err := NewSim(Config{M: m, C: m * k, Seed: 77, TrackLocal: true, TrackEta: true})
	if err != nil {
		t.Fatal(err)
	}
	mono.AddAll(edges)
	monoAgg := mono.Aggregates()

	// Shards: group g of the monolithic engine uses family[g]; replicate
	// by overriding each shard's family with the monolithic one shifted.
	family := Config{M: m, C: m * k, Seed: 77}.hashFamily(k)
	shards := make([]*Aggregates, k)
	for g := 0; g < k; g++ {
		hg := family[g]
		sim, err := NewSim(Config{
			M: m, C: m, Seed: int64(1000 + g), TrackLocal: true, TrackEta: true,
			HashFamily: func(_ uint64, count, _ int) []Hasher {
				out := make([]Hasher, count)
				for i := range out {
					out[i] = hg
				}
				return out
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		sim.AddAll(edges)
		shards[g] = sim.Aggregates()
	}
	merged, err := MergeGroups(shards...)
	if err != nil {
		t.Fatal(err)
	}
	if merged.C != m*k || merged.M != m {
		t.Fatalf("merged layout M=%d C=%d, want %d %d", merged.M, merged.C, m, m*k)
	}
	for i := range monoAgg.TauProc {
		if merged.TauProc[i] != monoAgg.TauProc[i] {
			t.Fatalf("TauProc[%d]: merged %d, mono %d", i, merged.TauProc[i], monoAgg.TauProc[i])
		}
	}
	gm, gd := merged.Estimate(), monoAgg.Estimate()
	if math.Abs(gm.Global-gd.Global) > 1e-9 {
		t.Errorf("merged Global %v != mono %v", gm.Global, gd.Global)
	}
	for v, x := range gd.Local {
		if math.Abs(gm.Local[v]-x) > 1e-9 {
			t.Errorf("merged Local[%d] %v != mono %v", v, gm.Local[v], x)
		}
	}
}

func TestMergeGroupsValidation(t *testing.T) {
	mk := func(m, c int) *Aggregates {
		return &Aggregates{M: m, C: c, TauProc: make([]int64, c)}
	}
	if _, err := MergeGroups(); err == nil {
		t.Error("MergeGroups(): got nil error")
	}
	if _, err := MergeGroups(mk(3, 3), mk(4, 4)); err == nil {
		t.Error("mixed M: got nil error")
	}
	// Non-final shard with partial group.
	if _, err := MergeGroups(mk(3, 2), mk(3, 3)); err == nil {
		t.Error("partial group in non-final shard: got nil error")
	}
	// Final shard with partial group is fine.
	merged, err := MergeGroups(mk(3, 3), mk(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if merged.C != 5 {
		t.Errorf("merged C = %d, want 5", merged.C)
	}
	// Broken shard rejected.
	bad := &Aggregates{M: 3, C: 3, TauProc: make([]int64, 1)}
	if _, err := MergeGroups(bad); err == nil {
		t.Error("inconsistent shard: got nil error")
	}
}

func TestMergeGroupsEtaHandling(t *testing.T) {
	withEta := func(c int) *Aggregates {
		return &Aggregates{M: 3, C: c, TauProc: make([]int64, c), EtaProc: make([]int64, c)}
	}
	noEta := func(c int) *Aggregates {
		return &Aggregates{M: 3, C: c, TauProc: make([]int64, c)}
	}
	m1, err := MergeGroups(withEta(3), withEta(3))
	if err != nil {
		t.Fatal(err)
	}
	if m1.EtaProc == nil {
		t.Error("all shards tracked η but merged EtaProc is nil")
	}
	m2, err := MergeGroups(withEta(3), noEta(3))
	if err != nil {
		t.Fatal(err)
	}
	if m2.EtaProc != nil {
		t.Error("mixed η tracking must drop merged EtaProc")
	}
}

// TestMergeGroupsLocalReclassification: a shard with C = M stores local
// sums in TauV1 (it is one full group); a shard with C < M stores them in
// TauV2. After merging, non-final shards' sums must all be class 1.
func TestMergeGroupsLocalReclassification(t *testing.T) {
	s1 := &Aggregates{
		M: 3, C: 3, TauProc: make([]int64, 3),
		TauV1: map[graph.NodeID]int64{1: 5},
		TauV2: map[graph.NodeID]int64{},
	}
	s2 := &Aggregates{
		M: 3, C: 2, TauProc: make([]int64, 2),
		TauV1: map[graph.NodeID]int64{},
		TauV2: map[graph.NodeID]int64{1: 7, 2: 1},
	}
	merged, err := MergeGroups(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if merged.TauV1[1] != 5 || merged.TauV2[1] != 7 || merged.TauV2[2] != 1 {
		t.Errorf("merged locals wrong: TauV1=%v TauV2=%v", merged.TauV1, merged.TauV2)
	}
	// Final shard with full groups goes to class 1 too.
	s3 := &Aggregates{
		M: 3, C: 3, TauProc: make([]int64, 3),
		TauV1: map[graph.NodeID]int64{},
		TauV2: map[graph.NodeID]int64{4: 2}, // e.g. produced by a C<M run... reclassified
	}
	merged2, err := MergeGroups(s1, s3)
	if err != nil {
		t.Fatal(err)
	}
	if merged2.TauV1[4] != 2 || len(merged2.TauV2) != 0 {
		t.Errorf("full-group final shard not reclassified: TauV1=%v TauV2=%v", merged2.TauV1, merged2.TauV2)
	}
}

// TestVarianceEstimateCoverage: the plug-in variance must yield usable
// confidence intervals — ~95% of runs within 2.5 standard errors.
func TestVarianceEstimateCoverage(t *testing.T) {
	edges := gen.Shuffle(gen.HolmeKim(200, 6, 0.6, 6), 3)
	exact := graph.CountExact(edges, graph.ExactOptions{})
	tau := float64(exact.Tau)
	const runs = 150
	for _, cfg := range []Config{
		{M: 4, C: 4, TrackEta: true},  // c = m: Var needs no η but track anyway
		{M: 4, C: 3, TrackEta: true},  // c < m: η required
		{M: 3, C: 7, TrackEta: false}, // c₂ ≠ 0: η auto-enabled
	} {
		covered := 0
		for r := 0; r < runs; r++ {
			cfg.Seed = int64(300 + r)
			sim, err := NewSim(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sim.AddAll(edges)
			res := sim.Result()
			if math.IsNaN(res.Variance) {
				t.Fatalf("cfg %+v: Variance is NaN", cfg)
			}
			if math.Abs(res.Global-tau) <= 2.5*math.Sqrt(res.Variance) {
				covered++
			}
		}
		if frac := float64(covered) / runs; frac < 0.85 {
			t.Errorf("cfg M=%d C=%d: CI coverage %.2f < 0.85", cfg.M, cfg.C, frac)
		}
	}
	// Without η tracking, c < m has no variance estimate.
	sim, err := NewSim(Config{M: 4, C: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sim.AddAll(edges)
	if !math.IsNaN(sim.Result().Variance) {
		t.Error("c < m without TrackEta: Variance should be NaN")
	}
	// c = c₁m never needs η.
	sim2, err := NewSim(Config{M: 4, C: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sim2.AddAll(edges)
	if math.IsNaN(sim2.Result().Variance) {
		t.Error("c = 2m: Variance should be available without TrackEta")
	}
}
