// Package core implements REPT (random edge partition and triangle
// counting), the primary contribution of the reproduced paper: a one-pass
// parallel streaming estimator of global and local triangle counts.
//
// Two interchangeable engines produce bit-identical per-processor counters
// given the same Config:
//
//   - Engine: the deployable implementation. C logical processors, each
//     storing only its own sampled edge set E⁽ⁱ⁾ (expected p·|E| edges),
//     optionally spread over W goroutines with batched edge broadcast.
//     This matches the paper's distributed-memory model (Algorithms 1, 2).
//
//   - Sim: a single-pass evaluator over one shared colored adjacency
//     structure that computes every processor's counters simultaneously.
//     It is used by the experiment harness, where many Monte-Carlo runs
//     are needed; it also yields the counters of every c' ≤ C in the same
//     pass.
//
// Terminology follows the paper: p = 1/m is the edge sampling probability,
// c the number of logical processors, grouped as c = c₁·m + c₂ with c₁
// full groups of m processors and one partial group of c₂ (Section III-B).
// Each group uses its own independent hash function; within a group,
// processor j stores exactly the edges the group hash colors j.
package core

import (
	"errors"
	"fmt"

	"rept/internal/hashing"
	"rept/internal/mem"
)

// MaxM bounds the sampling denominator m; colors are stored in uint16 by
// the Sim engine and experiments never go beyond m = 1/p = 100.
const MaxM = 1 << 16

// Config parameterizes a REPT estimator.
type Config struct {
	// M is the sampling denominator: each processor samples each edge
	// with probability p = 1/M. M = 1 is the degenerate exact case.
	M int
	// C is the number of logical processors.
	C int
	// Seed drives the hash family; estimates are deterministic in
	// (Config, stream).
	Seed int64
	// TrackLocal enables per-node (local) triangle count estimation.
	TrackLocal bool
	// FullyDynamic enables signed streams: Delete/Apply with deletion
	// events. Counters then estimate the NET (live-graph) triangle
	// statistics; insert-only behavior is bit-identical whether the flag
	// is set or not. The flag is part of the snapshot fingerprint. With
	// fixed-probability hash-partition sampling the random-pairing
	// compensation of TRIÈST-FD degenerates to the identity — a deleted
	// sampled edge's slot is re-filled exactly when its key re-arrives —
	// so the m²/c unbiasing factors are unchanged; the d_i/d_o pairing
	// counters are still tracked (Engine.PairingCounters) for diagnostics
	// and carried by version-3 snapshots.
	FullyDynamic bool
	// TrackEta forces η⁽ⁱ⁾ bookkeeping even when the (M, C) combination
	// does not require it for the estimate (useful for diagnostics and
	// the variance-validation experiment). When C > M with C%M ≠ 0 the
	// bookkeeping is enabled regardless, as Algorithm 2 requires η̂.
	TrackEta bool
	// Workers is the number of goroutines the parallel Engine uses.
	// Values <= 1 select the sequential path. Ignored by Sim.
	Workers int
	// BatchSize is the broadcast batch length of the parallel Engine
	// (default 2048). Ignored by Sim and by the sequential path.
	BatchSize int
	// HashFamily overrides the edge-hash family (one Hasher per processor
	// group, each mapping edge keys uniformly to [0, M)). Nil selects the
	// default seeded 64-bit mixer family. Used by the hash-quality
	// ablation experiment; production callers should leave it nil.
	HashFamily func(masterSeed uint64, count, m int) []Hasher
	// Mem, when non-nil, is the byte ledger the engine's storage layers
	// (adjacency arenas, counter tables, mask tables) report their backing
	// bytes to at capacity-change moments. Purely observational: estimates
	// are bit-identical with or without it, gated by test.
	Mem *mem.Accountant
}

// Hasher maps canonical edge keys to colors in [0, m). Implementations
// must be deterministic and stateless.
type Hasher interface {
	Color(key uint64) int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.M < 1 {
		return fmt.Errorf("core: M = %d, need M >= 1", c.M)
	}
	if c.M > MaxM {
		return fmt.Errorf("core: M = %d exceeds MaxM = %d", c.M, MaxM)
	}
	if c.C < 1 {
		return fmt.Errorf("core: C = %d, need C >= 1", c.C)
	}
	return nil
}

// ErrClosed is returned or panicked on use of an engine after Close.
var ErrClosed = errors.New("core: engine is closed")

// ErrNotDynamic is panicked when a deletion is fed to an engine built
// without Config.FullyDynamic.
var ErrNotDynamic = errors.New("core: deletions require Config.FullyDynamic")

// ErrEtaDownsample is returned by Downsample on engines that track η: the
// per-edge closing counters accumulate against the historical sample and
// have no sound rescale, so adaptive resampling is unavailable there.
var ErrEtaDownsample = errors.New("core: cannot downsample an engine tracking η (per-edge closing counters have no sound rescale)")

// layout captures the processor-group structure for (m, c).
type layout struct {
	m, c   int
	c1     int // number of full groups (c / m)
	c2     int // processors in the trailing partial group (c % m)
	groups int // c1 + (1 if c2 > 0)
}

func newLayout(m, c int) layout {
	l := layout{m: m, c: c, c1: c / m, c2: c % m}
	l.groups = l.c1
	if l.c2 > 0 {
		l.groups++
	}
	return l
}

// groupOf returns the group index of logical processor i.
func (l layout) groupOf(i int) int { return i / l.m }

// colorOf returns the within-group color of logical processor i.
func (l layout) colorOf(i int) int { return i % l.m }

// isPartialGroup reports whether group g is the trailing partial group.
func (l layout) isPartialGroup(g int) bool { return l.c2 > 0 && g == l.c1 }

// isPartialProc reports whether logical processor i belongs to the
// partial group.
func (l layout) isPartialProc(i int) bool { return i >= l.c1*l.m }

// activeColors returns how many processors (colors) group g actually has.
func (l layout) activeColors(g int) int {
	if l.isPartialGroup(g) {
		return l.c2
	}
	return l.m
}

// needsEta reports whether the estimate requires η̂ (Algorithm 2 with
// c₂ ≠ 0, i.e. the Graybill–Deal combination of τ̂⁽¹⁾ and τ̂⁽²⁾).
func (l layout) needsEta() bool { return l.c1 > 0 && l.c2 > 0 }

// hashFamily resolves the configured or default hash family.
func (c Config) hashFamily(count int) []Hasher {
	if c.HashFamily != nil {
		return c.HashFamily(uint64(c.Seed), count, c.M)
	}
	return defaultHashFamily(uint64(c.Seed), count, c.M)
}

// defaultHashFamily wraps the seeded 64-bit mixer family from
// internal/hashing, the paper's h(·) and (h₁(·), h₂(·), ...).
func defaultHashFamily(masterSeed uint64, count, m int) []Hasher {
	fam := hashing.Family(masterSeed, count, m)
	out := make([]Hasher, count)
	for i := range fam {
		out[i] = fam[i]
	}
	return out
}
