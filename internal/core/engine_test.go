package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"rept/internal/gen"
	"rept/internal/graph"
)

// exactOf is a small helper computing ground truth with all options.
func exactOf(stream []graph.Edge) *graph.ExactResult {
	return graph.CountExact(stream, graph.ExactOptions{Local: true, Eta: true, EtaLocal: true})
}

// TestEngineExactWhenM1 pins the degenerate case p = 1: every processor
// samples everything, so the estimate is exact (global and local).
func TestEngineExactWhenM1(t *testing.T) {
	stream := gen.Shuffle(gen.HolmeKim(120, 4, 0.5, 1), 2)
	exact := exactOf(stream)
	for _, c := range []int{1, 3} {
		e, err := NewEngine(Config{M: 1, C: c, Seed: 7, TrackLocal: true})
		if err != nil {
			t.Fatal(err)
		}
		e.AddAll(stream)
		res := e.Result()
		if res.Global != float64(exact.Tau) {
			t.Errorf("c=%d: Global = %v, want exact %d", c, res.Global, exact.Tau)
		}
		for v, want := range exact.TauV {
			if want == 0 {
				continue
			}
			if got := res.Local[v]; got != float64(want) {
				t.Errorf("c=%d: Local[%d] = %v, want %d", c, v, got, want)
			}
		}
		e.Close()
	}
}

// engineConfigs exercises every structural case of the algorithm:
// c < m, c = m, c = c₁m, and c = c₁m + c₂ (Graybill–Deal combination).
var engineConfigs = []Config{
	{M: 1, C: 1},
	{M: 2, C: 1},
	{M: 4, C: 4},
	{M: 5, C: 3},
	{M: 3, C: 6},
	{M: 3, C: 7},
	{M: 2, C: 5},
	{M: 4, C: 9},
}

// TestEngineEqualsSim is the central cross-implementation property: the
// per-processor parallel engine and the shared-structure sim engine must
// produce bit-identical counters for every configuration and stream.
func TestEngineEqualsSim(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	for trial := 0; trial < 6; trial++ {
		n := 30 + rng.IntN(30)
		edges := gen.ErdosRenyi(n, n*3, uint64(trial+10))
		for _, base := range engineConfigs {
			cfg := base
			cfg.Seed = int64(trial*100 + cfg.M + cfg.C)
			cfg.TrackLocal = true
			cfg.TrackEta = true

			eng, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			eng.AddAll(edges)
			aggE := eng.Aggregates()
			eng.Close()

			sim, err := NewSim(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sim.AddAll(edges)
			aggS := sim.Aggregates()

			compareAggregates(t, cfg, aggE, aggS)
		}
	}
}

func compareAggregates(t *testing.T, cfg Config, aggE, aggS *Aggregates) {
	t.Helper()
	for i := range aggE.TauProc {
		if aggE.TauProc[i] != aggS.TauProc[i] {
			t.Fatalf("cfg %+v: TauProc[%d]: engine %d, sim %d", cfg, i, aggE.TauProc[i], aggS.TauProc[i])
		}
	}
	if (aggE.EtaProc == nil) != (aggS.EtaProc == nil) {
		t.Fatalf("cfg %+v: EtaProc nil mismatch", cfg)
	}
	for i := range aggE.EtaProc {
		if aggE.EtaProc[i] != aggS.EtaProc[i] {
			t.Fatalf("cfg %+v: EtaProc[%d]: engine %d, sim %d", cfg, i, aggE.EtaProc[i], aggS.EtaProc[i])
		}
	}
	compareCountMaps(t, cfg, "TauV1", aggE.TauV1, aggS.TauV1)
	compareCountMaps(t, cfg, "TauV2", aggE.TauV2, aggS.TauV2)
	compareCountMaps(t, cfg, "EtaV", aggE.EtaV, aggS.EtaV)
}

func compareCountMaps(t *testing.T, cfg Config, name string, a, b map[graph.NodeID]int64) {
	t.Helper()
	for v, x := range a {
		if x != b[v] {
			t.Fatalf("cfg %+v: %s[%d]: engine %d, sim %d", cfg, name, v, x, b[v])
		}
	}
	for v, x := range b {
		if x != 0 && a[v] != x {
			t.Fatalf("cfg %+v: %s[%d]: engine %d, sim %d", cfg, name, v, a[v], x)
		}
	}
}

// TestEngineParallelEqualsSequential: worker count is an execution detail
// and must not change any counter.
func TestEngineParallelEqualsSequential(t *testing.T) {
	edges := gen.Shuffle(gen.HolmeKim(200, 5, 0.6, 4), 9)
	for _, base := range []Config{{M: 3, C: 7}, {M: 2, C: 6}, {M: 5, C: 4}} {
		var ref *Aggregates
		for _, workers := range []int{1, 2, 3, 8, 64} {
			cfg := base
			cfg.Seed = 11
			cfg.TrackLocal = true
			cfg.TrackEta = true
			cfg.Workers = workers
			cfg.BatchSize = 97 // odd size to exercise partial batches
			eng, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			eng.AddAll(edges)
			agg := eng.Aggregates()
			eng.Close()
			if ref == nil {
				ref = agg
				continue
			}
			compareAggregates(t, cfg, ref, agg)
		}
	}
}

// TestSimAggregatesFor: a Sim built for C_max must reproduce, for every
// smaller c, exactly the global estimate of a Sim built for that c.
func TestSimAggregatesFor(t *testing.T) {
	edges := gen.ErdosRenyi(60, 240, 5)
	const m, cmax = 4, 11
	big, err := NewSim(Config{M: m, C: cmax, Seed: 21, TrackEta: true})
	if err != nil {
		t.Fatal(err)
	}
	big.AddAll(edges)
	for c := 1; c <= cmax; c++ {
		got, err := big.ResultFor(c)
		if err != nil {
			t.Fatal(err)
		}
		small, err := NewSim(Config{M: m, C: c, Seed: 21, TrackEta: true})
		if err != nil {
			t.Fatal(err)
		}
		small.AddAll(edges)
		want := small.Result()
		if math.Abs(got.Global-want.Global) > 1e-9 {
			t.Errorf("c=%d: ResultFor.Global = %v, dedicated Sim = %v", c, got.Global, want.Global)
		}
	}
	// Out-of-range requests fail.
	if _, err := big.ResultFor(0); err == nil {
		t.Error("ResultFor(0): got nil error")
	}
	if _, err := big.ResultFor(cmax + 1); err == nil {
		t.Error("ResultFor(cmax+1): got nil error")
	}
}

// TestEngineUnbiased checks E[τ̂] = τ and E[τ̂_v] = τ_v statistically, on a
// stream with η = 0 (disjoint triangles) where the variance is exactly
// τ(m²−c)/c, and on a clustered graph.
func TestEngineUnbiased(t *testing.T) {
	const runs = 400
	stream := gen.Shuffle(gen.DisjointTriangles(50), 1)
	exact := exactOf(stream)
	cfg := Config{M: 4, C: 3, TrackLocal: true}

	var sum float64
	localSum := make(map[graph.NodeID]float64)
	for r := 0; r < runs; r++ {
		cfg.Seed = int64(1000 + r)
		sim, err := NewSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sim.AddAll(stream)
		res := sim.Result()
		sum += res.Global
		for v, x := range res.Local {
			localSum[v] += x
		}
	}
	mean := sum / runs
	tau := float64(exact.Tau)
	sigma := math.Sqrt(VarREPT(cfg.M, cfg.C, tau, float64(exact.Eta)))
	if d := math.Abs(mean - tau); d > 5*sigma/math.Sqrt(runs) {
		t.Errorf("global mean = %v, want %v ± %v", mean, tau, 5*sigma/math.Sqrt(runs))
	}
	// Local estimates: each node has τ_v = 1; mean should be close to 1.
	// Per-node σ_v = sqrt(Var) with τ_v=1, η_v=0: sqrt((m²−c)/c).
	sigmaV := math.Sqrt((16.0 - 3) / 3)
	for v, s := range localSum {
		meanV := s / runs
		if d := math.Abs(meanV - 1); d > 6*sigmaV/math.Sqrt(runs) {
			t.Errorf("local mean at %d = %v, want 1 ± %v", v, meanV, 6*sigmaV/math.Sqrt(runs))
		}
	}
}

// TestEngineVarianceMatchesTheory validates Theorem 3 empirically across
// the three structural cases on a clustered graph with η > 0.
func TestEngineVarianceMatchesTheory(t *testing.T) {
	stream := gen.Shuffle(gen.HolmeKim(150, 5, 0.7, 8), 3)
	exact := exactOf(stream)
	tau, eta := float64(exact.Tau), float64(exact.Eta)
	const runs = 300
	for _, tc := range []struct{ m, c int }{{4, 2}, {4, 4}, {4, 8}} {
		var sum, sumSq float64
		for r := 0; r < runs; r++ {
			sim, err := NewSim(Config{M: tc.m, C: tc.c, Seed: int64(5000 + r)})
			if err != nil {
				t.Fatal(err)
			}
			sim.AddAll(stream)
			g := sim.Result().Global
			sum += g
			sumSq += (g - tau) * (g - tau)
		}
		mse := sumSq / runs
		want := VarREPT(tc.m, tc.c, tau, eta)
		// MSE of an unbiased estimator equals its variance; sampling noise
		// of the empirical MSE over 300 heavy-tailed runs is sizable, so
		// accept a generous band.
		if mse < want/2.5 || mse > want*2.5 {
			t.Errorf("m=%d c=%d: empirical MSE %.1f vs theoretical Var %.1f (ratio %.2f)",
				tc.m, tc.c, mse, want, mse/want)
		}
		mean := sum / runs
		if d := math.Abs(mean - tau); d > 6*math.Sqrt(want/runs) {
			t.Errorf("m=%d c=%d: mean %v, want %v", tc.m, tc.c, mean, tau)
		}
	}
}

// TestREPTBeatsParallelMascotVariance reproduces the headline claim on a
// small clustered graph: for c = m the empirical REPT MSE is far below the
// parallel-MASCOT theoretical variance.
func TestREPTBeatsParallelMascotVariance(t *testing.T) {
	// A shuffled complete graph maximizes edge sharing between triangles,
	// so η ≫ τ and the covariance term dominates parallel MASCOT's error.
	stream := gen.Shuffle(gen.Complete(40), 5)
	exact := exactOf(stream)
	tau, eta := float64(exact.Tau), float64(exact.Eta)
	if eta < 10*tau {
		t.Fatalf("test graph not clustered enough: τ=%v η=%v", tau, eta)
	}
	const m, c, runs = 5, 5, 200
	var sumSq float64
	for r := 0; r < runs; r++ {
		sim, err := NewSim(Config{M: m, C: c, Seed: int64(900 + r)})
		if err != nil {
			t.Fatal(err)
		}
		sim.AddAll(stream)
		g := sim.Result().Global
		sumSq += (g - tau) * (g - tau)
	}
	mse := sumSq / runs
	mascot := VarParallelMascot(m, c, tau, eta)
	if mse > mascot/2 {
		t.Errorf("REPT empirical MSE %.1f not well below parallel-MASCOT variance %.1f", mse, mascot)
	}
}

func TestEngineBookkeeping(t *testing.T) {
	eng, err := NewEngine(Config{M: 2, C: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.Add(1, 1) // self-loop
	eng.Add(1, 2)
	eng.Add(2, 3)
	eng.AddEdge(graph.Edge{U: 1, V: 3})
	if eng.Processed() != 3 {
		t.Errorf("Processed = %d, want 3", eng.Processed())
	}
	if eng.SelfLoops() != 1 {
		t.Errorf("SelfLoops = %d, want 1", eng.SelfLoops())
	}
	if s := eng.SampledEdges(); s < 0 || s > 6 {
		t.Errorf("SampledEdges = %d out of range", s)
	}
}

// TestEngineSnapshotMidStream: Result may be called mid-stream and the
// engine keeps accepting edges afterwards (interval workloads).
func TestEngineSnapshotMidStream(t *testing.T) {
	stream := gen.Complete(30)
	for _, workers := range []int{1, 4} {
		eng, err := NewEngine(Config{M: 1, C: 2, Seed: 3, Workers: workers, BatchSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		half := len(stream) / 2
		eng.AddAll(stream[:half])
		mid := eng.Result().Global
		wantMid := float64(graph.CountExact(stream[:half], graph.ExactOptions{}).Tau)
		if mid != wantMid {
			t.Errorf("workers=%d: mid-stream Global = %v, want %v", workers, mid, wantMid)
		}
		eng.AddAll(stream[half:])
		full := eng.Result().Global
		if want := float64(graph.CountExact(stream, graph.ExactOptions{}).Tau); full != want {
			t.Errorf("workers=%d: final Global = %v, want %v", workers, full, want)
		}
		eng.Close()
	}
}

func TestEngineCloseSemantics(t *testing.T) {
	eng, err := NewEngine(Config{M: 2, C: 3, Seed: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng.Add(1, 2)
	eng.Close()
	eng.Close() // idempotent
	defer func() {
		if recover() == nil {
			t.Error("Add after Close did not panic")
		}
	}()
	eng.Add(2, 3)
}

// TestDuplicateEdgesPinned documents behaviour on duplicate arrivals:
// engines stay mutually consistent and do not re-insert the edge.
func TestDuplicateEdgesPinned(t *testing.T) {
	stream := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 0, V: 1}, {U: 0, V: 2}}
	cfg := Config{M: 1, C: 1, Seed: 0, TrackLocal: true, TrackEta: true}
	eng, _ := NewEngine(cfg)
	eng.AddAll(stream)
	aggE := eng.Aggregates()
	eng.Close()
	sim, _ := NewSim(cfg)
	sim.AddAll(stream)
	compareAggregates(t, cfg, aggE, sim.Aggregates())
	// With p=1 the duplicate (0,1) arrival re-counts the triangle, and the
	// last duplicate (0,2) re-counts it again: τ̂ = 3 semi-triangles. This
	// pins the documented garbage-in behaviour.
	if got := aggE.Estimate().Global; got != 3 {
		t.Errorf("duplicate stream Global = %v, want pinned 3", got)
	}
}

func BenchmarkEngineSequential(b *testing.B) {
	edges := gen.HolmeKim(2000, 8, 0.5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, _ := NewEngine(Config{M: 10, C: 10, Seed: int64(i)})
		eng.AddAll(edges)
		_ = eng.Result()
		eng.Close()
	}
	b.ReportMetric(float64(len(edges)), "edges/op")
}

func BenchmarkSim(b *testing.B) {
	edges := gen.HolmeKim(2000, 8, 0.5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, _ := NewSim(Config{M: 10, C: 10, Seed: int64(i)})
		sim.AddAll(edges)
		_ = sim.Result()
	}
	b.ReportMetric(float64(len(edges)), "edges/op")
}
