package core

import (
	"fmt"
	"math/bits"
	"sync"

	"rept/internal/graph"
	"rept/internal/hashing"
	"rept/internal/obs"
)

const defaultBatchSize = 2048

// Engine is the deployable parallel REPT implementation: C logical
// processors, each with its own sampled edge set, fed by batched
// broadcast over up to Workers goroutines.
//
// Engine is not safe for concurrent use by multiple callers; a single
// streaming caller drives Add/Delete, and the engine parallelizes
// internally.
type Engine struct {
	cfg      Config
	lay      layout
	trackEta bool
	procs    []*proc
	fam      []Hasher
	seqCols  []int // per-group color scratch for the sequential path

	// masks is the presence-mask table behind ApplyBatch's
	// processor-skipping fast path, maintained by every sample mutation
	// on every processor. Nil when the engine runs worker goroutines
	// (the table is single-writer) or has more than 64 processors (one
	// uint64 bit per processor).
	masks *graph.MaskTable

	workers int
	batch   []graph.Update
	chans   []chan []graph.Update
	wg      sync.WaitGroup
	closed  bool

	processed uint64
	deleted   uint64
	selfLoops uint64

	// shift is the cumulative sample down-shift applied by Downsample;
	// the effective sampling denominator is M·2^shift.
	shift uint

	applied *obs.Counter // optional telemetry: events applied, nil when off
}

// Instrument attaches an events-applied counter incremented once per
// non-loop event the engine processes. Pass nil to detach. Call before
// feeding events; the counter must be allocation-free to record into
// (obs.Counter is), because apply is the hot path.
func (e *Engine) Instrument(applied *obs.Counter) { e.applied = applied }

// NewEngine builds an Engine for cfg. The hash family (one hash per
// processor group) is derived deterministically from cfg.Seed.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lay := newLayout(cfg.M, cfg.C)
	trackEta := cfg.TrackEta || lay.needsEta()
	fam := cfg.hashFamily(lay.groups)

	e := &Engine{cfg: cfg, lay: lay, trackEta: trackEta, fam: fam}
	e.seqCols = make([]int, lay.groups)
	e.procs = make([]*proc, cfg.C)
	downSeeds := downSeedFamily(uint64(cfg.Seed), lay.groups)
	for i := range e.procs {
		g := lay.groupOf(i)
		e.procs[i] = newProc(g, lay.colorOf(i), cfg.TrackLocal, trackEta, downSeeds[g], cfg.Mem)
	}

	e.workers = cfg.Workers
	if e.workers > cfg.C {
		e.workers = cfg.C
	}
	if e.workers <= 1 && cfg.C <= 64 {
		e.masks = graph.NewMaskTable()
		if cfg.Mem != nil {
			e.masks.SetAccountant(cfg.Mem)
		}
		for i, p := range e.procs {
			p.masks = e.masks
			p.maskBit = 1 << uint(i)
		}
	}
	if e.workers > 1 {
		bs := cfg.BatchSize
		if bs <= 0 {
			bs = defaultBatchSize
		}
		e.batch = make([]graph.Update, 0, bs)
		e.chans = make([]chan []graph.Update, e.workers)
		for w := 0; w < e.workers; w++ {
			e.chans[w] = make(chan []graph.Update)
			go e.worker(w, e.chans[w])
		}
	}
	return e, nil
}

// worker processes the logical processors owned by worker w (those with
// index ≡ w mod workers) for every broadcast batch. Batches are read-only
// shared slices; the coordinator waits for all workers before reusing the
// buffer, so no copies are needed.
func (e *Engine) worker(w int, ch <-chan []graph.Update) {
	cols := make([]int, len(e.fam))
	for batch := range ch {
		for _, up := range batch {
			key := graph.Key(up.U, up.V)
			for g, h := range e.fam {
				cols[g] = h.Color(key)
			}
			for i := w; i < len(e.procs); i += e.workers {
				p := e.procs[i]
				p.apply(up, key, cols[p.group])
			}
		}
		e.wg.Done()
	}
}

// Add feeds one stream edge insertion. Self-loops are skipped (a
// self-loop cannot be part of a triangle).
func (e *Engine) Add(u, v graph.NodeID) {
	e.apply(graph.Update{U: u, V: v})
}

// Delete feeds one stream edge deletion. It requires Config.FullyDynamic
// and panics with ErrNotDynamic otherwise; self-loops are skipped like
// insertions. Deleting an edge that is live but unsampled is the normal
// case and costs nothing extra; deleting an edge that was never inserted
// (a malformed stream) keeps the engine deterministic and finite but
// poisons the estimate (see PairingCounters).
func (e *Engine) Delete(u, v graph.NodeID) {
	if !e.cfg.FullyDynamic {
		panic(ErrNotDynamic)
	}
	e.apply(graph.Update{U: u, V: v, Del: true})
}

// Apply feeds one signed stream event. Deletions require
// Config.FullyDynamic (see Delete).
func (e *Engine) Apply(up graph.Update) {
	if up.Del && !e.cfg.FullyDynamic {
		panic(ErrNotDynamic)
	}
	e.apply(up)
}

// apply routes one event: inline fan-out in sequential mode, batch
// buffering (self-append into the retained buffer) in worker mode.
//
//rept:hotpath
func (e *Engine) apply(up graph.Update) {
	if e.closed {
		panic(ErrClosed)
	}
	if up.U == up.V {
		e.selfLoops++
		return
	}
	e.processed++
	if up.Del {
		e.deleted++
	}
	if e.applied != nil {
		e.applied.Inc()
	}
	if e.workers <= 1 {
		key := graph.Key(up.U, up.V)
		for g, h := range e.fam {
			e.seqCols[g] = h.Color(key)
		}
		for _, p := range e.procs {
			p.apply(up, key, e.seqCols[p.group])
		}
		return
	}
	e.batch = append(e.batch, up)
	if len(e.batch) == cap(e.batch) {
		e.flush()
	}
}

// AddEdge feeds one stream edge insertion.
func (e *Engine) AddEdge(edge graph.Edge) { e.Add(edge.U, edge.V) }

// AddAll feeds a slice of stream edge insertions in order.
func (e *Engine) AddAll(edges []graph.Edge) {
	for _, edge := range edges {
		e.Add(edge.U, edge.V)
	}
}

// ApplyAll feeds a slice of signed stream events in order. Deletions
// require Config.FullyDynamic.
func (e *Engine) ApplyAll(ups []graph.Update) {
	for _, up := range ups {
		e.Apply(up)
	}
}

// ApplyBatch feeds a slice of signed stream events in order, like
// ApplyAll, through the presence-mask fast path: for each insertion it
// visits the per-group storing processors (which may sample the edge)
// plus exactly the processors whose adjacency already contains BOTH
// endpoints, and skips the rest. A skipped processor is provably inert
// on the event — with an endpoint absent its common-neighborhood is
// empty, so τ/τ_v/η/η_v and the per-edge counters are all untouched —
// which makes the skip invisible to every estimator and snapshot:
// results stay bit-identical to ApplyAll. What changes is cost: on a
// 1/m-sampled layout most processors hold neither endpoint, so the
// per-event work drops from C processor visits to the handful that
// matter.
//
// Deletions take the classic all-processor path unconditionally — the
// per-processor deletion tallies (d_i/d_o/phantom) must advance on
// every processor to keep snapshot parity.
//
// When the fast path is unavailable (worker mode, or C > 64) it
// degrades to ApplyAll.
func (e *Engine) ApplyBatch(ups []graph.Update) {
	if e.masks == nil {
		e.ApplyAll(ups)
		return
	}
	if e.closed {
		panic(ErrClosed)
	}
	for _, up := range ups {
		if up.Del && !e.cfg.FullyDynamic {
			panic(ErrNotDynamic)
		}
		if up.U == up.V {
			e.selfLoops++
			continue
		}
		e.processed++
		if e.applied != nil {
			e.applied.Inc()
		}
		key := graph.Key(up.U, up.V)
		if up.Del {
			e.deleted++
			for g, h := range e.fam {
				e.seqCols[g] = h.Color(key)
			}
			for _, p := range e.procs {
				p.deleteEdge(up.U, up.V, key, e.seqCols[p.group])
			}
			continue
		}
		// Processors holding both endpoints, snapshotted BEFORE any
		// storing processor runs: a store below may set fresh mask bits
		// for u or v, and those processors must not be revisited for
		// this event.
		both := e.masks.Get(up.U) & e.masks.Get(up.V)
		for g, h := range e.fam {
			col := h.Color(key)
			// Record the color for every group — including a partial
			// group whose storing processor does not exist — because the
			// mask loop below needs it for any processor of the group.
			e.seqCols[g] = col
			i := g*e.lay.m + col
			if i < len(e.procs) {
				e.procs[i].processEdge(up.U, up.V, key, col)
				both &^= 1 << uint(i)
			}
		}
		for both != 0 {
			i := bits.TrailingZeros64(both)
			both &= both - 1
			p := e.procs[i]
			p.processEdge(up.U, up.V, key, e.seqCols[p.group])
		}
	}
}

// flush broadcasts the pending batch to all workers and waits for them,
// after which the batch buffer can be reused.
func (e *Engine) flush() {
	if len(e.batch) == 0 {
		return
	}
	e.wg.Add(e.workers)
	for _, ch := range e.chans {
		ch <- e.batch
	}
	e.wg.Wait()
	e.batch = e.batch[:0]
}

// Aggregates drains pending work and gathers the per-processor counters.
// The engine remains usable afterwards, so interval workloads can snapshot
// estimates mid-stream. Its result must not depend on iteration order
// (merges and snapshots consume it); the only map walks are commutative
// int64 accumulations.
//
//rept:deterministic
func (e *Engine) Aggregates() *Aggregates {
	if e.closed {
		panic(ErrClosed)
	}
	if e.workers > 1 {
		e.flush()
	}
	agg := &Aggregates{M: e.cfg.M, C: e.cfg.C, Shift: int(e.shift), TauProc: make([]int64, e.cfg.C)}
	if e.trackEta {
		agg.EtaProc = make([]int64, e.cfg.C)
	}
	if e.cfg.TrackLocal {
		agg.TauV1 = make(map[graph.NodeID]int64)
		agg.TauV2 = make(map[graph.NodeID]int64)
		if e.trackEta {
			agg.EtaV = make(map[graph.NodeID]int64)
		}
	}
	for i, p := range e.procs {
		p.reaccountLocal()
		agg.TauProc[i] = p.tau
		if e.trackEta {
			agg.EtaProc[i] = p.eta
		}
		if e.cfg.TrackLocal {
			dst := agg.TauV1
			if e.lay.isPartialProc(i) {
				dst = agg.TauV2
			}
			for v, t := range p.tauV {
				dst[v] += t
			}
			if e.trackEta {
				for v, h := range p.etaV {
					agg.EtaV[v] += h
				}
			}
		}
	}
	return agg
}

// Result drains pending work and evaluates the REPT estimators.
func (e *Engine) Result() Estimate { return e.Aggregates().Estimate() }

// Processed returns the number of non-loop events (insertions plus
// deletions) fed so far. It is monotone in stream position.
func (e *Engine) Processed() uint64 { return e.processed }

// Position returns the engine's stream position — identical to
// Processed, under the name the durability layer's contract uses: a
// write-ahead log addresses records by position, an engine restored
// from a snapshot at position P must be fed exactly the events at
// positions ≥ P (through Apply/ApplyAll, the replay entry points), and
// after replay Position equals the log's end.
func (e *Engine) Position() uint64 { return e.processed }

// Deleted returns the number of non-loop deletion events fed so far
// (always 0 unless Config.FullyDynamic).
func (e *Engine) Deleted() uint64 { return e.deleted }

// SelfLoops returns the number of self-loop arrivals skipped.
func (e *Engine) SelfLoops() uint64 { return e.selfLoops }

// PairingStats are the engine-wide random-pairing deletion tallies,
// summed over the logical processors (see snapshot.ProcState for the
// per-processor split).
type PairingStats struct {
	// SampledDeletes counts deletions whose edge was in some processor's
	// sample at deletion time (TRIÈST-FD's d_i, summed over processors).
	// Under hash-partition sampling each is compensated immediately by its
	// own removal, which is why the unbiasing factors need no adjustment.
	SampledDeletes uint64
	// UnsampledDeletes counts deletions outside the sample (d_o summed).
	UnsampledDeletes uint64
	// PhantomDeletes counts deletions of edges the hash says would have
	// been sampled but that were absent — i.e. deletions of edges never
	// inserted. Non-zero phantom counts flag a malformed stream whose
	// estimates are unreliable.
	PhantomDeletes uint64
}

// PairingCounters drains pending work and returns the engine-wide
// random-pairing deletion tallies.
func (e *Engine) PairingCounters() PairingStats {
	if e.closed {
		panic(ErrClosed)
	}
	if e.workers > 1 {
		e.flush()
	}
	var ps PairingStats
	for _, p := range e.procs {
		ps.SampledDeletes += p.di
		ps.UnsampledDeletes += p.do
		ps.PhantomDeletes += p.phantom
	}
	return ps
}

// EtaSaturations drains pending work and returns how many per-edge
// closing-counter updates were clamped at the int32 boundary instead of
// wrapping (see ctab). Zero on every realistic stream; a non-zero value
// flags an adversarially hot edge whose η̂ contribution is now a bounded
// under-estimate rather than silent wrap-around garbage. The tally is a
// diagnostic: it is not part of snapshots and resets on restore.
func (e *Engine) EtaSaturations() uint64 {
	if e.closed {
		panic(ErrClosed)
	}
	if e.workers > 1 {
		e.flush()
	}
	var n uint64
	for _, p := range e.procs {
		if p.tcnt != nil {
			n += p.tcnt.sat
		}
	}
	return n
}

// SampledEdges returns the total number of edges currently stored across
// all logical processors (expected ≈ C·|E_live|/M), a memory diagnostic.
// In fully-dynamic mode it tracks the live edge set: deletions of sampled
// edges shrink it.
func (e *Engine) SampledEdges() int {
	total := 0
	for _, p := range e.procs {
		total += p.adj.Edges()
	}
	return total
}

// maxSampleShift bounds the cumulative down-shift: the effective
// denominator M·2^shift stays far from int overflow and the keep filter's
// bit extraction stays well-defined.
const maxSampleShift = 32

// downSeedFamily derives one downsample-filter seed per processor group
// from the master seed. The derivation chain is salted so it is disjoint
// from the color-hash family chain (which consumes SplitMix64 values of
// the raw seed): the keep filter must be independent of the partition
// hashes or admission would correlate with color.
func downSeedFamily(masterSeed uint64, groups int) []uint64 {
	state := masterSeed ^ 0xd6e8feb86659fd93 // salt: distinct derivation chain
	out := make([]uint64, groups)
	for i := range out {
		out[i] = hashing.SplitMix64(&state)
	}
	return out
}

// scaleHalfAway divides x by 2^s rounding half away from zero — the
// deterministic counter rescale used by Downsample. Plain >> would round
// toward −∞, biasing rescaled counters downward on positive mass and
// upward on negative mass.
func scaleHalfAway(x int64, s uint) int64 {
	if s == 0 {
		return x
	}
	half := int64(1) << (s - 1)
	if x >= 0 {
		return (x + half) >> s
	}
	return -((-x + half) >> s)
}

// Downsample halves the sampling probability extra more times: the
// effective probability drops from p/2^shift to p/2^(shift+extra) and the
// effective denominator rises to M·2^(shift+extra). It is the
// memory-pressure adaptation of the control plane — TRIÈST keeps memory
// fixed by reservoir-evicting per edge; REPT's hash partition instead
// re-partitions wholesale, in one deterministic sweep:
//
//   - every stored edge failing the tightened keep filter is evicted from
//     its processor's adjacency (the filter is monotone in shift, so
//     surviving edges are exactly a fresh 2^-extra re-sample of the
//     sample, and a re-arriving key reproduces the same decision);
//   - τ⁽ⁱ⁾ and the per-node τ⁽ⁱ⁾_v are rescaled by ρ² = 2^(−2·extra)
//     with deterministic half-away-from-zero rounding, since each counts
//     wedge pairs whose joint retention probability shrank by ρ².
//
// The rescaled counters keep E[m_eff²·Στ⁽ⁱ⁾/c] = τ (up to ±½ rounding per
// counter), so estimates remain unbiased at the new effective denominator;
// Aggregates carry the shift and Estimate evaluates the pooled estimator
// at m_eff.
//
// Downsample refuses engines that track η: the per-edge closing counters
// count events against the historical sample and cannot be rescaled
// soundly (a controller degrades to top-K shrinking and load shedding on
// such configurations). It also requires a quiescent engine — the caller
// must not be feeding events concurrently, the same contract as State.
func (e *Engine) Downsample(extra int) error {
	if e.closed {
		return ErrClosed
	}
	if extra <= 0 {
		return fmt.Errorf("core: Downsample(%d): extra must be >= 1", extra)
	}
	if e.trackEta {
		return ErrEtaDownsample
	}
	newShift := e.shift + uint(extra)
	if newShift > maxSampleShift {
		return fmt.Errorf("core: Downsample: cumulative shift %d exceeds max %d", newShift, maxSampleShift)
	}
	if e.workers > 1 {
		e.flush()
	}
	s := 2 * uint(extra)
	var buf []graph.Edge
	for _, p := range e.procs {
		p.shift = newShift
		buf = p.adj.AppendEdges(buf[:0])
		for _, ed := range buf {
			if p.keeps(graph.Key(ed.U, ed.V)) {
				continue
			}
			_, goneU, goneV := p.adj.RemoveReport(ed.U, ed.V)
			if p.masks != nil {
				if goneU {
					p.masks.AndNot(ed.U, p.maskBit)
				}
				if goneV {
					p.masks.AndNot(ed.V, p.maskBit)
				}
			}
		}
		p.tau = scaleHalfAway(p.tau, s)
		for v, t := range p.tauV {
			if t2 := scaleHalfAway(t, s); t2 != 0 {
				p.tauV[v] = t2
			} else {
				delete(p.tauV, v)
			}
		}
		// Thinning evicted most stored edges but the retained capacities —
		// arena slack, spill slices, oversized tables — would keep every
		// byte resident (and on the ledger). Compacting is what turns the
		// statistical adaptation into an actual memory release.
		p.adj.Compact()
		p.reaccountLocal()
	}
	e.shift = newShift
	return nil
}

// SampleShift returns the cumulative down-shift applied by Downsample
// (0 for an engine that never adapted). The effective sampling
// probability is 1/(M·2^shift).
func (e *Engine) SampleShift() int { return int(e.shift) }

// Close stops the worker goroutines. The engine must not be used after
// Close. Close is idempotent.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	if e.workers > 1 {
		e.flush()
		for _, ch := range e.chans {
			close(ch)
		}
	}
	e.closed = true
}
