package core

import (
	"fmt"

	"rept/internal/graph"
)

// MergeGroups combines Aggregates from disjoint processor shards — e.g.
// one shard per machine in a cluster — into a single Aggregates
// equivalent to running REPT with the concatenated processor list.
//
// Requirements (checked):
//   - all shards share the same M;
//   - every shard except the last consists of full groups (C % M == 0),
//     so that the concatenation has the canonical c = c₁m + c₂ layout.
//
// Correctness additionally requires that shards were built with
// independent seeds (group hashes must be mutually independent, paper
// Section III-B); that is the caller's responsibility and cannot be
// verified from the counters.
//
// η counters are merged only when every shard tracked them; otherwise the
// merged EtaProc is nil and, if the merged layout needs Algorithm 2's
// combination, the variance weights degrade gracefully (η̂ = 0) while the
// estimate remains unbiased. The merge must not depend on map iteration
// order — merged aggregates feed canonical snapshots — so its map walks
// are restricted to commutative integer accumulation.
//
//rept:deterministic
func MergeGroups(shards ...*Aggregates) (*Aggregates, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("core: MergeGroups needs at least one shard")
	}
	m := shards[0].M
	shift := shards[0].Shift
	total := 0
	allEta := true
	allEtaV := true
	anyLocal := false
	for i, s := range shards {
		if s.M != m {
			return nil, fmt.Errorf("core: shard %d has M=%d, want %d", i, s.M, m)
		}
		if s.Shift != shift {
			return nil, fmt.Errorf("core: shard %d has sample shift %d, want %d (shards must downsample in lockstep)", i, s.Shift, shift)
		}
		if err := s.SanityCheck(); err != nil {
			return nil, err
		}
		if i < len(shards)-1 && s.C%m != 0 {
			return nil, fmt.Errorf("core: shard %d has C=%d not a multiple of M=%d (only the last shard may hold a partial group)", i, s.C, m)
		}
		total += s.C
		if s.EtaProc == nil {
			allEta = false
		}
		if s.EtaV == nil {
			allEtaV = false
		}
		if s.TauV1 != nil || s.TauV2 != nil {
			anyLocal = true
		}
	}
	out := &Aggregates{M: m, C: total, Shift: shift, TauProc: make([]int64, 0, total)}
	if allEta {
		out.EtaProc = make([]int64, 0, total)
	}
	if anyLocal {
		out.TauV1 = make(map[graph.NodeID]int64)
		out.TauV2 = make(map[graph.NodeID]int64)
	}
	for i, s := range shards {
		out.TauProc = append(out.TauProc, s.TauProc...)
		if allEta {
			out.EtaProc = append(out.EtaProc, s.EtaProc...)
		}
		if !anyLocal {
			continue
		}
		// Full-group shards contribute to class 1 regardless of how they
		// were classified locally (a shard with C ≤ M stores its sums in
		// TauV2 even though, within the merged layout, those processors
		// form full groups).
		last := i == len(shards)-1
		addInto := func(dst, src map[graph.NodeID]int64) {
			for v, x := range src {
				dst[v] += x
			}
		}
		if last && s.C%m != 0 {
			// The final shard may itself contain full groups + a partial
			// group; its class split is already correct.
			addInto(out.TauV1, s.TauV1)
			addInto(out.TauV2, s.TauV2)
		} else {
			addInto(out.TauV1, s.TauV1)
			addInto(out.TauV1, s.TauV2)
		}
		// η̂_v scales by the merged C, so a partial sum would bias it:
		// merge EtaV only when every shard tracked it.
		if allEtaV {
			if out.EtaV == nil {
				out.EtaV = make(map[graph.NodeID]int64)
			}
			addInto(out.EtaV, s.EtaV)
		}
	}
	return out, nil
}
