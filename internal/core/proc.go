package core

import "rept/internal/graph"

// proc is the state of one logical REPT processor in the parallel Engine.
// It sees every stream edge (to count semi-triangles closed against its
// sampled set) but stores only the edges its group hash colors with its
// own color — the paper's distributed-memory model where each processor
// keeps an expected p·|E| edges.
type proc struct {
	group      int
	color      int
	trackLocal bool
	trackEta   bool

	adj *graph.Adjacency

	tau  uint64
	eta  uint64
	tauV map[graph.NodeID]uint64
	etaV map[graph.NodeID]uint64
	// tcnt[g] is τ⁽ⁱ⁾_g: the number of triangles in Δ⁽ⁱ⁾ containing the
	// sampled edge g — the per-edge counters Algorithm 2 uses to maintain
	// η⁽ⁱ⁾ incrementally.
	tcnt map[uint64]uint32

	scratch []graph.NodeID
}

func newProc(group, color int, trackLocal, trackEta bool) *proc {
	p := &proc{
		group:      group,
		color:      color,
		trackLocal: trackLocal,
		trackEta:   trackEta,
		adj:        graph.NewAdjacency(),
	}
	if trackLocal {
		p.tauV = make(map[graph.NodeID]uint64)
		if trackEta {
			p.etaV = make(map[graph.NodeID]uint64)
		}
	}
	if trackEta {
		p.tcnt = make(map[uint64]uint32)
	}
	return p
}

// processEdge implements UpdateTriangleCNT / UpdateTrianglePairCNT from
// Algorithms 1 and 2 followed by the conditional insertion of the edge
// into E⁽ⁱ⁾. The caller filters self-loops and precomputes the edge's
// color under the processor's group hash once per (edge, group), since
// all m processors of a group share the hash.
func (p *proc) processEdge(u, v graph.NodeID, key uint64, color int) {
	p.scratch = p.adj.CommonNeighbors(u, v, p.scratch[:0])
	n := uint64(len(p.scratch))
	p.tau += n
	if p.trackLocal && n > 0 {
		p.tauV[u] += n
		p.tauV[v] += n
		for _, w := range p.scratch {
			p.tauV[w]++
		}
	}
	if p.trackEta {
		for _, w := range p.scratch {
			kuw, kvw := graph.Key(u, w), graph.Key(v, w)
			a, b := p.tcnt[kuw], p.tcnt[kvw]
			p.eta += uint64(a) + uint64(b)
			if p.etaV != nil {
				if ab := uint64(a) + uint64(b); ab > 0 {
					p.etaV[w] += ab
				}
				if a > 0 {
					p.etaV[u] += uint64(a)
				}
				if b > 0 {
					p.etaV[v] += uint64(b)
				}
			}
			p.tcnt[kuw] = a + 1
			p.tcnt[kvw] = b + 1
		}
	}
	if color == p.color {
		if p.adj.Add(u, v) && p.trackEta {
			p.tcnt[key] = uint32(n)
		}
	}
}
