package core

import (
	"rept/internal/graph"
	"rept/internal/hashing"
	"rept/internal/mem"
)

// proc is the state of one logical REPT processor in the parallel Engine.
// It sees every stream edge (to count semi-triangles closed against its
// sampled set) but stores only the edges its group hash colors with its
// own color — the paper's distributed-memory model where each processor
// keeps an expected p·|E| edges.
//
// Counters are signed: in fully-dynamic mode a processor's τ⁽ⁱ⁾ can go
// negative transiently (a deletion may be observed against sampled wedge
// edges whose closing insert was not, because the closing edge itself was
// unsampled when the wedge formed later). The estimator is unbiased for
// the NET triangle count exactly because those signed contributions
// cancel in expectation. On insert-only streams every counter stays
// non-negative and the arithmetic is bit-identical to the historical
// unsigned implementation.
type proc struct {
	group      int
	color      int
	trackLocal bool
	trackEta   bool

	adj *graph.Adjacency

	tau  int64
	eta  int64
	tauV map[graph.NodeID]int64
	etaV map[graph.NodeID]int64
	// tcnt holds τ⁽ⁱ⁾_g: the signed number of semi-triangle closings in
	// Δ⁽ⁱ⁾ involving the sampled edge g as a wedge edge — the per-edge
	// counters Algorithm 2 uses to maintain η⁽ⁱ⁾ incrementally. Entries
	// exist for exactly the sampled edges; deletion of a sampled edge
	// removes its entry (a re-insertion re-derives it from the current
	// sampled graph). Stored in a flat open-addressing table keyed by the
	// canonical 64-bit edge key, with saturating counter arithmetic (see
	// ctab).
	tcnt *ctab

	// Random-pairing deletion counters (TRIÈST-FD's d_i/d_o, specialized
	// to hash-partition sampling): di counts deletions of edges that were
	// in this processor's sample (each immediately compensated by its own
	// removal — the pairing is deterministic here, so the unbiasing factor
	// stays exactly 1), do counts deletions of edges outside the sample.
	// phantom counts malformed deletions: the hash says the edge would
	// have been sampled, yet it is absent — i.e. it was never inserted.
	di, do, phantom uint64

	// masks, when non-nil, is the engine-wide presence-mask table
	// (NodeID → bitmask of processors whose sampled adjacency contains
	// the node) and maskBit is this processor's bit. Every sample
	// mutation keeps them current; only Engine.ApplyBatch consumes them.
	masks   *graph.MaskTable
	maskBit uint64

	// shift is the cumulative sample down-shift (see Engine.Downsample):
	// the effective sampling probability is p/2^shift, realized by the
	// extra keep filter in keeps. downSeed seeds that filter, derived per
	// group so different groups stay mutually independent after
	// downsampling, exactly as their color hashes are.
	shift    uint
	downSeed uint64

	scratch []graph.NodeID

	// ac/acLocal reconcile the per-node counter maps (tauV, etaV) against
	// the byte ledger under mem.CompCounters. The maps mutate on the hot
	// path, so the reconciliation runs only at the engine's drain points
	// (Aggregates, State, Downsample) — the ledger for this slice of
	// CompCounters is barrier-fresh rather than transition-exact, which is
	// what its consumers (metrics scrapes, controller ticks) need.
	ac      *mem.Accountant
	acLocal int64
}

func newProc(group, color int, trackLocal, trackEta bool, downSeed uint64, ac *mem.Accountant) *proc {
	p := &proc{
		group:      group,
		color:      color,
		trackLocal: trackLocal,
		trackEta:   trackEta,
		downSeed:   downSeed,
		adj:        graph.NewAdjacency(),
		ac:         ac,
	}
	p.adj.SetAccountant(ac)
	if trackLocal {
		p.tauV = make(map[graph.NodeID]int64)
		if trackEta {
			p.etaV = make(map[graph.NodeID]int64)
		}
	}
	if trackEta {
		p.tcnt = newCtab(ac)
	}
	return p
}

// localCounterEntryBytes is the amortized accounting estimate for one
// per-node counter map entry (4-byte NodeID key, 8-byte int64 value, plus
// Go map bucket overhead — same convention as the view maps).
const localCounterEntryBytes = 28

// reaccountLocal reconciles the per-node counter maps' footprint against
// the ledger. Called only from the engine's drain points, never per event.
func (p *proc) reaccountLocal() {
	b := int64(len(p.tauV)+len(p.etaV)) * localCounterEntryBytes
	p.ac.Add(mem.CompCounters, b-p.acLocal)
	p.acLocal = b
}

// keeps reports whether the extra downsample filter admits the edge: the
// top shift bits of an independent mix of the key must be zero, so the
// admitted fraction is exactly 2^-shift and admission is monotone in
// shift (an edge kept at shift k+1 was kept at shift k). With shift 0 —
// the lifetime state of every engine that never downsamples — it is a
// single predictable branch on the hot path.
//
//rept:hotpath
func (p *proc) keeps(key uint64) bool {
	return p.shift == 0 || hashing.Mix64(key^p.downSeed)>>(64-p.shift) == 0
}

// processEdge implements UpdateTriangleCNT / UpdateTrianglePairCNT from
// Algorithms 1 and 2 followed by the conditional insertion of the edge
// into E⁽ⁱ⁾. The caller filters self-loops and precomputes the edge's
// color under the processor's group hash once per (edge, group), since
// all m processors of a group share the hash.
//
//rept:hotpath
func (p *proc) processEdge(u, v graph.NodeID, key uint64, color int) {
	var n int64
	if p.trackLocal || p.trackEta {
		p.scratch = p.adj.CommonNeighbors(u, v, p.scratch[:0])
		n = int64(len(p.scratch))
	} else {
		// Counting-only configuration: skip materializing the common
		// neighbors, the intersection size is all τ⁽ⁱ⁾ needs.
		n = int64(p.adj.CommonCount(u, v))
	}
	p.tau += n
	if p.trackLocal && n > 0 {
		p.tauV[u] += n
		p.tauV[v] += n
		for _, w := range p.scratch {
			p.tauV[w]++
		}
	}
	if p.trackEta {
		for _, w := range p.scratch {
			kuw, kvw := graph.Key(u, w), graph.Key(v, w)
			a, _ := p.tcnt.bump(kuw, 1)
			b, _ := p.tcnt.bump(kvw, 1)
			p.eta += int64(a) + int64(b)
			if p.etaV != nil {
				if ab := int64(a) + int64(b); ab != 0 {
					p.etaV[w] += ab
				}
				if a != 0 {
					p.etaV[u] += int64(a)
				}
				if b != 0 {
					p.etaV[v] += int64(b)
				}
			}
		}
	}
	if color == p.color && p.keeps(key) {
		added, newU, newV := p.adj.AddReport(u, v)
		if added {
			if p.trackEta {
				p.tcnt.setClamped(key, n)
			}
			if p.masks != nil {
				if newU {
					p.masks.Or(u, p.maskBit)
				}
				if newV {
					p.masks.Or(v, p.maskBit)
				}
			}
		}
	}
}

// deleteEdge is the exact signed inverse of processEdge: the removal of
// the edge from E⁽ⁱ⁾ (when sampled) followed by the reverse counter
// updates over the wedges the deletion un-closes. On a well-formed stream
// a matched insert/delete pair leaves every counter exactly where it
// started, so the net counters estimate the net (live-graph) statistics
// with the unchanged m²/c unbiasing factor — the deterministic-pairing
// analogue of TRIÈST-FD's random pairing under fixed-probability
// sampling.
//
// Whether the deleted edge itself is sampled does not affect the wedge
// arithmetic (an edge is never a wedge of its own triangle-closing
// events), so every processor applies the same signed update and the
// cross-processor counter semantics stay aligned.
//
//rept:hotpath
func (p *proc) deleteEdge(u, v graph.NodeID, key uint64, color int) {
	if color == p.color && p.keeps(key) {
		removed, goneU, goneV := p.adj.RemoveReport(u, v)
		if removed {
			p.di++
			if p.trackEta {
				p.tcnt.del(key)
			}
			if p.masks != nil {
				if goneU {
					p.masks.AndNot(u, p.maskBit)
				}
				if goneV {
					p.masks.AndNot(v, p.maskBit)
				}
			}
		} else {
			p.phantom++
		}
	} else {
		p.do++
	}
	var n int64
	if p.trackLocal || p.trackEta {
		p.scratch = p.adj.CommonNeighbors(u, v, p.scratch[:0])
		n = int64(len(p.scratch))
	} else {
		n = int64(p.adj.CommonCount(u, v))
	}
	p.tau -= n
	if p.trackLocal && n > 0 {
		p.tauV[u] -= n
		p.tauV[v] -= n
		for _, w := range p.scratch {
			p.tauV[w]--
		}
	}
	if p.trackEta {
		for _, w := range p.scratch {
			kuw, kvw := graph.Key(u, w), graph.Key(v, w)
			_, a := p.tcnt.bump(kuw, -1)
			_, b := p.tcnt.bump(kvw, -1)
			p.eta -= int64(a) + int64(b)
			if p.etaV != nil {
				if ab := int64(a) + int64(b); ab != 0 {
					p.etaV[w] -= ab
				}
				if a != 0 {
					p.etaV[u] -= int64(a)
				}
				if b != 0 {
					p.etaV[v] -= int64(b)
				}
			}
		}
	}
}

// apply dispatches one signed stream event.
//
//rept:hotpath
func (p *proc) apply(up graph.Update, key uint64, color int) {
	if up.Del {
		p.deleteEdge(up.U, up.V, key, color)
	} else {
		p.processEdge(up.U, up.V, key, color)
	}
}
