package core

import (
	"testing"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{M: 1, C: 1}, true},
		{Config{M: 10, C: 320}, true},
		{Config{M: 0, C: 1}, false},
		{Config{M: 1, C: 0}, false},
		{Config{M: -3, C: 4}, false},
		{Config{M: MaxM + 1, C: 1}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.cfg, err, c.ok)
		}
	}
}

func TestLayout(t *testing.T) {
	cases := []struct {
		m, c           int
		c1, c2, groups int
		needsEta       bool
		partialProcs   []int
	}{
		{m: 10, c: 3, c1: 0, c2: 3, groups: 1, needsEta: false, partialProcs: []int{0, 1, 2}},
		{m: 10, c: 10, c1: 1, c2: 0, groups: 1, needsEta: false, partialProcs: nil},
		{m: 10, c: 20, c1: 2, c2: 0, groups: 2, needsEta: false, partialProcs: nil},
		{m: 10, c: 24, c1: 2, c2: 4, groups: 3, needsEta: true, partialProcs: []int{20, 21, 22, 23}},
		{m: 1, c: 5, c1: 5, c2: 0, groups: 5, needsEta: false, partialProcs: nil},
	}
	for _, c := range cases {
		l := newLayout(c.m, c.c)
		if l.c1 != c.c1 || l.c2 != c.c2 || l.groups != c.groups {
			t.Errorf("newLayout(%d,%d) = {c1:%d c2:%d groups:%d}, want {%d %d %d}",
				c.m, c.c, l.c1, l.c2, l.groups, c.c1, c.c2, c.groups)
		}
		if l.needsEta() != c.needsEta {
			t.Errorf("newLayout(%d,%d).needsEta() = %v, want %v", c.m, c.c, l.needsEta(), c.needsEta)
		}
		partial := map[int]bool{}
		for _, p := range c.partialProcs {
			partial[p] = true
		}
		for i := 0; i < c.c; i++ {
			if l.isPartialProc(i) != partial[i] {
				t.Errorf("layout(%d,%d).isPartialProc(%d) = %v, want %v",
					c.m, c.c, i, l.isPartialProc(i), partial[i])
			}
			if g := l.groupOf(i); g != i/c.m {
				t.Errorf("groupOf(%d) = %d, want %d", i, g, i/c.m)
			}
			if j := l.colorOf(i); j != i%c.m {
				t.Errorf("colorOf(%d) = %d, want %d", i, j, i%c.m)
			}
		}
		// Active colors sum to c.
		total := 0
		for g := 0; g < l.groups; g++ {
			total += l.activeColors(g)
		}
		if total != c.c {
			t.Errorf("layout(%d,%d): Σ activeColors = %d, want %d", c.m, c.c, total, c.c)
		}
	}
}

func TestNewEngineRejectsBadConfig(t *testing.T) {
	if _, err := NewEngine(Config{M: 0, C: 1}); err == nil {
		t.Error("NewEngine with M=0: got nil error")
	}
	if _, err := NewSim(Config{M: 1, C: 0}); err == nil {
		t.Error("NewSim with C=0: got nil error")
	}
}

func TestVarREPTFormulas(t *testing.T) {
	const tau, eta = 1000.0, 50000.0
	// c = m: τ(m−1).
	if got, want := VarREPT(10, 10, tau, eta), tau*9; got != want {
		t.Errorf("VarREPT(10,10) = %v, want %v", got, want)
	}
	// c ≤ m: (τ(m²−c)+2η(m−c))/c.
	if got, want := VarREPT(10, 4, tau, eta), (tau*96+2*eta*6)/4; got != want {
		t.Errorf("VarREPT(10,4) = %v, want %v", got, want)
	}
	// c = c₁m: τ(m−1)/c₁.
	if got, want := VarREPT(10, 30, tau, eta), tau*9/3; got != want {
		t.Errorf("VarREPT(10,30) = %v, want %v", got, want)
	}
	// c₂ ≠ 0: harmonic combination.
	v1 := tau * 9 / 2
	v2 := (tau*(100-4) + 2*eta*(10-4)) / 4
	if got, want := VarREPT(10, 24, tau, eta), v1*v2/(v1+v2); got != want {
		t.Errorf("VarREPT(10,24) = %v, want %v", got, want)
	}
	// Combination is never worse than its best component.
	if VarREPT(10, 24, tau, eta) > v1 {
		t.Error("combined variance exceeds component variance")
	}
	// Parallel MASCOT: (τ(m²−1)+2η(m−1))/c.
	if got, want := VarParallelMascot(10, 5, tau, eta), (tau*99+2*eta*9)/5; got != want {
		t.Errorf("VarParallelMascot(10,5) = %v, want %v", got, want)
	}
	// REPT strictly better than parallel MASCOT whenever η > 0, c > 1.
	for _, c := range []int{2, 5, 10, 15, 20, 24, 30} {
		if VarREPT(10, c, tau, eta) >= VarParallelMascot(10, c, tau, eta) {
			t.Errorf("c=%d: VarREPT %v not below VarParallelMascot %v",
				c, VarREPT(10, c, tau, eta), VarParallelMascot(10, c, tau, eta))
		}
	}
	// Degenerate exact case m=1: zero variance.
	if got := VarREPT(1, 4, tau, eta); got != 0 {
		t.Errorf("VarREPT(1,4) = %v, want 0", got)
	}
	// NRMSE helper.
	if got := NRMSETheory(400, 100); got != 0.2 {
		t.Errorf("NRMSETheory(400,100) = %v, want 0.2", got)
	}
}

func TestEstimateCombination(t *testing.T) {
	// Hand-computed Graybill–Deal combination: m=3, c=7 (c1=2, c2=1).
	agg := &Aggregates{
		M:       3,
		C:       7,
		TauProc: []int64{5, 7, 3, 6, 4, 5, 2}, // sum1=30 (first 6), sum2=2
		EtaProc: []int64{1, 0, 2, 1, 1, 0, 1}, // total 6
	}
	if err := agg.SanityCheck(); err != nil {
		t.Fatal(err)
	}
	est := agg.Estimate()
	m := 3.0
	t1 := m / 2 * 30    // 45
	t2 := m * m / 1 * 2 // 18
	etaHat := m * m * m * 6 / 7
	w1 := t1 * (m - 1) / 2
	w2 := (t1*(m*m-1) + 2*etaHat*(m-1)) / 1
	want := (w2*t1 + w1*t2) / (w1 + w2)
	if !closeTo(est.Global, want, 1e-9) {
		t.Errorf("Global = %v, want %v", est.Global, want)
	}
	if !est.Combined {
		t.Error("Combined = false, want true")
	}
	if !closeTo(est.EtaHat, etaHat, 1e-9) {
		t.Errorf("EtaHat = %v, want %v", est.EtaHat, etaHat)
	}
}

func TestEstimatePureCases(t *testing.T) {
	// c ≤ m: τ̂ = m²/c Σ.
	agg := &Aggregates{M: 10, C: 4, TauProc: []int64{1, 2, 3, 4}}
	if est := agg.Estimate(); est.Global != 100.0*10/4 || est.Combined {
		t.Errorf("c≤m: Global = %v (combined=%v), want 250 (false)", est.Global, est.Combined)
	}
	// c = c₁m: τ̂ = m/c₁ Σ.
	tp := make([]int64, 20)
	for i := range tp {
		tp[i] = 2
	}
	agg = &Aggregates{M: 10, C: 20, TauProc: tp}
	if est := agg.Estimate(); est.Global != 10.0/2*40 {
		t.Errorf("c=c1m: Global = %v, want 200", est.Global)
	}
	// All-zero counters with combination: falls back to pooled 0.
	agg = &Aggregates{M: 3, C: 7, TauProc: make([]int64, 7), EtaProc: make([]int64, 7)}
	if est := agg.Estimate(); est.Global != 0 || est.Combined {
		t.Errorf("zero counters: Global = %v (combined=%v), want 0 (false)", est.Global, est.Combined)
	}
}

func TestAggregatesSanityCheck(t *testing.T) {
	bad := &Aggregates{M: 2, C: 3, TauProc: make([]int64, 2)}
	if err := bad.SanityCheck(); err == nil {
		t.Error("SanityCheck accepted wrong TauProc length")
	}
	bad = &Aggregates{M: 2, C: 3, TauProc: make([]int64, 3), EtaProc: make([]int64, 1)}
	if err := bad.SanityCheck(); err == nil {
		t.Error("SanityCheck accepted wrong EtaProc length")
	}
}

func closeTo(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
