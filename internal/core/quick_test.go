package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"rept/internal/graph"
)

// This file holds testing/quick property tests on the estimator algebra
// and the engine pair, complementing the table-driven tests.

// TestQuickEngineEqualsSim: for arbitrary small random streams and
// arbitrary (m, c) configurations, Engine and Sim agree exactly.
func TestQuickEngineEqualsSim(t *testing.T) {
	f := func(seed uint64, mRaw, cRaw uint8, edgeBits []uint16) bool {
		m := int(mRaw%6) + 1
		c := int(cRaw%13) + 1
		// Decode a stream over 16 nodes from the raw fuzz bytes.
		edges := make([]graph.Edge, 0, len(edgeBits))
		for _, b := range edgeBits {
			edges = append(edges, graph.Edge{
				U: graph.NodeID(b & 0xf),
				V: graph.NodeID((b >> 4) & 0xf),
			})
		}
		cfg := Config{M: m, C: c, Seed: int64(seed % (1 << 30)), TrackLocal: true, TrackEta: true}
		eng, err := NewEngine(cfg)
		if err != nil {
			return false
		}
		eng.AddAll(edges)
		aggE := eng.Aggregates()
		eng.Close()
		sim, err := NewSim(cfg)
		if err != nil {
			return false
		}
		sim.AddAll(edges)
		aggS := sim.Aggregates()
		for i := range aggE.TauProc {
			if aggE.TauProc[i] != aggS.TauProc[i] || aggE.EtaProc[i] != aggS.EtaProc[i] {
				return false
			}
		}
		for v, x := range aggE.TauV1 {
			if aggS.TauV1[v] != x {
				return false
			}
		}
		for v, x := range aggE.TauV2 {
			if aggS.TauV2[v] != x {
				return false
			}
		}
		for v, x := range aggE.EtaV {
			if aggS.EtaV[v] != x {
				return false
			}
		}
		return aggE.Estimate().Global == aggS.Estimate().Global
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickPooledLinearity: in the pure cases (c₁ = 0 or c₂ = 0) the
// estimator is linear in the counters: scaling every τ⁽ⁱ⁾ by k scales τ̂
// by k.
func TestQuickPooledLinearity(t *testing.T) {
	f := func(mRaw, cRaw uint8, counts []uint16, kRaw uint8) bool {
		m := int(mRaw%8) + 1
		c := int(cRaw%4+1) * m // multiple of m => pure case
		k := int64(kRaw%7) + 2
		tp := make([]int64, c)
		for i := range tp {
			if len(counts) > 0 {
				tp[i] = int64(counts[i%len(counts)])
			}
		}
		scaled := make([]int64, c)
		for i := range tp {
			scaled[i] = tp[i] * k
		}
		a1 := &Aggregates{M: m, C: c, TauProc: tp}
		a2 := &Aggregates{M: m, C: c, TauProc: scaled}
		g1 := a1.Estimate().Global
		g2 := a2.Estimate().Global
		return math.Abs(g2-float64(k)*g1) < 1e-6*(1+math.Abs(g2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickCombinationBounded: the Graybill–Deal combination is a convex
// combination, so τ̂ always lies between τ̂⁽¹⁾ and τ̂⁽²⁾.
func TestQuickCombinationBounded(t *testing.T) {
	f := func(mRaw uint8, c2Raw uint8, c1Raw uint8, s1, s2, e uint16) bool {
		m := int(mRaw%8) + 2
		c1 := int(c1Raw%3) + 1
		c2 := int(c2Raw)%(m-1) + 1
		c := c1*m + c2
		tp := make([]int64, c)
		// Spread sum1 over full-group processors and sum2 over partial.
		tp[0] = int64(s1)
		tp[c1*m] = int64(s2)
		ep := make([]int64, c)
		ep[0] = int64(e)
		agg := &Aggregates{M: m, C: c, TauProc: tp, EtaProc: ep}
		est := agg.Estimate()

		mf := float64(m)
		t1 := mf / float64(c1) * float64(s1)
		t2 := mf * mf / float64(c2) * float64(s2)
		lo, hi := math.Min(t1, t2), math.Max(t1, t2)
		return est.Global >= lo-1e-9 && est.Global <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickVarREPTMonotoneInC: for fixed m, REPT's theoretical variance is
// non-increasing in c at the group boundaries c = c₁·m (more processors
// never hurt).
func TestQuickVarREPTMonotoneInC(t *testing.T) {
	f := func(mRaw uint8, tauRaw, etaRaw uint16) bool {
		m := int(mRaw%12) + 2
		tau := float64(tauRaw) + 1
		eta := float64(etaRaw)
		prev := math.Inf(1)
		for c1 := 1; c1 <= 6; c1++ {
			v := VarREPT(m, c1*m, tau, eta)
			if v > prev+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickVarREPTBelowMascot: REPT's variance never exceeds parallel
// MASCOT's for the same (m, c) — the paper's central inequality.
func TestQuickVarREPTBelowMascot(t *testing.T) {
	f := func(mRaw, cRaw uint8, tauRaw, etaRaw uint16) bool {
		m := int(mRaw%15) + 2
		c := int(cRaw%40) + 1
		tau := float64(tauRaw) + 1
		eta := float64(etaRaw)
		return VarREPT(m, c, tau, eta) <= VarParallelMascot(m, c, tau, eta)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickSampledEdgesConcentrate: the total stored edges across
// processors concentrates around C/M·|E| (memory model check).
func TestQuickSampledEdgesConcentrate(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	for trial := 0; trial < 5; trial++ {
		m := rng.IntN(6) + 2
		c := rng.IntN(2*m) + 1
		const n = 3000
		eng, err := NewEngine(Config{M: m, C: c, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			eng.Add(graph.NodeID(rng.IntN(1000)), graph.NodeID(rng.IntN(1000)))
		}
		edges := float64(eng.Processed()) // distinct-ish; collisions rare but possible
		want := edges * float64(c) / float64(m)
		got := float64(eng.SampledEdges())
		if got < want*0.8-30 || got > want*1.2+30 {
			t.Errorf("m=%d c=%d: SampledEdges = %v, want ≈ %v", m, c, got, want)
		}
		eng.Close()
	}
}
