package core

import (
	"testing"

	"rept/internal/gen"
	"rept/internal/graph"
)

// TestApplyAllSteadyStateZeroAlloc gates the engine's steady-state
// zero-allocation claim: with the working set warmed up, a fully-dynamic
// churn block over a stable node universe — deletions, re-insertions,
// duplicate traffic, every counter family enabled — must not allocate.
// This is what keeps long-running ingest free of GC pressure regardless
// of stream length.
func TestApplyAllSteadyStateZeroAlloc(t *testing.T) {
	e, err := NewEngine(Config{M: 2, C: 4, Seed: 7, FullyDynamic: true, TrackLocal: true, TrackEta: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	base := gen.Shuffle(gen.HolmeKim(300, 6, 0.4, 5), 2)
	e.AddAll(base)

	// The churn block deletes and re-inserts a slice of live edges (LIFO,
	// so the block is well-formed against the live graph each round).
	slice := base[:128]
	block := make([]graph.Update, 0, 2*len(slice))
	for i := len(slice) - 1; i >= 0; i-- {
		block = append(block, graph.Update{U: slice[i].U, V: slice[i].V, Del: true})
	}
	for _, ed := range slice {
		block = append(block, graph.Update{U: ed.U, V: ed.V})
	}

	allocs := testing.AllocsPerRun(100, func() {
		e.ApplyAll(block)
	})
	if allocs != 0 {
		t.Errorf("steady-state ApplyAll allocates %.1f per %d-event block, want 0", allocs, len(block))
	}
}

// TestDeleteSteadyStateZeroAlloc gates the per-event deletion path the
// same way: once the working set is warm, Engine.Delete followed by
// re-insertion of the same edges — the tombstone-recycling churn the ctab
// ping-pong buffers exist for — must not allocate.
func TestDeleteSteadyStateZeroAlloc(t *testing.T) {
	e, err := NewEngine(Config{M: 2, C: 4, Seed: 7, FullyDynamic: true, TrackLocal: true, TrackEta: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	base := gen.Shuffle(gen.HolmeKim(300, 6, 0.4, 5), 2)
	e.AddAll(base)

	slice := base[:64]
	allocs := testing.AllocsPerRun(100, func() {
		for i := len(slice) - 1; i >= 0; i-- {
			e.Delete(slice[i].U, slice[i].V)
		}
		for _, ed := range slice {
			e.Add(ed.U, ed.V)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Delete/Add churn allocates %.1f per %d-event round, want 0", allocs, 2*len(slice))
	}
}
