package core

import (
	"math"

	"rept/internal/hashing"
	"rept/internal/mem"
)

// ctab is the per-processor edge→counter table behind proc.tcnt: an open-
// addressing map from canonical 64-bit edge keys to the signed per-edge
// closing counters τ⁽ⁱ⁾_g of Algorithm 2. Entries exist for exactly the
// processor's sampled edges, so the table's footprint is the sampled-set
// size with two flat arrays — no per-bucket pointers, no map header
// traffic on the per-event hot path.
//
// Key 0 is Key(0, 0), a self-loop no caller ever stores, and serves as
// the empty sentinel; ^uint64(0) is Key(max, max), likewise a self-loop,
// and serves as the tombstone left by fully-dynamic deletions. Probe
// chains skip tombstones; insertion reuses the first tombstone on its
// chain, so steady-state churn (delete + re-insert of the same keys)
// recycles slots without growing the table. When tombstones still
// accumulate past the load ceiling the table is rehashed into a retained
// spare buffer (ping-pong), keeping the steady state allocation-free.
//
// Counter arithmetic saturates instead of wrapping: a hot edge driven to
// ±2³¹ clamps and increments sat, surfaced as Engine.EtaSaturations — a
// wrapped counter would silently corrupt η̂, a clamped one bounds the
// error and reports it.
type ctab struct {
	keys []uint64
	vals []satcount
	// spareK/spareV are the retained ping-pong buffers for same-capacity
	// tombstone purges.
	spareK []uint64
	spareV []satcount
	live   int // entries with a real key
	used   int // live + tombstones
	sat    uint64
	// ac/acBytes reconcile the table's footprint (main plus spare buffers)
	// against the byte ledger at init and rehash — the only moments
	// capacity changes — so the per-event paths never touch the ledger.
	ac      *mem.Accountant
	acBytes int64
}

// satcount is a per-edge closing counter that clamps at the int32 bounds
// instead of wrapping (a wrapped counter would silently corrupt η̂; a
// clamped one bounds the error and surfaces it via Engine.EtaSaturations).
// All arithmetic on it goes through the //rept:sathelper methods bump and
// setClamped; satarith reports any raw additive operator elsewhere.
//
//rept:satcounter
type satcount int32

const (
	ctabEmpty    = uint64(0)
	ctabTomb     = ^uint64(0)
	ctabMinSize  = 16
	ctabMaxInt32 = int32(math.MaxInt32)
	ctabMinInt32 = int32(math.MinInt32)
)

func newCtab(ac *mem.Accountant) *ctab { return &ctab{ac: ac} }

// ctabSlotBytes is the accounted size of one bucket across the parallel
// key (uint64) and value (satcount) arrays.
const ctabSlotBytes = 12

// reaccount reconciles the ledger with the table's current capacity,
// called only from the cold init/rehash transitions.
func (t *ctab) reaccount() {
	b := int64(len(t.keys)+len(t.spareK)) * ctabSlotBytes
	t.ac.Add(mem.CompCounters, b-t.acBytes)
	t.acBytes = b
}

// len returns the number of live entries.
func (t *ctab) len() int { return t.live }

// get returns the counter at k (0 if absent).
//
//rept:hotpath
func (t *ctab) get(k uint64) int32 {
	if t.live == 0 {
		return 0
	}
	mask := uint64(len(t.keys) - 1)
	for i := hashing.Mix64(k) & mask; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case k:
			return int32(t.vals[i])
		case ctabEmpty:
			return 0
		}
	}
}

// init allocates the initial buckets, the one-time cold transition out of
// slot's probe loop (kept separate so the //rept:hotpath gate sees slot
// itself allocation-free).
func (t *ctab) init() {
	t.keys = make([]uint64, ctabMinSize)
	t.vals = make([]satcount, ctabMinSize)
	t.reaccount()
}

// slot returns the index holding k, inserting a zero-valued entry
// (reusing a tombstone when the probe chain has one) if absent.
//
//rept:hotpath
func (t *ctab) slot(k uint64) int {
	if len(t.keys) == 0 {
		t.init()
	} else if t.used >= len(t.keys)*3/4 {
		t.rehash()
	}
	mask := uint64(len(t.keys) - 1)
	tomb := -1
	for i := hashing.Mix64(k) & mask; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case k:
			return int(i)
		case ctabTomb:
			if tomb < 0 {
				tomb = int(i)
			}
		case ctabEmpty:
			j := int(i)
			if tomb >= 0 {
				j = tomb // reuse the tombstone; used is unchanged
			} else {
				t.used++
			}
			t.keys[j] = k
			t.vals[j] = 0
			t.live++
			return j
		}
	}
}

// bump adds delta to the counter at k with saturating int32 arithmetic,
// inserting a zero entry if absent. It returns the previous and the
// stored value; a clamp increments sat.
//
//rept:hotpath
//rept:sathelper
func (t *ctab) bump(k uint64, delta int32) (old, cur int32) {
	i := t.slot(k)
	old = int32(t.vals[i])
	wide := int64(old) + int64(delta)
	switch {
	case wide > int64(ctabMaxInt32):
		cur = ctabMaxInt32
		t.sat++
	case wide < int64(ctabMinInt32):
		cur = ctabMinInt32
		t.sat++
	default:
		cur = int32(wide)
	}
	t.vals[i] = satcount(cur)
	return old, cur
}

// setClamped stores v (an int64 clamped into int32 range) at k, counting
// a saturation when clamping was needed.
//
//rept:hotpath
//rept:sathelper
func (t *ctab) setClamped(k uint64, v int64) {
	i := t.slot(k)
	switch {
	case v > int64(ctabMaxInt32):
		t.vals[i] = satcount(ctabMaxInt32)
		t.sat++
	case v < int64(ctabMinInt32):
		t.vals[i] = satcount(ctabMinInt32)
		t.sat++
	default:
		t.vals[i] = satcount(v)
	}
}

// del removes k's entry (if present), leaving a tombstone.
//
//rept:hotpath
func (t *ctab) del(k uint64) {
	if t.live == 0 {
		return
	}
	mask := uint64(len(t.keys) - 1)
	for i := hashing.Mix64(k) & mask; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case k:
			t.keys[i] = ctabTomb
			t.live--
			return
		case ctabEmpty:
			return
		}
	}
}

// rehash moves the live entries into a clean table: double the capacity
// when genuinely full, or the retained same-size spare when tombstones
// are the problem (the old buffers become the next spare, so steady-state
// purges allocate nothing).
func (t *ctab) rehash() {
	size := len(t.keys)
	if t.live >= size/2 {
		size *= 2
	}
	oldK, oldV := t.keys, t.vals
	if size == len(oldK) && len(t.spareK) == size {
		t.keys, t.vals = t.spareK, t.spareV
		for i := range t.keys {
			t.keys[i] = ctabEmpty
		}
	} else {
		t.keys = make([]uint64, size)
		t.vals = make([]satcount, size)
	}
	t.spareK, t.spareV = oldK, oldV
	t.live, t.used = 0, 0
	mask := uint64(size - 1)
	for i, k := range oldK {
		if k == ctabEmpty || k == ctabTomb {
			continue
		}
		j := hashing.Mix64(k) & mask
		for t.keys[j] != ctabEmpty {
			j = (j + 1) & mask
		}
		t.keys[j] = k
		t.vals[j] = oldV[i]
		t.live++
		t.used++
	}
	t.reaccount()
}

// toMap exports the live entries as a plain map, the snapshot path.
func (t *ctab) toMap() map[uint64]int32 {
	out := make(map[uint64]int32, t.live)
	for i, k := range t.keys {
		if k != ctabEmpty && k != ctabTomb {
			out[k] = int32(t.vals[i])
		}
	}
	return out
}

// load replaces the table contents with m (the snapshot-restore path).
func (t *ctab) load(m map[uint64]int32) {
	for k, v := range m {
		i := t.slot(k)
		t.vals[i] = satcount(v)
	}
}
