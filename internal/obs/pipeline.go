package obs

import "strconv"

// Pipeline bundles the stage-latency histograms and the flight recorder
// that instrument the ingest path end to end: NDJSON parse → shard
// dispatch → queue wait → engine apply → barrier → WAL append/fsync →
// view publish. Every field is optional-by-nil at the recording sites
// (a nil *Pipeline or nil *Flight records nothing), so library code can
// be instrumented unconditionally and pay nothing when telemetry is
// off.
type Pipeline struct {
	Reg *Registry

	// Parse is the server-side NDJSON scan+decode time per flushed batch.
	Parse *Histogram
	// Dispatch is the whole AddAll/ApplyAll call: batching, ticket wait,
	// and fan-out to every shard channel.
	Dispatch *Histogram
	// QueueWait is the ordered-delivery wait plus channel sends for one
	// batch ticket.
	QueueWait *Histogram
	// Apply is one engine's ApplyAll over one delivered batch.
	Apply *Histogram
	// Barrier is a full quiesce: drain every shard channel and collect
	// tallies.
	Barrier *Histogram
	// WALAppend is one Log.Append (encode + buffered write).
	WALAppend *Histogram
	// WALSync is one Log.Commit (the group-commit fsync).
	WALSync *Histogram
	// ViewPublish is one epoch snapshot build + atomic swap.
	ViewPublish *Histogram
	// BatchSizes is the events-per-delivered-batch size histogram — the
	// direct readout of how well callers amortize dispatch overhead
	// (ApplyBatch should land hundreds per ticket, per-event feeding
	// lands BatchSize at best).
	BatchSizes *Histogram

	// Flight records the last N pipeline events for /debug/flight.
	Flight *Flight

	// ShardQueueDepth, ShardBatchEvents, and ShardApplied hold the
	// per-shard gauges/counters; shards register their children at build
	// time via ShardLabel.
	ShardQueueDepth  *GaugeVec
	ShardBatchEvents *GaugeVec
	ShardApplied     *CounterVec
}

// DefaultFlightEvents is the flight-recorder capacity NewPipeline uses.
const DefaultFlightEvents = 4096

// NewPipeline registers the standard stage instruments on reg and
// returns the bundle. Call once per registry; duplicate registration
// panics by design.
func NewPipeline(reg *Registry) *Pipeline {
	return &Pipeline{
		Reg:         reg,
		Parse:       reg.Histogram("rept_stage_parse_seconds", "NDJSON scan and decode latency per ingested batch."),
		Dispatch:    reg.Histogram("rept_stage_dispatch_seconds", "Full shard dispatch latency per batch: batching, ticketing, and fan-out."),
		QueueWait:   reg.Histogram("rept_stage_queue_wait_seconds", "Ordered-delivery wait plus channel-send latency per batch ticket."),
		Apply:       reg.Histogram("rept_stage_apply_seconds", "Engine apply latency per delivered batch, per shard."),
		Barrier:     reg.Histogram("rept_stage_barrier_seconds", "Full-quiesce barrier latency: drain all shards and collect tallies."),
		WALAppend:   reg.Histogram("rept_stage_wal_append_seconds", "WAL record encode and buffered write latency per batch."),
		WALSync:     reg.Histogram("rept_stage_wal_fsync_seconds", "WAL group-commit fsync latency."),
		ViewPublish: reg.Histogram("rept_stage_view_publish_seconds", "Epoch view build and publish latency."),
		BatchSizes:  reg.SizeHistogram("rept_batch_events", "Events per delivered batch ticket."),
		Flight:      NewFlight(DefaultFlightEvents),
		ShardQueueDepth: reg.GaugeVec("rept_shard_queue_depth",
			"Batches waiting in each shard's ingest ring.", "shard"),
		ShardBatchEvents: reg.GaugeVec("rept_shard_last_batch_events",
			"Events in the last batch each shard applied.", "shard"),
		ShardApplied: reg.CounterVec("rept_shard_events_applied_total",
			"Events applied by each shard's engine.", "shard"),
	}
}

// ShardLabel renders a shard index as its metric label value.
func ShardLabel(i int) string { return strconv.Itoa(i) }
