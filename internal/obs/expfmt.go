package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the scrape side of the package: a small parser for the
// Prometheus text exposition format (version 0.0.4) plus a conformance
// validator. It exists so the repo can gate its own /metrics output in
// tests and CI without importing a client library, and so the example
// dashboard can read histograms back out of a live server.

// Sample is one parsed exposition line.
type Sample struct {
	// Name is the sample's full name, including _bucket/_sum/_count
	// suffixes for histogram children.
	Name string
	// Labels holds the label pairs in declaration order.
	Labels []Label
	// Value is the parsed sample value.
	Value float64
}

// Label is one name="value" pair.
type Label struct {
	Name, Value string
}

// Get returns the value of the named label and whether it was present.
func (s *Sample) Get(name string) (string, bool) {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value, true
		}
	}
	return "", false
}

// Family is one parsed metric family: metadata plus its samples in
// exposition order.
type Family struct {
	Name    string
	Help    string
	Type    string // counter | gauge | histogram | summary | untyped
	Samples []Sample
}

// Exposition is a fully parsed /metrics payload.
type Exposition struct {
	// Families holds the metric families in exposition order.
	Families []Family
	byName   map[string]*Family
}

// Family returns the named family, or nil.
func (e *Exposition) Family(name string) *Family {
	return e.byName[name]
}

// Sample returns the single unlabeled sample of the named family, or
// NaN and false when the family or sample is missing.
func (e *Exposition) Sample(name string) (float64, bool) {
	f := e.byName[name]
	if f == nil {
		// Histogram children (_sum/_count) live under their base family.
		base, suffix := histogramSuffix(name)
		if suffix != "" {
			f = e.byName[base]
		}
	}
	if f == nil {
		return math.NaN(), false
	}
	for i := range f.Samples {
		if f.Samples[i].Name == name && len(f.Samples[i].Labels) == 0 {
			return f.Samples[i].Value, true
		}
	}
	return math.NaN(), false
}

// histogramSuffix maps a sample name to its owning family name when the
// sample is a histogram/summary child.
func histogramSuffix(name string) (base, suffix string) {
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, s) {
			return strings.TrimSuffix(name, s), s
		}
	}
	return name, ""
}

// ParseExposition parses Prometheus text exposition format. It is
// strict about structure (metadata lines, sample syntax) and returns
// the first syntax error with its line number; semantic rules live in
// Validate.
func ParseExposition(r io.Reader) (*Exposition, error) {
	exp := &Exposition{byName: make(map[string]*Family)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	lineNo := 0
	family := func(name string) *Family {
		if f := exp.byName[name]; f != nil {
			return f
		}
		exp.Families = append(exp.Families, Family{Name: name})
		f := &exp.Families[len(exp.Families)-1]
		// Append may move the backing array; refresh every stored pointer.
		exp.byName = make(map[string]*Family, len(exp.Families))
		for i := range exp.Families {
			exp.byName[exp.Families[i].Name] = &exp.Families[i]
		}
		return f
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			kind := line[2:6]
			rest := line[7:]
			sp := strings.IndexByte(rest, ' ')
			if sp < 0 {
				return nil, fmt.Errorf("line %d: %s without a value", lineNo, kind)
			}
			name, val := rest[:sp], rest[sp+1:]
			f := family(name)
			if kind == "HELP" {
				f.Help = val
			} else {
				f.Type = val
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		base, _ := histogramSuffix(s.Name)
		owner := exp.byName[base]
		if owner == nil || (owner.Type != "histogram" && owner.Type != "summary") {
			owner = exp.byName[s.Name]
		}
		if owner == nil {
			owner = family(s.Name)
		}
		owner.Samples = append(owner.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return exp, nil
}

// parseSampleLine parses `name{l1="v1",...} value [timestamp]`.
func parseSampleLine(line string) (Sample, error) {
	var s Sample
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("sample line with empty name: %q", line)
	}
	s.Name = line[:i]
	if i < len(line) && line[i] == '{' {
		i++
		for {
			for i < len(line) && (line[i] == ' ' || line[i] == ',') {
				i++
			}
			if i < len(line) && line[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(line) && line[j] != '=' {
				j++
			}
			if j >= len(line) || j+1 >= len(line) || line[j+1] != '"' {
				return s, fmt.Errorf("malformed label in %q", line)
			}
			lname := line[i:j]
			k := j + 2
			var val strings.Builder
			for k < len(line) && line[k] != '"' {
				if line[k] == '\\' && k+1 < len(line) {
					k++
					switch line[k] {
					case 'n':
						val.WriteByte('\n')
					case '\\', '"':
						val.WriteByte(line[k])
					default:
						val.WriteByte('\\')
						val.WriteByte(line[k])
					}
				} else {
					val.WriteByte(line[k])
				}
				k++
			}
			if k >= len(line) {
				return s, fmt.Errorf("unterminated label value in %q", line)
			}
			s.Labels = append(s.Labels, Label{Name: lname, Value: val.String()})
			i = k + 1
		}
	}
	rest := strings.TrimSpace(line[i:])
	if rest == "" {
		return s, fmt.Errorf("sample %s has no value", s.Name)
	}
	fields := strings.Fields(rest)
	v, err := parseExpositionFloat(fields[0])
	if err != nil {
		return s, fmt.Errorf("sample %s: bad value %q", s.Name, fields[0])
	}
	s.Value = v
	return s, nil
}

// parseExpositionFloat accepts Go float syntax plus the exposition
// spellings +Inf, -Inf, and NaN.
func parseExpositionFloat(t string) (float64, error) {
	switch t {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN", "nan":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(t, 64)
}

// labelsetKey canonicalizes a sample's identity (name + sorted labels)
// for duplicate detection.
func labelsetKey(s *Sample) string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	pairs := make([]string, len(s.Labels))
	for i, l := range s.Labels {
		pairs[i] = l.Name + "=" + strconv.Quote(l.Value)
	}
	sort.Strings(pairs)
	return s.Name + "{" + strings.Join(pairs, ",") + "}"
}

// Validate checks the exposition against the conformance rules the repo
// promises: every family has HELP and TYPE; every name matches the
// metric-name pattern; counter names end in _total and gauge names do
// not; no duplicate series; histogram families carry a complete,
// cumulative _bucket/_sum/_count triple whose +Inf bucket equals
// _count. It returns every violation, not just the first.
func (e *Exposition) Validate() []error {
	var errs []error
	seen := make(map[string]bool)
	for fi := range e.Families {
		f := &e.Families[fi]
		if !validName(f.Name) {
			errs = append(errs, fmt.Errorf("metric %s: name does not match %s", f.Name, namePattern))
		}
		if f.Help == "" {
			errs = append(errs, fmt.Errorf("metric %s: missing # HELP", f.Name))
		}
		if f.Type == "" {
			errs = append(errs, fmt.Errorf("metric %s: missing # TYPE", f.Name))
		}
		switch f.Type {
		case "counter":
			if !strings.HasSuffix(f.Name, "_total") {
				errs = append(errs, fmt.Errorf("metric %s: counter name must end in _total", f.Name))
			}
		case "gauge":
			if strings.HasSuffix(f.Name, "_total") {
				errs = append(errs, fmt.Errorf("metric %s: gauge name must not end in _total", f.Name))
			}
		}
		for si := range f.Samples {
			s := &f.Samples[si]
			base, suffix := histogramSuffix(s.Name)
			if !(f.Type == "histogram" && base == f.Name && suffix != "") && s.Name != f.Name {
				errs = append(errs, fmt.Errorf("metric %s: stray sample %s", f.Name, s.Name))
			}
			for _, l := range s.Labels {
				if !validLabel(l.Name) {
					errs = append(errs, fmt.Errorf("metric %s: label %q does not match %s", f.Name, l.Name, labelPattern))
				}
			}
			key := labelsetKey(s)
			if seen[key] {
				errs = append(errs, fmt.Errorf("duplicate series %s", key))
			}
			seen[key] = true
		}
		if f.Type == "histogram" {
			errs = append(errs, validateHistogram(f)...)
		}
	}
	return errs
}

// validateHistogram checks one histogram family's triple.
func validateHistogram(f *Family) []error {
	var errs []error
	var (
		bounds    []float64
		counts    []float64
		sum       = math.NaN()
		count     = math.NaN()
		haveInf   bool
		infBucket float64
	)
	for si := range f.Samples {
		s := &f.Samples[si]
		_, suffix := histogramSuffix(s.Name)
		switch suffix {
		case "_bucket":
			le, ok := s.Get("le")
			if !ok {
				errs = append(errs, fmt.Errorf("histogram %s: _bucket without le label", f.Name))
				continue
			}
			b, err := parseExpositionFloat(le)
			if err != nil {
				errs = append(errs, fmt.Errorf("histogram %s: bad le %q", f.Name, le))
				continue
			}
			if math.IsInf(b, 1) {
				haveInf = true
				infBucket = s.Value
			}
			bounds = append(bounds, b)
			counts = append(counts, s.Value)
		case "_sum":
			sum = s.Value
		case "_count":
			count = s.Value
		}
	}
	if len(bounds) == 0 {
		errs = append(errs, fmt.Errorf("histogram %s: no _bucket samples", f.Name))
		return errs
	}
	if !haveInf {
		errs = append(errs, fmt.Errorf("histogram %s: missing le=\"+Inf\" bucket", f.Name))
	}
	if math.IsNaN(sum) {
		errs = append(errs, fmt.Errorf("histogram %s: missing _sum", f.Name))
	}
	if math.IsNaN(count) {
		errs = append(errs, fmt.Errorf("histogram %s: missing _count", f.Name))
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			errs = append(errs, fmt.Errorf("histogram %s: le bounds not strictly increasing at index %d", f.Name, i))
		}
		if counts[i] < counts[i-1] {
			errs = append(errs, fmt.Errorf("histogram %s: bucket counts not cumulative at index %d", f.Name, i))
		}
	}
	if haveInf && !math.IsNaN(count) && infBucket != count {
		errs = append(errs, fmt.Errorf("histogram %s: +Inf bucket (%g) != _count (%g)", f.Name, infBucket, count))
	}
	return errs
}
