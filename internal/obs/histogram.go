package obs

import (
	"math"
	"math/bits"
	"strconv"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count: bucket 0 holds zero-duration
// observations, bucket i (1..62) holds nanosecond values in
// [2^(i-1), 2^i), and bucket 63 is the overflow for anything at or past
// 2^62 ns (~146 years) — in practice never hit for latencies.
const histBuckets = 64

// Histogram is a log-scale latency histogram over preallocated
// power-of-two nanosecond buckets. Observing is a bucket index
// computation plus three atomic adds — no locks, no allocations — so a
// histogram can sit directly on the ingest pipeline. Rendering converts
// bounds and the sum to seconds and emits the cumulative
// _bucket/_sum/_count triple the exposition format requires.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNs   atomic.Uint64

	// div converts raw observed units to rendered units: 0 (the zero
	// value) means nanoseconds→seconds (1e9), the duration default; a
	// size histogram (Registry.SizeHistogram) sets 1 to render raw
	// counts. Set at registration, before any concurrent access.
	div float64
}

// divisor returns the raw→rendered unit conversion factor.
func (h *Histogram) divisor() float64 {
	if h.div == 0 {
		return 1e9
	}
	return h.div
}

// Observe records one duration in nanoseconds.
//
//rept:hotpath
func (h *Histogram) Observe(ns uint64) {
	i := bits.Len64(ns) // 0 for ns==0, else floor(log2)+1
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
}

// ObserveDuration records one duration. Negative durations (clock
// steps) are clamped to zero rather than wrapping into the overflow
// bucket.
//
//rept:hotpath
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// ObserveSince records the time elapsed since start.
//
//rept:hotpath
func (h *Histogram) ObserveSince(start time.Time) {
	h.ObserveDuration(time.Since(start))
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// upperNs returns the inclusive nanosecond upper bound of bucket i
// (2^i - 1); bucket 63 has no finite bound and is rendered as +Inf.
func upperNs(i int) uint64 { return 1<<uint(i) - 1 }

// appendTo renders the cumulative exposition lines for one family name.
// Buckets are read low-to-high while observers keep recording, so a
// render is not an atomic snapshot; cumulative counts are clamped
// monotone so a torn read never produces a decreasing series.
func (h *Histogram) appendTo(b []byte, name string) []byte {
	div := h.divisor()
	var cum uint64
	for i := 0; i < histBuckets-1; i++ {
		cum += h.buckets[i].Load()
		b = append(b, name...)
		b = append(b, `_bucket{le="`...)
		b = appendFloat(b, float64(upperNs(i))/div)
		b = append(b, `"} `...)
		b = strconv.AppendUint(b, cum, 10)
		b = append(b, '\n')
	}
	cum += h.buckets[histBuckets-1].Load()
	count := h.count.Load()
	if count < cum {
		count = cum
	}
	b = append(b, name...)
	b = append(b, `_bucket{le="+Inf"} `...)
	b = strconv.AppendUint(b, count, 10)
	b = append(b, '\n')
	b = append(b, name...)
	b = append(b, "_sum "...)
	b = appendFloat(b, float64(h.sumNs.Load())/div)
	b = append(b, '\n')
	b = append(b, name...)
	b = append(b, "_count "...)
	b = strconv.AppendUint(b, count, 10)
	b = append(b, '\n')
	return b
}

// Quantile estimates the q-quantile (0 < q <= 1) in rendered units
// (seconds for duration histograms) from the bucket counts,
// interpolating linearly within the winning bucket. Used by the example
// dashboard; scrape-path only.
//
// The buckets are snapshotted first and the total is derived FROM the
// snapshot: count and the bucket array cannot be read atomically as a
// pair, and under concurrent Observe a separately loaded count can
// exceed the bucket sum, pushing the rank past every bucket and
// skewing the answer toward the overflow sentinel.
func (h *Histogram) Quantile(q float64) float64 {
	var snap [histBuckets]uint64
	var total uint64
	for i := range snap {
		n := h.buckets[i].Load()
		snap[i] = n
		total += n
	}
	div := h.divisor()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, n := range snap {
		if n != 0 && cum+n >= rank {
			lo := float64(0)
			if i > 0 {
				lo = float64(uint64(1) << uint(i-1))
			}
			hi := float64(upperNs(i)) + 1
			if i == histBuckets-1 {
				hi = lo * 2 // open-ended overflow: assume one octave
			}
			frac := float64(rank-cum) / float64(n)
			return (lo + (hi-lo)*frac) / div
		}
		cum += n
	}
	return float64(upperNs(histBuckets-2)) / div
}
