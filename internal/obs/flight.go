package obs

import (
	"sync/atomic"
	"time"
)

// Kind tags a flight-recorder event with the pipeline stage it came
// from.
type Kind uint32

const (
	KindParse Kind = iota + 1
	KindDispatch
	KindApply
	KindBarrier
	KindWALAppend
	KindWALSync
	KindViewPublish
	KindCheckpoint
	kindMax
)

// kindNames is indexed by Kind; String avoids fmt so it stays legal in
// annotated hot paths that log through the recorder.
var kindNames = [kindMax]string{
	"",
	"parse",
	"dispatch",
	"apply",
	"barrier",
	"wal_append",
	"wal_sync",
	"view_publish",
	"checkpoint",
}

// String returns the stable wire name of the kind.
func (k Kind) String() string {
	if k == 0 || k >= kindMax {
		return "unknown"
	}
	return kindNames[k]
}

// flightSlot is one ring entry. ver is a per-slot seqlock: odd while a
// writer is mid-update, even when stable; readers that see an odd or
// changed version discard the slot instead of reporting torn data.
type flightSlot struct {
	ver   atomic.Uint64
	seq   atomic.Uint64 // 1-based global event number
	ts    atomic.Uint64 // unix nanoseconds
	meta  atomic.Uint64 // kind<<32 | uint32(shard)
	value atomic.Uint64 // stage-defined payload (events in batch, bytes, epoch, ...)
	dur   atomic.Uint64 // duration in nanoseconds, 0 when not applicable
}

// FlightEvent is one decoded recorder entry.
type FlightEvent struct {
	Seq   uint64        `json:"seq"`
	Time  time.Time     `json:"time"`
	Kind  string        `json:"kind"`
	Shard int32         `json:"shard"` // -1 when the stage is not shard-scoped
	Value uint64        `json:"value"`
	Dur   time.Duration `json:"dur_ns"`
}

// Flight is a preallocated lock-free ring buffer of the last N pipeline
// events — a crash-cheap trace for post-incident forensics. Record is a
// few atomic stores with zero allocations and never blocks; concurrent
// writers that collide on a slot resolve by version, with the later
// event winning. A nil *Flight is valid and records nothing, so
// instrumented code never needs a guard branch.
type Flight struct {
	slots []flightSlot
	mask  uint64
	next  atomic.Uint64
}

// NewFlight returns a recorder holding the most recent n events
// (rounded up to a power of two, minimum 16).
func NewFlight(n int) *Flight {
	capacity := 16
	for capacity < n {
		capacity <<= 1
	}
	return &Flight{slots: make([]flightSlot, capacity), mask: uint64(capacity - 1)}
}

// Record appends one event. Safe from any goroutine, including nil
// receivers.
//
//rept:hotpath
func (f *Flight) Record(k Kind, shard int32, value uint64, dur time.Duration) {
	if f == nil {
		return
	}
	if dur < 0 {
		dur = 0
	}
	seq := f.next.Add(1)
	s := &f.slots[(seq-1)&f.mask]
	ver := s.ver.Add(1) // odd: slot under construction
	s.seq.Store(seq)
	s.ts.Store(uint64(time.Now().UnixNano()))
	s.meta.Store(uint64(k)<<32 | uint64(uint32(shard)))
	s.value.Store(value)
	s.dur.Store(uint64(dur))
	s.ver.Store(ver + 1) // even: stable
}

// Events returns the stable entries oldest-first. Slots being written
// concurrently (odd version, or version changed during the read) are
// skipped — a dump taken under full ingest load loses at most the
// handful of events in flight.
func (f *Flight) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	out := make([]FlightEvent, 0, len(f.slots))
	for i := range f.slots {
		s := &f.slots[i]
		v1 := s.ver.Load()
		if v1 == 0 || v1%2 == 1 {
			continue
		}
		seq := s.seq.Load()
		ts := s.ts.Load()
		meta := s.meta.Load()
		value := s.value.Load()
		dur := s.dur.Load()
		if s.ver.Load() != v1 {
			continue
		}
		out = append(out, FlightEvent{
			Seq:   seq,
			Time:  time.Unix(0, int64(ts)),
			Kind:  Kind(meta >> 32).String(),
			Shard: int32(uint32(meta)),
			Value: value,
			Dur:   time.Duration(dur),
		})
	}
	// Insertion sort by seq: the ring is nearly ordered already (at most
	// one wrap point), so this is effectively linear.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Seq > out[j].Seq; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Len returns the number of events recorded so far (not capped at the
// ring size).
func (f *Flight) Len() uint64 {
	if f == nil {
		return 0
	}
	return f.next.Load()
}
