// Package obs is the zero-allocation telemetry core: an atomic metrics
// registry (counters, gauges, fixed-bucket log-scale histograms) with
// Prometheus text exposition, a preallocated lock-free flight recorder
// for post-incident forensics, and an in-repo exposition-format parser
// used by conformance tests and the example dashboard.
//
// The package is dependency-free (stdlib only) and built around one
// discipline, borrowed from the estimator it measures: all telemetry
// state is bounded and preallocated at registration time, and the record
// path — Counter.Add, Gauge.Set, Histogram.Observe, Flight.Record — is
// a handful of atomic operations with zero allocations, so instruments
// may sit directly on the ingest pipeline without perturbing the
// zero-allocation hot path. The record paths are annotated
// //rept:hotpath and gated by AllocsPerRun tests like the estimator's
// own spine.
//
// Registration (Registry.Counter, .Histogram, ...) is NOT the hot path:
// it locks, allocates, and panics on invalid or duplicate names, because
// a metrics registry wired wrong should fail at startup, not at scrape
// time. Collection (WritePrometheus) walks the registry under its lock
// and is allocation-heavy; it is designed for scrape-rate calls, not
// per-event ones.
package obs
