package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric and label names are restricted to the conservative core of the
// Prometheus data model; the conformance validator enforces the same
// patterns on the rendered exposition.
const (
	namePattern  = "[a-z_:][a-z0-9_:]*"
	labelPattern = "[a-z_][a-z0-9_]*"
)

// validName reports whether s matches namePattern without pulling
// regexp into the package (registration panics on violations, so the
// check runs a handful of times at startup).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabel reports whether s matches labelPattern.
func validLabel(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// seriesKind discriminates how one registered series produces its value.
type seriesKind uint8

const (
	kindCounter        seriesKind = iota // atomic uint64, rendered as an integer
	kindGauge                            // atomic float64 bits, rendered as a float
	kindCounterFn                        // callback returning uint64
	kindGaugeFn                          // callback returning float64
	kindFloatCounterFn                   // callback returning float64, rendered under a counter/untyped family
)

// series is one exposition line of a family: an optional label pair and
// a value source.
type series struct {
	labels string // rendered label block like `{shard="3"}`, or ""
	kind   seriesKind
	c      *Counter
	g      *Gauge
	cfn    func() uint64
	gfn    func() float64
}

// family is one metric family: a name, HELP/TYPE metadata, and either
// plain series or a histogram.
type family struct {
	name string
	help string
	typ  string // counter | gauge | histogram | untyped
	ser  []series
	hist *Histogram
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration methods panic on invalid or duplicate
// names (telemetry wired wrong must fail at startup); the returned
// instruments are safe for concurrent use and allocation-free to record
// into. A zero Registry is not usable; call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	fams    []*family
	byName  map[string]*family
	collect []func()
	buf     []byte // render scratch, reused across scrapes
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register installs a new family or panics on a duplicate/invalid name.
func (r *Registry) register(name, help, typ string) *family {
	if !validName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	if help == "" {
		panic("obs: metric " + name + " registered without help text")
	}
	if typ == "counter" && !strings.HasSuffix(name, "_total") {
		panic("obs: counter " + name + " must end in _total (register a gauge or an untyped series instead)")
	}
	if typ == "gauge" && strings.HasSuffix(name, "_total") {
		panic("obs: gauge " + name + " must not end in _total")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	f := &family{name: name, help: help, typ: typ}
	r.byName[name] = f
	r.fams = append(r.fams, f)
	return f
}

// Counter is a monotone event counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
//
//rept:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
//
//rept:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Counter registers an unlabeled counter. Counter names must end in
// _total.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "counter")
	c := &Counter{}
	f.ser = append(f.ser, series{kind: kindCounter, c: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at each
// scrape — for monotone tallies owned elsewhere (the estimator's
// Processed, a WAL position). fn runs under the registry lock and must
// not block.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	f := r.register(name, help, "counter")
	f.ser = append(f.ser, series{kind: kindCounterFn, cfn: fn})
}

// FloatCounterFunc is CounterFunc for counters that accumulate a float
// (e.g. total GC pause seconds).
func (r *Registry) FloatCounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "counter")
	f.ser = append(f.ser, series{kind: kindFloatCounterFn, gfn: fn})
}

// UntypedFunc registers an untyped series — the home of deprecated
// aliases kept one release past a rename, where neither counter nor
// gauge semantics should be promised anymore.
func (r *Registry) UntypedFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "untyped")
	f.ser = append(f.ser, series{kind: kindGaugeFn, gfn: fn})
}

// Gauge is a value that goes up and down, stored as float64 bits in one
// atomic word.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
//
//rept:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt replaces the gauge value with an integer.
//
//rept:hotpath
func (g *Gauge) SetInt(v int) { g.bits.Store(math.Float64bits(float64(v))) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge")
	g := &Gauge{}
	f.ser = append(f.ser, series{kind: kindGauge, g: g})
	return g
}

// GaugeFunc registers a gauge read from fn at each scrape. fn runs
// under the registry lock and must not block.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "gauge")
	f.ser = append(f.ser, series{kind: kindGaugeFn, gfn: fn})
}

// CounterVec is a counter family with one label dimension (e.g. one
// counter per endpoint, per shard). Children are created up front via
// With; creation locks, recording does not.
type CounterVec struct {
	r     *Registry
	f     *family
	label string
	mu    sync.Mutex
	kids  map[string]*Counter
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if !validLabel(label) {
		panic("obs: invalid label name " + strconv.Quote(label))
	}
	return &CounterVec{r: r, f: r.register(name, help, "counter"), label: label}
}

// With returns the child counter for one label value, creating it on
// first use. Resolve children at startup, not on the record path.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.kids[value]; ok {
		return c
	}
	if v.kids == nil {
		v.kids = make(map[string]*Counter)
	}
	c := &Counter{}
	v.kids[value] = c
	v.r.mu.Lock()
	v.f.ser = append(v.f.ser, series{labels: labelBlock(v.label, value), kind: kindCounter, c: c})
	v.r.mu.Unlock()
	return c
}

// GaugeVec is a gauge family with one label dimension.
type GaugeVec struct {
	r     *Registry
	f     *family
	label string
	mu    sync.Mutex
	kids  map[string]*Gauge
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	if !validLabel(label) {
		panic("obs: invalid label name " + strconv.Quote(label))
	}
	return &GaugeVec{r: r, f: r.register(name, help, "gauge"), label: label}
}

// With returns the child gauge for one label value, creating it on
// first use.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok := v.kids[value]; ok {
		return g
	}
	if v.kids == nil {
		v.kids = make(map[string]*Gauge)
	}
	g := &Gauge{}
	v.kids[value] = g
	v.r.mu.Lock()
	v.f.ser = append(v.f.ser, series{labels: labelBlock(v.label, value), kind: kindGauge, g: g})
	v.r.mu.Unlock()
	return g
}

// Func registers a callback child read at each scrape (e.g. a per-shard
// queue depth read straight from the channel).
func (v *GaugeVec) Func(value string, fn func() float64) {
	v.r.mu.Lock()
	v.f.ser = append(v.f.ser, series{labels: labelBlock(v.label, value), kind: kindGaugeFn, gfn: fn})
	v.r.mu.Unlock()
}

// labelBlock renders a one-pair label block with exposition-format
// escaping of the value.
func labelBlock(label, value string) string {
	var b strings.Builder
	b.WriteByte('{')
	b.WriteString(label)
	b.WriteString(`="`)
	for i := 0; i < len(value); i++ {
		switch c := value[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteString(`"}`)
	return b.String()
}

// OnCollect registers a hook run (under the registry lock) at the start
// of every WritePrometheus — the place to refresh cached snapshots that
// several GaugeFuncs share, e.g. one runtime.ReadMemStats per scrape.
func (r *Registry) OnCollect(fn func()) {
	r.mu.Lock()
	r.collect = append(r.collect, fn)
	r.mu.Unlock()
}

// Histogram registers a duration histogram (see Histogram's type
// documentation for the bucket layout). The family name should carry a
// _seconds suffix; the rendered sum and bucket bounds are in seconds.
func (r *Registry) Histogram(name, help string) *Histogram {
	f := r.register(name, help, "histogram")
	h := &Histogram{}
	f.hist = h
	return h
}

// SizeHistogram registers a histogram over a dimensionless quantity
// (e.g. events per batch): the same power-of-two buckets as Histogram,
// rendered raw instead of through the nanoseconds→seconds conversion.
func (r *Registry) SizeHistogram(name, help string) *Histogram {
	f := r.register(name, help, "histogram")
	h := &Histogram{div: 1}
	f.hist = h
	return h
}

// WritePrometheus renders every family in registration order in the
// Prometheus text exposition format (version 0.0.4). Safe for
// concurrent use; instruments keep recording during a render (each
// value is read atomically, the exposition as a whole is not a
// snapshot).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	for _, fn := range r.collect {
		fn()
	}
	b := r.buf[:0]
	for _, f := range r.fams {
		b = append(b, "# HELP "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = appendHelp(b, f.help)
		b = append(b, "\n# TYPE "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.typ...)
		b = append(b, '\n')
		if f.hist != nil {
			b = f.hist.appendTo(b, f.name)
			continue
		}
		for _, s := range f.ser {
			b = append(b, f.name...)
			b = append(b, s.labels...)
			b = append(b, ' ')
			switch s.kind {
			case kindCounter:
				b = strconv.AppendUint(b, s.c.Value(), 10)
			case kindCounterFn:
				b = strconv.AppendUint(b, s.cfn(), 10)
			case kindGauge:
				b = appendFloat(b, s.g.Value())
			case kindGaugeFn, kindFloatCounterFn:
				b = appendFloat(b, s.gfn())
			}
			b = append(b, '\n')
		}
	}
	r.buf = b
	r.mu.Unlock()
	_, err := w.Write(b)
	return err
}

// appendHelp escapes help text per the exposition format (backslash and
// newline only; HELP text may contain anything else).
func appendHelp(b []byte, help string) []byte {
	for i := 0; i < len(help); i++ {
		switch c := help[i]; c {
		case '\\':
			b = append(b, `\\`...)
		case '\n':
			b = append(b, `\n`...)
		default:
			b = append(b, c)
		}
	}
	return b
}

// appendFloat renders a float the way the exposition format expects,
// including the +Inf/-Inf/NaN spellings.
func appendFloat(b []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(b, "+Inf"...)
	case math.IsInf(v, -1):
		return append(b, "-Inf"...)
	case math.IsNaN(v):
		return append(b, "NaN"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// MustName panics unless name is a valid metric name; exported for
// callers assembling names dynamically (e.g. per-stage families).
func MustName(name string) string {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	return name
}
