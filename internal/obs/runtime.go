package obs

import "runtime"

// RegisterRuntime adds Go runtime health series to reg: goroutine
// count, heap usage, and GC activity. One runtime.ReadMemStats runs per
// scrape (via an OnCollect hook), shared by all the series below —
// ReadMemStats stops the world briefly, so it must not run once per
// series.
func RegisterRuntime(reg *Registry) {
	var ms runtime.MemStats
	reg.OnCollect(func() { runtime.ReadMemStats(&ms) })
	reg.GaugeFunc("rept_go_goroutines",
		"Live goroutines.", func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("rept_go_heap_alloc_bytes",
		"Bytes of allocated heap objects.", func() float64 { return float64(ms.HeapAlloc) })
	reg.GaugeFunc("rept_go_heap_sys_bytes",
		"Bytes of heap memory obtained from the OS.", func() float64 { return float64(ms.HeapSys) })
	reg.GaugeFunc("rept_go_heap_objects",
		"Live heap objects.", func() float64 { return float64(ms.HeapObjects) })
	reg.CounterFunc("rept_go_gc_cycles_total",
		"Completed GC cycles.", func() uint64 { return uint64(ms.NumGC) })
	reg.FloatCounterFunc("rept_go_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time.", func() float64 { return float64(ms.PauseTotalNs) / 1e9 })
}
