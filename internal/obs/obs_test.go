package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecordPathAllocs(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_events_total", "test")
	g := reg.Gauge("t_depth", "test")
	h := reg.Histogram("t_lat_seconds", "test")
	f := NewFlight(64)
	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Add", func() { c.Add(3) }},
		{"Counter.Inc", func() { c.Inc() }},
		{"Gauge.Set", func() { g.Set(12.5) }},
		{"Histogram.Observe", func() { h.Observe(12345) }},
		{"Histogram.ObserveDuration", func() { h.ObserveDuration(42 * time.Microsecond) }},
		{"Flight.Record", func() { f.Record(KindApply, 3, 512, time.Millisecond) }},
		{"Flight.Record(nil)", func() { (*Flight)(nil).Record(KindApply, 0, 0, 0) }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(200, tc.fn); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, n)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	// Bucket 0 is exactly zero; bucket i covers [2^(i-1), 2^i).
	h.Observe(0)
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	h.Observe(4)
	h.Observe(1 << 40)
	h.Observe(math.MaxUint64) // overflow bucket
	if got := h.buckets[0].Load(); got != 1 {
		t.Errorf("bucket 0 = %d, want 1", got)
	}
	if got := h.buckets[1].Load(); got != 1 { // value 1
		t.Errorf("bucket 1 = %d, want 1", got)
	}
	if got := h.buckets[2].Load(); got != 2 { // values 2,3
		t.Errorf("bucket 2 = %d, want 2", got)
	}
	if got := h.buckets[3].Load(); got != 1 { // value 4
		t.Errorf("bucket 3 = %d, want 1", got)
	}
	if got := h.buckets[41].Load(); got != 1 { // 2^40
		t.Errorf("bucket 41 = %d, want 1", got)
	}
	if got := h.buckets[63].Load(); got != 1 {
		t.Errorf("overflow bucket = %d, want 1", got)
	}
	if got := h.Count(); got != 7 {
		t.Errorf("count = %d, want 7", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 90; i++ {
		h.Observe(1000) // ~1µs
	}
	for i := 0; i < 10; i++ {
		h.Observe(1 << 20) // ~1ms
	}
	p50 := h.Quantile(0.50)
	if p50 < 0.5e-6 || p50 > 2e-6 {
		t.Errorf("p50 = %g, want ~1µs", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 0.5e-3 || p99 > 3e-3 {
		t.Errorf("p99 = %g, want ~1ms", p99)
	}
	if q := (&Histogram{}).Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", q)
	}
}

// TestHistogramQuantileConcurrent is the regression test for the
// torn-read panic path: Quantile used to load the total count and then
// walk the bucket array, so observations landing between the two reads
// made the cumulative sum overshoot the rank and the loop fall off the
// end (returning garbage from the overflow bucket). Hammering Observe
// while calling Quantile must always land inside the observed range.
func TestHistogramQuantileConcurrent(t *testing.T) {
	h := &Histogram{}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Alternate the two magnitudes from the sequential test so
				// every quantile must land on one of the two bucket ranges.
				if (uint64(i)+seed)%2 == 0 {
					h.Observe(1000)
				} else {
					h.Observe(1 << 20)
				}
			}
		}(uint64(w))
	}
	for i := 0; i < 5000; i++ {
		for _, q := range []float64{0.01, 0.5, 0.999} {
			// Count is bumped AFTER the bucket in Observe, so a nonzero
			// count read before the call proves the snapshot inside
			// Quantile sees at least one bucket — zero is then a torn read.
			pre := h.Count()
			v := h.Quantile(q)
			if v == 0 && pre > 0 {
				t.Fatalf("Quantile(%g) = 0 with %d observations", q, pre)
			}
			if v != 0 && (v < 0.5e-6 || v > 3e-3) {
				t.Fatalf("Quantile(%g) = %g, outside every observed bucket", q, v)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_events_total", "Events seen.")
	c.Add(41)
	c.Inc()
	g := reg.Gauge("t_depth", "Queue depth.")
	g.Set(7.25)
	reg.GaugeFunc("t_live", "Live things.", func() float64 { return 3 })
	reg.CounterFunc("t_applied_total", "Applied.", func() uint64 { return 9 })
	reg.UntypedFunc("t_legacy_alias", "Deprecated alias.", func() float64 { return 42 })
	h := reg.Histogram("t_lat_seconds", "Latency.")
	h.Observe(0)
	h.Observe(1500)
	h.Observe(3_000_000)
	vec := reg.CounterVec("t_req_total", "Requests.", "endpoint")
	vec.With("/edges").Add(5)
	vec.With(`/we"ird\path`).Inc()
	gv := reg.GaugeVec("t_q", "Per-shard depth.", "shard")
	gv.With("0").SetInt(4)
	gv.Func("1", func() float64 { return 2 })

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	// Counters must render as integers (legacy test contract).
	if !strings.Contains(text, "t_events_total 42\n") {
		t.Errorf("counter not rendered as integer:\n%s", text)
	}
	if !strings.Contains(text, `t_req_total{endpoint="/edges"} 5`+"\n") {
		t.Errorf("labeled counter missing:\n%s", text)
	}
	if !strings.Contains(text, `le="+Inf"`) {
		t.Errorf("histogram +Inf bucket missing:\n%s", text)
	}

	exp, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	if errs := exp.Validate(); len(errs) != 0 {
		t.Fatalf("conformance: %v\n%s", errs, text)
	}
	if v, ok := exp.Sample("t_events_total"); !ok || v != 42 {
		t.Errorf("t_events_total = %v %v", v, ok)
	}
	if v, ok := exp.Sample("t_depth"); !ok || v != 7.25 {
		t.Errorf("t_depth = %v %v", v, ok)
	}
	hf := exp.Family("t_lat_seconds")
	if hf == nil || hf.Type != "histogram" {
		t.Fatalf("histogram family missing")
	}
	if v, ok := exp.Sample("t_lat_seconds_count"); !ok || v != 3 {
		t.Errorf("histogram count = %v %v, want 3", v, ok)
	}
	// Round-trip a second scrape into the same registry buffer.
	var sb2 strings.Builder
	if err := reg.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != text {
		t.Errorf("second scrape differs from first")
	}
}

func TestRegistryPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"invalid name", func(r *Registry) { r.Gauge("Bad-Name", "x") }},
		{"empty help", func(r *Registry) { r.Gauge("t_ok", "") }},
		{"duplicate", func(r *Registry) { r.Gauge("t_dup", "x"); r.Counter("t_dup", "x") }},
		{"counter without _total", func(r *Registry) { r.Counter("t_events", "x") }},
		{"gauge with _total", func(r *Registry) { r.Gauge("t_events_total", "x") }},
		{"bad label", func(r *Registry) { r.CounterVec("t_v_total", "x", "Bad Label") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{
			"missing help",
			"# TYPE x_total counter\nx_total 1\n",
			"missing # HELP",
		},
		{
			"missing type",
			"# HELP x_total h\nx_total 1\n",
			"missing # TYPE",
		},
		{
			"bad name",
			"# HELP 9bad h\n# TYPE 9bad gauge\n9bad 1\n",
			"does not match",
		},
		{
			"counter suffix",
			"# HELP x h\n# TYPE x counter\nx 1\n",
			"must end in _total",
		},
		{
			"gauge suffix",
			"# HELP x_total h\n# TYPE x_total gauge\nx_total 1\n",
			"must not end in _total",
		},
		{
			"duplicate series",
			"# HELP x h\n# TYPE x gauge\nx 1\nx 2\n",
			"duplicate series",
		},
		{
			"histogram missing inf",
			"# HELP h_s h\n# TYPE h_s histogram\nh_s_bucket{le=\"1\"} 1\nh_s_sum 1\nh_s_count 1\n",
			"missing le=\"+Inf\"",
		},
		{
			"histogram not cumulative",
			"# HELP h_s h\n# TYPE h_s histogram\nh_s_bucket{le=\"1\"} 5\nh_s_bucket{le=\"+Inf\"} 3\nh_s_sum 1\nh_s_count 3\n",
			"not cumulative",
		},
		{
			"histogram inf != count",
			"# HELP h_s h\n# TYPE h_s histogram\nh_s_bucket{le=\"1\"} 1\nh_s_bucket{le=\"+Inf\"} 5\nh_s_sum 1\nh_s_count 4\n",
			"!= _count",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			exp, err := ParseExposition(strings.NewReader(tc.text))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			errs := exp.Validate()
			found := false
			for _, e := range errs {
				if strings.Contains(e.Error(), tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("want violation containing %q, got %v", tc.want, errs)
			}
		})
	}
}

func TestParseRejectsSyntax(t *testing.T) {
	for _, text := range []string{
		"x{l=\"unterminated} 1\n",
		"x notanumber\n",
		"x{l=} 1\n",
		"{noname} 1\n",
	} {
		if _, err := ParseExposition(strings.NewReader(text)); err == nil {
			t.Errorf("ParseExposition(%q): expected error", text)
		}
	}
}

func TestFlightWraparound(t *testing.T) {
	f := NewFlight(16)
	for i := 1; i <= 40; i++ {
		f.Record(KindParse, int32(i%4), uint64(i), time.Duration(i))
	}
	ev := f.Events()
	if len(ev) != 16 {
		t.Fatalf("got %d events, want 16", len(ev))
	}
	for i, e := range ev {
		want := uint64(25 + i) // 40-16+1 .. 40
		if e.Seq != want {
			t.Errorf("event %d: seq=%d, want %d", i, e.Seq, want)
		}
		if e.Value != want {
			t.Errorf("event %d: value=%d, want %d", i, e.Value, want)
		}
		if e.Kind != "parse" {
			t.Errorf("event %d: kind=%q", i, e.Kind)
		}
	}
	if f.Len() != 40 {
		t.Errorf("Len = %d, want 40", f.Len())
	}
}

func TestFlightConcurrent(t *testing.T) {
	f := NewFlight(128)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					f.Record(KindApply, int32(w), uint64(i), 0)
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		ev := f.Events()
		for j := 1; j < len(ev); j++ {
			if ev[j].Seq <= ev[j-1].Seq {
				t.Fatalf("events not strictly ordered: %d then %d", ev[j-1].Seq, ev[j].Seq)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestPipelineRegistersStandardNames(t *testing.T) {
	reg := NewRegistry()
	p := NewPipeline(reg)
	p.Parse.Observe(1000)
	p.BatchSizes.Observe(512)
	p.ShardApplied.With(ShardLabel(0)).Add(10)
	p.ShardQueueDepth.With(ShardLabel(0)).SetInt(2)
	RegisterRuntime(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if errs := exp.Validate(); len(errs) != 0 {
		t.Fatalf("conformance: %v", errs)
	}
	for _, name := range []string{
		"rept_stage_parse_seconds",
		"rept_stage_dispatch_seconds",
		"rept_stage_queue_wait_seconds",
		"rept_stage_apply_seconds",
		"rept_stage_barrier_seconds",
		"rept_stage_wal_append_seconds",
		"rept_stage_wal_fsync_seconds",
		"rept_stage_view_publish_seconds",
		"rept_batch_events",
		"rept_shard_queue_depth",
		"rept_shard_events_applied_total",
		"rept_go_goroutines",
		"rept_go_gc_pause_seconds_total",
	} {
		if exp.Family(name) == nil {
			t.Errorf("standard family %s missing", name)
		}
	}
}
