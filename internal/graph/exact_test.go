package graph

import (
	"math/rand/v2"
	"testing"
)

var allOpts = ExactOptions{Local: true, Eta: true, EtaLocal: true}

func TestCountExactSingleTriangle(t *testing.T) {
	stream := []Edge{{0, 1}, {1, 2}, {0, 2}}
	res := CountExact(stream, allOpts)
	if res.Tau != 1 {
		t.Fatalf("Tau = %d, want 1", res.Tau)
	}
	for v := NodeID(0); v <= 2; v++ {
		if res.TauV[v] != 1 {
			t.Errorf("TauV[%d] = %d, want 1", v, res.TauV[v])
		}
	}
	if res.Eta != 0 {
		t.Errorf("Eta = %d, want 0 (a single triangle has no pairs)", res.Eta)
	}
	if res.Nodes != 3 || res.Edges != 3 {
		t.Errorf("Nodes,Edges = %d,%d want 3,3", res.Nodes, res.Edges)
	}
}

// TestCountExactEtaOrderDependence pins the stream-order dependence of η.
// Two triangles {0,1,2} and {0,1,3} share edge (0,1).
func TestCountExactEtaOrderDependence(t *testing.T) {
	// Case A: shared edge first => it is the last edge of neither triangle
	// => the pair counts, η = 1.
	a := []Edge{{0, 1}, {0, 2}, {1, 2}, {0, 3}, {1, 3}}
	resA := CountExact(a, allOpts)
	if resA.Tau != 2 || resA.Eta != 1 {
		t.Errorf("case A: Tau,Eta = %d,%d want 2,1", resA.Tau, resA.Eta)
	}
	// Shared edge (0,1): both triangles contain nodes 0 and 1.
	if resA.EtaV[0] != 1 || resA.EtaV[1] != 1 || resA.EtaV[2] != 0 || resA.EtaV[3] != 0 {
		t.Errorf("case A EtaV = %v, want η_0=η_1=1, others 0", resA.EtaV)
	}

	// Case B: shared edge (0,1) arrives last overall => it is the last edge
	// of triangle {0,1,3} (and of {0,1,2}) => pair does not count, η = 0.
	b := []Edge{{0, 2}, {1, 2}, {0, 3}, {1, 3}, {0, 1}}
	resB := CountExact(b, allOpts)
	if resB.Tau != 2 || resB.Eta != 0 {
		t.Errorf("case B: Tau,Eta = %d,%d want 2,0", resB.Tau, resB.Eta)
	}

	// Case C: shared edge in the middle — last edge of {0,1,2} but not of
	// {0,1,3} => still does not count (must be last edge of *neither*).
	c := []Edge{{0, 2}, {1, 2}, {0, 1}, {0, 3}, {1, 3}}
	resC := CountExact(c, allOpts)
	if resC.Tau != 2 || resC.Eta != 0 {
		t.Errorf("case C: Tau,Eta = %d,%d want 2,0", resC.Tau, resC.Eta)
	}
}

func TestCountExactBookkeeping(t *testing.T) {
	stream := []Edge{{0, 1}, {0, 1}, {2, 2}, {1, 0}, {1, 2}, {0, 2}}
	res := CountExact(stream, allOpts)
	if res.Duplicates != 2 {
		t.Errorf("Duplicates = %d, want 2", res.Duplicates)
	}
	if res.SelfLoops != 1 {
		t.Errorf("SelfLoops = %d, want 1", res.SelfLoops)
	}
	if res.Tau != 1 {
		t.Errorf("Tau = %d, want 1", res.Tau)
	}
}

func TestCountExactCompleteGraph(t *testing.T) {
	// K6: τ = C(6,3) = 20, τ_v = C(5,2) = 10.
	var stream []Edge
	for u := NodeID(0); u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			stream = append(stream, Edge{u, v})
		}
	}
	res := CountExact(stream, allOpts)
	if res.Tau != 20 {
		t.Fatalf("Tau = %d, want 20", res.Tau)
	}
	for v := NodeID(0); v < 6; v++ {
		if res.TauV[v] != 10 {
			t.Errorf("TauV[%d] = %d, want 10", v, res.TauV[v])
		}
	}
	// Cross-check η against the brute-force reference.
	brute := BruteExact(stream)
	if res.Eta != brute.Eta {
		t.Errorf("Eta = %d, brute = %d", res.Eta, brute.Eta)
	}
}

// TestCountExactMatchesBrute compares the streaming exact counter against
// the O(n³)+O(T²) reference on many random graphs and stream orders.
func TestCountExactMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 1))
	for trial := 0; trial < 60; trial++ {
		n := 5 + rng.IntN(12)
		prob := 0.15 + 0.5*rng.Float64()
		var stream []Edge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < prob {
					stream = append(stream, Edge{NodeID(u), NodeID(v)})
				}
			}
		}
		rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })

		got := CountExact(stream, allOpts)
		want := BruteExact(stream)
		if got.Tau != want.Tau {
			t.Fatalf("trial %d: Tau = %d, want %d", trial, got.Tau, want.Tau)
		}
		if got.Eta != want.Eta {
			t.Fatalf("trial %d: Eta = %d, want %d (n=%d edges=%d)", trial, got.Eta, want.Eta, n, len(stream))
		}
		for v, w := range want.TauV {
			if got.TauV[v] != w {
				t.Fatalf("trial %d: TauV[%d] = %d, want %d", trial, v, got.TauV[v], w)
			}
		}
		for v, w := range want.EtaV {
			if got.EtaV[v] != w {
				t.Fatalf("trial %d: EtaV[%d] = %d, want %d", trial, v, got.EtaV[v], w)
			}
		}
		for v, w := range got.EtaV {
			if w != 0 && want.EtaV[v] != w {
				t.Fatalf("trial %d: extra EtaV[%d] = %d", trial, v, w)
			}
		}
	}
}

// TestTauVSumInvariant checks Σ_v τ_v = 3τ (each triangle has 3 nodes).
func TestTauVSumInvariant(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	for trial := 0; trial < 20; trial++ {
		var stream []Edge
		n := 20 + rng.IntN(20)
		for i := 0; i < 4*n; i++ {
			stream = append(stream, Edge{NodeID(rng.IntN(n)), NodeID(rng.IntN(n))})
		}
		res := CountExact(stream, ExactOptions{Local: true})
		var sum uint64
		for _, c := range res.TauV {
			sum += c
		}
		if sum != 3*res.Tau {
			t.Fatalf("Σ τ_v = %d, want 3τ = %d", sum, 3*res.Tau)
		}
	}
}

func TestSummarize(t *testing.T) {
	stream := []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {0, 1}, {4, 4}}
	s := Summarize(stream)
	if s.Nodes != 4 || s.Edges != 4 {
		t.Errorf("Nodes,Edges = %d,%d want 4,4", s.Nodes, s.Edges)
	}
	if s.MaxDegree != 3 {
		t.Errorf("MaxDegree = %d, want 3", s.MaxDegree)
	}
	if s.AvgDegree != 2 {
		t.Errorf("AvgDegree = %v, want 2", s.AvgDegree)
	}
	if MaxNodeID(stream) != 4 {
		t.Errorf("MaxNodeID = %d, want 4", MaxNodeID(stream))
	}
}
