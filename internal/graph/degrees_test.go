package graph

import "testing"

func TestDegreeTableBasics(t *testing.T) {
	dt := NewDegreeTable()
	dt.AddEdge(1, 2)
	dt.AddEdge(2, 3)
	dt.AddEdge(7, 7) // self-loop ignored
	if got := dt.Degree(2); got != 2 {
		t.Errorf("Degree(2) = %d, want 2", got)
	}
	if got := dt.Degree(1); got != 1 {
		t.Errorf("Degree(1) = %d, want 1", got)
	}
	if got := dt.Degree(7); got != 0 {
		t.Errorf("Degree(7) = %d, want 0 (self-loop)", got)
	}
	if got := dt.Degree(99); got != 0 {
		t.Errorf("Degree(99) = %d, want 0 (unseen)", got)
	}
	if got := dt.Nodes(); got != 3 {
		t.Errorf("Nodes() = %d, want 3", got)
	}
}

// TestDegreeTableMatchesAdjacency: on a duplicate-free stream, arrival
// degrees equal graph degrees.
func TestDegreeTableMatchesAdjacency(t *testing.T) {
	adj := NewAdjacency()
	dt := NewDegreeTable()
	edges := []Edge{{1, 2}, {2, 3}, {3, 1}, {4, 1}, {5, 1}, {2, 5}}
	for _, e := range edges {
		adj.Add(e.U, e.V)
		dt.AddEdge(e.U, e.V)
	}
	for v := NodeID(1); v <= 5; v++ {
		if got, want := int(dt.Degree(v)), adj.Degree(v); got != want {
			t.Errorf("node %d: table degree %d, adjacency degree %d", v, got, want)
		}
	}
}

func TestDegreeTableSnapshotIsIndependent(t *testing.T) {
	dt := NewDegreeTable()
	dt.AddEdge(1, 2)
	snap := dt.Snapshot()
	dt.AddEdge(1, 3)
	if snap[1] != 1 {
		t.Errorf("snapshot mutated by later AddEdge: deg(1) = %d, want 1", snap[1])
	}
	if dt.Degree(1) != 2 {
		t.Errorf("live table degree(1) = %d, want 2", dt.Degree(1))
	}
}

func TestRestoreDegreeTable(t *testing.T) {
	dt := RestoreDegreeTable(map[NodeID]uint32{4: 7})
	dt.AddEdge(4, 5)
	if got := dt.Degree(4); got != 8 {
		t.Errorf("restored degree(4) = %d, want 8", got)
	}
	if nil2 := RestoreDegreeTable(nil); nil2.Degree(1) != 0 || nil2.Nodes() != 0 {
		t.Error("RestoreDegreeTable(nil) is not an empty usable table")
	}
}

func TestDegreeTableRemoveEdge(t *testing.T) {
	dt := NewDegreeTable()
	dt.AddEdge(1, 2)
	dt.AddEdge(1, 3)
	dt.RemoveEdge(1, 2)
	if dt.Degree(1) != 1 || dt.Degree(2) != 0 {
		t.Errorf("degrees after removal = (%d, %d), want (1, 0)", dt.Degree(1), dt.Degree(2))
	}
	if dt.Nodes() != 2 { // node 2 dropped at zero, 1 and 3 remain
		t.Errorf("Nodes = %d, want 2", dt.Nodes())
	}
	// Phantom deletes are no-ops: removing an edge that was never added
	// (or already removed) must not touch any degree — in particular the
	// repeated RemoveEdge(1, 2) must not steal degree mass from the still
	// live edge {1, 3}.
	dt.RemoveEdge(7, 8)
	dt.RemoveEdge(1, 2)
	if dt.Degree(1) != 1 || dt.Degree(7) != 0 {
		t.Errorf("degrees after malformed removals = (%d, %d), want (1, 0)", dt.Degree(1), dt.Degree(7))
	}
	// Self-loops are ignored on removal as on insertion.
	dt.RemoveEdge(3, 3)
	if dt.Degree(3) != 1 {
		t.Errorf("degree(3) after self-loop removal = %d, want 1", dt.Degree(3))
	}
	// Saturated nodes stay saturated rather than becoming wrong.
	sat := RestoreDegreeTable(map[NodeID]uint32{9: ^uint32(0)})
	sat.RemoveEdge(9, 10)
	if sat.Degree(9) != ^uint32(0) {
		t.Errorf("saturated degree decremented to %d", sat.Degree(9))
	}
}

// TestDegreeTableDuplicateInsert: re-inserting a live edge must not
// inflate degrees — the table dedupes exactly like Adjacency.Add, so the
// clustering-coefficient denominator stays consistent with the sampled
// numerator.
func TestDegreeTableDuplicateInsert(t *testing.T) {
	dt := NewDegreeTable()
	adj := NewAdjacency()
	events := []Edge{{1, 2}, {2, 1}, {1, 2}, {2, 3}, {2, 3}, {1, 3}}
	for _, e := range events {
		dt.AddEdge(e.U, e.V)
		adj.Add(e.U, e.V)
	}
	for v := NodeID(1); v <= 3; v++ {
		if got, want := int(dt.Degree(v)), adj.Degree(v); got != want {
			t.Errorf("node %d: degree %d after duplicates, adjacency says %d", v, got, want)
		}
	}
	if dt.Edges() != 3 {
		t.Errorf("Edges() = %d, want 3 distinct live edges", dt.Edges())
	}
	// Delete then re-insert counts again (it is a new live edge).
	dt.RemoveEdge(1, 2)
	dt.AddEdge(1, 2)
	if dt.Degree(1) != 2 || dt.Degree(2) != 2 {
		t.Errorf("degrees after delete+reinsert = (%d, %d), want (2, 2)", dt.Degree(1), dt.Degree(2))
	}
}

// TestDegreeTableRestoredLegacyDeletes: a table restored from a bare
// degree map (no membership set) must still honor well-formed deletions
// of pre-checkpoint edges, bounded by the restored degree mass, while
// exact filtering applies to post-restore edges.
func TestDegreeTableRestoredLegacyDeletes(t *testing.T) {
	// Pre-checkpoint graph: 1-2, 1-3 (degrees 2, 1, 1); two legacy deletes
	// available.
	dt := RestoreDegreeTable(map[NodeID]uint32{1: 2, 2: 1, 3: 1})
	dt.RemoveEdge(1, 2) // legacy: decrements both
	if dt.Degree(1) != 1 || dt.Degree(2) != 0 {
		t.Fatalf("after legacy delete: degrees (%d, %d), want (1, 0)", dt.Degree(1), dt.Degree(2))
	}
	dt.RemoveEdge(1, 3) // second legacy delete
	if dt.Degree(1) != 0 || dt.Degree(3) != 0 {
		t.Fatalf("after second legacy delete: degrees (%d, %d), want (0, 0)", dt.Degree(1), dt.Degree(3))
	}
	// Legacy budget exhausted: further unknown deletes are pure no-ops.
	dt.AddEdge(4, 5)
	dt.RemoveEdge(4, 6)
	if dt.Degree(4) != 1 || dt.Degree(5) != 1 {
		t.Errorf("post-budget phantom delete changed degrees to (%d, %d)", dt.Degree(4), dt.Degree(5))
	}
	// Post-restore inserts are filtered exactly.
	dt.AddEdge(4, 5)
	if dt.Degree(4) != 1 {
		t.Errorf("duplicate insert after restore inflated degree to %d", dt.Degree(4))
	}
}

func TestDegreeTableApplyUpdate(t *testing.T) {
	dt := NewDegreeTable()
	dt.ApplyUpdate(Update{U: 1, V: 2})
	dt.ApplyUpdate(Update{U: 1, V: 3})
	dt.ApplyUpdate(Update{U: 1, V: 2, Del: true})
	if dt.Degree(1) != 1 || dt.Degree(2) != 0 || dt.Degree(3) != 1 {
		t.Errorf("degrees = (%d, %d, %d), want (1, 0, 1)", dt.Degree(1), dt.Degree(2), dt.Degree(3))
	}
}
