package graph

// Summary holds cheap structural statistics of a stream, used by the
// Table II reproduction and dataset reports.
type Summary struct {
	Nodes     int
	Edges     int // distinct non-loop edges
	MaxDegree int
	AvgDegree float64
}

// Summarize computes a Summary in one pass (deduping edges).
func Summarize(stream []Edge) Summary {
	adj := NewAdjacency()
	for _, e := range stream {
		if !e.IsSelfLoop() {
			adj.Add(e.U, e.V)
		}
	}
	s := Summary{Nodes: adj.Nodes(), Edges: adj.Edges()}
	adj.idx.each(func(_ NodeID, si int32) {
		if d := adj.sets[si].deg(); d > s.MaxDegree {
			s.MaxDegree = d
		}
	})
	if s.Nodes > 0 {
		s.AvgDegree = 2 * float64(s.Edges) / float64(s.Nodes)
	}
	return s
}

// MaxNodeID returns the largest node id appearing in the stream, or 0 for
// an empty stream. Generators emit dense ids, so MaxNodeID+1 is the array
// size needed for per-node accumulators.
func MaxNodeID(stream []Edge) NodeID {
	var mx NodeID
	for _, e := range stream {
		if e.U > mx {
			mx = e.U
		}
		if e.V > mx {
			mx = e.V
		}
	}
	return mx
}
