package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadEdgeList(t *testing.T) {
	in := `# comment
% another comment
0 1
1 2	extra-col-ignored
2 0

0 1
3 3
`
	edges, err := ReadEdgeList(strings.NewReader(in), ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Edge{{0, 1}, {1, 2}, {2, 0}, {0, 1}, {3, 3}}
	if len(edges) != len(want) {
		t.Fatalf("got %d edges, want %d", len(edges), len(want))
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Errorf("edge %d = %v, want %v", i, edges[i], want[i])
		}
	}
}

func TestReadEdgeListDedupAndLoops(t *testing.T) {
	in := "0 1\n1 0\n2 2\n1 2\n"
	edges, err := ReadEdgeList(strings.NewReader(in), ReadOptions{Dedup: true, DropLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []Edge{{0, 1}, {1, 2}}
	if len(edges) != len(want) {
		t.Fatalf("got %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("got %v, want %v", edges, want)
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",             // single field
		"a b\n",           // non-numeric
		"1 99999999999\n", // overflows uint32
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), ReadOptions{}); err == nil {
			t.Errorf("ReadEdgeList(%q): got nil error", in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	stream := []Edge{{5, 1}, {2, 7}, {0, 0}, {1, 5}}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, stream); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(stream) {
		t.Fatalf("round trip length %d, want %d", len(back), len(stream))
	}
	for i := range stream {
		if back[i] != stream[i] {
			t.Errorf("edge %d = %v, want %v", i, back[i], stream[i])
		}
	}
}

func TestEdgeListFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.txt")
	stream := []Edge{{1, 2}, {3, 4}}
	if err := WriteEdgeListFile(path, stream); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeListFile(path, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != stream[0] || back[1] != stream[1] {
		t.Fatalf("got %v, want %v", back, stream)
	}
	if _, err := ReadEdgeListFile(filepath.Join(t.TempDir(), "missing"), ReadOptions{}); err == nil {
		t.Error("reading missing file: got nil error")
	}
}
