package graph

// ExactOptions selects which exact statistics to compute. η and η_v cost
// extra memory (per-edge and per-(edge,node) counters over triangles), so
// they are opt-in.
type ExactOptions struct {
	Local    bool // compute TauV (per-node triangle counts)
	Eta      bool // compute Eta (paper's η)
	EtaLocal bool // compute EtaV (paper's η_v); implies Eta bookkeeping
}

// ExactResult holds exact, stream-order-dependent statistics of a stream.
type ExactResult struct {
	Nodes int // nodes with at least one (non-loop, deduped) edge
	Edges int // distinct non-loop edges

	SelfLoops  int // self-loop arrivals skipped
	Duplicates int // duplicate arrivals skipped

	Tau  uint64            // number of triangles τ
	TauV map[NodeID]uint64 // per-node triangle counts τ_v (nil unless Local)

	// Eta is the number of unordered pairs (σ, σ*) of distinct triangles
	// sharing an edge g such that g is the last stream edge of neither σ
	// nor σ* (paper Table I). Zero unless Options.Eta.
	Eta uint64
	// EtaV[v] restricts Eta to pairs of triangles that both contain v.
	// Nil unless Options.EtaLocal.
	EtaV map[NodeID]uint64
}

type etaVKey struct {
	g uint64 // shared-edge key
	v NodeID
}

// CountExact computes exact triangle statistics of the stream in arrival
// order. Self-loops and duplicate edges are skipped (and counted in the
// result) so that downstream consumers see the simple-stream semantics the
// paper assumes.
//
// Each triangle is discovered exactly once, at the arrival of its last
// stream edge (u,v), as a common neighbor w of u and v in the graph built
// so far; the edges (u,w) and (v,w) are then exactly the triangle's two
// non-last edges, which is what the η bookkeeping needs.
func CountExact(stream []Edge, opt ExactOptions) *ExactResult {
	res := &ExactResult{}
	if opt.Local {
		res.TauV = make(map[NodeID]uint64)
	}
	adj := NewAdjacency()

	// x[g] = number of triangles in which edge g is not the last edge.
	var x map[uint64]uint32
	if opt.Eta || opt.EtaLocal {
		x = make(map[uint64]uint32)
	}
	// xv[(g,v)] = number of triangles containing node v in which edge g is
	// not the last edge.
	var xv map[etaVKey]uint32
	if opt.EtaLocal {
		xv = make(map[etaVKey]uint32)
	}

	var common []NodeID
	for _, e := range stream {
		if e.IsSelfLoop() {
			res.SelfLoops++
			continue
		}
		u, v := e.U, e.V
		if adj.Has(u, v) {
			res.Duplicates++
			continue
		}
		common = adj.CommonNeighbors(u, v, common[:0])
		n := uint64(len(common))
		res.Tau += n
		if opt.Local {
			res.TauV[u] += n
			res.TauV[v] += n
			for _, w := range common {
				res.TauV[w]++
			}
		}
		if x != nil {
			for _, w := range common {
				guw, gvw := Key(u, w), Key(v, w)
				x[guw]++
				x[gvw]++
				if xv != nil {
					// The triangle {u,v,w} contains all three nodes, so each
					// non-last edge contributes to xv for all three.
					for _, a := range [3]NodeID{u, v, w} {
						xv[etaVKey{guw, a}]++
						xv[etaVKey{gvw, a}]++
					}
				}
			}
		}
		adj.Add(u, v)
	}
	res.Nodes = adj.Nodes()
	res.Edges = adj.Edges()

	// Distinct triangles share at most one edge (two shared edges would
	// force identical vertex sets), so η is a sum of per-edge pair counts.
	if x != nil {
		for _, c := range x {
			res.Eta += choose2(uint64(c))
		}
	}
	if xv != nil {
		res.EtaV = make(map[NodeID]uint64)
		for k, c := range xv {
			if c > 1 {
				res.EtaV[k.v] += choose2(uint64(c))
			}
		}
	}
	return res
}

func choose2(n uint64) uint64 { return n * (n - 1) / 2 }
