package graph

// This file holds deliberately slow, obviously-correct reference
// implementations used to validate CountExact and the streaming estimators
// in tests. They enumerate triangles explicitly and compute η from the
// definition (all pairs of distinct triangles), so they are only suitable
// for small inputs.

// TriEdge is one edge of a triangle together with its stream position.
type TriEdge struct {
	Key uint64
	Pos int
}

// Triangle is a triangle with its three edges ordered by arrival, so
// Edges[2] is the triangle's last edge on the stream.
type Triangle struct {
	Nodes [3]NodeID // ascending node ids
	Edges [3]TriEdge
}

// BruteTriangles enumerates all triangles of the (deduped, loop-free view
// of the) stream together with the arrival positions of their edges.
func BruteTriangles(stream []Edge) []Triangle {
	pos := make(map[uint64]int) // first arrival position of each edge
	for i, e := range stream {
		if e.IsSelfLoop() {
			continue
		}
		k := e.Key()
		if _, ok := pos[k]; !ok {
			pos[k] = i
		}
	}
	adj := NewAdjacency()
	nodeSet := make(map[NodeID]struct{})
	for k := range pos {
		e := KeyEdge(k)
		adj.Add(e.U, e.V)
		nodeSet[e.U] = struct{}{}
		nodeSet[e.V] = struct{}{}
	}
	nodes := make([]NodeID, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	var out []Triangle
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if !adj.Has(nodes[i], nodes[j]) {
				continue
			}
			for l := j + 1; l < len(nodes); l++ {
				if adj.Has(nodes[i], nodes[l]) && adj.Has(nodes[j], nodes[l]) {
					a, b, c := nodes[i], nodes[j], nodes[l]
					sort3(&a, &b, &c)
					es := [3]TriEdge{
						{Key(a, b), pos[Key(a, b)]},
						{Key(a, c), pos[Key(a, c)]},
						{Key(b, c), pos[Key(b, c)]},
					}
					sortTriEdges(&es)
					out = append(out, Triangle{Nodes: [3]NodeID{a, b, c}, Edges: es})
				}
			}
		}
	}
	return out
}

// LastEdge returns the key of the triangle's last stream edge.
func (t Triangle) LastEdge() uint64 { return t.Edges[2].Key }

// Contains reports whether v is a vertex of the triangle.
func (t Triangle) Contains(v NodeID) bool {
	return t.Nodes[0] == v || t.Nodes[1] == v || t.Nodes[2] == v
}

// BruteExact computes the same statistics as CountExact from the triangle
// list, straight from the definitions in paper Table I. O(T²) in the
// number of triangles.
func BruteExact(stream []Edge) *ExactResult {
	tris := BruteTriangles(stream)
	res := &ExactResult{
		TauV: make(map[NodeID]uint64),
		EtaV: make(map[NodeID]uint64),
		Tau:  uint64(len(tris)),
	}
	adj := NewAdjacency()
	for _, e := range stream {
		if e.IsSelfLoop() {
			res.SelfLoops++
			continue
		}
		if !adj.Add(e.U, e.V) {
			res.Duplicates++
		}
	}
	res.Nodes = adj.Nodes()
	res.Edges = adj.Edges()
	for _, t := range tris {
		for _, v := range t.Nodes {
			res.TauV[v]++
		}
	}
	// η: unordered pairs of distinct triangles sharing an edge g where g is
	// the last edge of neither. Two distinct triangles share at most one
	// edge, so the first shared key found decides the pair.
	for i := 0; i < len(tris); i++ {
		for j := i + 1; j < len(tris); j++ {
			if !pairCountsForEta(tris[i], tris[j]) {
				continue
			}
			res.Eta++
			for _, v := range tris[i].Nodes {
				if tris[j].Contains(v) {
					res.EtaV[v]++
				}
			}
		}
	}
	return res
}

// pairCountsForEta reports whether the two distinct triangles share an edge
// that is the last stream edge of neither.
func pairCountsForEta(a, b Triangle) bool {
	for _, ea := range a.Edges {
		for _, eb := range b.Edges {
			if ea.Key == eb.Key {
				return ea.Key != a.LastEdge() && eb.Key != b.LastEdge()
			}
		}
	}
	return false
}

func sortTriEdges(es *[3]TriEdge) {
	if es[0].Pos > es[1].Pos {
		es[0], es[1] = es[1], es[0]
	}
	if es[1].Pos > es[2].Pos {
		es[1], es[2] = es[2], es[1]
	}
	if es[0].Pos > es[1].Pos {
		es[0], es[1] = es[1], es[0]
	}
}

func sort3(a, b, c *NodeID) {
	if *a > *b {
		*a, *b = *b, *a
	}
	if *b > *c {
		*b, *c = *c, *b
	}
	if *a > *b {
		*a, *b = *b, *a
	}
}
