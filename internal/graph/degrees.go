package graph

// DegreeTable tracks per-node degrees of a graph stream with one counter
// per node: O(V) memory for the whole stream, O(1) per edge. Because it
// keeps no adjacency, degrees count edge ARRIVALS — a duplicate arrival of
// the same edge increments both endpoints again. REPT's streaming model
// assumes each edge arrives once, in which case arrival degree equals
// graph degree; on streams with duplicates the table overcounts by the
// duplication factor, and callers deriving clustering coefficients from it
// inherit that bias.
//
// The zero value is not usable; call NewDegreeTable. A DegreeTable is not
// safe for concurrent use; the shard layer confines each table to one
// goroutine.
type DegreeTable struct {
	deg map[NodeID]uint32
}

// NewDegreeTable returns an empty degree table.
func NewDegreeTable() *DegreeTable {
	return &DegreeTable{deg: make(map[NodeID]uint32)}
}

// RestoreDegreeTable builds a table around m, taking ownership of the map
// (nil is treated as empty). It is the snapshot-restore entry point.
func RestoreDegreeTable(m map[NodeID]uint32) *DegreeTable {
	if m == nil {
		m = make(map[NodeID]uint32)
	}
	return &DegreeTable{deg: m}
}

// AddEdge records one non-loop edge arrival, incrementing both endpoint
// degrees. Self-loops are ignored, matching the estimator's stream
// semantics. Degrees saturate at the uint32 maximum instead of wrapping.
func (t *DegreeTable) AddEdge(u, v NodeID) {
	if u == v {
		return
	}
	t.bump(u)
	t.bump(v)
}

func (t *DegreeTable) bump(v NodeID) {
	if d := t.deg[v]; d != ^uint32(0) {
		t.deg[v] = d + 1
	}
}

// RemoveEdge records one non-loop edge deletion, decrementing both
// endpoint degrees. Nodes whose degree reaches zero are dropped from the
// table. Degrees floor at zero: a deletion of an edge that was never
// inserted (a malformed stream) cannot drive a degree negative, and a
// node saturated at the uint32 maximum stays saturated (the count is
// already unreliable there). Self-loops are ignored, as in AddEdge.
func (t *DegreeTable) RemoveEdge(u, v NodeID) {
	if u == v {
		return
	}
	t.drop(u)
	t.drop(v)
}

func (t *DegreeTable) drop(v NodeID) {
	switch d := t.deg[v]; d {
	case 0, ^uint32(0):
		// Never seen (malformed delete) or saturated: leave untouched.
	case 1:
		delete(t.deg, v)
	default:
		t.deg[v] = d - 1
	}
}

// ApplyUpdate records one signed edge event.
func (t *DegreeTable) ApplyUpdate(up Update) {
	if up.Del {
		t.RemoveEdge(up.U, up.V)
	} else {
		t.AddEdge(up.U, up.V)
	}
}

// Degree returns the recorded degree of v (0 if never seen).
func (t *DegreeTable) Degree(v NodeID) uint32 { return t.deg[v] }

// Nodes returns the number of nodes with non-zero degree.
func (t *DegreeTable) Nodes() int { return len(t.deg) }

// Snapshot returns a copy of the table as a plain map, the export path
// used by barrier snapshots and checkpoints. The copy is independent of
// subsequent AddEdge calls.
func (t *DegreeTable) Snapshot() map[NodeID]uint32 {
	out := make(map[NodeID]uint32, len(t.deg))
	for v, d := range t.deg {
		out[v] = d
	}
	return out
}
