package graph

// DegreeTable tracks per-node degrees of a graph stream: one counter per
// node plus a live-edge membership set, O(V + E) memory, O(1) per event.
//
// Semantics match Adjacency exactly: a duplicate insertion of a live edge
// is a no-op (it used to inflate both endpoint degrees, skewing the
// clustering coefficients derived from them), and a deletion of an edge
// that is not live — a phantom delete from a malformed stream — is a
// no-op too (it used to decrement unrelated degree mass). Degrees
// therefore always equal the degrees of the live graph, the denominator
// the plug-in clustering coefficient needs.
//
// The edge membership set costs O(E) memory — unavoidable for exact
// duplicate detection, and acceptable because degree tracking is opt-in
// (shard.Config.TrackDegrees) and hosted by a single tracker goroutine,
// not replicated per processor.
//
// One caveat survives checkpointing: the snapshot payload carries only
// the degree counters (format v2/v3), so a table restored from a
// checkpoint starts with an empty membership set. Deletions of edges
// inserted before the checkpoint are then honored best-effort under the
// historical floor-at-zero semantics, bounded by the number of
// pre-checkpoint live edges (sum of restored degrees / 2); on well-formed
// streams — the REPT model, where only live edges are deleted and only
// non-live ones inserted — a restored table replays exactly like one that
// never restarted. Only malformed events targeting the pre-checkpoint
// window escape exact filtering.
//
// The zero value is not usable; call NewDegreeTable. A DegreeTable is not
// safe for concurrent use; the shard layer confines each table to one
// goroutine.
type DegreeTable struct {
	deg  map[NodeID]degcount
	seen edgeSet
	// legacy is the best-effort budget of pre-restore live edges that are
	// absent from seen; deletions that miss the membership set decrement
	// degrees under the historical semantics while it lasts.
	legacy uint64
}

// degcount is a per-node degree counter that clamps at the uint32
// maximum instead of wrapping. All arithmetic on it goes through the
// //rept:sathelper methods bump and drop; satarith reports any raw
// additive operator elsewhere.
//
//rept:satcounter
type degcount uint32

// degMax is the saturation ceiling of degcount.
const degMax = ^degcount(0)

// NewDegreeTable returns an empty degree table.
func NewDegreeTable() *DegreeTable {
	return &DegreeTable{deg: make(map[NodeID]degcount)}
}

// RestoreDegreeTable builds a table around the exported map form m,
// copying it (nil is treated as empty). It is the snapshot-restore entry
// point. The live-edge membership set starts empty (see the type
// comment); the restored degree mass seeds the legacy-deletion budget.
func RestoreDegreeTable(m map[NodeID]uint32) *DegreeTable {
	deg := make(map[NodeID]degcount, len(m))
	var mass uint64
	for v, d := range m {
		deg[v] = degcount(d)
		mass += uint64(d)
	}
	return &DegreeTable{deg: deg, legacy: mass / 2}
}

// AddEdge records one non-loop edge insertion, incrementing both endpoint
// degrees. Self-loops and duplicate insertions of a live edge are
// ignored, matching Adjacency.Add. Degrees saturate at the uint32 maximum
// instead of wrapping.
func (t *DegreeTable) AddEdge(u, v NodeID) {
	if u == v {
		return
	}
	if !t.seen.add(Key(u, v)) {
		return
	}
	t.bump(u)
	t.bump(v)
}

// bump increments v's degree, saturating at degMax.
//
//rept:sathelper
func (t *DegreeTable) bump(v NodeID) {
	if d := t.deg[v]; d != degMax {
		t.deg[v] = d + 1
	}
}

// RemoveEdge records one non-loop edge deletion, decrementing both
// endpoint degrees. Nodes whose degree reaches zero are dropped from the
// table. Deletions of edges that are not live — self-loops, phantom
// deletes of never-inserted edges, repeated deletes — are ignored,
// matching Adjacency.Remove, so a malformed stream can never corrupt the
// degrees of live edges' endpoints. The one exception is deletions
// covered by the post-restore legacy budget (see the type comment), which
// fall back to floor-at-zero decrements. A node saturated at the uint32
// maximum stays saturated (the count is already unreliable there).
func (t *DegreeTable) RemoveEdge(u, v NodeID) {
	if u == v {
		return
	}
	if t.seen.remove(Key(u, v)) {
		t.drop(u)
		t.drop(v)
		return
	}
	if t.legacy > 0 {
		t.legacy--
		t.drop(u)
		t.drop(v)
	}
}

// drop decrements v's degree; zero floors and degMax stays saturated.
//
//rept:sathelper
func (t *DegreeTable) drop(v NodeID) {
	switch d := t.deg[v]; d {
	case 0, degMax:
		// Zero (legacy deletion of an unknown edge) or saturated: leave
		// untouched.
	case 1:
		delete(t.deg, v)
	default:
		t.deg[v] = d - 1
	}
}

// ApplyUpdate records one signed edge event.
func (t *DegreeTable) ApplyUpdate(up Update) {
	if up.Del {
		t.RemoveEdge(up.U, up.V)
	} else {
		t.AddEdge(up.U, up.V)
	}
}

// Degree returns the recorded degree of v (0 if never seen).
func (t *DegreeTable) Degree(v NodeID) uint32 { return uint32(t.deg[v]) }

// Nodes returns the number of nodes with non-zero degree.
func (t *DegreeTable) Nodes() int { return len(t.deg) }

// Edges returns the number of live edges in the membership set. Restored
// tables undercount by the edges inserted before the checkpoint.
func (t *DegreeTable) Edges() int { return t.seen.n }

// degMapEntryBytes is the amortized accounting estimate for one degree
// map entry: 8 bytes of key+value plus Go map bucket overhead. Map
// capacity is not observable, so the degree table is accounted by this
// estimate, reconciled batch-wise by its owner rather than hooked at
// growth sites like the flat structures.
const degMapEntryBytes = 24

// FootprintBytes estimates the table's backing bytes: the degree map at
// an amortized per-entry cost plus the live-edge membership table (whose
// capacity IS observable). Callers reconcile the ledger against it once
// per batch, off the per-event path.
func (t *DegreeTable) FootprintBytes() int64 {
	return int64(len(t.deg))*degMapEntryBytes + int64(len(t.seen.keys))*8
}

// Snapshot returns a copy of the table as a plain map, the export path
// used by barrier snapshots and checkpoints. The copy is independent of
// subsequent AddEdge calls.
func (t *DegreeTable) Snapshot() map[NodeID]uint32 {
	out := make(map[NodeID]uint32, len(t.deg))
	for v, d := range t.deg {
		out[v] = uint32(d)
	}
	return out
}
