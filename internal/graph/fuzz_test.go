package graph

import (
	"testing"
)

// decodeStream turns fuzz bytes into a small edge stream over 16 nodes.
func decodeStream(data []byte) []Edge {
	edges := make([]Edge, 0, len(data))
	for _, b := range data {
		edges = append(edges, Edge{U: NodeID(b & 0xf), V: NodeID(b >> 4)})
	}
	return edges
}

// FuzzCountExactVsBrute cross-checks the streaming exact counter against
// the brute-force reference on arbitrary streams (duplicates, self-loops
// and arbitrary orders included).
func FuzzCountExactVsBrute(f *testing.F) {
	f.Add([]byte{0x10, 0x21, 0x20})             // one triangle
	f.Add([]byte{0x10, 0x21, 0x20, 0x31, 0x30}) // two triangles sharing an edge
	f.Add([]byte{0x00, 0x10, 0x10})             // self-loop + duplicate
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64] // keep the O(T²) reference fast
		}
		stream := decodeStream(data)
		got := CountExact(stream, ExactOptions{Local: true, Eta: true, EtaLocal: true})
		want := BruteExact(stream)
		if got.Tau != want.Tau {
			t.Fatalf("Tau = %d, brute = %d (stream %v)", got.Tau, want.Tau, stream)
		}
		if got.Eta != want.Eta {
			t.Fatalf("Eta = %d, brute = %d (stream %v)", got.Eta, want.Eta, stream)
		}
		for v, x := range want.TauV {
			if got.TauV[v] != x {
				t.Fatalf("TauV[%d] = %d, brute = %d", v, got.TauV[v], x)
			}
		}
		for v, x := range want.EtaV {
			if got.EtaV[v] != x {
				t.Fatalf("EtaV[%d] = %d, brute = %d", v, got.EtaV[v], x)
			}
		}
		// Σ τ_v = 3τ always.
		var sum uint64
		for _, x := range got.TauV {
			sum += x
		}
		if sum != 3*got.Tau {
			t.Fatalf("Σ τ_v = %d, want %d", sum, 3*got.Tau)
		}
	})
}
