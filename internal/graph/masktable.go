package graph

import (
	"unsafe"

	"rept/internal/mem"
)

// maskEntryBytes is the accounted size of one mask-table slot.
const maskEntryBytes = int64(unsafe.Sizeof(maskEntry{}))

// MaskTable maps a NodeID to a 64-bit processor-presence bitmask: bit i
// is set while logical processor i's sampled adjacency contains the
// node. The single-engine batch path reads it to skip processors that
// provably cannot close a triangle on an incoming edge (a processor
// whose adjacency holds neither endpoint has an empty intersection and
// no edge to phantom-track), which is where most of the per-event cost
// of broadcasting every edge to every processor goes.
//
// Storage mirrors the adjacency node index: open addressing with linear
// probing over mix32, grown at 50% load, entries removed by backward
// shift. A mask of 0 means "present on no processor", which is exactly
// "absent", so 0 doubles as the empty-slot sentinel and AndNot can drop
// entries the moment their last bit clears.
//
// The zero value is not usable; call NewMaskTable. Not safe for
// concurrent use — it lives inside a single engine, guarded by the
// engine's own synchronization.
type MaskTable struct {
	ents []maskEntry
	n    int
	ac   *mem.Accountant
}

type maskEntry struct {
	key  NodeID
	mask uint64 // 0 = empty slot
}

const maskMinSize = 16

// NewMaskTable returns an empty mask table.
func NewMaskTable() *MaskTable {
	return &MaskTable{ents: make([]maskEntry, maskMinSize)}
}

// SetAccountant attaches the byte ledger, immediately accounting the
// capacity that already exists; later growth reports its own deltas.
func (t *MaskTable) SetAccountant(ac *mem.Accountant) {
	t.ac = ac
	ac.Add(mem.CompMasks, int64(len(t.ents))*maskEntryBytes)
}

// Get returns u's presence mask, 0 if u is on no processor.
//
//rept:hotpath
func (t *MaskTable) Get(u NodeID) uint64 {
	mask := uint32(len(t.ents) - 1)
	for i := mix32(uint32(u)) & mask; ; i = (i + 1) & mask {
		e := &t.ents[i]
		if e.mask == 0 {
			return 0
		}
		if e.key == u {
			return e.mask
		}
	}
}

// Or sets bit into u's mask, inserting u if absent. Growth lives in a
// separate cold function; the steady-state body allocates nothing.
//
//rept:hotpath
func (t *MaskTable) Or(u NodeID, bit uint64) {
	mask := uint32(len(t.ents) - 1)
	for i := mix32(uint32(u)) & mask; ; i = (i + 1) & mask {
		e := &t.ents[i]
		if e.mask == 0 {
			e.key = u
			e.mask = bit
			t.n++
			if t.n >= len(t.ents)/2 {
				t.grow()
			}
			return
		}
		if e.key == u {
			e.mask |= bit
			return
		}
	}
}

// AndNot clears bit from u's mask, deleting the entry (backward-shift)
// when the mask drops to 0. Clearing a bit of an absent node is a no-op.
//
//rept:hotpath
func (t *MaskTable) AndNot(u NodeID, bit uint64) {
	mask := uint32(len(t.ents) - 1)
	i := mix32(uint32(u)) & mask
	for {
		e := &t.ents[i]
		if e.mask == 0 {
			return
		}
		if e.key == u {
			e.mask &^= bit
			if e.mask != 0 {
				return
			}
			break
		}
		i = (i + 1) & mask
	}
	// Backward-shift deletion keeps probe chains dense without
	// tombstones: pull back every displaced entry that probed past i
	// (same walk as nodeIndex.del).
	j := i
	for {
		j = (j + 1) & mask
		if t.ents[j].mask == 0 {
			break
		}
		home := mix32(uint32(t.ents[j].key)) & mask
		if (j-home)&mask >= (j-i)&mask {
			t.ents[i] = t.ents[j]
			i = j
		}
	}
	t.ents[i] = maskEntry{}
	t.n--
}

// grow doubles the table and re-inserts every live entry.
func (t *MaskTable) grow() {
	old := t.ents
	t.ac.Add(mem.CompMasks, int64(len(old))*maskEntryBytes)
	t.ents = make([]maskEntry, len(old)*2)
	mask := uint32(len(t.ents) - 1)
	for _, e := range old {
		if e.mask == 0 {
			continue
		}
		for i := mix32(uint32(e.key)) & mask; ; i = (i + 1) & mask {
			if t.ents[i].mask == 0 {
				t.ents[i] = e
				break
			}
		}
	}
}
