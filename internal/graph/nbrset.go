package graph

import "rept/internal/mem"

// This file implements the flat storage behind Adjacency: an open-
// addressing node index (NodeID → arena slot) over an arena of per-node
// neighbor sets. A set stores its first few neighbors inline in the
// arena entry itself (no pointer chase at all for the typical sampled
// node), spills to a sorted NodeID slice as it grows, and is promoted to
// an open-addressing hash set past promoteDeg neighbors. Sorted layouts
// intersect by merge walk (galloping by binary search when the sizes are
// skewed); promoted sets are probed in O(1). Everything lives in
// contiguous uint32 storage, so the per-edge hot path — two index
// lookups plus one intersection — touches a handful of cache lines and
// allocates nothing once capacity exists.

// Accounted element sizes of the flat adjacency storage (see
// mem.CompAdjacency): NodeID is uint32, idxEntry packs a NodeID and an
// int32 slot in one word.
const (
	nodeIDBytes   = 4
	idxEntryBytes = 8
)

// inlineCap is how many neighbors live directly in the arena entry. Most
// nodes of a 1/m-sampled adjacency have only a couple of neighbors, so
// this keeps the common case free of any per-node heap block.
const inlineCap = 6

// promoteDeg is the degree at which a sorted-slice neighbor set is
// promoted to an open-addressing set. Below it, insertion's O(deg)
// memmove stays within a couple of cache lines and merge intersection
// beats hashing; above it, probing wins.
const promoteDeg = 32

// mix32 is a full-avalanche 32-bit mixer (lowbias32), the slot hash for
// both the node index and promoted neighbor sets.
func mix32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

// nset is one node's neighbor set, in one of three layouts:
//
//   - inline: n ≤ inlineCap neighbors, sorted in inl (small and table nil)
//   - spilled: sorted slice small (table nil)
//   - promoted: open-addressing table with n live entries
//
// n is the degree in every layout. Empty table slots hold the owning
// node's own id — a node is never its own neighbor (self-loops are
// rejected upstream), so the owner is a collision-free in-band sentinel
// for every possible NodeID value.
type nset struct {
	n     int32
	inl   [inlineCap]NodeID
	small []NodeID
	table []NodeID
}

// deg returns the number of neighbors.
func (s *nset) deg() int { return int(s.n) }

// sorted returns the sorted neighbor slice of a non-promoted set.
func (s *nset) sorted() []NodeID {
	if s.small != nil {
		return s.small
	}
	return s.inl[:s.n]
}

// reset empties the set for arena reuse, keeping the spill slice's
// capacity (promoted tables are dropped: a recycled slot usually hosts a
// fresh low-degree node). The dropped table's bytes leave the ledger; the
// retained spill capacity stays on it, because the memory stays resident.
func (s *nset) reset(ac *mem.Accountant) {
	if s.table != nil {
		ac.Add(mem.CompAdjacency, -int64(len(s.table))*nodeIDBytes)
	}
	s.small = s.small[:0]
	s.table = nil
	s.n = 0
}

// search returns the insertion position of w in the sorted slice sl.
//
//rept:hotpath
func search(sl []NodeID, w NodeID) int {
	lo, hi := 0, len(sl)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if sl[mid] < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// has reports whether w is a neighbor. owner is the set's node id; asking
// for the owner itself answers false (it doubles as the empty sentinel in
// table mode, and a node is never its own neighbor).
//
//rept:hotpath
func (s *nset) has(owner, w NodeID) bool {
	if w == owner {
		return false
	}
	if s.table == nil {
		sl := s.sorted()
		i := search(sl, w)
		return i < len(sl) && sl[i] == w
	}
	mask := uint32(len(s.table) - 1)
	for i := mix32(uint32(w)) & mask; ; i = (i + 1) & mask {
		switch s.table[i] {
		case w:
			return true
		case owner:
			return false
		}
	}
}

// add inserts w, reporting whether it was absent. Inserting the owner
// itself is rejected (self-loops never reach the set, and the owner id is
// the table-mode empty sentinel). Growth transitions (spill, promote,
// grow) live in separate cold functions; the steady-state body allocates
// nothing, and the ledger (ac) is touched only on the capacity-changing
// branches — never per event.
//
//rept:hotpath
func (s *nset) add(owner, w NodeID, ac *mem.Accountant) bool {
	if w == owner {
		return false
	}
	if s.table == nil {
		sl := s.sorted()
		i := search(sl, w)
		if i < len(sl) && sl[i] == w {
			return false
		}
		switch {
		case s.small == nil && int(s.n) < inlineCap:
			// Inline insertion sort.
			copy(s.inl[i+1:s.n+1], s.inl[i:s.n])
			s.inl[i] = w
		case s.small == nil:
			s.spill(i, w, ac)
		case len(s.small) >= promoteDeg:
			s.promote(owner, ac)
			return s.add(owner, w, ac)
		default:
			prevCap := cap(s.small)
			s.small = append(s.small, 0)
			if c := cap(s.small); c != prevCap {
				ac.Add(mem.CompAdjacency, int64(c-prevCap)*nodeIDBytes)
			}
			copy(s.small[i+1:], s.small[i:])
			s.small[i] = w
		}
		s.n++
		return true
	}
	if int(s.n) >= len(s.table)*3/4 {
		s.grow(owner, len(s.table)*2, ac)
	}
	mask := uint32(len(s.table) - 1)
	for i := mix32(uint32(w)) & mask; ; i = (i + 1) & mask {
		switch s.table[i] {
		case w:
			return false
		case owner:
			s.table[i] = w
			s.n++
			return true
		}
	}
}

// remove deletes w, reporting whether it was present. Table mode uses
// backward-shift deletion, so probe chains stay tombstone-free.
//
//rept:hotpath
func (s *nset) remove(owner, w NodeID) bool {
	if w == owner {
		return false
	}
	if s.table == nil {
		if s.small == nil {
			i := search(s.inl[:s.n], w)
			if i >= int(s.n) || s.inl[i] != w {
				return false
			}
			copy(s.inl[i:s.n-1], s.inl[i+1:s.n])
			s.n--
			return true
		}
		i := search(s.small, w)
		if i >= len(s.small) || s.small[i] != w {
			return false
		}
		copy(s.small[i:], s.small[i+1:])
		s.small = s.small[:len(s.small)-1]
		s.n--
		return true
	}
	mask := uint32(len(s.table) - 1)
	i := mix32(uint32(w)) & mask
	for ; ; i = (i + 1) & mask {
		if s.table[i] == w {
			break
		}
		if s.table[i] == owner {
			return false
		}
	}
	// Backward-shift: pull up any displaced entry whose home slot lies at
	// or before the hole, preserving every probe chain.
	j := i
	for {
		j = (j + 1) & mask
		if s.table[j] == owner {
			break
		}
		home := mix32(uint32(s.table[j])) & mask
		if (j-home)&mask >= (j-i)&mask {
			s.table[i] = s.table[j]
			i = j
		}
	}
	s.table[i] = owner
	s.n--
	return true
}

// spill moves inline storage to a freshly allocated sorted slice,
// inserting w at position i. It is the one-time growth transition out of
// add's inline layout, kept as a separate cold function so add itself
// stays allocation-free under the //rept:hotpath gate.
func (s *nset) spill(i int, w NodeID, ac *mem.Accountant) {
	s.small = make([]NodeID, 0, 2*inlineCap)
	ac.Add(mem.CompAdjacency, int64(cap(s.small))*nodeIDBytes)
	s.small = append(s.small, s.inl[:i]...)
	s.small = append(s.small, w)
	s.small = append(s.small, s.inl[i:s.n]...)
}

// promote migrates the sorted slice into a fresh open-addressing table.
func (s *nset) promote(owner NodeID, ac *mem.Accountant) {
	old := s.small
	ac.Add(mem.CompAdjacency, int64(4*promoteDeg-cap(old))*nodeIDBytes)
	s.small = nil
	s.n = 0
	s.table = make([]NodeID, 4*promoteDeg)
	for i := range s.table {
		s.table[i] = owner
	}
	for _, w := range old {
		s.add(owner, w, ac)
	}
}

// grow rehashes the table into size slots (a power of two).
func (s *nset) grow(owner NodeID, size int, ac *mem.Accountant) {
	old := s.table
	ac.Add(mem.CompAdjacency, int64(size-len(old))*nodeIDBytes)
	s.table = make([]NodeID, size)
	for i := range s.table {
		s.table[i] = owner
	}
	s.n = 0
	for _, w := range old {
		if w != owner {
			s.add(owner, w, ac)
		}
	}
}

// each calls fn for every neighbor, in unspecified order.
func (s *nset) each(owner NodeID, fn func(w NodeID)) {
	if s.table == nil {
		for _, w := range s.sorted() {
			fn(w)
		}
		return
	}
	for _, w := range s.table {
		if w != owner {
			fn(w)
		}
	}
}

// intersectSorted appends the intersection of two sorted slices to dst: a
// plain merge walk for comparable sizes, a galloping binary-search walk
// when one side is much longer.
//
//rept:hotpath
func intersectSorted(a, b []NodeID, dst []NodeID) []NodeID {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b) >= 8*len(a) {
		lo := 0
		for _, w := range a {
			i := lo + search(b[lo:], w)
			if i < len(b) && b[i] == w {
				dst = append(dst, w)
				i++
			}
			lo = i
			if lo >= len(b) {
				break
			}
		}
		return dst
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		if x == y {
			dst = append(dst, x)
			i++
			j++
		} else if x < y {
			i++
		} else {
			j++
		}
	}
	return dst
}

// intersect appends N(su) ∩ N(sv) to dst. Sorted layouts merge- or
// gallop-walk against each other; any probe-able side is probed from the
// smaller enumerable side.
//
//rept:hotpath
func intersect(su *nset, ou NodeID, sv *nset, ov NodeID, dst []NodeID) []NodeID {
	if su.table == nil && sv.table == nil {
		return intersectSorted(su.sorted(), sv.sorted(), dst)
	}
	// Enumerate the smaller set, probe the larger (at least one side is a
	// table; prefer probing it).
	if su.table != nil && (sv.table == nil || sv.n <= su.n) {
		su, ou, sv, ov = sv, ov, su, ou
	}
	if su.table == nil {
		for _, w := range su.sorted() {
			if sv.has(ov, w) {
				dst = append(dst, w)
			}
		}
		return dst
	}
	for _, w := range su.table {
		if w != ou && sv.has(ov, w) {
			dst = append(dst, w)
		}
	}
	return dst
}

// intersectCount returns |N(su) ∩ N(sv)| with the same strategy choices
// as intersect, without materializing the result.
//
//rept:hotpath
func intersectCount(su *nset, ou NodeID, sv *nset, ov NodeID) int {
	n := 0
	if su.table == nil && sv.table == nil {
		a, b := su.sorted(), sv.sorted()
		if len(a) > len(b) {
			a, b = b, a
		}
		if len(b) >= 8*len(a) {
			lo := 0
			for _, w := range a {
				i := lo + search(b[lo:], w)
				if i < len(b) && b[i] == w {
					n++
					i++
				}
				lo = i
				if lo >= len(b) {
					break
				}
			}
			return n
		}
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			x, y := a[i], b[j]
			if x == y {
				n++
				i++
				j++
			} else if x < y {
				i++
			} else {
				j++
			}
		}
		return n
	}
	if su.table != nil && (sv.table == nil || sv.n <= su.n) {
		su, ou, sv, ov = sv, ov, su, ou
	}
	if su.table == nil {
		for _, w := range su.sorted() {
			if sv.has(ov, w) {
				n++
			}
		}
		return n
	}
	for _, w := range su.table {
		if w != ou && sv.has(ov, w) {
			n++
		}
	}
	return n
}

// idxEntry is one node-index slot: the node id and its arena slot plus
// one, packed in eight bytes so a probe touches a single word. slot1 == 0
// marks an empty index slot.
type idxEntry struct {
	key   NodeID
	slot1 int32
}

// nodeIndex is an open-addressing map from NodeID to arena slot.
// Deletion backward-shifts, so no tombstones exist and lookups stay
// short under churn. The index grows at 50% load — every stream event
// probes it 2·C times, so short probe chains buy more than the extra
// 8 bytes per slot cost.
type nodeIndex struct {
	ents []idxEntry
	n    int
}

const indexMinSize = 16

// get returns the arena slot of u, or -1.
func (ix *nodeIndex) get(u NodeID) int32 {
	if ix.n == 0 {
		return -1
	}
	mask := uint32(len(ix.ents) - 1)
	for i := mix32(uint32(u)) & mask; ; i = (i + 1) & mask {
		e := ix.ents[i]
		if e.slot1 == 0 {
			return -1
		}
		if e.key == u {
			return e.slot1 - 1
		}
	}
}

// put inserts u → slot. u must be absent.
func (ix *nodeIndex) put(u NodeID, slot int32, ac *mem.Accountant) {
	if len(ix.ents) == 0 {
		ix.ents = make([]idxEntry, indexMinSize)
		ac.Add(mem.CompAdjacency, int64(indexMinSize)*idxEntryBytes)
	} else if ix.n >= len(ix.ents)/2 {
		ix.grow(len(ix.ents)*2, ac)
	}
	mask := uint32(len(ix.ents) - 1)
	i := mix32(uint32(u)) & mask
	for ix.ents[i].slot1 != 0 {
		i = (i + 1) & mask
	}
	ix.ents[i] = idxEntry{key: u, slot1: slot + 1}
	ix.n++
}

// del removes u (which must be present) by backward-shift.
func (ix *nodeIndex) del(u NodeID) {
	mask := uint32(len(ix.ents) - 1)
	i := mix32(uint32(u)) & mask
	for ix.ents[i].key != u || ix.ents[i].slot1 == 0 {
		i = (i + 1) & mask
	}
	j := i
	for {
		j = (j + 1) & mask
		if ix.ents[j].slot1 == 0 {
			break
		}
		home := mix32(uint32(ix.ents[j].key)) & mask
		if (j-home)&mask >= (j-i)&mask {
			ix.ents[i] = ix.ents[j]
			i = j
		}
	}
	ix.ents[i] = idxEntry{}
	ix.n--
}

// grow rehashes into size slots (a power of two ≥ current).
func (ix *nodeIndex) grow(size int, ac *mem.Accountant) {
	old := ix.ents
	ac.Add(mem.CompAdjacency, int64(size-len(old))*idxEntryBytes)
	ix.ents = make([]idxEntry, size)
	ix.n = 0
	for _, e := range old {
		if e.slot1 != 0 {
			ix.put(e.key, e.slot1-1, nil)
		}
	}
}

// each calls fn for every (node, slot) pair, in unspecified order.
func (ix *nodeIndex) each(fn func(u NodeID, slot int32)) {
	for _, e := range ix.ents {
		if e.slot1 != 0 {
			fn(e.key, e.slot1-1)
		}
	}
}
