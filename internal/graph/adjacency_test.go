package graph

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestAdjacencyBasics(t *testing.T) {
	a := NewAdjacency()
	if !a.Add(1, 2) {
		t.Fatal("Add(1,2) = false, want true")
	}
	if a.Add(2, 1) {
		t.Error("Add(2,1) after Add(1,2) = true, want false (duplicate)")
	}
	if a.Add(3, 3) {
		t.Error("Add(3,3) = true, want false (self-loop)")
	}
	if !a.Has(2, 1) {
		t.Error("Has(2,1) = false, want true")
	}
	if a.Edges() != 1 {
		t.Errorf("Edges() = %d, want 1", a.Edges())
	}
	if a.Nodes() != 2 {
		t.Errorf("Nodes() = %d, want 2", a.Nodes())
	}
	if a.Degree(1) != 1 || a.Degree(2) != 1 || a.Degree(99) != 0 {
		t.Error("unexpected degrees")
	}
}

func TestAdjacencyRemove(t *testing.T) {
	a := NewAdjacency()
	a.Add(1, 2)
	a.Add(1, 3)
	if !a.Remove(2, 1) {
		t.Fatal("Remove(2,1) = false, want true")
	}
	if a.Remove(1, 2) {
		t.Error("second Remove(1,2) = true, want false")
	}
	if a.Has(1, 2) {
		t.Error("edge still present after Remove")
	}
	if a.Edges() != 1 {
		t.Errorf("Edges() = %d, want 1", a.Edges())
	}
	if a.Nodes() != 2 { // node 2 dropped, nodes 1 and 3 remain
		t.Errorf("Nodes() = %d, want 2", a.Nodes())
	}
}

func TestAdjacencyCommonNeighbors(t *testing.T) {
	a := NewAdjacency()
	// Wheel: 0 connected to 1..4, plus rim edges 1-2, 2-3.
	for _, e := range []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {2, 3}} {
		a.Add(e.U, e.V)
	}
	got := a.CommonNeighbors(1, 3, nil)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []NodeID{0, 2}
	if len(got) != len(want) {
		t.Fatalf("CommonNeighbors(1,3) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CommonNeighbors(1,3) = %v, want %v", got, want)
		}
	}
	if n := a.CommonCount(1, 3); n != 2 {
		t.Errorf("CommonCount(1,3) = %d, want 2", n)
	}
	if n := a.CommonCount(1, 4); n != 1 { // only the hub
		t.Errorf("CommonCount(1,4) = %d, want 1", n)
	}
}

// TestAdjacencyMatchesNaive cross-checks Add/Remove/Has/CommonCount against
// a naive edge-set model under a random operation sequence.
func TestAdjacencyMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	a := NewAdjacency()
	naive := make(map[uint64]struct{})
	const nodes = 12
	for i := 0; i < 4000; i++ {
		u := NodeID(rng.IntN(nodes))
		v := NodeID(rng.IntN(nodes))
		switch rng.IntN(3) {
		case 0, 1: // add twice as often as remove
			got := a.Add(u, v)
			want := false
			if u != v {
				if _, ok := naive[Key(u, v)]; !ok {
					naive[Key(u, v)] = struct{}{}
					want = true
				}
			}
			if got != want {
				t.Fatalf("op %d: Add(%d,%d) = %v, want %v", i, u, v, got, want)
			}
		case 2:
			got := a.Remove(u, v)
			_, want := naive[Key(u, v)]
			delete(naive, Key(u, v))
			if got != want {
				t.Fatalf("op %d: Remove(%d,%d) = %v, want %v", i, u, v, got, want)
			}
		}
		if a.Edges() != len(naive) {
			t.Fatalf("op %d: Edges() = %d, want %d", i, a.Edges(), len(naive))
		}
	}
	// Common-neighbor counts against naive computation.
	for u := NodeID(0); u < nodes; u++ {
		for v := u + 1; v < nodes; v++ {
			want := 0
			for w := NodeID(0); w < nodes; w++ {
				if w == u || w == v {
					continue
				}
				_, a1 := naive[Key(u, w)]
				_, a2 := naive[Key(v, w)]
				if a1 && a2 {
					want++
				}
			}
			if got := a.CommonCount(u, v); got != want {
				t.Fatalf("CommonCount(%d,%d) = %d, want %d", u, v, got, want)
			}
		}
	}
}

// TestAdjacencyMatchesNaiveHighDegree drives the same cross-check across
// the inline → spilled → promoted layout transitions: a few hub nodes
// accumulate hundreds of neighbors (open-addressing mode, including
// backward-shift deletions and table growth) while most stay tiny.
func TestAdjacencyMatchesNaiveHighDegree(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 37))
	a := NewAdjacency()
	naive := make(map[uint64]struct{})
	const hubs = 3
	const nodes = 600
	pick := func() NodeID {
		// Half the endpoints land on a hub, so hub degrees sail past
		// promoteDeg and churn inside table mode.
		if rng.IntN(2) == 0 {
			return NodeID(rng.IntN(hubs))
		}
		return NodeID(rng.IntN(nodes))
	}
	for i := 0; i < 60000; i++ {
		u, v := pick(), pick()
		if rng.IntN(5) < 3 {
			got := a.Add(u, v)
			want := false
			if u != v {
				if _, ok := naive[Key(u, v)]; !ok {
					naive[Key(u, v)] = struct{}{}
					want = true
				}
			}
			if got != want {
				t.Fatalf("op %d: Add(%d,%d) = %v, want %v", i, u, v, got, want)
			}
		} else {
			got := a.Remove(u, v)
			_, want := naive[Key(u, v)]
			delete(naive, Key(u, v))
			if got != want {
				t.Fatalf("op %d: Remove(%d,%d) = %v, want %v", i, u, v, got, want)
			}
		}
		if a.Edges() != len(naive) {
			t.Fatalf("op %d: Edges() = %d, want %d", i, a.Edges(), len(naive))
		}
	}
	// Degrees, membership, and node count against the naive model.
	deg := make(map[NodeID]int)
	for k := range naive {
		e := KeyEdge(k)
		deg[e.U]++
		deg[e.V]++
	}
	if a.Nodes() != len(deg) {
		t.Fatalf("Nodes() = %d, want %d", a.Nodes(), len(deg))
	}
	for v, d := range deg {
		if a.Degree(v) != d {
			t.Fatalf("Degree(%d) = %d, want %d", v, a.Degree(v), d)
		}
	}
	// Spot-check intersections along every layout pairing (hub-hub is
	// table-table, hub-leaf is table-sorted, leaf-leaf sorted-sorted).
	var dst []NodeID
	for u := NodeID(0); u < 40; u++ {
		for v := u + 1; v < 40; v++ {
			want := 0
			for w := range deg {
				if w == u || w == v {
					continue
				}
				_, a1 := naive[Key(u, w)]
				_, a2 := naive[Key(v, w)]
				if a1 && a2 {
					want++
				}
			}
			if got := a.CommonCount(u, v); got != want {
				t.Fatalf("CommonCount(%d,%d) = %d, want %d", u, v, got, want)
			}
			dst = a.CommonNeighbors(u, v, dst[:0])
			if len(dst) != want {
				t.Fatalf("len(CommonNeighbors(%d,%d)) = %d, want %d", u, v, len(dst), want)
			}
			seen := make(map[NodeID]bool, len(dst))
			for _, w := range dst {
				if seen[w] || !a.Has(u, w) || !a.Has(v, w) {
					t.Fatalf("CommonNeighbors(%d,%d) returned bad/dup node %d", u, v, w)
				}
				seen[w] = true
			}
		}
	}
	// AppendEdges exports exactly the live set, canonically oriented.
	edges := a.AppendEdges(nil)
	if len(edges) != len(naive) {
		t.Fatalf("AppendEdges returned %d edges, want %d", len(edges), len(naive))
	}
	for _, e := range edges {
		if e.U >= e.V {
			t.Fatalf("AppendEdges returned non-canonical edge %v", e)
		}
		if _, ok := naive[e.Key()]; !ok {
			t.Fatalf("AppendEdges returned dead edge %v", e)
		}
	}
}

// TestAdjacencyExtremeNodeIDs exercises the in-band sentinels: node 0 and
// node ^uint32(0) must work as both set owners and neighbors, including
// inside promoted open-addressing sets (where the owner id marks empty
// slots).
func TestAdjacencyExtremeNodeIDs(t *testing.T) {
	a := NewAdjacency()
	lo, hi := NodeID(0), ^NodeID(0)
	if !a.Add(lo, hi) {
		t.Fatal("Add(0, max) = false")
	}
	// Push both extremes past promoteDeg so their sets promote.
	for w := NodeID(1); w <= promoteDeg+4; w++ {
		if !a.Add(lo, w) || !a.Add(hi, w) {
			t.Fatalf("Add failed at w=%d", w)
		}
	}
	if !a.Has(lo, hi) || !a.Has(hi, lo) {
		t.Fatal("extreme edge lost after promotion")
	}
	if got := a.CommonCount(lo, hi); got != promoteDeg+4 {
		t.Fatalf("CommonCount(0, max) = %d, want %d", got, promoteDeg+4)
	}
	if !a.Remove(lo, hi) || a.Has(lo, hi) {
		t.Fatal("Remove(0, max) failed")
	}
	if a.Degree(lo) != promoteDeg+4 || a.Degree(hi) != promoteDeg+4 {
		t.Fatalf("degrees = (%d, %d), want %d", a.Degree(lo), a.Degree(hi), promoteDeg+4)
	}
}

func TestEdgeKeyRoundTrip(t *testing.T) {
	f := func(u, v uint32) bool {
		e := Edge{NodeID(u), NodeID(v)}
		k := e.Key()
		back := KeyEdge(k)
		canon := e.Canonical()
		return back == canon && k == Edge{NodeID(v), NodeID(u)}.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyInjective(t *testing.T) {
	f := func(u1, v1, u2, v2 uint32) bool {
		k1 := Key(NodeID(u1), NodeID(v1))
		k2 := Key(NodeID(u2), NodeID(v2))
		c1 := Edge{NodeID(u1), NodeID(v1)}.Canonical()
		c2 := Edge{NodeID(u2), NodeID(v2)}.Canonical()
		return (k1 == k2) == (c1 == c2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
