package graph

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestAdjacencyBasics(t *testing.T) {
	a := NewAdjacency()
	if !a.Add(1, 2) {
		t.Fatal("Add(1,2) = false, want true")
	}
	if a.Add(2, 1) {
		t.Error("Add(2,1) after Add(1,2) = true, want false (duplicate)")
	}
	if a.Add(3, 3) {
		t.Error("Add(3,3) = true, want false (self-loop)")
	}
	if !a.Has(2, 1) {
		t.Error("Has(2,1) = false, want true")
	}
	if a.Edges() != 1 {
		t.Errorf("Edges() = %d, want 1", a.Edges())
	}
	if a.Nodes() != 2 {
		t.Errorf("Nodes() = %d, want 2", a.Nodes())
	}
	if a.Degree(1) != 1 || a.Degree(2) != 1 || a.Degree(99) != 0 {
		t.Error("unexpected degrees")
	}
}

func TestAdjacencyRemove(t *testing.T) {
	a := NewAdjacency()
	a.Add(1, 2)
	a.Add(1, 3)
	if !a.Remove(2, 1) {
		t.Fatal("Remove(2,1) = false, want true")
	}
	if a.Remove(1, 2) {
		t.Error("second Remove(1,2) = true, want false")
	}
	if a.Has(1, 2) {
		t.Error("edge still present after Remove")
	}
	if a.Edges() != 1 {
		t.Errorf("Edges() = %d, want 1", a.Edges())
	}
	if a.Nodes() != 2 { // node 2 dropped, nodes 1 and 3 remain
		t.Errorf("Nodes() = %d, want 2", a.Nodes())
	}
}

func TestAdjacencyCommonNeighbors(t *testing.T) {
	a := NewAdjacency()
	// Wheel: 0 connected to 1..4, plus rim edges 1-2, 2-3.
	for _, e := range []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {2, 3}} {
		a.Add(e.U, e.V)
	}
	got := a.CommonNeighbors(1, 3, nil)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []NodeID{0, 2}
	if len(got) != len(want) {
		t.Fatalf("CommonNeighbors(1,3) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CommonNeighbors(1,3) = %v, want %v", got, want)
		}
	}
	if n := a.CommonCount(1, 3); n != 2 {
		t.Errorf("CommonCount(1,3) = %d, want 2", n)
	}
	if n := a.CommonCount(1, 4); n != 1 { // only the hub
		t.Errorf("CommonCount(1,4) = %d, want 1", n)
	}
}

// TestAdjacencyMatchesNaive cross-checks Add/Remove/Has/CommonCount against
// a naive edge-set model under a random operation sequence.
func TestAdjacencyMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	a := NewAdjacency()
	naive := make(map[uint64]struct{})
	const nodes = 12
	for i := 0; i < 4000; i++ {
		u := NodeID(rng.IntN(nodes))
		v := NodeID(rng.IntN(nodes))
		switch rng.IntN(3) {
		case 0, 1: // add twice as often as remove
			got := a.Add(u, v)
			want := false
			if u != v {
				if _, ok := naive[Key(u, v)]; !ok {
					naive[Key(u, v)] = struct{}{}
					want = true
				}
			}
			if got != want {
				t.Fatalf("op %d: Add(%d,%d) = %v, want %v", i, u, v, got, want)
			}
		case 2:
			got := a.Remove(u, v)
			_, want := naive[Key(u, v)]
			delete(naive, Key(u, v))
			if got != want {
				t.Fatalf("op %d: Remove(%d,%d) = %v, want %v", i, u, v, got, want)
			}
		}
		if a.Edges() != len(naive) {
			t.Fatalf("op %d: Edges() = %d, want %d", i, a.Edges(), len(naive))
		}
	}
	// Common-neighbor counts against naive computation.
	for u := NodeID(0); u < nodes; u++ {
		for v := u + 1; v < nodes; v++ {
			want := 0
			for w := NodeID(0); w < nodes; w++ {
				if w == u || w == v {
					continue
				}
				_, a1 := naive[Key(u, w)]
				_, a2 := naive[Key(v, w)]
				if a1 && a2 {
					want++
				}
			}
			if got := a.CommonCount(u, v); got != want {
				t.Fatalf("CommonCount(%d,%d) = %d, want %d", u, v, got, want)
			}
		}
	}
}

func TestEdgeKeyRoundTrip(t *testing.T) {
	f := func(u, v uint32) bool {
		e := Edge{NodeID(u), NodeID(v)}
		k := e.Key()
		back := KeyEdge(k)
		canon := e.Canonical()
		return back == canon && k == Edge{NodeID(v), NodeID(u)}.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyInjective(t *testing.T) {
	f := func(u1, v1, u2, v2 uint32) bool {
		k1 := Key(NodeID(u1), NodeID(v1))
		k2 := Key(NodeID(u2), NodeID(v2))
		c1 := Edge{NodeID(u1), NodeID(v1)}.Canonical()
		c2 := Edge{NodeID(u2), NodeID(v2)}.Canonical()
		return (k1 == k2) == (c1 == c2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
