package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadOptions controls edge-list parsing.
type ReadOptions struct {
	Dedup     bool // drop edges already seen (keeps first arrival)
	DropLoops bool // drop self-loops
}

// ReadEdgeList parses a SNAP-style whitespace-separated edge list: one
// "u v" pair per line, with '#' and '%' comment lines ignored. Node ids
// must fit in uint32.
func ReadEdgeList(r io.Reader, opt ReadOptions) ([]Edge, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var (
		edges []Edge
		seen  map[uint64]struct{}
		line  int
	)
	if opt.Dedup {
		seen = make(map[uint64]struct{})
	}
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" || txt[0] == '#' || txt[0] == '%' {
			continue
		}
		fields := strings.Fields(txt)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected two node ids, got %q", line, txt)
		}
		u, err := parseNode(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
		v, err := parseNode(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
		e := Edge{u, v}
		if opt.DropLoops && e.IsSelfLoop() {
			continue
		}
		if seen != nil {
			k := e.Key()
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return edges, nil
}

func parseNode(s string) (NodeID, error) {
	n, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad node id %q: %w", s, err)
	}
	return NodeID(n), nil
}

// WriteEdgeList writes the stream as a text edge list, one edge per line,
// preserving stream order.
func WriteEdgeList(w io.Writer, edges []Edge) error {
	bw := bufio.NewWriter(w)
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return fmt.Errorf("graph: writing edge list: %w", err)
		}
	}
	return bw.Flush()
}

// ReadEdgeListFile reads an edge list from path.
func ReadEdgeListFile(path string, opt ReadOptions) ([]Edge, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	return ReadEdgeList(f, opt)
}

// WriteEdgeListFile writes the stream to path, creating or truncating it.
func WriteEdgeListFile(path string, edges []Edge) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	if err := WriteEdgeList(f, edges); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
