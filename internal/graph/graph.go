// Package graph provides the streaming-graph substrate used by the REPT
// reproduction: node and edge types, dynamic adjacency structures with fast
// common-neighbor queries, exact triangle/η counting in stream order, and
// edge-list I/O.
//
// Throughout the package a "stream" is an ordered slice of undirected edges;
// order matters because the paper's η statistic (pairs of triangles sharing
// a non-last edge) depends on arrival order.
package graph

// NodeID identifies a node. Generators emit dense ids in [0, n).
type NodeID uint32

// Edge is one undirected stream edge. The (U, V) orientation carries no
// meaning; Key and Canonical normalize it.
type Edge struct {
	U, V NodeID
}

// Canonical returns the edge with endpoints ordered so that U <= V.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// Key returns the canonical 64-bit key of the edge, suitable for hashing
// and map indexing. Both orientations of an edge map to the same key.
func (e Edge) Key() uint64 {
	return Key(e.U, e.V)
}

// Key returns the canonical 64-bit key for the undirected edge {u, v}.
func Key(u, v NodeID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}

// KeyEdge is the inverse of Edge.Key.
func KeyEdge(k uint64) Edge {
	return Edge{NodeID(k >> 32), NodeID(k & 0xffffffff)}
}

// IsSelfLoop reports whether both endpoints coincide. Self-loops cannot be
// part of a triangle and are skipped by every consumer in this module.
func (e Edge) IsSelfLoop() bool { return e.U == e.V }

// Update is one event of a fully-dynamic (signed) edge stream: the
// insertion of {U, V} or, when Del is set, its deletion. A slice of
// Updates generalizes a slice of Edges; insert-only streams are the
// Del == false special case. Well-formed streams delete only live edges
// and insert only non-live ones; consumers stay deterministic (and
// finite) on malformed streams but their estimates are then meaningless.
type Update struct {
	U, V NodeID
	Del  bool
}

// Edge returns the update's endpoints as an Edge.
func (up Update) Edge() Edge { return Edge{U: up.U, V: up.V} }

// Inserts wraps an insert-only edge stream as an update stream.
func Inserts(edges []Edge) []Update {
	out := make([]Update, len(edges))
	for i, e := range edges {
		out[i] = Update{U: e.U, V: e.V}
	}
	return out
}
