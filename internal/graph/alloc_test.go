package graph

import "testing"

// TestAdjacencyAddSteadyStateZeroAlloc gates the flat-adjacency design's
// core claim: once capacity exists, edge churn — including removals that
// release a node and re-insertions that recycle its arena slot — costs
// zero allocations.
func TestAdjacencyAddSteadyStateZeroAlloc(t *testing.T) {
	a := NewAdjacency()
	// A hub past the promotion threshold plus a fringe of small nodes.
	for w := NodeID(1); w <= promoteDeg+8; w++ {
		a.Add(0, w)
		a.Add(w, w+1)
	}
	allocs := testing.AllocsPerRun(500, func() {
		// Churn a hub edge (promoted set) and a leaf edge (sorted set).
		a.Remove(0, 5)
		a.Add(0, 5)
		a.Remove(7, 8)
		a.Add(7, 8)
		// Degree-zero release and slot recycle: 200-201 exists only here.
		a.Add(200, 201)
		a.Remove(200, 201)
		// Duplicate insert of a live edge is a no-op.
		a.Add(0, 6)
	})
	if allocs != 0 {
		t.Errorf("steady-state Add/Remove churn allocates %.1f per round, want 0", allocs)
	}
}

// TestCommonNeighborsZeroAlloc: intersections with a reused destination
// slice must not allocate, across all three layout pairings.
func TestCommonNeighborsZeroAlloc(t *testing.T) {
	a := NewAdjacency()
	// Hubs 0 and 1 share promoted sets; 2 and 3 stay small.
	for w := NodeID(4); w < 4+2*promoteDeg; w++ {
		a.Add(0, w)
		a.Add(1, w)
	}
	a.Add(2, 4)
	a.Add(2, 5)
	a.Add(3, 4)
	a.Add(3, 6)
	dst := make([]NodeID, 0, 4*promoteDeg)
	allocs := testing.AllocsPerRun(500, func() {
		dst = a.CommonNeighbors(0, 1, dst[:0]) // table × table
		dst = a.CommonNeighbors(0, 2, dst[:0]) // table × sorted
		dst = a.CommonNeighbors(2, 3, dst[:0]) // sorted × sorted
		dst = a.CommonNeighbors(9, 2, dst[:0]) // absent node
	})
	if allocs != 0 {
		t.Errorf("CommonNeighbors with reused dst allocates %.1f per round, want 0", allocs)
	}
}
