package graph

// Adjacency is a dynamic undirected adjacency structure supporting edge
// insertion, removal (needed by reservoir-based samplers and fully-dynamic
// streams) and common-neighbor enumeration in O(min(deg u, deg v))
// expected time.
//
// Storage is flat and cache-friendly: an open-addressing node index maps
// each live node to a slot in an arena of neighbor sets, each a sorted
// NodeID slice promoted to an open-addressing set past promoteDeg
// neighbors (see nbrset.go). Released slots are recycled through a free
// list, so steady-state churn (delete + re-insert over a stable node
// universe) allocates nothing.
//
// The zero value is not usable; call NewAdjacency.
type Adjacency struct {
	idx   nodeIndex
	sets  []nset
	freed []int32
	edges int
}

// NewAdjacency returns an empty adjacency structure.
func NewAdjacency() *Adjacency {
	return &Adjacency{}
}

// slot returns the arena slot for a new node, recycling freed slots.
func (a *Adjacency) slot(u NodeID) int32 {
	var si int32
	if n := len(a.freed); n > 0 {
		si = a.freed[n-1]
		a.freed = a.freed[:n-1]
	} else {
		si = int32(len(a.sets))
		a.sets = append(a.sets, nset{})
	}
	a.idx.put(u, si)
	return si
}

// release drops a node whose last neighbor was removed.
func (a *Adjacency) release(u NodeID, si int32) {
	a.sets[si].reset()
	a.idx.del(u)
	a.freed = append(a.freed, si)
}

// Add inserts the undirected edge {u, v}. It returns false (and does
// nothing) for self-loops and edges already present. Arena growth lives
// in slot; the steady-state body allocates nothing.
//
//rept:hotpath
func (a *Adjacency) Add(u, v NodeID) bool {
	added, _, _ := a.AddReport(u, v)
	return added
}

// AddReport is Add that additionally reports which endpoints entered the
// structure with this edge (had no incident edge before). Presence
// transitions are what the engine's processor-mask table is maintained
// from, and detecting them here is free — slot assignment already knows.
//
//rept:hotpath
func (a *Adjacency) AddReport(u, v NodeID) (added, newU, newV bool) {
	if u == v {
		return false, false, false
	}
	si := a.idx.get(u)
	if si < 0 {
		si = a.slot(u)
		a.sets[si].add(u, v)
		newU = true
	} else if !a.sets[si].add(u, v) {
		return false, false, false
	}
	sj := a.idx.get(v)
	if sj < 0 {
		sj = a.slot(v)
		newV = true
	}
	a.sets[sj].add(v, u)
	a.edges++
	return true, newU, newV
}

// Remove deletes the undirected edge {u, v}, reporting whether it existed.
// Nodes left with no incident edges are dropped from the structure.
//
//rept:hotpath
func (a *Adjacency) Remove(u, v NodeID) bool {
	removed, _, _ := a.RemoveReport(u, v)
	return removed
}

// RemoveReport is Remove that additionally reports which endpoints left
// the structure with this edge (lost their last incident edge) — the
// counterpart of AddReport for presence-mask maintenance.
//
//rept:hotpath
func (a *Adjacency) RemoveReport(u, v NodeID) (removed, goneU, goneV bool) {
	if u == v {
		return false, false, false
	}
	si := a.idx.get(u)
	if si < 0 || !a.sets[si].remove(u, v) {
		return false, false, false
	}
	sj := a.idx.get(v)
	a.sets[sj].remove(v, u)
	a.edges--
	if a.sets[si].deg() == 0 {
		a.release(u, si)
		goneU = true
	}
	if a.sets[sj].deg() == 0 {
		a.release(v, sj)
		goneV = true
	}
	return true, goneU, goneV
}

// Has reports whether the undirected edge {u, v} is present.
//
//rept:hotpath
func (a *Adjacency) Has(u, v NodeID) bool {
	si := a.idx.get(u)
	return si >= 0 && a.sets[si].has(u, v)
}

// Degree returns the number of neighbors of u.
func (a *Adjacency) Degree(u NodeID) int {
	si := a.idx.get(u)
	if si < 0 {
		return 0
	}
	return a.sets[si].deg()
}

// Edges returns the number of edges currently stored.
func (a *Adjacency) Edges() int { return a.edges }

// Nodes returns the number of nodes with at least one incident edge.
func (a *Adjacency) Nodes() int { return a.idx.n }

// Neighbors calls fn for every neighbor of u, in unspecified order.
func (a *Adjacency) Neighbors(u NodeID, fn func(w NodeID)) {
	si := a.idx.get(u)
	if si >= 0 {
		a.sets[si].each(u, fn)
	}
}

// EachNode calls fn for every node with at least one incident edge, in
// unspecified order. It is the mask-rebuild walk used after a snapshot
// restore, where edges are loaded without going through AddReport.
func (a *Adjacency) EachNode(fn func(u NodeID)) {
	a.idx.each(func(u NodeID, _ int32) { fn(u) })
}

// AppendEdges appends every stored edge to dst exactly once, in canonical
// orientation (U < V) and unspecified order, and returns the extended
// slice. It is the export path used by the snapshot subsystem.
func (a *Adjacency) AppendEdges(dst []Edge) []Edge {
	a.idx.each(func(u NodeID, si int32) {
		a.sets[si].each(u, func(v NodeID) {
			if u < v {
				dst = append(dst, Edge{U: u, V: v})
			}
		})
	})
	return dst
}

// CommonNeighbors appends every node adjacent to both u and v to dst and
// returns the extended slice: a merge walk when both neighborhoods are
// small sorted slices, otherwise enumerate-the-smaller probe-the-larger,
// so the cost is O(min(deg u, deg v)) expected. Passing a reusable dst[:0]
// avoids per-call allocation.
//
//rept:hotpath
func (a *Adjacency) CommonNeighbors(u, v NodeID, dst []NodeID) []NodeID {
	si := a.idx.get(u)
	if si < 0 {
		return dst
	}
	sj := a.idx.get(v)
	if sj < 0 {
		return dst
	}
	return intersect(&a.sets[si], u, &a.sets[sj], v, dst)
}

// CommonCount returns |N(u) ∩ N(v)| without materializing the
// intersection — the counting-only hot path of proc.processEdge.
//
//rept:hotpath
func (a *Adjacency) CommonCount(u, v NodeID) int {
	si := a.idx.get(u)
	if si < 0 {
		return 0
	}
	sj := a.idx.get(v)
	if sj < 0 {
		return 0
	}
	return intersectCount(&a.sets[si], u, &a.sets[sj], v)
}
