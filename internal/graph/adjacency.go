package graph

// Adjacency is a dynamic undirected adjacency structure supporting edge
// insertion, removal (needed by reservoir-based samplers) and
// common-neighbor enumeration in O(min(deg u, deg v)) expected time.
//
// The zero value is not usable; call NewAdjacency.
type Adjacency struct {
	nbr   map[NodeID]map[NodeID]struct{}
	edges int
}

// NewAdjacency returns an empty adjacency structure.
func NewAdjacency() *Adjacency {
	return &Adjacency{nbr: make(map[NodeID]map[NodeID]struct{})}
}

// Add inserts the undirected edge {u, v}. It returns false (and does
// nothing) for self-loops and edges already present.
func (a *Adjacency) Add(u, v NodeID) bool {
	if u == v {
		return false
	}
	if _, dup := a.nbr[u][v]; dup {
		return false
	}
	a.link(u, v)
	a.link(v, u)
	a.edges++
	return true
}

func (a *Adjacency) link(u, v NodeID) {
	s := a.nbr[u]
	if s == nil {
		s = make(map[NodeID]struct{})
		a.nbr[u] = s
	}
	s[v] = struct{}{}
}

// Remove deletes the undirected edge {u, v}, reporting whether it existed.
// Nodes left with no incident edges are dropped from the structure.
func (a *Adjacency) Remove(u, v NodeID) bool {
	if _, ok := a.nbr[u][v]; !ok {
		return false
	}
	a.unlink(u, v)
	a.unlink(v, u)
	a.edges--
	return true
}

func (a *Adjacency) unlink(u, v NodeID) {
	s := a.nbr[u]
	delete(s, v)
	if len(s) == 0 {
		delete(a.nbr, u)
	}
}

// Has reports whether the undirected edge {u, v} is present.
func (a *Adjacency) Has(u, v NodeID) bool {
	_, ok := a.nbr[u][v]
	return ok
}

// Degree returns the number of neighbors of u.
func (a *Adjacency) Degree(u NodeID) int { return len(a.nbr[u]) }

// Edges returns the number of edges currently stored.
func (a *Adjacency) Edges() int { return a.edges }

// Nodes returns the number of nodes with at least one incident edge.
func (a *Adjacency) Nodes() int { return len(a.nbr) }

// Neighbors calls fn for every neighbor of u, in unspecified order.
func (a *Adjacency) Neighbors(u NodeID, fn func(w NodeID)) {
	for w := range a.nbr[u] {
		fn(w)
	}
}

// AppendEdges appends every stored edge to dst exactly once, in canonical
// orientation (U < V) and unspecified order, and returns the extended
// slice. It is the export path used by the snapshot subsystem.
func (a *Adjacency) AppendEdges(dst []Edge) []Edge {
	for u, nbrs := range a.nbr {
		for v := range nbrs {
			if u < v {
				dst = append(dst, Edge{U: u, V: v})
			}
		}
	}
	return dst
}

// CommonNeighbors appends every node adjacent to both u and v to dst and
// returns the extended slice. It iterates the smaller neighborhood and
// probes the larger, so the cost is O(min(deg u, deg v)) expected.
// Passing a reusable dst[:0] avoids per-call allocation.
func (a *Adjacency) CommonNeighbors(u, v NodeID, dst []NodeID) []NodeID {
	nu, nv := a.nbr[u], a.nbr[v]
	if len(nu) > len(nv) {
		nu, nv = nv, nu
	}
	for w := range nu {
		if _, ok := nv[w]; ok {
			dst = append(dst, w)
		}
	}
	return dst
}

// CommonCount returns |N(u) ∩ N(v)|.
func (a *Adjacency) CommonCount(u, v NodeID) int {
	nu, nv := a.nbr[u], a.nbr[v]
	if len(nu) > len(nv) {
		nu, nv = nv, nu
	}
	n := 0
	for w := range nu {
		if _, ok := nv[w]; ok {
			n++
		}
	}
	return n
}
