package graph

import (
	"unsafe"

	"rept/internal/mem"
)

// nsetBytes is the arena cost of one neighbor-set header (the inline
// neighbors and the slice headers; spill and table backing arrays are
// accounted separately at their own growth transitions).
const nsetBytes = int64(unsafe.Sizeof(nset{}))

// Adjacency is a dynamic undirected adjacency structure supporting edge
// insertion, removal (needed by reservoir-based samplers and fully-dynamic
// streams) and common-neighbor enumeration in O(min(deg u, deg v))
// expected time.
//
// Storage is flat and cache-friendly: an open-addressing node index maps
// each live node to a slot in an arena of neighbor sets, each a sorted
// NodeID slice promoted to an open-addressing set past promoteDeg
// neighbors (see nbrset.go). Released slots are recycled through a free
// list, so steady-state churn (delete + re-insert over a stable node
// universe) allocates nothing.
//
// The zero value is not usable; call NewAdjacency.
type Adjacency struct {
	idx   nodeIndex
	sets  []nset
	freed []int32
	edges int
	// ac is the optional byte ledger (nil: unaccounted). It is consulted
	// only at capacity transitions — arena growth, index rehash, spill/
	// promote/grow — never per event.
	ac *mem.Accountant
}

// NewAdjacency returns an empty adjacency structure.
func NewAdjacency() *Adjacency {
	return &Adjacency{}
}

// SetAccountant attaches the byte ledger. Call it right after
// construction, before any edges are added, or the ledger misses the
// capacity that already exists.
func (a *Adjacency) SetAccountant(ac *mem.Accountant) { a.ac = ac }

// slot returns the arena slot for a new node, recycling freed slots.
func (a *Adjacency) slot(u NodeID) int32 {
	var si int32
	if n := len(a.freed); n > 0 {
		si = a.freed[n-1]
		a.freed = a.freed[:n-1]
	} else {
		si = int32(len(a.sets))
		prevCap := cap(a.sets)
		a.sets = append(a.sets, nset{})
		if c := cap(a.sets); c != prevCap {
			a.ac.Add(mem.CompAdjacency, int64(c-prevCap)*nsetBytes)
		}
	}
	a.idx.put(u, si, a.ac)
	return si
}

// release drops a node whose last neighbor was removed.
func (a *Adjacency) release(u NodeID, si int32) {
	a.sets[si].reset(a.ac)
	a.idx.del(u)
	prevCap := cap(a.freed)
	a.freed = append(a.freed, si)
	if c := cap(a.freed); c != prevCap {
		a.ac.Add(mem.CompAdjacency, int64(c-prevCap)*4)
	}
}

// Add inserts the undirected edge {u, v}. It returns false (and does
// nothing) for self-loops and edges already present. Arena growth lives
// in slot; the steady-state body allocates nothing.
//
//rept:hotpath
func (a *Adjacency) Add(u, v NodeID) bool {
	added, _, _ := a.AddReport(u, v)
	return added
}

// AddReport is Add that additionally reports which endpoints entered the
// structure with this edge (had no incident edge before). Presence
// transitions are what the engine's processor-mask table is maintained
// from, and detecting them here is free — slot assignment already knows.
//
//rept:hotpath
func (a *Adjacency) AddReport(u, v NodeID) (added, newU, newV bool) {
	if u == v {
		return false, false, false
	}
	si := a.idx.get(u)
	if si < 0 {
		si = a.slot(u)
		a.sets[si].add(u, v, a.ac)
		newU = true
	} else if !a.sets[si].add(u, v, a.ac) {
		return false, false, false
	}
	sj := a.idx.get(v)
	if sj < 0 {
		sj = a.slot(v)
		newV = true
	}
	a.sets[sj].add(v, u, a.ac)
	a.edges++
	return true, newU, newV
}

// Remove deletes the undirected edge {u, v}, reporting whether it existed.
// Nodes left with no incident edges are dropped from the structure.
//
//rept:hotpath
func (a *Adjacency) Remove(u, v NodeID) bool {
	removed, _, _ := a.RemoveReport(u, v)
	return removed
}

// RemoveReport is Remove that additionally reports which endpoints left
// the structure with this edge (lost their last incident edge) — the
// counterpart of AddReport for presence-mask maintenance.
//
//rept:hotpath
func (a *Adjacency) RemoveReport(u, v NodeID) (removed, goneU, goneV bool) {
	if u == v {
		return false, false, false
	}
	si := a.idx.get(u)
	if si < 0 || !a.sets[si].remove(u, v) {
		return false, false, false
	}
	sj := a.idx.get(v)
	a.sets[sj].remove(v, u)
	a.edges--
	if a.sets[si].deg() == 0 {
		a.release(u, si)
		goneU = true
	}
	if a.sets[sj].deg() == 0 {
		a.release(v, sj)
		goneV = true
	}
	return true, goneU, goneV
}

// Has reports whether the undirected edge {u, v} is present.
//
//rept:hotpath
func (a *Adjacency) Has(u, v NodeID) bool {
	si := a.idx.get(u)
	return si >= 0 && a.sets[si].has(u, v)
}

// Degree returns the number of neighbors of u.
func (a *Adjacency) Degree(u NodeID) int {
	si := a.idx.get(u)
	if si < 0 {
		return 0
	}
	return a.sets[si].deg()
}

// Edges returns the number of edges currently stored.
func (a *Adjacency) Edges() int { return a.edges }

// Nodes returns the number of nodes with at least one incident edge.
func (a *Adjacency) Nodes() int { return a.idx.n }

// Neighbors calls fn for every neighbor of u, in unspecified order.
func (a *Adjacency) Neighbors(u NodeID, fn func(w NodeID)) {
	si := a.idx.get(u)
	if si >= 0 {
		a.sets[si].each(u, fn)
	}
}

// EachNode calls fn for every node with at least one incident edge, in
// unspecified order. It is the mask-rebuild walk used after a snapshot
// restore, where edges are loaded without going through AddReport.
func (a *Adjacency) EachNode(fn func(u NodeID)) {
	a.idx.each(func(u NodeID, _ int32) { fn(u) })
}

// AppendEdges appends every stored edge to dst exactly once, in canonical
// orientation (U < V) and unspecified order, and returns the extended
// slice. It is the export path used by the snapshot subsystem.
func (a *Adjacency) AppendEdges(dst []Edge) []Edge {
	a.idx.each(func(u NodeID, si int32) {
		a.sets[si].each(u, func(v NodeID) {
			if u < v {
				dst = append(dst, Edge{U: u, V: v})
			}
		})
	})
	return dst
}

// CommonNeighbors appends every node adjacent to both u and v to dst and
// returns the extended slice: a merge walk when both neighborhoods are
// small sorted slices, otherwise enumerate-the-smaller probe-the-larger,
// so the cost is O(min(deg u, deg v)) expected. Passing a reusable dst[:0]
// avoids per-call allocation.
//
//rept:hotpath
func (a *Adjacency) CommonNeighbors(u, v NodeID, dst []NodeID) []NodeID {
	si := a.idx.get(u)
	if si < 0 {
		return dst
	}
	sj := a.idx.get(v)
	if sj < 0 {
		return dst
	}
	return intersect(&a.sets[si], u, &a.sets[sj], v, dst)
}

// footprint returns the bytes currently on the ledger for this structure,
// recomputed from capacities. It mirrors the incremental charge sites
// exactly: the arena and free list by capacity, the node index by table
// length, and every arena entry's spill capacity and promoted-table length
// (freed slots retain their spill capacity, so they count too).
func (a *Adjacency) footprint() int64 {
	b := int64(cap(a.sets))*nsetBytes +
		int64(cap(a.freed))*4 +
		int64(len(a.idx.ents))*idxEntryBytes
	for i := range a.sets {
		s := &a.sets[i]
		b += int64(cap(s.small))*nodeIDBytes + int64(len(s.table))*nodeIDBytes
	}
	return b
}

// Compact rebuilds the structure into right-sized backing storage: a fresh
// arena with no freed slots, a node index sized for the current node
// count, and per-node sets holding exactly their surviving neighbors. It
// exists for the moment after a bulk eviction (Engine.Downsample thins the
// sample 2^extra-fold) when the retained capacities — arena slack, spill
// slices, oversized promoted tables — no longer reflect the contents;
// without it, downsampling would shed sample state while the ledger (and
// the process) kept every byte. The rebuild is deterministic in the
// current contents and O(edges); callers pay it only at adaptation events,
// never per stream event.
func (a *Adjacency) Compact() {
	edges := a.AppendEdges(make([]Edge, 0, a.edges))
	a.ac.Add(mem.CompAdjacency, -a.footprint())
	a.idx = nodeIndex{}
	a.sets = nil
	a.freed = nil
	a.edges = 0
	for _, e := range edges {
		a.Add(e.U, e.V)
	}
}

// CommonCount returns |N(u) ∩ N(v)| without materializing the
// intersection — the counting-only hot path of proc.processEdge.
//
//rept:hotpath
func (a *Adjacency) CommonCount(u, v NodeID) int {
	si := a.idx.get(u)
	if si < 0 {
		return 0
	}
	sj := a.idx.get(v)
	if sj < 0 {
		return 0
	}
	return intersectCount(&a.sets[si], u, &a.sets[sj], v)
}
