package graph

import "rept/internal/hashing"

// edgeSet is an open-addressing set of canonical 64-bit edge keys, the
// live-edge membership structure behind DegreeTable's duplicate and
// phantom-delete filtering. Key 0 is Key(0, 0) — a self-loop, which no
// caller ever stores — so 0 serves as the in-band empty sentinel.
// Deletion backward-shifts, keeping probe chains tombstone-free under
// churn.
type edgeSet struct {
	keys []uint64
	n    int
}

const edgeSetMinSize = 16

// has reports whether k is in the set.
func (s *edgeSet) has(k uint64) bool {
	if s.n == 0 {
		return false
	}
	mask := uint64(len(s.keys) - 1)
	for i := hashing.Mix64(k) & mask; ; i = (i + 1) & mask {
		switch s.keys[i] {
		case k:
			return true
		case 0:
			return false
		}
	}
}

// add inserts k, reporting whether it was absent.
func (s *edgeSet) add(k uint64) bool {
	if len(s.keys) == 0 {
		s.keys = make([]uint64, edgeSetMinSize)
	} else if s.n >= len(s.keys)*3/4 {
		s.grow(len(s.keys) * 2)
	}
	mask := uint64(len(s.keys) - 1)
	for i := hashing.Mix64(k) & mask; ; i = (i + 1) & mask {
		switch s.keys[i] {
		case k:
			return false
		case 0:
			s.keys[i] = k
			s.n++
			return true
		}
	}
}

// remove deletes k by backward-shift, reporting whether it was present.
func (s *edgeSet) remove(k uint64) bool {
	if s.n == 0 {
		return false
	}
	mask := uint64(len(s.keys) - 1)
	i := hashing.Mix64(k) & mask
	for ; ; i = (i + 1) & mask {
		if s.keys[i] == k {
			break
		}
		if s.keys[i] == 0 {
			return false
		}
	}
	j := i
	for {
		j = (j + 1) & mask
		if s.keys[j] == 0 {
			break
		}
		home := hashing.Mix64(s.keys[j]) & mask
		if (j-home)&mask >= (j-i)&mask {
			s.keys[i] = s.keys[j]
			i = j
		}
	}
	s.keys[i] = 0
	s.n--
	return true
}

// grow rehashes into size slots (a power of two).
func (s *edgeSet) grow(size int) {
	old := s.keys
	s.keys = make([]uint64, size)
	s.n = 0
	for _, k := range old {
		if k != 0 {
			s.add(k)
		}
	}
}
