package shard

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"rept/internal/gen"
	"rept/internal/graph"
	"rept/internal/snapshot"
)

// TestObserveConsistency: one Observe reports estimate, degrees, tallies,
// and sampled edges at the same prefix, agreeing with the separate calls
// once ingest has quiesced.
func TestObserveConsistency(t *testing.T) {
	s, err := New(Config{M: 3, C: 9, Shards: 3, Seed: 21, TrackLocal: true, TrackDegrees: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	edges := testStream(t)
	s.AddAll(edges)

	obs := s.Observe()
	if obs.Processed != uint64(len(edges)) {
		t.Errorf("observation processed = %d, want %d", obs.Processed, len(edges))
	}
	snap := s.Snapshot()
	if obs.Estimate.Global != snap.Global {
		t.Errorf("observation global %v != snapshot global %v", obs.Estimate.Global, snap.Global)
	}
	if got := s.SampledEdges(); obs.SampledEdges != got {
		t.Errorf("observation sampled %d != SampledEdges %d", obs.SampledEdges, got)
	}

	// Degrees equal the stream's true degrees (the generator emits each
	// edge once).
	want := make(map[graph.NodeID]uint32)
	for _, e := range edges {
		want[e.U]++
		want[e.V]++
	}
	if len(obs.Degrees) != len(want) {
		t.Fatalf("degree table has %d nodes, want %d", len(obs.Degrees), len(want))
	}
	for v, d := range want {
		if obs.Degrees[v] != d {
			t.Fatalf("degree(%d) = %d, want %d", v, obs.Degrees[v], d)
		}
	}

	// The barrier copy is private: mutating it must not touch the tracker.
	for v := range obs.Degrees {
		obs.Degrees[v] = 0
	}
	if again := s.Observe(); again.Degrees[edges[0].U] == 0 {
		t.Error("mutating an observation's degree map corrupted the tracker")
	}
}

// TestObserveWithoutDegrees: the degree map stays nil when tracking is
// off (the zero-cost default).
func TestObserveWithoutDegrees(t *testing.T) {
	s, err := New(Config{M: 2, C: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Add(1, 2)
	if obs := s.Observe(); obs.Degrees != nil {
		t.Errorf("degrees = %v without TrackDegrees", obs.Degrees)
	}
}

// TestSnapshotCarriesDegrees: shard checkpoints round-trip the degree
// table bit-for-bit, and TrackDegrees mismatches are rejected.
func TestSnapshotCarriesDegrees(t *testing.T) {
	cfg := Config{M: 3, C: 6, Shards: 2, Seed: 17, TrackLocal: true, TrackDegrees: true}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	edges := testStream(t)
	s.AddAll(edges)
	before := s.Observe().Degrees

	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	s.Close()

	r, err := Resume(cfg, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	after := r.Observe().Degrees
	if len(after) != len(before) {
		t.Fatalf("restored degree table has %d nodes, want %d", len(after), len(before))
	}
	for v, d := range before {
		if after[v] != d {
			t.Fatalf("restored degree(%d) = %d, want %d", v, after[v], d)
		}
	}

	noDeg := cfg
	noDeg.TrackDegrees = false
	if _, err := Resume(noDeg, bytes.NewReader(buf.Bytes())); !errors.Is(err, snapshot.ErrMismatch) {
		t.Errorf("resume with TrackDegrees off: err = %v, want ErrMismatch", err)
	}
}

// TestResumeVersion1Snapshot: a snapshot written by the version-1 format
// (golden blob generated before the degree table existed) still restores
// and keeps estimating.
func TestResumeVersion1Snapshot(t *testing.T) {
	data, err := os.ReadFile("testdata/sharded_v1.snap")
	if err != nil {
		t.Fatal(err)
	}
	// Must match the generator: M 3, C 10, Shards 2, Seed 99, local+eta,
	// fed HolmeKim(60, 4, 0.4, 5) shuffled with seed 13.
	cfg := Config{M: 3, C: 10, Shards: 2, Seed: 99, TrackLocal: true, TrackEta: true}
	s, err := Resume(cfg, bytes.NewReader(data))
	if err != nil {
		t.Fatalf("version-1 snapshot no longer restores: %v", err)
	}
	defer s.Close()

	want := uint64(len(gen.HolmeKim(60, 4, 0.4, 5)))
	if got := s.Processed(); got != want {
		t.Errorf("restored processed = %d, want %d", got, want)
	}
	// The restored estimator still answers and keeps accepting edges.
	if g := s.Snapshot().Global; g < 0 {
		t.Errorf("restored global estimate = %v", g)
	}
	s.Add(1000, 1001)
	if got := s.Processed(); got != want+1 {
		t.Errorf("processed after suffix edge = %d, want %d", got, want+1)
	}

	// A version-1 snapshot has no degree table: restoring it into a
	// degree-tracking config must fail loudly, not invent zeros.
	withDeg := cfg
	withDeg.TrackDegrees = true
	if _, err := Resume(withDeg, bytes.NewReader(data)); !errors.Is(err, snapshot.ErrMismatch) {
		t.Errorf("v1 restore with TrackDegrees on: err = %v, want ErrMismatch", err)
	}
}
