package shard

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"rept/internal/exper"
	"rept/internal/gen"
	"rept/internal/graph"
	"rept/internal/snapshot"
)

// TestResumeVersion2Snapshot: a snapshot written by the version-2 format
// (golden blob generated before fully-dynamic mode existed) still
// restores — with the FullyDynamic fingerprint defaulting to off — and
// keeps estimating.
func TestResumeVersion2Snapshot(t *testing.T) {
	data, err := os.ReadFile("testdata/sharded_v2.snap")
	if err != nil {
		t.Fatal(err)
	}
	// Must match the generator: M 3, C 10, Shards 2, Seed 99,
	// local+eta+degrees, fed HolmeKim(60, 4, 0.4, 5) shuffled with seed 13.
	cfg := Config{M: 3, C: 10, Shards: 2, Seed: 99, TrackLocal: true, TrackEta: true, TrackDegrees: true}
	s, err := Resume(cfg, bytes.NewReader(data))
	if err != nil {
		t.Fatalf("version-2 snapshot no longer restores: %v", err)
	}
	defer s.Close()

	want := uint64(len(gen.HolmeKim(60, 4, 0.4, 5)))
	if got := s.Processed(); got != want {
		t.Errorf("restored processed = %d, want %d", got, want)
	}
	if got := s.Deleted(); got != 0 {
		t.Errorf("restored deleted = %d, want 0 (format predates deletions)", got)
	}
	if g := s.Snapshot().Global; g < 0 {
		t.Errorf("restored global estimate = %v", g)
	}
	s.Add(1000, 1001)
	if got := s.Processed(); got != want+1 {
		t.Errorf("processed after suffix edge = %d, want %d", got, want+1)
	}

	// A version-2 snapshot carries FullyDynamic=false: restoring it into
	// a fully-dynamic config must fail loudly, not silently enable
	// deletions on counters that were never meant to go signed.
	dyn := cfg
	dyn.FullyDynamic = true
	if _, err := Resume(dyn, bytes.NewReader(data)); !errors.Is(err, snapshot.ErrMismatch) {
		t.Errorf("v2 restore with FullyDynamic on: err = %v, want ErrMismatch", err)
	}
}

// goldenV3Config and goldenV3Stream must match the sharded_v3.snap
// generator exactly.
func goldenV3Config() Config {
	return Config{M: 3, C: 10, Shards: 2, Seed: 99, TrackLocal: true, TrackEta: true, TrackDegrees: true, FullyDynamic: true}
}

func goldenV3Stream() []graph.Update {
	base := gen.Shuffle(gen.HolmeKim(60, 4, 0.4, 5), 13)
	return exper.DynStream(base, exper.DynOptions{Pattern: exper.Reinsert, DeleteFrac: 0.35, Seed: 7})
}

// TestGoldenVersion3Snapshot pins the version-3 wire format: re-running
// the deterministic deletion-bearing stream that generated the golden
// blob must reproduce it byte for byte (the encoding is canonical), and
// restoring the blob must yield an estimator that matches the
// uninterrupted one exactly.
func TestGoldenVersion3Snapshot(t *testing.T) {
	golden, err := os.ReadFile("testdata/sharded_v3.snap")
	if err != nil {
		t.Fatal(err)
	}
	cfg := goldenV3Config()
	ups := goldenV3Stream()

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.ApplyAll(ups)
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Fatalf("version-3 encoding drifted: regenerated snapshot is %d bytes and differs from the %d-byte golden blob (bump the format version instead of silently changing the encoding)", buf.Len(), len(golden))
	}

	r, err := Resume(cfg, bytes.NewReader(golden))
	if err != nil {
		t.Fatalf("golden v3 snapshot does not restore: %v", err)
	}
	defer r.Close()
	var dels uint64
	for _, up := range ups {
		if up.Del {
			dels++
		}
	}
	if r.Processed() != uint64(len(ups)) || r.Deleted() != dels {
		t.Errorf("restored tallies = (%d, %d), want (%d, %d)", r.Processed(), r.Deleted(), len(ups), dels)
	}

	// Restoring under the insert-only interpretation of the same config
	// must be rejected: the FullyDynamic flag is part of the contract.
	plain := cfg
	plain.FullyDynamic = false
	if _, err := Resume(plain, bytes.NewReader(golden)); !errors.Is(err, snapshot.ErrMismatch) {
		t.Errorf("v3 FD restore with FullyDynamic off: err = %v, want ErrMismatch", err)
	}
}
