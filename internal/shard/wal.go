package shard

import (
	"sync"
	"time"

	"rept/internal/core"
	"rept/internal/graph"
	"rept/internal/obs"
	"rept/internal/wal"
)

// FingerprintHash returns the 64-bit digest of the coordinator's
// statistical fingerprint — the value WAL segment headers are bound to,
// so recovery rejects a log directory written under a different
// configuration before replaying a single event.
func (c Config) FingerprintHash() uint64 { return c.fingerprint().Hash() }

// Position returns the coordinator's stream position: the number of
// accepted non-loop events since birth, the same quantity snapshots
// persist as Processed and the WAL addresses records by. A coordinator
// restored from a snapshot at position P and fed the events at positions
// ≥ P reproduces the original bit for bit — Position is the replay entry
// point's contract.
func (s *Sharded) Position() uint64 { return s.processed.Load() }

// walRunner is the durable-mode bookkeeping shared between producers
// blocked in ApplyAllDurable and the WAL goroutine: watermarks over
// delivery tickets, advanced as batches are appended to and synced into
// the log, plus the sticky WAL error.
type walRunner struct {
	lg *wal.Log
	// interval > 0 selects interval sync: ApplyAllDurable returns once
	// its events are APPENDED, and the WAL goroutine syncs on this
	// period (bounded loss window). interval <= 0 is per-batch sync:
	// ApplyAllDurable returns only after its events are DURABLE.
	interval time.Duration

	mu       sync.Mutex
	cond     sync.Cond
	appended uint64 // ticket of the last batch written into the log
	durable  uint64 // ticket of the last batch covered by a sync
	err      error  // sticky: the log refused a write or sync
}

// publish advances the watermarks and wakes waiting producers.
func (r *walRunner) publish(appended, durable uint64) {
	r.mu.Lock()
	if appended > r.appended {
		r.appended = appended
	}
	if durable > r.durable {
		r.durable = durable
	}
	r.cond.Broadcast()
	r.mu.Unlock()
}

// fail records the sticky WAL error and wakes waiting producers.
func (r *walRunner) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.cond.Broadcast()
	r.mu.Unlock()
}

// wait blocks until the batch holding the caller's events is
// acknowledged under the configured sync mode, or the log has failed.
// A ticket that made the watermark before the failure stays
// acknowledged: its bytes are on disk.
func (r *walRunner) wait(ticket uint64) error {
	perBatch := r.interval <= 0
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		w := r.appended
		if perBatch {
			w = r.durable
		}
		if w >= ticket {
			return nil
		}
		if r.err != nil {
			return r.err
		}
		r.cond.Wait()
	}
}

// StartWAL attaches a write-ahead log to the coordinator: a dedicated
// logger goroutine joins the broadcast fan-out and receives exactly the
// ticketed batch sequence the engine shards do, so the log's event order
// IS the engines' apply order. Events already buffered (a recovery
// replay's leftovers) are flushed to the engines first and are NOT
// logged — recovery replays come FROM the log.
//
// StartWAL must be called before the coordinator is shared with
// concurrent producers (immediately after New or Resume); it panics if
// called twice or after Close. Once attached, ApplyAllDurable blocks
// until the log acknowledges its events; the plain ingest methods keep
// working and are logged too, but do not wait.
func (s *Sharded) StartWAL(lg *wal.Log, syncInterval time.Duration) {
	var buf [1]sendItem
	pend := buf[:0]
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		panic(core.ErrClosed)
	}
	if s.walRing != nil {
		s.mu.Unlock()
		panic("shard: StartWAL called twice")
	}
	if len(s.cur.ups) > 0 {
		ticket, b := s.detachLocked()
		pend = append(pend, sendItem{ticket: ticket, m: msg{b: b}})
	}
	last := s.seq
	s.mu.Unlock()
	s.sendAll(pend)
	// Batches detached before this point carried the old fan-out count
	// and must be fully delivered before the WAL ring joins it.
	s.waitSent(last)

	s.mu.Lock()
	s.walRing = s.newAccountedRing(s.queueLen)
	s.wal = &walRunner{lg: lg, interval: syncInterval}
	s.wal.cond.L = &s.wal.mu
	s.done.Add(1)
	go s.runWAL()
	s.mu.Unlock()
}

// ApplyAllDurable is ApplyAll with a durability barrier: it returns only
// once every event it accepted is in the write-ahead log — synced in
// per-batch mode, appended in interval mode — so a caller that
// acknowledges its client after a nil return never loses the events to a
// crash. Unlike ApplyAll it always flushes the shared batch (its events
// cannot wait in the buffer, or the durability claim would be hollow),
// so high-rate callers should size their request batches accordingly;
// group commit amortizes the sync across concurrent callers. A non-nil
// error means durability is unknown AT BEST — the events may reach the
// estimator's in-memory state, but a restart may not recover them, and
// the caller must not acknowledge. Without StartWAL it degrades to
// ApplyAll and returns nil.
func (s *Sharded) ApplyAllDurable(ups []graph.Update) error {
	var (
		accepted, dels, loops uint64
		buf                   [pendInline]sendItem
	)
	var start time.Time
	if s.obs != nil {
		start = time.Now()
	}
	pend := buf[:0]
	if !s.cfg.FullyDynamic {
		for _, up := range ups {
			if up.Del {
				panic(core.ErrNotDynamic)
			}
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		panic(core.ErrClosed)
	}
	if s.walRing == nil {
		s.mu.Unlock()
		s.ApplyAll(ups)
		return nil
	}
	for _, up := range ups {
		if up.U == up.V {
			loops++
			continue
		}
		s.cur.ups = append(s.cur.ups, up)
		accepted++
		if up.Del {
			dels++
		}
		if len(s.cur.ups) >= s.batchLen {
			ticket, b := s.detachLocked()
			pend = append(pend, sendItem{ticket: ticket, m: msg{b: b}})
		}
	}
	if len(s.cur.ups) > 0 {
		ticket, b := s.detachLocked()
		pend = append(pend, sendItem{ticket: ticket, m: msg{b: b}})
	}
	// Everything this call accepted now sits at or below the last batch
	// ticket (the flush above emptied the shared buffer), so that ticket
	// is the durability watermark to wait for. Tallies are credited
	// before unlock, like ApplyAll: barrier-consistency of snapshots
	// versus Processed is what aligns checkpoint positions with the log.
	wait := s.lastBatch
	s.processed.Add(accepted)
	s.deleted.Add(dels)
	s.selfLoops.Add(loops)
	w := s.wal
	s.mu.Unlock()
	s.sendAll(pend)
	if s.obs != nil {
		// Dispatch covers batching and fan-out; the durability wait below
		// is accounted to the WAL append/fsync histograms instead.
		d := time.Since(start)
		s.obs.Dispatch.ObserveDuration(d)
		s.obs.Flight.Record(obs.KindDispatch, -1, accepted, d)
	}
	return w.wait(wait)
}

// ApplyBatchDurable is ApplyBatch with the same durability barrier as
// ApplyAllDurable: it returns only once every event it accepted is in
// the write-ahead log — synced in per-batch mode, appended in interval
// mode. The batch travels as wholesale segments (hub splitting
// included) exactly like ApplyBatch, so durability costs nothing in
// dispatch granularity: the log's group commit covers each segment the
// moment the WAL ring drains. Without StartWAL it degrades to
// ApplyBatch and returns nil.
func (s *Sharded) ApplyBatchDurable(ups []graph.Update) error {
	var (
		accepted, dels, loops uint64
		buf                   [pendInline]sendItem
	)
	var start time.Time
	if s.obs != nil {
		start = time.Now()
	}
	if !s.cfg.FullyDynamic {
		for _, up := range ups {
			if up.Del {
				panic(core.ErrNotDynamic)
			}
		}
	}
	segLen := len(ups)
	if segLen == 0 {
		segLen = 1
	}
	if s.hubs != nil && len(ups) > s.batchLen && s.hubs.containsAny(ups) {
		segLen = s.batchLen
	}
	pend := buf[:0]
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		panic(core.ErrClosed)
	}
	if s.walRing == nil {
		s.mu.Unlock()
		s.ApplyBatch(ups)
		return nil
	}
	if len(s.cur.ups) > 0 {
		ticket, b := s.detachLocked()
		pend = append(pend, sendItem{ticket: ticket, m: msg{b: b}})
	}
	var seg *batch
	for _, up := range ups {
		if up.U == up.V {
			loops++
			continue
		}
		if seg == nil {
			seg = s.getBatch()
			seg.wholesale = true
		}
		seg.ups = append(seg.ups, up)
		accepted++
		if up.Del {
			dels++
		}
		if len(seg.ups) >= segLen {
			ticket := s.ticketLocked(seg)
			pend = append(pend, sendItem{ticket: ticket, m: msg{b: seg}})
			seg = nil
		}
	}
	if seg != nil {
		ticket := s.ticketLocked(seg)
		pend = append(pend, sendItem{ticket: ticket, m: msg{b: seg}})
	}
	// Everything this call accepted sits at or below the last issued
	// ticket; that is the durability watermark to wait for.
	wait := s.lastBatch
	s.processed.Add(accepted)
	s.deleted.Add(dels)
	s.selfLoops.Add(loops)
	w := s.wal
	s.mu.Unlock()
	s.sendAll(pend)
	if s.obs != nil {
		d := time.Since(start)
		s.obs.Dispatch.ObserveDuration(d)
		s.obs.Flight.Record(obs.KindDispatch, -1, accepted, d)
	}
	return w.wait(wait)
}

// runWAL is the dedicated logger goroutine: it consumes the same
// ticketed batch/barrier sequence as the engine shards, appends each
// batch to the log, and group-commits — one sync covers every batch
// drained since the last one. In per-batch mode the sync happens as soon
// as the ring runs dry; in interval mode on a period (popTimeout supplies
// the tick), trading a bounded loss window for fewer syncs.
func (s *Sharded) runWAL() {
	defer s.done.Done()
	r := s.wal
	perBatch := r.interval <= 0
	var next time.Time
	if !perBatch {
		next = time.Now().Add(r.interval)
	}
	var lastTicket uint64 // last batch ticket appended to the log
	failed := false
	dirty := false // appended but not yet synced
	commit := func() {
		if failed || !dirty {
			return
		}
		if err := r.lg.Commit(); err != nil {
			failed = true
			r.fail(err)
			return
		}
		dirty = false
		r.publish(lastTicket, lastTicket)
	}
	handle := func(m msg) {
		if m.bar != nil {
			m.bar.wg.Done()
			return
		}
		if !failed && len(m.b.ups) > 0 {
			if err := r.lg.Append(m.b.ups); err != nil {
				failed = true
				r.fail(err)
			} else {
				lastTicket = m.ticket
				dirty = true
			}
		}
		if m.b.refs.Add(-1) == 0 {
			s.putBatch(m.b)
		}
	}
	for {
		var m msg
		var ok bool
		if perBatch {
			m, ok = s.walRing.pop()
		} else {
			var timedOut bool
			m, ok, timedOut = s.walRing.popTimeout(time.Until(next))
			if timedOut {
				// The period elapsed with the ring idle: sync the open group.
				commit()
				next = time.Now().Add(r.interval)
				continue
			}
		}
		if !ok {
			break
		}
		handle(m)
		// Drain whatever the producers queued meanwhile: the group whose
		// appends the next sync amortizes over.
		for {
			m2, ok2 := s.walRing.tryPop()
			if !ok2 {
				break
			}
			handle(m2)
		}
		if perBatch {
			commit()
			continue
		}
		if dirty && !failed {
			// Interval mode acknowledges on append.
			r.publish(lastTicket, 0)
		}
		if !time.Now().Before(next) {
			// A busy ring keeps popTimeout from ever timing out; honor the
			// period here so the loss window stays bounded under load.
			commit()
			next = time.Now().Add(r.interval)
		}
	}
	// Shutdown: make everything appended durable regardless of mode.
	commit()
}
