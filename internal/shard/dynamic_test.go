package shard

import (
	"reflect"
	"sync"
	"testing"

	"rept/internal/core"
	"rept/internal/exper"
	"rept/internal/gen"
	"rept/internal/graph"
	"rept/internal/stream"
)

// dynStream builds a deterministic churn schedule over a generated base
// graph, shared by the fully-dynamic shard tests.
func dynStream(t *testing.T, seed uint64) []graph.Update {
	t.Helper()
	base := gen.Shuffle(gen.HolmeKim(250, 4, 0.4, 19), seed)
	ups := exper.DynStream(base, exper.DynOptions{Pattern: exper.Reinsert, DeleteFrac: 0.35, Seed: seed})
	if err := stream.ValidateWellFormed(ups); err != nil {
		t.Fatal(err)
	}
	return ups
}

// TestFullyDynamicShardedMatchesEngines: a fully-dynamic Sharded fed a
// churn stream must produce exactly the estimate of hand-driven core
// engines built from its own shard configs and merged with MergeGroups —
// the FD extension of the shard determinism contract.
func TestFullyDynamicShardedMatchesEngines(t *testing.T) {
	ups := dynStream(t, 3)
	cfg := Config{M: 4, C: 14, Shards: 2, Seed: 5, TrackLocal: true, FullyDynamic: true, TrackDegrees: true}

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.ApplyAll(ups)
	got := s.Snapshot()

	var aggs []*core.Aggregates
	for _, sc := range cfg.shardConfigs() {
		eng, err := core.NewEngine(sc)
		if err != nil {
			t.Fatal(err)
		}
		eng.ApplyAll(ups)
		aggs = append(aggs, eng.Aggregates())
		eng.Close()
	}
	merged, err := core.MergeGroups(aggs...)
	if err != nil {
		t.Fatal(err)
	}
	want := merged.Estimate()
	if got.Global != want.Global || got.EtaHat != want.EtaHat {
		t.Errorf("sharded FD estimate = %+v, hand-merged engines = %+v", got, want)
	}
	if !reflect.DeepEqual(got.Local, want.Local) {
		t.Error("sharded FD local estimates diverge from hand-merged engines")
	}

	var dels uint64
	for _, up := range ups {
		if up.Del {
			dels++
		}
	}
	if s.Deleted() != dels {
		t.Errorf("Deleted = %d, want %d", s.Deleted(), dels)
	}
	if s.Processed() != uint64(len(ups)) {
		t.Errorf("Processed = %d, want %d events", s.Processed(), len(ups))
	}

	// The barrier degree table must describe the NET live graph.
	live := exper.LiveEdgesOf(ups)
	wantDeg := make(map[graph.NodeID]uint32)
	for _, e := range live {
		wantDeg[e.U]++
		wantDeg[e.V]++
	}
	gotDeg := s.Observe().Degrees
	if !reflect.DeepEqual(gotDeg, wantDeg) {
		t.Errorf("net degree table has %d nodes, exact live graph %d (or entries differ)", len(gotDeg), len(wantDeg))
	}
}

// TestFullyDynamicConcurrentDisjoint (-race): concurrent producers each
// streaming a well-formed churn schedule over DISJOINT node ranges. The
// interleaving is nondeterministic, but signed counters over disjoint
// edge sets never interact, so the final estimate must equal a
// single-threaded feed of any concatenation.
func TestFullyDynamicConcurrentDisjoint(t *testing.T) {
	const producers = 4
	cfg := Config{M: 3, C: 9, Shards: 3, Seed: 12, TrackLocal: true, FullyDynamic: true}

	schedules := make([][]graph.Update, producers)
	for p := range schedules {
		base := gen.Shuffle(gen.HolmeKim(120, 4, 0.4, uint64(50+p)), uint64(p))
		offset := graph.NodeID(p * 1000)
		for i := range base {
			base[i].U += offset
			base[i].V += offset
		}
		schedules[p] = exper.DynStream(base, exper.DynOptions{Pattern: exper.Churn, DeleteFrac: 0.3, Seed: uint64(p + 1)})
	}

	conc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer conc.Close()
	var wg sync.WaitGroup
	for _, sched := range schedules {
		wg.Add(1)
		go func(ups []graph.Update) {
			defer wg.Done()
			// Chunked ApplyAll exercises batch boundaries under contention.
			for i := 0; i < len(ups); i += 97 {
				end := min(i+97, len(ups))
				conc.ApplyAll(ups[i:end])
			}
		}(sched)
	}
	wg.Wait()
	got := conc.Snapshot()

	seq, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	for _, sched := range schedules {
		seq.ApplyAll(sched)
	}
	want := seq.Snapshot()

	if got.Global != want.Global {
		t.Errorf("concurrent FD ingest Global = %v, sequential = %v", got.Global, want.Global)
	}
	if !reflect.DeepEqual(got.Local, want.Local) {
		t.Error("concurrent FD ingest local estimates diverge from sequential")
	}
}

// TestShardedDeleteRequiresFullyDynamic: the coordinator rejects
// deletions (per-edge and bulk) unless configured for them, before any
// state is touched.
func TestShardedDeleteRequiresFullyDynamic(t *testing.T) {
	s, err := New(Config{M: 2, C: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Add(1, 2)
	for name, call := range map[string]func(){
		"Delete":   func() { s.Delete(1, 2) },
		"ApplyAll": func() { s.ApplyAll([]graph.Update{{U: 1, V: 2, Del: true}}) },
	} {
		func() {
			defer func() {
				if r := recover(); r != core.ErrNotDynamic {
					t.Errorf("%s: recovered %v, want ErrNotDynamic", name, r)
				}
			}()
			call()
		}()
	}
	if s.Processed() != 1 || s.Deleted() != 0 {
		t.Errorf("tallies mutated by rejected deletes: processed=%d deleted=%d", s.Processed(), s.Deleted())
	}
}
