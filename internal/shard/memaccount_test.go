package shard

import (
	"bytes"
	"testing"

	"rept/internal/gen"
	"rept/internal/graph"
	"rept/internal/mem"
)

// runAccountedStream drives one full churn-and-adapt workload — adds,
// a mid-stream downsample, more adds, deletions — and returns the final
// snapshot image plus the global estimate.
func runAccountedStream(t *testing.T, ac *mem.Accountant) ([]byte, float64, int) {
	t.Helper()
	s, err := New(Config{
		M: 4, C: 8, Shards: 2, Seed: 9,
		TrackLocal: true, TrackDegrees: true, FullyDynamic: true,
		Mem: ac,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	stream := gen.Shuffle(gen.HolmeKim(500, 6, 0.4, 3), 11)
	half := len(stream) / 2
	s.AddAll(stream[:half])
	if err := s.Downsample(1); err != nil {
		t.Fatal(err)
	}
	s.AddAll(stream[half:])
	dels := make([]graph.Update, 0, 100)
	for _, e := range stream[:100] {
		dels = append(dels, graph.Update{U: e.U, V: e.V, Del: true})
	}
	s.ApplyAll(dels)

	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), s.Snapshot().Global, s.SampledEdges()
}

// TestAccountingBitIdentical is the behavior-preservation gate of the
// memory-accounting seam: the same stream through the same configuration
// with the ledger attached and detached must produce byte-identical
// snapshots and bit-identical estimates — accounting observes capacity
// transitions, it never participates in them.
func TestAccountingBitIdentical(t *testing.T) {
	snapOff, globalOff, sampledOff := runAccountedStream(t, nil)
	snapOn, globalOn, sampledOn := runAccountedStream(t, mem.New())
	if globalOff != globalOn {
		t.Errorf("global estimate differs with accounting on: %v vs %v", globalOn, globalOff)
	}
	if sampledOff != sampledOn {
		t.Errorf("sampled-edge count differs with accounting on: %d vs %d", sampledOn, sampledOff)
	}
	if !bytes.Equal(snapOff, snapOn) {
		t.Errorf("snapshot images differ with accounting on (%d vs %d bytes)", len(snapOn), len(snapOff))
	}
}

// TestLedgerComponentsPopulated: after real ingest every storage layer
// the shard owns has reported bytes, and downsampling shrinks the
// sample-bearing components.
func TestLedgerComponentsPopulated(t *testing.T) {
	ac := mem.New()
	s, err := New(Config{
		M: 4, C: 4, Shards: 1, Seed: 3,
		TrackLocal: true, TrackDegrees: true,
		Mem: ac,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.AddAll(gen.Shuffle(gen.HolmeKim(2000, 8, 0.3, 5), 7))
	s.Snapshot() // barrier: every in-flight capacity change lands

	for _, comp := range []mem.Component{
		mem.CompAdjacency, mem.CompCounters, mem.CompDegrees, mem.CompRings,
	} {
		if got := ac.Bytes(comp); got <= 0 {
			t.Errorf("component %s = %d bytes after ingest, want > 0", comp, got)
		}
	}
	if total := ac.MemoryTotal(); total <= 0 {
		t.Fatalf("MemoryTotal = %d, want > 0", total)
	}

	before := ac.Bytes(mem.CompAdjacency)
	if err := s.Downsample(2); err != nil {
		t.Fatal(err)
	}
	s.Snapshot()
	after := ac.Bytes(mem.CompAdjacency)
	if after >= before {
		t.Errorf("adjacency = %d bytes after Downsample(2), want < %d (the sample thinned 4x)", after, before)
	}
}

// TestAccountedDispatchSteadyStateZeroAlloc re-runs the steady-state
// zero-allocation dispatch gate WITH the ledger attached: accounting
// charges only at capacity transitions, so warm-path ingest must stay
// allocation-free with it on (the -mem-budget deployments run this way
// permanently).
func TestAccountedDispatchSteadyStateZeroAlloc(t *testing.T) {
	const batchLen = 256
	s, err := New(Config{
		M: 2, C: 4, Seed: 7,
		FullyDynamic: true, TrackDegrees: true,
		BatchSize: batchLen, QueueLen: 4,
		Mem: mem.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	base := gen.Shuffle(gen.HolmeKim(300, 6, 0.4, 5), 2)
	s.AddAll(base)

	slice := base[:batchLen/2]
	block := make([]graph.Update, 0, batchLen)
	for i := len(slice) - 1; i >= 0; i-- {
		block = append(block, graph.Update{U: slice[i].U, V: slice[i].V, Del: true})
	}
	for _, ed := range slice {
		block = append(block, graph.Update{U: ed.U, V: ed.V})
	}

	for i := 0; i < 64; i++ {
		s.ApplyAll(block)
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.ApplyAll(block)
	})
	if allocs != 0 {
		t.Errorf("accounted steady-state dispatch allocates %.1f per %d-event batch, want 0", allocs, len(block))
	}
}
