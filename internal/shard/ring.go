package shard

import (
	"runtime"
	"sync/atomic"
	"time"
)

// ring is a single-producer/single-consumer queue of msg over a
// power-of-two slot array. It replaces the buffered channels of the
// original fan-out: head and tail are monotonically increasing indexes
// on their own cache lines (the consumer owns head, the producer owns
// tail), so the steady-state hand-off is one store-release on each side
// with no shared lock and no channel runtime overhead. The producer
// side is serialized by the coordinator's ticket order (send delivers
// tickets one at a time under sendMu), which is what makes the
// single-producer contract hold with any number of ingest goroutines.
//
// Both sides busy-spin briefly and then park: a parked side publishes
// its waiting flag, re-checks the condition (the flag store and the
// re-check straddle the counterpart's publish, so a wakeup can never be
// missed), and blocks on a capacity-1 wake channel. Spurious tokens
// left behind by resolved races only cost an extra loop iteration.
type ring struct {
	buf  []msg
	mask uint64

	_    [56]byte      // keep head off the buf/mask line
	head atomic.Uint64 // next slot to pop; advanced by the consumer only
	_    [56]byte      // keep tail off the head line
	tail atomic.Uint64 // next slot to push; advanced by the producer only
	_    [56]byte

	closed atomic.Bool

	consumerWaiting atomic.Bool
	producerWaiting atomic.Bool
	consumerWake    chan struct{}
	producerWake    chan struct{}
}

// ringSpin is how many scheduler yields a side burns before parking.
// Parking costs two atomics plus a channel op on each side; a short
// spin absorbs the common case where the counterpart is actively
// draining (or filling) and the wait is sub-microsecond.
const ringSpin = 32

// newRing builds a ring with capacity rounded up to a power of two.
func newRing(capacity int) *ring {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &ring{
		buf:          make([]msg, n),
		mask:         uint64(n - 1),
		consumerWake: make(chan struct{}, 1),
		producerWake: make(chan struct{}, 1),
	}
}

// Len reports how many messages are queued. It is a racy diagnostic
// read (the queue-depth gauge); both loads are individually atomic.
func (r *ring) Len() int {
	t, h := r.tail.Load(), r.head.Load()
	if t < h { // torn pair mid-pop: clamp instead of wrapping
		return 0
	}
	return int(t - h)
}

// wake hands one token to a parked counterpart, if any. The CAS makes
// the common non-parked case one atomic load; the non-blocking send
// tolerates a stale token already in the channel (the parked side
// consumes it and re-checks).
func wake(waiting *atomic.Bool, ch chan struct{}) {
	if waiting.CompareAndSwap(true, false) {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// push appends m, blocking while the ring is full (that is the
// backpressure the channel send used to provide). It reports false
// without enqueueing when the ring has been closed.
func (r *ring) push(m msg) bool {
	spins := 0
	for {
		if r.closed.Load() {
			return false
		}
		tail := r.tail.Load()
		if tail-r.head.Load() < uint64(len(r.buf)) {
			r.buf[tail&r.mask] = m
			r.tail.Store(tail + 1)
			wake(&r.consumerWaiting, r.consumerWake)
			return true
		}
		if spins < ringSpin {
			spins++
			runtime.Gosched()
			continue
		}
		r.producerWaiting.Store(true)
		// Re-check after publishing the flag: a pop that freed a slot (or
		// a close) before the store fires its wake before we park; one
		// that lands after the store sees the flag and wakes us.
		if tail-r.head.Load() < uint64(len(r.buf)) || r.closed.Load() {
			r.producerWaiting.Store(false)
		} else {
			<-r.producerWake
		}
		spins = 0
	}
}

// pop removes the oldest message, blocking while the ring is empty. It
// reports false once the ring is closed AND drained — close-then-drain
// preserves every message pushed before close, matching the semantics
// of ranging over a closed channel.
func (r *ring) pop() (msg, bool) {
	spins := 0
	for {
		head := r.head.Load()
		if r.tail.Load() != head {
			return r.take(head), true
		}
		if r.closed.Load() {
			if r.tail.Load() != head { // raced with the final pushes
				continue
			}
			return msg{}, false
		}
		if spins < ringSpin {
			spins++
			runtime.Gosched()
			continue
		}
		r.consumerWaiting.Store(true)
		if r.tail.Load() != head || r.closed.Load() {
			r.consumerWaiting.Store(false)
		} else {
			<-r.consumerWake
		}
		spins = 0
	}
}

// tryPop removes the oldest message without blocking; ok reports
// whether one was there.
func (r *ring) tryPop() (msg, bool) {
	head := r.head.Load()
	if r.tail.Load() == head {
		return msg{}, false
	}
	return r.take(head), true
}

// popTimeout is pop with a deadline: timedOut reports that d elapsed
// with the ring still open and empty. It exists for the WAL logger's
// interval mode, whose group-commit ticks must fire even when no
// producer is active. A non-positive d degrades to tryPop.
func (r *ring) popTimeout(d time.Duration) (m msg, ok, timedOut bool) {
	deadline := time.Now().Add(d)
	spins := 0
	for {
		head := r.head.Load()
		if r.tail.Load() != head {
			return r.take(head), true, false
		}
		if r.closed.Load() {
			if r.tail.Load() != head {
				continue
			}
			return msg{}, false, false
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return msg{}, false, true
		}
		if spins < ringSpin {
			spins++
			runtime.Gosched()
			continue
		}
		r.consumerWaiting.Store(true)
		if r.tail.Load() != head || r.closed.Load() {
			r.consumerWaiting.Store(false)
		} else {
			t := time.NewTimer(remain)
			select {
			case <-r.consumerWake:
				t.Stop()
			case <-t.C:
				// Disarm the flag so a later push doesn't burn a token on a
				// consumer that is no longer parked; a racing wake leaves a
				// spurious token, which the next park consumes harmlessly.
				r.consumerWaiting.Store(false)
			}
		}
		spins = 0
	}
}

// take removes the message at head. The slot is cleared before the
// head advance publishes it back to the producer, so the ring never
// pins a released batch (or its update slice) against the GC.
func (r *ring) take(head uint64) msg {
	i := head & r.mask
	m := r.buf[i]
	r.buf[i] = msg{}
	r.head.Store(head + 1)
	wake(&r.producerWaiting, r.producerWake)
	return m
}

// close marks the ring closed and wakes both sides. Messages already
// pushed remain poppable (see pop); further pushes are refused. The
// coordinator only closes a ring after every issued ticket has been
// delivered, so in practice nothing is ever refused.
func (r *ring) close() {
	r.closed.Store(true)
	// Unconditional tokens: a side that is between publishing its flag
	// and parking must still find one.
	select {
	case r.consumerWake <- struct{}{}:
	default:
	}
	select {
	case r.producerWake <- struct{}{}:
	default:
	}
	r.consumerWaiting.Store(false)
	r.producerWaiting.Store(false)
}
