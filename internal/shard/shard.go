// Package shard provides a concurrency-safe ingest layer over the REPT
// core engine.
//
// A Sharded coordinator owns N independent core.Engine shards. Each shard
// hosts a disjoint slice of the configured logical processors (whole
// processor groups, so the standard c = c₁·m + c₂ layout is preserved)
// and derives its hash family from its own splitmix64-derived seed, which
// keeps the groups mutually independent across shards as paper Section
// III-B requires. Every edge is broadcast to every shard — REPT shards by
// processor group, not by edge — so a snapshot merges the per-shard
// counters through core.MergeGroups into an estimate that is statistically
// identical to a single engine with the concatenated processor list.
//
// Unlike core.Engine, whose Add must be driven by one caller, Sharded.Add
// is safe for any number of goroutines: producers append to a shared batch
// under a short critical section, and full batches are handed off to the
// per-shard goroutines over single-producer/single-consumer ring buffers
// (the batched broadcast pattern of core.Engine, lifted to a concurrent
// front door; ticket-ordered delivery makes the producer side of each
// ring single-threaded). Snapshots use an in-band barrier message so
// every shard reports its counters at exactly the same stream prefix,
// without stopping ingestion for longer than a flush.
//
// ApplyBatch is the bulk fast path: a whole caller batch becomes one
// ticket and one ring message, and each shard engine applies it through
// core.Engine.ApplyBatch — ticket acquisition, degree tracking, and
// barrier bookkeeping are amortized over the entire batch instead of
// paid per BatchSize chunk, and the engine's presence-mask skip prunes
// the per-processor broadcast down to the processors that can actually
// see a triangle.
package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"

	"time"

	"rept/internal/core"
	"rept/internal/graph"
	"rept/internal/hashing"
	"rept/internal/mem"
	"rept/internal/obs"
	"rept/internal/snapshot"
)

// Accounted sizes of the flat ingest structures: one ring slot and one
// batch-buffer event. Both are reported to the byte ledger only at
// construction / recycle transitions, never on the per-event path.
const (
	msgBytes    = int64(unsafe.Sizeof(msg{}))
	updateBytes = int64(unsafe.Sizeof(graph.Update{}))
)

const (
	defaultBatchLen = 1024
	defaultQueueLen = 8
)

// Config parameterizes a Sharded coordinator.
type Config struct {
	// M is the sampling denominator (p = 1/M), as core.Config.M.
	M int
	// C is the TOTAL number of logical processors across all shards.
	C int
	// Shards is the number of independent engine shards. Values <= 0
	// default to the number of processor groups (capped at 8); the value
	// is always capped at the group count, since shards own whole groups.
	Shards int
	// Seed drives every shard's hash family deterministically: shard i
	// uses the i-th value of a splitmix64 chain over Seed, so distinct
	// shards get distinct, independent families.
	Seed int64
	// TrackLocal enables per-node estimates on every shard.
	TrackLocal bool
	// FullyDynamic enables signed streams on every shard: Delete and
	// deletion-bearing ApplyAll. Part of the snapshot fingerprint, like
	// the other statistical flags.
	FullyDynamic bool
	// TrackEta forces η bookkeeping on every shard. It is enabled
	// automatically when the merged layout requires η̂ (C > M with
	// C % M != 0), so the merged estimate uses the paper's Algorithm 2
	// combination exactly as a single engine would.
	TrackEta bool
	// TrackDegrees maintains a per-node degree table alongside the shards:
	// a dedicated tracker goroutine receives the same edge broadcast and
	// counts arrivals per endpoint, so barrier snapshots can report degrees
	// at exactly the same stream prefix as the estimates. Needed for
	// clustering-coefficient queries; costs O(V) memory.
	TrackDegrees bool
	// Workers is the per-shard core.Engine worker count. The default 1
	// runs each shard single-threaded inside its own goroutine, which is
	// the right choice unless shards are few and wide.
	Workers int
	// BatchSize is the ingest hand-off batch length (default 1024): Add
	// appends under a mutex and full batches are broadcast to the shard
	// channels. Larger batches cut contention, smaller ones cut snapshot
	// staleness.
	BatchSize int
	// QueueLen is the per-shard ring depth in batches (default 8, rounded
	// up to a power of two). Producers block once a shard falls this far
	// behind (backpressure).
	QueueLen int
	// HubDegree enables hub-aware batch routing: once a vertex's stream
	// degree reaches this threshold it is marked a hub, and ApplyBatch
	// splits oversized batches containing hub events into BatchSize
	// segments so their closing-edge work pipelines across the shard
	// rings instead of arriving as one monolithic message. 0 disables;
	// a positive value requires TrackDegrees (the degree table is where
	// hubs are detected). Hub routing is an execution detail: it never
	// changes which processor samples which edge, so estimates and
	// snapshots are bit-identical with it on or off.
	HubDegree int
	// Obs attaches pipeline telemetry: dispatch/queue-wait/apply/barrier
	// stage histograms, per-shard queue-depth and events-applied series,
	// and flight-recorder events. Nil disables instrumentation at zero
	// cost on the per-event path. Obs is operational state, NOT part of
	// the snapshot fingerprint — a snapshot taken with telemetry on
	// restores into a coordinator with it off and vice versa.
	Obs *obs.Pipeline
	// Mem, when non-nil, is the byte ledger every storage layer under the
	// coordinator reports to: the shard engines' adjacency arenas, counter
	// and mask tables, the ingest rings, the recycled batch buffers, and
	// the degree table. Purely observational — estimates are bit-identical
	// with or without it — and, like Obs, operational state outside the
	// snapshot fingerprint.
	Mem *mem.Accountant
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := (core.Config{M: c.M, C: c.C}).Validate(); err != nil {
		return err
	}
	if c.HubDegree > 0 && !c.TrackDegrees {
		return fmt.Errorf("shard: HubDegree = %d requires TrackDegrees (hubs are detected in the degree table)", c.HubDegree)
	}
	return nil
}

// groups returns the number of processor groups of the merged layout.
func (c Config) groups() int {
	g := c.C / c.M
	if c.C%c.M != 0 {
		g++
	}
	return g
}

// shardCount resolves the effective shard count.
func (c Config) shardCount() int {
	n := c.Shards
	if n <= 0 {
		n = c.groups()
		if n > 8 {
			n = 8
		}
	}
	if g := c.groups(); n > g {
		n = g
	}
	return n
}

// shardConfigs partitions the C logical processors over n shards as whole
// groups: full groups are spread round-robin and the trailing partial
// group (C % M processors) always lands on the last shard, so the
// concatenated processor list keeps the canonical c = c₁·m + c₂ layout
// that core.MergeGroups requires. Seeds come from a splitmix64 chain over
// cfg.Seed, one per shard, mirroring how a single engine derives one seed
// per group.
func (c Config) shardConfigs() []core.Config {
	n := c.shardCount()
	c1 := c.C / c.M // full groups
	c2 := c.C % c.M // processors in the trailing partial group
	trackEta := c.TrackEta || (c1 > 0 && c2 > 0)

	state := uint64(c.Seed)
	out := make([]core.Config, n)
	for i := range out {
		full := c1 / n
		if i < c1%n {
			full++
		}
		procs := full * c.M
		if i == n-1 {
			procs += c2
		}
		out[i] = core.Config{
			M:            c.M,
			C:            procs,
			Seed:         int64(hashing.SplitMix64(&state)),
			TrackLocal:   c.TrackLocal,
			FullyDynamic: c.FullyDynamic,
			TrackEta:     trackEta,
			Workers:      c.Workers,
			Mem:          c.Mem,
		}
	}
	return out
}

// batch is a broadcast update buffer shared read-only by all shards; the
// last shard to release it returns it to the pool. Insert-only streams
// fill it with Del == false events. wholesale marks a batch produced by
// ApplyBatch: shard engines apply it through core.Engine.ApplyBatch (the
// mask-pruned bulk path) instead of the per-event ApplyAll loop.
type batch struct {
	ups       []graph.Update
	wholesale bool
	refs      atomic.Int32
	// acCap is the buffer capacity (in events) last reported to the byte
	// ledger; putBatch reconciles against it so wholesale batches that
	// outgrew their pooled capacity are re-accounted off the hot path.
	acCap int64
}

// barrier asks every shard to report its aggregates (and sampled-edge
// count) at the same stream prefix — or, when states is non-nil, its full
// engine state for a checkpoint. Shards consume their channels in order,
// so everything reported describes exactly the edges broadcast before the
// barrier was enqueued.
type barrier struct {
	aggs    []*core.Aggregates
	sampled []int
	etaSat  []uint64
	states  []*snapshot.EngineState
	// downshift, when positive, asks every shard engine to Downsample by
	// that many halvings at the barrier prefix; errs collects each shard's
	// outcome. The in-band delivery is what makes the adaptation
	// stream-consistent: every shard re-partitions at exactly the same
	// prefix, so estimates stay merge-compatible (equal shift everywhere).
	downshift int
	errs      []error
	// degrees is the degree tracker's table copy at the barrier prefix;
	// nil when degree tracking is off.
	degrees map[graph.NodeID]uint32
	// processed, deleted, and selfLoops are the coordinator tallies
	// captured while the barrier was enqueued (under the ingest mutex),
	// so they match the stream prefix the shard reports describe.
	processed, deleted, selfLoops uint64
	wg                            sync.WaitGroup
}

// msg is one item of a shard ring: either an edge batch or a barrier.
// ticket is the delivery ticket the message was sent under; the WAL
// goroutine uses it as the durability watermark (engine shards ignore
// it — their ordering comes from the ring sequence itself).
type msg struct {
	b      *batch
	bar    *barrier
	ticket uint64
}

// Sharded is a concurrency-safe REPT front end over N engine shards. All
// exported methods except Close may be called from any number of
// goroutines; Add after Close panics with core.ErrClosed.
type Sharded struct {
	cfg      Config
	batchLen int

	engines []*core.Engine
	rings   []*ring
	// degRing feeds the degree tracker goroutine the same batch/barrier
	// sequence as the engine shards; nil when TrackDegrees is off.
	degRing *ring
	// walRing feeds the write-ahead-log goroutine the same sequence; nil
	// until StartWAL. queueLen is kept for sizing it late.
	walRing  *ring
	wal      *walRunner
	queueLen int

	// hubs is the promoted-vertex set the degree tracker maintains once
	// Config.HubDegree is set; nil otherwise. ApplyBatch consults it to
	// decide whether to split an oversized batch. hubDeg caches the
	// threshold.
	hubs   *hubSet
	hubDeg uint32

	// mu guards cur, closed, and delivery-ticket issue. It is the ingest
	// critical section every producer passes through, so no channel send
	// or other blocking operation may run while it is held — a send to a
	// backed-up shard channel under mu would stall every producer behind
	// one slow consumer. Batches detached under mu are delivered through
	// send after unlock, in ticket order; reptvet's lockdiscipline
	// analyzer enforces the no-blocking rule.
	//
	//rept:ingestmu
	mu     sync.Mutex
	cur    *batch
	closed bool
	// seq is the last delivery ticket issued; a detached batch or barrier
	// owns exactly one ticket and send delivers tickets in order, so the
	// channel sequence every consumer sees is identical to the order the
	// critical sections ran in. lastBatch is the latest ticket that
	// belongs to a BATCH (barriers get tickets too): the watermark a
	// durable ingest waits on.
	seq       uint64
	lastBatch uint64

	// sendMu and sendCond serialize deliveries in ticket order. Producers
	// blocked here hold no ingest mutex, so ingestion keeps accepting
	// events while a backed-up shard applies backpressure. sentSeq is the
	// last ticket fully delivered to every consumer channel.
	sendMu   sync.Mutex
	sendCond sync.Cond
	sentSeq  uint64

	// free recycles broadcast batch buffers. A buffered channel rather
	// than a sync.Pool: batches are always released by a shard goroutine
	// and reacquired by a producer — the cross-P handoff pattern where
	// per-P pool caches systematically miss — and the channel makes the
	// steady state deterministically allocation-free. Sized past the
	// maximum number of batches in flight (shard queue depth plus the one
	// being filled and the ones being processed), so releases virtually
	// never find it full; a full free list just drops the batch to the GC.
	free chan *batch
	done sync.WaitGroup

	processed atomic.Uint64
	deleted   atomic.Uint64
	selfLoops atomic.Uint64

	// sampleShift is the coordinator-level cumulative down-shift, advanced
	// by Downsample after every shard adapted; read lock-free by the
	// control plane.
	sampleShift atomic.Int64

	// acct is the optional byte ledger (Config.Mem); nil-safe throughout.
	acct *mem.Accountant

	// obs is the optional pipeline telemetry (Config.Obs); batchEv holds
	// the per-shard last-batch-size gauges, indexed like engines. Both
	// are nil when telemetry is off.
	obs     *obs.Pipeline
	batchEv []*obs.Gauge
}

// New builds a Sharded coordinator and starts its shard goroutines.
func New(cfg Config) (*Sharded, error) {
	return build(cfg, nil, nil)
}

// build constructs the coordinator, restoring each shard engine from the
// corresponding state when restore is non-nil (see Resume). restoreDegrees
// seeds the degree tracker; it is only meaningful with Config.TrackDegrees.
func build(cfg Config, restore []snapshot.EngineState, restoreDegrees map[graph.NodeID]uint32) (*Sharded, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	batchLen := cfg.BatchSize
	if batchLen <= 0 {
		batchLen = defaultBatchLen
	}
	queueLen := cfg.QueueLen
	if queueLen <= 0 {
		queueLen = defaultQueueLen
	}

	sub := cfg.shardConfigs()
	if restore != nil && len(restore) != len(sub) {
		return nil, fmt.Errorf("shard: %d restore states for %d shards", len(restore), len(sub))
	}
	s := &Sharded{
		cfg:      cfg,
		batchLen: batchLen,
		queueLen: queueLen,
		engines:  make([]*core.Engine, len(sub)),
		rings:    make([]*ring, len(sub)),
		acct:     cfg.Mem,
	}
	s.free = make(chan *batch, queueLen+8)
	s.sendCond.L = &s.sendMu
	for i, sc := range sub {
		var eng *core.Engine
		var err error
		if restore != nil {
			eng, err = core.RestoreEngine(sc, &restore[i])
		} else {
			eng, err = core.NewEngine(sc)
		}
		if err != nil {
			for _, prev := range s.engines[:i] {
				prev.Close()
			}
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s.engines[i] = eng
		s.rings[i] = s.newAccountedRing(queueLen)
	}
	// Restored shards carry their snapshot's sample shift; they must agree
	// (they were checkpointed at one barrier) for merged estimates to be
	// well-defined.
	shift := s.engines[0].SampleShift()
	for i, eng := range s.engines[1:] {
		if eng.SampleShift() != shift {
			for _, prev := range s.engines {
				prev.Close()
			}
			return nil, fmt.Errorf("shard: %w: shard %d has sample shift %d, shard 0 has %d", snapshot.ErrCorrupt, i+1, eng.SampleShift(), shift)
		}
	}
	s.sampleShift.Store(int64(shift))
	if cfg.Obs != nil {
		s.obs = cfg.Obs
		s.batchEv = make([]*obs.Gauge, len(s.engines))
		for i := range s.engines {
			lbl := obs.ShardLabel(i)
			r := s.rings[i]
			s.obs.ShardQueueDepth.Func(lbl, func() float64 { return float64(r.Len()) })
			s.batchEv[i] = s.obs.ShardBatchEvents.With(lbl)
			s.engines[i].Instrument(s.obs.ShardApplied.With(lbl))
		}
	}
	if cfg.HubDegree > 0 {
		s.hubs = newHubSet()
		s.hubDeg = uint32(cfg.HubDegree)
	}
	s.cur = s.getBatch()
	s.done.Add(len(s.engines))
	for i := range s.engines {
		go s.run(i)
	}
	if cfg.TrackDegrees {
		s.degRing = s.newAccountedRing(queueLen)
		s.done.Add(1)
		go s.runDegrees(graph.RestoreDegreeTable(restoreDegrees))
	}
	return s, nil
}

// newAccountedRing builds a consumer ring and reports its slot array to
// the byte ledger (ring capacity is fixed for the ring's lifetime, so
// construction is the only accounting moment).
func (s *Sharded) newAccountedRing(capacity int) *ring {
	r := newRing(capacity)
	s.acct.Add(mem.CompRings, int64(len(r.buf))*msgBytes)
	return r
}

// getBatch returns a recycled batch buffer, allocating only when the
// free list is empty (start-up, or bursts beyond the in-flight bound).
// It runs under the ingest mutex; the select is non-blocking.
//
//rept:locksheld
func (s *Sharded) getBatch() *batch {
	select {
	case b := <-s.free:
		return b
	default:
		b := &batch{ups: make([]graph.Update, 0, s.batchLen)}
		b.acCap = int64(cap(b.ups))
		s.acct.Add(mem.CompBatches, b.acCap*updateBytes)
		return b
	}
}

// putBatch recycles a fully released batch buffer, reconciling the
// ledger when the buffer's capacity drifted (wholesale batches append
// past the pooled capacity) and crediting back buffers the full free
// list drops to the GC.
func (s *Sharded) putBatch(b *batch) {
	b.ups = b.ups[:0]
	b.wholesale = false
	if c := int64(cap(b.ups)); c != b.acCap {
		s.acct.Add(mem.CompBatches, (c-b.acCap)*updateBytes)
		b.acCap = c
	}
	select {
	case s.free <- b:
	default: // free list full: let the GC have it
		s.acct.Add(mem.CompBatches, -b.acCap*updateBytes)
	}
}

// runDegrees is the degree tracker goroutine: it consumes the same
// batch/barrier sequence as the engine shards, so the table it copies into
// each barrier describes exactly the barrier's stream prefix.
func (s *Sharded) runDegrees(table *graph.DegreeTable) {
	defer s.done.Done()
	// acBytes is the table footprint last reported to the ledger; map
	// capacity is not observable, so the table is reconciled against its
	// FootprintBytes estimate once per batch instead of hooked at growth.
	var acBytes int64
	for {
		m, ok := s.degRing.pop()
		if !ok {
			return
		}
		if m.bar != nil {
			// Downsample-only barriers skip the table copy: degrees track
			// the full stream and are untouched by resampling.
			if m.bar.aggs != nil || m.bar.states != nil {
				m.bar.degrees = table.Snapshot()
			}
			m.bar.wg.Done()
			continue
		}
		for _, up := range m.b.ups {
			table.ApplyUpdate(up)
			if s.hubs != nil && !up.Del {
				// Promote endpoints crossing the hub threshold. add is
				// idempotent, so the two extra degree lookups per insert are
				// the whole steady-state cost of hub detection.
				if table.Degree(up.U) >= s.hubDeg {
					s.hubs.add(up.U)
				}
				if table.Degree(up.V) >= s.hubDeg {
					s.hubs.add(up.V)
				}
			}
		}
		if fp := table.FootprintBytes(); fp != acBytes {
			s.acct.Add(mem.CompDegrees, fp-acBytes)
			acBytes = fp
		}
		if m.b.refs.Add(-1) == 0 {
			s.putBatch(m.b)
		}
	}
}

// fanout returns the number of broadcast consumers (engine shards plus
// the degree tracker and the WAL goroutine when enabled).
func (s *Sharded) fanout() int {
	n := len(s.rings)
	if s.degRing != nil {
		n++
	}
	if s.walRing != nil {
		n++
	}
	return n
}

// run is the shard goroutine: it drains shard i's ring, feeding edge
// batches to the shard engine and answering barriers in stream order.
// Wholesale batches (ApplyBatch) go through the engine's mask-pruned
// bulk path; dispatcher-accumulated batches keep the per-event loop, so
// the historical per-event ingest behavior is untouched.
func (s *Sharded) run(i int) {
	defer s.done.Done()
	eng := s.engines[i]
	r := s.rings[i]
	for {
		m, ok := r.pop()
		if !ok {
			break
		}
		if m.bar != nil {
			if m.bar.downshift > 0 {
				m.bar.errs[i] = eng.Downsample(m.bar.downshift)
			}
			if m.bar.states != nil {
				m.bar.states[i] = eng.State()
			} else if m.bar.aggs != nil {
				m.bar.aggs[i] = eng.Aggregates()
				m.bar.sampled[i] = eng.SampledEdges()
				m.bar.etaSat[i] = eng.EtaSaturations()
			}
			m.bar.wg.Done()
			continue
		}
		if s.obs != nil {
			start := time.Now()
			s.applyToEngine(eng, m.b)
			d := time.Since(start)
			s.obs.Apply.ObserveDuration(d)
			s.batchEv[i].SetInt(len(m.b.ups))
			s.obs.Flight.Record(obs.KindApply, int32(i), uint64(len(m.b.ups)), d)
		} else {
			s.applyToEngine(eng, m.b)
		}
		if m.b.refs.Add(-1) == 0 {
			s.putBatch(m.b)
		}
	}
	eng.Close()
}

// applyToEngine routes one batch to the right engine entry point.
func (s *Sharded) applyToEngine(eng *core.Engine, b *batch) {
	if b.wholesale {
		eng.ApplyBatch(b.ups)
	} else {
		eng.ApplyAll(b.ups)
	}
}

// Add feeds one stream edge insertion. Safe for concurrent use;
// self-loops are skipped. Add panics with core.ErrClosed after Close.
func (s *Sharded) Add(u, v graph.NodeID) {
	s.apply(graph.Update{U: u, V: v})
}

// Delete feeds one stream edge deletion. It requires Config.FullyDynamic
// and panics with core.ErrNotDynamic otherwise. Safe for concurrent use.
func (s *Sharded) Delete(u, v graph.NodeID) {
	if !s.cfg.FullyDynamic {
		panic(core.ErrNotDynamic)
	}
	s.apply(graph.Update{U: u, V: v, Del: true})
}

// apply appends one event under the ingest mutex; a batch that fills
// detaches inside the critical section and is delivered after unlock.
//
//rept:hotpath
func (s *Sharded) apply(up graph.Update) {
	var (
		ticket uint64
		full   *batch
	)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		panic(core.ErrClosed)
	}
	if up.U == up.V {
		s.selfLoops.Add(1)
		s.mu.Unlock()
		return
	}
	s.cur.ups = append(s.cur.ups, up)
	if len(s.cur.ups) >= s.batchLen {
		ticket, full = s.detachLocked()
	}
	// Counted before the unlock so a concurrent Snapshot can never
	// reflect an event that Processed does not yet count.
	s.processed.Add(1)
	if up.Del {
		s.deleted.Add(1)
	}
	s.mu.Unlock()
	if full != nil {
		s.send(ticket, msg{b: full})
	}
}

// AddAll feeds a slice of stream edge insertions in order under one
// critical section, which is markedly cheaper than per-edge Add for bulk
// callers (the HTTP ingest path batches request bodies through here).
func (s *Sharded) AddAll(edges []graph.Edge) {
	var (
		accepted, loops uint64
		buf             [pendInline]sendItem
	)
	var start time.Time
	if s.obs != nil {
		start = time.Now()
	}
	pend := buf[:0]
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		panic(core.ErrClosed)
	}
	for _, e := range edges {
		if e.U == e.V {
			loops++
			continue
		}
		s.cur.ups = append(s.cur.ups, graph.Update{U: e.U, V: e.V})
		accepted++
		if len(s.cur.ups) >= s.batchLen {
			ticket, b := s.detachLocked()
			pend = append(pend, sendItem{ticket: ticket, m: msg{b: b}})
		}
	}
	s.processed.Add(accepted)
	s.selfLoops.Add(loops)
	s.mu.Unlock()
	s.sendAll(pend)
	if s.obs != nil {
		d := time.Since(start)
		s.obs.Dispatch.ObserveDuration(d)
		s.obs.Flight.Record(obs.KindDispatch, -1, accepted, d)
	}
}

// ApplyAll feeds a slice of signed stream events in order under one
// critical section — the bulk entry point for fully-dynamic streams.
// Deletion events require Config.FullyDynamic (panics with
// core.ErrNotDynamic before touching the batch).
func (s *Sharded) ApplyAll(ups []graph.Update) {
	var (
		accepted, dels, loops uint64
		buf                   [pendInline]sendItem
	)
	var start time.Time
	if s.obs != nil {
		start = time.Now()
	}
	pend := buf[:0]
	if !s.cfg.FullyDynamic {
		for _, up := range ups {
			if up.Del {
				panic(core.ErrNotDynamic)
			}
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		panic(core.ErrClosed)
	}
	for _, up := range ups {
		if up.U == up.V {
			loops++
			continue
		}
		s.cur.ups = append(s.cur.ups, up)
		accepted++
		if up.Del {
			dels++
		}
		if len(s.cur.ups) >= s.batchLen {
			ticket, b := s.detachLocked()
			pend = append(pend, sendItem{ticket: ticket, m: msg{b: b}})
		}
	}
	s.processed.Add(accepted)
	s.deleted.Add(dels)
	s.selfLoops.Add(loops)
	s.mu.Unlock()
	s.sendAll(pend)
	if s.obs != nil {
		d := time.Since(start)
		s.obs.Dispatch.ObserveDuration(d)
		s.obs.Flight.Record(obs.KindDispatch, -1, accepted, d)
	}
}

// ApplyBatch feeds a slice of signed stream events in order as ONE
// wholesale delivery (or a handful of segments, see below): the whole
// batch is copied into a pooled buffer under a single critical section,
// gets a single delivery ticket, travels every ring as a single
// message, and is applied by each shard engine through
// core.Engine.ApplyBatch — the presence-mask fast path that skips
// logical processors provably unable to close a triangle on the event.
// Compared with ApplyAll, the per-event cost of ticket issue, ordered
// delivery, degree tracking hand-off, and barrier bookkeeping is
// divided by the batch length instead of by BatchSize.
//
// Hub-aware routing: with Config.HubDegree set, a batch longer than
// BatchSize that touches at least one promoted (hub) vertex is split
// into BatchSize-long segments, each its own ticket and ring message,
// so the hub's heavy closing-edge work pipelines across the shard
// consumers instead of serializing behind one monolithic apply. The
// split changes delivery granularity only — event order is preserved
// and every shard still sees every event — so results stay
// bit-identical.
//
// Self-loops are skipped (and tallied) like everywhere else. Deletion
// events require Config.FullyDynamic and panic with core.ErrNotDynamic
// before any event is accepted. Safe for concurrent use; panics with
// core.ErrClosed after Close.
func (s *Sharded) ApplyBatch(ups []graph.Update) {
	var (
		accepted, dels, loops uint64
		buf                   [pendInline]sendItem
	)
	var start time.Time
	if s.obs != nil {
		start = time.Now()
	}
	if !s.cfg.FullyDynamic {
		for _, up := range ups {
			if up.Del {
				panic(core.ErrNotDynamic)
			}
		}
	}
	// Segment length: whole batch by default; BatchSize-long slices when
	// the hub splitting policy applies. Decided outside the mutex — the
	// hub set is read lock-free (racy by design: a vertex promoted while
	// we scan may miss this batch's split, which only costs granularity).
	segLen := len(ups)
	if segLen == 0 {
		segLen = 1
	}
	if s.hubs != nil && len(ups) > s.batchLen && s.hubs.containsAny(ups) {
		segLen = s.batchLen
	}
	pend := buf[:0]
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		panic(core.ErrClosed)
	}
	// Earlier per-event Adds may sit in the shared buffer; flush them
	// first so stream order (arrival order of critical sections) holds.
	if len(s.cur.ups) > 0 {
		ticket, b := s.detachLocked()
		pend = append(pend, sendItem{ticket: ticket, m: msg{b: b}})
	}
	var seg *batch
	for _, up := range ups {
		if up.U == up.V {
			loops++
			continue
		}
		if seg == nil {
			seg = s.getBatch()
			seg.wholesale = true
		}
		seg.ups = append(seg.ups, up)
		accepted++
		if up.Del {
			dels++
		}
		if len(seg.ups) >= segLen {
			ticket := s.ticketLocked(seg)
			pend = append(pend, sendItem{ticket: ticket, m: msg{b: seg}})
			seg = nil
		}
	}
	if seg != nil {
		ticket := s.ticketLocked(seg)
		pend = append(pend, sendItem{ticket: ticket, m: msg{b: seg}})
	}
	s.processed.Add(accepted)
	s.deleted.Add(dels)
	s.selfLoops.Add(loops)
	s.mu.Unlock()
	s.sendAll(pend)
	if s.obs != nil {
		d := time.Since(start)
		s.obs.Dispatch.ObserveDuration(d)
		s.obs.Flight.Record(obs.KindDispatch, -1, accepted, d)
	}
}

// ticketLocked issues a delivery ticket for a caller-assembled batch
// (ApplyBatch segments, which never pass through s.cur). Caller holds
// s.mu and guarantees the batch is non-empty.
//
//rept:locksheld
func (s *Sharded) ticketLocked(b *batch) uint64 {
	b.refs.Store(int32(s.fanout()))
	s.seq++
	s.lastBatch = s.seq
	return s.seq
}

// sendItem is one ticketed delivery detached under the ingest mutex and
// pending hand-off to the consumer rings.
type sendItem struct {
	ticket uint64
	m      msg
}

// pendInline sizes the stack buffers that collect detached batches inside
// one critical section; bulk calls that detach more simply spill the
// pending list to the heap.
const pendInline = 8

// detachLocked issues the filled current batch a delivery ticket,
// installs a fresh buffer, and returns the pair for the caller to send
// after unlock. Caller holds s.mu and guarantees the batch is non-empty.
func (s *Sharded) detachLocked() (uint64, *batch) {
	b := s.cur
	b.refs.Store(int32(s.fanout()))
	s.seq++
	s.lastBatch = s.seq
	s.cur = s.getBatch()
	return s.seq, b
}

// send delivers one ticketed message to every consumer ring. Tickets
// are delivered strictly in issue order: the sender of ticket t waits
// until t-1 has been fully delivered, so every consumer sees the exact
// sequence the ingest critical sections produced — and so each ring has
// exactly one active producer at a time, which is the ring's SPSC
// contract. Ring pushes here may block on a backed-up shard (that is
// the backpressure), but the caller holds no ingest mutex, so other
// producers keep appending meanwhile.
func (s *Sharded) send(ticket uint64, m msg) {
	m.ticket = ticket
	var start time.Time
	if s.obs != nil {
		start = time.Now()
	}
	s.sendMu.Lock()
	for s.sentSeq+1 != ticket {
		s.sendCond.Wait()
	}
	for _, r := range s.rings {
		r.push(m)
	}
	if s.degRing != nil {
		s.degRing.push(m)
	}
	if s.walRing != nil {
		s.walRing.push(m)
	}
	s.sentSeq = ticket
	s.sendCond.Broadcast()
	s.sendMu.Unlock()
	if s.obs != nil {
		// Queue wait covers the ordered-delivery wait plus the (possibly
		// backpressured) ring pushes for this ticket.
		s.obs.QueueWait.ObserveSince(start)
		if m.b != nil {
			s.obs.BatchSizes.Observe(uint64(len(m.b.ups)))
		}
	}
}

// sendAll delivers the pending items collected by one critical section.
func (s *Sharded) sendAll(pend []sendItem) {
	for _, it := range pend {
		s.send(it.ticket, it.m)
	}
}

// waitSent blocks until every ticket up to and including ticket has been
// delivered to all consumer channels.
func (s *Sharded) waitSent(ticket uint64) {
	s.sendMu.Lock()
	for s.sentSeq < ticket {
		s.sendCond.Wait()
	}
	s.sendMu.Unlock()
}

// barrier flushes pending edges and enqueues a fresh barrier ticket
// immediately after them, so no later Add can slip between the flush and
// the barrier on any shard: both tickets are issued inside one critical
// section and send delivers tickets in issue order. With wantStates it
// collects full engine states (for checkpoints) instead of aggregates;
// with downshift > 0 it is a downsample barrier — every shard adapts at
// the barrier prefix and reports only its outcome, no aggregates.
func (s *Sharded) barrier(wantStates bool, downshift int) *barrier {
	var buf [2]sendItem
	var start time.Time
	if s.obs != nil {
		start = time.Now()
	}
	pend := buf[:0]
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		panic(core.ErrClosed)
	}
	if len(s.cur.ups) > 0 {
		ticket, b := s.detachLocked()
		pend = append(pend, sendItem{ticket: ticket, m: msg{b: b}})
	}
	bar := &barrier{downshift: downshift}
	if downshift > 0 {
		bar.errs = make([]error, len(s.rings))
	}
	switch {
	case wantStates:
		bar.states = make([]*snapshot.EngineState, len(s.rings))
	case downshift > 0:
		// Adaptation-only: no per-shard report beyond errs.
	default:
		bar.aggs = make([]*core.Aggregates, len(s.rings))
		bar.sampled = make([]int, len(s.rings))
		bar.etaSat = make([]uint64, len(s.rings))
	}
	// The tallies are only mutated under s.mu, so this read is exactly
	// consistent with the prefix ticketed so far: every credited event
	// sits in a batch whose ticket precedes the barrier's.
	bar.processed = s.processed.Load()
	bar.deleted = s.deleted.Load()
	bar.selfLoops = s.selfLoops.Load()
	bar.wg.Add(s.fanout())
	s.seq++
	pend = append(pend, sendItem{ticket: s.seq, m: msg{bar: bar}})
	s.mu.Unlock()
	s.sendAll(pend)
	bar.wg.Wait()
	if s.obs != nil {
		d := time.Since(start)
		s.obs.Barrier.ObserveDuration(d)
		s.obs.Flight.Record(obs.KindBarrier, -1, bar.processed, d)
	}
	return bar
}

// Aggregates drains in-flight edges and merges every shard's counters at
// a single consistent stream prefix. The coordinator stays usable.
func (s *Sharded) Aggregates() *core.Aggregates {
	bar := s.barrier(false, 0)
	agg, err := core.MergeGroups(bar.aggs...)
	if err != nil {
		// shardConfigs guarantees the MergeGroups preconditions (equal M,
		// full groups on all but the last shard), so this is a bug.
		panic(fmt.Sprintf("shard: merge of own shards failed: %v", err))
	}
	return agg
}

// Snapshot drains in-flight edges and returns the merged REPT estimate at
// a consistent stream prefix. Safe for concurrent use with Add; edges
// added while the snapshot is being taken land after it.
func (s *Sharded) Snapshot() core.Estimate {
	return s.Aggregates().Estimate()
}

// SampledEdges reports the total number of edges currently stored across
// all shards' logical processors (expected ≈ C·|E|/M), a memory
// diagnostic. It drains in-flight edges like Snapshot.
func (s *Sharded) SampledEdges() int {
	bar := s.barrier(false, 0)
	total := 0
	for _, n := range bar.sampled {
		total += n
	}
	return total
}

// EtaSaturations reports how many per-edge closing-counter updates were
// clamped at the int32 boundary across all shards (see
// core.Engine.EtaSaturations). It drains in-flight edges like Snapshot.
func (s *Sharded) EtaSaturations() uint64 {
	bar := s.barrier(false, 0)
	var n uint64
	for _, v := range bar.etaSat {
		n += v
	}
	return n
}

// Downsample halves the sampling probability extra more times on every
// shard engine, at one consistent stream prefix: the request travels the
// rings as an in-band barrier, so each shard re-partitions after exactly
// the edges broadcast before the call and merged estimates stay
// well-defined (equal shift on every shard, which MergeGroups enforces).
// See core.Engine.Downsample for the statistical contract. It fails with
// core.ErrEtaDownsample on η-tracking configurations — validated up
// front, before any shard is touched. Safe for concurrent use with
// ingest; events accepted after the call see the tightened filter.
func (s *Sharded) Downsample(extra int) error {
	if extra <= 0 {
		return fmt.Errorf("shard: Downsample(%d): extra must be >= 1", extra)
	}
	c1, c2 := s.cfg.C/s.cfg.M, s.cfg.C%s.cfg.M
	if s.cfg.TrackEta || (c1 > 0 && c2 > 0) {
		return core.ErrEtaDownsample
	}
	bar := s.barrier(false, extra)
	for _, err := range bar.errs {
		if err != nil {
			return err
		}
	}
	s.sampleShift.Add(int64(extra))
	return nil
}

// SampleShift returns the coordinator's cumulative sample down-shift:
// the effective sampling probability is 1/(M·2^shift). Lock-free.
func (s *Sharded) SampleShift() int { return int(s.sampleShift.Load()) }

// Processed returns the number of non-loop events (insertions plus
// deletions) accepted so far. It counts arrivals, including events still
// buffered in flight, and is monotone in stream position.
func (s *Sharded) Processed() uint64 { return s.processed.Load() }

// Deleted returns the number of non-loop deletion events accepted so far
// (always 0 unless Config.FullyDynamic).
func (s *Sharded) Deleted() uint64 { return s.deleted.Load() }

// SelfLoops returns the number of self-loop arrivals skipped.
func (s *Sharded) SelfLoops() uint64 { return s.selfLoops.Load() }

// Shards returns the effective number of engine shards.
func (s *Sharded) Shards() int { return len(s.engines) }

// Close flushes pending edges, stops the shard goroutines, and closes the
// underlying engines. Close is idempotent; any other method called after
// Close panics with core.ErrClosed.
func (s *Sharded) Close() {
	var buf [1]sendItem
	pend := buf[:0]
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if len(s.cur.ups) > 0 {
		ticket, b := s.detachLocked()
		pend = append(pend, sendItem{ticket: ticket, m: msg{b: b}})
	}
	s.closed = true
	last := s.seq
	s.mu.Unlock()
	s.sendAll(pend)
	// closed stops new tickets from being issued, but producers that
	// detached a batch before we flipped it may still be delivering;
	// wait for every issued ticket before closing the rings.
	s.waitSent(last)
	for _, r := range s.rings {
		r.close()
	}
	if s.degRing != nil {
		s.degRing.close()
	}
	if s.walRing != nil {
		// The WAL goroutine group-commits whatever is still appended but
		// unsynced before exiting, so a clean Close loses nothing.
		s.walRing.close()
	}
	s.done.Wait()
}
