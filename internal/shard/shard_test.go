package shard

import (
	"math"
	"sync"
	"testing"

	"rept/internal/core"
	"rept/internal/gen"
	"rept/internal/graph"
)

func testStream(t *testing.T) []graph.Edge {
	t.Helper()
	return gen.Shuffle(gen.ErdosRenyi(200, 3000, 7), 11)
}

func exactTau(t *testing.T, edges []graph.Edge) float64 {
	t.Helper()
	r := graph.CountExact(edges, graph.ExactOptions{})
	return float64(r.Tau)
}

func TestShardConfigsPartition(t *testing.T) {
	cases := []struct {
		cfg   Config
		wantC []int
	}{
		{Config{M: 4, C: 16, Shards: 2, Seed: 1}, []int{8, 8}},
		{Config{M: 4, C: 10, Shards: 3, Seed: 1}, []int{4, 4, 2}},
		{Config{M: 5, C: 3, Shards: 4, Seed: 1}, []int{3}},     // clamped to 1 group
		{Config{M: 2, C: 12, Shards: 0, Seed: 1}, nil},         // default shard count
		{Config{M: 3, C: 10, Shards: 2, Seed: 1}, []int{6, 4}}, // partial group on last
		{Config{M: 1, C: 5, Shards: 2, Seed: 1}, []int{3, 2}},  // M=1 exact mode
	}
	for _, tc := range cases {
		subs := tc.cfg.shardConfigs()
		if tc.wantC != nil {
			if len(subs) != len(tc.wantC) {
				t.Fatalf("cfg %+v: got %d shards, want %d", tc.cfg, len(subs), len(tc.wantC))
			}
			for i, sc := range subs {
				if sc.C != tc.wantC[i] {
					t.Errorf("cfg %+v shard %d: C=%d, want %d", tc.cfg, i, sc.C, tc.wantC[i])
				}
			}
		}
		total := 0
		seeds := make(map[int64]bool)
		for i, sc := range subs {
			total += sc.C
			if sc.M != tc.cfg.M {
				t.Errorf("cfg %+v shard %d: M=%d, want %d", tc.cfg, i, sc.M, tc.cfg.M)
			}
			if i < len(subs)-1 && sc.C%sc.M != 0 {
				t.Errorf("cfg %+v shard %d: C=%d not full groups of M=%d", tc.cfg, i, sc.C, sc.M)
			}
			if seeds[sc.Seed] {
				t.Errorf("cfg %+v shard %d: duplicate seed %d", tc.cfg, i, sc.Seed)
			}
			seeds[sc.Seed] = true
		}
		if total != tc.cfg.C {
			t.Errorf("cfg %+v: shards cover %d processors, want %d", tc.cfg, total, tc.cfg.C)
		}
	}
}

// TestMatchesMergeGroups drives a Sharded coordinator from one goroutine
// and checks its snapshot is bit-identical to feeding the same stream to
// the same per-shard engine configurations and merging by hand. This is
// the determinism-per-shard-seed contract: the concurrent layer adds no
// statistical behavior of its own.
func TestMatchesMergeGroups(t *testing.T) {
	edges := testStream(t)
	for _, cfg := range []Config{
		{M: 3, C: 12, Shards: 3, Seed: 42, TrackLocal: true},
		{M: 4, C: 10, Shards: 3, Seed: 42, TrackLocal: true}, // partial group + η path
		{M: 5, C: 5, Shards: 1, Seed: 42},
	} {
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("New(%+v): %v", cfg, err)
		}
		for _, e := range edges {
			s.Add(e.U, e.V)
		}
		got := s.Snapshot()
		s.Close()

		shards := make([]*core.Aggregates, 0, len(cfg.shardConfigs()))
		for _, sc := range cfg.shardConfigs() {
			eng, err := core.NewEngine(sc)
			if err != nil {
				t.Fatalf("NewEngine(%+v): %v", sc, err)
			}
			eng.AddAll(edges)
			shards = append(shards, eng.Aggregates())
			eng.Close()
		}
		merged, err := core.MergeGroups(shards...)
		if err != nil {
			t.Fatalf("MergeGroups: %v", err)
		}
		want := merged.Estimate()
		if got.Global != want.Global {
			t.Errorf("cfg %+v: sharded Global = %v, hand-merged = %v", cfg, got.Global, want.Global)
		}
		if len(got.Local) != len(want.Local) {
			t.Errorf("cfg %+v: sharded %d local entries, hand-merged %d", cfg, len(got.Local), len(want.Local))
		}
		for v, x := range want.Local {
			if got.Local[v] != x {
				t.Errorf("cfg %+v: Local[%d] = %v, want %v", cfg, v, got.Local[v], x)
			}
		}
	}
}

// TestDeterministic runs the same single-caller stream twice and expects
// identical estimates (hash families are pure functions of the seed).
func TestDeterministic(t *testing.T) {
	edges := testStream(t)
	cfg := Config{M: 4, C: 16, Shards: 4, Seed: 9, TrackLocal: true}
	run := func() core.Estimate {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		s.AddAll(edges)
		return s.Snapshot()
	}
	a, b := run(), run()
	if a.Global != b.Global {
		t.Errorf("two identical runs disagree: %v vs %v", a.Global, b.Global)
	}
}

// TestConcurrentIngestAccuracy feeds the stream from 8 goroutines under
// the race detector and checks the merged estimate lands within a loose
// envelope of the exact count (theoretical stderr is well under 1% here,
// the 10% tolerance covers every interleaving).
func TestConcurrentIngestAccuracy(t *testing.T) {
	edges := testStream(t)
	tau := exactTau(t, edges)
	s, err := New(Config{M: 4, C: 64, Shards: 4, Seed: 5, BatchSize: 64, QueueLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const producers = 8
	var wg sync.WaitGroup
	chunk := (len(edges) + producers - 1) / producers
	for p := 0; p < producers; p++ {
		lo := p * chunk
		hi := lo + chunk
		if hi > len(edges) {
			hi = len(edges)
		}
		wg.Add(1)
		go func(part []graph.Edge) {
			defer wg.Done()
			for _, e := range part {
				s.Add(e.U, e.V)
			}
		}(edges[lo:hi])
	}
	wg.Wait()

	if got := s.Processed(); got != uint64(len(edges)) {
		t.Fatalf("Processed = %d, want %d", got, len(edges))
	}
	est := s.Snapshot()
	if rel := math.Abs(est.Global-tau) / tau; rel > 0.10 {
		t.Errorf("Global = %v, exact = %v, relative error %.3f > 0.10", est.Global, tau, rel)
	}
	if s.SampledEdges() == 0 {
		t.Error("SampledEdges = 0 after ingesting a dense stream")
	}
}

// TestSnapshotMidStream interleaves snapshots with concurrent ingestion:
// snapshots must be monotone in stream position and never disturb later
// estimates.
func TestSnapshotMidStream(t *testing.T) {
	edges := testStream(t)
	s, err := New(Config{M: 4, C: 32, Shards: 2, Seed: 3, BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.AddAll(edges)
	}()
	for i := 0; i < 5; i++ {
		_ = s.Snapshot() // must not race or deadlock
	}
	wg.Wait()

	tau := exactTau(t, edges)
	est := s.Snapshot()
	if rel := math.Abs(est.Global-tau) / tau; rel > 0.15 {
		t.Errorf("post-stream Global = %v, exact = %v, relative error %.3f", est.Global, tau, rel)
	}
}

func TestSelfLoopsSkipped(t *testing.T) {
	s, err := New(Config{M: 2, C: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Add(3, 3)
	s.AddAll([]graph.Edge{{U: 1, V: 1}, {U: 1, V: 2}})
	if got := s.SelfLoops(); got != 2 {
		t.Errorf("SelfLoops = %d, want 2", got)
	}
	if got := s.Processed(); got != 1 {
		t.Errorf("Processed = %d, want 1", got)
	}
}

// TestCloseContract covers the documented panic-after-Close behavior and
// idempotent Close.
func TestCloseContract(t *testing.T) {
	s, err := New(Config{M: 2, C: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Add(1, 2)
	s.Close()
	s.Close() // idempotent

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if r := recover(); r == nil {
				t.Errorf("%s after Close did not panic", name)
			} else if r != core.ErrClosed {
				t.Errorf("%s after Close panicked with %v, want core.ErrClosed", name, r)
			}
		}()
		f()
	}
	mustPanic("Add", func() { s.Add(1, 2) })
	mustPanic("AddAll", func() { s.AddAll([]graph.Edge{{U: 1, V: 2}}) })
	mustPanic("Snapshot", func() { s.Snapshot() })
}

func TestConfigValidate(t *testing.T) {
	for _, cfg := range []Config{
		{M: 0, C: 4},
		{M: 2, C: 0},
		{M: core.MaxM + 1, C: 4},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) succeeded, want error", cfg)
		}
	}
}
