package shard

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"rept/internal/gen"
	"rept/internal/graph"
	"rept/internal/wal"
)

// newDurable stands a coordinator up on a WAL directory the way the
// public layer does: recover, restore the checkpoint (if any), replay
// the tail into the engines, then attach the log. It returns the
// coordinator and its log.
func newDurable(t *testing.T, cfg Config, be wal.Backend, interval time.Duration, opt wal.Options) (*Sharded, *wal.Log) {
	t.Helper()
	rec, err := wal.Recover(be, cfg.FingerprintHash())
	if err != nil {
		t.Fatal(err)
	}
	var s *Sharded
	if rec.Snapshot != nil {
		s, err = Resume(cfg, bytes.NewReader(rec.Snapshot))
	} else {
		s, err = New(cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	pos, err := rec.Replay(s.Position(), func(ups []graph.Update) error {
		s.ApplyAll(ups)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Position(); got != pos {
		t.Fatalf("replayed coordinator at position %d, log ends at %d", got, pos)
	}
	lg, err := rec.Log(opt)
	if err != nil {
		t.Fatal(err)
	}
	s.StartWAL(lg, interval)
	return s, lg
}

// durableTestConfig keeps the tests fast but multi-shard.
func durableTestConfig() Config {
	return Config{
		M: 3, C: 6, Shards: 2, Seed: 17,
		TrackLocal: true, FullyDynamic: true, TrackDegrees: true,
		BatchSize: 64, QueueLen: 4,
	}
}

// testStream builds a loop-free fully-dynamic stream (self-loops are
// deliberately absent: they are not logged, and these tests compare
// snapshots bit for bit).
func walStream(n int) []graph.Update {
	base := gen.Shuffle(gen.HolmeKim(400, 6, 0.4, 9), 4)
	ups := make([]graph.Update, 0, n)
	for len(ups) < n {
		k := len(ups) % len(base)
		e := base[k]
		ups = append(ups, graph.Update{U: e.U, V: e.V})
		if len(ups) < n && k%3 == 2 {
			ups = append(ups, graph.Update{U: e.U, V: e.V, Del: true})
		}
	}
	return ups[:n]
}

// snapshotBytes checkpoints s to a buffer.
func snapshotBytes(t *testing.T, s *Sharded) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// referenceBytes feeds exactly ups into a fresh coordinator and returns
// its snapshot — the hand-replayed reference durable recovery must match
// bit for bit.
func referenceBytes(t *testing.T, cfg Config, ups []graph.Update) []byte {
	t.Helper()
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	ref.ApplyAll(ups)
	return snapshotBytes(t, ref)
}

func TestDurableIngestCrashRecoveryBitForBit(t *testing.T) {
	cfg := durableTestConfig()
	be := wal.NewMemBackend()
	s, _ := newDurable(t, cfg, be, 0, wal.Options{SegmentBytes: 2048})

	ups := walStream(3000)
	var acked uint64
	for i := 0; i < len(ups); i += 100 {
		end := min(i+100, len(ups))
		if err := s.ApplyAllDurable(ups[i:end]); err != nil {
			t.Fatal(err)
		}
		acked += uint64(end - i)
		if i == 1500 {
			// Crash mid-stream: everything acknowledged so far must
			// survive; the estimator keeps running on dead storage (its
			// memory state is fine) but stops acknowledging.
			be.Crash()
			break
		}
	}
	s.Close()

	s2, _ := newDurable(t, cfg, be, 0, wal.Options{SegmentBytes: 2048})
	defer s2.Close()
	pos := s2.Position()
	if pos < acked {
		t.Fatalf("recovered position %d < acknowledged %d: acknowledged events lost", pos, acked)
	}
	got := snapshotBytes(t, s2)
	want := referenceBytes(t, cfg, ups[:pos])
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered snapshot differs from reference fed the same %d-event prefix", pos)
	}
}

func TestDurableRecoveryWithCompaction(t *testing.T) {
	cfg := durableTestConfig()
	be := wal.NewMemBackend()
	s, lg := newDurable(t, cfg, be, 0, wal.Options{SegmentBytes: 1024})

	ups := walStream(2000)
	if err := s.ApplyAllDurable(ups[:1200]); err != nil {
		t.Fatal(err)
	}
	// Fold the prefix into a checkpoint, then keep ingesting.
	if err := lg.Compact(s.WriteSnapshotPos); err != nil {
		t.Fatal(err)
	}
	if st := lg.Stats(); st.CheckpointPos != 1200 {
		t.Fatalf("checkpoint covers %d, want 1200", st.CheckpointPos)
	}
	if err := s.ApplyAllDurable(ups[1200:]); err != nil {
		t.Fatal(err)
	}
	be.Crash()
	s.Close()

	s2, _ := newDurable(t, cfg, be, 0, wal.Options{SegmentBytes: 1024})
	defer s2.Close()
	if pos := s2.Position(); pos != 2000 {
		t.Fatalf("recovered position %d, want 2000", pos)
	}
	got := snapshotBytes(t, s2)
	want := referenceBytes(t, cfg, ups)
	if !bytes.Equal(got, want) {
		t.Fatal("snapshot+tail recovery differs from reference")
	}
}

func TestDurableIngestRefusesAfterSyncFailure(t *testing.T) {
	cfg := durableTestConfig()
	be := wal.NewMemBackend()
	s, lg := newDurable(t, cfg, be, 0, wal.Options{})
	defer s.Close()

	ups := walStream(300)
	if err := s.ApplyAllDurable(ups[:100]); err != nil {
		t.Fatal(err)
	}
	be.FailSync(1)
	if err := s.ApplyAllDurable(ups[100:200]); !errors.Is(err, wal.ErrInjected) {
		t.Fatalf("durable ingest under failed sync: %v, want ErrInjected", err)
	}
	// The failure is sticky: later calls must refuse too, and the
	// durable position must not move.
	if err := s.ApplyAllDurable(ups[200:]); !errors.Is(err, wal.ErrInjected) {
		t.Fatalf("durable ingest after failed sync: %v, want sticky ErrInjected", err)
	}
	if st := lg.Stats(); st.DurablePos != 100 {
		t.Fatalf("durable position %d after failed sync, want 100", st.DurablePos)
	}
	if !lg.Stats().Failed {
		t.Fatal("log stats do not report the failure")
	}
}

func TestDurableIntervalModeAcksOnAppend(t *testing.T) {
	cfg := durableTestConfig()
	be := wal.NewMemBackend()
	// An hour-long interval: no sync will happen during the test, so a
	// nil return proves acknowledgment keys on append, and Close proves
	// the final group commit.
	s, lg := newDurable(t, cfg, be, time.Hour, wal.Options{})

	ups := walStream(500)
	if err := s.ApplyAllDurable(ups); err != nil {
		t.Fatal(err)
	}
	st := lg.Stats()
	if st.AppendedPos != 500 {
		t.Fatalf("appended position %d, want 500", st.AppendedPos)
	}
	if st.DurablePos != 0 {
		t.Fatalf("durable position %d before any sync, want 0", st.DurablePos)
	}
	s.Close()
	if st := lg.Stats(); st.DurablePos != 500 {
		t.Fatalf("durable position %d after Close, want 500 (shutdown group commit)", st.DurablePos)
	}
}

func TestDurableFallsBackWithoutWAL(t *testing.T) {
	s, err := New(durableTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ApplyAllDurable(walStream(100)); err != nil {
		t.Fatal(err)
	}
	if got := s.Position(); got != 100 {
		t.Fatalf("position %d, want 100", got)
	}
}

// TestWALAppendSteadyStateZeroAlloc gates the durable ingest path end to
// end: with the batch free list and the log's record buffer warm, an
// ApplyAllDurable block sized exactly to the batch length — so every
// call detaches one full batch, the WAL goroutine appends it, syncs, and
// releases the waiter — must not allocate on any goroutine, including
// the logger (AllocsPerRun counts them all). The log writes through the
// real disk backend, so the measured path includes the fsync.
func TestWALAppendSteadyStateZeroAlloc(t *testing.T) {
	const batchLen = 256
	be, err := wal.NewDiskBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		M: 2, C: 4, Seed: 7,
		FullyDynamic: true, TrackDegrees: true,
		BatchSize: batchLen, QueueLen: 4,
	}
	s, _ := newDurable(t, cfg, be, 0, wal.Options{})
	defer s.Close()

	base := gen.Shuffle(gen.HolmeKim(300, 6, 0.4, 5), 2)
	s.AddAll(base)

	slice := base[:batchLen/2]
	block := make([]graph.Update, 0, batchLen)
	for i := len(slice) - 1; i >= 0; i-- {
		block = append(block, graph.Update{U: slice[i].U, V: slice[i].V, Del: true})
	}
	for _, ed := range slice {
		block = append(block, graph.Update{U: ed.U, V: ed.V})
	}

	for i := 0; i < 64; i++ {
		if err := s.ApplyAllDurable(block); err != nil {
			t.Fatal(err)
		}
	}

	allocs := testing.AllocsPerRun(100, func() {
		if err := s.ApplyAllDurable(block); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state durable ingest allocates %.1f per %d-event batch, want 0", allocs, len(block))
	}
}
