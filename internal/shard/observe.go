package shard

import (
	"fmt"

	"rept/internal/core"
	"rept/internal/graph"
)

// Observation is everything a read-side consumer can learn from ONE
// barrier: the merged estimate, the degree table (when tracked), the
// sampled-edge total, and the coordinator tallies — all describing exactly
// the same stream prefix. It is the input the epoch-view publisher
// (internal/query) materializes views from; taking one Observation instead
// of separate Snapshot/SampledEdges/Processed calls both halves the
// barrier count and removes the torn-read window between them.
type Observation struct {
	// Estimate is the merged REPT estimate at the barrier prefix.
	Estimate core.Estimate
	// Degrees maps nodes to their stream degree at the same prefix; nil
	// unless Config.TrackDegrees. The map is a private copy: the caller
	// may keep it indefinitely.
	Degrees map[graph.NodeID]uint32
	// SampledEdges is the total number of edges stored across all shards'
	// logical processors at the prefix.
	SampledEdges int
	// EtaSaturations counts per-edge closing-counter updates clamped at
	// the int32 boundary across all shards (0 on every realistic stream;
	// non-zero flags an adversarially hot edge whose η̂ contribution is a
	// bounded under-estimate).
	EtaSaturations uint64
	// Processed, Deleted, and SelfLoops are the coordinator tallies at
	// the prefix (Processed counts insertions plus deletions; Deleted the
	// deletions alone).
	Processed, Deleted, SelfLoops uint64
}

// Observe drains in-flight edges and returns a barrier-consistent
// Observation. Safe for concurrent use with Add; edges added while the
// barrier is taken land after it. Like every non-Close method, Observe
// panics with core.ErrClosed after Close. The aggregation must not
// depend on iteration order — two Observations at the same barrier
// prefix must be identical.
//
//rept:deterministic
func (s *Sharded) Observe() Observation {
	bar := s.barrier(false, 0)
	agg, err := core.MergeGroups(bar.aggs...)
	if err != nil {
		// shardConfigs guarantees the MergeGroups preconditions, so this
		// is a bug, exactly as in Aggregates.
		panic(fmt.Sprintf("shard: merge of own shards failed: %v", err))
	}
	total := 0
	for _, n := range bar.sampled {
		total += n
	}
	var sat uint64
	for _, n := range bar.etaSat {
		sat += n
	}
	return Observation{
		Estimate:       agg.Estimate(),
		Degrees:        bar.degrees,
		SampledEdges:   total,
		EtaSaturations: sat,
		Processed:      bar.processed,
		Deleted:        bar.deleted,
		SelfLoops:      bar.selfLoops,
	}
}
