package shard

import (
	"sync"
	"testing"
	"time"
)

// TestRingOrderAndCapacity: FIFO order is preserved and the rounded-up
// power-of-two capacity holds exactly that many messages before a push
// would block.
func TestRingOrderAndCapacity(t *testing.T) {
	r := newRing(5) // rounds up to 8
	if got := len(r.buf); got != 8 {
		t.Fatalf("capacity = %d, want 8 (5 rounded up)", got)
	}
	for i := uint64(1); i <= 8; i++ {
		if !r.push(msg{ticket: i}) {
			t.Fatalf("push %d refused on an open ring", i)
		}
	}
	if got := r.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
	for i := uint64(1); i <= 8; i++ {
		m, ok := r.tryPop()
		if !ok || m.ticket != i {
			t.Fatalf("pop %d = (%d, %v), want in-order ticket", i, m.ticket, ok)
		}
	}
	if _, ok := r.tryPop(); ok {
		t.Fatal("tryPop returned a message from an empty ring")
	}
}

// TestRingBackpressure: a push against a full ring blocks until the
// consumer frees a slot — the producer must neither drop the message nor
// return early.
func TestRingBackpressure(t *testing.T) {
	r := newRing(2)
	r.push(msg{ticket: 1})
	r.push(msg{ticket: 2})

	pushed := make(chan bool)
	go func() {
		pushed <- r.push(msg{ticket: 3}) // full: must block
	}()
	select {
	case <-pushed:
		t.Fatal("push into a full ring returned before a pop freed a slot")
	case <-time.After(20 * time.Millisecond):
	}
	if m, ok := r.pop(); !ok || m.ticket != 1 {
		t.Fatalf("pop = (%d, %v), want ticket 1", m.ticket, ok)
	}
	select {
	case ok := <-pushed:
		if !ok {
			t.Fatal("blocked push reported the ring closed")
		}
	case <-time.After(time.Second):
		t.Fatal("push still blocked after a slot was freed")
	}
	for _, want := range []uint64{2, 3} {
		if m, ok := r.pop(); !ok || m.ticket != want {
			t.Fatalf("pop = (%d, %v), want ticket %d", m.ticket, ok, want)
		}
	}
}

// TestRingCloseDrains: messages pushed before close stay poppable —
// close-then-drain matches ranging over a closed channel — and both
// sides observe the closed state afterwards.
func TestRingCloseDrains(t *testing.T) {
	r := newRing(4)
	r.push(msg{ticket: 1})
	r.push(msg{ticket: 2})
	r.close()
	if r.push(msg{ticket: 3}) {
		t.Fatal("push succeeded on a closed ring")
	}
	for _, want := range []uint64{1, 2} {
		m, ok := r.pop()
		if !ok || m.ticket != want {
			t.Fatalf("pop after close = (%d, %v), want ticket %d", m.ticket, ok, want)
		}
	}
	if _, ok := r.pop(); ok {
		t.Fatal("pop returned a message from a closed drained ring")
	}
}

// TestRingCloseUnblocksConsumer: a consumer parked on an empty ring must
// return promptly when the ring closes — shutdown must not hang on a
// sleeping shard goroutine.
func TestRingCloseUnblocksConsumer(t *testing.T) {
	r := newRing(4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok := r.pop(); ok {
			t.Error("pop on an empty closed ring reported a message")
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the consumer park
	r.close()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("consumer still parked after close")
	}
}

// TestRingPopTimeout: popTimeout must report a timeout on an idle open
// ring (the WAL group-commit tick), deliver a message that arrives
// before the deadline, and report closed-and-drained like pop.
func TestRingPopTimeout(t *testing.T) {
	r := newRing(4)
	start := time.Now()
	if _, ok, timedOut := r.popTimeout(15 * time.Millisecond); ok || !timedOut {
		t.Fatalf("popTimeout on idle ring = (ok=%v, timedOut=%v), want timeout", ok, timedOut)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("popTimeout returned before the deadline")
	}

	go func() {
		time.Sleep(5 * time.Millisecond)
		r.push(msg{ticket: 7})
	}()
	m, ok, timedOut := r.popTimeout(2 * time.Second)
	if !ok || timedOut || m.ticket != 7 {
		t.Fatalf("popTimeout = (%d, ok=%v, timedOut=%v), want ticket 7", m.ticket, ok, timedOut)
	}

	r.close()
	if _, ok, timedOut := r.popTimeout(time.Second); ok || timedOut {
		t.Fatalf("popTimeout on closed ring = (ok=%v, timedOut=%v), want drained-closed", ok, timedOut)
	}
}

// TestRingSPSCStress drives one producer against one consumer through a
// tiny ring under the race detector: every ticket must arrive exactly
// once, in order, exercising the park/wake paths on both sides.
func TestRingSPSCStress(t *testing.T) {
	const n = 100000
	r := newRing(2) // tiny: maximizes full/empty transitions
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); i <= n; i++ {
			if !r.push(msg{ticket: i}) {
				t.Error("push refused mid-stream")
				return
			}
		}
		r.close()
	}()
	var got uint64
	for {
		m, ok := r.pop()
		if !ok {
			break
		}
		if m.ticket != got+1 {
			t.Fatalf("ticket %d out of order after %d", m.ticket, got)
		}
		got = m.ticket
	}
	wg.Wait()
	if got != n {
		t.Fatalf("consumed %d tickets, want %d", got, n)
	}
}
