package shard

import (
	"fmt"
	"io"

	"rept/internal/snapshot"
)

// fingerprint returns the coordinator-level statistical identity. Shards,
// Workers, BatchSize, and QueueLen are execution details — but note that
// the *effective* shard count does shape per-shard hash seeds, so it is
// carried separately in the snapshot (ShardedState.ShardCount) and
// enforced on restore.
func (c Config) fingerprint() snapshot.Fingerprint {
	return snapshot.Fingerprint{
		M:            c.M,
		C:            c.C,
		Seed:         c.Seed,
		TrackLocal:   c.TrackLocal,
		TrackEta:     c.TrackEta,
		FullyDynamic: c.FullyDynamic,
	}
}

// WriteSnapshot checkpoints every shard barrier-consistently into one
// multi-shard snapshot: all engine states describe exactly the same
// stream prefix, as do the processed/self-loop tallies. Safe for
// concurrent use with Add; the coordinator keeps ingesting afterwards
// (edges added while the checkpoint is being taken land after it).
func (s *Sharded) WriteSnapshot(w io.Writer) error {
	_, err := s.WriteSnapshotPos(w)
	return err
}

// WriteSnapshotPos is WriteSnapshot, additionally reporting the stream
// position (the snapshot's Processed tally) the checkpoint covers — the
// quantity WAL compaction needs to decide which sealed segments the
// checkpoint makes redundant.
func (s *Sharded) WriteSnapshotPos(w io.Writer) (uint64, error) {
	bar := s.barrier(true, 0)
	st := &snapshot.ShardedState{
		Fingerprint:  s.cfg.fingerprint(),
		ShardCount:   len(s.engines),
		Processed:    bar.processed,
		Deleted:      bar.deleted,
		SelfLoops:    bar.selfLoops,
		TrackDegrees: s.cfg.TrackDegrees,
		Degrees:      bar.degrees,
		Shards:       make([]snapshot.EngineState, len(bar.states)),
	}
	for i, es := range bar.states {
		st.Shards[i] = *es
	}
	return bar.processed, snapshot.WriteSharded(w, st)
}

// Resume reads a multi-shard snapshot from r and restores it into a new
// coordinator built for cfg. The snapshot's coordinator fingerprint must
// match cfg (M, C, Seed, TrackLocal, TrackEta) and its shard count must
// equal the count cfg implies — per-shard hash seeds derive from (Seed,
// shard index), so restoring under a different split would silently
// change the estimator's statistics. Mismatches are rejected with an
// error wrapping snapshot.ErrMismatch; each shard's own fingerprint is
// additionally verified against the derived per-shard configuration.
func Resume(cfg Config, r io.Reader) (*Sharded, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st, err := snapshot.ReadSharded(r)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	if err := st.Fingerprint.Match(cfg.fingerprint()); err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	if want := cfg.shardCount(); st.ShardCount != want {
		return nil, fmt.Errorf("shard: %w: snapshot has %d shards, config implies %d (set Config.Shards to match)", snapshot.ErrMismatch, st.ShardCount, want)
	}
	// The degree table is part of the restore contract like the
	// fingerprint fields: silently dropping it would break clustering
	// coefficients, silently starting one empty would corrupt them.
	if st.TrackDegrees != cfg.TrackDegrees {
		return nil, fmt.Errorf("shard: %w: TrackDegrees = %v in snapshot, %v in config", snapshot.ErrMismatch, st.TrackDegrees, cfg.TrackDegrees)
	}
	s, err := build(cfg, st.Shards, st.Degrees)
	if err != nil {
		return nil, err
	}
	s.processed.Store(st.Processed)
	s.deleted.Store(st.Deleted)
	s.selfLoops.Store(st.SelfLoops)
	return s, nil
}
