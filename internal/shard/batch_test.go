package shard

import (
	"bytes"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rept/internal/core"
	"rept/internal/gen"
	"rept/internal/graph"
)

// signedStream builds a signed event stream with interleaved deletions:
// the shuffled edge list with every fourth edge deleted again a while
// after its insertion.
func signedStream(t *testing.T) []graph.Update {
	t.Helper()
	edges := gen.Shuffle(gen.HolmeKim(300, 6, 0.4, 13), 3)
	ups := make([]graph.Update, 0, len(edges)+len(edges)/4)
	for i, e := range edges {
		ups = append(ups, graph.Update{U: e.U, V: e.V})
		if i >= 40 && i%4 == 0 {
			d := edges[i-40]
			ups = append(ups, graph.Update{U: d.U, V: d.V, Del: true})
		}
	}
	return ups
}

// TestApplyBatchMatchesApplyAll is the wholesale-path determinism
// contract: one ApplyBatch call, the chunked ApplyAll path, the
// per-event apply loop, and hand-driven per-shard engines merged with
// MergeGroups must all land on bit-identical aggregates. The batch path
// goes through core.Engine.ApplyBatch's presence-mask pruning, so this
// is also the proof the mask skip visits every processor that matters.
func TestApplyBatchMatchesApplyAll(t *testing.T) {
	ups := signedStream(t)
	for _, cfg := range []Config{
		{M: 3, C: 12, Shards: 3, Seed: 42, TrackLocal: true, FullyDynamic: true},
		{M: 4, C: 10, Shards: 3, Seed: 42, TrackLocal: true, TrackEta: true, FullyDynamic: true}, // partial group + η
		{M: 5, C: 5, Shards: 1, Seed: 42, FullyDynamic: true},
		{M: 2, C: 70, Shards: 2, Seed: 42, FullyDynamic: true}, // > 64 procs per coordinator, mask path off on wide shards
	} {
		run := func(feed func(*Sharded)) *core.Aggregates {
			s, err := New(cfg)
			if err != nil {
				t.Fatalf("New(%+v): %v", cfg, err)
			}
			defer s.Close()
			feed(s)
			return s.Aggregates()
		}
		batch := run(func(s *Sharded) { s.ApplyBatch(ups) })
		chunked := run(func(s *Sharded) { s.ApplyAll(ups) })
		perEvent := run(func(s *Sharded) {
			for _, up := range ups {
				if up.Del {
					s.Delete(up.U, up.V)
				} else {
					s.Add(up.U, up.V)
				}
			}
		})

		merged := make([]*core.Aggregates, 0, len(cfg.shardConfigs()))
		for _, sc := range cfg.shardConfigs() {
			eng, err := core.NewEngine(sc)
			if err != nil {
				t.Fatalf("NewEngine(%+v): %v", sc, err)
			}
			eng.ApplyAll(ups)
			merged = append(merged, eng.Aggregates())
			eng.Close()
		}
		hand, err := core.MergeGroups(merged...)
		if err != nil {
			t.Fatalf("MergeGroups: %v", err)
		}

		if !reflect.DeepEqual(batch, chunked) {
			t.Errorf("cfg %+v: ApplyBatch aggregates diverge from ApplyAll", cfg)
		}
		if !reflect.DeepEqual(batch, perEvent) {
			t.Errorf("cfg %+v: ApplyBatch aggregates diverge from per-event apply", cfg)
		}
		if !reflect.DeepEqual(batch, hand) {
			t.Errorf("cfg %+v: ApplyBatch aggregates diverge from hand-merged engines", cfg)
		}
	}
}

// TestApplyBatchHubSplitBitIdentical: hub-aware splitting is an
// execution detail — estimates with HubDegree set (and hubs actually
// promoted by the degree tracker) must be bit-identical to the same
// stream with splitting off, whether delivered as one giant batch or
// many. A tiny BatchSize plus a tiny hub threshold forces real splits.
func TestApplyBatchHubSplitBitIdentical(t *testing.T) {
	ups := signedStream(t)
	base := Config{M: 3, C: 12, Shards: 3, Seed: 7, TrackLocal: true,
		FullyDynamic: true, TrackDegrees: true, BatchSize: 64}
	split := base
	split.HubDegree = 4 // HolmeKim hubs blow far past this

	run := func(cfg Config) *core.Aggregates {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		// First half primes the degree table (and thereby the hub set);
		// a snapshot barrier makes the promotions visible before the
		// second half arrives as one oversized batch.
		s.ApplyBatch(ups[:len(ups)/2])
		_ = s.Snapshot()
		s.ApplyBatch(ups[len(ups)/2:])
		return s.Aggregates()
	}
	plain := run(base)
	hubbed := run(split)
	if !reflect.DeepEqual(plain, hubbed) {
		t.Error("hub splitting changed the aggregates; it must be granularity only")
	}
}

// TestApplyBatchSaturatedProducers hammers ApplyBatch from several
// goroutines through deliberately tiny rings, so producers repeatedly
// hit ring backpressure and park, and checks nothing is lost or doubled.
func TestApplyBatchSaturatedProducers(t *testing.T) {
	ups := signedStream(t)
	s, err := New(Config{M: 2, C: 8, Shards: 4, Seed: 5,
		FullyDynamic: true, BatchSize: 16, QueueLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const producers = 4
	var wg sync.WaitGroup
	per := (len(ups) + producers - 1) / producers
	for p := 0; p < producers; p++ {
		lo := p * per
		hi := min(lo+per, len(ups))
		wg.Add(1)
		go func(part []graph.Update) {
			defer wg.Done()
			// Many small batches: each delivery competes for 1-deep rings.
			for i := 0; i < len(part); i += 32 {
				s.ApplyBatch(part[i:min(i+32, len(part))])
			}
		}(ups[lo:hi])
	}
	wg.Wait()

	var want, dels uint64
	for _, up := range ups {
		if up.U == up.V {
			continue
		}
		want++
		if up.Del {
			dels++
		}
	}
	if got := s.Processed(); got != want {
		t.Errorf("Processed = %d, want %d", got, want)
	}
	if got := s.Deleted(); got != dels {
		t.Errorf("Deleted = %d, want %d", got, dels)
	}
}

// TestCloseDuringApplyBatch races Close against in-flight ApplyBatch
// callers: each call must either complete fully (its events counted) or
// panic with core.ErrClosed having accepted nothing — and nothing may
// deadlock, since Close waits for every issued ticket.
func TestCloseDuringApplyBatch(t *testing.T) {
	ups := signedStream(t)
	s, err := New(Config{M: 2, C: 8, Shards: 2, Seed: 3,
		FullyDynamic: true, QueueLen: 2})
	if err != nil {
		t.Fatal(err)
	}

	var accepted atomic.Uint64
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < len(ups); i += 64 {
				part := ups[i:min(i+64, len(ups))]
				ok := func() (ok bool) {
					defer func() {
						if r := recover(); r != nil {
							if r != core.ErrClosed {
								t.Errorf("ApplyBatch panicked with %v, want core.ErrClosed", r)
							}
							ok = false
						}
					}()
					s.ApplyBatch(part)
					return true
				}()
				if !ok {
					return
				}
				var n uint64
				for _, up := range part {
					if up.U != up.V {
						n++
					}
				}
				accepted.Add(n)
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	s.Close()
	wg.Wait()

	if got := s.Processed(); got != accepted.Load() {
		t.Errorf("Processed = %d, but completed calls accepted %d", got, accepted.Load())
	}
}

// TestApplyBatchSnapshotRoundTrip: a snapshot taken after wholesale
// ingest restores into a coordinator whose aggregates are bit-identical
// and which keeps agreeing with the original on a suffix fed through
// ApplyBatch (the restored engines must rebuild their presence masks).
func TestApplyBatchSnapshotRoundTrip(t *testing.T) {
	ups := signedStream(t)
	half := len(ups) / 2
	cfg := Config{M: 3, C: 12, Shards: 3, Seed: 9, TrackLocal: true, FullyDynamic: true}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.ApplyBatch(ups[:half])

	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Resume(cfg, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !reflect.DeepEqual(s.Aggregates(), r.Aggregates()) {
		t.Fatal("restored aggregates diverge")
	}
	s.ApplyBatch(ups[half:])
	r.ApplyBatch(ups[half:])
	if !reflect.DeepEqual(s.Aggregates(), r.Aggregates()) {
		t.Error("restored coordinator diverges on a wholesale suffix")
	}
}

// TestApplyBatchSteadyStateZeroAlloc gates the wholesale producer path:
// with the free list and engine working sets warm, an ApplyBatch churn
// block must cost 0 allocs/op across every goroutine — the copy into
// the pooled segment, the ring hand-off, and the engines' mask-pruned
// applies all reuse standing memory.
func TestApplyBatchSteadyStateZeroAlloc(t *testing.T) {
	s, err := New(Config{
		M: 2, C: 4, Seed: 7,
		FullyDynamic: true, TrackDegrees: true,
		BatchSize: 256, QueueLen: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	base := gen.Shuffle(gen.HolmeKim(300, 6, 0.4, 5), 2)
	s.AddAll(base)

	slice := base[:128]
	block := make([]graph.Update, 0, 256)
	for i := len(slice) - 1; i >= 0; i-- {
		block = append(block, graph.Update{U: slice[i].U, V: slice[i].V, Del: true})
	}
	for _, ed := range slice {
		block = append(block, graph.Update{U: ed.U, V: ed.V})
	}

	for i := 0; i < 64; i++ {
		s.ApplyBatch(block)
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.ApplyBatch(block)
	})
	if allocs != 0 {
		t.Errorf("steady-state ApplyBatch allocates %.1f per %d-event batch, want 0", allocs, len(block))
	}
}
