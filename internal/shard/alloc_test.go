package shard

import (
	"testing"

	"rept/internal/gen"
	"rept/internal/graph"
)

// TestDispatchSteadyStateZeroAlloc gates the broadcast dispatch path:
// with the batch free list warm, an ApplyAll block sized exactly to the
// batch length — so every call detaches and delivers exactly one full
// batch through the ticketed send path — must not allocate on the
// producer side, and the consumer goroutines (engine shards plus the
// degree tracker) must stay allocation-free on churn too, since
// AllocsPerRun counts every goroutine's allocations.
func TestDispatchSteadyStateZeroAlloc(t *testing.T) {
	const batchLen = 256
	s, err := New(Config{
		M: 2, C: 4, Seed: 7,
		FullyDynamic: true, TrackDegrees: true,
		BatchSize: batchLen, QueueLen: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	base := gen.Shuffle(gen.HolmeKim(300, 6, 0.4, 5), 2)
	s.AddAll(base)

	// The churn block deletes and re-inserts live edges (LIFO), sized to
	// exactly one batch so each ApplyAll triggers exactly one dispatch.
	slice := base[:batchLen/2]
	block := make([]graph.Update, 0, batchLen)
	for i := len(slice) - 1; i >= 0; i-- {
		block = append(block, graph.Update{U: slice[i].U, V: slice[i].V, Del: true})
	}
	for _, ed := range slice {
		block = append(block, graph.Update{U: ed.U, V: ed.V})
	}

	// Warm the batch free list, the engines' working sets, and the degree
	// tracker's membership set before measuring.
	for i := 0; i < 64; i++ {
		s.ApplyAll(block)
	}

	allocs := testing.AllocsPerRun(100, func() {
		s.ApplyAll(block)
	})
	if allocs != 0 {
		t.Errorf("steady-state dispatch allocates %.1f per %d-event batch, want 0", allocs, len(block))
	}
}
