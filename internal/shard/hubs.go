package shard

import (
	"sync/atomic"

	"rept/internal/graph"
)

// hubSet is the promoted-vertex set behind hub-aware batch routing: an
// insert-only open-addressing table written by exactly one goroutine
// (the degree tracker, which is the only place degrees are known) and
// read lock-free by any number of producers inside ApplyBatch.
//
// Readers are deliberately "racy but benign": membership only steers
// the batch-splitting policy, never sampling or counting, so a reader
// that misses a vertex promoted microseconds ago merely skips one
// split opportunity. The table pointer is swapped atomically on growth
// and slots are written atomically, so readers always see either the
// empty sentinel or a fully written key — never a torn value.
type hubSet struct {
	tbl atomic.Pointer[hubTbl]
}

// hubTbl is one immutable-size generation of the table. Slots hold
// node+1 so that 0 is the empty sentinel for every NodeID value.
type hubTbl struct {
	slots []atomic.Uint64
	mask  uint32
	n     int // live entries; touched by the single writer only
}

const hubMinSize = 64

func newHubSet() *hubSet {
	h := &hubSet{}
	t := &hubTbl{slots: make([]atomic.Uint64, hubMinSize), mask: hubMinSize - 1}
	h.tbl.Store(t)
	return h
}

// add marks u as a hub. Idempotent; single-writer only.
func (h *hubSet) add(u graph.NodeID) {
	t := h.tbl.Load()
	if t.n >= len(t.slots)/2 {
		t = h.grow(t)
	}
	enc := uint64(u) + 1
	for i := hubHash(u) & t.mask; ; i = (i + 1) & t.mask {
		switch t.slots[i].Load() {
		case enc:
			return
		case 0:
			t.slots[i].Store(enc)
			t.n++
			return
		}
	}
}

// grow doubles the table and republishes it. Entries are re-inserted
// with plain stores into the not-yet-visible table, then the pointer
// swap makes the new generation visible to readers atomically.
func (h *hubSet) grow(old *hubTbl) *hubTbl {
	t := &hubTbl{slots: make([]atomic.Uint64, len(old.slots)*2), mask: uint32(len(old.slots)*2 - 1)}
	for i := range old.slots {
		enc := old.slots[i].Load()
		if enc == 0 {
			continue
		}
		u := graph.NodeID(enc - 1)
		for j := hubHash(u) & t.mask; ; j = (j + 1) & t.mask {
			if t.slots[j].Load() == 0 {
				t.slots[j].Store(enc)
				t.n++
				break
			}
		}
	}
	h.tbl.Store(t)
	return t
}

// contains reports (possibly slightly stale) hub membership of u.
func (h *hubSet) contains(u graph.NodeID) bool {
	t := h.tbl.Load()
	enc := uint64(u) + 1
	for i := hubHash(u) & t.mask; ; i = (i + 1) & t.mask {
		switch t.slots[i].Load() {
		case enc:
			return true
		case 0:
			return false
		}
	}
}

// containsAny reports whether any event in ups touches a hub vertex.
func (h *hubSet) containsAny(ups []graph.Update) bool {
	for _, up := range ups {
		if h.contains(up.U) || h.contains(up.V) {
			return true
		}
	}
	return false
}

// hubHash is the slot hash (same lowbias32 mixer family as the graph
// package's node index).
func hubHash(u graph.NodeID) uint32 {
	x := uint32(u)
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}
