package shard

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"rept/internal/gen"
	"rept/internal/graph"
	"rept/internal/snapshot"
)

// TestShardedSnapshotRoundTrip: snapshot mid-stream, resume, feed the
// suffix; estimates must equal an uninterrupted coordinator bit-for-bit.
func TestShardedSnapshotRoundTrip(t *testing.T) {
	edges := gen.Shuffle(gen.HolmeKim(400, 5, 0.4, 21), 9)
	cfg := Config{M: 4, C: 18, Shards: 3, Seed: 6, TrackLocal: true} // C%M=2: partial group, η forced
	cut := len(edges) / 2

	full, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full.AddAll(edges)
	want := full.Snapshot()
	wantSampled := full.SampledEdges()
	full.Close()

	first, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first.AddAll(edges[:cut])
	first.Add(3, 3) // self-loop, tallied but stateless
	var buf bytes.Buffer
	if err := first.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	first.Close()

	resumed, err := Resume(cfg, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if resumed.Processed() != uint64(cut) || resumed.SelfLoops() != 1 {
		t.Errorf("resumed tallies = (%d, %d), want (%d, 1)", resumed.Processed(), resumed.SelfLoops(), cut)
	}
	if resumed.Shards() != 3 {
		t.Errorf("resumed Shards = %d, want 3", resumed.Shards())
	}
	resumed.AddAll(edges[cut:])
	got := resumed.Snapshot()
	if got.Global != want.Global || got.EtaHat != want.EtaHat {
		t.Errorf("resumed estimate = %+v, want %+v", got, want)
	}
	if got.Variance != want.Variance && !(math.IsNaN(got.Variance) && math.IsNaN(want.Variance)) {
		t.Errorf("resumed variance = %v, want %v", got.Variance, want.Variance)
	}
	if !reflect.DeepEqual(got.Local, want.Local) {
		t.Error("resumed local estimates diverged")
	}
	if s := resumed.SampledEdges(); s != wantSampled {
		t.Errorf("resumed SampledEdges = %d, want %d", s, wantSampled)
	}
}

// TestShardedResumeRejectsMismatch covers the coordinator-level
// fingerprint checks, including the shard-count rule.
func TestShardedResumeRejectsMismatch(t *testing.T) {
	cfg := Config{M: 3, C: 12, Shards: 2, Seed: 8, TrackLocal: true}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.AddAll(gen.HolmeKim(120, 3, 0.4, 2))
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	s.Close()
	data := buf.Bytes()

	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"SameConfig", func(c *Config) {}, ""},
		{"DifferentQueueing", func(c *Config) { c.BatchSize = 64; c.QueueLen = 2; c.Workers = 2 }, ""},
		{"DifferentM", func(c *Config) { c.M = 4 }, "M = 3 in snapshot, 4 in config"},
		{"DifferentC", func(c *Config) { c.C = 9 }, "C = 12 in snapshot, 9 in config"},
		{"DifferentSeed", func(c *Config) { c.Seed = 9 }, "Seed = 8 in snapshot, 9 in config"},
		{"LocalOff", func(c *Config) { c.TrackLocal = false }, "TrackLocal = true in snapshot, false in config"},
		{"EtaOn", func(c *Config) { c.TrackEta = true }, "TrackEta = false in snapshot, true in config"},
		{"DifferentShards", func(c *Config) { c.Shards = 4 }, "snapshot has 2 shards, config implies 4"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := cfg
			tc.mut(&c)
			got, err := Resume(c, bytes.NewReader(data))
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Resume: %v", err)
				}
				got.Close()
				return
			}
			if err == nil {
				got.Close()
				t.Fatal("mismatched resume succeeded")
			}
			if !errors.Is(err, snapshot.ErrMismatch) {
				t.Errorf("err = %v, want ErrMismatch", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err %q missing %q", err, tc.want)
			}
		})
	}

	// An engine snapshot is not a sharded snapshot.
	if _, err := Resume(cfg, strings.NewReader("REPTSNAP")); err == nil {
		t.Error("Resume of garbage succeeded")
	}
}

// TestConcurrentCheckpointUnderLoad exercises WriteSnapshot racing with
// producers (the -race tier-1 run makes this a data-race probe): the
// snapshot must be internally consistent — decodable, with shard states
// and tallies describing one prefix — while ingestion continues.
func TestConcurrentCheckpointUnderLoad(t *testing.T) {
	cfg := Config{M: 3, C: 9, Shards: 2, Seed: 4, TrackLocal: true, BatchSize: 32}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	edges := gen.Shuffle(gen.HolmeKim(300, 4, 0.3, 5), 2)
	const producers = 4
	var wg sync.WaitGroup
	chunk := (len(edges) + producers - 1) / producers
	for p := 0; p < producers; p++ {
		lo := min(p*chunk, len(edges))
		hi := min(lo+chunk, len(edges))
		wg.Add(1)
		go func(part []graph.Edge) {
			defer wg.Done()
			for _, e := range part {
				s.Add(e.U, e.V)
			}
		}(edges[lo:hi])
	}

	var bufs []bytes.Buffer
	for i := 0; i < 5; i++ {
		var buf bytes.Buffer
		if err := s.WriteSnapshot(&buf); err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
		bufs = append(bufs, buf)
	}
	wg.Wait()

	for i := range bufs {
		st, err := snapshot.ReadSharded(bytes.NewReader(bufs[i].Bytes()))
		if err != nil {
			t.Fatalf("checkpoint %d unreadable: %v", i, err)
		}
		// Every shard engine saw every edge of the prefix, so their
		// processed counters must all equal the coordinator tally.
		for j, sh := range st.Shards {
			if sh.Processed != st.Processed {
				t.Errorf("checkpoint %d shard %d processed %d != coordinator %d (inconsistent barrier)", i, j, sh.Processed, st.Processed)
			}
		}
		// And the snapshot must actually resume.
		r, err := Resume(cfg, bytes.NewReader(bufs[i].Bytes()))
		if err != nil {
			t.Fatalf("checkpoint %d: Resume: %v", i, err)
		}
		if r.Processed() != st.Processed {
			t.Errorf("checkpoint %d: resumed Processed = %d, want %d", i, r.Processed(), st.Processed)
		}
		r.Close()
	}
}
