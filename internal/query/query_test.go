package query

import (
	"math"
	"sync/atomic"
	"testing"
	"time"

	"rept/internal/core"
	"rept/internal/graph"
	"rept/internal/shard"
)

// fakeSource is a deterministic Source: Observe returns the current
// counter state, so tests control exactly what each epoch sees.
type fakeSource struct {
	processed atomic.Uint64
	observes  atomic.Uint64
	local     map[graph.NodeID]float64
	degrees   map[graph.NodeID]uint32
}

func (f *fakeSource) Observe() shard.Observation {
	f.observes.Add(1)
	return shard.Observation{
		Estimate:  core.Estimate{Global: float64(f.processed.Load()), Local: f.local, Variance: math.NaN()},
		Degrees:   f.degrees,
		Processed: f.processed.Load(),
	}
}

func (f *fakeSource) Processed() uint64 { return f.processed.Load() }

func TestPublisherInitialViewAndRefresh(t *testing.T) {
	src := &fakeSource{}
	p := NewPublisher(src, Config{Interval: time.Hour})
	defer p.Close()

	v := p.View()
	if v == nil || v.Epoch != 1 {
		t.Fatalf("initial view = %+v, want epoch 1", v)
	}
	src.processed.Store(42)
	if got := p.View().Processed; got != 0 {
		t.Errorf("stale view processed = %d, want 0 (no trigger yet)", got)
	}
	v2 := p.Refresh()
	if v2.Epoch != 2 || v2.Processed != 42 {
		t.Errorf("refreshed view = epoch %d processed %d, want 2 and 42", v2.Epoch, v2.Processed)
	}
	if p.View() != v2 {
		t.Error("View() does not return the refreshed epoch")
	}
}

func TestPublisherIntervalTrigger(t *testing.T) {
	src := &fakeSource{}
	p := NewPublisher(src, Config{Interval: 10 * time.Millisecond})
	defer p.Close()

	// Keep edges trickling in: the interval trigger only fires for a
	// stream that moved (idle streams publish nothing, by design).
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
				src.processed.Add(1)
			}
		}
	}()

	deadline := time.Now().Add(5 * time.Second)
	for p.View().Epoch < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if e := p.View().Epoch; e < 4 {
		t.Errorf("epoch = %d after 5s with 10ms interval, want >= 4", e)
	}
}

// TestPublisherIdleSkipsEpochs: with no new edges, the periodic trigger
// must NOT burn barriers republishing identical views.
func TestPublisherIdleSkipsEpochs(t *testing.T) {
	src := &fakeSource{}
	src.processed.Store(7)
	p := NewPublisher(src, Config{Interval: time.Millisecond})
	defer p.Close()

	time.Sleep(50 * time.Millisecond)
	if e := p.View().Epoch; e != 1 {
		t.Errorf("epoch = %d on an idle stream, want 1 (no republish)", e)
	}
	if o := src.observes.Load(); o != 1 {
		t.Errorf("source observed %d times on an idle stream, want 1", o)
	}
	// The first new edge wakes the publisher back up.
	src.processed.Add(1)
	deadline := time.Now().Add(5 * time.Second)
	for p.View().Epoch < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if v := p.View(); v.Epoch < 2 || v.Processed != 8 {
		t.Errorf("view after idle wake = epoch %d processed %d, want >= 2 and 8", v.Epoch, v.Processed)
	}
}

func TestPublisherEdgeTrigger(t *testing.T) {
	src := &fakeSource{}
	p := NewPublisher(src, Config{Interval: time.Hour, EveryEdges: 100})
	defer p.Close()

	src.processed.Store(99)
	time.Sleep(50 * time.Millisecond)
	if e := p.View().Epoch; e != 1 {
		t.Fatalf("epoch = %d below edge threshold, want 1", e)
	}
	src.processed.Store(100)
	deadline := time.Now().Add(5 * time.Second)
	for p.View().Epoch < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if v := p.View(); v.Epoch < 2 || v.Processed != 100 {
		t.Errorf("view after edge trigger = epoch %d processed %d, want >= 2 and 100", v.Epoch, v.Processed)
	}
}

func TestPublisherCloseIdempotentAndStopsPublishing(t *testing.T) {
	src := &fakeSource{}
	p := NewPublisher(src, Config{Interval: time.Millisecond})
	time.Sleep(20 * time.Millisecond)
	p.Close()
	p.Close()
	observes := src.observes.Load()
	last := p.View()
	time.Sleep(20 * time.Millisecond)
	if src.observes.Load() != observes {
		t.Error("publisher kept observing after Close")
	}
	if p.View() != last {
		t.Error("view changed after Close")
	}
}

func TestViewCCAndStats(t *testing.T) {
	v := &View{
		Local:   map[graph.NodeID]float64{1: 6, 2: 1, 3: 0.5},
		Degrees: map[graph.NodeID]uint32{1: 4, 2: 1, 4: 9},
	}
	if cc, ok := v.CC(1); !ok || cc != 2*6.0/(4*3) {
		t.Errorf("CC(1) = %v,%v, want 1.0,true", cc, ok)
	}
	if _, ok := v.CC(2); ok {
		t.Error("CC defined for degree-1 node")
	}
	if cc, ok := v.CC(4); !ok || cc != 0 {
		t.Errorf("CC(4) = %v,%v, want 0,true (no local triangles)", cc, ok)
	}
	if _, ok := (&View{Local: v.Local}).CC(1); ok {
		t.Error("CC defined without degree table")
	}
	s := v.Stat(1)
	if s.Node != 1 || s.Local != 6 || s.Degree != 4 || s.CC != 1 {
		t.Errorf("Stat(1) = %+v", s)
	}
	if s := v.Stat(2); !math.IsNaN(s.CC) {
		t.Errorf("Stat(2).CC = %v, want NaN", s.CC)
	}
}

func TestTopKSelection(t *testing.T) {
	local := map[graph.NodeID]float64{}
	for i := 0; i < 1000; i++ {
		local[graph.NodeID(i)] = float64(i % 97)
	}
	local[500] = 1e6
	local[501] = 1e6 // tie: lower id first
	v := &View{Local: local}
	v.buildTopK(5)
	if len(v.TopK) != 5 {
		t.Fatalf("len(TopK) = %d, want 5", len(v.TopK))
	}
	if v.TopK[0].Node != 500 || v.TopK[1].Node != 501 {
		t.Errorf("top-2 = %d,%d, want 500,501 (tie broken by id)", v.TopK[0].Node, v.TopK[1].Node)
	}
	for i := 1; i < len(v.TopK); i++ {
		if stronger(v.TopK[i], v.TopK[i-1]) {
			t.Errorf("TopK not sorted at %d: %+v > %+v", i, v.TopK[i], v.TopK[i-1])
		}
	}
	// Top-3 of the ranking, and k beyond the precomputed bound clamps.
	if got := v.Top(3); len(got) != 3 || got[0].Node != 500 {
		t.Errorf("Top(3) = %+v", got)
	}
	if got := v.Top(50); len(got) != 5 {
		t.Errorf("Top(50) returned %d rows, want 5 (clamped)", len(got))
	}
	if got := v.Top(-1); len(got) != 0 {
		t.Errorf("Top(-1) returned %d rows, want 0", len(got))
	}
}

// TestTopKMatchesFullSort cross-checks the heap selection against a full
// sort on a larger map.
func TestTopKMatchesFullSort(t *testing.T) {
	local := map[graph.NodeID]float64{}
	rng := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 5000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		local[graph.NodeID(i)] = float64(rng % 256)
	}
	v := &View{Local: local}
	v.buildTopK(64)

	all := make([]NodeStat, 0, len(local))
	for n, l := range local {
		all = append(all, NodeStat{Node: n, Local: l})
	}
	// Selection sort of the strongest 64 is plenty for a test oracle.
	for i := 0; i < 64; i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if stronger(all[j], all[best]) {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
		if all[i].Node != v.TopK[i].Node || all[i].Local != v.TopK[i].Local {
			t.Fatalf("rank %d: heap gave %+v, sort gives %+v", i, v.TopK[i], all[i])
		}
	}
}

func TestTopKEmptyAndUntracked(t *testing.T) {
	v := &View{}
	v.buildTopK(10)
	if v.TopK != nil {
		t.Error("TopK built without local tracking")
	}
	v2 := &View{Local: map[graph.NodeID]float64{}}
	v2.buildTopK(10)
	if len(v2.TopK) != 0 {
		t.Error("TopK non-empty for empty local map")
	}
}
