package query

import (
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"rept/internal/mem"
	"rept/internal/obs"
	"rept/internal/shard"
)

// Defaults applied by NewPublisher for zero Config fields.
const (
	// DefaultInterval is the publish interval when Config.Interval is 0.
	DefaultInterval = 200 * time.Millisecond
	// DefaultTopK is the precomputed ranking size when Config.TopK is 0.
	DefaultTopK = 100
)

// Config shapes a Publisher.
type Config struct {
	// Interval is the maximum time between epoch publications while edges
	// are arriving (default DefaultInterval); a view's staleness is then
	// bounded by roughly Interval plus one barrier latency. Idle streams
	// publish nothing — see loop.
	Interval time.Duration
	// EveryEdges additionally republishes as soon as this many new edges
	// have been processed since the current epoch's prefix (0 disables
	// the edge trigger). It bounds staleness in EDGES under bursty ingest
	// the way Interval bounds it in time.
	EveryEdges uint64
	// TopK is the size of the precomputed heavy-hitter ranking (default
	// DefaultTopK; meaningless without local tracking).
	TopK int
	// PublishHist, when non-nil, records the latency of every epoch
	// materialization (barrier snapshot + view build + atomic swap).
	PublishHist *obs.Histogram
	// Flight, when non-nil, receives one view_publish event per epoch
	// (value = the epoch number).
	Flight *obs.Flight
	// Mem, when non-nil, receives the published view's payload bytes under
	// mem.CompViews, reconciled at every epoch swap. Only the CURRENT view
	// is charged — superseded views a reader still retains are that
	// reader's liability. Observational only.
	Mem *mem.Accountant
}

// Source is the ingest side a Publisher reads from; *shard.Sharded
// implements it. Observe must be barrier-consistent and safe for
// concurrent use; Processed must be a cheap monotone counter.
type Source interface {
	Observe() shard.Observation
	Processed() uint64
}

// Publisher periodically materializes epoch views from a Source and
// publishes them with an atomic pointer swap. View is safe for any number
// of concurrent readers and never blocks on ingest; Refresh forces an
// immediate epoch for callers that need freshness over latency. Close
// stops the publishing goroutine and must happen before the underlying
// Source is closed (Refresh after the Source closes panics, like any
// other use-after-Close).
type Publisher struct {
	src Source
	cfg Config

	cur atomic.Pointer[View]

	// topK is the live ranking size: initialized from Config.TopK, shrunk
	// (or restored) at runtime by the adaptive memory controller via
	// SetTopK. Takes effect at the next publication.
	topK atomic.Int64

	// mu serializes publications (the periodic loop and explicit Refresh
	// calls) so epoch numbers increase monotonically with their prefixes.
	// acViews, guarded by it, is the current view's payload bytes as last
	// reported under mem.CompViews.
	mu      sync.Mutex
	epoch   uint64
	acViews int64

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewPublisher normalizes cfg, synchronously publishes epoch 1 (so View
// never returns nil), and starts the periodic publishing goroutine.
func NewPublisher(src Source, cfg Config) *Publisher {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.TopK <= 0 {
		cfg.TopK = DefaultTopK
	}
	p := &Publisher{
		src:  src,
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	p.topK.Store(int64(cfg.TopK))
	p.publish()
	go p.loop()
	return p
}

// Config returns the normalized configuration. Config.TopK is the
// configured ranking size; TopK reports the live one.
func (p *Publisher) Config() Config { return p.cfg }

// TopK returns the live ranking size used by the next publication.
func (p *Publisher) TopK() int { return int(p.topK.Load()) }

// SetTopK changes the ranking size of subsequent publications, clamped to
// at least 1. The adaptive memory controller uses it to cheapen views
// under memory pressure (the ranking is the view's only sized-by-choice
// payload) and to restore the configured size when pressure clears. It
// does not republish — the new size takes effect at the next epoch (call
// Refresh to force one).
func (p *Publisher) SetTopK(k int) {
	if k < 1 {
		k = 1
	}
	p.topK.Store(int64(k))
}

// View returns the current epoch view: an atomic pointer load, lock-free
// and barrier-free, never blocked by ingest or by a publication in
// progress.
func (p *Publisher) View() *View { return p.cur.Load() }

// Epochs returns how many views have been published so far.
func (p *Publisher) Epochs() uint64 { return p.View().Epoch }

// Refresh takes a fresh barrier snapshot, publishes it as a new epoch,
// and returns it. It is the explicit escape hatch for callers that need
// the current stream prefix instead of the bounded-stale view.
func (p *Publisher) Refresh() *View { return p.publish() }

// publish materializes and swaps in one epoch.
func (p *Publisher) publish() *View {
	p.mu.Lock()
	defer p.mu.Unlock()
	start := time.Now()
	o := p.src.Observe()
	p.epoch++
	v := &View{
		Epoch:          p.epoch,
		Taken:          time.Now(),
		Global:         o.Estimate.Global,
		Variance:       o.Estimate.Variance,
		EtaHat:         o.Estimate.EtaHat,
		Processed:      o.Processed,
		Deleted:        o.Deleted,
		SelfLoops:      o.SelfLoops,
		SampledEdges:   o.SampledEdges,
		EtaSaturations: o.EtaSaturations,
		Local:          o.Estimate.Local,
		Degrees:        o.Degrees,
	}
	v.buildTopK(int(p.topK.Load()))
	p.cur.Store(v)
	if fp := viewFootprint(v); fp != p.acViews {
		p.cfg.Mem.Add(mem.CompViews, fp-p.acViews)
		p.acViews = fp
	}
	if p.cfg.PublishHist != nil {
		d := time.Since(start)
		p.cfg.PublishHist.ObserveDuration(d)
		p.cfg.Flight.Record(obs.KindViewPublish, -1, v.Epoch, d)
	}
	return v
}

// Amortized per-entry accounting estimates for the view maps (payload
// plus Go map bucket overhead, same convention as the degree table's
// accounting): τ̂_v entries carry a 4-byte key and 8-byte value, degree
// entries 4+4.
const (
	localMapEntryBytes  = 28
	degreeMapEntryBytes = 24
)

// viewFootprint estimates one view's owned payload bytes: its τ̂_v and
// degree map copies plus the precomputed ranking. Scalar fields are noise
// next to the maps and are ignored.
func viewFootprint(v *View) int64 {
	return int64(len(v.Local))*localMapEntryBytes +
		int64(len(v.Degrees))*degreeMapEntryBytes +
		int64(cap(v.TopK))*int64(unsafe.Sizeof(NodeStat{}))
}

// loop republishes on the configured triggers until Close. It polls at a
// fraction of the interval so the edge trigger reacts quickly, and
// measures elapsed time from the published view's own capture time, so
// explicit Refresh calls push the periodic timer back instead of stacking
// an extra publication right after. An idle stream publishes nothing: when
// no edge arrived since the current epoch, the view already describes the
// exact current prefix, so re-materializing it (a barrier plus O(V) map
// copies) would buy nothing — the view's Age then keeps growing, which is
// truthful. The staleness bound is therefore "age ≤ interval + slack OR
// the view is exact"; the first edge after an overdue interval publishes
// at the next poll tick.
func (p *Publisher) loop() {
	defer close(p.done)
	poll := p.cfg.Interval / 4
	// The edge trigger is only as reactive as the poll, so cap the poll
	// period when it is enabled even under a long publish interval.
	if p.cfg.EveryEdges > 0 && poll > 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			v := p.cur.Load()
			arrived := p.src.Processed() - v.Processed
			if arrived == 0 {
				continue // view is exact for the current prefix
			}
			due := time.Since(v.Taken) >= p.cfg.Interval ||
				(p.cfg.EveryEdges > 0 && arrived >= p.cfg.EveryEdges)
			if due {
				p.publish()
			}
		}
	}
}

// Close stops the publishing goroutine and waits for any publication in
// flight to finish. The last published view stays readable forever; only
// Refresh becomes unusable once the underlying Source closes. Close is
// idempotent.
func (p *Publisher) Close() {
	p.once.Do(func() { close(p.stop) })
	<-p.done
	// Serialize with a publish() still holding the barrier so callers may
	// close the Source immediately after Close returns, and return the
	// current view's ledger charge (the view stays readable, but the
	// publisher no longer owns its footprint).
	p.mu.Lock()
	if p.acViews != 0 {
		p.cfg.Mem.Add(mem.CompViews, -p.acViews)
		p.acViews = 0
	}
	p.mu.Unlock()
}
