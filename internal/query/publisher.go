package query

import (
	"sync"
	"sync/atomic"
	"time"

	"rept/internal/obs"
	"rept/internal/shard"
)

// Defaults applied by NewPublisher for zero Config fields.
const (
	// DefaultInterval is the publish interval when Config.Interval is 0.
	DefaultInterval = 200 * time.Millisecond
	// DefaultTopK is the precomputed ranking size when Config.TopK is 0.
	DefaultTopK = 100
)

// Config shapes a Publisher.
type Config struct {
	// Interval is the maximum time between epoch publications while edges
	// are arriving (default DefaultInterval); a view's staleness is then
	// bounded by roughly Interval plus one barrier latency. Idle streams
	// publish nothing — see loop.
	Interval time.Duration
	// EveryEdges additionally republishes as soon as this many new edges
	// have been processed since the current epoch's prefix (0 disables
	// the edge trigger). It bounds staleness in EDGES under bursty ingest
	// the way Interval bounds it in time.
	EveryEdges uint64
	// TopK is the size of the precomputed heavy-hitter ranking (default
	// DefaultTopK; meaningless without local tracking).
	TopK int
	// PublishHist, when non-nil, records the latency of every epoch
	// materialization (barrier snapshot + view build + atomic swap).
	PublishHist *obs.Histogram
	// Flight, when non-nil, receives one view_publish event per epoch
	// (value = the epoch number).
	Flight *obs.Flight
}

// Source is the ingest side a Publisher reads from; *shard.Sharded
// implements it. Observe must be barrier-consistent and safe for
// concurrent use; Processed must be a cheap monotone counter.
type Source interface {
	Observe() shard.Observation
	Processed() uint64
}

// Publisher periodically materializes epoch views from a Source and
// publishes them with an atomic pointer swap. View is safe for any number
// of concurrent readers and never blocks on ingest; Refresh forces an
// immediate epoch for callers that need freshness over latency. Close
// stops the publishing goroutine and must happen before the underlying
// Source is closed (Refresh after the Source closes panics, like any
// other use-after-Close).
type Publisher struct {
	src Source
	cfg Config

	cur atomic.Pointer[View]

	// mu serializes publications (the periodic loop and explicit Refresh
	// calls) so epoch numbers increase monotonically with their prefixes.
	mu    sync.Mutex
	epoch uint64

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewPublisher normalizes cfg, synchronously publishes epoch 1 (so View
// never returns nil), and starts the periodic publishing goroutine.
func NewPublisher(src Source, cfg Config) *Publisher {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.TopK <= 0 {
		cfg.TopK = DefaultTopK
	}
	p := &Publisher{
		src:  src,
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	p.publish()
	go p.loop()
	return p
}

// Config returns the normalized configuration.
func (p *Publisher) Config() Config { return p.cfg }

// View returns the current epoch view: an atomic pointer load, lock-free
// and barrier-free, never blocked by ingest or by a publication in
// progress.
func (p *Publisher) View() *View { return p.cur.Load() }

// Epochs returns how many views have been published so far.
func (p *Publisher) Epochs() uint64 { return p.View().Epoch }

// Refresh takes a fresh barrier snapshot, publishes it as a new epoch,
// and returns it. It is the explicit escape hatch for callers that need
// the current stream prefix instead of the bounded-stale view.
func (p *Publisher) Refresh() *View { return p.publish() }

// publish materializes and swaps in one epoch.
func (p *Publisher) publish() *View {
	p.mu.Lock()
	defer p.mu.Unlock()
	start := time.Now()
	o := p.src.Observe()
	p.epoch++
	v := &View{
		Epoch:          p.epoch,
		Taken:          time.Now(),
		Global:         o.Estimate.Global,
		Variance:       o.Estimate.Variance,
		EtaHat:         o.Estimate.EtaHat,
		Processed:      o.Processed,
		Deleted:        o.Deleted,
		SelfLoops:      o.SelfLoops,
		SampledEdges:   o.SampledEdges,
		EtaSaturations: o.EtaSaturations,
		Local:          o.Estimate.Local,
		Degrees:        o.Degrees,
	}
	v.buildTopK(p.cfg.TopK)
	p.cur.Store(v)
	if p.cfg.PublishHist != nil {
		d := time.Since(start)
		p.cfg.PublishHist.ObserveDuration(d)
		p.cfg.Flight.Record(obs.KindViewPublish, -1, v.Epoch, d)
	}
	return v
}

// loop republishes on the configured triggers until Close. It polls at a
// fraction of the interval so the edge trigger reacts quickly, and
// measures elapsed time from the published view's own capture time, so
// explicit Refresh calls push the periodic timer back instead of stacking
// an extra publication right after. An idle stream publishes nothing: when
// no edge arrived since the current epoch, the view already describes the
// exact current prefix, so re-materializing it (a barrier plus O(V) map
// copies) would buy nothing — the view's Age then keeps growing, which is
// truthful. The staleness bound is therefore "age ≤ interval + slack OR
// the view is exact"; the first edge after an overdue interval publishes
// at the next poll tick.
func (p *Publisher) loop() {
	defer close(p.done)
	poll := p.cfg.Interval / 4
	// The edge trigger is only as reactive as the poll, so cap the poll
	// period when it is enabled even under a long publish interval.
	if p.cfg.EveryEdges > 0 && poll > 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			v := p.cur.Load()
			arrived := p.src.Processed() - v.Processed
			if arrived == 0 {
				continue // view is exact for the current prefix
			}
			due := time.Since(v.Taken) >= p.cfg.Interval ||
				(p.cfg.EveryEdges > 0 && arrived >= p.cfg.EveryEdges)
			if due {
				p.publish()
			}
		}
	}
}

// Close stops the publishing goroutine and waits for any publication in
// flight to finish. The last published view stays readable forever; only
// Refresh becomes unusable once the underlying Source closes. Close is
// idempotent.
func (p *Publisher) Close() {
	p.once.Do(func() { close(p.stop) })
	<-p.done
	// Serialize with a publish() still holding the barrier so callers may
	// close the Source immediately after Close returns.
	p.mu.Lock()
	p.mu.Unlock() //nolint // empty critical section IS the synchronization
}
