package query

import (
	"testing"
	"time"

	"rept/internal/graph"
	"rept/internal/mem"
)

// TestSetTopKResizesNextEpoch: SetTopK changes the ranking depth of the
// NEXT published epoch (the live adaptation path the memory controller
// drives), and TopK reports the live value.
func TestSetTopKResizesNextEpoch(t *testing.T) {
	src := &fakeSource{local: map[graph.NodeID]float64{}}
	for i := 0; i < 64; i++ {
		src.local[graph.NodeID(i)] = float64(i + 1)
	}
	p := NewPublisher(src, Config{Interval: time.Hour, TopK: 32})
	defer p.Close()

	if got := len(p.View().TopK); got != 32 {
		t.Fatalf("initial ranking depth = %d, want 32", got)
	}
	if got := p.TopK(); got != 32 {
		t.Fatalf("TopK() = %d, want 32", got)
	}

	p.SetTopK(4)
	if got := p.TopK(); got != 4 {
		t.Fatalf("TopK() after SetTopK(4) = %d, want 4", got)
	}
	v := p.Refresh()
	if got := len(v.TopK); got != 4 {
		t.Fatalf("ranking depth after SetTopK(4) = %d, want 4", got)
	}
	// The ranking still holds the heaviest nodes.
	if v.TopK[0].Local != 64 {
		t.Fatalf("top entry = %v, want local 64", v.TopK[0])
	}

	p.SetTopK(0) // clamped to 1
	if got := len(p.Refresh().TopK); got != 1 {
		t.Fatalf("ranking depth after SetTopK(0) = %d, want 1 (clamp)", got)
	}
}

// TestViewFootprintAccounting: the publisher charges the CURRENT view's
// footprint to the ledger's views component — growing with the map
// sizes, shrinking when the ranking shrinks, and stable across epochs of
// identical shape.
func TestViewFootprintAccounting(t *testing.T) {
	ac := mem.New()
	src := &fakeSource{
		local:   map[graph.NodeID]float64{},
		degrees: map[graph.NodeID]uint32{},
	}
	for i := 0; i < 128; i++ {
		src.local[graph.NodeID(i)] = float64(i + 1)
		src.degrees[graph.NodeID(i)] = uint32(i)
	}
	p := NewPublisher(src, Config{Interval: time.Hour, TopK: 64, Mem: ac})
	defer p.Close()

	after := ac.Bytes(mem.CompViews)
	if after <= 0 {
		t.Fatalf("views component = %d after first publish, want > 0", after)
	}
	want := viewFootprint(p.View())
	if after != want {
		t.Fatalf("views component = %d, want footprint %d", after, want)
	}

	// Same shape, new epoch: the charge replaces, it does not accumulate.
	p.Refresh()
	if got := ac.Bytes(mem.CompViews); got != want {
		t.Fatalf("views component = %d after second epoch, want unchanged %d", got, want)
	}

	// Shrinking the ranking shrinks the charge.
	p.SetTopK(4)
	p.Refresh()
	shrunk := ac.Bytes(mem.CompViews)
	if shrunk >= after {
		t.Fatalf("views component = %d after SetTopK(4), want < %d", shrunk, after)
	}

	// Close credits the whole charge back.
	p.Close()
	if got := ac.Bytes(mem.CompViews); got != 0 {
		t.Fatalf("views component = %d after Close, want 0", got)
	}
}
