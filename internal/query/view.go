// Package query is the read path of the concurrent REPT estimator: it
// decouples queries from ingest by periodically materializing an
// immutable epoch View from one barrier snapshot and publishing it via an
// atomic pointer swap. Any number of readers then answer global, local,
// top-K, and clustering-coefficient queries lock-free and barrier-free in
// O(1)/O(log n), with bounded, *reported* staleness (every View carries
// its epoch sequence number, wall-clock capture time, and the processed
// count it describes), while the write path keeps ingesting at full
// speed. CoCoS (Shin et al. 2018) makes the same ingest/query split for
// distributed stream triangle counting; the paper's own use cases —
// spam/sybil detection, community detection, recommendation — are
// query-heavy in exactly this way.
package query

import (
	"math"
	"sort"
	"time"

	"rept/internal/graph"
)

// NodeStat is one node's row of a view: its local triangle estimate, its
// stream degree, and the clustering coefficient derived from the two.
type NodeStat struct {
	Node graph.NodeID
	// Local is τ̂_v, the node's local triangle estimate.
	Local float64
	// Degree is the node's stream degree at the view's prefix; 0 when
	// degrees were not tracked.
	Degree uint32
	// CC is the plug-in local clustering coefficient
	// 2·τ̂_v / (d_v·(d_v−1)). NaN when it is undefined: degrees not
	// tracked, locals not tracked, or d_v < 2. Because τ̂_v is an
	// estimate, CC is not clamped and can exceed 1 on small degrees.
	CC float64
}

// View is one immutable materialized epoch: every field describes exactly
// the same stream prefix, captured by a single shard barrier. Views are
// published by a Publisher and shared by any number of readers — nothing
// in a View may be mutated after publication (readers may retain maps and
// slices indefinitely).
type View struct {
	// Epoch is the view's sequence number, strictly increasing from 1.
	Epoch uint64
	// Taken is the wall-clock time the barrier completed; Age measures
	// staleness against it.
	Taken time.Time
	// Global, Variance, and EtaHat are the merged estimate at the prefix
	// (Variance is NaN when the configuration does not track it).
	Global, Variance, EtaHat float64
	// Processed, Deleted, and SelfLoops are the ingest tallies at the
	// prefix. Processed counts insertions plus deletions (monotone);
	// Deleted is non-zero only for fully-dynamic streams, whose views
	// reflect NET (live-graph) counts.
	Processed, Deleted, SelfLoops uint64
	// SampledEdges is the number of edges stored across all logical
	// processors at the prefix.
	SampledEdges int
	// EtaSaturations counts per-edge closing-counter updates clamped at
	// the int32 boundary at the prefix — 0 on every realistic stream,
	// non-zero when an adversarially hot edge made η̂ a bounded
	// under-estimate instead of wrap-around garbage.
	EtaSaturations uint64
	// Local maps nodes to τ̂_v; nil unless local tracking is on.
	Local map[graph.NodeID]float64
	// Degrees maps nodes to stream degree; nil unless degree tracking is
	// on.
	Degrees map[graph.NodeID]uint32
	// TopK holds the K strongest nodes by local estimate, strongest
	// first (ties broken by ascending node id); nil unless local tracking
	// is on.
	TopK []NodeStat
}

// Age returns how far behind wall-clock the view is.
func (v *View) Age() time.Duration { return time.Since(v.Taken) }

// LocalOf returns τ̂_v from the view (0 for unseen nodes or when locals
// are not tracked).
func (v *View) LocalOf(n graph.NodeID) float64 { return v.Local[n] }

// DegreeOf returns the node's stream degree at the view's prefix; ok is
// false when degrees are not tracked.
func (v *View) DegreeOf(n graph.NodeID) (deg uint32, ok bool) {
	if v.Degrees == nil {
		return 0, false
	}
	return v.Degrees[n], true
}

// CC returns the node's plug-in clustering coefficient
// 2·τ̂_v / (d·(d−1)); ok is false when it is undefined (locals or degrees
// not tracked, or degree < 2).
func (v *View) CC(n graph.NodeID) (cc float64, ok bool) {
	if v.Local == nil || v.Degrees == nil {
		return math.NaN(), false
	}
	d := float64(v.Degrees[n])
	if d < 2 {
		return math.NaN(), false
	}
	return 2 * v.Local[n] / (d * (d - 1)), true
}

// Stat assembles the full NodeStat row for one node.
func (v *View) Stat(n graph.NodeID) NodeStat {
	s := NodeStat{Node: n, Local: v.LocalOf(n), CC: math.NaN()}
	if d, ok := v.DegreeOf(n); ok {
		s.Degree = d
	}
	if cc, ok := v.CC(n); ok {
		s.CC = cc
	}
	return s
}

// Top returns the strongest min(k, len(TopK)) nodes by local estimate.
// The returned slice aliases the view's precomputed ranking and must not
// be modified.
func (v *View) Top(k int) []NodeStat {
	if k < 0 {
		k = 0
	}
	if k > len(v.TopK) {
		k = len(v.TopK)
	}
	return v.TopK[:k]
}

// stronger reports whether a outranks b: higher local estimate first,
// ties broken by ascending node id so rankings are deterministic.
func stronger(a, b NodeStat) bool {
	if a.Local != b.Local {
		return a.Local > b.Local
	}
	return a.Node < b.Node
}

// topK selects the k strongest nodes from local using a size-k min-heap —
// O(V·log k) instead of sorting all V nodes — then fills in degrees and
// clustering coefficients from the view under construction.
func (v *View) buildTopK(k int) {
	if v.Local == nil || k <= 0 {
		return
	}
	h := make([]NodeStat, 0, min(k, len(v.Local)))
	// The heap root h[0] is the WEAKEST retained node, so replacing the
	// root with anything stronger keeps the strongest k seen so far.
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			weakest := i
			if l < len(h) && stronger(h[weakest], h[l]) {
				weakest = l
			}
			if r < len(h) && stronger(h[weakest], h[r]) {
				weakest = r
			}
			if weakest == i {
				return
			}
			h[i], h[weakest] = h[weakest], h[i]
			i = weakest
		}
	}
	for n, local := range v.Local {
		ns := NodeStat{Node: n, Local: local}
		if len(h) < k {
			h = append(h, ns)
			// Sift up.
			for i := len(h) - 1; i > 0; {
				p := (i - 1) / 2
				if !stronger(h[p], h[i]) {
					break
				}
				h[i], h[p] = h[p], h[i]
				i = p
			}
			continue
		}
		if stronger(ns, h[0]) {
			h[0] = ns
			siftDown(0)
		}
	}
	sort.Slice(h, func(i, j int) bool { return stronger(h[i], h[j]) })
	for i := range h {
		h[i] = v.Stat(h[i].Node)
	}
	v.TopK = h
}
