// Package analysis is a minimal, dependency-free analyzer framework in
// the shape of golang.org/x/tools/go/analysis: an Analyzer inspects one
// type-checked package through a Pass and reports position-anchored
// diagnostics. It exists because the REPT invariants that matter most —
// the zero-allocation hot path, deterministic iteration wherever state is
// encoded or merged, saturating counter arithmetic, epoch-view access
// discipline, and the ingest-mutex lock discipline — are properties the
// compiler does not check and runtime tests catch only on exercised
// paths. cmd/reptvet drives every registered analyzer over ./... as a
// failing CI gate.
//
// Analyzers are configured by //rept:* directive comments in the source
// they inspect (see Directive); the directives double as documentation of
// which code carries which invariant.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the reptvet
	// command line.
	Name string
	// Doc is the one-paragraph description printed by reptvet -list.
	Doc string
	// Run inspects one package and reports findings through the Pass.
	Run func(*Pass) error
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records one diagnostic.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostics returns the findings reported so far, in position order.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diags, func(i, j int) bool { return p.diags[i].Pos < p.diags[j].Pos })
	return p.diags
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// IsMap reports whether e has map type (after unwrapping named types).
func (p *Pass) IsMap(e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// CalleeFunc resolves the *types.Func a call invokes (method or plain
// function), or nil for builtins, conversions, and indirect calls.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := p.Info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return f
	case *ast.IndexExpr:
		return p.CalleeFunc(&ast.CallExpr{Fun: fun.X})
	case *ast.IndexListExpr:
		return p.CalleeFunc(&ast.CallExpr{Fun: fun.X})
	}
	return nil
}

// CalleePath returns the defining package path and name of the function a
// call invokes ("" for builtins, conversions, and indirect calls).
func (p *Pass) CalleePath(call *ast.CallExpr) (pkgPath, name string) {
	f := p.CalleeFunc(call)
	if f == nil {
		return "", ""
	}
	if f.Pkg() != nil {
		pkgPath = f.Pkg().Path()
	}
	return pkgPath, f.Name()
}

// IsBuiltin reports whether the call invokes the named builtin.
func (p *Pass) IsBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// IsConversion reports whether the call is a type conversion.
func (p *Pass) IsConversion(call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call.Fun]
	return ok && tv.IsType()
}
