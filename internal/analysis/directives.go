package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one //rept:<name> [args] comment. Directives attach
// invariants to declarations:
//
//	//rept:hotpath        on a function: no allocating constructs allowed
//	//rept:deterministic  on a function or in the package clause's doc:
//	                      no bare iteration over maps
//	//rept:sorter         on a function: its slice arguments are sorted
//	                      before being consumed (detorder trusts it the
//	                      way it trusts sort.Slice)
//	//rept:satcounter     on a type declaration: a wrap-prone counter type
//	                      whose arithmetic must go through //rept:sathelper
//	//rept:sathelper      on a function: implements saturating arithmetic
//	                      for a //rept:satcounter type
//	//rept:ingestmu       on a mutex field: no channel operations or
//	                      blocking calls may run while it is held
//	//rept:locksheld      on a function: analyzed as if the ingest mutex
//	                      is already held on entry (functions whose name
//	                      ends in "Locked" get this implicitly)
//	//rept:viewholder     on a field or statement line: deliberate
//	                      retention of an epoch view, exempt from
//	                      viewaccess
//	//rept:allowalloc     on a statement line: exempt from hotpathalloc,
//	                      with a justification in the args
//	//rept:anyorder       on a range statement line: exempt from detorder,
//	                      with a justification in the args
type Directive struct {
	Name string
	Args string
	Pos  token.Pos
}

const directivePrefix = "//rept:"

// parseDirectives extracts //rept:* directives from a comment group.
func parseDirectives(doc *ast.CommentGroup, into []Directive) []Directive {
	if doc == nil {
		return into
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, directivePrefix)
		if !ok {
			continue
		}
		name, args, _ := strings.Cut(rest, " ")
		into = append(into, Directive{Name: name, Args: strings.TrimSpace(args), Pos: c.Pos()})
	}
	return into
}

// has reports whether ds contains a directive with the given name.
func has(ds []Directive, name string) bool {
	for _, d := range ds {
		if d.Name == name {
			return true
		}
	}
	return false
}

// FuncHasDirective reports whether fn's doc comment carries the named
// directive.
func FuncHasDirective(fn *ast.FuncDecl, name string) bool {
	return has(parseDirectives(fn.Doc, nil), name)
}

// PackageHasDirective reports whether any file's package clause doc
// comment carries the named directive (marking the whole package).
func PackageHasDirective(files []*ast.File, name string) bool {
	for _, f := range files {
		if has(parseDirectives(f.Doc, nil), name) {
			return true
		}
	}
	return false
}

// FieldHasDirective reports whether a struct field's doc or trailing
// line comment carries the named directive.
func FieldHasDirective(f *ast.Field, name string) bool {
	return has(parseDirectives(f.Doc, nil), name) ||
		has(parseDirectives(f.Comment, nil), name)
}

// SpecHasDirective reports whether a type/value spec (or its enclosing
// declaration group) carries the named directive in its doc or trailing
// comment.
func SpecHasDirective(decl *ast.GenDecl, doc, comment *ast.CommentGroup, name string) bool {
	if has(parseDirectives(doc, nil), name) || has(parseDirectives(comment, nil), name) {
		return true
	}
	return decl != nil && has(parseDirectives(decl.Doc, nil), name)
}

// Suppressions maps source lines to the suppression directives placed on
// them (line-trailing or own-line comments), used for //rept:allowalloc,
// //rept:anyorder, and //rept:viewholder.
type Suppressions struct {
	fset  *token.FileSet
	lines map[string]map[int][]Directive // filename → line → directives
}

// NewSuppressions indexes every //rept:* comment of the files by line.
func NewSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{fset: fset, lines: make(map[string]map[int][]Directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, d := range parseDirectives(cg, nil) {
				pos := fset.Position(d.Pos)
				m := s.lines[pos.Filename]
				if m == nil {
					m = make(map[int][]Directive)
					s.lines[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], d)
			}
		}
	}
	return s
}

// Allows reports whether the named suppression directive sits on the
// same line as pos.
func (s *Suppressions) Allows(pos token.Pos, name string) bool {
	p := s.fset.Position(pos)
	return has(s.lines[p.Filename][p.Line], name)
}
