package detorder_test

import (
	"testing"

	"rept/internal/analysis/analysistest"
	"rept/internal/analysis/detorder"
)

func TestBad(t *testing.T) {
	analysistest.Run(t, detorder.Analyzer, "./testdata/src/bad")
}

func TestClean(t *testing.T) {
	analysistest.Run(t, detorder.Analyzer, "./testdata/src/clean")
}
