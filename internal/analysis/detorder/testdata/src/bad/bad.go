// Package bad seeds the map-iteration shapes detorder must flag in
// deterministic code.
package bad

func emit(k uint64) {}

// encode iterates its map bare, so its output depends on Go's map order.
//
//rept:deterministic
func encode(m map[uint64]int64) {
	for k := range m { // want `order-sensitive iteration over map m`
		emit(k)
	}
}

// collectNoSort gathers keys but never sorts them before they escape.
//
//rept:deterministic
func collectNoSort(m map[uint64]int64) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m { // want `map keys collected from m are never sorted`
		keys = append(keys, k)
	}
	return keys
}

// floatSum accumulates floats, whose addition does not commute in
// rounding, so iteration order leaks into the result.
//
//rept:deterministic
func floatSum(m map[uint64]float64) float64 {
	var total float64
	for _, v := range m { // want `order-sensitive iteration over map m`
		total += v
	}
	return total
}
