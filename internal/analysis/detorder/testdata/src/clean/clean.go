// Package clean exercises every map-iteration shape detorder must accept
// in deterministic code.
package clean

import "sort"

func emit(k uint64) {}

// sortKeys sorts in place before consuming, the trusted local sorter.
//
//rept:sorter
func sortKeys(keys []uint64) {
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
}

// collectThenSortStdlib collects keys and sorts them with the stdlib.
//
//rept:deterministic
func collectThenSortStdlib(m map[uint64]int64) {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		emit(k)
	}
}

// collectThenSorter collects keys and hands them to a //rept:sorter.
//
//rept:deterministic
func collectThenSorter(m map[uint64]int64) {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortKeys(keys)
	for _, k := range keys {
		emit(k)
	}
}

// accumulate performs only commutative integer updates.
//
//rept:deterministic
func accumulate(dst, src map[uint64]int64, mirror map[uint64]int64) int64 {
	var total int64
	var count int
	for v, x := range src {
		dst[v] += x
		mirror[v] = x
		total += x
		count++
	}
	_ = count
	return total
}

// justified carries an explicit suppression with its reason.
//
//rept:deterministic
func justified(m map[uint64]int64) {
	for k := range m { //rept:anyorder feeds an order-insensitive bloom filter
		emit(k)
	}
}

// unmarked is not deterministic code; bare iteration is fine here.
func unmarked(m map[uint64]int64) {
	for k := range m {
		emit(k)
	}
}
