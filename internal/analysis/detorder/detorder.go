// Package detorder implements the reptvet analyzer enforcing
// deterministic iteration: inside code marked //rept:deterministic (a
// function doc comment, or the package clause doc to mark a whole
// package — the snapshot codec, core merging, and shard barrier
// aggregation), a bare `range` over a map is a diagnostic, because Go
// randomizes map order and these paths must produce byte-identical
// encodings and bit-identical merges.
//
// Three shapes are recognized as safe and allowed:
//
//   - collect-and-sort: the range body only appends to slices, and every
//     such slice is subsequently passed to sort.*/slices.* or to a
//     function annotated //rept:sorter (the sortedKeys idiom of
//     internal/snapshot/codec.go, where deltaKeys sorts its key slice
//     before encoding)
//   - integer accumulation: every statement is a commutative integer
//     update (`x += v`, `x++`, bit-or/xor/and assignment) or a keyed copy
//     `dst[k] = v` under the range's own key — order-independent by
//     arithmetic, unlike float accumulation, which stays flagged because
//     float addition does not commute in rounding
//   - an explicit //rept:anyorder <why> suppression on the range line
package detorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"rept/internal/analysis"
)

// Analyzer is the detorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detorder",
	Doc:  "forbid order-sensitive map iteration in //rept:deterministic code",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	sup := analysis.NewSuppressions(pass.Fset, pass.Files)
	pkgWide := analysis.PackageHasDirective(pass.Files, "deterministic")
	sorters := collectSorters(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !pkgWide && !analysis.FuncHasDirective(fn, "deterministic") {
				continue
			}
			checkFunc(pass, sup, sorters, fn)
		}
	}
	return nil
}

// collectSorters resolves the objects of same-package functions annotated
// //rept:sorter, whose slice arguments detorder trusts to be sorted.
func collectSorters(pass *analysis.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !analysis.FuncHasDirective(fn, "sorter") {
				continue
			}
			if obj := pass.Info.Defs[fn.Name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

func checkFunc(pass *analysis.Pass, sup *analysis.Suppressions, sorters map[types.Object]bool, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !pass.IsMap(rng.X) {
			return true
		}
		if sup.Allows(rng.Pos(), "anyorder") {
			return true
		}
		if collected := collectOnly(pass, rng); collected != nil {
			if sortedLater(pass, sorters, fn.Body, rng, collected) {
				return true
			}
			pass.Reportf(rng.Pos(), "map keys collected from %s are never sorted before use", types.ExprString(rng.X))
			return true
		}
		if accumulationOnly(pass, rng) {
			return true
		}
		pass.Reportf(rng.Pos(), "order-sensitive iteration over map %s in deterministic code (collect keys and sort, or //rept:anyorder <why>)", types.ExprString(rng.X))
		return true
	})
}

// collectOnly reports whether the range body only appends to slices
// (`s = append(s, ...)`), returning the collected slice objects, or nil
// when the body does anything else.
func collectOnly(pass *analysis.Pass, rng *ast.RangeStmt) []types.Object {
	var collected []types.Object
	for _, s := range rng.Body.List {
		as, ok := s.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return nil
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !pass.IsBuiltin(call, "append") {
			return nil
		}
		lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok || types.ExprString(as.Lhs[0]) != types.ExprString(call.Args[0]) {
			return nil
		}
		obj := pass.Info.Uses[lhs]
		if obj == nil {
			obj = pass.Info.Defs[lhs]
		}
		if obj == nil {
			return nil
		}
		collected = append(collected, obj)
	}
	if len(collected) == 0 {
		return nil
	}
	return collected
}

// sortedLater reports whether every collected slice is, somewhere after
// the range statement, passed to a sorting call: sort.*/slices.*, or a
// same-package function annotated //rept:sorter.
func sortedLater(pass *analysis.Pass, sorters map[types.Object]bool, body *ast.BlockStmt, rng *ast.RangeStmt, collected []types.Object) bool {
	sorted := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() {
			return true
		}
		if !isSortCall(pass, sorters, call) {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					sorted[obj] = true
				}
			}
		}
		return true
	})
	for _, obj := range collected {
		if !sorted[obj] {
			return false
		}
	}
	return true
}

func isSortCall(pass *analysis.Pass, sorters map[types.Object]bool, call *ast.CallExpr) bool {
	if f := pass.CalleeFunc(call); f != nil {
		if sorters[f] {
			return true
		}
		if f.Pkg() != nil {
			switch f.Pkg().Path() {
			case "sort", "slices":
				return true
			}
		}
	}
	return false
}

// accumulationOnly reports whether every statement of the range body is
// an order-independent integer update or a keyed copy under the range
// key, making the iteration deterministic in effect.
func accumulationOnly(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	if len(rng.Body.List) == 0 {
		return false
	}
	keyObj := rangeVarObj(pass, rng.Key)
	for _, s := range rng.Body.List {
		switch s := s.(type) {
		case *ast.IncDecStmt:
			if !isIntegerType(pass.TypeOf(s.X)) {
				return false
			}
		case *ast.AssignStmt:
			if !commutativeAssign(pass, keyObj, s) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// commutativeAssign accepts `x op= v` with integer x and commutative op,
// and `dst[k] = v` where k is the range key (a keyed copy: distinct map
// keys make the writes independent).
func commutativeAssign(pass *analysis.Pass, keyObj types.Object, as *ast.AssignStmt) bool {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return isIntegerType(pass.TypeOf(as.Lhs[0]))
	case token.ASSIGN:
		idx, ok := ast.Unparen(as.Lhs[0]).(*ast.IndexExpr)
		if !ok || !pass.IsMap(idx.X) || keyObj == nil {
			return false
		}
		id, ok := ast.Unparen(idx.Index).(*ast.Ident)
		if !ok {
			return false
		}
		obj := pass.Info.Uses[id]
		return obj != nil && obj == keyObj
	}
	return false
}

func rangeVarObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}

func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
