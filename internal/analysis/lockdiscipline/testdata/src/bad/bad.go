// Package bad seeds channel operations and blocking calls while the
// annotated ingest mutex is held.
package bad

import (
	"sync"
	"time"
)

type coord struct {
	// mu is the ingest mutex.
	//
	//rept:ingestmu
	mu sync.Mutex
	ch chan int
	wg sync.WaitGroup
}

func (c *coord) send(v int) {
	c.mu.Lock()
	c.ch <- v // want `channel send while holding the ingest mutex in send`
	c.mu.Unlock()
}

func (c *coord) receive() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return <-c.ch // want `channel receive while holding the ingest mutex in receive`
}

// drainLocked is analyzed as entered with the mutex held (the Locked
// naming convention).
func (c *coord) drainLocked() {
	for range c.ch { // want `channel receive while holding the ingest mutex in drainLocked`
	}
}

func (c *coord) waits() {
	c.mu.Lock()
	c.wg.Wait()                  // want `blocking call while holding the ingest mutex in waits`
	time.Sleep(time.Millisecond) // want `blocking call while holding the ingest mutex in waits`
	c.mu.Unlock()
}

func (c *coord) selects(v int) {
	c.mu.Lock()
	select { // want `blocking select while holding the ingest mutex in selects`
	case c.ch <- v:
	}
	c.mu.Unlock()
}

func (c *coord) branchy(v int, flag bool) {
	c.mu.Lock()
	if flag {
		c.mu.Unlock()
	}
	// Held on the flag == false path: the join must keep the mutex held.
	c.ch <- v // want `channel send while holding the ingest mutex in branchy`
}
