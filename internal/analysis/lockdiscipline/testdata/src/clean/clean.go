// Package clean exercises the lock discipline done right: detach under
// the mutex, deliver after unlock, non-blocking select under the lock.
package clean

import "sync"

type coord struct {
	// mu is the ingest mutex.
	//
	//rept:ingestmu
	mu   sync.Mutex
	ch   chan int
	free chan []int
	cur  []int
}

// add appends under the mutex and sends only after unlocking.
func (c *coord) add(v int) {
	var full []int
	c.mu.Lock()
	c.cur = append(c.cur, v)
	if len(c.cur) >= 4 {
		full = c.cur
		c.cur = c.getLocked()
	}
	c.mu.Unlock()
	for _, x := range full {
		c.ch <- x
	}
}

// getLocked runs under the mutex; its select has a default case, so it
// never blocks.
func (c *coord) getLocked() []int {
	select {
	case b := <-c.free:
		return b[:0]
	default:
		return make([]int, 0, 4)
	}
}

// earlyUnlock releases on both paths before any channel work.
func (c *coord) earlyUnlock(v int, flag bool) {
	c.mu.Lock()
	if flag {
		c.mu.Unlock()
		c.ch <- v
		return
	}
	c.cur = append(c.cur, v)
	c.mu.Unlock()
	c.ch <- v
}

// unrelated never touches the mutex at all.
func (c *coord) unrelated(v int) {
	c.ch <- v
	<-c.ch
}
