// Package lockdiscipline implements the reptvet analyzer guarding the
// shard ingest mutex: while the mutex field annotated //rept:ingestmu is
// held, no channel send, channel receive, default-less select, or known
// blocking call (sync.WaitGroup.Wait, sync.Cond.Wait, time.Sleep) may
// run. A send to a full shard channel under that mutex stalls every other
// producer — and if the consumer needs the producer to drain first, it is
// a deadlock, the exact shape the sharded ingest layer must never
// reacquire.
//
// The analysis is a conservative intraprocedural walk: Lock/Unlock on the
// annotated field flip a held flag through straight-line code;
// if/else joins take the union (held on either arm counts as held after,
// unless one arm terminates); loop bodies and select clauses are walked
// with the state at entry; a deferred Unlock leaves the mutex held for
// the remainder of the function, which is exactly how the code behaves.
// Functions whose name ends in "Locked", or annotated //rept:locksheld,
// are analyzed as if the mutex were held on entry. A select with a
// default case is non-blocking and allowed.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rept/internal/analysis"
)

// Analyzer is the lockdiscipline analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc:  "forbid channel operations and blocking calls while the //rept:ingestmu mutex is held",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	mus := collectIngestMutexes(pass)
	if len(mus) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			held := strings.HasSuffix(fn.Name.Name, "Locked") ||
				analysis.FuncHasDirective(fn, "locksheld")
			c := &checker{pass: pass, mus: mus, fn: fn}
			c.stmts(fn.Body.List, held)
		}
	}
	return nil
}

// collectIngestMutexes resolves the field objects annotated
// //rept:ingestmu in this package's struct declarations.
func collectIngestMutexes(pass *analysis.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !analysis.FieldHasDirective(field, "ingestmu") {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						out[obj] = true
					}
				}
			}
			return true
		})
	}
	return out
}

type checker struct {
	pass *analysis.Pass
	mus  map[types.Object]bool
	fn   *ast.FuncDecl
}

// stmts walks a statement list with the held flag at entry and returns
// the flag after the last statement.
func (c *checker) stmts(list []ast.Stmt, held bool) bool {
	for _, s := range list {
		held = c.stmt(s, held)
	}
	return held
}

func (c *checker) stmt(s ast.Stmt, held bool) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			switch c.lockOp(call) {
			case "Lock":
				c.exprs(call.Args, held)
				return true
			case "Unlock":
				return false
			}
		}
		c.expr(s.X, held)
	case *ast.SendStmt:
		if held {
			c.pass.Reportf(s.Arrow, "channel send while holding the ingest mutex in %s", c.fn.Name.Name)
		}
		c.expr(s.Chan, held)
		c.expr(s.Value, held)
	case *ast.SelectStmt:
		hasDefault := false
		for _, clause := range s.Body.List {
			if clause.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if held && !hasDefault {
			c.pass.Reportf(s.Select, "blocking select while holding the ingest mutex in %s", c.fn.Name.Name)
		}
		for _, clause := range s.Body.List {
			c.stmts(clause.(*ast.CommClause).Body, held)
		}
	case *ast.DeferStmt:
		// A deferred Unlock keeps the mutex held until return; any
		// other deferred call runs after the body, outside this walk.
		if c.lockOp(s.Call) != "Unlock" {
			c.exprs(s.Call.Args, held)
		}
	case *ast.GoStmt:
		// The spawned goroutine does not run under this lock; starting
		// it never blocks.
		c.exprs(s.Call.Args, held)
	case *ast.AssignStmt:
		c.exprs(s.Rhs, held)
		c.exprs(s.Lhs, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					c.exprs(vs.Values, held)
				}
			}
		}
	case *ast.ReturnStmt:
		c.exprs(s.Results, held)
	case *ast.IncDecStmt:
		c.expr(s.X, held)
	case *ast.BlockStmt:
		return c.stmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = c.stmt(s.Init, held)
		}
		c.expr(s.Cond, held)
		bodyHeld := c.stmts(s.Body.List, held)
		elseHeld := held
		if s.Else != nil {
			elseHeld = c.stmt(s.Else, held)
		}
		switch {
		case terminates(s.Body):
			return elseHeld
		case s.Else != nil && terminatesStmt(s.Else):
			return bodyHeld
		default:
			return bodyHeld || elseHeld
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held = c.stmt(s.Init, held)
		}
		if s.Cond != nil {
			c.expr(s.Cond, held)
		}
		c.stmts(s.Body.List, held)
		return held
	case *ast.RangeStmt:
		if held {
			if t := c.pass.TypeOf(s.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					c.pass.Reportf(s.For, "channel receive while holding the ingest mutex in %s", c.fn.Name.Name)
				}
			}
		}
		c.expr(s.X, held)
		c.stmts(s.Body.List, held)
		return held
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = c.stmt(s.Init, held)
		}
		if s.Tag != nil {
			c.expr(s.Tag, held)
		}
		out := held
		for _, clause := range s.Body.List {
			out = out || c.stmts(clause.(*ast.CaseClause).Body, held)
		}
		return out
	case *ast.TypeSwitchStmt:
		out := held
		for _, clause := range s.Body.List {
			out = out || c.stmts(clause.(*ast.CaseClause).Body, held)
		}
		return out
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, held)
	}
	return held
}

func (c *checker) exprs(list []ast.Expr, held bool) {
	for _, e := range list {
		c.expr(e, held)
	}
}

// expr reports channel receives and known blocking calls inside e when
// the mutex is held.
func (c *checker) expr(e ast.Expr, held bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && held {
				c.pass.Reportf(n.OpPos, "channel receive while holding the ingest mutex in %s", c.fn.Name.Name)
			}
		case *ast.CallExpr:
			if held && c.isBlockingCall(n) {
				c.pass.Reportf(n.Pos(), "blocking call while holding the ingest mutex in %s", c.fn.Name.Name)
			}
		case *ast.FuncLit:
			// A function literal's body runs when called, not here;
			// if it is invoked under the lock it is analyzed at the
			// call through its named callees only.
			return false
		}
		return true
	})
}

// lockOp classifies call as "Lock"/"Unlock" on an annotated ingest mutex,
// or "" otherwise.
func (c *checker) lockOp(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "Unlock") {
		return ""
	}
	recv, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if obj := c.pass.Info.Uses[recv.Sel]; obj != nil && c.mus[obj] {
		return sel.Sel.Name
	}
	return ""
}

// isBlockingCall recognizes calls that can park the goroutine:
// sync.WaitGroup.Wait, sync.Cond.Wait, time.Sleep, and Lock on any other
// sync mutex (lock-ordering hazard under the ingest mutex).
func (c *checker) isBlockingCall(call *ast.CallExpr) bool {
	f := c.pass.CalleeFunc(call)
	if f == nil || f.Pkg() == nil {
		return false
	}
	switch f.Pkg().Path() {
	case "time":
		return f.Name() == "Sleep"
	case "sync":
		return f.Name() == "Wait" || f.Name() == "Lock" || f.Name() == "RLock"
	}
	return false
}

// terminates reports whether a block's last statement leaves the
// function (return or panic), so control never falls through it.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	return terminatesStmt(b.List[len(b.List)-1])
}

func terminatesStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BlockStmt:
		return terminates(s)
	case *ast.ExprStmt:
		call, ok := ast.Unparen(s.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}
