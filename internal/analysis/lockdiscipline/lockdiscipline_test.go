package lockdiscipline_test

import (
	"testing"

	"rept/internal/analysis/analysistest"
	"rept/internal/analysis/lockdiscipline"
)

func TestBad(t *testing.T) {
	analysistest.Run(t, lockdiscipline.Analyzer, "./testdata/src/bad")
}

func TestClean(t *testing.T) {
	analysistest.Run(t, lockdiscipline.Analyzer, "./testdata/src/clean")
}
