// Package clean exercises the shapes hotpathalloc must accept in a
// //rept:hotpath function, plus an unannotated function it must ignore.
package clean

// hot contains only allowed constructs: in-place append growth, map
// index updates, string conversions in comparison positions, and one
// justified suppression.
//
//rept:hotpath
func hot(xs []int, m map[uint64]int32, b []byte, scratch []int) []int {
	xs = append(xs, 1)
	scratch = scratch[:0]
	scratch = append(scratch, xs...)
	m[7]++
	delete(m, 9)
	switch string(b) {
	case "add":
		xs = append(xs, 2)
	}
	if string(b) == "del" && len(xs) > 0 {
		xs = xs[:len(xs)-1]
	}
	warm := make([]int, 4) //rept:allowalloc deliberate one-time warm-up
	xs = append(xs, warm...)
	return xs
}

// cold is not annotated, so its allocations are none of the analyzer's
// business.
func cold(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
