// Package bad seeds one of every construct hotpathalloc must flag
// inside a //rept:hotpath function.
package bad

import "fmt"

type point struct{ x, y int }

func cold() {}

// hot is the seeded hot function: every line below allocates.
//
//rept:hotpath
func hot(xs []int, b []byte) []int {
	buf := make([]byte, 8) // want `make`
	_ = buf
	p := new(point) // want `new`
	_ = p
	ys := append(xs[:0:0], xs...) // want `append result not assigned back`
	_ = ys
	m := map[int]int{1: 2} // want `map literal`
	_ = m
	sl := []int{1, 2} // want `slice literal`
	_ = sl
	pt := &point{1, 2} // want `&composite literal`
	_ = pt
	f := func() {} // want `function literal`
	f()
	go cold()            // want `go statement`
	defer cold()         // want `deferred call`
	fmt.Println(len(xs)) // want `fmt call` `implicit conversion of int to interface`
	s := string(b)       // want `string/\[\]byte conversion outside a comparison`
	_ = s
	e := any(point{1, 2}) // want `conversion to interface`
	_ = e
	return xs
}
