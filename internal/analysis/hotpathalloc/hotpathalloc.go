// Package hotpathalloc implements the reptvet analyzer enforcing the
// zero-allocation hot path: functions annotated //rept:hotpath — the
// per-event spine through Adjacency.Add/Remove, the neighbor-set
// intersections, proc.processEdge/deleteEdge, the ctab counter ops, and
// reptserve's parseEdgeLine — must not contain allocating constructs.
//
// Flagged inside a hot function:
//
//   - make and new calls (capacity building belongs in cold helpers like
//     ctab.init, nset.spill, or the rehash/promote/grow family)
//   - append whose result is not assigned back to its own first argument
//     (amortized in-place growth is the one allowed append shape)
//   - map and slice composite literals, and &T{} pointer literals
//   - function literals (escaping closures) and go statements
//   - deferred calls (deferred work on a per-event path is overhead even
//     when open-coded)
//   - calls into fmt, log, or errors
//   - conversions to interface types, and implicit interface conversions
//     at call sites when the argument is not pointer-shaped
//   - string(b []byte) / []byte(s) conversions outside comparison and
//     switch-tag positions (where the compiler elides the copy)
//
// The dynamic AllocsPerRun gates measure the same paths end to end; this
// analyzer catches the constructs at compile time, on every build, on
// paths tests do not exercise. A deliberate exception is suppressed with
// //rept:allowalloc <why> on the offending line.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"rept/internal/analysis"
)

// Analyzer is the hotpathalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid allocating constructs in //rept:hotpath functions",
	Run:  run,
}

// allocPackages are packages whose mere invocation allocates.
var allocPackages = map[string]string{
	"fmt":    "fmt call",
	"log":    "log call",
	"errors": "errors call",
}

func run(pass *analysis.Pass) error {
	sup := analysis.NewSuppressions(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !analysis.FuncHasDirective(fn, "hotpath") {
				continue
			}
			c := &checker{pass: pass, sup: sup, fn: fn.Name.Name}
			c.stmts(fn.Body.List)
		}
	}
	return nil
}

// checker walks one hot function's body tracking enough statement context
// to recognize the allowed append and string-conversion shapes.
type checker struct {
	pass *analysis.Pass
	sup  *analysis.Suppressions
	fn   string
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.sup.Allows(pos, "allowalloc") {
		return
	}
	args = append(args, c.fn)
	c.pass.Reportf(pos, format+" in hot path %s", args...)
}

func (c *checker) stmts(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

// stmt dispatches one statement, handling the forms that give their
// sub-expressions special context (assignments for append, switches and
// comparisons for string conversions).
func (c *checker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.AssignStmt:
		for i, rhs := range s.Rhs {
			var lhs ast.Expr
			if len(s.Lhs) == len(s.Rhs) {
				lhs = s.Lhs[i]
			}
			c.assignExpr(lhs, rhs, s.Tok)
		}
		for _, lhs := range s.Lhs {
			c.expr(lhs)
		}
	case *ast.ExprStmt:
		c.expr(s.X)
	case *ast.SendStmt:
		c.expr(s.Chan)
		c.expr(s.Value)
	case *ast.IncDecStmt:
		c.expr(s.X)
	case *ast.GoStmt:
		c.report(s.Pos(), "go statement")
	case *ast.DeferStmt:
		c.report(s.Pos(), "deferred call")
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.expr(r)
		}
	case *ast.BlockStmt:
		c.stmts(s.List)
	case *ast.IfStmt:
		c.stmt(s.Init)
		c.expr(s.Cond)
		c.stmt(s.Body)
		c.stmt(s.Else)
	case *ast.ForStmt:
		c.stmt(s.Init)
		if s.Cond != nil {
			c.expr(s.Cond)
		}
		c.stmt(s.Post)
		c.stmt(s.Body)
	case *ast.RangeStmt:
		c.expr(s.X)
		c.stmt(s.Body)
	case *ast.SwitchStmt:
		c.stmt(s.Init)
		if s.Tag != nil {
			c.comparisonOperand(s.Tag)
		}
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CaseClause)
			for _, e := range cc.List {
				c.comparisonOperand(e)
			}
			c.stmts(cc.Body)
		}
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init)
		c.stmt(s.Assign)
		for _, cl := range s.Body.List {
			c.stmts(cl.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			c.stmt(cc.Comm)
			c.stmts(cc.Body)
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v)
					}
				}
			}
		}
	case *ast.BranchStmt, *ast.EmptyStmt:
	default:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				c.expr(e)
				return false
			}
			return true
		})
	}
}

// assignExpr checks one assignment's RHS with knowledge of its LHS, which
// is what legitimizes the amortized `x = append(x, ...)` idiom.
func (c *checker) assignExpr(lhs, rhs ast.Expr, tok token.Token) {
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && c.pass.IsBuiltin(call, "append") {
		if lhs == nil || tok != token.ASSIGN || !sameExpr(lhs, call.Args[0]) {
			c.report(rhs.Pos(), "append result not assigned back to its first argument")
		}
		for _, a := range call.Args[1:] {
			c.expr(a)
		}
		return
	}
	c.expr(rhs)
}

// comparisonOperand checks an expression in a position where byte-slice/
// string conversions are free (switch tags, case values, comparisons).
func (c *checker) comparisonOperand(e ast.Expr) {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok && c.pass.IsConversion(call) && isStringBytesConv(c.pass, call) {
		c.expr(call.Args[0])
		return
	}
	c.expr(e)
}

func (c *checker) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		c.call(e)
	case *ast.CompositeLit:
		c.composite(e, false)
	case *ast.FuncLit:
		c.report(e.Pos(), "function literal (may escape)")
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if cl, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				c.composite(cl, true)
				return
			}
		}
		c.expr(e.X)
	case *ast.BinaryExpr:
		if e.Op.IsOperator() && isComparison(e.Op) {
			c.comparisonOperand(e.X)
			c.comparisonOperand(e.Y)
			return
		}
		c.expr(e.X)
		c.expr(e.Y)
	case *ast.ParenExpr:
		c.expr(e.X)
	case *ast.SelectorExpr:
		c.expr(e.X)
	case *ast.IndexExpr:
		c.expr(e.X)
		c.expr(e.Index)
	case *ast.IndexListExpr:
		c.expr(e.X)
		for _, i := range e.Indices {
			c.expr(i)
		}
	case *ast.SliceExpr:
		c.expr(e.X)
		c.expr(e.Low)
		c.expr(e.High)
		c.expr(e.Max)
	case *ast.StarExpr:
		c.expr(e.X)
	case *ast.TypeAssertExpr:
		c.expr(e.X)
	case *ast.KeyValueExpr:
		c.expr(e.Key)
		c.expr(e.Value)
	}
}

func (c *checker) call(call *ast.CallExpr) {
	switch {
	case c.pass.IsBuiltin(call, "make"):
		c.report(call.Pos(), "make")
	case c.pass.IsBuiltin(call, "new"):
		c.report(call.Pos(), "new")
	case c.pass.IsBuiltin(call, "append"):
		// Reached only outside an assignment context (argument, return),
		// where the grown slice is always a fresh allocation candidate.
		c.report(call.Pos(), "append result not assigned back to its first argument")
	case c.pass.IsConversion(call):
		c.conversion(call)
	default:
		if pkg, _ := c.pass.CalleePath(call); pkg != "" {
			if what, ok := allocPackages[pkg]; ok {
				c.report(call.Pos(), "%s", what)
			}
		}
		c.interfaceArgs(call)
	}
	for _, a := range call.Args {
		c.expr(a)
	}
}

func (c *checker) conversion(call *ast.CallExpr) {
	to := c.pass.TypeOf(call.Fun)
	if to == nil || len(call.Args) != 1 {
		return
	}
	if types.IsInterface(to.Underlying()) {
		from := c.pass.TypeOf(call.Args[0])
		if from != nil && !types.IsInterface(from.Underlying()) {
			c.report(call.Pos(), "conversion to interface %s", to)
		}
		return
	}
	if isStringBytesConv(c.pass, call) {
		c.report(call.Pos(), "string/[]byte conversion outside a comparison")
	}
}

// interfaceArgs flags implicit interface conversions at a call site when
// the argument is not pointer-shaped (pointer-shaped values fit the
// interface data word and do not allocate).
func (c *checker) interfaceArgs(call *ast.CallExpr) {
	sig, ok := typeAsSignature(c.pass.TypeOf(call.Fun))
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := c.pass.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) || isUntypedNil(at) || pointerShaped(at) {
			continue
		}
		c.report(arg.Pos(), "implicit conversion of %s to interface %s", at, pt)
	}
}

func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// pointerShaped reports whether values of t occupy a single pointer word,
// making their interface conversion allocation-free.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.UnsafePointer
}

// isStringBytesConv reports a string(b []byte) or []byte(s) conversion.
func isStringBytesConv(pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	to, from := pass.TypeOf(call.Fun), pass.TypeOf(call.Args[0])
	if to == nil || from == nil {
		return false
	}
	return (isString(to) && isByteSlice(from)) || (isByteSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isComparison(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		return true
	}
	return false
}

// composite flags allocating composite literals: map and slice literals
// always, struct literals only when their address is taken.
func (c *checker) composite(cl *ast.CompositeLit, addressed bool) {
	t := c.pass.TypeOf(cl)
	if t != nil {
		switch t.Underlying().(type) {
		case *types.Map:
			c.report(cl.Pos(), "map literal")
		case *types.Slice:
			c.report(cl.Pos(), "slice literal")
		default:
			if addressed {
				c.report(cl.Pos(), "&composite literal")
			}
		}
	}
	for _, e := range cl.Elts {
		c.expr(e)
	}
}

// sameExpr reports whether two expressions are syntactically identical
// (the `x = append(x, ...)` test).
func sameExpr(a, b ast.Expr) bool {
	return types.ExprString(ast.Unparen(a)) == types.ExprString(ast.Unparen(b))
}
