package hotpathalloc_test

import (
	"testing"

	"rept/internal/analysis/analysistest"
	"rept/internal/analysis/hotpathalloc"
)

func TestBad(t *testing.T) {
	analysistest.Run(t, hotpathalloc.Analyzer, "./testdata/src/bad")
}

func TestClean(t *testing.T) {
	analysistest.Run(t, hotpathalloc.Analyzer, "./testdata/src/clean")
}
