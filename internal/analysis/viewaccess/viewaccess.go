// Package viewaccess implements the reptvet analyzer enforcing the
// epoch-view access discipline: a query.View is immutable and published
// through the Publisher's atomic pointer, and consumers must re-load it
// through the publisher on every use. Retaining a View (or *View, or an
// atomic.Pointer[View]) in a struct field or package-level variable
// outside rept/internal/query keeps serving a stale epoch after the next
// publish, silently undoing the freshness guarantee — so every such
// retention site is a diagnostic.
//
// The query package itself is exempt (the Publisher is the one legitimate
// holder). A deliberate cross-epoch cache elsewhere is declared with
// //rept:viewholder on the field, variable, or assignment line.
//
// Local variables are allowed: a View loaded at the top of a request and
// used within that call observes one consistent epoch by design.
package viewaccess

import (
	"go/ast"
	"go/token"
	"go/types"

	"rept/internal/analysis"
)

// Analyzer is the viewaccess analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "viewaccess",
	Doc:  "forbid retaining query.View beyond a single epoch outside its home package",
	Run:  run,
}

const queryPkg = "rept/internal/query"

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == queryPkg {
		return nil
	}
	sup := analysis.NewSuppressions(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.GenDecl:
				checkGenDecl(pass, decl)
			case *ast.FuncDecl:
				if decl.Body != nil {
					checkFunc(pass, sup, decl)
				}
			}
		}
	}
	return nil
}

// checkGenDecl flags struct fields and package-level variables whose type
// retains a View.
func checkGenDecl(pass *analysis.Pass, decl *ast.GenDecl) {
	switch decl.Tok {
	case token.TYPE:
		for _, spec := range decl.Specs {
			st, ok := spec.(*ast.TypeSpec).Type.(*ast.StructType)
			if !ok {
				continue
			}
			for _, field := range st.Fields.List {
				if !viewish(pass.TypeOf(field.Type)) || analysis.FieldHasDirective(field, "viewholder") {
					continue
				}
				pass.Reportf(field.Pos(), "struct field retains query.View across epochs (re-load from the publisher, or declare //rept:viewholder)")
			}
		}
	case token.VAR:
		for _, spec := range decl.Specs {
			vs := spec.(*ast.ValueSpec)
			if analysis.SpecHasDirective(decl, vs.Doc, vs.Comment, "viewholder") {
				continue
			}
			for _, name := range vs.Names {
				obj := pass.Info.Defs[name]
				if obj == nil || obj.Parent() != pass.Pkg.Scope() || !viewish(obj.Type()) {
					continue
				}
				pass.Reportf(name.Pos(), "package-level variable retains query.View across epochs (re-load from the publisher, or declare //rept:viewholder)")
			}
		}
	}
}

// checkFunc flags assignments that store a View into a retained location:
// a struct field (selector) or a package-level variable.
func checkFunc(pass *analysis.Pass, sup *analysis.Suppressions, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			if !viewish(pass.TypeOf(as.Rhs[i])) || !retainedLocation(pass, lhs) {
				continue
			}
			if sup.Allows(as.Pos(), "viewholder") {
				continue
			}
			pass.Reportf(as.Pos(), "query.View stored into a retained location in %s (epoch views must be re-loaded, not cached)", fn.Name.Name)
		}
		return true
	})
}

// retainedLocation reports whether lhs outlives the enclosing call: a
// field selector, an element of a map/slice, or a package-level variable.
func retainedLocation(pass *analysis.Pass, lhs ast.Expr) bool {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		// A selector on a package name is a package-level variable;
		// any other selector is a field write. Both retain.
		return true
	case *ast.IndexExpr:
		return true
	case *ast.Ident:
		obj := pass.Info.Uses[lhs]
		if obj == nil {
			obj = pass.Info.Defs[lhs]
		}
		return obj != nil && obj.Parent() == pass.Pkg.Scope()
	}
	return false
}

// viewish reports whether t is query.View, *query.View, or an
// atomic.Pointer[query.View] (directly or behind one pointer).
func viewish(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	if obj.Pkg().Path() == queryPkg && obj.Name() == "View" {
		return true
	}
	if obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Pointer" {
		if args := named.TypeArgs(); args != nil && args.Len() == 1 {
			return viewish(args.At(0))
		}
	}
	return false
}
