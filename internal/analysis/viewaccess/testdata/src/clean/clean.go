// Package clean exercises the allowed epoch-view usage: load through the
// publisher, use locally within one call, or declare a deliberate holder.
package clean

import (
	"rept/internal/graph"
	"rept/internal/query"
)

// server re-loads the view from its publisher on every request, the
// intended consumption pattern.
type server struct {
	pub *query.Publisher
}

func (s *server) epoch() uint64 {
	v := s.pub.View()
	return v.Epoch
}

func (s *server) local(n graph.NodeID) float64 {
	v := s.pub.View()
	return v.LocalOf(n)
}

// debugCache deliberately pins one epoch for offline comparison.
type debugCache struct {
	pinned *query.View //rept:viewholder frozen epoch for A/B debugging
}

func (d *debugCache) pin(p *query.Publisher) {
	d.pinned = p.View() //rept:viewholder frozen epoch for A/B debugging
}
