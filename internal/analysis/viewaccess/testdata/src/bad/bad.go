// Package bad retains query epoch views in every way viewaccess must
// flag: struct fields, package-level variables, and stores into retained
// locations.
package bad

import (
	"sync/atomic"

	"rept/internal/query"
)

// holder caches views across epochs.
type holder struct {
	view   *query.View                // want `struct field retains query.View`
	val    query.View                 // want `struct field retains query.View`
	atomic atomic.Pointer[query.View] // want `struct field retains query.View`
}

var cached *query.View // want `package-level variable retains query.View`

func stashField(h *holder, p *query.Publisher) {
	h.view = p.View() // want `query.View stored into a retained location in stashField`
}

func stashGlobal(p *query.Publisher) {
	cached = p.View() // want `query.View stored into a retained location in stashGlobal`
}

func stashMap(cache map[string]*query.View, p *query.Publisher) {
	cache["latest"] = p.View() // want `query.View stored into a retained location in stashMap`
}
