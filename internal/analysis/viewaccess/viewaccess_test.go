package viewaccess_test

import (
	"testing"

	"rept/internal/analysis/analysistest"
	"rept/internal/analysis/viewaccess"
)

func TestBad(t *testing.T) {
	analysistest.Run(t, viewaccess.Analyzer, "./testdata/src/bad")
}

func TestClean(t *testing.T) {
	analysistest.Run(t, viewaccess.Analyzer, "./testdata/src/clean")
}
