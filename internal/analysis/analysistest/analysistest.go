// Package analysistest runs an analyzer over golden fixture packages and
// checks its diagnostics against `// want` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest without the dependency.
//
// Fixtures live under the analyzer package's testdata/src/<case>/ and are
// loaded through the same go-list loader cmd/reptvet uses, so they are
// real, fully type-checked packages (they may import the standard library
// and module-internal packages). A line expecting diagnostics carries a
// trailing comment of one or more quoted regular expressions:
//
//	m := make(map[int]int) // want `make` `map`
//	bad()                  // want "exactly one diagnostic on this line"
//
// Every reported diagnostic must be matched by a want on its line and
// every want must match a diagnostic; anything else fails the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"rept/internal/analysis"
	"rept/internal/analysis/load"
)

// want is one expectation: a pattern expected to match a diagnostic
// reported on its line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture package at pattern (relative to the calling test's
// package directory, e.g. "./testdata/src/bad"), runs a over it, and
// reports every mismatch between diagnostics and `// want` expectations.
func Run(t *testing.T, a *analysis.Analyzer, pattern string) {
	t.Helper()
	pkgs, err := load.Packages(".", pattern)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pattern, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s matched no packages", pattern)
	}
	for _, pkg := range pkgs {
		pass := &analysis.Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, pkg.Path, err)
		}
		wants, err := collectWants(pkg.Fset, pkg.Files)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range pass.Diagnostics() {
			pos := pkg.Fset.Position(d.Pos)
			if w := match(wants, pos.Filename, pos.Line, d.Message); w == nil {
				t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
			}
		}
	}
}

// match finds the first unmatched want on the diagnostic's line whose
// pattern matches, marks it, and returns it.
func match(wants []*want, file string, line int, msg string) *want {
	for _, w := range wants {
		if w.matched || w.file != file || w.line != line {
			continue
		}
		if w.re.MatchString(msg) {
			w.matched = true
			return w
		}
	}
	return nil
}

// collectWants parses every `// want` comment into expectations.
func collectWants(fset *token.FileSet, files []*ast.File) ([]*want, error) {
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				patterns, err := splitPatterns(text)
				if err != nil {
					return nil, fmt.Errorf("%s: bad want comment: %v", pos, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %q: %v", pos, p, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

// splitPatterns splits `"a" "b c"` or backquoted equivalents into their
// unquoted pattern strings.
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for len(s) > 0 {
		quote := s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("pattern must be quoted: %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated pattern: %q", s)
		}
		out = append(out, s[1:1+end])
		s = strings.TrimSpace(s[2+end:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return out, nil
}
