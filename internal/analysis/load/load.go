// Package load builds type-checked packages for the reptvet analyzers
// using only the standard library: `go list -deps -json` resolves the
// import graph (module-aware, build-tag-aware), and each package is then
// parsed and type-checked from source in dependency order. Dependency
// packages are checked with function bodies ignored, so the cost of a
// full ./... load stays dominated by the target packages themselves.
//
// This is deliberately the same contract as golang.org/x/tools/go/packages
// (LoadAllSyntax for targets, LoadTypes for deps) without the external
// dependency; the analyzers only consume the ast/types surface, so they
// could be rebased onto x/tools unchanged if it ever enters the module.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one type-checked package: syntax and type information for
// targets, types only (empty function bodies) for dependencies.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory holding the package's sources.
	Dir string
	// Target reports whether the package matched the load patterns
	// itself (false for packages pulled in only as dependencies).
	Target bool
	// Fset is the file set all syntax positions resolve against (shared
	// by every package of one load).
	Fset *token.FileSet
	// Files is the parsed syntax, with comments, in GoFiles order.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries full type information for target packages; it is nil
	// for dependency packages.
	Info *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Packages loads the packages matched by patterns (resolved in dir) plus
// their whole dependency closure, returning only the target packages in
// `go list` order. CGO is disabled so the file sets are the pure-Go ones
// the stream-serving builds use.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	args := append([]string{"list", "-deps", "-json=ImportPath,Dir,Standard,DepOnly,GoFiles,Imports,ImportMap,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var listed []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := &listPackage{}
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		listed = append(listed, lp)
	}

	fset := token.NewFileSet()
	byPath := make(map[string]*Package, len(listed))
	var targets []*Package
	// -deps emits dependencies before dependents, so a single in-order
	// pass always finds every import already checked.
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.ImportPath == "unsafe" {
			byPath["unsafe"] = &Package{Path: "unsafe", Target: false, Fset: fset, Types: types.Unsafe}
			continue
		}
		pkg, err := check(fset, lp, byPath)
		if err != nil {
			return nil, err
		}
		byPath[lp.ImportPath] = pkg
		if pkg.Target {
			targets = append(targets, pkg)
		}
	}
	return targets, nil
}

// check parses and type-checks one listed package against the already
// loaded dependencies.
func check(fset *token.FileSet, lp *listPackage, byPath map[string]*Package) (*Package, error) {
	pkg := &Package{
		Path:   lp.ImportPath,
		Dir:    lp.Dir,
		Target: !lp.DepOnly,
		Fset:   fset,
	}
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", lp.ImportPath, err)
		}
		pkg.Files = append(pkg.Files, f)
	}

	conf := types.Config{
		Importer:         mapImporter{byPath: byPath, importMap: lp.ImportMap},
		IgnoreFuncBodies: lp.DepOnly,
		Sizes:            types.SizesFor("gc", runtime.GOARCH),
		// Tolerate residual errors in dependency packages (assembly-backed
		// declarations, compiler intrinsics); targets stay strict.
		Error: func(error) {},
	}
	var firstErr error
	if !lp.DepOnly {
		conf.Error = func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		}
		pkg.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
			Instances:  make(map[*ast.Ident]types.Instance),
		}
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, pkg.Files, pkg.Info)
	if firstErr != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, firstErr)
	}
	if err != nil && !lp.DepOnly {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

// mapImporter resolves one package's imports against the loaded closure,
// honoring go list's ImportMap (stdlib vendoring rewrites source import
// paths like golang.org/x/net/... to vendor/golang.org/x/net/...).
type mapImporter struct {
	byPath    map[string]*Package
	importMap map[string]string
}

var _ types.Importer = mapImporter{}

func (m mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if p, ok := m.byPath[path]; ok {
		return p.Types, nil
	}
	// Unreachable when go list succeeded, but fail with a real message
	// rather than a nil-package panic inside go/types.
	return nil, fmt.Errorf("load: import %q not in the go list closure", path)
}
