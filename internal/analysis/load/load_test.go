package load

import (
	"testing"
	"time"
)

// TestLoadWholeModule proves the loader can type-check the entire module
// plus its stdlib closure from source — the exact workload cmd/reptvet
// runs in CI — and that target/dependency classification holds.
func TestLoadWholeModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the full stdlib closure")
	}
	start := time.Now()
	pkgs, err := Packages("../../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("loaded %d target packages in %v", len(pkgs), time.Since(start))
	want := map[string]bool{
		"rept":                   false,
		"rept/internal/core":     false,
		"rept/internal/graph":    false,
		"rept/internal/shard":    false,
		"rept/cmd/reptserve":     false,
		"rept/internal/query":    false,
		"rept/internal/snapshot": false,
	}
	for _, p := range pkgs {
		if !p.Target {
			t.Errorf("%s returned as a non-target", p.Path)
		}
		if p.Info == nil || p.Types == nil {
			t.Errorf("%s missing type information", p.Path)
		}
		if len(p.Files) == 0 {
			t.Errorf("%s has no syntax", p.Path)
		}
		if _, ok := want[p.Path]; ok {
			want[p.Path] = true
		}
	}
	for path, seen := range want {
		if !seen {
			t.Errorf("package %s missing from ./... load", path)
		}
	}
}

// TestLoadSinglePackage checks a narrow pattern returns only its target.
func TestLoadSinglePackage(t *testing.T) {
	pkgs, err := Packages("../../..", "./internal/hashing")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "rept/internal/hashing" {
		t.Fatalf("got %d packages, want exactly rept/internal/hashing", len(pkgs))
	}
	if pkgs[0].Types.Scope().Lookup("Mix64") == nil {
		t.Error("rept/internal/hashing scope is missing Mix64")
	}
}
