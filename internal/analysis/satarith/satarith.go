// Package satarith implements the reptvet analyzer guarding saturating
// counter arithmetic. Types annotated //rept:satcounter (the core
// triangle-count table's satcount, the degree table's degcount) clamp at
// their bounds instead of wrapping; the clamping lives in a handful of
// functions annotated //rept:sathelper. Everywhere else, raw `+`, `-`,
// `+=`, `-=`, `++`, `--` on a satcounter value is a wrap waiting to
// happen, and this analyzer reports it.
//
// Satcounter types are deliberately unexported, so every arithmetic site
// is in the type's own package, where the directive on the type
// declaration is visible to the analyzer. Comparisons, conversions, and
// plain assignment are untouched — only additive operators are the
// hazard.
package satarith

import (
	"go/ast"
	"go/token"
	"go/types"

	"rept/internal/analysis"
)

// Analyzer is the satarith analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "satarith",
	Doc:  "forbid raw additive arithmetic on //rept:satcounter types outside //rept:sathelper functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	satTypes := collectSatTypes(pass)
	if len(satTypes) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || analysis.FuncHasDirective(fn, "sathelper") {
				continue
			}
			checkFunc(pass, satTypes, fn)
		}
	}
	return nil
}

// collectSatTypes resolves the type objects of this package's
// //rept:satcounter declarations.
func collectSatTypes(pass *analysis.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				if !analysis.SpecHasDirective(gd, ts.Doc, ts.Comment, "satcounter") {
					continue
				}
				if obj := pass.Info.Defs[ts.Name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}

func checkFunc(pass *analysis.Pass, satTypes map[types.Object]bool, fn *ast.FuncDecl) {
	sat := func(e ast.Expr) bool { return isSatType(pass.TypeOf(e), satTypes) }
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if (n.Op == token.ADD || n.Op == token.SUB) && (sat(n.X) || sat(n.Y)) {
				pass.Reportf(n.OpPos, "raw %s on saturating counter type in %s (use the //rept:sathelper accessors)", n.Op, fn.Name.Name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN {
				for _, lhs := range n.Lhs {
					if sat(lhs) {
						pass.Reportf(n.TokPos, "raw %s on saturating counter type in %s (use the //rept:sathelper accessors)", n.Tok, fn.Name.Name)
					}
				}
			}
		case *ast.IncDecStmt:
			if sat(n.X) {
				pass.Reportf(n.TokPos, "raw %s on saturating counter type in %s (use the //rept:sathelper accessors)", n.Tok, fn.Name.Name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.SUB && sat(n.X) {
				pass.Reportf(n.OpPos, "raw negation of saturating counter type in %s (use the //rept:sathelper accessors)", fn.Name.Name)
			}
		}
		return true
	})
}

// isSatType reports whether t (or its pointee) is a named type declared
// //rept:satcounter in this package.
func isSatType(t types.Type, satTypes map[types.Object]bool) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && satTypes[named.Obj()]
}
