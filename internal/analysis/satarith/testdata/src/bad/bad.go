// Package bad seeds raw arithmetic on a saturating counter type outside
// its //rept:sathelper accessors.
package bad

// cnt clamps at the int32 bounds; arithmetic belongs in helpers.
//
//rept:satcounter
type cnt int32

type table struct{ vals []cnt }

func misuse(t *table, i int) cnt {
	t.vals[i] += 1            // want `raw \+= on saturating counter type`
	t.vals[i] = t.vals[i] + 1 // want `raw \+ on saturating counter type`
	t.vals[i]++               // want `raw \+\+ on saturating counter type`
	x := t.vals[i]
	x--        // want `raw -- on saturating counter type`
	y := x - 1 // want `raw - on saturating counter type`
	return -y  // want `raw negation of saturating counter type`
}
