// Package clean exercises the allowed uses of a saturating counter type:
// helper-internal arithmetic, comparisons, conversions, plain stores.
package clean

import "math"

// cnt clamps at the int32 bounds; arithmetic belongs in helpers.
//
//rept:satcounter
type cnt int32

type table struct {
	vals []cnt
	sat  uint64
}

// bump adds delta with saturating arithmetic, the designated helper.
//
//rept:sathelper
func (t *table) bump(i int, delta int32) (old, cur int32) {
	old = int32(t.vals[i])
	wide := int64(old) + int64(delta)
	switch {
	case wide > math.MaxInt32:
		cur = math.MaxInt32
		t.sat++
	case wide < math.MinInt32:
		cur = math.MinInt32
		t.sat++
	default:
		cur = int32(wide)
	}
	t.vals[i] = cnt(cur)
	return old, cur
}

// read compares, converts, and copies — none of which can wrap.
func read(t *table, i, j int) int32 {
	if t.vals[i] > t.vals[j] {
		t.vals[j] = t.vals[i]
	}
	if t.vals[i] == 0 {
		return 0
	}
	return int32(t.vals[i])
}
