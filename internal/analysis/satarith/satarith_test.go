package satarith_test

import (
	"testing"

	"rept/internal/analysis/analysistest"
	"rept/internal/analysis/satarith"
)

func TestBad(t *testing.T) {
	analysistest.Run(t, satarith.Analyzer, "./testdata/src/bad")
}

func TestClean(t *testing.T) {
	analysistest.Run(t, satarith.Analyzer, "./testdata/src/clean")
}
