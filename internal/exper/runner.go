package exper

import (
	"fmt"
	"io"
	"time"
)

// ExperimentIDs lists every runnable experiment in DESIGN.md order.
var ExperimentIDs = []string{
	"table2", "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
	"variance", "ablation-combine", "ablation-hash",
	"variants", "limits", "coverage",
}

// Run executes one experiment (or "all") under the profile, renders its
// table(s) to w, and — if csvDir is non-empty — writes CSVs there.
func Run(id string, p Profile, seed int64, w io.Writer, csvDir string) error {
	ids := []string{id}
	if id == "all" {
		ids = ExperimentIDs
	}
	for _, one := range ids {
		start := time.Now()
		table, err := runOne(one, p, seed)
		if err != nil {
			return fmt.Errorf("exper: %s: %w", one, err)
		}
		table.Notes = append(table.Notes,
			fmt.Sprintf("profile=%s scale=%.2f elapsed=%.1fs", p.Name, p.Scale, time.Since(start).Seconds()))
		if err := table.Render(w); err != nil {
			return err
		}
		if csvDir != "" {
			if err := table.WriteCSV(csvDir); err != nil {
				return err
			}
		}
	}
	return nil
}

func runOne(id string, p Profile, seed int64) (*Table, error) {
	switch id {
	case "table2":
		return Table2(p)
	case "fig1":
		return Fig1(p)
	case "fig3":
		r, err := GlobalAccuracy(p, 100, p.CSmallP, seed)
		if err != nil {
			return nil, err
		}
		return r.Table("fig3"), nil
	case "fig4":
		r, err := GlobalAccuracy(p, 10, p.CLargeP, seed)
		if err != nil {
			return nil, err
		}
		return r.Table("fig4"), nil
	case "fig5":
		r, err := LocalAccuracy(p, 100, p.CLocalSmallP, seed)
		if err != nil {
			return nil, err
		}
		return r.Table("fig5"), nil
	case "fig6":
		r, err := LocalAccuracy(p, 10, p.CLocalLargeP, seed)
		if err != nil {
			return nil, err
		}
		return r.Table("fig6"), nil
	case "fig7":
		r, err := RuntimeFig7(p, seed)
		if err != nil {
			return nil, err
		}
		return r.Table("fig7"), nil
	case "fig8":
		r, err := Fig8(p, seed)
		if err != nil {
			return nil, err
		}
		return r.Table("fig8"), nil
	case "variance":
		r, err := VarianceValidation(p, seed)
		if err != nil {
			return nil, err
		}
		return r.Table("variance"), nil
	case "ablation-combine":
		return AblationCombine(p, seed)
	case "ablation-hash":
		return AblationHash(p, seed)
	case "variants":
		return Variants(p, seed)
	case "limits":
		return Limits(p, seed)
	case "coverage":
		return Coverage(p, seed)
	}
	return nil, fmt.Errorf("unknown experiment %q (have %v, or \"all\")", id, ExperimentIDs)
}
