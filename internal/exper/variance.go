package exper

import (
	"rept/internal/core"
	"rept/internal/stats"
)

// VariancePoint compares empirical REPT MSE against the paper's
// closed-form variance for one (dataset, m, c).
type VariancePoint struct {
	Dataset   string
	M, C      int
	Empirical float64 // MSE over runs
	Theory    float64 // paper Theorem 3 / Section III-B
	Ratio     float64
}

// VarianceResult is the (extra) Theorem 3 validation experiment V1.
type VarianceResult struct {
	Runs   int
	Points []VariancePoint
}

// VarianceValidation empirically validates the paper's variance formulas
// across the three structural regimes of (m, c): c < m, c = c₁m, and
// c = c₁m + c₂, plus the single-instance MASCOT formula as a cross-check
// of the η machinery. Unbiasedness makes MSE ≈ Var.
func VarianceValidation(p Profile, seed int64) (*VarianceResult, error) {
	runs := p.GlobalRuns * 3
	if runs < 60 {
		runs = 60
	}
	grid := []struct{ m, c int }{
		{10, 4},  // c < m
		{10, 10}, // c = m: covariance fully eliminated
		{10, 20}, // c = 2m
		{10, 24}, // c₂ ≠ 0: Graybill–Deal combination
	}
	datasets := p.Datasets
	if len(datasets) > 2 {
		datasets = datasets[:2]
	}
	res := &VarianceResult{Runs: runs}
	for _, name := range datasets {
		d, err := Load(name, p.Scale)
		if err != nil {
			return nil, err
		}
		tau, eta := d.Tau(), d.Eta()
		for _, g := range grid {
			cmax := g.c
			mse := stats.NewMSE(tau)
			for r := 0; r < runs; r++ {
				sim, err := core.NewSim(core.Config{M: g.m, C: cmax, Seed: seed + int64(r), TrackEta: true})
				if err != nil {
					return nil, err
				}
				sim.AddAll(d.Edges)
				mse.Add(sim.Result().Global)
			}
			theory := core.VarREPT(g.m, g.c, tau, eta)
			pt := VariancePoint{
				Dataset: name, M: g.m, C: g.c,
				Empirical: mse.Value(), Theory: theory,
			}
			if theory > 0 {
				pt.Ratio = pt.Empirical / theory
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

// Table renders the validation table.
func (r *VarianceResult) Table(id string) *Table {
	t := &Table{
		ID:      id,
		Title:   "empirical REPT MSE vs paper Theorem 3 closed form",
		Columns: []string{"dataset", "m", "c", "empirical-MSE", "theory-Var", "ratio"},
		Notes: []string{
			"unbiased estimator: MSE ≈ Var; ratios near 1 validate Theorem 3",
			"runs per cell: " + fmtInt(r.Runs),
		},
	}
	for _, pt := range r.Points {
		t.Rows = append(t.Rows, []string{
			pt.Dataset, fmtInt(pt.M), fmtInt(pt.C),
			fmtFloat(pt.Empirical), fmtFloat(pt.Theory), fmtFloat(pt.Ratio),
		})
	}
	return t
}
