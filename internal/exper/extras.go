package exper

import (
	"math"

	"rept/internal/baselines"
	"rept/internal/core"
	"rept/internal/stats"
)

// Variants (extra experiment) compares the improved baseline variants the
// paper benchmarks against their basic forms (MASCOT vs MASCOT-C,
// TRIÈST-IMPR vs TRIÈST-BASE), justifying the paper's choice
// ("we only study their improved variants", Section IV-B). Single
// instance, p = 0.1 / budget |E|/10, NRMSE over Trials runs.
func Variants(p Profile, seed int64) (*Table, error) {
	datasets := p.Datasets
	if len(datasets) > 3 {
		datasets = datasets[:3]
	}
	t := &Table{
		ID:      "variants",
		Title:   "improved vs basic baseline variants (single instance NRMSE, p = 0.1)",
		Columns: []string{"dataset", "MASCOT", "MASCOT-C", "Triest-IMPR", "Triest-BASE"},
		Notes: []string{
			"the paper benchmarks only the improved variants; this table shows why",
		},
	}
	const invP = 10
	for _, name := range datasets {
		d, err := Load(name, p.Scale)
		if err != nil {
			return nil, err
		}
		k := budgetEdges(len(d.Edges), invP, 1)
		if k < 3 {
			k = 3
		}
		row := []string{name}
		for _, factory := range []func(seed int64) (baselines.Estimator, error){
			func(s int64) (baselines.Estimator, error) { return baselines.NewMascot(1.0/invP, s, false) },
			func(s int64) (baselines.Estimator, error) { return baselines.NewMascotC(1.0/invP, s, false) },
			func(s int64) (baselines.Estimator, error) { return baselines.NewTriest(k, s, false) },
			func(s int64) (baselines.Estimator, error) { return baselines.NewTriestBase(k, s, false) },
		} {
			mse, err := baselineTrials(d, p.Trials, seed, factory)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtFloat(mse.NRMSE()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Limits (extra experiment) reproduces paper Section III-D: when the
// graph is static and fits in memory, wedge sampling achieves lower error
// than REPT at the same computational budget — REPT's advantage is the
// streaming setting, not raw sample efficiency. REPT spends about c basic
// operations (hash + adjacency probe) per stream edge, so the wedge
// sampler receives k = c·|E| probes, each of which is one adjacency
// probe: equal basic-operation counts.
func Limits(p Profile, seed int64) (*Table, error) {
	datasets := p.Datasets
	if len(datasets) > 3 {
		datasets = datasets[:3]
	}
	t := &Table{
		ID:      "limits",
		Title:   "REPT (streaming) vs wedge sampling (static, in-memory) — paper §III-D",
		Columns: []string{"dataset", "m", "c", "REPT", "wedge-sampling", "wedge-budget"},
		Notes: []string{
			"wedge sampling needs the whole graph in memory and is not one-pass; it bounds what any sampler could do",
		},
	}
	const m, c = 10, 10
	runs := p.GlobalRuns
	if runs < 20 {
		runs = 20
	}
	for _, name := range datasets {
		d, err := Load(name, p.Scale)
		if err != nil {
			return nil, err
		}
		tau := d.Tau()
		reptMSE := stats.NewMSE(tau)
		for r := 0; r < runs; r++ {
			sim, err := core.NewSim(core.Config{M: m, C: c, Seed: seed + int64(r)})
			if err != nil {
				return nil, err
			}
			sim.AddAll(d.Edges)
			reptMSE.Add(sim.Result().Global)
		}
		ws, err := baselines.NewWedgeSampler(d.Edges)
		if err != nil {
			return nil, err
		}
		budget := c * len(d.Edges)
		wedgeMSE := stats.NewMSE(tau)
		for r := 0; r < runs; r++ {
			wedgeMSE.Add(ws.Estimate(budget, seed+int64(1000+r)))
		}
		t.Rows = append(t.Rows, []string{
			name, fmtInt(m), fmtInt(c),
			fmtFloat(reptMSE.NRMSE()), fmtFloat(wedgeMSE.NRMSE()), fmtInt(budget),
		})
	}
	return t, nil
}

// Coverage (extra experiment) validates the plug-in variance estimate:
// the fraction of runs where the true τ lies inside τ̂ ± 1.96·sqrt(Var̂)
// should be near the nominal 95%.
func Coverage(p Profile, seed int64) (*Table, error) {
	datasets := p.Datasets
	if len(datasets) > 3 {
		datasets = datasets[:3]
	}
	grid := []struct{ m, c int }{{10, 5}, {10, 10}, {10, 25}}
	runs := p.GlobalRuns * 2
	if runs < 50 {
		runs = 50
	}
	t := &Table{
		ID:      "coverage",
		Title:   "95% confidence-interval coverage of the plug-in variance (Estimate.Variance)",
		Columns: []string{"dataset", "m", "c", "coverage", "runs"},
		Notes: []string{
			"interval: τ̂ ± 1.96·sqrt(Var̂); nominal coverage 0.95",
		},
	}
	for _, name := range datasets {
		d, err := Load(name, p.Scale)
		if err != nil {
			return nil, err
		}
		tau := d.Tau()
		for _, g := range grid {
			hit := 0
			for r := 0; r < runs; r++ {
				sim, err := core.NewSim(core.Config{M: g.m, C: g.c, Seed: seed + int64(r), TrackEta: true})
				if err != nil {
					return nil, err
				}
				sim.AddAll(d.Edges)
				res := sim.Result()
				if math.IsNaN(res.Variance) {
					continue
				}
				if math.Abs(res.Global-tau) <= 1.96*math.Sqrt(res.Variance) {
					hit++
				}
			}
			t.Rows = append(t.Rows, []string{
				name, fmtInt(g.m), fmtInt(g.c),
				fmtFloat(float64(hit) / float64(runs)), fmtInt(runs),
			})
		}
	}
	return t, nil
}
