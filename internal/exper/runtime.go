package exper

import (
	"fmt"
	"runtime"
	"time"

	"rept/internal/baselines"
	"rept/internal/core"
	"rept/internal/graph"
)

// RuntimePoint is one (dataset, 1/p) cell of the runtime figure: seconds
// to process the full stream with c = Profile.RuntimeC logical processors.
type RuntimePoint struct {
	Dataset                   string
	InvP                      int
	REPT, Mascot, Triest, GPS float64 // seconds
	Edges                     int
}

// RuntimeResult is the data behind paper Figure 7.
type RuntimeResult struct {
	C      int
	Points []RuntimePoint
}

// RuntimeFig7 measures wall-clock runtime of the four parallel methods for
// varying 1/p at fixed c (paper: c = 10). All methods run over the same
// worker-goroutine budget so the comparison is per-edge work, as in the
// paper. Expected shape: REPT ≈ MASCOT < TRIÈST < GPS.
func RuntimeFig7(p Profile, seed int64) (*RuntimeResult, error) {
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	res := &RuntimeResult{C: p.RuntimeC}
	warmed := false
	for _, name := range p.RuntimeDatasets {
		d, err := Load(name, p.Scale)
		if err != nil {
			return nil, err
		}
		edges := d.Edges
		if !warmed {
			// Untimed warmup so the first measured cell does not pay
			// one-time allocator and code-path costs.
			warm := edges
			if len(warm) > 4096 {
				warm = warm[:4096]
			}
			eng, err := core.NewEngine(core.Config{M: 4, C: p.RuntimeC, Seed: seed, Workers: workers})
			if err != nil {
				return nil, err
			}
			eng.AddAll(warm)
			_ = eng.Result()
			eng.Close()
			if _, err := timeParallel(warm, p.RuntimeC, workers, func(_ int, s int64) (baselines.Estimator, error) {
				return baselines.NewMascot(0.25, s, false)
			}); err != nil {
				return nil, err
			}
			warmed = true
		}

		pt := RuntimePoint{Dataset: name, Edges: len(edges)}
		for _, invP := range p.InvPs {
			pt.InvP = invP

			// REPT.
			start := time.Now()
			eng, err := core.NewEngine(core.Config{
				M: invP, C: p.RuntimeC, Seed: seed, Workers: workers,
			})
			if err != nil {
				return nil, err
			}
			eng.AddAll(edges)
			_ = eng.Result()
			eng.Close()
			pt.REPT = time.Since(start).Seconds()

			// Parallel MASCOT.
			pt.Mascot, err = timeParallel(edges, p.RuntimeC, workers, func(_ int, s int64) (baselines.Estimator, error) {
				return baselines.NewMascot(1/float64(invP), s, false)
			})
			if err != nil {
				return nil, err
			}
			// Parallel TRIÈST.
			kT := budgetEdges(len(edges), invP, 1)
			pt.Triest, err = timeParallel(edges, p.RuntimeC, workers, func(_ int, s int64) (baselines.Estimator, error) {
				return baselines.NewTriest(kT, s, false)
			})
			if err != nil {
				return nil, err
			}
			// Parallel GPS (half budget).
			kG := budgetEdges(len(edges), invP, 2)
			pt.GPS, err = timeParallel(edges, p.RuntimeC, workers, func(_ int, s int64) (baselines.Estimator, error) {
				return baselines.NewGPS(kG, s, false)
			})
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

func timeParallel(edges []graph.Edge, c, workers int, factory baselines.Factory) (float64, error) {
	start := time.Now()
	par, err := baselines.NewParallelFrom(c, 99, workers, factory)
	if err != nil {
		return 0, err
	}
	for _, e := range edges {
		par.Add(e.U, e.V)
	}
	_ = par.Global()
	par.Close()
	return time.Since(start).Seconds(), nil
}

// Table renders the result in paper-figure layout.
func (r *RuntimeResult) Table(id string) *Table {
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("runtime (seconds) vs 1/p, c = %d logical processors", r.C),
		Columns: []string{"dataset", "edges", "1/p", "REPT", "MASCOT", "Triest", "GPS"},
		Notes: []string{
			"wall-clock on this machine; the paper's shape is REPT ≈ MASCOT < Triest < GPS",
		},
	}
	for _, pt := range r.Points {
		t.Rows = append(t.Rows, []string{
			pt.Dataset, fmtInt(pt.Edges), fmtInt(pt.InvP),
			fmtFloat(pt.REPT), fmtFloat(pt.Mascot), fmtFloat(pt.Triest), fmtFloat(pt.GPS),
		})
	}
	return t
}
