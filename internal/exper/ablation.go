package exper

import (
	"rept/internal/core"
	"rept/internal/hashing"
	"rept/internal/stats"
)

// CombinePoint compares estimator-combination strategies for c₂ ≠ 0.
type CombinePoint struct {
	Dataset string
	M, C    int
	// NRMSE per strategy.
	GraybillDeal float64 // the paper's inverse-variance combination
	Pooled       float64 // naive m²Σ/c pooling of all processors
	FullOnly     float64 // τ̂⁽¹⁾ alone (discard the partial group)
	PartialOnly  float64 // τ̂⁽²⁾ alone (discard the full groups)
}

// AblationCombine (experiment A1) quantifies the value of the paper's
// Graybill–Deal combination in the c = c₁m + c₂ regime by evaluating all
// four strategies on identical Monte-Carlo runs.
func AblationCombine(p Profile, seed int64) (*Table, error) {
	grid := []struct{ m, c int }{{10, 15}, {10, 25}, {10, 32}}
	runs := p.GlobalRuns * 2
	if runs < 40 {
		runs = 40
	}
	datasets := p.Datasets
	if len(datasets) > 3 {
		datasets = datasets[:3]
	}
	t := &Table{
		ID:      "ablation-combine",
		Title:   "combination strategies for c = c₁m + c₂ (NRMSE)",
		Columns: []string{"dataset", "m", "c", "graybill-deal", "pooled", "full-only", "partial-only"},
		Notes: []string{
			"graybill-deal is the paper's Algorithm 2; pooled = m²Στ⁽ⁱ⁾/c; full-only/partial-only discard one class",
		},
	}
	for _, name := range datasets {
		d, err := Load(name, p.Scale)
		if err != nil {
			return nil, err
		}
		tau := d.Tau()
		for _, g := range grid {
			gd := stats.NewMSE(tau)
			pooled := stats.NewMSE(tau)
			full := stats.NewMSE(tau)
			partial := stats.NewMSE(tau)
			for r := 0; r < runs; r++ {
				sim, err := core.NewSim(core.Config{M: g.m, C: g.c, Seed: seed + int64(r), TrackEta: true})
				if err != nil {
					return nil, err
				}
				sim.AddAll(d.Edges)
				agg := sim.Aggregates()
				gd.Add(agg.Estimate().Global)

				mf := float64(g.m)
				c1 := g.c / g.m
				c2 := g.c % g.m
				var sum1, sum2 float64
				for i, tp := range agg.TauProc {
					if i < c1*g.m {
						sum1 += float64(tp)
					} else {
						sum2 += float64(tp)
					}
				}
				pooled.Add(mf * mf * (sum1 + sum2) / float64(g.c))
				full.Add(mf / float64(c1) * sum1)
				partial.Add(mf * mf / float64(c2) * sum2)
			}
			t.Rows = append(t.Rows, []string{
				name, fmtInt(g.m), fmtInt(g.c),
				fmtFloat(gd.NRMSE()), fmtFloat(pooled.NRMSE()),
				fmtFloat(full.NRMSE()), fmtFloat(partial.NRMSE()),
			})
		}
	}
	return t, nil
}

// AblationHash (experiment A2) compares the default seeded 64-bit mixer
// hash family against a deliberately weak modulo hash. Edge keys are
// built from dense sequential node ids, so `key mod m` correlates with
// graph structure and skews the partition; the strong mixer does not.
func AblationHash(p Profile, seed int64) (*Table, error) {
	const m, c = 10, 10
	runs := p.GlobalRuns * 2
	if runs < 40 {
		runs = 40
	}
	datasets := p.Datasets
	if len(datasets) > 3 {
		datasets = datasets[:3]
	}
	weakFamily := func(_ uint64, count, mm int) []core.Hasher {
		out := make([]core.Hasher, count)
		for i := range out {
			out[i] = hashing.NewWeakMod(mm)
		}
		return out
	}
	t := &Table{
		ID:      "ablation-hash",
		Title:   "hash quality: seeded 64-bit mixer vs modulo (NRMSE, m=c=10)",
		Columns: []string{"dataset", "mixer", "weak-mod", "weak-mod-bias"},
		Notes: []string{
			"weak-mod is deterministic (key%m), so across runs its error is pure bias — the estimator loses its unbiasedness guarantee",
		},
	}
	for _, name := range datasets {
		d, err := Load(name, p.Scale)
		if err != nil {
			return nil, err
		}
		tau := d.Tau()
		strong := stats.NewMSE(tau)
		var weakVals stats.Welford
		weak := stats.NewMSE(tau)
		for r := 0; r < runs; r++ {
			sim, err := core.NewSim(core.Config{M: m, C: c, Seed: seed + int64(r), TrackEta: true})
			if err != nil {
				return nil, err
			}
			sim.AddAll(d.Edges)
			strong.Add(sim.Result().Global)
		}
		// The weak hash ignores the seed: one run suffices, its error is
		// deterministic bias. Run it once and report |bias|/τ as NRMSE.
		simW, err := core.NewSim(core.Config{M: m, C: c, Seed: seed, TrackEta: true, HashFamily: weakFamily})
		if err != nil {
			return nil, err
		}
		simW.AddAll(d.Edges)
		g := simW.Result().Global
		weak.Add(g)
		weakVals.Add(g)
		bias := (g - tau) / tau
		t.Rows = append(t.Rows, []string{
			name, fmtFloat(strong.NRMSE()), fmtFloat(weak.NRMSE()), fmtFloat(bias),
		})
	}
	return t, nil
}
