// Package exper is the experiment harness that regenerates every table
// and figure of the REPT paper's evaluation (Section IV) on synthetic
// analogs of its datasets, plus validation and ablation experiments.
// See DESIGN.md for the experiment index and the dataset substitution
// rationale.
package exper

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"rept/internal/gen"
	"rept/internal/graph"
)

// DatasetSpec describes one synthetic analog of a paper dataset. Generate
// must be deterministic and accept a scale factor multiplying the node
// count (edge counts scale along).
type DatasetSpec struct {
	Name     string
	PaperRef string // the paper dataset this stands in for
	Desc     string
	Generate func(scale float64) []graph.Edge
}

// hk builds a Holme–Kim generator spec closure.
func hk(n, k int, pt float64, seed uint64) func(float64) []graph.Edge {
	return func(scale float64) []graph.Edge {
		ns := scaled(n, scale, k+2)
		return gen.Shuffle(gen.HolmeKim(ns, k, pt, seed), seed^0x5bf0)
	}
}

// hkHubs composes a Holme–Kim background with a co-hub overlay (hub pairs
// with shared audiences). The overlay is what pushes η/τ into the
// hundreds, the regime where paper Figure 1's covariance term dominates;
// see gen.CoHubOverlay.
func hkHubs(n, k int, pt float64, pairs, followers int, seed uint64) func(float64) []graph.Edge {
	return func(scale float64) []graph.Edge {
		ns := scaled(n, scale, k+2)
		fs := scaled(followers, scale, 8)
		if fs > ns/2 {
			fs = ns / 2
		}
		base := gen.HolmeKim(ns, k, pt, seed)
		hubs := gen.CoHubOverlay(ns, pairs, fs, graph.NodeID(ns), seed^0xc0ffee)
		return gen.Shuffle(append(base, hubs...), seed^0x5bf0)
	}
}

func scaled(n int, scale float64, floor int) int {
	ns := int(math.Round(float64(n) * scale))
	if ns < floor {
		ns = floor
	}
	return ns
}

// Registry lists the eight synthetic analogs of paper Table II, ordered as
// in the paper. Parameters were chosen so that the η/τ spread spans orders
// of magnitude (paper Figure 1): clustered heavy-tailed graphs
// (sim-twitter, sim-flickr) have large η/τ; sparse low-clustering graphs
// (sim-youtube, sim-wikitalk) have small η/τ.
var Registry = []DatasetSpec{
	{
		Name:     "sim-twitter",
		PaperRef: "Twitter",
		Desc:     "large clustered heavy-tail + celebrity co-hubs (Holme–Kim n=20000 k=10 pt=0.55; 15 hub pairs × 6000 followers)",
		Generate: hkHubs(20000, 10, 0.55, 15, 6000, 101),
	},
	{
		Name:     "sim-orkut",
		PaperRef: "com-Orkut",
		Desc:     "clustered heavy-tail + co-hubs (Holme–Kim n=15000 k=9 pt=0.35; 8 hub pairs × 1200 followers)",
		Generate: hkHubs(15000, 9, 0.35, 8, 1200, 102),
	},
	{
		Name:     "sim-livejournal",
		PaperRef: "LiveJournal",
		Desc:     "clustered heavy-tail + co-hubs (Holme–Kim n=12000 k=7 pt=0.45; 5 hub pairs × 800 followers)",
		Generate: hkHubs(12000, 7, 0.45, 5, 800, 103),
	},
	{
		Name:     "sim-pokec",
		PaperRef: "Pokec",
		Desc:     "mildly clustered heavy-tail + co-hubs (Holme–Kim n=10000 k=8 pt=0.25; 3 hub pairs × 500 followers)",
		Generate: hkHubs(10000, 8, 0.25, 3, 500, 104),
	},
	{
		Name:     "sim-flickr",
		PaperRef: "Flickr",
		Desc:     "small dense, extremely clustered (Holme–Kim n=3000 k=20 pt=0.7)",
		Generate: hk(3000, 20, 0.7, 105),
	},
	{
		Name:     "sim-wikitalk",
		PaperRef: "Wiki-Talk",
		Desc:     "skewed, low clustering, few huge co-commenter hubs (Barabási–Albert n=12000 k=3 + 5 hub pairs × 3000 followers)",
		Generate: func(scale float64) []graph.Edge {
			n := scaled(12000, scale, 6)
			fs := scaled(3000, scale, 8)
			if fs > n/2 {
				fs = n / 2
			}
			base := gen.BarabasiAlbert(n, 3, 106)
			hubs := gen.CoHubOverlay(n, 5, fs, graph.NodeID(n), 0x33cc)
			return gen.Shuffle(append(base, hubs...), 0x77aa)
		},
	},
	{
		Name:     "sim-webgoogle",
		PaperRef: "Web-Google",
		Desc:     "high clustering, near-uniform degrees (Watts–Strogatz n=12000 k=6 beta=0.08)",
		Generate: func(scale float64) []graph.Edge {
			n := scaled(12000, scale, 20)
			return gen.Shuffle(gen.WattsStrogatz(n, 6, 0.08, 107), 0x88bb)
		},
	},
	{
		Name:     "sim-youtube",
		PaperRef: "YouTube",
		Desc:     "sparse, low clustering (Holme–Kim n=10000 k=3 pt=0.1)",
		Generate: hk(10000, 3, 0.1, 108),
	},
}

// Dataset is a generated stream together with its exact statistics.
type Dataset struct {
	Spec  DatasetSpec
	Scale float64
	Edges []graph.Edge
	Exact *graph.ExactResult // Local + Eta always computed
}

// Tau returns the exact global triangle count as a float.
func (d *Dataset) Tau() float64 { return float64(d.Exact.Tau) }

// Eta returns the exact η as a float.
func (d *Dataset) Eta() float64 { return float64(d.Exact.Eta) }

// EnsureEtaV computes the exact per-node η_v statistics on first use (an
// extra exact pass with heavier transient memory, needed only by the
// local-accuracy figures' closed-form columns).
func (d *Dataset) EnsureEtaV() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if d.Exact.EtaV != nil {
		return
	}
	d.Exact = graph.CountExact(d.Edges, graph.ExactOptions{Local: true, Eta: true, EtaLocal: true})
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*Dataset{}
)

// Load generates (or returns the cached) dataset with the given scale.
// Exact statistics include local counts and η.
func Load(name string, scale float64) (*Dataset, error) {
	spec, ok := findSpec(name)
	if !ok {
		return nil, fmt.Errorf("exper: unknown dataset %q (have %v)", name, Names())
	}
	key := fmt.Sprintf("%s@%.4f", name, scale)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if d, hit := cache[key]; hit {
		return d, nil
	}
	edges := spec.Generate(scale)
	exact := graph.CountExact(edges, graph.ExactOptions{Local: true, Eta: true})
	d := &Dataset{Spec: spec, Scale: scale, Edges: edges, Exact: exact}
	cache[key] = d
	return d, nil
}

// MustLoad is Load for registry-known names; it panics on unknown names.
func MustLoad(name string, scale float64) *Dataset {
	d, err := Load(name, scale)
	if err != nil {
		panic(err)
	}
	return d
}

func findSpec(name string) (DatasetSpec, bool) {
	for _, s := range Registry {
		if s.Name == name {
			return s, true
		}
	}
	return DatasetSpec{}, false
}

// Names returns the registry dataset names in paper order.
func Names() []string {
	out := make([]string, len(Registry))
	for i, s := range Registry {
		out[i] = s.Name
	}
	return out
}

// ClearCache drops all cached datasets (tests and memory-sensitive runs).
func ClearCache() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	cache = map[string]*Dataset{}
}

// sortedNodes returns the nodes with τ_v > 0 in ascending order (used for
// deterministic local-error iteration).
func sortedNodes(exact *graph.ExactResult) []graph.NodeID {
	nodes := make([]graph.NodeID, 0, len(exact.TauV))
	for v, tv := range exact.TauV {
		if tv > 0 {
			nodes = append(nodes, v)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return nodes
}
