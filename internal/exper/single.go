package exper

import (
	"fmt"
	"runtime"
	"time"

	"rept/internal/baselines"
	"rept/internal/core"
	"rept/internal/stats"
)

// SinglePoint is one (1/p, c) cell of the single-threaded comparison:
// runtime and NRMSE of REPT with c processors versus single-threaded
// baselines given the same total memory (MASCOT-S with probability c·p,
// TRIÈST-S with budget c·p·|E|, GPS-S with half that).
type SinglePoint struct {
	InvP, C int

	REPTTime, MascotSTime, TriestSTime, GPSSTime float64 // seconds
	REPTErr, MascotSErr, TriestSErr, GPSSErr     float64 // NRMSE
}

// SingleResult is the data behind paper Figure 8 (dataset: Flickr analog).
type SingleResult struct {
	Dataset string
	Points  []SinglePoint
}

// Fig8 compares parallel REPT against single-threaded equal-memory
// baselines on the Flickr analog, for 1/p = 10 (c up to 10, where
// c·p = 1 means MASCOT-S degenerates to exact counting) and 1/p = 100
// (c up to 32), mirroring paper Figure 8.
func Fig8(p Profile, seed int64) (*SingleResult, error) {
	const dataset = "sim-flickr"
	d, err := Load(dataset, p.Scale)
	if err != nil {
		return nil, err
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	res := &SingleResult{Dataset: dataset}
	tau := d.Tau()

	configs := []struct {
		invP  int
		cvals []int
	}{
		{10, []int{2, 4, 6, 8, 10}},
		{100, []int{8, 16, 24, 32}},
	}
	for _, cf := range configs {
		for _, c := range cf.cvals {
			pt := SinglePoint{InvP: cf.invP, C: c}

			// --- Runtime (one timed pass each). ---
			start := time.Now()
			eng, err := core.NewEngine(core.Config{M: cf.invP, C: c, Seed: seed, Workers: workers})
			if err != nil {
				return nil, err
			}
			eng.AddAll(d.Edges)
			_ = eng.Result()
			eng.Close()
			pt.REPTTime = time.Since(start).Seconds()

			pEff := float64(c) / float64(cf.invP)
			if pEff > 1 {
				pEff = 1
			}
			start = time.Now()
			ms, err := baselines.NewMascot(pEff, seed, false)
			if err != nil {
				return nil, err
			}
			baselines.AddAll(ms, d.Edges)
			pt.MascotSTime = time.Since(start).Seconds()

			kT := budgetEdges(len(d.Edges)*c, cf.invP, 1)
			start = time.Now()
			ts, err := baselines.NewTriest(kT, seed, false)
			if err != nil {
				return nil, err
			}
			baselines.AddAll(ts, d.Edges)
			pt.TriestSTime = time.Since(start).Seconds()

			kG := budgetEdges(len(d.Edges)*c, cf.invP, 2)
			start = time.Now()
			gs, err := baselines.NewGPS(kG, seed, false)
			if err != nil {
				return nil, err
			}
			baselines.AddAll(gs, d.Edges)
			pt.GPSSTime = time.Since(start).Seconds()

			// --- Errors (Monte-Carlo / trials). ---
			reptMSE := stats.NewMSE(tau)
			for r := 0; r < p.GlobalRuns; r++ {
				sim, err := core.NewSim(core.Config{M: cf.invP, C: c, Seed: seed + int64(r), TrackEta: true})
				if err != nil {
					return nil, err
				}
				sim.AddAll(d.Edges)
				reptMSE.Add(sim.Result().Global)
			}
			pt.REPTErr = reptMSE.NRMSE()

			singleErr := func(factory func(s int64) (baselines.Estimator, error)) (float64, error) {
				tr, err := baselineTrials(d, p.Trials, seed+400, factory)
				if err != nil {
					return 0, err
				}
				return tr.NRMSE(), nil
			}
			if pt.MascotSErr, err = singleErr(func(s int64) (baselines.Estimator, error) {
				return baselines.NewMascot(pEff, s, false)
			}); err != nil {
				return nil, err
			}
			if pt.TriestSErr, err = singleErr(func(s int64) (baselines.Estimator, error) {
				return baselines.NewTriest(kT, s, false)
			}); err != nil {
				return nil, err
			}
			if pt.GPSSErr, err = singleErr(func(s int64) (baselines.Estimator, error) {
				return baselines.NewGPS(kG, s, false)
			}); err != nil {
				return nil, err
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

// Table renders the result in paper-figure layout.
func (r *SingleResult) Table(id string) *Table {
	t := &Table{
		ID:    id,
		Title: fmt.Sprintf("REPT vs single-threaded equal-memory baselines (%s)", r.Dataset),
		Columns: []string{
			"1/p", "c",
			"t(REPT)", "t(MASCOT-S)", "t(Triest-S)", "t(GPS-S)",
			"err(REPT)", "err(MASCOT-S)", "err(Triest-S)", "err(GPS-S)",
		},
		Notes: []string{
			"MASCOT-S samples with probability c·p; Triest-S budget c·p·|E|; GPS-S half (paper §IV-E)",
			"times in seconds; err = NRMSE of the global count",
		},
	}
	for _, pt := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmtInt(pt.InvP), fmtInt(pt.C),
			fmtFloat(pt.REPTTime), fmtFloat(pt.MascotSTime), fmtFloat(pt.TriestSTime), fmtFloat(pt.GPSSTime),
			fmtFloat(pt.REPTErr), fmtFloat(pt.MascotSErr), fmtFloat(pt.TriestSErr), fmtFloat(pt.GPSSErr),
		})
	}
	return t
}
