package exper

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFmtFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{math.NaN(), "n/a"},
		{0, "0"},
		{0.00001, "1.000e-05"},
		{0.1234, "0.1234"},
		{12.345, "12.35"},
		{12345, "12345"},
		{1.23e9, "1.230e+09"},
		{-0.5, "-0.5000"},
	}
	for _, c := range cases {
		if got := fmtFloat(c.in); got != c.want {
			t.Errorf("fmtFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	if got := fmtInt(42); got != "42" {
		t.Errorf("fmtInt(42) = %q", got)
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tb := &Table{
		ID:      "demo",
		Title:   "demo table",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"x", "1"}, {"yyyyyyyyyy", "2"}},
		Notes:   []string{"a note"},
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== demo: demo table ==", "long-column", "yyyyyyyyyy", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	// Header separator spans the widest cell.
	if !strings.Contains(out, strings.Repeat("-", 10)) {
		t.Error("separator not widened to the longest cell")
	}
}

func TestWriteCSVCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "out")
	tb := &Table{ID: "x", Columns: []string{"a"}, Rows: [][]string{{"1"}}}
	if err := tb.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "x.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if got := string(data); got != "a\n1\n" {
		t.Errorf("CSV content = %q", got)
	}
}

func TestWriteCSVBadDir(t *testing.T) {
	// A file where the directory should be forces MkdirAll to fail.
	base := t.TempDir()
	blocker := filepath.Join(base, "blocked")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	tb := &Table{ID: "x", Columns: []string{"a"}}
	if err := tb.WriteCSV(filepath.Join(blocker, "sub")); err == nil {
		t.Error("WriteCSV into a file path: got nil error")
	}
}
