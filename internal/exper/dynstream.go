package exper

import (
	"fmt"
	"math/rand/v2"

	"rept/internal/graph"
)

// This file is the deterministic stream-simulation harness for
// fully-dynamic (insert + delete) workloads: a seeded schedule generator
// that turns any simple edge list into a well-formed signed event stream
// (churn, burst-delete, re-insert patterns), and an exact fully-dynamic
// reference counter producing both the net-graph ground truth and the
// signed second-moment statistics that generalize the paper's Theorem 3
// variance to signed streams. Accuracy, fuzz, and shard tests all build
// on these two pieces, so every layer is exercised against the same
// reference semantics.

// DynPattern selects the deletion schedule shape of DynStream.
type DynPattern int

const (
	// Churn interleaves deletions of uniformly random live edges with the
	// base insertions at a steady rate — the follow/unfollow workload.
	Churn DynPattern = iota
	// BurstDelete inserts quietly, then periodically deletes a burst of
	// random live edges back to back — the flow-expiry workload.
	BurstDelete
	// Reinsert behaves like Churn but re-inserts a fraction of the
	// deleted edges later, so the same edge key cycles live → deleted →
	// live (the hardest case for samplers whose state is keyed by edge).
	Reinsert
)

func (p DynPattern) String() string {
	switch p {
	case Churn:
		return "churn"
	case BurstDelete:
		return "burst-delete"
	case Reinsert:
		return "reinsert"
	default:
		return fmt.Sprintf("DynPattern(%d)", int(p))
	}
}

// DynOptions shapes a DynStream schedule.
type DynOptions struct {
	// Pattern is the deletion schedule shape (default Churn).
	Pattern DynPattern
	// DeleteFrac is the target fraction of emitted events that are
	// deletions, in [0, 0.5); the generator matches it closely but not
	// exactly (deletions need live edges to target). Default 0.3.
	DeleteFrac float64
	// Seed drives the schedule deterministically.
	Seed uint64
	// Burst is the BurstDelete burst length (default 32).
	Burst int
	// ReinsertFrac is the probability a deleted edge is queued for
	// re-insertion under Reinsert (default 0.5).
	ReinsertFrac float64
}

// DynStream turns a simple (duplicate-free, loop-free) edge list into a
// well-formed fully-dynamic event stream under the given schedule:
// deletions always target currently-live edges and insertions currently
// absent ones, so the stream satisfies the contract fully-dynamic
// estimators assume. The result is deterministic in (base, opt).
func DynStream(base []graph.Edge, opt DynOptions) []graph.Update {
	if opt.DeleteFrac < 0 || opt.DeleteFrac >= 0.5 {
		if opt.DeleteFrac != 0 {
			panic("exper: DynOptions.DeleteFrac must be in [0, 0.5)")
		}
	}
	delFrac := opt.DeleteFrac
	if delFrac == 0 {
		delFrac = 0.3
	}
	burst := opt.Burst
	if burst <= 0 {
		burst = 32
	}
	reFrac := opt.ReinsertFrac
	if reFrac == 0 {
		reFrac = 0.5
	}
	rng := rand.New(rand.NewPCG(opt.Seed, opt.Seed^0x9e3779b97f4a7c15))

	// live is the current live edge set as a slice (uniform sampling) plus
	// an index map (O(1) removal by swap-with-last).
	live := make([]graph.Edge, 0, len(base))
	idx := make(map[uint64]int, len(base))
	insert := func(out []graph.Update, e graph.Edge) []graph.Update {
		idx[e.Key()] = len(live)
		live = append(live, e)
		return append(out, graph.Update{U: e.U, V: e.V})
	}
	deleteRandom := func(out []graph.Update) (graph.Update, []graph.Update) {
		i := rng.IntN(len(live))
		e := live[i]
		last := len(live) - 1
		live[i] = live[last]
		idx[live[i].Key()] = i
		live = live[:last]
		delete(idx, e.Key())
		up := graph.Update{U: e.U, V: e.V, Del: true}
		return up, append(out, up)
	}

	// The per-step deletion probability that makes deletions a delFrac
	// share of all events: each deletion both adds an event and forces one
	// extra insertion to drain the base, so p = f/(1-f).
	pDel := delFrac / (1 - delFrac)

	out := make([]graph.Update, 0, len(base)*2)
	var pool []graph.Edge // Reinsert: deleted edges waiting to come back
	next := 0
	sinceBurst := 0
	// burstPeriod spaces BurstDelete bursts so deletions still average
	// delFrac of events.
	burstPeriod := int(float64(burst) / pDel)
	if burstPeriod < 1 {
		burstPeriod = 1
	}
	for next < len(base) || len(pool) > 0 {
		switch opt.Pattern {
		case BurstDelete:
			sinceBurst++
			if sinceBurst >= burstPeriod && len(live) >= burst {
				for i := 0; i < burst && len(live) > 0; i++ {
					_, out = deleteRandom(out)
				}
				sinceBurst = 0
			}
		default: // Churn, Reinsert
			if len(live) > 1 && rng.Float64() < pDel {
				var up graph.Update
				up, out = deleteRandom(out)
				if opt.Pattern == Reinsert && rng.Float64() < reFrac {
					pool = append(pool, up.Edge())
				}
			}
		}
		// One insertion: a pooled re-insert (its edge is guaranteed dead —
		// pool membership is exclusive with liveness) or the next base edge.
		if len(pool) > 0 && (next >= len(base) || rng.Float64() < 0.5) {
			i := rng.IntN(len(pool))
			e := pool[i]
			pool[i] = pool[len(pool)-1]
			pool = pool[:len(pool)-1]
			out = insert(out, e)
			continue
		}
		if next < len(base) {
			out = insert(out, base[next])
			next++
		}
	}
	return out
}

// pairKey identifies an unordered pair of distinct edge keys — one
// potential triangle's two wedge edges.
type pairKey struct{ a, b uint64 }

func makePair(a, b uint64) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

// DynExact is the exact reference for a fully-dynamic stream: the net
// (final live graph) triangle statistics, plus the signed second-moment
// statistics A and B that generalize Theorem 3 to signed streams.
//
// For the hash-partition estimator fed the same stream,
//
//	Var(τ̂) = VarREPT(m, c, A, B/2)
//
// exactly in the pure cases (c ≤ m and c = c₁·m): the closed forms are
// linear in the same-pair and shared-edge covariance masses, and on
// signed streams those masses are A = Σ_P g_P² and B = Σ_{P≠Q, |P∩Q|=1}
// g_P·g_Q, where g_P is the signed number of closing events over wedge
// pair P. Insert-only streams have g_P ∈ {0,1}, recovering A = τ and
// B = 2η (each closing event is one triangle; shared-edge ordered pairs
// are twice the paper's η).
type DynExact struct {
	// Tau is the exact triangle count of the final live graph.
	Tau uint64
	// TauV holds the exact per-node triangle counts of the final live
	// graph (nil unless requested).
	TauV map[graph.NodeID]uint64
	// Nodes and LiveEdges describe the final live graph.
	Nodes, LiveEdges int
	// Events, Deletes, and SelfLoops count the processed stream events.
	Events, Deletes, SelfLoops int
	// Malformed counts contract violations skipped by the reference
	// (deletions of absent edges, duplicate insertions); generators in
	// this package never produce them.
	Malformed int
	// A and B are the signed second moments (see the type comment).
	A, B float64
}

// DynCountExact computes the exact fully-dynamic reference for a signed
// stream in one pass: O(min-degree) per event plus one pair-map entry per
// closing event, exactly like the estimator but without sampling.
func DynCountExact(ups []graph.Update, local bool) *DynExact {
	res := &DynExact{}
	adj := graph.NewAdjacency()
	gP := make(map[pairKey]int64) // signed closing mass per wedge pair
	hE := make(map[uint64]int64)  // signed closing mass per wedge edge
	var common []graph.NodeID
	for _, up := range ups {
		if up.U == up.V {
			res.SelfLoops++
			continue
		}
		u, v := up.U, up.V
		if up.Del {
			if !adj.Remove(u, v) {
				res.Malformed++
				continue
			}
		} else {
			if adj.Has(u, v) {
				res.Malformed++
				continue
			}
		}
		res.Events++
		s := int64(1)
		if up.Del {
			s = -1
			res.Deletes++
		}
		// Wedges are enumerated with the event edge absent (insert: before
		// Add, delete: after Remove); its own presence never changes
		// N(u) ∩ N(v) anyway.
		common = adj.CommonNeighbors(u, v, common[:0])
		for _, w := range common {
			kuw, kvw := graph.Key(u, w), graph.Key(v, w)
			gP[makePair(kuw, kvw)] += s
			hE[kuw] += s
			hE[kvw] += s
		}
		if !up.Del {
			adj.Add(u, v)
		}
	}
	for _, g := range gP {
		res.A += float64(g * g)
	}
	for _, h := range hE {
		res.B += float64(h * h)
	}
	res.B -= 2 * res.A

	// Net-graph ground truth from the final adjacency: each triangle
	// {a<b<c} is counted once, at its (a,b) edge with w = c.
	if local {
		res.TauV = make(map[graph.NodeID]uint64)
	}
	res.Nodes = adj.Nodes()
	res.LiveEdges = adj.Edges()
	seen := make(map[uint64]struct{}, adj.Edges())
	for _, up := range ups {
		if up.U == up.V || !adj.Has(up.U, up.V) {
			continue
		}
		k := graph.Key(up.U, up.V)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		e := graph.Edge{U: up.U, V: up.V}.Canonical()
		common = adj.CommonNeighbors(e.U, e.V, common[:0])
		for _, w := range common {
			if w > e.V {
				res.Tau++
				if res.TauV != nil {
					res.TauV[e.U]++
					res.TauV[e.V]++
					res.TauV[w]++
				}
			}
		}
	}
	return res
}

// LiveEdgesOf replays a signed stream and returns the final live edge
// set in canonical orientation and first-insertion order — the input an
// insert-only estimator needs to be compared against a fully-dynamic one
// at the same net graph.
func LiveEdgesOf(ups []graph.Update) []graph.Edge {
	order := make([]uint64, 0, len(ups))
	pos := make(map[uint64]int, len(ups))
	live := make(map[uint64]bool, len(ups))
	for _, up := range ups {
		if up.U == up.V {
			continue
		}
		k := graph.Key(up.U, up.V)
		if up.Del {
			delete(live, k)
			continue
		}
		if !live[k] {
			live[k] = true
			if _, ok := pos[k]; !ok {
				pos[k] = len(order)
				order = append(order, k)
			}
		}
	}
	out := make([]graph.Edge, 0, len(live))
	for _, k := range order {
		if live[k] {
			out = append(out, graph.KeyEdge(k))
		}
	}
	return out
}
