package exper

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testProfile is even smaller than Quick: unit tests must stay fast.
var testProfile = Profile{
	Name:            "test",
	Scale:           0.06,
	Datasets:        []string{"sim-flickr", "sim-youtube"},
	LocalDatasets:   []string{"sim-youtube"},
	RuntimeDatasets: []string{"sim-youtube"},
	GlobalRuns:      6,
	LocalRuns:       4,
	Trials:          16,
	CSmallP:         []int{20, 320},
	CLargeP:         []int{2, 32},
	CLocalSmallP:    []int{20},
	CLocalLargeP:    []int{4},
	InvPs:           []int{2, 8},
	RuntimeC:        4,
	Workers:         2,
}

func TestLoadAndCache(t *testing.T) {
	d1, err := Load("sim-youtube", 0.06)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Exact.Tau == 0 {
		t.Error("sim-youtube has zero triangles; generator parameters broken")
	}
	d2, err := Load("sim-youtube", 0.06)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("cache miss for identical (name, scale)")
	}
	if _, err := Load("nope", 1); err == nil {
		t.Error("Load(unknown): got nil error")
	}
	if len(Names()) != 8 {
		t.Errorf("registry has %d datasets, want 8 (paper Table II)", len(Names()))
	}
}

func TestDatasetEtaSpread(t *testing.T) {
	// The substitution promise (DESIGN.md §4): η/τ must span a wide range
	// so that the covariance term matters on some datasets and not others.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, name := range []string{"sim-flickr", "sim-youtube", "sim-wikitalk", "sim-webgoogle"} {
		d, err := Load(name, 0.06)
		if err != nil {
			t.Fatal(err)
		}
		if d.Exact.Tau == 0 {
			t.Fatalf("%s: zero triangles", name)
		}
		r := d.Eta() / d.Tau()
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if hi < 4*lo {
		t.Errorf("η/τ spread too narrow: [%v, %v]", lo, hi)
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"quick", "default", "full", ""} {
		if _, err := ProfileByName(name); err != nil {
			t.Errorf("ProfileByName(%q): %v", name, err)
		}
	}
	if _, err := ProfileByName("bogus"); err == nil {
		t.Error("ProfileByName(bogus): got nil error")
	}
}

func TestTable2AndFig1(t *testing.T) {
	tb, err := Table2(testProfile)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(testProfile.Datasets) {
		t.Errorf("table2 rows = %d, want %d", len(tb.Rows), len(testProfile.Datasets))
	}
	f1, err := Fig1(testProfile)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1.Rows) != len(testProfile.Datasets) {
		t.Errorf("fig1 rows = %d, want %d", len(f1.Rows), len(testProfile.Datasets))
	}
	// Rendering must not fail and must include the title.
	var buf bytes.Buffer
	if err := f1.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig1") {
		t.Error("rendered table missing id")
	}
}

// TestGlobalAccuracyShape asserts the paper's two headline orderings on
// the clustered dataset: (1) REPT is more accurate than every baseline at
// every c; (2) REPT's error decreases as c grows.
func TestGlobalAccuracyShape(t *testing.T) {
	p := testProfile
	p.Datasets = []string{"sim-flickr"}
	p.GlobalRuns = 10
	r, err := GlobalAccuracy(p, 10, []int{2, 10, 32}, 77)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(r.Points))
	}
	for _, pt := range r.Points {
		if math.IsNaN(pt.REPT) || math.IsNaN(pt.Mascot) {
			t.Fatalf("NaN NRMSE at c=%d", pt.C)
		}
		if pt.REPT >= pt.Mascot {
			t.Errorf("c=%d: REPT NRMSE %.4f not below MASCOT %.4f", pt.C, pt.REPT, pt.Mascot)
		}
		if pt.REPT >= pt.GPS {
			t.Errorf("c=%d: REPT NRMSE %.4f not below GPS %.4f", pt.C, pt.REPT, pt.GPS)
		}
		// Monte-Carlo NRMSE with few runs is noisy; theory overlays are
		// exact and must honor the paper's inequality strictly.
		if pt.REPTTheory >= pt.MascotTheory {
			t.Errorf("c=%d: theory REPT %.4f not below theory MASCOT %.4f", pt.C, pt.REPTTheory, pt.MascotTheory)
		}
	}
	// c = 10 equals m: covariance eliminated; theory NRMSE should drop
	// sharply from c=2 to c=32.
	if r.Points[2].REPTTheory >= r.Points[0].REPTTheory {
		t.Error("REPT theory error did not decrease with c")
	}
	if r.Points[2].REPT >= r.Points[0].REPT*1.5 {
		t.Errorf("REPT empirical error at c=32 (%.4f) not clearly below c=2 (%.4f)",
			r.Points[2].REPT, r.Points[0].REPT)
	}
}

func TestLocalAccuracyShape(t *testing.T) {
	p := testProfile
	p.LocalDatasets = []string{"sim-flickr"}
	p.LocalRuns = 6
	r, err := LocalAccuracy(p, 10, []int{2, 10}, 33)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(r.Points))
	}
	for _, pt := range r.Points {
		if math.IsNaN(pt.REPT) || math.IsNaN(pt.Mascot) || math.IsNaN(pt.Triest) {
			t.Fatalf("NaN local NRMSE at c=%d", pt.C)
		}
		if pt.REPT <= 0 || pt.Mascot <= 0 {
			t.Fatalf("non-positive local NRMSE at c=%d", pt.C)
		}
		// Paper Figs. 5-6: REPT below the parallel baselines. The
		// closed-form columns are exact, so assert strictly on them.
		if pt.REPTTheory >= pt.MascotTheory {
			t.Errorf("c=%d: local theory REPT %.3f not below MASCOT %.3f", pt.C, pt.REPTTheory, pt.MascotTheory)
		}
	}
	// Error decreases with c (both measured and exact).
	if r.Points[1].REPT >= r.Points[0].REPT {
		t.Errorf("local REPT error did not decrease with c: %.3f -> %.3f",
			r.Points[0].REPT, r.Points[1].REPT)
	}
	if r.Points[1].REPTTheory >= r.Points[0].REPTTheory {
		t.Errorf("local REPT theory error did not decrease with c: %.3f -> %.3f",
			r.Points[0].REPTTheory, r.Points[1].REPTTheory)
	}
}

func TestRuntimeFig7Runs(t *testing.T) {
	r, err := RuntimeFig7(testProfile, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := len(testProfile.RuntimeDatasets) * len(testProfile.InvPs)
	if len(r.Points) != want {
		t.Fatalf("got %d points, want %d", len(r.Points), want)
	}
	for _, pt := range r.Points {
		if pt.REPT <= 0 || pt.Mascot <= 0 || pt.Triest <= 0 || pt.GPS <= 0 {
			t.Errorf("non-positive runtime: %+v", pt)
		}
	}
}

func TestVarianceValidation(t *testing.T) {
	p := testProfile
	p.Datasets = []string{"sim-flickr"}
	p.GlobalRuns = 25 // 75 runs per cell
	r, err := VarianceValidation(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range r.Points {
		if pt.Theory <= 0 {
			t.Errorf("m=%d c=%d: non-positive theory variance", pt.M, pt.C)
			continue
		}
		if pt.Ratio < 0.4 || pt.Ratio > 2.5 {
			t.Errorf("m=%d c=%d: empirical/theory ratio %.2f outside [0.4, 2.5]", pt.M, pt.C, pt.Ratio)
		}
	}
}

func TestAblations(t *testing.T) {
	p := testProfile
	p.Datasets = []string{"sim-flickr"}
	tb, err := AblationCombine(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Error("ablation-combine produced no rows")
	}
	th, err := AblationHash(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(th.Rows) == 0 {
		t.Error("ablation-hash produced no rows")
	}
}

func TestVariantsExperiment(t *testing.T) {
	p := testProfile
	p.Datasets = []string{"sim-flickr"}
	p.Trials = 30
	tb, err := Variants(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 || len(tb.Rows[0]) != 5 {
		t.Fatalf("unexpected table shape: %v", tb.Rows)
	}
	// Columns: dataset, MASCOT, MASCOT-C, Triest-IMPR, Triest-BASE.
	mascot := atofOrFail(t, tb.Rows[0][1])
	mascotC := atofOrFail(t, tb.Rows[0][2])
	impr := atofOrFail(t, tb.Rows[0][3])
	base := atofOrFail(t, tb.Rows[0][4])
	if mascotC <= mascot {
		t.Errorf("MASCOT-C NRMSE %.4f not above improved MASCOT %.4f", mascotC, mascot)
	}
	if base <= impr {
		t.Errorf("TRIÈST-BASE NRMSE %.4f not above IMPR %.4f", base, impr)
	}
}

func TestLimitsExperiment(t *testing.T) {
	p := testProfile
	p.Datasets = []string{"sim-flickr"}
	p.GlobalRuns = 20
	tb, err := Limits(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("unexpected table shape: %v", tb.Rows)
	}
	rept := atofOrFail(t, tb.Rows[0][3])
	wedge := atofOrFail(t, tb.Rows[0][4])
	// Paper §III-D: static wedge sampling is more accurate at comparable
	// effort on an in-memory graph.
	if wedge >= rept {
		t.Errorf("wedge NRMSE %.4f not below REPT %.4f (paper §III-D)", wedge, rept)
	}
}

func TestCoverageExperiment(t *testing.T) {
	p := testProfile
	p.Datasets = []string{"sim-flickr"}
	p.GlobalRuns = 30
	tb, err := Coverage(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		cov := atofOrFail(t, row[3])
		if cov < 0.80 || cov > 1.0 {
			t.Errorf("coverage %v for m=%s c=%s outside [0.80, 1.0]", cov, row[1], row[2])
		}
	}
}

func atofOrFail(t *testing.T, s string) float64 {
	t.Helper()
	var x float64
	if _, err := fmt.Sscanf(s, "%g", &x); err != nil {
		t.Fatalf("cannot parse %q as float: %v", s, err)
	}
	return x
}

func TestRunAllAndCSV(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	// Run the two cheapest experiments through the dispatcher.
	if err := Run("table2", testProfile, 1, &buf, dir); err != nil {
		t.Fatal(err)
	}
	if err := Run("fig1", testProfile, 1, &buf, dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"table2.csv", "fig1.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("missing CSV %s: %v", f, err)
		}
		if !strings.Contains(string(data), "dataset") {
			t.Errorf("%s missing header", f)
		}
	}
	if err := Run("bogus", testProfile, 1, &buf, ""); err == nil {
		t.Error("Run(bogus): got nil error")
	}
	if !strings.Contains(buf.String(), "table2") {
		t.Error("output missing table2")
	}
}

func TestFig8Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 is the most expensive experiment")
	}
	p := testProfile
	p.GlobalRuns = 3
	p.Trials = 6
	r, err := Fig8(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 9 { // 5 c-values at 1/p=10 plus 4 at 1/p=100
		t.Fatalf("got %d points, want 9", len(r.Points))
	}
	for _, pt := range r.Points {
		if pt.REPTTime <= 0 || pt.MascotSTime <= 0 {
			t.Errorf("non-positive time: %+v", pt)
		}
		if math.IsNaN(pt.REPTErr) {
			t.Errorf("NaN REPT error at c=%d", pt.C)
		}
	}
}
