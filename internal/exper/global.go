package exper

import (
	"fmt"

	"rept/internal/baselines"
	"rept/internal/core"
	"rept/internal/stats"
)

// GlobalPoint is one (dataset, c) cell of a global-accuracy figure.
type GlobalPoint struct {
	Dataset string
	C       int
	// Empirical NRMSE per method.
	REPT, Mascot, Triest, GPS float64
	// Closed-form overlays (paper Theorem 3 and parallel-MASCOT variance).
	REPTTheory, MascotTheory float64
}

// GlobalResult is the data behind paper Figures 3 (p = 0.01) and 4
// (p = 0.1): global-count NRMSE as a function of the processor count c
// for REPT and the directly parallelized baselines.
type GlobalResult struct {
	InvP    float64
	CValues []int
	Points  []GlobalPoint
}

// GlobalAccuracy measures global-count NRMSE for every dataset in the
// profile and every c in cvals, with sampling probability p = 1/invP.
//
// REPT is run directly (GlobalRuns Monte-Carlo passes; one Sim pass per
// run yields the estimates of every c at once). The parallel baselines
// average c independent *unbiased* instances, so their NRMSE is derived
// analytically from Trials single-instance trials as sqrt(MSE_single/c)/τ
// (exact for independent unbiased instances — see stats.MSE.NRMSEOfAverage
// and DESIGN.md §4.4). Per the paper's memory accounting, TRIÈST gets
// budget |E|/invP and GPS half of that.
func GlobalAccuracy(p Profile, invP int, cvals []int, seed int64) (*GlobalResult, error) {
	if invP < 1 {
		return nil, fmt.Errorf("exper: invP = %d, need >= 1", invP)
	}
	res := &GlobalResult{InvP: float64(invP), CValues: cvals}
	cmax := 0
	for _, c := range cvals {
		if c > cmax {
			cmax = c
		}
	}
	for _, name := range p.Datasets {
		d, err := Load(name, p.Scale)
		if err != nil {
			return nil, err
		}
		tau, eta := d.Tau(), d.Eta()

		// REPT Monte-Carlo: one pass per run covers all c values.
		reptMSE := make(map[int]*stats.MSE, len(cvals))
		for _, c := range cvals {
			reptMSE[c] = stats.NewMSE(tau)
		}
		for r := 0; r < p.GlobalRuns; r++ {
			sim, err := core.NewSim(core.Config{M: invP, C: cmax, Seed: seed + int64(r), TrackEta: true})
			if err != nil {
				return nil, err
			}
			sim.AddAll(d.Edges)
			for _, c := range cvals {
				est, err := sim.ResultFor(c)
				if err != nil {
					return nil, err
				}
				reptMSE[c].Add(est.Global)
			}
		}

		// Baseline single-instance trials (MSE measured around the truth;
		// the estimators are unbiased, so MSE/c is the exact MSE of the
		// paper's c-instance average).
		mascotMSE, err := baselineTrials(d, p.Trials, seed, func(s int64) (baselines.Estimator, error) {
			return baselines.NewMascot(1/float64(invP), s, false)
		})
		if err != nil {
			return nil, err
		}
		kTriest := budgetEdges(len(d.Edges), invP, 1)
		triestMSE, err := baselineTrials(d, p.Trials, seed+7777, func(s int64) (baselines.Estimator, error) {
			return baselines.NewTriest(kTriest, s, false)
		})
		if err != nil {
			return nil, err
		}
		kGPS := budgetEdges(len(d.Edges), invP, 2)
		gpsMSE, err := baselineTrials(d, p.Trials, seed+15555, func(s int64) (baselines.Estimator, error) {
			return baselines.NewGPS(kGPS, s, false)
		})
		if err != nil {
			return nil, err
		}

		for _, c := range cvals {
			res.Points = append(res.Points, GlobalPoint{
				Dataset:      name,
				C:            c,
				REPT:         reptMSE[c].NRMSE(),
				Mascot:       mascotMSE.NRMSEOfAverage(c),
				Triest:       triestMSE.NRMSEOfAverage(c),
				GPS:          gpsMSE.NRMSEOfAverage(c),
				REPTTheory:   core.NRMSETheory(core.VarREPT(invP, c, tau, eta), tau),
				MascotTheory: core.NRMSETheory(core.VarParallelMascot(invP, c, tau, eta), tau),
			})
		}
	}
	return res, nil
}

// budgetEdges computes an edge budget |E|/invP/divisor, clamped to the
// minimum the estimators accept.
func budgetEdges(edges, invP, divisor int) int {
	k := edges / invP / divisor
	if k < 2 {
		k = 2
	}
	return k
}

// baselineTrials runs N independent single-instance trials and returns
// the MSE of the global estimate around the exact τ.
func baselineTrials(d *Dataset, n int, seed int64, factory func(seed int64) (baselines.Estimator, error)) (*stats.MSE, error) {
	acc := stats.NewMSE(d.Tau())
	for t := 0; t < n; t++ {
		est, err := factory(seed + int64(t)*1009)
		if err != nil {
			return nil, err
		}
		baselines.AddAll(est, d.Edges)
		acc.Add(est.Global())
	}
	return acc, nil
}

// Table renders the result in paper-figure layout.
func (r *GlobalResult) Table(id string) *Table {
	t := &Table{
		ID:    id,
		Title: fmt.Sprintf("global triangle count NRMSE vs c, p = 1/%.0f", r.InvP),
		Columns: []string{
			"dataset", "c", "REPT", "MASCOT", "Triest", "GPS",
			"REPT(theory)", "MASCOT(theory)",
		},
		Notes: []string{
			"MASCOT/Triest/GPS are the paper's direct parallelizations (c independent instances, averaged)",
			"GPS receives half the edge budget (it stores weights; paper §IV-B)",
		},
	}
	for _, pt := range r.Points {
		t.Rows = append(t.Rows, []string{
			pt.Dataset, fmtInt(pt.C),
			fmtFloat(pt.REPT), fmtFloat(pt.Mascot), fmtFloat(pt.Triest), fmtFloat(pt.GPS),
			fmtFloat(pt.REPTTheory), fmtFloat(pt.MascotTheory),
		})
	}
	return t
}
