package exper

import "fmt"

// Profile sizes an experiment run. The paper's absolute workloads (up to
// 1.2B edges, 320 cores) are scaled to laptop budgets; Quick is meant for
// benchmarks and CI, Default for an interactive full reproduction, Full
// for a patient machine.
type Profile struct {
	Name string
	// Scale multiplies dataset node counts.
	Scale float64
	// Datasets used by the global-accuracy, fig1 and table2 experiments.
	Datasets []string
	// LocalDatasets used by the (more expensive) local-accuracy figures.
	LocalDatasets []string
	// RuntimeDatasets used by the runtime figure.
	RuntimeDatasets []string

	// GlobalRuns is the number of REPT Monte-Carlo runs per dataset for
	// global NRMSE; LocalRuns the per-(dataset, c) runs for local NRMSE.
	GlobalRuns int
	LocalRuns  int
	// Trials is the number of independent single-instance baseline trials
	// from which parallel-baseline errors are derived analytically.
	Trials int

	// CSmallP are the processor counts for p = 0.01 figures (paper: 20..320),
	// CLargeP for p = 0.1 figures (paper: 2..32).
	CSmallP []int
	CLargeP []int
	// CLocalSmallP/CLocalLargeP are the (usually sparser) c grids for the
	// local figures.
	CLocalSmallP []int
	CLocalLargeP []int

	// InvPs are the 1/p values of the runtime figure (paper: 2..32).
	InvPs []int
	// RuntimeC is the processor count of the runtime figure (paper: 10).
	RuntimeC int
	// Workers is the goroutine budget for runtime experiments (0 = NumCPU).
	Workers int
}

// Quick is sized for unit-test and benchmark latency: two datasets at
// small scale and few runs. Error bands are wide but orderings hold.
var Quick = Profile{
	Name:            "quick",
	Scale:           0.12,
	Datasets:        []string{"sim-flickr", "sim-youtube"},
	LocalDatasets:   []string{"sim-youtube"},
	RuntimeDatasets: []string{"sim-flickr"},
	GlobalRuns:      8,
	LocalRuns:       6,
	Trials:          24,
	CSmallP:         []int{20, 100, 320},
	CLargeP:         []int{2, 10, 32},
	CLocalSmallP:    []int{20, 320},
	CLocalLargeP:    []int{2, 32},
	InvPs:           []int{2, 8, 32},
	RuntimeC:        10,
}

// Default reproduces every figure on all eight datasets in minutes.
var Default = Profile{
	Name:            "default",
	Scale:           0.5,
	Datasets:        Names(),
	LocalDatasets:   Names(),
	RuntimeDatasets: []string{"sim-twitter", "sim-flickr", "sim-youtube"},
	GlobalRuns:      30,
	LocalRuns:       12,
	Trials:          60,
	CSmallP:         []int{20, 80, 160, 240, 320},
	CLargeP:         []int{2, 8, 16, 24, 32},
	CLocalSmallP:    []int{20, 80, 320},
	CLocalLargeP:    []int{2, 8, 32},
	InvPs:           []int{2, 4, 8, 16, 32},
	RuntimeC:        10,
}

// Full runs closer to paper scale (full synthetic sizes, more runs).
var Full = Profile{
	Name:            "full",
	Scale:           1.0,
	Datasets:        Names(),
	LocalDatasets:   Names(),
	RuntimeDatasets: Names(),
	GlobalRuns:      60,
	LocalRuns:       25,
	Trials:          150,
	CSmallP:         []int{20, 80, 160, 240, 320},
	CLargeP:         []int{2, 8, 16, 24, 32},
	CLocalSmallP:    []int{20, 80, 160, 320},
	CLocalLargeP:    []int{2, 8, 16, 32},
	InvPs:           []int{2, 4, 8, 16, 32},
	RuntimeC:        10,
}

// ProfileByName resolves quick/default/full.
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "quick":
		return Quick, nil
	case "default", "":
		return Default, nil
	case "full":
		return Full, nil
	}
	return Profile{}, fmt.Errorf("exper: unknown profile %q (quick|default|full)", name)
}
