package exper

import "rept/internal/graph"

// summarize caches the degree summary per dataset call site.
func summarize(d *Dataset) graph.Summary { return graph.Summarize(d.Edges) }

// Fig1 reproduces paper Figure 1: per dataset, τ vs η, and the two
// variance components of parallel MASCOT — τ(p⁻²−1) (self term) vs
// 2η(p⁻¹−1) (covariance term) — for p ∈ {0.1, 0.05, 0.01}. The paper's
// observation is that the covariance term dominates for clustered graphs;
// REPT exists to remove exactly that term.
func Fig1(p Profile) (*Table, error) {
	ps := []float64{0.1, 0.05, 0.01}
	t := &Table{
		ID:    "fig1",
		Title: "τ vs η and parallel-MASCOT variance terms (paper Fig. 1)",
		Columns: []string{
			"dataset", "tau", "eta", "eta/tau",
			"self(p=0.1)", "cov(p=0.1)", "cov/self",
			"self(p=0.05)", "cov(p=0.05)", "cov/self",
			"self(p=0.01)", "cov(p=0.01)", "cov/self",
		},
		Notes: []string{
			"self = τ(p⁻²−1); cov = 2η(p⁻¹−1); cov/self > 1 means the covariance dominates (paper Figs. 1b–1d)",
		},
	}
	for _, name := range p.Datasets {
		d, err := Load(name, p.Scale)
		if err != nil {
			return nil, err
		}
		tau, eta := d.Tau(), d.Eta()
		row := []string{d.Spec.Name, fmtFloat(tau), fmtFloat(eta), fmtFloat(eta / tau)}
		for _, pp := range ps {
			self := tau * (1/(pp*pp) - 1)
			cov := 2 * eta * (1/pp - 1)
			row = append(row, fmtFloat(self), fmtFloat(cov), fmtFloat(cov/self))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
