package exper

import (
	"reflect"
	"testing"

	"rept/internal/gen"
	"rept/internal/graph"
	"rept/internal/stream"
)

// nonZero drops the zero entries CountExact records for triangle-free
// nodes; the dynamic reference stores only triangle members.
func nonZero(m map[graph.NodeID]uint64) map[graph.NodeID]uint64 {
	out := make(map[graph.NodeID]uint64, len(m))
	for v, c := range m {
		if c != 0 {
			out[v] = c
		}
	}
	return out
}

// TestDynStreamWellFormed: every pattern produces a stream that deletes
// only live edges and inserts only absent ones, consumes the whole base
// edge list into the final live set union, and is deterministic in its
// seed.
func TestDynStreamWellFormed(t *testing.T) {
	base := gen.Shuffle(gen.HolmeKim(200, 4, 0.4, 11), 3)
	for _, pat := range []DynPattern{Churn, BurstDelete, Reinsert} {
		t.Run(pat.String(), func(t *testing.T) {
			opt := DynOptions{Pattern: pat, DeleteFrac: 0.3, Seed: 42}
			ups := DynStream(base, opt)
			if err := stream.ValidateWellFormed(ups); err != nil {
				t.Fatal(err)
			}
			if again := DynStream(base, opt); !reflect.DeepEqual(ups, again) {
				t.Fatal("same seed produced a different schedule")
			}
			if diff := DynStream(base, DynOptions{Pattern: pat, DeleteFrac: 0.3, Seed: 43}); reflect.DeepEqual(ups, diff) {
				t.Fatal("different seed produced an identical schedule")
			}
			var dels int
			inserted := make(map[uint64]struct{})
			for _, up := range ups {
				if up.Del {
					dels++
				} else {
					inserted[graph.Key(up.U, up.V)] = struct{}{}
				}
			}
			if len(inserted) != len(base) {
				t.Errorf("schedule inserted %d distinct edges, base has %d", len(inserted), len(base))
			}
			frac := float64(dels) / float64(len(ups))
			if frac < 0.2 || frac > 0.4 {
				t.Errorf("deletion fraction = %.3f, want ≈ 0.3", frac)
			}
		})
	}
}

// TestDynCountExactInsertOnly: on a pure insertion stream the reference
// must agree with the established exact counter, and the signed second
// moments must collapse to A = τ and B = 2η.
func TestDynCountExactInsertOnly(t *testing.T) {
	edges := gen.Shuffle(gen.HolmeKim(150, 4, 0.5, 7), 5)
	want := graph.CountExact(edges, graph.ExactOptions{Local: true, Eta: true})
	got := DynCountExact(graph.Inserts(edges), true)

	if got.Tau != want.Tau {
		t.Errorf("Tau = %d, want %d", got.Tau, want.Tau)
	}
	if !reflect.DeepEqual(got.TauV, nonZero(want.TauV)) {
		t.Error("TauV diverged from CountExact")
	}
	if got.A != float64(want.Tau) {
		t.Errorf("A = %v, want τ = %d", got.A, want.Tau)
	}
	if got.B != 2*float64(want.Eta) {
		t.Errorf("B = %v, want 2η = %d", got.B, 2*want.Eta)
	}
	if got.Deletes != 0 || got.Malformed != 0 {
		t.Errorf("Deletes = %d, Malformed = %d on an insert-only stream", got.Deletes, got.Malformed)
	}
}

// TestDynCountExactNetGraph: the reference's net statistics must equal
// exact counting over the final live edge set, for every pattern.
func TestDynCountExactNetGraph(t *testing.T) {
	base := gen.Shuffle(gen.HolmeKim(150, 4, 0.5, 9), 2)
	for _, pat := range []DynPattern{Churn, BurstDelete, Reinsert} {
		t.Run(pat.String(), func(t *testing.T) {
			ups := DynStream(base, DynOptions{Pattern: pat, DeleteFrac: 0.35, Seed: 8})
			got := DynCountExact(ups, true)
			livePart := LiveEdgesOf(ups)
			want := graph.CountExact(livePart, graph.ExactOptions{Local: true})
			if got.LiveEdges != len(livePart) || got.LiveEdges != want.Edges {
				t.Fatalf("LiveEdges = %d, replay has %d", got.LiveEdges, len(livePart))
			}
			if got.Tau != want.Tau {
				t.Errorf("net Tau = %d, want %d", got.Tau, want.Tau)
			}
			if !reflect.DeepEqual(got.TauV, nonZero(want.TauV)) {
				t.Error("net TauV diverged from CountExact on the live graph")
			}
			if got.Deletes == 0 {
				t.Error("schedule produced no deletions")
			}
			if got.Malformed != 0 {
				t.Errorf("Malformed = %d on a generated schedule", got.Malformed)
			}
		})
	}
}
