package exper

// Table2 reproduces paper Table II ("graph datasets used in our
// experiments") for the synthetic analogs: nodes, edges and exact triangle
// counts, plus η and η/τ, which Figure 1 depends on.
func Table2(p Profile) (*Table, error) {
	t := &Table{
		ID:    "table2",
		Title: "datasets (synthetic analogs of paper Table II)",
		Columns: []string{
			"dataset", "stands-for", "nodes", "edges", "triangles",
			"eta", "eta/tau", "max-deg",
		},
		Notes: []string{
			"paper datasets are not redistributable; analogs match the η/τ spread, not absolute sizes (DESIGN.md §4)",
		},
	}
	for _, name := range p.Datasets {
		d, err := Load(name, p.Scale)
		if err != nil {
			return nil, err
		}
		sum := summarize(d)
		ratio := 0.0
		if d.Exact.Tau > 0 {
			ratio = d.Eta() / d.Tau()
		}
		t.Rows = append(t.Rows, []string{
			d.Spec.Name, d.Spec.PaperRef,
			fmtInt(d.Exact.Nodes), fmtInt(d.Exact.Edges),
			fmtInt(int(d.Exact.Tau)), fmtInt(int(d.Exact.Eta)),
			fmtFloat(ratio), fmtInt(sum.MaxDegree),
		})
	}
	return t, nil
}
