package exper

import (
	"fmt"
	"math"

	"rept/internal/baselines"
	"rept/internal/core"
	"rept/internal/graph"
)

// LocalPoint is one (dataset, c) cell of a local-accuracy figure. Values
// are the mean, over nodes with τ_v > 0, of per-node NRMSE — the scalar
// the paper plots in Figures 5 and 6. GPS is excluded, as in the paper.
//
// Empirical columns (REPT, Mascot, Triest) are Monte-Carlo measurements;
// theory columns are the exact per-node closed forms evaluated with the
// true τ_v and η_v (REPT: Theorem 3; MASCOT: Lemma 6 scaled by 1/c). At
// p = 0.01 the per-node sampling events are so rare (≈p² per trial) that
// feasible trial counts systematically under-observe the error tails, so
// the empirical columns are downward-biased for all methods there; the
// theory columns are exact and carry the comparison (see EXPERIMENTS.md).
type LocalPoint struct {
	Dataset              string
	C                    int
	REPT, Mascot, Triest float64 // empirical
	REPTTheory           float64 // exact closed form
	MascotTheory         float64 // exact closed form (≈ TRIÈST, paper §III-C)
}

// LocalResult is the data behind paper Figures 5 (p = 0.01) and 6 (p = 0.1).
type LocalResult struct {
	InvP    float64
	CValues []int
	Points  []LocalPoint
}

// LocalAccuracy measures local-count NRMSE. REPT needs one Sim pass per
// (run, c) because the per-node class sums depend on the group layout of
// c. The parallel baselines are derived analytically per node from Trials
// single-instance trials, exactly as in GlobalAccuracy but node-wise.
func LocalAccuracy(p Profile, invP int, cvals []int, seed int64) (*LocalResult, error) {
	if invP < 1 {
		return nil, fmt.Errorf("exper: invP = %d, need >= 1", invP)
	}
	res := &LocalResult{InvP: float64(invP), CValues: cvals}
	for _, name := range p.LocalDatasets {
		d, err := Load(name, p.Scale)
		if err != nil {
			return nil, err
		}
		d.EnsureEtaV()
		nodes := sortedNodes(d.Exact)
		if len(nodes) == 0 {
			continue
		}
		truth := make([]float64, len(nodes))
		etaV := make([]float64, len(nodes))
		for i, v := range nodes {
			truth[i] = float64(d.Exact.TauV[v])
			etaV[i] = float64(d.Exact.EtaV[v])
		}

		// REPT: per-c Monte-Carlo, accumulating per-node squared errors.
		reptNRMSE := make(map[int]float64, len(cvals))
		for _, c := range cvals {
			sumSq := make([]float64, len(nodes))
			for r := 0; r < p.LocalRuns; r++ {
				sim, err := core.NewSim(core.Config{
					M: invP, C: c, Seed: seed + int64(r)*101 + int64(c),
					TrackLocal: true,
				})
				if err != nil {
					return nil, err
				}
				sim.AddAll(d.Edges)
				est := sim.Result()
				for i, v := range nodes {
					dlt := est.Local[v] - truth[i]
					sumSq[i] += dlt * dlt
				}
			}
			reptNRMSE[c] = meanNodeNRMSE(sumSq, truth, p.LocalRuns)
		}

		// Baselines: per-node trial statistics.
		mascotStats, err := localTrials(d, nodes, p.Trials, seed+31, func(s int64) (baselines.Estimator, error) {
			return baselines.NewMascot(1/float64(invP), s, true)
		})
		if err != nil {
			return nil, err
		}
		kTriest := budgetEdges(len(d.Edges), invP, 1)
		triestStats, err := localTrials(d, nodes, p.Trials, seed+57, func(s int64) (baselines.Estimator, error) {
			return baselines.NewTriest(kTriest, s, true)
		})
		if err != nil {
			return nil, err
		}

		for _, c := range cvals {
			res.Points = append(res.Points, LocalPoint{
				Dataset:      name,
				C:            c,
				REPT:         reptNRMSE[c],
				Mascot:       mascotStats.nrmseOfAverage(c, truth),
				Triest:       triestStats.nrmseOfAverage(c, truth),
				REPTTheory:   meanTheoryNRMSE(truth, etaV, invP, c, core.VarREPT),
				MascotTheory: meanTheoryNRMSE(truth, etaV, invP, c, core.VarParallelMascot),
			})
		}
	}
	return res, nil
}

// meanTheoryNRMSE averages the closed-form per-node NRMSE over nodes with
// τ_v > 0, using the exact τ_v and η_v.
func meanTheoryNRMSE(truth, etaV []float64, m, c int, varFn func(m, c int, tau, eta float64) float64) float64 {
	total, n := 0.0, 0
	for i := range truth {
		if truth[i] <= 0 {
			continue
		}
		total += math.Sqrt(varFn(m, c, truth[i], etaV[i])) / truth[i]
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return total / float64(n)
}

// meanNodeNRMSE averages sqrt(MSE_v)/τ_v over the tracked nodes.
func meanNodeNRMSE(sumSq, truth []float64, runs int) float64 {
	total, n := 0.0, 0
	for i := range truth {
		if truth[i] <= 0 {
			continue
		}
		total += math.Sqrt(sumSq[i]/float64(runs)) / truth[i]
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return total / float64(n)
}

// nodeTrialStats holds per-node squared error around τ_v over
// single-instance trials. The baselines are unbiased per node, so
// MSE_v/c is the exact MSE of the paper's c-instance average.
type nodeTrialStats struct {
	n     int
	sumSq []float64
}

// localTrials runs n single-instance trials with local tracking and
// accumulates per-node squared errors for the given node set.
func localTrials(d *Dataset, nodes []graph.NodeID, n int, seed int64, factory func(seed int64) (baselines.Estimator, error)) (*nodeTrialStats, error) {
	truth := make([]float64, len(nodes))
	for i, v := range nodes {
		truth[i] = float64(d.Exact.TauV[v])
	}
	st := &nodeTrialStats{n: n, sumSq: make([]float64, len(nodes))}
	for t := 0; t < n; t++ {
		est, err := factory(seed + int64(t)*1013)
		if err != nil {
			return nil, err
		}
		baselines.AddAll(est, d.Edges)
		for i, v := range nodes {
			dlt := est.Local(v) - truth[i]
			st.sumSq[i] += dlt * dlt
		}
	}
	return st, nil
}

// nrmseOfAverage computes the mean per-node NRMSE of averaging c iid
// unbiased instances: sqrt(MSE_v/c)/τ_v averaged over nodes.
func (st *nodeTrialStats) nrmseOfAverage(c int, truth []float64) float64 {
	total, n := 0.0, 0
	for i := range truth {
		if truth[i] <= 0 {
			continue
		}
		mse := st.sumSq[i] / float64(st.n) / float64(c)
		total += math.Sqrt(mse) / truth[i]
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return total / float64(n)
}

// Table renders the result in paper-figure layout.
func (r *LocalResult) Table(id string) *Table {
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("local triangle count NRMSE vs c, p = 1/%.0f (mean over nodes with τ_v > 0)", r.InvP),
		Columns: []string{"dataset", "c", "REPT", "MASCOT", "Triest", "REPT(theory)", "MASCOT(theory)"},
		Notes: []string{
			"GPS is excluded from local figures, as in the paper (Figs. 5-6)",
			"empirical columns are downward-biased when sampling events are rarer than the Monte-Carlo budget (p=0.01); theory columns are exact per-node closed forms",
		},
	}
	for _, pt := range r.Points {
		t.Rows = append(t.Rows, []string{
			pt.Dataset, fmtInt(pt.C), fmtFloat(pt.REPT), fmtFloat(pt.Mascot), fmtFloat(pt.Triest),
			fmtFloat(pt.REPTTheory), fmtFloat(pt.MascotTheory),
		})
	}
	return t
}
