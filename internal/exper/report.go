package exper

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// Table is a rendered experiment result: the textual analog of one paper
// table or figure (each figure becomes the table of the series it plots).
type Table struct {
	ID      string // experiment id, e.g. "fig3"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render writes a fixed-width view of the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes the table (without notes) as <dir>/<id>.csv.
func (t *Table) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("exper: %w", err)
	}
	path := filepath.Join(dir, t.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("exper: %w", err)
	}
	w := csv.NewWriter(f)
	if err := w.Write(t.Columns); err != nil {
		f.Close()
		return fmt.Errorf("exper: %w", err)
	}
	for _, row := range t.Rows {
		if err := w.Write(row); err != nil {
			f.Close()
			return fmt.Errorf("exper: %w", err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return fmt.Errorf("exper: %w", err)
	}
	return f.Close()
}

// fmtFloat renders a float compactly: scientific for very small/large
// magnitudes, fixed otherwise.
func fmtFloat(x float64) string {
	switch {
	case math.IsNaN(x):
		return "n/a"
	case x == 0:
		return "0"
	case math.Abs(x) < 1e-3 || math.Abs(x) >= 1e7:
		return fmt.Sprintf("%.3e", x)
	case math.Abs(x) < 1:
		return fmt.Sprintf("%.4f", x)
	case math.Abs(x) < 100:
		return fmt.Sprintf("%.2f", x)
	default:
		return fmt.Sprintf("%.0f", x)
	}
}

func fmtInt(x int) string { return fmt.Sprintf("%d", x) }
