// Package stats provides the estimation-error accumulators used by the
// experiment harness: Welford mean/variance, MSE against a known truth,
// the paper's NRMSE metric, and the analytic NRMSE of an average of c
// independent trials.
package stats

import "math"

// Welford accumulates mean and variance online (Welford's algorithm).
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the sample mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (n−1 denominator); 0 with
// fewer than two observations.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// MSE accumulates squared error of estimates against a known true value.
type MSE struct {
	truth float64
	n     uint64
	sumSq float64
}

// NewMSE returns an accumulator for estimates of truth.
func NewMSE(truth float64) *MSE { return &MSE{truth: truth} }

// Add incorporates one estimate.
func (m *MSE) Add(estimate float64) {
	d := estimate - m.truth
	m.n++
	m.sumSq += d * d
}

// N returns the number of estimates.
func (m *MSE) N() uint64 { return m.n }

// Value returns the mean squared error (NaN with no observations).
func (m *MSE) Value() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.sumSq / float64(m.n)
}

// NRMSE returns sqrt(MSE)/truth, the paper's error metric (Section IV-C).
// NaN when the truth is zero or nothing was observed.
func (m *MSE) NRMSE() float64 {
	if m.truth == 0 {
		return math.NaN()
	}
	return math.Sqrt(m.Value()) / m.truth
}

// NRMSEOfAverage returns sqrt(MSE/c)/truth: the exact NRMSE of averaging
// c iid *unbiased* estimators whose single-instance MSE (around the known
// truth) this accumulator measured. For unbiased estimators
// MSE_single = Var_single, so MSE_c = Var_single/c; unlike
// TrialStats.NRMSEOfAverage this form has no spurious bias floor when the
// trial count is much smaller than c, which matters for the heavy-tailed
// p = 0.01 sampling regime.
func (m *MSE) NRMSEOfAverage(c int) float64 {
	if m.truth == 0 || c < 1 {
		return math.NaN()
	}
	return math.Sqrt(m.Value()/float64(c)) / m.truth
}

// NRMSE computes sqrt(E[(est−truth)²])/truth from a sample of estimates.
func NRMSE(estimates []float64, truth float64) float64 {
	if len(estimates) == 0 || truth == 0 {
		return math.NaN()
	}
	acc := NewMSE(truth)
	for _, e := range estimates {
		acc.Add(e)
	}
	return acc.NRMSE()
}

// TrialStats summarizes N independent single-instance trials of an
// estimator, enough to derive the error of averaging c of them.
type TrialStats struct {
	N    uint64
	Mean float64
	Var  float64 // unbiased sample variance of a single trial
}

// FromWelford converts a Welford accumulator.
func FromWelford(w *Welford) TrialStats {
	return TrialStats{N: w.n, Mean: w.Mean(), Var: w.Var()}
}

// NRMSEOfAverage returns the analytic NRMSE of the average of c iid
// trials: MSE_c = Var/c + bias², which is exact for independent instances
// (the paper's direct parallelization). NaN when truth is zero.
func (t TrialStats) NRMSEOfAverage(c int, truth float64) float64 {
	if truth == 0 || c < 1 {
		return math.NaN()
	}
	bias := t.Mean - truth
	mse := t.Var/float64(c) + bias*bias
	return math.Sqrt(mse) / truth
}
