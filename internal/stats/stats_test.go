package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestWelfordAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	xs := make([]float64, 500)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		w.Add(xs[i])
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		varSum += (x - mean) * (x - mean)
	}
	wantVar := varSum / float64(len(xs)-1)
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Errorf("Mean = %v, want %v", w.Mean(), mean)
	}
	if math.Abs(w.Var()-wantVar) > 1e-9 {
		t.Errorf("Var = %v, want %v", w.Var(), wantVar)
	}
	if w.N() != 500 {
		t.Errorf("N = %d, want 500", w.N())
	}
	if math.Abs(w.Std()-math.Sqrt(wantVar)) > 1e-9 {
		t.Errorf("Std = %v, want %v", w.Std(), math.Sqrt(wantVar))
	}
}

func TestWelfordEdgeCases(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 {
		t.Error("empty Welford not zero")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Var() != 0 {
		t.Error("single observation: Mean/Var wrong")
	}
}

func TestMSE(t *testing.T) {
	m := NewMSE(10)
	if !math.IsNaN(m.Value()) {
		t.Error("empty MSE not NaN")
	}
	m.Add(8)  // err -2
	m.Add(13) // err 3
	if got, want := m.Value(), (4.0+9.0)/2; got != want {
		t.Errorf("Value = %v, want %v", got, want)
	}
	if got, want := m.NRMSE(), math.Sqrt(6.5)/10; math.Abs(got-want) > 1e-12 {
		t.Errorf("NRMSE = %v, want %v", got, want)
	}
	if m.N() != 2 {
		t.Errorf("N = %d, want 2", m.N())
	}
	if !math.IsNaN(NewMSE(0).NRMSE()) {
		t.Error("NRMSE with zero truth not NaN")
	}
}

func TestNRMSESlice(t *testing.T) {
	got := NRMSE([]float64{8, 13}, 10)
	want := math.Sqrt(6.5) / 10
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("NRMSE = %v, want %v", got, want)
	}
	if !math.IsNaN(NRMSE(nil, 10)) {
		t.Error("NRMSE(nil) not NaN")
	}
}

// TestMSENRMSEOfAverage: for unbiased estimators, sqrt(MSE/c)/truth must
// match the directly simulated error of a c-average, with no bias floor.
func TestMSENRMSEOfAverage(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 1))
	const truth = 50.0
	const sigma = 20.0
	draw := func() float64 { return truth + rng.NormFloat64()*sigma }

	acc := NewMSE(truth)
	for i := 0; i < 30000; i++ {
		acc.Add(draw())
	}
	for _, c := range []int{1, 10, 100, 1000} {
		got := acc.NRMSEOfAverage(c)
		want := sigma / math.Sqrt(float64(c)) / truth
		if math.Abs(got-want) > 0.05*want {
			t.Errorf("c=%d: NRMSEOfAverage = %v, want %v", c, got, want)
		}
	}
	if !math.IsNaN(acc.NRMSEOfAverage(0)) {
		t.Error("NRMSEOfAverage(0) not NaN")
	}
	if !math.IsNaN(NewMSE(0).NRMSEOfAverage(2)) {
		t.Error("zero-truth NRMSEOfAverage not NaN")
	}
}

// TestNRMSEOfAverageMatchesDirect: the analytic error of averaging c iid
// trials must match the directly simulated one. This justifies the
// harness's cheap analytic mode for parallel baselines.
func TestNRMSEOfAverageMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	const truth = 100.0
	const sigma = 15.0
	const bias = 2.0
	draw := func() float64 { return truth + bias + rng.NormFloat64()*sigma }

	var w Welford
	for i := 0; i < 20000; i++ {
		w.Add(draw())
	}
	ts := FromWelford(&w)
	for _, c := range []int{1, 4, 16} {
		analytic := ts.NRMSEOfAverage(c, truth)
		direct := NewMSE(truth)
		for r := 0; r < 4000; r++ {
			sum := 0.0
			for j := 0; j < c; j++ {
				sum += draw()
			}
			direct.Add(sum / float64(c))
		}
		if d := math.Abs(analytic - direct.NRMSE()); d > 0.15*analytic {
			t.Errorf("c=%d: analytic NRMSE %v vs direct %v", c, analytic, direct.NRMSE())
		}
	}
	if !math.IsNaN(ts.NRMSEOfAverage(0, truth)) {
		t.Error("NRMSEOfAverage(c=0) not NaN")
	}
	if !math.IsNaN(ts.NRMSEOfAverage(1, 0)) {
		t.Error("NRMSEOfAverage(truth=0) not NaN")
	}
}

// Property: NRMSEOfAverage is non-increasing in c (averaging never hurts
// for iid trials).
func TestNRMSEOfAverageMonotone(t *testing.T) {
	f := func(meanOff float64, v float64) bool {
		ts := TrialStats{N: 100, Mean: 100 + math.Mod(math.Abs(meanOff), 50), Var: math.Abs(v)}
		prev := math.Inf(1)
		for c := 1; c <= 64; c *= 2 {
			cur := ts.NRMSEOfAverage(c, 100)
			if cur > prev+1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
