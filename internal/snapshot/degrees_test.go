package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"strings"
	"testing"

	"rept/internal/graph"
)

// fixCRC recomputes the trailing checksum after a deliberate patch, so a
// test reaches the structural validation instead of the CRC gate.
func fixCRC(data []byte) {
	body := data[:len(data)-4]
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(body))
}

func testShardedStateWithDegrees() *ShardedState {
	st := testShardedState()
	st.TrackDegrees = true
	st.Degrees = map[graph.NodeID]uint32{1: 4, 9: 1, 2: 7, 4000: 2}
	return st
}

func encodeSharded(t *testing.T, st *ShardedState) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSharded(&buf, st); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestShardedDegreesRoundTrip(t *testing.T) {
	st := testShardedStateWithDegrees()
	got, err := ReadSharded(bytes.NewReader(encodeSharded(t, st)))
	if err != nil {
		t.Fatal(err)
	}
	if !got.TrackDegrees {
		t.Fatal("TrackDegrees lost in round trip")
	}
	if !reflect.DeepEqual(got.Degrees, st.Degrees) {
		t.Errorf("degrees = %v, want %v", got.Degrees, st.Degrees)
	}

	// Without tracking, the flag round-trips false and the map stays nil.
	plain, err := ReadSharded(bytes.NewReader(encodeSharded(t, testShardedState())))
	if err != nil {
		t.Fatal(err)
	}
	if plain.TrackDegrees || plain.Degrees != nil {
		t.Errorf("degree-less round trip = tracked %v map %v", plain.TrackDegrees, plain.Degrees)
	}
}

// TestShardedDegreesCanonical: two encodings of the same state are
// byte-identical (map iteration order must not leak into the bytes).
func TestShardedDegreesCanonical(t *testing.T) {
	a := encodeSharded(t, testShardedStateWithDegrees())
	for i := 0; i < 8; i++ {
		if !bytes.Equal(a, encodeSharded(t, testShardedStateWithDegrees())) {
			t.Fatal("degree encoding is not canonical")
		}
	}
}

// TestShardedDegreesCorruption: flipping any byte of a degree-bearing
// snapshot is detected (CRC at worst, structural checks at best).
func TestShardedDegreesCorruption(t *testing.T) {
	data := encodeSharded(t, testShardedStateWithDegrees())
	for i := range data {
		data[i] ^= 0x40
		if _, err := ReadSharded(bytes.NewReader(data)); err == nil {
			t.Fatalf("flip at byte %d went undetected", i)
		}
		data[i] ^= 0x40
	}
	if _, err := ReadSharded(bytes.NewReader(data)); err != nil {
		t.Fatalf("undamaged snapshot no longer reads: %v", err)
	}
}

func TestVersionBounds(t *testing.T) {
	data := encodeSharded(t, testShardedState())
	// Byte 8 is the single-byte version varint. Writers emit the oldest
	// representable version: 3 while no engine carries a sample shift,
	// Version (4) once one does.
	if data[8] != 3 {
		t.Fatalf("version byte = %d, want 3 for a shift-free state", data[8])
	}
	shifted := testShardedState()
	shifted.Shards[0].SampleShift = 2
	if sb := encodeSharded(t, shifted)[8]; sb != Version {
		t.Fatalf("version byte = %d, want %d for a downsampled state", sb, Version)
	}
	data[8] = 0
	if _, err := ReadSharded(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "version 0") {
		t.Errorf("version 0: err = %v, want unsupported-version error", err)
	}
	data[8] = Version + 1
	if _, err := ReadSharded(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "unsupported format version") {
		t.Errorf("future version: err = %v, want unsupported-version error", err)
	}
}

// TestDegreeOverflowRejected: a degree above uint32 in the wire bytes is
// ErrCorrupt, not a silent truncation. Build it by hand-patching the
// degree value varint of a one-node table.
func TestDegreeOverflowRejected(t *testing.T) {
	st := testShardedStateWithDegrees()
	st.Degrees = map[graph.NodeID]uint32{1: ^uint32(0)}
	data := encodeSharded(t, st)
	// The max-uint32 varint 0xFF 0xFF 0xFF 0xFF 0x0F appears exactly once;
	// bump its top group to overflow 32 bits and refresh the CRC.
	pat := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0x0F}
	i := bytes.Index(data, pat)
	if i < 0 {
		t.Fatal("max-uint32 varint not found in encoding")
	}
	data[i+4] = 0x1F
	fixCRC(data)
	_, err := ReadSharded(bytes.NewReader(data))
	if !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "overflows uint32") {
		t.Errorf("err = %v, want degree-overflow ErrCorrupt", err)
	}
}
