package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"rept/internal/graph"
)

// encoder writes the snapshot wire format, tracking the running CRC and
// the first error so call sites can stay linear.
type encoder struct {
	w   *bufio.Writer
	crc hash.Hash32
	buf [binary.MaxVarintLen64]byte
	err error
	// version is the format version this encoder emits, chosen by the
	// writer entry points (the oldest version representing the state).
	version uint64
}

func newEncoder(w io.Writer) *encoder {
	return &encoder{w: bufio.NewWriter(w), crc: crc32.NewIEEE()}
}

func (e *encoder) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

func (e *encoder) write(p []byte) {
	if e.err != nil {
		return
	}
	e.crc.Write(p)
	_, err := e.w.Write(p)
	e.fail(err)
}

func (e *encoder) byte(b byte) {
	e.buf[0] = b
	e.write(e.buf[:1])
}

func (e *encoder) bool(b bool) {
	if b {
		e.byte(1)
	} else {
		e.byte(0)
	}
}

func (e *encoder) uvarint(x uint64) {
	n := binary.PutUvarint(e.buf[:], x)
	e.write(e.buf[:n])
}

// svarint writes a zigzag-encoded signed varint — the version-3 encoding
// of the statistical counters, which fully-dynamic streams drive
// transiently negative.
func (e *encoder) svarint(x int64) {
	n := binary.PutVarint(e.buf[:], x)
	e.write(e.buf[:n])
}

func (e *encoder) u64(x uint64) {
	binary.LittleEndian.PutUint64(e.buf[:8], x)
	e.write(e.buf[:8])
}

func (e *encoder) header(kind byte, version uint64) {
	e.version = version
	e.write(magic[:])
	e.uvarint(version)
	e.byte(kind)
}

// trailer appends the CRC (not itself checksummed) and flushes.
func (e *encoder) trailer() {
	if e.err != nil {
		return
	}
	binary.LittleEndian.PutUint32(e.buf[:4], e.crc.Sum32())
	_, err := e.w.Write(e.buf[:4])
	e.fail(err)
	e.fail(e.w.Flush())
}

func (e *encoder) fingerprint(f Fingerprint) {
	e.uvarint(uint64(f.M))
	e.uvarint(uint64(f.C))
	e.u64(uint64(f.Seed))
	e.bool(f.TrackLocal)
	e.bool(f.TrackEta)
	e.bool(f.FullyDynamic)
}

func (e *encoder) engineBody(st *EngineState) {
	e.fingerprint(st.Fingerprint)
	e.uvarint(st.Processed)
	e.uvarint(st.Deleted)
	e.uvarint(st.SelfLoops)
	if e.version >= 4 {
		e.uvarint(uint64(st.SampleShift))
	} else if st.SampleShift != 0 {
		e.fail(fmt.Errorf("snapshot: sample shift %d cannot be written at version %d", st.SampleShift, e.version))
	}
	for i := range st.Procs {
		p := &st.Procs[i]
		e.svarint(p.Tau)
		e.svarint(p.Eta)
		e.uvarint(p.Di)
		e.uvarint(p.Do)
		e.uvarint(p.Phantom)
		e.edgeSet(p.Edges)
		e.nodeMap(p.TauV)
		e.nodeMap(p.EtaV)
		e.tcntMap(p.Tcnt)
	}
}

// deltaKeys writes a strictly-increasing key sequence: count, first key
// raw, then deltas. When val is non-nil it is called after each key to
// append the key's accompanying value — the one shared shape behind the
// edge set and both counter maps. It sorts keys in place before writing,
// which is what makes the map-derived encodings canonical.
//
//rept:sorter
func (e *encoder) deltaKeys(keys []uint64, val func(k uint64)) {
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	e.uvarint(uint64(len(keys)))
	prev := uint64(0)
	for i, k := range keys {
		if i == 0 {
			e.uvarint(k)
		} else {
			if k == prev {
				e.fail(fmt.Errorf("snapshot: duplicate key %#x", k))
				return
			}
			e.uvarint(k - prev)
		}
		prev = k
		if val != nil {
			val(k)
		}
	}
}

// edgeSet writes the sampled edges as delta-encoded sorted canonical keys.
func (e *encoder) edgeSet(edges []graph.Edge) {
	keys := make([]uint64, len(edges))
	for i, ed := range edges {
		keys[i] = ed.Key()
	}
	e.deltaKeys(keys, nil)
}

// nodeMap writes a per-node counter map: a presence flag (nil maps stay
// nil on restore), then sorted delta-encoded node ids with their signed
// counts.
func (e *encoder) nodeMap(m map[graph.NodeID]int64) {
	if m == nil {
		e.bool(false)
		return
	}
	e.bool(true)
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, uint64(k))
	}
	e.deltaKeys(keys, func(k uint64) { e.svarint(m[graph.NodeID(k)]) })
}

// degreeMap writes the coordinator degree table: sorted delta-encoded
// node ids with their uvarint degrees (the same shape as nodeMap, minus
// the presence flag, which the sharded payload carries as trackDegrees).
func (e *encoder) degreeMap(m map[graph.NodeID]uint32) {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, uint64(k))
	}
	e.deltaKeys(keys, func(k uint64) { e.uvarint(uint64(m[graph.NodeID(k)])) })
}

// tcntMap writes the per-edge closing counters, sorted by edge key.
func (e *encoder) tcntMap(m map[uint64]int32) {
	if m == nil {
		e.bool(false)
		return
	}
	e.bool(true)
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	e.deltaKeys(keys, func(k uint64) { e.svarint(int64(m[k])) })
}

// decoder reads the snapshot wire format. Every byte consumed before the
// trailer feeds the running CRC, so a trailing checksum mismatch catches
// bit flips that happened to parse.
type decoder struct {
	r   *bufio.Reader
	crc hash.Hash32
	one [1]byte
	// version is the format version read from the header; pre-version-3
	// payloads encode counters as plain uvarints instead of zigzag.
	version uint64
}

func newDecoder(r io.Reader) *decoder {
	return &decoder{r: bufio.NewReader(r), crc: crc32.NewIEEE()}
}

// corrupt maps read errors to ErrCorrupt: running out of input mid-field
// means a truncated snapshot, which is corruption, not I/O trouble.
func corrupt(what string, err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("%w: truncated reading %s", ErrCorrupt, what)
	}
	return fmt.Errorf("snapshot: reading %s: %w", what, err)
}

// ReadByte implements io.ByteReader for binary.ReadUvarint.
func (d *decoder) ReadByte() (byte, error) {
	b, err := d.r.ReadByte()
	if err != nil {
		return 0, err
	}
	d.one[0] = b
	d.crc.Write(d.one[:])
	return b, nil
}

func (d *decoder) full(p []byte, what string) error {
	if _, err := io.ReadFull(d.r, p); err != nil {
		return corrupt(what, err)
	}
	d.crc.Write(p)
	return nil
}

func (d *decoder) uvarint(what string) (uint64, error) {
	x, err := binary.ReadUvarint(d)
	if err != nil {
		return 0, corrupt(what, err)
	}
	return x, nil
}

// svarint reads one signed counter: zigzag in version ≥ 3, plain uvarint
// (necessarily non-negative, range-checked) before that.
func (d *decoder) svarint(what string) (int64, error) {
	if d.version >= 3 {
		x, err := binary.ReadVarint(d)
		if err != nil {
			return 0, corrupt(what, err)
		}
		return x, nil
	}
	x, err := d.uvarint(what)
	if err != nil {
		return 0, err
	}
	if x > math.MaxInt64 {
		return 0, fmt.Errorf("%w: %s %d overflows int64", ErrCorrupt, what, x)
	}
	return int64(x), nil
}

func (d *decoder) count(what string) (int, error) {
	x, err := d.uvarint(what)
	if err != nil {
		return 0, err
	}
	if x > maxCount {
		return 0, fmt.Errorf("%w: %s %d exceeds sanity bound %d", ErrCorrupt, what, x, uint64(maxCount))
	}
	return int(x), nil
}

func (d *decoder) bool(what string) (bool, error) {
	b, err := d.ReadByte()
	if err != nil {
		return false, corrupt(what, err)
	}
	switch b {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("%w: %s flag byte %d, want 0 or 1", ErrCorrupt, what, b)
	}
}

func (d *decoder) u64(what string) (uint64, error) {
	var p [8]byte
	if err := d.full(p[:], what); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(p[:]), nil
}

// header checks the magic and version and returns the snapshot kind and
// format version. Every version in [1, Version] is accepted; kind-specific
// decoders use the version to skip sections the writer predates.
func (d *decoder) header() (byte, uint64, error) {
	var m [8]byte
	if _, err := io.ReadFull(d.r, m[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, 0, ErrBadMagic
		}
		return 0, 0, corrupt("magic", err)
	}
	if m != magic {
		return 0, 0, ErrBadMagic
	}
	d.crc.Write(m[:])
	v, err := d.uvarint("version")
	if err != nil {
		return 0, 0, err
	}
	if v < 1 || v > Version {
		return 0, 0, fmt.Errorf("snapshot: unsupported format version %d (this build reads versions 1 through %d)", v, Version)
	}
	kind, err := d.ReadByte()
	if err != nil {
		return 0, 0, corrupt("kind", err)
	}
	d.version = v
	return kind, v, nil
}

// trailer verifies the CRC over everything read so far.
func (d *decoder) trailer() error {
	want := d.crc.Sum32()
	var p [4]byte
	if _, err := io.ReadFull(d.r, p[:]); err != nil {
		return corrupt("checksum", err)
	}
	if got := binary.LittleEndian.Uint32(p[:]); got != want {
		return fmt.Errorf("%w: checksum %#x, computed %#x", ErrCorrupt, got, want)
	}
	return nil
}

func (d *decoder) fingerprint() (Fingerprint, error) {
	var f Fingerprint
	m, err := d.uvarint("M")
	if err != nil {
		return f, err
	}
	c, err := d.uvarint("C")
	if err != nil {
		return f, err
	}
	if m > maxCount || c > maxCount {
		return f, fmt.Errorf("%w: fingerprint M=%d C=%d out of range", ErrCorrupt, m, c)
	}
	f.M, f.C = int(m), int(c)
	seed, err := d.u64("Seed")
	if err != nil {
		return f, err
	}
	f.Seed = int64(seed)
	if f.TrackLocal, err = d.bool("TrackLocal"); err != nil {
		return f, err
	}
	if f.TrackEta, err = d.bool("TrackEta"); err != nil {
		return f, err
	}
	if d.version >= 3 {
		if f.FullyDynamic, err = d.bool("FullyDynamic"); err != nil {
			return f, err
		}
	}
	return f, validFingerprint(f)
}

func (d *decoder) engineBody() (*EngineState, error) {
	st := &EngineState{}
	var err error
	if st.Fingerprint, err = d.fingerprint(); err != nil {
		return nil, err
	}
	if st.Processed, err = d.uvarint("processed"); err != nil {
		return nil, err
	}
	if d.version >= 3 {
		if st.Deleted, err = d.uvarint("deleted"); err != nil {
			return nil, err
		}
	}
	if st.SelfLoops, err = d.uvarint("selfLoops"); err != nil {
		return nil, err
	}
	if d.version >= 4 {
		shift, err := d.uvarint("sampleShift")
		if err != nil {
			return nil, err
		}
		if shift > 63 {
			return nil, fmt.Errorf("%w: sample shift %d out of range [0, 63]", ErrCorrupt, shift)
		}
		st.SampleShift = int(shift)
	}
	st.Procs = make([]ProcState, 0, min(st.C, maxPrealloc))
	for i := 0; i < st.C; i++ {
		p, err := d.proc()
		if err != nil {
			return nil, fmt.Errorf("processor %d: %w", i, err)
		}
		st.Procs = append(st.Procs, p)
	}
	return st, nil
}

func (d *decoder) proc() (ProcState, error) {
	var p ProcState
	var err error
	if p.Tau, err = d.svarint("tau"); err != nil {
		return p, err
	}
	if p.Eta, err = d.svarint("eta"); err != nil {
		return p, err
	}
	if d.version >= 3 {
		if p.Di, err = d.uvarint("di"); err != nil {
			return p, err
		}
		if p.Do, err = d.uvarint("do"); err != nil {
			return p, err
		}
		if p.Phantom, err = d.uvarint("phantom"); err != nil {
			return p, err
		}
	}
	if p.Edges, err = d.edgeSet(); err != nil {
		return p, err
	}
	if p.TauV, err = d.nodeMap("tauV"); err != nil {
		return p, err
	}
	if p.EtaV, err = d.nodeMap("etaV"); err != nil {
		return p, err
	}
	if p.Tcnt, err = d.tcntMap(); err != nil {
		return p, err
	}
	return p, nil
}

// deltaKeys reads n delta-encoded, strictly-increasing keys, rejecting
// duplicates and overflow, and calls each for every decoded key (to
// validate it and read any accompanying value) — the single decode loop
// mirroring the encoder's deltaKeys.
func (d *decoder) deltaKeys(n int, what string, each func(k uint64) error) error {
	prev := uint64(0)
	for i := 0; i < n; i++ {
		delta, err := d.uvarint(what + " key")
		if err != nil {
			return err
		}
		k := delta
		if i > 0 {
			if delta == 0 {
				return fmt.Errorf("%w: duplicate %s key after %#x", ErrCorrupt, what, prev)
			}
			k = prev + delta
			if k < prev {
				return fmt.Errorf("%w: %s key overflow", ErrCorrupt, what)
			}
		}
		if err := each(k); err != nil {
			return err
		}
		prev = k
	}
	return nil
}

func (d *decoder) edgeSet() ([]graph.Edge, error) {
	n, err := d.count("edge count")
	if err != nil {
		return nil, err
	}
	out := make([]graph.Edge, 0, min(n, maxPrealloc))
	err = d.deltaKeys(n, "edge", func(k uint64) error {
		if err := keyOutOfRange(k); err != nil {
			return err
		}
		out = append(out, graph.KeyEdge(k))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (d *decoder) nodeMap(what string) (map[graph.NodeID]int64, error) {
	present, err := d.bool(what)
	if err != nil || !present {
		return nil, err
	}
	n, err := d.count(what + " count")
	if err != nil {
		return nil, err
	}
	out := make(map[graph.NodeID]int64, min(n, maxPrealloc))
	err = d.deltaKeys(n, what, func(k uint64) error {
		if err := nodeOutOfRange(k); err != nil {
			return err
		}
		v, err := d.svarint(what + " value")
		if err != nil {
			return err
		}
		out[graph.NodeID(k)] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// degreeMap reads the coordinator degree table written by the encoder's
// degreeMap (version ≥ 2 sharded payloads with trackDegrees set).
func (d *decoder) degreeMap() (map[graph.NodeID]uint32, error) {
	n, err := d.count("degree count")
	if err != nil {
		return nil, err
	}
	out := make(map[graph.NodeID]uint32, min(n, maxPrealloc))
	err = d.deltaKeys(n, "degree", func(k uint64) error {
		if err := nodeOutOfRange(k); err != nil {
			return err
		}
		v, err := d.uvarint("degree value")
		if err != nil {
			return err
		}
		if v > uint64(^uint32(0)) {
			return fmt.Errorf("%w: degree %d overflows uint32", ErrCorrupt, v)
		}
		out[graph.NodeID(k)] = uint32(v)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (d *decoder) tcntMap() (map[uint64]int32, error) {
	present, err := d.bool("tcnt")
	if err != nil || !present {
		return nil, err
	}
	n, err := d.count("tcnt count")
	if err != nil {
		return nil, err
	}
	out := make(map[uint64]int32, min(n, maxPrealloc))
	err = d.deltaKeys(n, "tcnt", func(k uint64) error {
		if err := keyOutOfRange(k); err != nil {
			return err
		}
		v, err := d.svarint("tcnt value")
		if err != nil {
			return err
		}
		if v > math.MaxInt32 || v < math.MinInt32 {
			return fmt.Errorf("%w: tcnt value %d overflows int32", ErrCorrupt, v)
		}
		out[k] = int32(v)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
