package snapshot

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"rept/internal/graph"
)

func testEngineState() *EngineState {
	return &EngineState{
		Fingerprint: Fingerprint{M: 3, C: 4, Seed: -7, TrackLocal: true, TrackEta: true},
		Processed:   123,
		SelfLoops:   4,
		Procs: []ProcState{
			{
				Tau: 9, Eta: 2,
				Edges: []graph.Edge{{U: 5, V: 1}, {U: 2, V: 3}},
				TauV:  map[graph.NodeID]int64{1: 4, 9: 1},
				EtaV:  map[graph.NodeID]int64{2: 7},
				Tcnt:  map[uint64]int32{graph.Key(1, 5): 1, graph.Key(2, 3): 0},
			},
			{Tau: 1, TauV: map[graph.NodeID]int64{}, EtaV: map[graph.NodeID]int64{}, Tcnt: map[uint64]int32{}},
			{Edges: []graph.Edge{{U: 0, V: 1}}, TauV: map[graph.NodeID]int64{}, EtaV: map[graph.NodeID]int64{}, Tcnt: map[uint64]int32{graph.Key(0, 1): 0}},
			{TauV: map[graph.NodeID]int64{}, EtaV: map[graph.NodeID]int64{}, Tcnt: map[uint64]int32{}},
		},
	}
}

func testShardedState() *ShardedState {
	eng := testEngineState()
	return &ShardedState{
		Fingerprint: Fingerprint{M: 3, C: 8, Seed: 11, TrackLocal: true, TrackEta: true},
		ShardCount:  2,
		Processed:   123,
		SelfLoops:   4,
		Shards:      []EngineState{*eng, *eng},
	}
}

func encodeEngine(t *testing.T, st *EngineState) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteEngine(&buf, st); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestEngineRoundTrip(t *testing.T) {
	st := testEngineState()
	data := encodeEngine(t, st)
	got, err := ReadEngine(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != st.Fingerprint {
		t.Errorf("fingerprint = %+v, want %+v", got.Fingerprint, st.Fingerprint)
	}
	if got.Processed != st.Processed || got.SelfLoops != st.SelfLoops {
		t.Errorf("tallies = (%d, %d), want (%d, %d)", got.Processed, got.SelfLoops, st.Processed, st.SelfLoops)
	}
	if len(got.Procs) != len(st.Procs) {
		t.Fatalf("decoded %d procs, want %d", len(got.Procs), len(st.Procs))
	}
	p := got.Procs[0]
	if p.Tau != 9 || p.Eta != 2 {
		t.Errorf("proc 0 counters = (%d, %d), want (9, 2)", p.Tau, p.Eta)
	}
	if len(p.Edges) != 2 || p.Edges[0] != (graph.Edge{U: 1, V: 5}) || p.Edges[1] != (graph.Edge{U: 2, V: 3}) {
		t.Errorf("proc 0 edges = %v (want canonical sorted {1,5},{2,3})", p.Edges)
	}
	if p.TauV[1] != 4 || p.TauV[9] != 1 || p.EtaV[2] != 7 {
		t.Errorf("proc 0 maps decoded wrong: tauV=%v etaV=%v", p.TauV, p.EtaV)
	}
	if p.Tcnt[graph.Key(1, 5)] != 1 {
		t.Errorf("proc 0 tcnt = %v", p.Tcnt)
	}
}

// TestCanonicalEncoding: encoding is deterministic (sorted keys), so the
// same state always produces byte-identical snapshots — the property that
// makes snapshot diffs and content-addressed storage meaningful.
func TestCanonicalEncoding(t *testing.T) {
	a := encodeEngine(t, testEngineState())
	b := encodeEngine(t, testEngineState())
	if !bytes.Equal(a, b) {
		t.Error("two encodings of the same state differ")
	}

	// Decode and re-encode: still byte-identical.
	got, err := ReadEngine(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if c := encodeEngine(t, got); !bytes.Equal(a, c) {
		t.Error("decode→encode is not byte-identical")
	}
}

func TestShardedRoundTrip(t *testing.T) {
	st := testShardedState()
	var buf bytes.Buffer
	if err := WriteSharded(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSharded(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != st.Fingerprint || got.ShardCount != 2 {
		t.Errorf("header = %+v/%d, want %+v/2", got.Fingerprint, got.ShardCount, st.Fingerprint)
	}
	if len(got.Shards) != 2 || len(got.Shards[1].Procs) != 4 {
		t.Fatalf("shards decoded wrong: %d shards", len(got.Shards))
	}

	// The generic reader identifies the kind.
	eng, sh, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil || eng != nil || sh == nil {
		t.Errorf("Read(sharded) = (%v, %v, %v)", eng, sh, err)
	}
}

func TestKindConfusionRejected(t *testing.T) {
	data := encodeEngine(t, testEngineState())
	if _, err := ReadSharded(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "engine snapshot") {
		t.Errorf("ReadSharded(engine snapshot) err = %v, want kind error", err)
	}
	var buf bytes.Buffer
	if err := WriteSharded(&buf, testShardedState()); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEngine(bytes.NewReader(buf.Bytes())); err == nil || !strings.Contains(err.Error(), "sharded snapshot") {
		t.Errorf("ReadEngine(sharded snapshot) err = %v, want kind error", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	valid := encodeEngine(t, testEngineState())

	t.Run("BadMagic", func(t *testing.T) {
		if _, err := ReadEngine(strings.NewReader("NOTASNAP....")); !errors.Is(err, ErrBadMagic) {
			t.Errorf("err = %v, want ErrBadMagic", err)
		}
		if _, err := ReadEngine(strings.NewReader("")); !errors.Is(err, ErrBadMagic) {
			t.Errorf("empty input err = %v, want ErrBadMagic", err)
		}
	})

	t.Run("FutureVersion", func(t *testing.T) {
		data := append([]byte{}, valid...)
		data[8] = 99 // version varint
		if _, err := ReadEngine(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "version 99") {
			t.Errorf("err = %v, want unsupported-version error", err)
		}
	})

	t.Run("Truncated", func(t *testing.T) {
		for _, n := range []int{9, 12, len(valid) / 2, len(valid) - 1} {
			if _, err := ReadEngine(bytes.NewReader(valid[:n])); !errors.Is(err, ErrCorrupt) {
				t.Errorf("truncated at %d: err = %v, want ErrCorrupt", n, err)
			}
		}
	})

	t.Run("ChecksumFlip", func(t *testing.T) {
		// Flip one payload bit. Either the structure breaks (ErrCorrupt
		// from a field check) or the CRC catches it; both wrap ErrCorrupt.
		data := append([]byte{}, valid...)
		data[len(data)/2] ^= 0x10
		if _, err := ReadEngine(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("bit flip: err = %v, want ErrCorrupt", err)
		}
	})

	t.Run("TrailingCRCFlip", func(t *testing.T) {
		data := append([]byte{}, valid...)
		data[len(data)-1] ^= 0xff
		if _, err := ReadEngine(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("crc flip: err = %v, want ErrCorrupt", err)
		}
	})
}

func TestWriteValidation(t *testing.T) {
	st := testEngineState()
	st.Procs = st.Procs[:2] // C says 4
	if err := WriteEngine(&bytes.Buffer{}, st); err == nil {
		t.Error("WriteEngine with proc/C mismatch succeeded")
	}
	sh := testShardedState()
	sh.ShardCount = 3
	if err := WriteSharded(&bytes.Buffer{}, sh); err == nil {
		t.Error("WriteSharded with shard-count mismatch succeeded")
	}
}

func TestFingerprintMatch(t *testing.T) {
	base := Fingerprint{M: 10, C: 40, Seed: 1, TrackLocal: true, TrackEta: false}
	if err := base.Match(base); err != nil {
		t.Errorf("identical fingerprints: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Fingerprint)
		want string
	}{
		{"M", func(f *Fingerprint) { f.M = 11 }, "M = 10 in snapshot, 11 in config"},
		{"C", func(f *Fingerprint) { f.C = 39 }, "C = 40 in snapshot, 39 in config"},
		{"Seed", func(f *Fingerprint) { f.Seed = 2 }, "Seed = 1 in snapshot, 2 in config"},
		{"TrackLocal", func(f *Fingerprint) { f.TrackLocal = false }, "TrackLocal = true in snapshot, false in config"},
		{"TrackEta", func(f *Fingerprint) { f.TrackEta = true }, "TrackEta = false in snapshot, true in config"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			err := base.Match(cfg)
			if !errors.Is(err, ErrMismatch) {
				t.Fatalf("err = %v, want ErrMismatch", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err %q does not name the field: want substring %q", err, tc.want)
			}
		})
	}

	// All fields different: the error names each one.
	err := base.Match(Fingerprint{M: 1, C: 1, Seed: 9, TrackLocal: false, TrackEta: true})
	for _, field := range []string{"M = ", "C = ", "Seed = ", "TrackLocal = ", "TrackEta = "} {
		if !strings.Contains(err.Error(), field) {
			t.Errorf("multi-field mismatch error %q missing %q", err, field)
		}
	}
}
