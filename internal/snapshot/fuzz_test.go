package snapshot

import (
	"bytes"
	"testing"
)

// FuzzReadSnapshot: the decoder must never panic or allocate unboundedly,
// whatever bytes it is fed — malformed input returns an error. The seed
// corpus holds valid snapshots of both kinds so mutations explore deep
// decode paths rather than dying on the magic check.
func FuzzReadSnapshot(f *testing.F) {
	var eng bytes.Buffer
	if err := WriteEngine(&eng, testEngineState()); err != nil {
		f.Fatal(err)
	}
	var sh bytes.Buffer
	if err := WriteSharded(&sh, testShardedState()); err != nil {
		f.Fatal(err)
	}
	f.Add(eng.Bytes())
	f.Add(sh.Bytes())
	f.Add([]byte("REPTSNAP"))
	f.Add(append(append([]byte{}, eng.Bytes()[:12]...), 0xff, 0xff, 0xff, 0xff, 0xff))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		engSt, shSt, err := Read(bytes.NewReader(data))
		if err != nil {
			if engSt != nil || shSt != nil {
				t.Errorf("non-nil state alongside error %v", err)
			}
			return
		}
		if (engSt == nil) == (shSt == nil) {
			t.Errorf("success must yield exactly one state: engine=%v sharded=%v", engSt != nil, shSt != nil)
		}
		// A snapshot that decodes must re-encode canonically: write it
		// back out and decode again.
		var buf bytes.Buffer
		switch {
		case engSt != nil:
			if err := WriteEngine(&buf, engSt); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if _, err := ReadEngine(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatalf("re-decode: %v", err)
			}
		case shSt != nil:
			if err := WriteSharded(&buf, shSt); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if _, err := ReadSharded(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatalf("re-decode: %v", err)
			}
		}
	})
}
