// Package snapshot implements the versioned binary format that persists
// REPT estimator state across restarts: the configuration fingerprint,
// every logical processor's sampled adjacency E⁽ⁱ⁾, the τ⁽ⁱ⁾/η⁽ⁱ⁾
// counters (global and per-node), the per-edge triangle counters that
// Algorithm 2 needs to keep η⁽ⁱ⁾ incremental, and the processed/self-loop
// tallies. Restoring a snapshot yields an estimator that behaves
// identically to the one that wrote it: fed the same suffix stream, it
// produces bit-for-bit the same estimates.
//
// # Wire format
//
// A snapshot is
//
//	magic   "REPTSNAP"            (8 bytes)
//	version uvarint               (see Version; writers emit the oldest
//	                               version representing the state)
//	kind    byte                  (1 = single engine, 2 = sharded)
//	payload                       (kind-specific, see below)
//	crc32   IEEE, little-endian   (4 bytes, over everything above)
//
// All integers in the payload are unsigned varints except seeds, which are
// fixed 8-byte little-endian (a seed is arbitrary 64-bit entropy, so
// varint encoding would usually cost more). Sets and maps are written
// sorted by key with delta-encoded keys, which both compresses well (edge
// keys of a sampled adjacency cluster by high node id) and makes encoding
// canonical: two snapshots of the same state are byte-identical.
//
// The engine payload is the fingerprint (M, C, seed, trackLocal,
// trackEta and, since version 3, fullyDynamic), the processed, deleted
// (version ≥ 3) and self-loop tallies, the sample down-shift (version
// ≥ 4), and then C processor records:
// τ⁽ⁱ⁾, η⁽ⁱ⁾, the random-pairing deletion counters d_i/d_o/phantom
// (version ≥ 3), the sorted sampled edge keys, the τ⁽ⁱ⁾_v and η⁽ⁱ⁾_v
// maps, and the per-edge triangle counters. Version 3 made every
// statistical counter SIGNED (zigzag varints) because fully-dynamic
// streams produce transiently negative per-processor counters; versions
// 1 and 2 encode the same fields as plain uvarints and decode into the
// signed representation. The sharded payload is the coordinator
// fingerprint, the shard count, the coordinator tallies (deleted since
// version 3), the coordinator-level degree table (version ≥ 2: a
// presence flag, then sorted delta-encoded node ids with uvarint degrees
// — the table backing clustering-coefficient queries), and then one
// engine payload per shard in shard order.
//
// The version field is bumped on any incompatible change; readers reject
// versions they do not understand rather than guessing, and keep reading
// every older version (a version-1 sharded snapshot restores with no
// degree table). It is also the hook for future cross-node state handoff:
// a newer node can keep emitting version-N snapshots while older peers
// are still draining.
//
// The whole package is marked deterministic: encodings are canonical, so
// no code here may depend on map iteration order (reptvet's detorder
// enforces this — collect keys and sort, as deltaKeys does).
//
//rept:deterministic
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"strings"

	"rept/internal/graph"
)

// Version is the highest format version this build writes and reads.
// Readers accept every version in [1, Version]: version 2 added the
// coordinator degree table to sharded payloads; version 3 added
// fully-dynamic streams (signed counters, deletion tallies, and the
// random-pairing d_i/d_o counters); version 4 added the per-engine
// sample down-shift written by adaptive resampling. Writers emit the
// OLDEST version that can represent the state — version 3 whenever no
// engine has downsampled — so snapshots stay byte-identical with older
// builds until the new feature is actually exercised.
const Version = 4

// Snapshot kinds.
const (
	// KindEngine is a single-engine snapshot (core.Engine).
	KindEngine byte = 1
	// KindSharded is a multi-shard snapshot (shard.Sharded): one engine
	// payload per shard, checkpointed at one consistent stream prefix.
	KindSharded byte = 2
)

var magic = [8]byte{'R', 'E', 'P', 'T', 'S', 'N', 'A', 'P'}

var (
	// ErrBadMagic reports that the input is not a REPT snapshot at all.
	ErrBadMagic = errors.New("snapshot: bad magic, not a REPT snapshot")
	// ErrCorrupt reports a snapshot that is structurally invalid:
	// truncated, failing its checksum, or with out-of-range fields.
	ErrCorrupt = errors.New("snapshot: corrupt")
	// ErrMismatch reports a restore whose target configuration does not
	// match the snapshot's fingerprint. Errors wrapping it describe every
	// mismatched field.
	ErrMismatch = errors.New("snapshot: config mismatch")
)

// Fingerprint identifies the statistical configuration a snapshot was
// taken under. Execution details (worker counts, batch sizes, queue
// depths) are deliberately absent: they do not affect estimator state, so
// a snapshot may be restored under different ones. A custom hash family
// (core.Config.HashFamily) cannot be fingerprinted — callers using one
// must supply the identical family on restore.
type Fingerprint struct {
	M          int
	C          int
	Seed       int64
	TrackLocal bool
	TrackEta   bool
	// FullyDynamic records whether the engine accepted deletion events.
	// Snapshots written before version 3 decode with it false.
	FullyDynamic bool
}

// Hash returns a stable 64-bit digest of the fingerprint (FNV-1a over a
// fixed-width field encoding). The write-ahead log stamps it into every
// segment header so recovery can reject segments written under a
// different statistical configuration without decoding a full snapshot;
// it is a binding check, not a substitute for Match (which still runs on
// the snapshot itself and names the differing fields).
func (f Fingerprint) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	put(uint64(f.M))
	put(uint64(f.C))
	put(uint64(f.Seed))
	var flags uint64
	if f.TrackLocal {
		flags |= 1
	}
	if f.TrackEta {
		flags |= 2
	}
	if f.FullyDynamic {
		flags |= 4
	}
	put(flags)
	return h.Sum64()
}

// Match compares the snapshot fingerprint against the configuration a
// caller wants to restore into. It returns nil when they agree and an
// error wrapping ErrMismatch naming every differing field otherwise.
func (f Fingerprint) Match(cfg Fingerprint) error {
	var diffs []string
	add := func(field string, snap, want any) {
		diffs = append(diffs, fmt.Sprintf("%s = %v in snapshot, %v in config", field, snap, want))
	}
	if f.M != cfg.M {
		add("M", f.M, cfg.M)
	}
	if f.C != cfg.C {
		add("C", f.C, cfg.C)
	}
	if f.Seed != cfg.Seed {
		add("Seed", f.Seed, cfg.Seed)
	}
	if f.TrackLocal != cfg.TrackLocal {
		add("TrackLocal", f.TrackLocal, cfg.TrackLocal)
	}
	if f.TrackEta != cfg.TrackEta {
		add("TrackEta", f.TrackEta, cfg.TrackEta)
	}
	if f.FullyDynamic != cfg.FullyDynamic {
		add("FullyDynamic", f.FullyDynamic, cfg.FullyDynamic)
	}
	if diffs == nil {
		return nil
	}
	return fmt.Errorf("%w: %s", ErrMismatch, strings.Join(diffs, "; "))
}

// ProcState is the full state of one logical REPT processor. Counters
// are signed: fully-dynamic engines hold transiently negative values.
type ProcState struct {
	// Tau and Eta are the processor's τ⁽ⁱ⁾ and η⁽ⁱ⁾ counters.
	Tau, Eta int64
	// Di, Do, and Phantom are the random-pairing deletion counters:
	// deletions of sampled edges (d_i), of unsampled edges (d_o), and of
	// edges that were never inserted despite a matching hash color
	// (malformed streams). All zero before format version 3.
	Di, Do, Phantom uint64
	// Edges is the sampled edge set E⁽ⁱ⁾, sorted by canonical key.
	Edges []graph.Edge
	// TauV and EtaV are the per-node τ⁽ⁱ⁾_v and η⁽ⁱ⁾_v counters; nil when
	// the engine did not track them.
	TauV, EtaV map[graph.NodeID]int64
	// Tcnt maps each sampled edge's key to its signed per-edge closing
	// counter (Algorithm 2's η bookkeeping); nil when η was not tracked.
	Tcnt map[uint64]int32
}

// EngineState is the full state of one core.Engine.
type EngineState struct {
	Fingerprint
	Processed, Deleted, SelfLoops uint64
	// SampleShift is the cumulative sample down-shift applied by adaptive
	// resampling (core.Engine.Downsample): the sampled edge sets below were
	// drawn at the effective probability 1/(M·2^SampleShift). Written since
	// format version 4; snapshots of engines that never downsampled are
	// emitted as version 3 and decode with SampleShift 0. Deliberately NOT
	// part of the fingerprint: the shift is estimator state (like the
	// counters), not configuration — a resumed engine re-adapts under its
	// own controller.
	SampleShift int
	Procs       []ProcState
}

// maxEngineShift returns the highest SampleShift across engines, the
// value that decides whether a writer needs version 4.
func maxEngineShift(engines []EngineState) int {
	s := 0
	for i := range engines {
		if engines[i].SampleShift > s {
			s = engines[i].SampleShift
		}
	}
	return s
}

// writeVersion picks the oldest format version that represents states
// with the given maximum sample shift.
func writeVersion(maxShift int) uint64 {
	if maxShift != 0 {
		return 4
	}
	return 3
}

// ShardedState is the barrier-consistent state of a shard.Sharded
// coordinator: every shard's engine state at one stream prefix.
type ShardedState struct {
	// Fingerprint holds the coordinator-level configuration; the Seed is
	// the master seed the per-shard seeds are derived from.
	Fingerprint
	// ShardCount is the effective number of shards. It is part of the
	// restore contract: per-shard hash seeds derive from (Seed, shard
	// index), so a different shard split reads the same bytes into a
	// statistically different estimator.
	ShardCount                    int
	Processed, Deleted, SelfLoops uint64
	// TrackDegrees records whether the coordinator maintained a degree
	// table; like the fingerprint fields it is part of the restore
	// contract (a restore must not silently lose or invent degrees).
	// Version-1 snapshots decode with TrackDegrees false.
	TrackDegrees bool
	// Degrees is the coordinator degree table at the checkpoint prefix;
	// nil unless TrackDegrees.
	Degrees map[graph.NodeID]uint32
	Shards  []EngineState
}

// WriteEngine writes st as a single-engine snapshot.
func WriteEngine(w io.Writer, st *EngineState) error {
	if len(st.Procs) != st.C {
		return fmt.Errorf("snapshot: engine state has %d processors, fingerprint says C=%d", len(st.Procs), st.C)
	}
	e := newEncoder(w)
	e.header(KindEngine, writeVersion(st.SampleShift))
	e.engineBody(st)
	e.trailer()
	return e.err
}

// ReadEngine reads a single-engine snapshot.
func ReadEngine(r io.Reader) (*EngineState, error) {
	eng, _, err := read(r, KindEngine)
	return eng, err
}

// WriteSharded writes st as a multi-shard snapshot.
func WriteSharded(w io.Writer, st *ShardedState) error {
	if len(st.Shards) != st.ShardCount {
		return fmt.Errorf("snapshot: sharded state has %d shards, header says %d", len(st.Shards), st.ShardCount)
	}
	e := newEncoder(w)
	e.header(KindSharded, writeVersion(maxEngineShift(st.Shards)))
	e.fingerprint(st.Fingerprint)
	e.uvarint(uint64(st.ShardCount))
	e.uvarint(st.Processed)
	e.uvarint(st.Deleted)
	e.uvarint(st.SelfLoops)
	e.bool(st.TrackDegrees)
	if st.TrackDegrees {
		e.degreeMap(st.Degrees)
	}
	for i := range st.Shards {
		sh := &st.Shards[i]
		if len(sh.Procs) != sh.C {
			e.fail(fmt.Errorf("snapshot: shard %d has %d processors, fingerprint says C=%d", i, len(sh.Procs), sh.C))
			break
		}
		e.engineBody(sh)
	}
	e.trailer()
	return e.err
}

// ReadSharded reads a multi-shard snapshot.
func ReadSharded(r io.Reader) (*ShardedState, error) {
	_, sh, err := read(r, KindSharded)
	return sh, err
}

// Read decodes a snapshot of either kind; exactly one of the returned
// states is non-nil on success. It is the entry point for callers that do
// not know the kind in advance (inspection tools, fuzzing).
func Read(r io.Reader) (*EngineState, *ShardedState, error) {
	return read(r, 0)
}

func kindName(k byte) string {
	switch k {
	case KindEngine:
		return "engine"
	case KindSharded:
		return "sharded"
	default:
		return fmt.Sprintf("unknown(%d)", k)
	}
}

// read decodes one snapshot, requiring kind wantKind (0 accepts any).
func read(r io.Reader, wantKind byte) (*EngineState, *ShardedState, error) {
	d := newDecoder(r)
	kind, version, err := d.header()
	if err != nil {
		return nil, nil, err
	}
	if wantKind != 0 && kind != wantKind {
		return nil, nil, fmt.Errorf("snapshot: this is a %s snapshot, want %s", kindName(kind), kindName(wantKind))
	}
	switch kind {
	case KindEngine:
		eng, err := d.engineBody()
		if err != nil {
			return nil, nil, err
		}
		if err := d.trailer(); err != nil {
			return nil, nil, err
		}
		return eng, nil, nil
	case KindSharded:
		sh := &ShardedState{}
		if sh.Fingerprint, err = d.fingerprint(); err != nil {
			return nil, nil, err
		}
		n, err := d.count("shard count")
		if err != nil {
			return nil, nil, err
		}
		if n < 1 || n > maxShards {
			return nil, nil, fmt.Errorf("%w: shard count %d out of range [1, %d]", ErrCorrupt, n, maxShards)
		}
		sh.ShardCount = n
		if sh.Processed, err = d.uvarint("processed"); err != nil {
			return nil, nil, err
		}
		if version >= 3 {
			if sh.Deleted, err = d.uvarint("deleted"); err != nil {
				return nil, nil, err
			}
		}
		if sh.SelfLoops, err = d.uvarint("selfLoops"); err != nil {
			return nil, nil, err
		}
		if version >= 2 {
			if sh.TrackDegrees, err = d.bool("trackDegrees"); err != nil {
				return nil, nil, err
			}
			if sh.TrackDegrees {
				if sh.Degrees, err = d.degreeMap(); err != nil {
					return nil, nil, err
				}
			}
		}
		sh.Shards = make([]EngineState, 0, min(n, maxPrealloc))
		for i := 0; i < n; i++ {
			eng, err := d.engineBody()
			if err != nil {
				return nil, nil, fmt.Errorf("shard %d: %w", i, err)
			}
			sh.Shards = append(sh.Shards, *eng)
		}
		if err := d.trailer(); err != nil {
			return nil, nil, err
		}
		return nil, sh, nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown snapshot kind %d", ErrCorrupt, kind)
	}
}

// Decode-time sanity bounds. They reject garbage counts early with a
// clear error instead of looping until the input runs dry; all are far
// above anything a real deployment produces.
const (
	maxC      = 1 << 24
	maxShards = 1 << 16
	// maxCount bounds entry counts (edges, map sizes). It must stay below
	// 1<<31 so the uint64→int conversion in decoder.count cannot wrap
	// negative on 32-bit platforms.
	maxCount    = 1 << 30
	maxPrealloc = 1 << 12 // cap pre-allocation: corrupt counts must not OOM
)

// validFingerprint applies range checks shared by both kinds. MaxM in
// core is 1<<16; the snapshot layer enforces the same bound so corrupt
// fingerprints fail here with ErrCorrupt rather than downstream.
func validFingerprint(f Fingerprint) error {
	if f.M < 1 || f.M > 1<<16 {
		return fmt.Errorf("%w: M = %d out of range [1, %d]", ErrCorrupt, f.M, 1<<16)
	}
	if f.C < 1 || f.C > maxC {
		return fmt.Errorf("%w: C = %d out of range [1, %d]", ErrCorrupt, f.C, maxC)
	}
	return nil
}

func keyOutOfRange(k uint64) error {
	e := graph.KeyEdge(k)
	if e.U == e.V {
		return fmt.Errorf("%w: edge key %#x is a self-loop", ErrCorrupt, k)
	}
	if e.U > e.V {
		return fmt.Errorf("%w: edge key %#x is not canonical", ErrCorrupt, k)
	}
	return nil
}

func nodeOutOfRange(k uint64) error {
	if k > math.MaxUint32 {
		return fmt.Errorf("%w: node id %d overflows uint32", ErrCorrupt, k)
	}
	return nil
}
