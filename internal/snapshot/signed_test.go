package snapshot

import (
	"bytes"
	"reflect"
	"testing"

	"rept/internal/graph"
)

// TestSignedCounterRoundTrip: version 3's reason to exist — transiently
// negative counters, the deletion tallies, and the random-pairing
// counters all survive an encode/decode cycle exactly.
func TestSignedCounterRoundTrip(t *testing.T) {
	st := &EngineState{
		Fingerprint: Fingerprint{M: 3, C: 2, Seed: -9, TrackLocal: true, TrackEta: true, FullyDynamic: true},
		Processed:   11,
		Deleted:     4,
		SelfLoops:   1,
		Procs: []ProcState{
			{
				Tau: -7, Eta: -123456789,
				Di: 2, Do: 1, Phantom: 3,
				Edges: []graph.Edge{{U: 1, V: 2}, {U: 2, V: 9}},
				TauV:  map[graph.NodeID]int64{1: -5, 2: 7, 9: 0},
				EtaV:  map[graph.NodeID]int64{2: -1},
				Tcnt:  map[uint64]int32{graph.Key(1, 2): -3, graph.Key(2, 9): 0},
			},
			{
				Tau: 42, Eta: 0,
				Edges: []graph.Edge{},
				TauV:  map[graph.NodeID]int64{},
				EtaV:  map[graph.NodeID]int64{},
				Tcnt:  map[uint64]int32{},
			},
		},
	}
	var buf bytes.Buffer
	if err := WriteEngine(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEngine(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("signed round trip diverged:\ngot  %+v\nwant %+v", got, st)
	}

	// Canonical encoding: re-encoding the decoded state is byte-identical.
	var buf2 bytes.Buffer
	if err := WriteEngine(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-encoding the decoded state changed the bytes")
	}
}

// TestFingerprintFullyDynamicMismatch: the FullyDynamic flag participates
// in fingerprint matching like every statistical field.
func TestFingerprintFullyDynamicMismatch(t *testing.T) {
	a := Fingerprint{M: 2, C: 2, Seed: 1}
	b := a
	b.FullyDynamic = true
	err := a.Match(b)
	if err == nil {
		t.Fatal("mismatch accepted")
	}
	if got := err.Error(); !bytes.Contains([]byte(got), []byte("FullyDynamic")) {
		t.Errorf("error %q does not name FullyDynamic", got)
	}
	if a.Match(a) != nil || b.Match(b) != nil {
		t.Error("self-match failed")
	}
}

// TestShardedDeletedTallyRoundTrip: the coordinator-level deleted tally
// is carried by version-3 sharded payloads.
func TestShardedDeletedTallyRoundTrip(t *testing.T) {
	st := &ShardedState{
		Fingerprint: Fingerprint{M: 2, C: 2, Seed: 5, FullyDynamic: true},
		ShardCount:  1,
		Processed:   9,
		Deleted:     3,
		SelfLoops:   0,
		Shards: []EngineState{{
			Fingerprint: Fingerprint{M: 2, C: 2, Seed: 77, FullyDynamic: true},
			Processed:   9,
			Deleted:     3,
			Procs: []ProcState{
				{Tau: -1, Edges: []graph.Edge{}},
				{Tau: 2, Edges: []graph.Edge{}},
			},
		}},
	}
	var buf bytes.Buffer
	if err := WriteSharded(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSharded(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("sharded signed round trip diverged:\ngot  %+v\nwant %+v", got, st)
	}
}
