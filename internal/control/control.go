// Package control is the policy half of the adaptive memory plane: given
// a byte budget, it watches the accountant ledger (plus view staleness
// and ingest rate for its status report) and degrades the estimator in a
// fixed order when the budget is threatened — retained analytics first
// (top-K ranking depth, the only pure-convenience payload), then the
// sampling probability itself via stream-consistent downsampling with
// REPT's unbiasing rescale. TRIÈST (PAPERS.md) frames the contract:
// fixed memory, sampling adapted online, accuracy degrading gracefully
// and measurably (the achieved variance bound is re-published after
// every adaptation).
//
// The controller is deliberately passive between ticks: the owner (the
// server's control loop) calls Tick on its own cadence, each Tick takes
// at most ONE corrective action, and the only hot-path coupling is
// ShouldShed — a single atomic load the ingest handler consults before
// accepting work.
package control

import (
	"sync"
	"sync/atomic"
	"time"
)

// State is the controller's budget posture.
type State int32

const (
	// StateNormal: memory below the soft watermark; nothing to do.
	StateNormal State = iota
	// StatePressure: above the soft watermark — the controller is
	// degrading (shrinking analytics or downsampling) but still
	// accepting all ingest.
	StatePressure
	// StateShedding: at or above the hard budget — ingest is being
	// refused (429) while degradation catches up.
	StateShedding
)

// String returns the state's stable name (used in /stats and /readyz).
func (s State) String() string {
	switch s {
	case StateNormal:
		return "normal"
	case StatePressure:
		return "pressure"
	case StateShedding:
		return "shedding"
	default:
		return "unknown"
	}
}

// Config wires a Controller to its estimator. All callbacks are required
// unless noted; they must be safe for concurrent use (the controller
// calls them only from Tick, but the owner may tick from any goroutine).
type Config struct {
	// Budget is the hard process-memory budget in bytes (> 0): at or
	// above it the controller sheds ingest.
	Budget int64
	// Headroom is the soft-watermark fraction: degradation starts at
	// Budget·(1−Headroom), before the budget is blown. Default 0.10;
	// clamped to [0, 0.9].
	Headroom float64
	// MinTopK is the floor the ranking is shrunk to before downsampling
	// begins (default 10).
	MinTopK int
	// MaxShift caps the cumulative sample down-shift (default 20); at
	// the cap the controller can only shed.
	MaxShift int

	// MemTotal returns the accounted process-memory bytes (the ledger's
	// MemoryTotal).
	MemTotal func() int64
	// Processed returns the monotone accepted-event count (ingest rate
	// is derived from its deltas between ticks).
	Processed func() uint64
	// SampleShift returns the estimator's cumulative down-shift.
	SampleShift func() int
	// Downsample halves the sampling probability extra more times. An
	// error (η-tracking configuration, shift cap) disables further
	// downsampling; the controller then holds at shedding.
	Downsample func(extra int) error
	// TopK returns the live ranking depth; SetTopK changes it. Both may
	// be nil when no view publisher runs — analytics shrinking is then
	// skipped.
	TopK    func() int
	SetTopK func(int)
	// ConfiguredTopK is the depth to restore toward when pressure
	// clears (ignored when TopK/SetTopK are nil).
	ConfiguredTopK int
	// ViewAge, when non-nil, reports the current view's staleness for
	// Status (the controller does not act on it — a stale view is the
	// publisher's own interval policy).
	ViewAge func() time.Duration
}

// Status is a point-in-time controller report for /stats.
type Status struct {
	Budget      int64   `json:"budget_bytes"`
	SoftLimit   int64   `json:"soft_limit_bytes"`
	MemBytes    int64   `json:"mem_bytes"`
	State       string  `json:"state"`
	SampleShift int     `json:"sample_shift"`
	TopK        int     `json:"top_k,omitempty"`
	Adaptations uint64  `json:"adaptations"`
	Shrinks     uint64  `json:"topk_shrinks"`
	ShedTotal   uint64  `json:"shed_requests"`
	IngestRate  float64 `json:"ingest_rate_per_sec"`
	ViewAgeMS   int64   `json:"view_age_ms,omitempty"`
	LastError   string  `json:"last_error,omitempty"`
}

// Controller enforces one memory budget over one estimator. Create with
// New, drive with Tick, consult ShouldShed on the ingest path.
type Controller struct {
	cfg  Config
	soft int64

	// shed is the single hot-path coupling: one atomic load per ingest
	// request.
	shed atomic.Bool

	state       atomic.Int32
	adaptations atomic.Uint64 // downsample events
	shrinks     atomic.Uint64 // top-K reductions
	shedTotal   atomic.Uint64 // requests refused (counted by the owner via CountShed)

	// mu guards Tick's bookkeeping: rate window, sticky downsample
	// error. Ticks are expected from one goroutine but are safe from
	// several.
	mu            sync.Mutex
	lastTick      time.Time
	lastProcessed uint64
	rate          float64
	downErr       error
}

// New validates cfg, applies defaults, and returns an idle controller
// (StateNormal, not shedding). The owner must call Tick periodically for
// the budget to have any effect.
func New(cfg Config) *Controller {
	if cfg.Headroom <= 0 {
		cfg.Headroom = 0.10
	}
	if cfg.Headroom > 0.9 {
		cfg.Headroom = 0.9
	}
	if cfg.MinTopK <= 0 {
		cfg.MinTopK = 10
	}
	if cfg.MaxShift <= 0 {
		cfg.MaxShift = 20
	}
	c := &Controller{cfg: cfg}
	c.soft = cfg.Budget - int64(float64(cfg.Budget)*cfg.Headroom)
	return c
}

// ShouldShed reports whether ingest should be refused right now — one
// atomic load, safe on the hot path.
func (c *Controller) ShouldShed() bool { return c.shed.Load() }

// CountShed records one refused request (for Status and metrics).
func (c *Controller) CountShed() { c.shedTotal.Add(1) }

// State returns the current posture.
func (c *Controller) State() State { return State(c.state.Load()) }

// Adaptations returns how many downsample events the controller has
// driven.
func (c *Controller) Adaptations() uint64 { return c.adaptations.Load() }

// ShedTotal returns how many requests the owner has refused (via
// CountShed) since start.
func (c *Controller) ShedTotal() uint64 { return c.shedTotal.Load() }

// Tick evaluates the budget once and takes at most one corrective
// action:
//
//	mem <  soft:    restore analytics one doubling at a time; stop shedding.
//	soft ≤ mem < budget:  shrink — halve top-K down to the floor, then
//	                downsample one shift per tick; stop shedding.
//	mem ≥ budget:   same shrink ladder, but shed ingest until the ledger
//	                drops below the budget.
//
// Downsampling errors (η-tracking configuration) are sticky: the
// controller stops trying and can then only shed at the watermark.
func (c *Controller) Tick() {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	if p := c.cfg.Processed(); !c.lastTick.IsZero() {
		if dt := now.Sub(c.lastTick).Seconds(); dt > 0 {
			c.rate = float64(p-c.lastProcessed) / dt
		}
		c.lastProcessed = p
	} else {
		c.lastProcessed = p
	}
	c.lastTick = now

	memb := c.cfg.MemTotal()
	switch {
	case memb >= c.cfg.Budget:
		c.state.Store(int32(StateShedding))
		c.shed.Store(true)
		c.degradeLocked()
	case memb >= c.soft:
		c.state.Store(int32(StatePressure))
		c.shed.Store(false)
		c.degradeLocked()
	default:
		c.state.Store(int32(StateNormal))
		c.shed.Store(false)
		c.restoreLocked()
	}
}

// degradeLocked takes one step down the degradation ladder.
func (c *Controller) degradeLocked() {
	// Analytics first: the ranking is pure query convenience.
	if c.cfg.TopK != nil && c.cfg.SetTopK != nil {
		if k := c.cfg.TopK(); k > c.cfg.MinTopK {
			nk := k / 2
			if nk < c.cfg.MinTopK {
				nk = c.cfg.MinTopK
			}
			c.cfg.SetTopK(nk)
			c.shrinks.Add(1)
			return
		}
	}
	// Then the sample itself — one halving per tick, so the barrier cost
	// and the accuracy loss arrive in measured steps.
	if c.downErr != nil || c.cfg.SampleShift() >= c.cfg.MaxShift {
		return
	}
	if err := c.cfg.Downsample(1); err != nil {
		c.downErr = err
		return
	}
	c.adaptations.Add(1)
}

// restoreLocked undoes analytics degradation one doubling per tick once
// memory is comfortably back under the soft watermark. The sample shift
// is NOT restored — upsampling would need edges that were dropped; the
// probability ratchets down only.
func (c *Controller) restoreLocked() {
	if c.cfg.TopK == nil || c.cfg.SetTopK == nil || c.cfg.ConfiguredTopK <= 0 {
		return
	}
	if k := c.cfg.TopK(); k < c.cfg.ConfiguredTopK {
		nk := k * 2
		if nk > c.cfg.ConfiguredTopK {
			nk = c.cfg.ConfiguredTopK
		}
		c.cfg.SetTopK(nk)
	}
}

// Status assembles the point-in-time report.
func (c *Controller) Status() Status {
	c.mu.Lock()
	rate := c.rate
	var lastErr string
	if c.downErr != nil {
		lastErr = c.downErr.Error()
	}
	c.mu.Unlock()
	st := Status{
		Budget:      c.cfg.Budget,
		SoftLimit:   c.soft,
		MemBytes:    c.cfg.MemTotal(),
		State:       c.State().String(),
		SampleShift: c.cfg.SampleShift(),
		Adaptations: c.adaptations.Load(),
		Shrinks:     c.shrinks.Load(),
		ShedTotal:   c.shedTotal.Load(),
		IngestRate:  rate,
		LastError:   lastErr,
	}
	if c.cfg.TopK != nil {
		st.TopK = c.cfg.TopK()
	}
	if c.cfg.ViewAge != nil {
		st.ViewAgeMS = c.cfg.ViewAge().Milliseconds()
	}
	return st
}
