package control

import (
	"errors"
	"testing"
	"time"
)

// fakeEstimator is a scriptable callback target: memory is set by the
// test between ticks, and every degradation callback records itself.
type fakeEstimator struct {
	mem       int64
	processed uint64
	shift     int
	topK      int
	downErr   error
	downCalls int
}

func (f *fakeEstimator) config(budget int64) Config {
	return Config{
		Budget:    budget,
		MemTotal:  func() int64 { return f.mem },
		Processed: func() uint64 { return f.processed },
		SampleShift: func() int {
			return f.shift
		},
		Downsample: func(extra int) error {
			f.downCalls++
			if f.downErr != nil {
				return f.downErr
			}
			f.shift += extra
			return nil
		},
		TopK:           func() int { return f.topK },
		SetTopK:        func(k int) { f.topK = k },
		ConfiguredTopK: 100,
	}
}

// TestLadderOrder: under pressure the controller shrinks top-K to the
// floor first — one halving per tick — and only then starts
// downsampling, one shift per tick.
func TestLadderOrder(t *testing.T) {
	f := &fakeEstimator{mem: 950, topK: 100}
	c := New(f.config(1000)) // soft limit 900

	wantK := []int{50, 25, 12, 10}
	for i, k := range wantK {
		c.Tick()
		if f.topK != k {
			t.Fatalf("tick %d: topK = %d, want %d", i+1, f.topK, k)
		}
		if f.downCalls != 0 {
			t.Fatalf("tick %d: downsampled before top-K reached the floor", i+1)
		}
		if got := c.State(); got != StatePressure {
			t.Fatalf("tick %d: state = %v, want pressure", i+1, got)
		}
	}
	// Floor reached: the next ticks downsample, one shift each.
	for i := 1; i <= 3; i++ {
		c.Tick()
		if f.shift != i {
			t.Fatalf("post-floor tick %d: shift = %d, want %d", i, f.shift, i)
		}
	}
	if got := c.Adaptations(); got != 3 {
		t.Fatalf("Adaptations = %d, want 3", got)
	}
	if c.ShouldShed() {
		t.Fatal("pressure (below hard budget) must not shed")
	}
}

// TestShedThresholds: shedding flips on exactly at the hard budget and
// off again once memory drops below it.
func TestShedThresholds(t *testing.T) {
	f := &fakeEstimator{mem: 100, topK: 10}
	c := New(f.config(1000))

	c.Tick()
	if c.ShouldShed() || c.State() != StateNormal {
		t.Fatalf("normal memory: shed=%v state=%v", c.ShouldShed(), c.State())
	}
	f.mem = 1000 // exactly at the budget: shed
	c.Tick()
	if !c.ShouldShed() || c.State() != StateShedding {
		t.Fatalf("at budget: shed=%v state=%v, want shedding", c.ShouldShed(), c.State())
	}
	f.mem = 999 // below hard, above soft: degrade but accept
	c.Tick()
	if c.ShouldShed() || c.State() != StatePressure {
		t.Fatalf("below budget: shed=%v state=%v, want pressure", c.ShouldShed(), c.State())
	}
	c.CountShed()
	c.CountShed()
	if got := c.ShedTotal(); got != 2 {
		t.Fatalf("ShedTotal = %d, want 2", got)
	}
}

// TestRestoreDoublesTopK: once memory is back under the soft watermark,
// top-K doubles per tick back toward the configured depth — and the
// sample shift is never restored.
func TestRestoreDoublesTopK(t *testing.T) {
	f := &fakeEstimator{mem: 950, topK: 100}
	c := New(f.config(1000))
	for i := 0; i < 6; i++ { // 4 shrinks to the floor, 2 downsamples
		c.Tick()
	}
	if f.topK != 10 || f.shift != 2 {
		t.Fatalf("after degradation: topK=%d shift=%d, want 10, 2", f.topK, f.shift)
	}
	f.mem = 100
	wantK := []int{20, 40, 80, 100, 100}
	for i, k := range wantK {
		c.Tick()
		if f.topK != k {
			t.Fatalf("restore tick %d: topK = %d, want %d", i+1, f.topK, k)
		}
	}
	if f.shift != 2 {
		t.Fatalf("restore changed the sample shift to %d; the probability must only ratchet down", f.shift)
	}
	if c.State() != StateNormal {
		t.Fatalf("state = %v, want normal", c.State())
	}
}

// TestStickyDownsampleError: a Downsample failure (η-tracking config)
// permanently disables further attempts; the controller keeps working
// otherwise (state transitions, shedding) and reports the error in
// Status.
func TestStickyDownsampleError(t *testing.T) {
	boom := errors.New("eta config cannot downsample")
	f := &fakeEstimator{mem: 950, topK: 10, downErr: boom}
	c := New(f.config(1000))

	for i := 0; i < 5; i++ {
		c.Tick()
	}
	if f.downCalls != 1 {
		t.Fatalf("Downsample called %d times, want 1 (the error is sticky)", f.downCalls)
	}
	if c.Adaptations() != 0 {
		t.Fatalf("Adaptations = %d after a refused downsample, want 0", c.Adaptations())
	}
	st := c.Status()
	if st.LastError == "" {
		t.Fatal("Status.LastError empty after a refused downsample")
	}
	f.mem = 1000
	c.Tick()
	if !c.ShouldShed() {
		t.Fatal("controller with a dead downsample path must still shed at the budget")
	}
}

// TestMaxShiftCap: downsampling stops at MaxShift even when pressure
// persists.
func TestMaxShiftCap(t *testing.T) {
	f := &fakeEstimator{mem: 950, topK: 1}
	cfg := f.config(1000)
	cfg.MinTopK = 1
	cfg.MaxShift = 3
	c := New(cfg)
	for i := 0; i < 10; i++ {
		c.Tick()
	}
	if f.shift != 3 {
		t.Fatalf("shift = %d, want the MaxShift cap 3", f.shift)
	}
}

// TestStatusReport: the report carries the watermarks, posture, rate
// window, and view age.
func TestStatusReport(t *testing.T) {
	f := &fakeEstimator{mem: 400, topK: 100}
	cfg := f.config(1000)
	cfg.ViewAge = func() time.Duration { return 250 * time.Millisecond }
	c := New(cfg)
	c.Tick()
	st := c.Status()
	if st.Budget != 1000 || st.SoftLimit != 900 {
		t.Fatalf("watermarks: budget=%d soft=%d, want 1000, 900", st.Budget, st.SoftLimit)
	}
	if st.State != "normal" || st.MemBytes != 400 {
		t.Fatalf("state=%q mem=%d, want normal, 400", st.State, st.MemBytes)
	}
	if st.TopK != 100 || st.ViewAgeMS != 250 {
		t.Fatalf("topK=%d viewAge=%dms, want 100, 250", st.TopK, st.ViewAgeMS)
	}
}

// TestNoViewPublisher: with nil TopK callbacks the controller skips the
// analytics rung and goes straight to downsampling.
func TestNoViewPublisher(t *testing.T) {
	f := &fakeEstimator{mem: 950}
	cfg := f.config(1000)
	cfg.TopK, cfg.SetTopK = nil, nil
	c := New(cfg)
	c.Tick()
	if f.shift != 1 {
		t.Fatalf("shift = %d after one tick without a publisher, want 1", f.shift)
	}
}
