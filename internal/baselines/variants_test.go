package baselines

import (
	"math"
	"testing"

	"rept/internal/gen"
	"rept/internal/graph"
)

func TestMascotCValidation(t *testing.T) {
	if _, err := NewMascotC(0, 1, false); err == nil {
		t.Error("NewMascotC(0): got nil error")
	}
	if _, err := NewMascotC(1.01, 1, false); err == nil {
		t.Error("NewMascotC(1.01): got nil error")
	}
}

func TestMascotCExactAtP1(t *testing.T) {
	stream := gen.Shuffle(gen.Complete(12), 3)
	exact := exactOf(stream)
	m, err := NewMascotC(1.0, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	AddAll(m, stream)
	if m.Global() != float64(exact.Tau) {
		t.Errorf("MASCOT-C p=1 Global = %v, want %d", m.Global(), exact.Tau)
	}
	for v, want := range exact.TauV {
		if got := m.Local(v); got != float64(want) {
			t.Errorf("MASCOT-C p=1 Local[%d] = %v, want %d", v, got, want)
		}
	}
}

func TestMascotCUnbiased(t *testing.T) {
	stream := gen.Shuffle(gen.HolmeKim(100, 5, 0.6, 2), 4)
	exact := exactOf(stream)
	mean, vals := meanEstimate(t, stream, 400, func(_ int, seed int64) (Estimator, error) {
		return NewMascotC(0.4, seed, false)
	})
	checkUnbiased(t, "MASCOT-C", mean, float64(exact.Tau), vals)
}

// TestMascotCWorseThanImproved pins the reason the paper benchmarks the
// improved variant: at equal p, MASCOT-C has strictly higher MSE.
func TestMascotCWorseThanImproved(t *testing.T) {
	stream := gen.Shuffle(gen.HolmeKim(150, 6, 0.6, 7), 9)
	exact := exactOf(stream)
	tau := float64(exact.Tau)
	const p, runs = 0.25, 250
	mseOf := func(mk func(seed int64) (Estimator, error)) float64 {
		sum := 0.0
		for r := 0; r < runs; r++ {
			est, err := mk(int64(100 + r))
			if err != nil {
				t.Fatal(err)
			}
			AddAll(est, stream)
			d := est.Global() - tau
			sum += d * d
		}
		return sum / runs
	}
	mseC := mseOf(func(s int64) (Estimator, error) { return NewMascotC(p, s, false) })
	mseI := mseOf(func(s int64) (Estimator, error) { return NewMascot(p, s, false) })
	if mseC < 1.5*mseI {
		t.Errorf("MASCOT-C MSE %.1f not clearly above improved MASCOT %.1f", mseC, mseI)
	}
}

func TestTriestBaseValidation(t *testing.T) {
	if _, err := NewTriestBase(2, 1, false); err == nil {
		t.Error("NewTriestBase(2): got nil error")
	}
}

func TestTriestBaseExactWithLargeBudget(t *testing.T) {
	stream := gen.Shuffle(gen.Complete(12), 5)
	exact := exactOf(stream)
	tb, err := NewTriestBase(len(stream)+5, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	AddAll(tb, stream)
	if tb.Global() != float64(exact.Tau) {
		t.Errorf("TRIÈST-BASE k≥|E| Global = %v, want %d", tb.Global(), exact.Tau)
	}
	locals := tb.Locals()
	for v, want := range exact.TauV {
		if got := locals[v]; got != float64(want) {
			t.Errorf("TRIÈST-BASE k≥|E| Local[%d] = %v, want %d", v, got, want)
		}
	}
}

// TestTriestBaseCounterConsistency: after any prefix, the internal τ_S
// equals the exact triangle count of the reservoir graph.
func TestTriestBaseCounterConsistency(t *testing.T) {
	stream := gen.Shuffle(gen.HolmeKim(80, 5, 0.6, 3), 6)
	tb, err := NewTriestBase(60, 9, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range stream {
		tb.Add(e.U, e.V)
		if i%37 != 0 {
			continue
		}
		res := make([]graph.Edge, len(tb.res))
		copy(res, tb.res)
		want := graph.CountExact(res, graph.ExactOptions{}).Tau
		if tb.tauS != float64(want) {
			t.Fatalf("after %d edges: τ_S = %v, reservoir holds %d triangles", i+1, tb.tauS, want)
		}
	}
}

func TestTriestBaseUnbiased(t *testing.T) {
	stream := gen.Shuffle(gen.HolmeKim(100, 5, 0.6, 2), 4)
	exact := exactOf(stream)
	k := len(stream) / 2
	mean, vals := meanEstimate(t, stream, 400, func(_ int, seed int64) (Estimator, error) {
		return NewTriestBase(k, seed, false)
	})
	checkUnbiased(t, "TRIÈST-BASE", mean, float64(exact.Tau), vals)
}

func TestWedgeSamplerValidation(t *testing.T) {
	if _, err := NewWedgeSampler(nil); err == nil {
		t.Error("NewWedgeSampler(empty): got nil error")
	}
}

func TestWedgeSamplerCompleteGraph(t *testing.T) {
	// In K_n every wedge is closed: the estimate is exactly W/3 = C(n,3)
	// regardless of sampling noise.
	const n = 12
	ws, err := NewWedgeSampler(gen.Complete(n))
	if err != nil {
		t.Fatal(err)
	}
	wantW := float64(n) * float64((n-1)*(n-2)) / 2
	if ws.TotalWedges() != wantW {
		t.Errorf("TotalWedges = %v, want %v", ws.TotalWedges(), wantW)
	}
	got := ws.Estimate(500, 1)
	want := float64(n*(n-1)*(n-2)) / 6
	if got != want {
		t.Errorf("Estimate = %v, want exact %v", got, want)
	}
	// Triangle-free graph: estimate 0.
	star, err := NewWedgeSampler(gen.Star(30))
	if err != nil {
		t.Fatal(err)
	}
	if got := star.Estimate(200, 1); got != 0 {
		t.Errorf("star Estimate = %v, want 0", got)
	}
}

func TestWedgeSamplerUnbiased(t *testing.T) {
	stream := gen.Shuffle(gen.HolmeKim(150, 6, 0.5, 5), 2)
	exact := exactOf(stream)
	tau := float64(exact.Tau)
	const runs = 200
	sum, sumSq := 0.0, 0.0
	ws, err := NewWedgeSampler(stream)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < runs; r++ {
		est := ws.Estimate(2000, int64(300+r))
		sum += est
		sumSq += (est - tau) * (est - tau)
	}
	mean := sum / runs
	sigma := math.Sqrt(sumSq / runs)
	if math.Abs(mean-tau) > 5*sigma/math.Sqrt(runs) {
		t.Errorf("wedge mean = %v, want %v ± %v", mean, tau, 5*sigma/math.Sqrt(runs))
	}
}
