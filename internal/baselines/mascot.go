package baselines

import (
	"fmt"
	"math/rand/v2"

	"rept/internal/graph"
)

// Mascot is the improved MASCOT variant (Lim & Kang, KDD'15) the paper
// benchmarks: on each edge arrival it first counts the semi-triangles the
// edge closes against the current sample (crediting 1/p² to the global and
// the three local counters), then keeps the edge with probability p.
// The estimate equals (#semi-triangles)/p², whose variance is
// τ(p⁻²−1) + 2η(p⁻¹−1) (MASCOT Lemma 6, quoted in paper Section I).
type Mascot struct {
	p         float64
	invP2     float64
	rng       *rand.Rand
	adj       *graph.Adjacency
	est       float64
	locals    localTracker
	scratch   []graph.NodeID
	processed uint64
}

// NewMascot builds a MASCOT estimator with sampling probability p ∈ (0, 1].
func NewMascot(p float64, seed int64, trackLocal bool) (*Mascot, error) {
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("baselines: MASCOT p = %v out of (0, 1]", p)
	}
	return &Mascot{
		p:      p,
		invP2:  1 / (p * p),
		rng:    rand.New(rand.NewPCG(uint64(seed), uint64(seed)^0x6a09e667f3bcc909)),
		adj:    graph.NewAdjacency(),
		locals: newLocalTracker(trackLocal),
	}, nil
}

// Add implements Estimator.
func (m *Mascot) Add(u, v graph.NodeID) {
	if u == v {
		return
	}
	m.processed++
	m.scratch = m.adj.CommonNeighbors(u, v, m.scratch[:0])
	if n := len(m.scratch); n > 0 {
		inc := float64(n) * m.invP2
		m.est += inc
		m.locals.add(u, inc)
		m.locals.add(v, inc)
		for _, w := range m.scratch {
			m.locals.add(w, m.invP2)
		}
	}
	if m.rng.Float64() < m.p {
		m.adj.Add(u, v)
	}
}

// Global implements Estimator.
func (m *Mascot) Global() float64 { return m.est }

// Local implements Estimator.
func (m *Mascot) Local(v graph.NodeID) float64 { return m.locals.get(v) }

// Locals implements Estimator.
func (m *Mascot) Locals() map[graph.NodeID]float64 { return m.locals.all() }

// SampledEdges returns the current sample size (expected p·|E|).
func (m *Mascot) SampledEdges() int { return m.adj.Edges() }
