package baselines

import (
	"fmt"
	"sync"

	"rept/internal/graph"
)

// Parallel runs c independent instances of a baseline estimator and
// averages their estimates — the paper's direct parallelization
// ("conduct multiple independent trials and obtain a triangle count
// estimation by averaging", Section I). Instances are spread over up to
// Workers goroutines with batched broadcast, mirroring core.Engine so
// that runtime comparisons are apples-to-apples.
type Parallel struct {
	insts   []Estimator
	workers int
	batch   []graph.Edge
	chans   []chan []graph.Edge
	wg      sync.WaitGroup
	closed  bool
}

const parallelBatchSize = 2048

// NewParallel wraps the given independently-seeded instances. workers <= 1
// selects sequential execution.
func NewParallel(insts []Estimator, workers int) (*Parallel, error) {
	if len(insts) == 0 {
		return nil, fmt.Errorf("baselines: NewParallel needs at least one instance")
	}
	p := &Parallel{insts: insts, workers: workers}
	if p.workers > len(insts) {
		p.workers = len(insts)
	}
	if p.workers > 1 {
		p.batch = make([]graph.Edge, 0, parallelBatchSize)
		p.chans = make([]chan []graph.Edge, p.workers)
		for w := 0; w < p.workers; w++ {
			p.chans[w] = make(chan []graph.Edge)
			go p.worker(w, p.chans[w])
		}
	}
	return p, nil
}

func (p *Parallel) worker(w int, ch <-chan []graph.Edge) {
	for batch := range ch {
		for _, e := range batch {
			for i := w; i < len(p.insts); i += p.workers {
				p.insts[i].Add(e.U, e.V)
			}
		}
		p.wg.Done()
	}
}

// Add implements Estimator.
func (p *Parallel) Add(u, v graph.NodeID) {
	if p.closed {
		panic("baselines: Add after Close")
	}
	if p.workers <= 1 {
		for _, in := range p.insts {
			in.Add(u, v)
		}
		return
	}
	p.batch = append(p.batch, graph.Edge{U: u, V: v})
	if len(p.batch) == cap(p.batch) {
		p.flush()
	}
}

func (p *Parallel) flush() {
	if len(p.batch) == 0 {
		return
	}
	p.wg.Add(p.workers)
	for _, ch := range p.chans {
		ch <- p.batch
	}
	p.wg.Wait()
	p.batch = p.batch[:0]
}

// Global implements Estimator: the mean of the instance estimates.
func (p *Parallel) Global() float64 {
	p.drain()
	sum := 0.0
	for _, in := range p.insts {
		sum += in.Global()
	}
	return sum / float64(len(p.insts))
}

// Local implements Estimator: the mean of the instance estimates.
func (p *Parallel) Local(v graph.NodeID) float64 {
	p.drain()
	sum := 0.0
	for _, in := range p.insts {
		sum += in.Local(v)
	}
	return sum / float64(len(p.insts))
}

// Locals implements Estimator: per-node means over all instances (a node
// missing from an instance contributes 0).
func (p *Parallel) Locals() map[graph.NodeID]float64 {
	p.drain()
	out := make(map[graph.NodeID]float64)
	for _, in := range p.insts {
		for v, x := range in.Locals() {
			out[v] += x
		}
	}
	inv := 1 / float64(len(p.insts))
	for v := range out {
		out[v] *= inv
	}
	return out
}

func (p *Parallel) drain() {
	if p.workers > 1 && !p.closed {
		p.flush()
	}
}

// Instances returns the wrapped estimators (for tests and diagnostics).
func (p *Parallel) Instances() []Estimator { return p.insts }

// Close stops the worker goroutines; the wrapper must not receive further
// Adds, but Global/Local remain valid. Idempotent.
func (p *Parallel) Close() {
	if p.closed {
		return
	}
	if p.workers > 1 {
		p.flush()
		for _, ch := range p.chans {
			close(ch)
		}
	}
	p.closed = true
}

// Factory builds independently seeded estimator instances.
type Factory func(instance int, seed int64) (Estimator, error)

// NewParallelFrom builds c instances via factory with seeds derived from
// baseSeed and wraps them in a Parallel runner.
func NewParallelFrom(c int, baseSeed int64, workers int, factory Factory) (*Parallel, error) {
	if c < 1 {
		return nil, fmt.Errorf("baselines: NewParallelFrom needs c >= 1, got %d", c)
	}
	insts := make([]Estimator, c)
	for i := range insts {
		in, err := factory(i, baseSeed+int64(i)*0x9e3779b9)
		if err != nil {
			return nil, err
		}
		insts[i] = in
	}
	return NewParallel(insts, workers)
}
