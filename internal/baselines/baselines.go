// Package baselines implements the streaming triangle-count estimators the
// REPT paper compares against — MASCOT (Lim & Kang, KDD'15), TRIÈST-IMPR
// (De Stefani et al., KDD'16) and GPS In-Stream (Ahmed et al., VLDB'17) —
// together with the "parallelize in a direct manner" wrapper that runs c
// independent instances and averages their estimates (paper Section I and
// IV-B).
package baselines

import "rept/internal/graph"

// Estimator is the interface shared by all single-instance baselines (and
// satisfied by their parallel wrapper).
type Estimator interface {
	// Add feeds one stream edge. Self-loops are skipped.
	Add(u, v graph.NodeID)
	// Global returns the current estimate of the global triangle count τ.
	Global() float64
	// Local returns the current estimate of τ_v (0 for unseen nodes).
	Local(v graph.NodeID) float64
	// Locals returns the full map of non-zero local estimates, or nil if
	// local tracking is disabled.
	Locals() map[graph.NodeID]float64
}

// AddAll feeds a slice of stream edges in order.
func AddAll(e Estimator, edges []graph.Edge) {
	for _, edge := range edges {
		e.Add(edge.U, edge.V)
	}
}

// localTracker is shared per-node estimate bookkeeping.
type localTracker struct {
	m map[graph.NodeID]float64
}

func newLocalTracker(enabled bool) localTracker {
	if !enabled {
		return localTracker{}
	}
	return localTracker{m: make(map[graph.NodeID]float64)}
}

func (l localTracker) add(v graph.NodeID, x float64) {
	if l.m != nil {
		l.m[v] += x
	}
}

func (l localTracker) get(v graph.NodeID) float64 { return l.m[v] }

func (l localTracker) all() map[graph.NodeID]float64 { return l.m }
