package baselines

import (
	"container/heap"
	"fmt"
	"math/rand/v2"

	"rept/internal/graph"
)

// GPS is the In-Stream variant of Graph Priority Sampling (Ahmed et al.,
// VLDB'17) in the priority-sampling / Horvitz–Thompson form the paper
// benchmarks: every arriving edge is assigned weight
// w(e) = wBase + wTri·(#triangles e closes against the sample) and
// priority r(e) = w(e)/Uniform(0,1]; the k highest-priority edges are
// retained (min-heap), with z* tracking the highest evicted priority.
// Estimation happens in-stream, before the sampling update: each triangle
// the arriving edge closes contributes 1/(q(e₁)q(e₂)) with
// q(e) = min(1, w(e)/z*) (q = 1 while the sample has never overflowed).
//
// Per the paper's memory accounting (Section IV-B), GPS must store a
// weight and priority alongside every sampled edge, so under an equal
// memory budget the harness gives GPS half the edge budget of the other
// methods.
type GPS struct {
	k       int
	wBase   float64
	wTri    float64
	rng     *rand.Rand
	adj     *graph.Adjacency
	h       gpsHeap
	entries map[uint64]*gpsEntry
	zstar   float64
	est     float64
	locals  localTracker
	scratch []graph.NodeID
}

type gpsEntry struct {
	key    uint64
	e      graph.Edge
	weight float64
	prio   float64
	idx    int // heap index
}

// NewGPS builds a GPS In-Stream estimator with edge budget k >= 2, using
// the customary weights w(e) = 1 + 9·(#triangles closed at arrival).
func NewGPS(k int, seed int64, trackLocal bool) (*GPS, error) {
	if k < 2 {
		return nil, fmt.Errorf("baselines: GPS budget k = %d, need k >= 2", k)
	}
	return &GPS{
		k:       k,
		wBase:   1,
		wTri:    9,
		rng:     rand.New(rand.NewPCG(uint64(seed), uint64(seed)^0x3c6ef372fe94f82b)),
		adj:     graph.NewAdjacency(),
		entries: make(map[uint64]*gpsEntry, k+1),
		locals:  newLocalTracker(trackLocal),
	}, nil
}

// snapProb returns q(e) = min(1, w(e)/z*) for a sampled edge.
func (g *GPS) snapProb(key uint64) float64 {
	if g.zstar == 0 {
		return 1
	}
	q := g.entries[key].weight / g.zstar
	if q > 1 {
		return 1
	}
	return q
}

// Add implements Estimator.
func (g *GPS) Add(u, v graph.NodeID) {
	if u == v {
		return
	}
	key := graph.Key(u, v)
	if _, dup := g.entries[key]; dup {
		// Edge already sampled: count it once; re-processing would corrupt
		// the sample. (Streams are assumed simple, as in the paper.)
		return
	}
	g.scratch = g.adj.CommonNeighbors(u, v, g.scratch[:0])
	closed := len(g.scratch)
	for _, w := range g.scratch {
		q1 := g.snapProb(graph.Key(u, w))
		q2 := g.snapProb(graph.Key(v, w))
		inc := 1 / (q1 * q2)
		g.est += inc
		g.locals.add(u, inc)
		g.locals.add(v, inc)
		g.locals.add(w, inc)
	}
	// Sampling update.
	weight := g.wBase + g.wTri*float64(closed)
	u01 := 1 - g.rng.Float64() // uniform in (0, 1]
	ent := &gpsEntry{key: key, e: graph.Edge{U: u, V: v}, weight: weight, prio: weight / u01}
	heap.Push(&g.h, ent)
	g.entries[key] = ent
	g.adj.Add(u, v)
	if g.h.Len() > g.k {
		min := heap.Pop(&g.h).(*gpsEntry)
		if min.prio > g.zstar {
			g.zstar = min.prio
		}
		delete(g.entries, min.key)
		g.adj.Remove(min.e.U, min.e.V)
	}
}

// Global implements Estimator.
func (g *GPS) Global() float64 { return g.est }

// Local implements Estimator.
func (g *GPS) Local(v graph.NodeID) float64 { return g.locals.get(v) }

// Locals implements Estimator.
func (g *GPS) Locals() map[graph.NodeID]float64 { return g.locals.all() }

// SampledEdges returns the current sample size (≤ k).
func (g *GPS) SampledEdges() int { return g.h.Len() }

// gpsHeap is a min-heap of entries keyed by priority.
type gpsHeap []*gpsEntry

func (h gpsHeap) Len() int           { return len(h) }
func (h gpsHeap) Less(i, j int) bool { return h[i].prio < h[j].prio }
func (h gpsHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *gpsHeap) Push(x any)        { e := x.(*gpsEntry); e.idx = len(*h); *h = append(*h, e) }
func (h *gpsHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
