package baselines

import (
	"fmt"
	"math/rand/v2"

	"rept/internal/graph"
)

// WedgeSampler implements static wedge sampling (Seshadhri, Pinar & Kolda
// 2014), the method paper Section III-D recommends over REPT when the
// whole graph fits in memory: sample k wedges (paths of length two)
// proportionally to each node's wedge count C(d_v, 2), measure the
// fraction κ̂ that are closed, and estimate τ̂ = κ̂ · W / 3 where W is the
// total wedge count. It is NOT a streaming algorithm — it needs random
// access to the final graph — and exists here to reproduce the paper's
// scope/limitations comparison (experiment "limits").
type WedgeSampler struct {
	adj    *graph.Adjacency
	nodes  []graph.NodeID
	nbrs   map[graph.NodeID][]graph.NodeID
	cumW   []float64 // cumulative wedge counts aligned with nodes
	totalW float64
}

// NewWedgeSampler indexes the (deduped, loop-free) graph for sampling.
func NewWedgeSampler(edges []graph.Edge) (*WedgeSampler, error) {
	adj := graph.NewAdjacency()
	for _, e := range edges {
		if !e.IsSelfLoop() {
			adj.Add(e.U, e.V)
		}
	}
	if adj.Edges() == 0 {
		return nil, fmt.Errorf("baselines: wedge sampler needs at least one edge")
	}
	ws := &WedgeSampler{adj: adj, nbrs: make(map[graph.NodeID][]graph.NodeID)}
	seen := make(map[graph.NodeID]struct{})
	collect := func(v graph.NodeID) {
		if _, done := seen[v]; done {
			return
		}
		seen[v] = struct{}{}
		var ns []graph.NodeID
		adj.Neighbors(v, func(w graph.NodeID) { ns = append(ns, w) })
		if len(ns) >= 2 {
			ws.nodes = append(ws.nodes, v)
			ws.nbrs[v] = ns
			d := float64(len(ns))
			ws.totalW += d * (d - 1) / 2
			ws.cumW = append(ws.cumW, ws.totalW)
		}
	}
	for _, e := range edges {
		collect(e.U)
		collect(e.V)
	}
	return ws, nil
}

// TotalWedges returns W = Σ_v C(d_v, 2).
func (ws *WedgeSampler) TotalWedges() float64 { return ws.totalW }

// Estimate samples k wedges with the given seed and returns the triangle
// count estimate κ̂·W/3 (0 if the graph has no wedges).
func (ws *WedgeSampler) Estimate(k int, seed int64) float64 {
	if ws.totalW == 0 || k < 1 {
		return 0
	}
	rng := rand.New(rand.NewPCG(uint64(seed), uint64(seed)^0x1f83d9abfb41bd6b))
	closed := 0
	for i := 0; i < k; i++ {
		// Pick a center proportional to its wedge count via binary search
		// on the cumulative weights.
		x := rng.Float64() * ws.totalW
		lo, hi := 0, len(ws.cumW)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if ws.cumW[mid] <= x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		center := ws.nodes[lo]
		ns := ws.nbrs[center]
		a := rng.IntN(len(ns))
		b := rng.IntN(len(ns) - 1)
		if b >= a {
			b++
		}
		if ws.adj.Has(ns[a], ns[b]) {
			closed++
		}
	}
	kappa := float64(closed) / float64(k)
	return kappa * ws.totalW / 3
}
