package baselines

import (
	"math"
	"testing"

	"rept/internal/gen"
	"rept/internal/graph"
)

func exactOf(stream []graph.Edge) *graph.ExactResult {
	return graph.CountExact(stream, graph.ExactOptions{Local: true, Eta: true})
}

// meanEstimate runs the factory over `runs` seeds and returns the mean
// global estimate and the per-run estimates.
func meanEstimate(t *testing.T, stream []graph.Edge, runs int, factory Factory) (float64, []float64) {
	t.Helper()
	vals := make([]float64, runs)
	sum := 0.0
	for r := 0; r < runs; r++ {
		est, err := factory(r, int64(100+r))
		if err != nil {
			t.Fatal(err)
		}
		AddAll(est, stream)
		vals[r] = est.Global()
		sum += vals[r]
	}
	return sum / float64(runs), vals
}

func checkUnbiased(t *testing.T, name string, mean, tau float64, vals []float64) {
	t.Helper()
	varSum := 0.0
	for _, v := range vals {
		varSum += (v - tau) * (v - tau)
	}
	sigma := math.Sqrt(varSum / float64(len(vals)))
	bound := 5 * sigma / math.Sqrt(float64(len(vals)))
	if math.Abs(mean-tau) > bound && math.Abs(mean-tau) > 0.02*tau {
		t.Errorf("%s: mean = %.1f, want %.1f ± %.1f", name, mean, tau, bound)
	}
}

func TestMascotValidation(t *testing.T) {
	for _, p := range []float64{0, -1, 1.5} {
		if _, err := NewMascot(p, 1, false); err == nil {
			t.Errorf("NewMascot(p=%v): got nil error", p)
		}
	}
}

func TestMascotExactAtP1(t *testing.T) {
	stream := gen.Shuffle(gen.Complete(15), 3)
	exact := exactOf(stream)
	m, err := NewMascot(1.0, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	AddAll(m, stream)
	if m.Global() != float64(exact.Tau) {
		t.Errorf("MASCOT p=1 Global = %v, want %d", m.Global(), exact.Tau)
	}
	for v, want := range exact.TauV {
		if got := m.Local(v); got != float64(want) {
			t.Errorf("MASCOT p=1 Local[%d] = %v, want %d", v, got, want)
		}
	}
	if m.SampledEdges() != exact.Edges {
		t.Errorf("MASCOT p=1 sampled %d edges, want %d", m.SampledEdges(), exact.Edges)
	}
}

func TestMascotUnbiased(t *testing.T) {
	stream := gen.Shuffle(gen.HolmeKim(120, 5, 0.6, 2), 4)
	exact := exactOf(stream)
	mean, vals := meanEstimate(t, stream, 300, func(_ int, seed int64) (Estimator, error) {
		return NewMascot(0.3, seed, false)
	})
	checkUnbiased(t, "MASCOT", mean, float64(exact.Tau), vals)
}

// TestMascotVarianceMatchesLemma6 checks the closed form
// Var = τ(p⁻²−1) + 2η(p⁻¹−1) that both the paper's analysis and our
// harness rely on.
func TestMascotVarianceMatchesLemma6(t *testing.T) {
	stream := gen.Shuffle(gen.Complete(30), 7)
	exact := exactOf(stream)
	tau, eta := float64(exact.Tau), float64(exact.Eta)
	const p = 0.2
	want := tau*(1/(p*p)-1) + 2*eta*(1/p-1)
	const runs = 400
	sumSq := 0.0
	for r := 0; r < runs; r++ {
		m, err := NewMascot(p, int64(500+r), false)
		if err != nil {
			t.Fatal(err)
		}
		AddAll(m, stream)
		d := m.Global() - tau
		sumSq += d * d
	}
	mse := sumSq / runs
	if mse < want/2 || mse > want*2 {
		t.Errorf("MASCOT empirical MSE %.1f vs Lemma 6 variance %.1f (ratio %.2f)", mse, want, mse/want)
	}
}

func TestMascotSampleSize(t *testing.T) {
	stream := gen.ErdosRenyi(300, 3000, 9)
	m, _ := NewMascot(0.1, 42, false)
	AddAll(m, stream)
	got := float64(m.SampledEdges())
	want := 300.0 // p·|E|
	sigma := math.Sqrt(3000 * 0.1 * 0.9)
	if math.Abs(got-want) > 6*sigma {
		t.Errorf("MASCOT sample size %v, want %v ± %v", got, want, 6*sigma)
	}
}

func TestTriestValidation(t *testing.T) {
	if _, err := NewTriest(1, 1, false); err == nil {
		t.Error("NewTriest(k=1): got nil error")
	}
}

func TestTriestExactWithLargeBudget(t *testing.T) {
	stream := gen.Shuffle(gen.Complete(15), 3)
	exact := exactOf(stream)
	tr, err := NewTriest(len(stream)+10, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	AddAll(tr, stream)
	if tr.Global() != float64(exact.Tau) {
		t.Errorf("TRIÈST k≥|E| Global = %v, want %d", tr.Global(), exact.Tau)
	}
	for v, want := range exact.TauV {
		if got := tr.Local(v); got != float64(want) {
			t.Errorf("TRIÈST k≥|E| Local[%d] = %v, want %d", v, got, want)
		}
	}
}

func TestTriestReservoirInvariant(t *testing.T) {
	stream := gen.ErdosRenyi(200, 2000, 5)
	const k = 150
	tr, _ := NewTriest(k, 7, false)
	for i, e := range stream {
		tr.Add(e.U, e.V)
		want := i + 1
		if want > k {
			want = k
		}
		if got := tr.SampledEdges(); got != want {
			t.Fatalf("after %d edges reservoir holds %d, want %d", i+1, got, want)
		}
	}
}

func TestTriestUnbiased(t *testing.T) {
	stream := gen.Shuffle(gen.HolmeKim(120, 5, 0.6, 2), 4)
	exact := exactOf(stream)
	k := len(stream) / 4
	mean, vals := meanEstimate(t, stream, 300, func(_ int, seed int64) (Estimator, error) {
		return NewTriest(k, seed, false)
	})
	checkUnbiased(t, "TRIÈST", mean, float64(exact.Tau), vals)
}

func TestGPSValidation(t *testing.T) {
	if _, err := NewGPS(1, 1, false); err == nil {
		t.Error("NewGPS(k=1): got nil error")
	}
}

func TestGPSExactWithLargeBudget(t *testing.T) {
	stream := gen.Shuffle(gen.Complete(15), 3)
	exact := exactOf(stream)
	g, err := NewGPS(len(stream)+10, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	AddAll(g, stream)
	// With the sample never overflowing, z* stays 0 and every q = 1.
	if g.Global() != float64(exact.Tau) {
		t.Errorf("GPS k≥|E| Global = %v, want %d", g.Global(), exact.Tau)
	}
	for v, want := range exact.TauV {
		if got := g.Local(v); got != float64(want) {
			t.Errorf("GPS k≥|E| Local[%d] = %v, want %d", v, got, want)
		}
	}
}

func TestGPSBudgetInvariant(t *testing.T) {
	stream := gen.ErdosRenyi(200, 2000, 6)
	const k = 100
	g, _ := NewGPS(k, 3, false)
	for i, e := range stream {
		g.Add(e.U, e.V)
		if got := g.SampledEdges(); got > k {
			t.Fatalf("after %d edges GPS holds %d > k=%d", i+1, got, k)
		}
	}
	if got := g.SampledEdges(); got != k {
		t.Errorf("final GPS sample %d, want full budget %d", got, k)
	}
}

func TestGPSApproximatelyUnbiased(t *testing.T) {
	// GPS's HT estimator is approximately unbiased; accept a loose band.
	stream := gen.Shuffle(gen.HolmeKim(120, 5, 0.6, 2), 4)
	exact := exactOf(stream)
	k := len(stream) / 3
	mean, _ := meanEstimate(t, stream, 200, func(_ int, seed int64) (Estimator, error) {
		return NewGPS(k, seed, false)
	})
	tau := float64(exact.Tau)
	if mean < 0.8*tau || mean > 1.2*tau {
		t.Errorf("GPS mean = %.1f, want within 20%% of %.1f", mean, tau)
	}
}

func TestParallelAveragesInstances(t *testing.T) {
	stream := gen.Shuffle(gen.HolmeKim(100, 4, 0.5, 3), 8)
	par, err := NewParallelFrom(5, 17, 1, func(_ int, seed int64) (Estimator, error) {
		return NewMascot(0.5, seed, true)
	})
	if err != nil {
		t.Fatal(err)
	}
	AddAll(par, stream)
	sum := 0.0
	for _, in := range par.Instances() {
		sum += in.Global()
	}
	want := sum / 5
	if math.Abs(par.Global()-want) > 1e-9 {
		t.Errorf("Parallel.Global = %v, want mean of instances %v", par.Global(), want)
	}
	// Locals are averaged with missing entries as zero.
	locals := par.Locals()
	var v graph.NodeID
	for v = range locals {
		break
	}
	sumV := 0.0
	for _, in := range par.Instances() {
		sumV += in.Local(v)
	}
	if math.Abs(locals[v]-sumV/5) > 1e-9 {
		t.Errorf("Parallel.Locals[%d] = %v, want %v", v, locals[v], sumV/5)
	}
	if math.Abs(par.Local(v)-sumV/5) > 1e-9 {
		t.Errorf("Parallel.Local(%d) = %v, want %v", v, par.Local(v), sumV/5)
	}
}

// TestParallelWorkersEquivalent: worker count must not change results.
func TestParallelWorkersEquivalent(t *testing.T) {
	stream := gen.Shuffle(gen.HolmeKim(150, 4, 0.5, 3), 8)
	build := func(workers int) *Parallel {
		par, err := NewParallelFrom(6, 23, workers, func(_ int, seed int64) (Estimator, error) {
			return NewMascot(0.3, seed, false)
		})
		if err != nil {
			t.Fatal(err)
		}
		AddAll(par, stream)
		return par
	}
	seq := build(1)
	parl := build(4)
	defer parl.Close()
	if seq.Global() != parl.Global() {
		t.Errorf("sequential %v != parallel %v", seq.Global(), parl.Global())
	}
}

// TestParallelVarianceReduction: averaging c independent instances cuts the
// MSE by about 1/c.
func TestParallelVarianceReduction(t *testing.T) {
	stream := gen.Shuffle(gen.HolmeKim(120, 5, 0.6, 2), 4)
	exact := exactOf(stream)
	tau := float64(exact.Tau)
	mseOf := func(c, runs int) float64 {
		sumSq := 0.0
		for r := 0; r < runs; r++ {
			par, err := NewParallelFrom(c, int64(r*1000), 1, func(_ int, seed int64) (Estimator, error) {
				return NewMascot(0.2, seed, false)
			})
			if err != nil {
				t.Fatal(err)
			}
			AddAll(par, stream)
			d := par.Global() - tau
			sumSq += d * d
		}
		return sumSq / float64(runs)
	}
	mse1 := mseOf(1, 150)
	mse8 := mseOf(8, 60)
	if mse8 > mse1/3 {
		t.Errorf("averaging 8 instances: MSE %.1f not well below single-instance %.1f", mse8, mse1)
	}
}

func TestParallelValidation(t *testing.T) {
	if _, err := NewParallel(nil, 1); err == nil {
		t.Error("NewParallel(nil): got nil error")
	}
	if _, err := NewParallelFrom(0, 1, 1, nil); err == nil {
		t.Error("NewParallelFrom(c=0): got nil error")
	}
}

func TestSelfLoopsIgnoredByAll(t *testing.T) {
	factories := map[string]func() (Estimator, error){
		"mascot": func() (Estimator, error) { return NewMascot(1, 1, false) },
		"triest": func() (Estimator, error) { return NewTriest(10, 1, false) },
		"gps":    func() (Estimator, error) { return NewGPS(10, 1, false) },
	}
	for name, f := range factories {
		est, err := f()
		if err != nil {
			t.Fatal(err)
		}
		est.Add(1, 1)
		est.Add(1, 2)
		est.Add(2, 3)
		est.Add(3, 1)
		if est.Global() != 1 {
			t.Errorf("%s with self-loop: Global = %v, want 1", name, est.Global())
		}
	}
}
