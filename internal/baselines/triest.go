package baselines

import (
	"fmt"
	"math/rand/v2"

	"rept/internal/graph"
)

// Triest is TRIÈST-IMPR (De Stefani et al., KDD'16): reservoir sampling of
// at most k edges with the improved unbiased weighting. On the t-th edge
// arrival it credits q_t = max(1, (t−1)(t−2)/(k(k−1))) per triangle closed
// against the reservoir (before the sampling step), then reservoir-samples
// the edge: always insert while t ≤ k, otherwise insert with probability
// k/t, evicting a uniformly random reservoir edge. IMPR never decrements
// counters on eviction.
type Triest struct {
	k       int
	t       uint64
	rng     *rand.Rand
	adj     *graph.Adjacency
	res     []graph.Edge
	est     float64
	locals  localTracker
	scratch []graph.NodeID
}

// NewTriest builds a TRIÈST-IMPR estimator with reservoir budget k >= 2.
func NewTriest(k int, seed int64, trackLocal bool) (*Triest, error) {
	if k < 2 {
		return nil, fmt.Errorf("baselines: TRIÈST budget k = %d, need k >= 2", k)
	}
	return &Triest{
		k:      k,
		rng:    rand.New(rand.NewPCG(uint64(seed), uint64(seed)^0xbb67ae8584caa73b)),
		adj:    graph.NewAdjacency(),
		res:    make([]graph.Edge, 0, k),
		locals: newLocalTracker(trackLocal),
	}, nil
}

// Add implements Estimator.
func (tr *Triest) Add(u, v graph.NodeID) {
	if u == v {
		return
	}
	tr.t++
	q := 1.0
	if tr.t > uint64(tr.k) {
		t := float64(tr.t)
		q = (t - 1) * (t - 2) / (float64(tr.k) * float64(tr.k-1))
		if q < 1 {
			q = 1
		}
	}
	tr.scratch = tr.adj.CommonNeighbors(u, v, tr.scratch[:0])
	if n := len(tr.scratch); n > 0 {
		inc := float64(n) * q
		tr.est += inc
		tr.locals.add(u, inc)
		tr.locals.add(v, inc)
		for _, w := range tr.scratch {
			tr.locals.add(w, q)
		}
	}
	// Reservoir step.
	switch {
	case tr.t <= uint64(tr.k):
		if tr.adj.Add(u, v) {
			tr.res = append(tr.res, graph.Edge{U: u, V: v})
		}
	case tr.rng.Float64() < float64(tr.k)/float64(tr.t):
		j := tr.rng.IntN(len(tr.res))
		old := tr.res[j]
		tr.adj.Remove(old.U, old.V)
		if tr.adj.Add(u, v) {
			tr.res[j] = graph.Edge{U: u, V: v}
		} else {
			// Duplicate of an edge already in the reservoir: restore the
			// evicted edge to keep the sample consistent.
			tr.adj.Add(old.U, old.V)
		}
	}
}

// Global implements Estimator.
func (tr *Triest) Global() float64 { return tr.est }

// Local implements Estimator.
func (tr *Triest) Local(v graph.NodeID) float64 { return tr.locals.get(v) }

// Locals implements Estimator.
func (tr *Triest) Locals() map[graph.NodeID]float64 { return tr.locals.all() }

// SampledEdges returns the current reservoir occupancy (≤ k).
func (tr *Triest) SampledEdges() int { return len(tr.res) }
