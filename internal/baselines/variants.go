package baselines

import (
	"fmt"
	"math/rand/v2"

	"rept/internal/graph"
)

// This file implements the *basic* variants of MASCOT and TRIÈST. The
// paper benchmarks only the improved variants ("we only study their
// improved variants (e.g. Trièst-IMPR)", Section IV-B); the basic ones are
// implemented so the harness can justify that choice empirically
// (experiment "variants").

// MascotC is MASCOT-C (Lim & Kang, KDD'15, basic Monte-Carlo variant):
// each edge is first sampled with probability p; a triangle is counted
// only when its last edge is sampled and both earlier edges are in the
// sample, weighted 1/p³. Unbiased, but with strictly higher variance than
// the improved MASCOT (which counts before sampling with weight 1/p²).
type MascotC struct {
	p       float64
	invP3   float64
	rng     *rand.Rand
	adj     *graph.Adjacency
	est     float64
	locals  localTracker
	scratch []graph.NodeID
}

// NewMascotC builds a MASCOT-C estimator with sampling probability
// p ∈ (0, 1].
func NewMascotC(p float64, seed int64, trackLocal bool) (*MascotC, error) {
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("baselines: MASCOT-C p = %v out of (0, 1]", p)
	}
	return &MascotC{
		p:      p,
		invP3:  1 / (p * p * p),
		rng:    rand.New(rand.NewPCG(uint64(seed), uint64(seed)^0x510e527fade682d1)),
		adj:    graph.NewAdjacency(),
		locals: newLocalTracker(trackLocal),
	}, nil
}

// Add implements Estimator.
func (m *MascotC) Add(u, v graph.NodeID) {
	if u == v {
		return
	}
	if m.rng.Float64() >= m.p {
		return
	}
	m.scratch = m.adj.CommonNeighbors(u, v, m.scratch[:0])
	if n := len(m.scratch); n > 0 {
		inc := float64(n) * m.invP3
		m.est += inc
		m.locals.add(u, inc)
		m.locals.add(v, inc)
		for _, w := range m.scratch {
			m.locals.add(w, m.invP3)
		}
	}
	m.adj.Add(u, v)
}

// Global implements Estimator.
func (m *MascotC) Global() float64 { return m.est }

// Local implements Estimator.
func (m *MascotC) Local(v graph.NodeID) float64 { return m.locals.get(v) }

// Locals implements Estimator.
func (m *MascotC) Locals() map[graph.NodeID]float64 { return m.locals.all() }

// SampledEdges returns the current sample size.
func (m *MascotC) SampledEdges() int { return m.adj.Edges() }

// TriestBase is TRIÈST-BASE (De Stefani et al., KDD'16): a counter of the
// triangles fully inside the reservoir, incremented on insertion and
// decremented on eviction, rescaled at query time by
// ξ_t = max(1, t(t−1)(t−2)/(k(k−1)(k−2))). Unbiased, but noisier than
// TRIÈST-IMPR because evictions throw information away.
type TriestBase struct {
	k       int
	t       uint64
	rng     *rand.Rand
	adj     *graph.Adjacency
	res     []graph.Edge
	tauS    float64 // triangles currently inside the reservoir
	tauSV   map[graph.NodeID]float64
	track   bool
	scratch []graph.NodeID
}

// NewTriestBase builds a TRIÈST-BASE estimator with reservoir budget
// k >= 3 (the rescaling needs k−2 > 0).
func NewTriestBase(k int, seed int64, trackLocal bool) (*TriestBase, error) {
	if k < 3 {
		return nil, fmt.Errorf("baselines: TRIÈST-BASE budget k = %d, need k >= 3", k)
	}
	tb := &TriestBase{
		k:     k,
		rng:   rand.New(rand.NewPCG(uint64(seed), uint64(seed)^0x9b05688c2b3e6c1f)),
		adj:   graph.NewAdjacency(),
		res:   make([]graph.Edge, 0, k),
		track: trackLocal,
	}
	if trackLocal {
		tb.tauSV = make(map[graph.NodeID]float64)
	}
	return tb, nil
}

// Add implements Estimator.
func (tb *TriestBase) Add(u, v graph.NodeID) {
	if u == v {
		return
	}
	tb.t++
	switch {
	case tb.t <= uint64(tb.k):
		tb.insert(u, v)
	case tb.rng.Float64() < float64(tb.k)/float64(tb.t):
		j := tb.rng.IntN(len(tb.res))
		old := tb.res[j]
		tb.remove(old.U, old.V)
		tb.res[j] = tb.res[len(tb.res)-1]
		tb.res = tb.res[:len(tb.res)-1]
		tb.insert(u, v)
	}
}

func (tb *TriestBase) insert(u, v graph.NodeID) {
	if tb.adj.Has(u, v) {
		return // duplicate of a reservoir edge; keep sample consistent
	}
	tb.updateCounters(u, v, 1)
	tb.adj.Add(u, v)
	tb.res = append(tb.res, graph.Edge{U: u, V: v})
}

func (tb *TriestBase) remove(u, v graph.NodeID) {
	tb.updateCounters(u, v, -1)
	tb.adj.Remove(u, v)
}

func (tb *TriestBase) updateCounters(u, v graph.NodeID, sign float64) {
	tb.scratch = tb.adj.CommonNeighbors(u, v, tb.scratch[:0])
	if n := len(tb.scratch); n > 0 {
		tb.tauS += sign * float64(n)
		if tb.track {
			tb.tauSV[u] += sign * float64(n)
			tb.tauSV[v] += sign * float64(n)
			for _, w := range tb.scratch {
				tb.tauSV[w] += sign
			}
		}
	}
}

// xi returns the rescaling factor ξ_t.
func (tb *TriestBase) xi() float64 {
	t, k := float64(tb.t), float64(tb.k)
	if tb.t <= uint64(tb.k) {
		return 1
	}
	return t * (t - 1) * (t - 2) / (k * (k - 1) * (k - 2))
}

// Global implements Estimator.
func (tb *TriestBase) Global() float64 { return tb.xi() * tb.tauS }

// Local implements Estimator.
func (tb *TriestBase) Local(v graph.NodeID) float64 { return tb.xi() * tb.tauSV[v] }

// Locals implements Estimator.
func (tb *TriestBase) Locals() map[graph.NodeID]float64 {
	if tb.tauSV == nil {
		return nil
	}
	out := make(map[graph.NodeID]float64, len(tb.tauSV))
	xi := tb.xi()
	for v, x := range tb.tauSV {
		if x != 0 {
			out[v] = xi * x
		}
	}
	return out
}

// SampledEdges returns the current reservoir occupancy.
func (tb *TriestBase) SampledEdges() int { return len(tb.res) }
