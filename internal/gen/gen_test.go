package gen

import (
	"testing"

	"rept/internal/graph"
)

// checkSimple verifies a generated stream has no self-loops or duplicates
// and node ids below n.
func checkSimple(t *testing.T, edges []graph.Edge, n int) {
	t.Helper()
	seen := make(map[uint64]struct{}, len(edges))
	for i, e := range edges {
		if e.IsSelfLoop() {
			t.Fatalf("edge %d is a self-loop: %v", i, e)
		}
		if int(e.U) >= n || int(e.V) >= n {
			t.Fatalf("edge %d out of range: %v (n=%d)", i, e, n)
		}
		k := e.Key()
		if _, dup := seen[k]; dup {
			t.Fatalf("edge %d duplicated: %v", i, e)
		}
		seen[k] = struct{}{}
	}
}

func TestErdosRenyi(t *testing.T) {
	edges := ErdosRenyi(50, 200, 1)
	if len(edges) != 200 {
		t.Fatalf("got %d edges, want 200", len(edges))
	}
	checkSimple(t, edges, 50)
	// Determinism.
	again := ErdosRenyi(50, 200, 1)
	for i := range edges {
		if edges[i] != again[i] {
			t.Fatal("ErdosRenyi not deterministic")
		}
	}
	other := ErdosRenyi(50, 200, 2)
	diff := false
	for i := range edges {
		if edges[i] != other[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical streams")
	}
	defer func() {
		if recover() == nil {
			t.Error("ErdosRenyi with m > C(n,2) did not panic")
		}
	}()
	ErdosRenyi(3, 4, 1)
}

func TestHolmeKim(t *testing.T) {
	const n, k = 300, 5
	edges := HolmeKim(n, k, 0.7, 3)
	checkSimple(t, edges, n)
	wantEdges := k*(k+1)/2 + (n-k-1)*k
	if len(edges) != wantEdges {
		t.Fatalf("got %d edges, want %d", len(edges), wantEdges)
	}
	// Triad formation must produce substantially more triangles than pure
	// preferential attachment at the same density.
	tauCluster := graph.CountExact(edges, graph.ExactOptions{}).Tau
	tauBA := graph.CountExact(BarabasiAlbert(n, k, 3), graph.ExactOptions{}).Tau
	if tauCluster <= tauBA {
		t.Errorf("HolmeKim pt=0.7 τ=%d not above BA τ=%d", tauCluster, tauBA)
	}
	// Degrees are skewed: max degree well above the mean.
	s := graph.Summarize(edges)
	if float64(s.MaxDegree) < 3*s.AvgDegree {
		t.Errorf("max degree %d not heavy-tailed (avg %.1f)", s.MaxDegree, s.AvgDegree)
	}
}

func TestHolmeKimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("HolmeKim(3, 5, ...) did not panic")
		}
	}()
	HolmeKim(3, 5, 0.5, 1)
}

func TestWattsStrogatz(t *testing.T) {
	const n, k = 200, 4
	edges := WattsStrogatz(n, k, 0.1, 4)
	checkSimple(t, edges, n)
	if len(edges) < n*k*9/10 {
		t.Fatalf("got %d edges, want close to %d", len(edges), n*k)
	}
	// Low-beta WS is highly clustered: many triangles.
	tau := graph.CountExact(edges, graph.ExactOptions{}).Tau
	if tau < uint64(n) {
		t.Errorf("WS τ=%d unexpectedly low", tau)
	}
	defer func() {
		if recover() == nil {
			t.Error("WattsStrogatz(8,4,...) did not panic")
		}
	}()
	WattsStrogatz(8, 4, 0.1, 1)
}

func TestDegenerateGraphs(t *testing.T) {
	if tau := graph.CountExact(Complete(7), graph.ExactOptions{}).Tau; tau != 35 {
		t.Errorf("K7 τ=%d, want 35", tau)
	}
	if tau := graph.CountExact(Star(20), graph.ExactOptions{}).Tau; tau != 0 {
		t.Errorf("Star τ=%d, want 0", tau)
	}
	if tau := graph.CountExact(Cycle(10), graph.ExactOptions{}).Tau; tau != 0 {
		t.Errorf("C10 τ=%d, want 0", tau)
	}
	if tau := graph.CountExact(Cycle(3), graph.ExactOptions{}).Tau; tau != 1 {
		t.Errorf("C3 τ=%d, want 1", tau)
	}
	res := graph.CountExact(DisjointTriangles(9), graph.ExactOptions{Local: true, Eta: true})
	if res.Tau != 9 || res.Eta != 0 {
		t.Errorf("DisjointTriangles τ=%d η=%d, want 9, 0", res.Tau, res.Eta)
	}
	for v, c := range res.TauV {
		if c != 1 {
			t.Errorf("DisjointTriangles τ_%d = %d, want 1", v, c)
		}
	}
}

func TestCoHubOverlay(t *testing.T) {
	const baseNodes, pairs, followers = 500, 3, 100
	edges := CoHubOverlay(baseNodes, pairs, followers, baseNodes, 9)
	if len(edges) != pairs*(2*followers+1) {
		t.Fatalf("got %d edges, want %d", len(edges), pairs*(2*followers+1))
	}
	// No duplicates among hub edges (followers may repeat across pairs).
	res := graph.CountExact(edges, graph.ExactOptions{Local: true, Eta: true})
	// Each follower closes exactly one triangle per pair it belongs to.
	if res.Tau < pairs*followers {
		t.Errorf("τ = %d, want >= %d", res.Tau, pairs*followers)
	}
	// In hub-edge-first order every triangle pair of a hub shares a
	// non-last edge: η = pairs · C(F, 2) exactly (no cross-pair overlap
	// unless two followers coincide across pairs, which only adds).
	wantEta := uint64(pairs) * uint64(followers) * uint64(followers-1) / 2
	if res.Eta < wantEta {
		t.Errorf("η = %d, want >= %d", res.Eta, wantEta)
	}
	// η/τ ratio is ~F/2 — the mechanism behind paper Figure 1.
	ratio := float64(res.Eta) / float64(res.Tau)
	if ratio < float64(followers)/4 {
		t.Errorf("η/τ = %.1f, want >= %d", ratio, followers/4)
	}
	// Hub local counts are huge, follower counts small.
	hub := graph.NodeID(baseNodes)
	if res.TauV[hub] < uint64(followers) {
		t.Errorf("hub τ_v = %d, want >= %d", res.TauV[hub], followers)
	}
	defer func() {
		if recover() == nil {
			t.Error("CoHubOverlay(baseNodes=1) did not panic")
		}
	}()
	CoHubOverlay(1, 1, 1, 10, 1)
}

func TestShuffle(t *testing.T) {
	edges := Complete(10)
	sh := Shuffle(edges, 5)
	if len(sh) != len(edges) {
		t.Fatal("Shuffle changed length")
	}
	// Same multiset.
	seen := make(map[uint64]int)
	for _, e := range edges {
		seen[e.Key()]++
	}
	for _, e := range sh {
		seen[e.Key()]--
	}
	for k, c := range seen {
		if c != 0 {
			t.Fatalf("Shuffle changed multiset at key %d", k)
		}
	}
	// Original untouched, order actually changed.
	if edges[0] != (graph.Edge{U: 0, V: 1}) {
		t.Error("Shuffle mutated its input")
	}
	same := true
	for i := range edges {
		if sh[i] != edges[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("Shuffle produced identical order")
	}
	// Deterministic.
	sh2 := Shuffle(edges, 5)
	for i := range sh {
		if sh[i] != sh2[i] {
			t.Fatal("Shuffle not deterministic")
		}
	}
}
