// Package gen generates synthetic graph streams. The REPT paper evaluates
// on eight public social/web graphs that are not redistributable with this
// repository; the dataset registry in internal/exper substitutes synthetic
// analogs produced by the models in this package (see DESIGN.md §4).
//
// All generators are deterministic given their seed, emit simple graphs
// (no self-loops, no duplicate edges) with dense node ids in [0, n), and
// return edges in generation order; use Shuffle for a randomized stream
// order.
package gen

import (
	"math/rand/v2"

	"rept/internal/graph"
)

func newRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// Shuffle returns a copy of the stream in a seeded random order.
func Shuffle(edges []graph.Edge, seed uint64) []graph.Edge {
	out := make([]graph.Edge, len(edges))
	copy(out, edges)
	rng := newRNG(seed)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// ErdosRenyi samples m distinct edges uniformly among the C(n,2) pairs
// (G(n, m) model). It panics if m exceeds the number of possible edges.
func ErdosRenyi(n, m int, seed uint64) []graph.Edge {
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		panic("gen: ErdosRenyi m exceeds C(n,2)")
	}
	rng := newRNG(seed)
	seen := make(map[uint64]struct{}, m)
	out := make([]graph.Edge, 0, m)
	for len(out) < m {
		u := graph.NodeID(rng.IntN(n))
		v := graph.NodeID(rng.IntN(n))
		if u == v {
			continue
		}
		k := graph.Key(u, v)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, graph.Edge{U: u, V: v})
	}
	return out
}

// BarabasiAlbert grows an n-node preferential-attachment graph where every
// new node attaches to k existing nodes with probability proportional to
// degree (implemented with the repeated-endpoints trick). Produces skewed
// degree distributions with modest clustering, similar in spirit to
// Wiki-Talk/YouTube-like graphs.
func BarabasiAlbert(n, k int, seed uint64) []graph.Edge {
	return HolmeKim(n, k, 0, seed)
}

// HolmeKim grows a powerlaw-cluster graph (Holme & Kim 2002): like
// Barabási–Albert, but after each preferential attachment step, with
// probability pt the next link is a "triad formation" edge to a random
// neighbor of the previously chosen target, which closes a triangle.
// Larger pt gives higher clustering (more triangles) while preserving the
// heavy-tailed degree distribution — the knob we use to mimic the spread
// of η/τ ratios across the paper's datasets.
func HolmeKim(n, k int, pt float64, seed uint64) []graph.Edge {
	if k < 1 || n < k+1 {
		panic("gen: HolmeKim needs n > k >= 1")
	}
	rng := newRNG(seed)
	out := make([]graph.Edge, 0, n*k)
	// targets holds one entry per edge endpoint, so sampling uniformly from
	// it is sampling proportional to degree.
	targets := make([]graph.NodeID, 0, 2*n*k)
	neighbors := make(map[uint64]struct{}, n*k)

	addEdge := func(u, v graph.NodeID) bool {
		if u == v {
			return false
		}
		k := graph.Key(u, v)
		if _, dup := neighbors[k]; dup {
			return false
		}
		neighbors[k] = struct{}{}
		out = append(out, graph.Edge{U: u, V: v})
		targets = append(targets, u, v)
		return true
	}

	// Seed clique over the first k+1 nodes so that preferential attachment
	// has well-defined degrees from the start.
	for u := 0; u <= k; u++ {
		for v := u + 1; v <= k; v++ {
			addEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}

	adj := make([][]graph.NodeID, n) // adjacency lists for triad formation
	for _, e := range out {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}

	for u := k + 1; u < n; u++ {
		uu := graph.NodeID(u)
		var last graph.NodeID
		haveLast := false
		for added := 0; added < k; {
			var v graph.NodeID
			if haveLast && rng.Float64() < pt && len(adj[last]) > 0 {
				// Triad formation: link to a random neighbor of last.
				v = adj[last][rng.IntN(len(adj[last]))]
			} else {
				v = targets[rng.IntN(len(targets))]
			}
			if !addEdge(uu, v) {
				// Collision (duplicate or self): fall back to uniform
				// preferential retry; guaranteed to terminate because the
				// graph has more than k candidate targets.
				haveLast = false
				continue
			}
			adj[uu] = append(adj[uu], v)
			adj[v] = append(adj[v], uu)
			last, haveLast = v, true
			added++
		}
	}
	return out
}

// WattsStrogatz builds a small-world ring lattice over n nodes where each
// node links to its k nearest clockwise neighbors, then rewires each edge's
// far endpoint with probability beta. High clustering, near-uniform
// degrees — a web-graph-like analog. k must be >= 1 and n > 2k.
func WattsStrogatz(n, k int, beta float64, seed uint64) []graph.Edge {
	if k < 1 || n <= 2*k {
		panic("gen: WattsStrogatz needs n > 2k, k >= 1")
	}
	rng := newRNG(seed)
	seen := make(map[uint64]struct{}, n*k)
	out := make([]graph.Edge, 0, n*k)
	add := func(u, v graph.NodeID) bool {
		if u == v {
			return false
		}
		key := graph.Key(u, v)
		if _, dup := seen[key]; dup {
			return false
		}
		seen[key] = struct{}{}
		out = append(out, graph.Edge{U: u, V: v})
		return true
	}
	for u := 0; u < n; u++ {
		for j := 1; j <= k; j++ {
			v := (u + j) % n
			if rng.Float64() < beta {
				// Rewire: pick a uniform random endpoint instead.
				for tries := 0; tries < 32; tries++ {
					w := graph.NodeID(rng.IntN(n))
					if add(graph.NodeID(u), w) {
						break
					}
				}
			} else {
				add(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	return out
}

// CoHubOverlay models pairs of high-degree hubs with a shared audience —
// the structure that drives the enormous η/τ ratios of real social graphs
// (paper Figure 1): for a hub pair (h₁, h₂) with an edge between them and
// F common followers, every follower closes a triangle through the shared
// edge (h₁, h₂), so those F triangles pairwise share it, contributing
// ≈ C(F, 2) to η but only F to τ.
//
// The overlay creates `pairs` hub pairs with ids starting at hubBase
// (callers pass the base graph's node count to keep ids dense-ish) and
// `followers` followers per pair drawn uniformly from [0, baseNodes).
// Returned edges are ordered hub-edge first, then follower wedges, so the
// shared edge is never the last edge of its triangles; shuffle the
// combined stream for a randomized order (≈2/9·F² expected η per pair).
func CoHubOverlay(baseNodes int, pairs, followers int, hubBase graph.NodeID, seed uint64) []graph.Edge {
	if baseNodes < 2 {
		panic("gen: CoHubOverlay needs baseNodes >= 2")
	}
	rng := newRNG(seed)
	out := make([]graph.Edge, 0, pairs*(2*followers+1))
	for p := 0; p < pairs; p++ {
		h1 := hubBase + graph.NodeID(2*p)
		h2 := hubBase + graph.NodeID(2*p+1)
		out = append(out, graph.Edge{U: h1, V: h2})
		seen := make(map[graph.NodeID]struct{}, followers)
		for len(seen) < followers {
			f := graph.NodeID(rng.IntN(baseNodes))
			if _, dup := seen[f]; dup {
				continue
			}
			seen[f] = struct{}{}
			out = append(out, graph.Edge{U: h1, V: f}, graph.Edge{U: h2, V: f})
		}
	}
	return out
}

// Complete returns the stream of all C(n,2) edges of K_n in lexicographic
// order. Useful in tests: τ = C(n,3), τ_v = C(n-1,2).
func Complete(n int) []graph.Edge {
	out := make([]graph.Edge, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			out = append(out, graph.Edge{U: graph.NodeID(u), V: graph.NodeID(v)})
		}
	}
	return out
}

// Star returns a star with center 0 and n leaves (no triangles).
func Star(n int) []graph.Edge {
	out := make([]graph.Edge, 0, n)
	for v := 1; v <= n; v++ {
		out = append(out, graph.Edge{U: 0, V: graph.NodeID(v)})
	}
	return out
}

// Cycle returns an n-cycle (no triangles for n > 3).
func Cycle(n int) []graph.Edge {
	if n < 3 {
		panic("gen: Cycle needs n >= 3")
	}
	out := make([]graph.Edge, 0, n)
	for v := 0; v < n; v++ {
		out = append(out, graph.Edge{U: graph.NodeID(v), V: graph.NodeID((v + 1) % n)})
	}
	return out
}

// DisjointTriangles returns t vertex-disjoint triangles: τ = t, η = 0, and
// every node has τ_v = 1. Ideal for estimator sanity checks because all
// covariance terms vanish.
func DisjointTriangles(t int) []graph.Edge {
	out := make([]graph.Edge, 0, 3*t)
	for i := 0; i < t; i++ {
		a, b, c := graph.NodeID(3*i), graph.NodeID(3*i+1), graph.NodeID(3*i+2)
		out = append(out, graph.Edge{U: a, V: b}, graph.Edge{U: b, V: c}, graph.Edge{U: a, V: c})
	}
	return out
}
