package stream

import (
	"os"
	"path/filepath"
	"testing"

	"rept/internal/graph"
)

func TestSliceSource(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}
	s := FromSlice(edges)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	got, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != edges[0] || got[1] != edges[1] {
		t.Fatalf("Collect = %v, want %v", got, edges)
	}
	if _, ok := s.Next(); ok {
		t.Error("Next after exhaustion returned ok")
	}
	s.Reset()
	if e, ok := s.Next(); !ok || e != edges[0] {
		t.Error("Reset did not rewind")
	}
}

func TestFileSource(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edges.txt")
	content := "# header\n0 1\n\n% comment\n2 3\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Collect = %v, want %v", got, want)
	}
}

func TestFileSourceParseError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(path, []byte("0 1\nnot numbers\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if _, err := Collect(src); err == nil {
		t.Error("Collect on malformed file: got nil error")
	}
	// Subsequent Next calls must keep failing.
	if _, ok := src.Next(); ok {
		t.Error("Next after error returned ok")
	}
}

func TestFileSourceMissingFile(t *testing.T) {
	if _, err := OpenFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("OpenFile(missing): got nil error")
	}
}

func TestDedupSource(t *testing.T) {
	edges := []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 0}, {U: 2, V: 2}, {U: 1, V: 2}, {U: 0, V: 1}, {U: 2, V: 2},
	}
	// Dropping loops: only the three distinct simple edges remain... the
	// stream has edges {0,1},{1,2} distinct plus loops and duplicates.
	d := Dedup(FromSlice(edges), true)
	got, err := Collect(d)
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if d.Duplicates() != 2 {
		t.Errorf("Duplicates = %d, want 2", d.Duplicates())
	}
	if d.SelfLoops() != 2 {
		t.Errorf("SelfLoops = %d, want 2", d.SelfLoops())
	}
	// Keeping loops: first loop passes through, duplicates of simple
	// edges are still dropped, repeated loops pass (degenerate keys are
	// not tracked).
	d2 := Dedup(FromSlice(edges), false)
	got2, err := Collect(d2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 4 {
		t.Fatalf("with loops kept, got %d edges, want 4 (%v)", len(got2), got2)
	}
	if d2.Err() != nil {
		t.Errorf("Err = %v", d2.Err())
	}
}

func TestIntervals(t *testing.T) {
	edges := make([]graph.Edge, 10)
	for i := range edges {
		edges[i] = graph.Edge{U: graph.NodeID(i), V: graph.NodeID(i + 1)}
	}
	parts := Intervals(edges, 3)
	if len(parts) != 3 {
		t.Fatalf("got %d intervals, want 3", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != len(edges) {
		t.Errorf("intervals cover %d edges, want %d", total, len(edges))
	}
	// Order preserved across the concatenation.
	i := 0
	for _, p := range parts {
		for _, e := range p {
			if e != edges[i] {
				t.Fatalf("interval order broken at %d", i)
			}
			i++
		}
	}
	// More intervals than edges: trailing empties allowed.
	parts = Intervals(edges[:2], 5)
	if len(parts) != 5 {
		t.Fatalf("got %d intervals, want 5", len(parts))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intervals(n=0) did not panic")
		}
	}()
	Intervals(edges, 0)
}
