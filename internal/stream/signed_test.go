package stream

import (
	"strings"
	"testing"

	"rept/internal/graph"
)

func TestUpdateSliceAndDrain(t *testing.T) {
	ups := []Update{
		{U: 1, V: 2},
		{U: 2, V: 3},
		{U: 1, V: 2, Del: true},
	}
	src := FromUpdates(ups)
	if src.Len() != 3 {
		t.Fatalf("Len = %d, want 3", src.Len())
	}
	var got []Update
	if err := DrainSigned(src, func(up Update) { got = append(got, up) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != ups[2] {
		t.Fatalf("drained %v, want %v", got, ups)
	}
	src.Reset()
	if up, ok := src.Next(); !ok || up != ups[0] {
		t.Fatalf("after Reset: Next = (%v, %v)", up, ok)
	}
}

// TestSignedAdapter: an insert-only Source lifted with Signed yields the
// same edges as pure insertion events, errors included.
func TestSignedAdapter(t *testing.T) {
	edges := []graph.Edge{{U: 1, V: 2}, {U: 3, V: 4}}
	var got []Update
	if err := DrainSigned(Signed(FromSlice(edges)), func(up Update) { got = append(got, up) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Del || got[1].Del || got[1].Edge() != edges[1] {
		t.Fatalf("adapted stream = %v", got)
	}
}

func TestValidateWellFormed(t *testing.T) {
	ok := []Update{
		{U: 1, V: 2},
		{U: 1, V: 2, Del: true},
		{U: 2, V: 1}, // re-insert after delete, reversed orientation
		{U: 5, V: 5}, // self-loops are exempt
	}
	if err := ValidateWellFormed(ok); err != nil {
		t.Fatalf("well-formed stream rejected: %v", err)
	}
	cases := []struct {
		name string
		ups  []Update
		want string
	}{
		{"DeleteAbsent", []Update{{U: 1, V: 2, Del: true}}, "not live"},
		{"DoubleInsert", []Update{{U: 1, V: 2}, {U: 2, V: 1}}, "re-inserts"},
		{"DoubleDelete", []Update{{U: 1, V: 2}, {U: 1, V: 2, Del: true}, {U: 1, V: 2, Del: true}}, "not live"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateWellFormed(tc.ups)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}
