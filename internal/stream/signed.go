package stream

import (
	"fmt"

	"rept/internal/graph"
)

// Update is one event of a fully-dynamic edge stream: an insertion, or a
// deletion when Del is set. It aliases graph.Update so stream sources,
// the shard layer, and the core engine share one event type.
type Update = graph.Update

// SignedSource is a one-pass fully-dynamic edge stream: Next returns the
// next signed event until the stream is exhausted, after which ok is
// false and Err reports any failure encountered. It generalizes Source
// the way Update generalizes Edge.
type SignedSource interface {
	Next() (up Update, ok bool)
	Err() error
}

// UpdateSlice streams updates from an in-memory slice. It is resettable
// and never fails.
type UpdateSlice struct {
	ups []Update
	i   int
}

// FromUpdates returns an UpdateSlice over ups (not copied).
func FromUpdates(ups []Update) *UpdateSlice {
	return &UpdateSlice{ups: ups}
}

// Next implements SignedSource.
func (s *UpdateSlice) Next() (Update, bool) {
	if s.i >= len(s.ups) {
		return Update{}, false
	}
	up := s.ups[s.i]
	s.i++
	return up, true
}

// Err implements SignedSource; it is always nil.
func (s *UpdateSlice) Err() error { return nil }

// Reset rewinds the source to the beginning of the stream.
func (s *UpdateSlice) Reset() { s.i = 0 }

// Len returns the total number of events in the stream.
func (s *UpdateSlice) Len() int { return len(s.ups) }

// Signed adapts an insert-only Source into a SignedSource whose events
// are all insertions, so insert-only inputs flow through fully-dynamic
// consumers unchanged.
func Signed(src Source) SignedSource { return insertsOnly{src} }

type insertsOnly struct{ src Source }

func (s insertsOnly) Next() (Update, bool) {
	e, ok := s.src.Next()
	if !ok {
		return Update{}, false
	}
	return Update{U: e.U, V: e.V}, true
}

func (s insertsOnly) Err() error { return s.src.Err() }

// DrainSigned feeds every event of src to fn and returns the stream
// error, if any — the signed counterpart of Drain.
func DrainSigned(src SignedSource, fn func(Update)) error {
	for {
		up, ok := src.Next()
		if !ok {
			return src.Err()
		}
		fn(up)
	}
}

// ValidateWellFormed checks the well-formedness contract fully-dynamic
// consumers assume: every deletion targets a currently-live edge and
// every insertion a currently-absent one (self-loops are exempt; they are
// skipped downstream anyway). It returns the first violation with its
// 0-based event index, or nil. The check costs one hash-set entry per
// live edge; use it in tests and offline tooling, not on hot paths.
func ValidateWellFormed(ups []Update) error {
	live := make(map[uint64]struct{})
	for i, up := range ups {
		if up.U == up.V {
			continue
		}
		k := graph.Key(up.U, up.V)
		_, ok := live[k]
		if up.Del {
			if !ok {
				return fmt.Errorf("stream: event %d deletes edge (%d,%d) which is not live", i, up.U, up.V)
			}
			delete(live, k)
		} else {
			if ok {
				return fmt.Errorf("stream: event %d re-inserts live edge (%d,%d)", i, up.U, up.V)
			}
			live[k] = struct{}{}
		}
	}
	return nil
}
