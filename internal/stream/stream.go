// Package stream provides edge-stream sources for the REPT reproduction:
// in-memory slices, text edge-list files, and helpers to split a stream
// into time intervals (the interval-based use case from paper Section II).
package stream

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"rept/internal/graph"
)

// Source is a one-pass edge stream. Next returns the next edge until the
// stream is exhausted, after which ok is false and Err reports any I/O or
// parse failure encountered.
type Source interface {
	Next() (e graph.Edge, ok bool)
	Err() error
}

// SliceSource streams edges from an in-memory slice. It is resettable and
// never fails.
type SliceSource struct {
	edges []graph.Edge
	i     int
}

// FromSlice returns a SliceSource over edges (not copied).
func FromSlice(edges []graph.Edge) *SliceSource {
	return &SliceSource{edges: edges}
}

// Next implements Source.
func (s *SliceSource) Next() (graph.Edge, bool) {
	if s.i >= len(s.edges) {
		return graph.Edge{}, false
	}
	e := s.edges[s.i]
	s.i++
	return e, true
}

// Err implements Source; it is always nil.
func (s *SliceSource) Err() error { return nil }

// Reset rewinds the source to the beginning of the stream.
func (s *SliceSource) Reset() { s.i = 0 }

// Len returns the total number of edges in the stream.
func (s *SliceSource) Len() int { return len(s.edges) }

// FileSource streams edges from a SNAP-style text edge list without
// loading the whole file into memory.
type FileSource struct {
	f    *os.File
	sc   *bufio.Scanner
	err  error
	line int
}

// OpenFile opens path as an edge stream. Callers must Close it.
func OpenFile(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &FileSource{f: f, sc: sc}, nil
}

// Next implements Source.
func (s *FileSource) Next() (graph.Edge, bool) {
	if s.err != nil {
		return graph.Edge{}, false
	}
	for s.sc.Scan() {
		s.line++
		txt := strings.TrimSpace(s.sc.Text())
		if txt == "" || txt[0] == '#' || txt[0] == '%' {
			continue
		}
		fields := strings.Fields(txt)
		if len(fields) < 2 {
			s.err = fmt.Errorf("stream: line %d: expected two node ids, got %q", s.line, txt)
			return graph.Edge{}, false
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			s.err = fmt.Errorf("stream: line %d: %w", s.line, err)
			return graph.Edge{}, false
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			s.err = fmt.Errorf("stream: line %d: %w", s.line, err)
			return graph.Edge{}, false
		}
		return graph.Edge{U: graph.NodeID(u), V: graph.NodeID(v)}, true
	}
	s.err = s.sc.Err()
	return graph.Edge{}, false
}

// Err implements Source.
func (s *FileSource) Err() error {
	if s.err == io.EOF {
		return nil
	}
	return s.err
}

// Close releases the underlying file.
func (s *FileSource) Close() error { return s.f.Close() }

// Drain feeds every edge of src to fn and returns the stream error, if any.
func Drain(src Source, fn func(graph.Edge)) error {
	for {
		e, ok := src.Next()
		if !ok {
			return src.Err()
		}
		fn(e)
	}
}

// Collect reads the whole stream into memory.
func Collect(src Source) ([]graph.Edge, error) {
	var out []graph.Edge
	err := Drain(src, func(e graph.Edge) { out = append(out, e) })
	return out, err
}

// DedupSource filters duplicate edges (and optionally self-loops) out of
// an inner source, keeping first arrivals. REPT and the baselines assume
// simple streams (paper Section II); wrap noisy real-world streams in a
// DedupSource to enforce that. Exact dedup costs one hash-set entry per
// distinct edge; for streams too large for that, use an approximate
// pre-filter upstream (cf. PartitionCT, paper Section V-A).
type DedupSource struct {
	inner     Source
	seen      map[uint64]struct{}
	dropLoops bool

	dups  int
	loops int
}

// Dedup wraps src with exact duplicate filtering. If dropLoops is true,
// self-loops are removed as well.
func Dedup(src Source, dropLoops bool) *DedupSource {
	return &DedupSource{inner: src, seen: make(map[uint64]struct{}), dropLoops: dropLoops}
}

// Next implements Source.
func (d *DedupSource) Next() (graph.Edge, bool) {
	for {
		e, ok := d.inner.Next()
		if !ok {
			return graph.Edge{}, false
		}
		if e.IsSelfLoop() {
			if d.dropLoops {
				d.loops++
				continue
			}
			return e, true // self-loops have degenerate keys; pass through
		}
		k := e.Key()
		if _, dup := d.seen[k]; dup {
			d.dups++
			continue
		}
		d.seen[k] = struct{}{}
		return e, true
	}
}

// Err implements Source.
func (d *DedupSource) Err() error { return d.inner.Err() }

// Duplicates returns the number of duplicate arrivals dropped so far.
func (d *DedupSource) Duplicates() int { return d.dups }

// SelfLoops returns the number of self-loops dropped so far.
func (d *DedupSource) SelfLoops() int { return d.loops }

// Intervals splits a stream into n contiguous intervals of (nearly) equal
// length, preserving order — the "graph stream per time interval" workload
// from paper Section II. n must be >= 1; empty trailing intervals are
// returned as empty slices when n exceeds the stream length.
func Intervals(edges []graph.Edge, n int) [][]graph.Edge {
	if n < 1 {
		panic("stream: Intervals needs n >= 1")
	}
	out := make([][]graph.Edge, n)
	for i := 0; i < n; i++ {
		lo := i * len(edges) / n
		hi := (i + 1) * len(edges) / n
		out[i] = edges[lo:hi]
	}
	return out
}
