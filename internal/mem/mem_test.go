package mem

import (
	"sync"
	"testing"
)

func TestAccountantBasics(t *testing.T) {
	a := New()
	a.Add(CompAdjacency, 100)
	a.Add(CompCounters, 40)
	a.Add(CompAdjacency, -30)
	if got := a.Bytes(CompAdjacency); got != 70 {
		t.Errorf("adjacency bytes = %d, want 70", got)
	}
	if got := a.Total(); got != 110 {
		t.Errorf("total = %d, want 110", got)
	}
	a.Add(CompWALSegments, 1000)
	if got := a.Total(); got != 1110 {
		t.Errorf("total with segments = %d, want 1110", got)
	}
	if got := a.MemoryTotal(); got != 110 {
		t.Errorf("memory total = %d, want 110 (wal_segments is disk-class)", got)
	}
	s := a.Snapshot()
	if s[CompAdjacency] != 70 || s[CompCounters] != 40 || s[CompWALSegments] != 1000 {
		t.Errorf("snapshot = %v", s)
	}
}

func TestAccountantNilSafe(t *testing.T) {
	var a *Accountant
	a.Add(CompRings, 64) // must not panic
	if a.Bytes(CompRings) != 0 || a.Total() != 0 || a.MemoryTotal() != 0 {
		t.Error("nil accountant must read as zero")
	}
	if s := a.Snapshot(); s != ([NumComponents]int64{}) {
		t.Errorf("nil snapshot = %v, want zeros", s)
	}
}

func TestComponentNames(t *testing.T) {
	seen := map[string]bool{}
	for c := Component(0); c < NumComponents; c++ {
		n := c.String()
		if n == "" || n == "unknown" {
			t.Errorf("component %d has no name", c)
		}
		if seen[n] {
			t.Errorf("duplicate component name %q", n)
		}
		seen[n] = true
	}
	if Component(-1).String() != "unknown" || NumComponents.String() != "unknown" {
		t.Error("out-of-range components must read as unknown")
	}
}

func TestAccountantConcurrent(t *testing.T) {
	a := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a.Add(CompBatches, 3)
				a.Add(CompBatches, -1)
			}
		}()
	}
	wg.Wait()
	if got := a.Bytes(CompBatches); got != 8*1000*2 {
		t.Errorf("concurrent adds = %d, want %d", got, 8*1000*2)
	}
}
