// Package mem is the byte ledger behind the adaptive control plane: a
// per-component atomic accountant every flat storage structure reports
// its backing bytes to. The contract that keeps it off the hot path is
// that components account at the moments capacity actually changes —
// a table grows or rehashes, a spill slice is promoted, a ring is
// built, a view is published — never per event. Steady-state ingest
// therefore performs zero ledger operations; the reptvet hotpathalloc
// analyzer and the AllocsPerRun gates enforce that shape.
//
// TRIÈST (PAPERS.md) frames the streaming trade-off this ledger exists
// to serve: a fixed memory budget with sampling adapted online. The
// accountant supplies the "bytes in use, by whom" half; the controller
// in internal/control supplies the policy half.
package mem

import "sync/atomic"

// Component identifies one accounted storage layer.
type Component int

// The accounted components, one per flat storage family. CompWALSegments
// is disk-class (bytes in sealed and active log segments on the backend),
// so MemoryTotal excludes it; everything else is process memory.
const (
	// CompAdjacency covers graph.Adjacency: the node-index table, the
	// neighbor-set arena, spill slices, and promoted hash sets.
	CompAdjacency Component = iota
	// CompCounters covers the core per-edge counter tables (ctab main
	// table plus its tombstone-recycling spare buffer).
	CompCounters
	// CompDegrees covers graph.DegreeTable: the degree map and the
	// first-arrival edge set.
	CompDegrees
	// CompMasks covers graph.MaskTable presence masks.
	CompMasks
	// CompRings covers the shard ring buffers (ingest plus WAL rings).
	CompRings
	// CompBatches covers the pooled ingest batch free lists.
	CompBatches
	// CompWALBuffers covers the WAL group-commit encode buffer.
	CompWALBuffers
	// CompWALSegments covers bytes in live log segments on the backend —
	// disk, not memory; excluded from MemoryTotal.
	CompWALSegments
	// CompViews covers the currently published query view (maps plus
	// top-K ranking).
	CompViews
	// NumComponents is the number of accounted components.
	NumComponents
)

var componentNames = [NumComponents]string{
	"adjacency",
	"counters",
	"degrees",
	"masks",
	"rings",
	"batches",
	"wal_buffers",
	"wal_segments",
	"views",
}

// String returns the component's stable metric-label name.
func (c Component) String() string {
	if c < 0 || c >= NumComponents {
		return "unknown"
	}
	return componentNames[c]
}

// Accountant is the per-component byte ledger. All methods are safe for
// concurrent use and are plain relaxed atomics — no locks, no false
// sharing concerns at the accounting rate (capacity changes only). A nil
// *Accountant is valid and records nothing, so structures thread the
// pointer unconditionally without guards at every call site.
type Accountant struct {
	bytes [NumComponents]atomic.Int64
}

// New returns an empty ledger.
func New() *Accountant { return new(Accountant) }

// Add moves component c's ledger entry by delta bytes (negative frees).
// Nil-safe.
func (a *Accountant) Add(c Component, delta int64) {
	if a == nil || delta == 0 {
		return
	}
	a.bytes[c].Add(delta)
}

// Bytes returns component c's current ledger entry. Nil-safe.
func (a *Accountant) Bytes(c Component) int64 {
	if a == nil {
		return 0
	}
	return a.bytes[c].Load()
}

// Total returns the sum over all components, disk-class included.
// Nil-safe.
func (a *Accountant) Total() int64 {
	if a == nil {
		return 0
	}
	var t int64
	for i := range a.bytes {
		t += a.bytes[i].Load()
	}
	return t
}

// MemoryTotal returns the sum over process-memory components only:
// everything except CompWALSegments, which counts bytes on the log
// backend (disk). The controller's budget pressure is computed against
// this value — spilling more sampling state would not relieve disk.
// Nil-safe.
func (a *Accountant) MemoryTotal() int64 {
	if a == nil {
		return 0
	}
	var t int64
	for i := range a.bytes {
		if Component(i) == CompWALSegments {
			continue
		}
		t += a.bytes[i].Load()
	}
	return t
}

// Snapshot returns a point-in-time copy of the ledger, indexed by
// Component. The copy is not barrier-consistent across components (each
// entry is an independent atomic load), which is fine for its consumers:
// metrics scrapes and the controller's thresholds. Nil-safe (zero
// snapshot).
func (a *Accountant) Snapshot() [NumComponents]int64 {
	var s [NumComponents]int64
	if a == nil {
		return s
	}
	for i := range a.bytes {
		s[i] = a.bytes[i].Load()
	}
	return s
}
