package rept

import "rept/internal/core"

// TheoreticalVariance returns the paper's closed-form Var(τ̂) for REPT
// with sampling probability p = 1/m on c processors, given the stream's
// exact τ and η (paper Theorem 3 and Section III-B). Useful for sizing m
// and c to a target error before streaming.
func TheoreticalVariance(m, c int, tau, eta float64) float64 {
	return core.VarREPT(m, c, tau, eta)
}

// ParallelMascotVariance returns the closed-form variance of averaging c
// independent MASCOT estimators with p = 1/m: (τ(m²−1)+2η(m−1))/c. The
// 2η(m−1) covariance term is what REPT removes (paper Section III-C).
func ParallelMascotVariance(m, c int, tau, eta float64) float64 {
	return core.VarParallelMascot(m, c, tau, eta)
}

// TheoreticalNRMSE converts a variance of an unbiased estimator of tau
// into the paper's error metric NRMSE = sqrt(Var)/τ.
func TheoreticalNRMSE(variance, tau float64) float64 {
	return core.NRMSETheory(variance, tau)
}

// PlanProcessors applies the paper's multi-core memory rule (Section III):
// with budget for memEdges stored edges in total and an expected
// streamEdges distinct stream edges at p = 1/m, use
// c* = min(c, ⌊memEdges / (streamEdges/m)⌋) logical processors, since
// each processor stores an expected streamEdges/m edges. Returns at
// least 1 so a configuration always exists; callers should check that
// even c* = 1 fits their budget.
func PlanProcessors(c, m, memEdges, streamEdges int) int {
	if c < 1 || m < 1 || streamEdges <= 0 {
		return 1
	}
	perProc := (streamEdges + m - 1) / m
	if perProc == 0 {
		return c
	}
	limit := memEdges / perProc
	if limit < 1 {
		limit = 1
	}
	if limit > c {
		limit = c
	}
	return limit
}
