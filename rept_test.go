package rept_test

import (
	"math"
	"path/filepath"
	"testing"

	"rept"
	"rept/internal/gen"
)

func TestEstimatorExactWhenM1(t *testing.T) {
	edges := gen.Shuffle(gen.HolmeKim(150, 4, 0.5, 1), 2)
	exact := rept.ExactCount(edges, rept.ExactOptions{Local: true})

	est, err := rept.New(rept.Config{M: 1, C: 1, Seed: 1, TrackLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	defer est.Close()
	est.AddAll(edges)
	res := est.Result()
	if res.Global != float64(exact.Tau) {
		t.Errorf("Global = %v, want %d", res.Global, exact.Tau)
	}
	for v, want := range exact.TauV {
		if want != 0 && res.Local[v] != float64(want) {
			t.Errorf("Local[%d] = %v, want %d", v, res.Local[v], want)
		}
	}
	if est.Processed() != uint64(len(edges)) {
		t.Errorf("Processed = %d, want %d", est.Processed(), len(edges))
	}
}

func TestEstimatorApproximates(t *testing.T) {
	edges := gen.Shuffle(gen.HolmeKim(400, 6, 0.5, 3), 4)
	exact := rept.ExactCount(edges, rept.ExactOptions{Eta: true})
	tau := float64(exact.Tau)

	est, err := rept.New(rept.Config{M: 4, C: 4, Seed: 11, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer est.Close()
	est.AddAll(edges)
	got := est.Global()
	sigma := math.Sqrt(rept.TheoreticalVariance(4, 4, tau, float64(exact.Eta)))
	if math.Abs(got-tau) > 6*sigma {
		t.Errorf("Global = %v, want %v ± %v", got, tau, 6*sigma)
	}
	// Memory model: about C/M of the stream is stored in total.
	sampled := float64(est.SampledEdges())
	want := float64(len(edges)) // C/M = 1
	if sampled < want/2 || sampled > want*2 {
		t.Errorf("SampledEdges = %v, want about %v", sampled, want)
	}
}

func TestEstimatorDeterministic(t *testing.T) {
	edges := gen.ErdosRenyi(200, 1200, 5)
	run := func(workers int) float64 {
		est, err := rept.New(rept.Config{M: 5, C: 7, Seed: 42, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		defer est.Close()
		est.AddAll(edges)
		return est.Global()
	}
	if run(1) != run(1) {
		t.Error("same config, different estimates")
	}
	if run(1) != run(4) {
		t.Error("worker count changed the estimate")
	}
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := rept.New(rept.Config{M: 0, C: 1}); err == nil {
		t.Error("New(M=0): got nil error")
	}
	if _, err := rept.New(rept.Config{M: 2, C: 0}); err == nil {
		t.Error("New(C=0): got nil error")
	}
}

func TestBaselineConstructors(t *testing.T) {
	if _, err := rept.NewMascot(0, 1, false); err == nil {
		t.Error("NewMascot(0): got nil error")
	}
	if _, err := rept.NewTriest(1, 1, false); err == nil {
		t.Error("NewTriest(1): got nil error")
	}
	if _, err := rept.NewGPS(0, 1, false); err == nil {
		t.Error("NewGPS(0): got nil error")
	}
	if _, err := rept.NewParallel("nope", 2, 10, 1, false, 1); err == nil {
		t.Error("NewParallel(unknown kind): got nil error")
	}
	if _, err := rept.NewParallel(rept.KindMascot, 2, 0, 1, false, 1); err == nil {
		t.Error("NewParallel(mascot, budget 0): got nil error")
	}
}

// TestCounterInterface exercises every estimator through the common
// Counter interface on the same stream.
func TestCounterInterface(t *testing.T) {
	edges := gen.Shuffle(gen.HolmeKim(200, 5, 0.6, 2), 7)
	exact := rept.ExactCount(edges, rept.ExactOptions{})
	tau := float64(exact.Tau)

	reptEst, err := rept.New(rept.Config{M: 2, C: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer reptEst.Close()
	mascot, err := rept.NewMascot(0.5, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	triest, err := rept.NewTriest(len(edges)/2, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	gps, err := rept.NewGPS(len(edges)/2, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	par, err := rept.NewParallel(rept.KindMascot, 4, 2, 3, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()

	counters := map[string]rept.Counter{
		"rept": reptEst, "mascot": mascot, "triest": triest, "gps": gps, "parallel-mascot": par,
	}
	for name, c := range counters {
		for _, e := range edges {
			c.Add(e.U, e.V)
		}
		got := c.Global()
		if got < tau/4 || got > tau*4 {
			t.Errorf("%s: Global = %v, want within 4x of %v", name, got, tau)
		}
	}
}

func TestExactCountFacade(t *testing.T) {
	edges := []rept.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}}
	res := rept.ExactCount(edges, rept.ExactOptions{Local: true, Eta: true, EtaLocal: true})
	if res.Tau != 1 || res.Nodes != 4 || res.Edges != 4 {
		t.Errorf("ExactCount = %+v, want τ=1 nodes=4 edges=4", res)
	}
	if res.TauV[0] != 1 || res.TauV[3] != 0 {
		t.Errorf("TauV = %v", res.TauV)
	}
}

func TestEdgeListFacadeRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edges.txt")
	edges := []rept.Edge{{U: 3, V: 4}, {U: 4, V: 5}}
	if err := rept.WriteEdgeListFile(path, edges); err != nil {
		t.Fatal(err)
	}
	back, err := rept.ReadEdgeListFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != edges[0] || back[1] != edges[1] {
		t.Fatalf("round trip got %v, want %v", back, edges)
	}
}

func TestPlanProcessors(t *testing.T) {
	cases := []struct {
		c, m, mem, stream int
		want              int
	}{
		{c: 32, m: 10, mem: 1000000, stream: 100000, want: 32}, // plenty of memory
		{c: 32, m: 10, mem: 100000, stream: 100000, want: 10},  // 10 procs × 10k
		{c: 32, m: 10, mem: 5000, stream: 100000, want: 1},     // tight; floor at 1
		{c: 4, m: 1, mem: 100, stream: 1000, want: 1},          // p = 1 stores everything
		{c: 0, m: 10, mem: 100, stream: 1000, want: 1},         // degenerate inputs
		{c: 8, m: 10, mem: 100, stream: 0, want: 1},
	}
	for _, tc := range cases {
		if got := rept.PlanProcessors(tc.c, tc.m, tc.mem, tc.stream); got != tc.want {
			t.Errorf("PlanProcessors(%d,%d,%d,%d) = %d, want %d",
				tc.c, tc.m, tc.mem, tc.stream, got, tc.want)
		}
	}
}

func TestTheoryFacade(t *testing.T) {
	if got, want := rept.TheoreticalVariance(10, 10, 100, 0), 900.0; got != want {
		t.Errorf("TheoreticalVariance = %v, want %v", got, want)
	}
	if got, want := rept.ParallelMascotVariance(10, 1, 100, 0), 9900.0; got != want {
		t.Errorf("ParallelMascotVariance = %v, want %v", got, want)
	}
	if got, want := rept.TheoreticalNRMSE(900, 100), 0.3; math.Abs(got-want) > 1e-12 {
		t.Errorf("TheoreticalNRMSE = %v, want %v", got, want)
	}
}
