package rept_test

import (
	"math"
	"testing"

	"rept"
	"rept/internal/exper"
	"rept/internal/gen"
)

// TestAccuracyWithinTheorem3Bound is the statistical regression net: over
// 40 independent hash-family seeds on a generated graph with known exact
// τ and η, the empirical mean-squared error of the REPT estimate must sit
// within the paper's Theorem 3 / Section III-B closed-form variance, and
// the empirical bias must be statistically indistinguishable from zero.
// Unit tests compare counters; this test catches the silent estimator-
// math regressions they cannot (wrong scaling constants, a broken hash
// family, a mis-combined Graybill–Deal weight), because any of those
// shifts the error distribution far outside the bound.
//
// Tolerances: with n = 40 seeds the MSE/Var ratio concentrates around 1
// with relative deviation ≈ sqrt(2/n) ≈ 0.22, so the [0.35, 2.2] window
// is over 5 standard deviations wide on each side; the bias gate is 4.5
// standard errors. The stream and seeds are fixed, so the test is fully
// deterministic — it either always passes or flags a real regression.
func TestAccuracyWithinTheorem3Bound(t *testing.T) {
	stream := gen.Shuffle(gen.HolmeKim(800, 5, 0.35, 77), 123)
	exact := rept.ExactCount(stream, rept.ExactOptions{Eta: true})
	tau, eta := float64(exact.Tau), float64(exact.Eta)
	if tau < 1000 {
		t.Fatalf("generated graph too sparse for a meaningful bound: τ = %v", tau)
	}

	const seeds = 40
	cases := []struct {
		name string
		m, c int
	}{
		// c = c₁m: Var = τ(m−1)/c₁, no η term (Section III-B.1).
		{"FullGroups_M8_C32", 8, 32},
		// c < m: Var = (τ(m²−c) + 2η(m−c))/c (Algorithm 1 / Theorem 3).
		{"SingleGroup_M16_C8", 16, 8},
		// c = c₁m + c₂: Graybill–Deal combination of both cases.
		{"PartialGroup_M6_C15", 6, 15},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			variance := rept.TheoreticalVariance(tc.m, tc.c, tau, eta)
			if !(variance > 0) {
				t.Fatalf("theoretical variance = %v", variance)
			}
			var sumErr, sumSq float64
			for seed := int64(1); seed <= seeds; seed++ {
				est, err := rept.New(rept.Config{M: tc.m, C: tc.c, Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				est.AddAll(stream)
				d := est.Global() - tau
				est.Close()
				sumErr += d
				sumSq += d * d
			}
			mse := sumSq / seeds
			bias := sumErr / seeds
			ratio := mse / variance
			t.Logf("τ=%.0f η=%.0f: MSE/Var = %.3f, bias = %.1f (σ_mean = %.1f)",
				tau, eta, ratio, bias, math.Sqrt(variance/seeds))

			if ratio > 2.2 {
				t.Errorf("empirical MSE %.1f exceeds Theorem 3 variance %.1f by ratio %.2f (> 2.2): estimator error has regressed", mse, variance, ratio)
			}
			if ratio < 0.35 {
				t.Errorf("empirical MSE %.1f implausibly below Theorem 3 variance %.1f (ratio %.2f < 0.35): sampling is likely broken", mse, variance, ratio)
			}
			if gate := 4.5 * math.Sqrt(variance/seeds); math.Abs(bias) > gate {
				t.Errorf("empirical bias %.1f exceeds %.1f (4.5 standard errors): estimator is no longer unbiased", bias, gate)
			}
		})
	}
}

// TestAccuracyFullyDynamic is the statistical gate for the fully-dynamic
// mode, mirroring TestAccuracyWithinTheorem3Bound on a churn stream with
// ≥ 30% deletions: over 40 independent hash-family seeds, the estimator
// fed the signed stream must match the EXACT NET triangle count of the
// final live graph, with empirical MSE inside the generalized Theorem 3
// variance and bias statistically indistinguishable from zero.
//
// The variance bound uses the signed second moments A and B from the
// exact fully-dynamic reference (internal/exper.DynCountExact): the
// paper's closed forms are linear in the same-pair and shared-edge
// covariance masses, which on signed streams are A and B instead of τ
// and 2η — so VarREPT(m, c, A, B/2) is the exact variance in the pure
// layout cases and the Graybill–Deal target in the combined one. The
// stream and seeds are fixed; the test is fully deterministic.
func TestAccuracyFullyDynamic(t *testing.T) {
	// Reinsert-flavored churn: 35% of events are deletions, and most
	// deleted edges return later, so the net graph keeps enough triangles
	// for tight gates while every edge key still churns through
	// live → deleted → live transitions.
	base := gen.Shuffle(gen.HolmeKim(800, 5, 0.35, 77), 123)
	ups := exper.DynStream(base, exper.DynOptions{Pattern: exper.Reinsert, DeleteFrac: 0.35, ReinsertFrac: 0.85, Seed: 99})
	ref := exper.DynCountExact(ups, false)
	if frac := float64(ref.Deletes) / float64(ref.Events); frac < 0.30 {
		t.Fatalf("deletion fraction = %.3f, need >= 0.30 for a meaningful churn gate", frac)
	}
	tau := float64(ref.Tau)
	if tau < 500 {
		t.Fatalf("net graph too sparse for a meaningful bound: τ = %v", tau)
	}

	const seeds = 40
	cases := []struct {
		name string
		m, c int
	}{
		// Same layout spread as the insert-only gate: full groups, a
		// single partial group, and the Graybill–Deal combination.
		{"FullGroups_M8_C32", 8, 32},
		{"SingleGroup_M16_C8", 16, 8},
		{"PartialGroup_M6_C15", 6, 15},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			variance := rept.TheoreticalVariance(tc.m, tc.c, ref.A, ref.B/2)
			if !(variance > 0) {
				t.Fatalf("generalized variance = %v", variance)
			}
			var sumErr, sumSq float64
			for seed := int64(1); seed <= seeds; seed++ {
				est, err := rept.New(rept.Config{M: tc.m, C: tc.c, Seed: seed, FullyDynamic: true})
				if err != nil {
					t.Fatal(err)
				}
				est.ApplyAll(ups)
				d := est.Global() - tau
				est.Close()
				sumErr += d
				sumSq += d * d
			}
			mse := sumSq / seeds
			bias := sumErr / seeds
			ratio := mse / variance
			t.Logf("net τ=%.0f A=%.0f B=%.0f (%d events, %d deletes): MSE/Var = %.3f, bias = %.1f (σ_mean = %.1f)",
				tau, ref.A, ref.B, ref.Events, ref.Deletes, ratio, bias, math.Sqrt(variance/seeds))

			if ratio > 2.2 {
				t.Errorf("empirical MSE %.1f exceeds generalized Theorem 3 variance %.1f by ratio %.2f (> 2.2): fully-dynamic estimator error has regressed", mse, variance, ratio)
			}
			if ratio < 0.35 {
				t.Errorf("empirical MSE %.1f implausibly below generalized variance %.1f (ratio %.2f < 0.35): deletion compensation is likely broken", mse, variance, ratio)
			}
			if gate := 4.5 * math.Sqrt(variance/seeds); math.Abs(bias) > gate {
				t.Errorf("empirical bias %.1f exceeds %.1f (4.5 standard errors): fully-dynamic estimator is no longer unbiased for the net count", bias, gate)
			}
		})
	}
}

// TestAccuracyFullyDynamicLocal spot-checks the per-node estimator under
// churn: averaged over seeds, τ̂_v of the heaviest net-graph node must
// land close to its exact net τ_v.
func TestAccuracyFullyDynamicLocal(t *testing.T) {
	base := gen.Shuffle(gen.HolmeKim(500, 5, 0.4, 31), 17)
	ups := exper.DynStream(base, exper.DynOptions{Pattern: exper.Reinsert, DeleteFrac: 0.32, Seed: 4})
	ref := exper.DynCountExact(ups, true)
	if frac := float64(ref.Deletes) / float64(ref.Events); frac < 0.30 {
		t.Fatalf("deletion fraction = %.3f, need >= 0.30", frac)
	}

	var top rept.NodeID
	for v, c := range ref.TauV {
		if c > ref.TauV[top] {
			top = v
		}
	}
	tauV := float64(ref.TauV[top])
	if tauV < 30 {
		t.Fatalf("heaviest net node has only τ_v = %v", tauV)
	}

	const seeds = 30
	const m, c = 4, 16
	var sum float64
	for seed := int64(1); seed <= seeds; seed++ {
		est, err := rept.New(rept.Config{M: m, C: c, Seed: seed, TrackLocal: true, FullyDynamic: true})
		if err != nil {
			t.Fatal(err)
		}
		est.ApplyAll(ups)
		sum += est.Local(top)
		est.Close()
	}
	mean := sum / seeds
	if math.Abs(mean-tauV) > 0.25*tauV {
		t.Errorf("mean local estimate for node %d = %.1f, exact net τ_v = %.0f (off by more than 25%%)", top, mean, tauV)
	}
}

// TestAccuracyLocalEstimates spot-checks the per-node estimator the same
// way on the highest-τ_v nodes: averaged over seeds, τ̂_v must land close
// to exact τ_v (the local estimator is unbiased; Theorem 2).
func TestAccuracyLocalEstimates(t *testing.T) {
	stream := gen.Shuffle(gen.HolmeKim(500, 5, 0.4, 31), 17)
	exact := rept.ExactCount(stream, rept.ExactOptions{Local: true})

	// Pick the heaviest node: its τ_v has the best relative concentration.
	var top rept.NodeID
	for v, c := range exact.TauV {
		if c > exact.TauV[top] {
			top = v
		}
	}
	tauV := float64(exact.TauV[top])
	if tauV < 50 {
		t.Fatalf("heaviest node has only τ_v = %v", tauV)
	}

	const seeds = 30
	const m, c = 4, 16
	var sum float64
	for seed := int64(1); seed <= seeds; seed++ {
		est, err := rept.New(rept.Config{M: m, C: c, Seed: seed, TrackLocal: true})
		if err != nil {
			t.Fatal(err)
		}
		est.AddAll(stream)
		sum += est.Local(top)
		est.Close()
	}
	mean := sum / seeds
	// Loose 20% envelope: the mean of 30 unbiased estimates of a count in
	// the hundreds sits comfortably inside; a scaling bug lands far out.
	if math.Abs(mean-tauV) > 0.20*tauV {
		t.Errorf("mean local estimate for node %d = %.1f, exact τ_v = %.0f (off by more than 20%%)", top, mean, tauV)
	}
}
