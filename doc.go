// Package rept is a Go implementation of REPT ("random edge partition and
// triangle counting"), the one-pass parallel streaming algorithm for
// approximating global and local (per-node) triangle counts from:
//
//	Pinghui Wang, Peng Jia, Yiyan Qi, Yu Sun, Jing Tao, Xiaohong Guan.
//	"REPT: A Streaming Algorithm of Approximating Global and Local
//	Triangle Counts in Parallel." ICDE 2019 (arXiv:1811.09136).
//
// REPT distributes the edges of a graph stream across c logical
// processors with a shared hash function so that each processor samples
// edges with probability p = 1/m, and estimates triangle counts from the
// semi-triangles each processor observes. The dependence between the
// processors' samples cancels the covariance term that dominates the
// error of naively parallelized samplers such as MASCOT and TRIÈST: for
// c = m the variance drops from (τ(m²−1)+2η(m−1))/c to τ(m−1).
//
// # Quick start
//
//	est, err := rept.New(rept.Config{M: 10, C: 10, Seed: 1, TrackLocal: true})
//	if err != nil { ... }
//	defer est.Close()
//	for _, e := range edges {
//		est.Add(e.U, e.V)
//	}
//	res := est.Result()
//	fmt.Println("triangles ≈", res.Global)
//
// The package also exposes the baselines the paper compares against
// (NewMascot, NewTriest, NewGPS, and NewParallel for the "c independent
// instances" parallelization), exact counting for ground truth
// (ExactCount), and the paper's closed-form variance expressions
// (TheoreticalVariance, ParallelMascotVariance).
//
// Reproduction of the paper's tables and figures lives in cmd/reptbench
// and the root-level benchmarks; see DESIGN.md and EXPERIMENTS.md.
package rept
