// Package rept is a Go implementation of REPT ("random edge partition and
// triangle counting"), the one-pass parallel streaming algorithm for
// approximating global and local (per-node) triangle counts from:
//
//	Pinghui Wang, Peng Jia, Yiyan Qi, Yu Sun, Jing Tao, Xiaohong Guan.
//	"REPT: A Streaming Algorithm of Approximating Global and Local
//	Triangle Counts in Parallel." ICDE 2019 (arXiv:1811.09136).
//
// REPT distributes the edges of a graph stream across c logical
// processors with a shared hash function so that each processor samples
// edges with probability p = 1/m, and estimates triangle counts from the
// semi-triangles each processor observes. The dependence between the
// processors' samples cancels the covariance term that dominates the
// error of naively parallelized samplers such as MASCOT and TRIÈST: for
// c = m the variance drops from (τ(m²−1)+2η(m−1))/c to τ(m−1).
//
// # Quick start
//
//	est, err := rept.New(rept.Config{M: 10, C: 10, Seed: 1, TrackLocal: true})
//	if err != nil { ... }
//	defer est.Close()
//	for _, e := range edges {
//		est.Add(e.U, e.V)
//	}
//	res := est.Result()
//	fmt.Println("triangles ≈", res.Global)
//
// # Concurrency model
//
// An Estimator is driven by ONE caller: Add must not be called from
// multiple goroutines, even though the estimator may parallelize
// internally over Config.Workers. For ingestion from many goroutines —
// network handlers, partitioned readers — use NewConcurrent instead:
//
//	est, err := rept.NewConcurrent(rept.ConcurrentConfig{M: 10, C: 40, Shards: 4, Seed: 1})
//	if err != nil { ... }
//	defer est.Close()
//	// any number of goroutines:
//	est.Add(u, v)
//	// any goroutine, any time:
//	snap := est.Snapshot()
//
// A Concurrent estimator spreads its C logical processors over
// independent engine shards (whole processor groups with independent hash
// seeds, the distributed layout of paper Section III-B) and broadcasts
// batched edges to them through single-producer/single-consumer ring
// buffers. Callers that already hold many events hand them over
// wholesale: fill a reusable Batch and call ApplyBatch (or
// ApplyBatchDurable with a WAL) to deliver the whole batch as one ring
// message per shard instead of re-buffering it event by event.
// Snapshots are
// consistent — every shard reports at the same stream prefix — and its
// estimates follow the same distribution as a single-caller Estimator
// with equal M and C. cmd/reptserve wraps a Concurrent estimator in an
// HTTP service (NDJSON ingest, mid-stream estimate queries).
//
// # Fully-dynamic streams
//
// With Config.FullyDynamic (or ConcurrentConfig.FullyDynamic) the
// estimator accepts edge deletions — Delete, or Apply/ApplyAll with
// Update events — and every estimate tracks the NET triangle statistics
// of the live graph: what remains after follows and unfollows, flow
// arrivals and expiries. The stream contract is the usual fully-dynamic
// one: delete only edges that are currently live, insert only edges that
// are not.
//
// Semantics. Each deletion applies the exact signed inverse of the
// insertion update: the counters decrease by the number of
// semi-triangles the deletion un-closes against each processor's sampled
// set, and the edge leaves the sample if it was in it. Because the
// sampler is a fixed-probability hash partition (an edge's sample
// membership is a deterministic function of its key), the random-pairing
// compensation that reservoir samplers need for deletions (TRIÈST-FD)
// degenerates to the identity here — a deleted sampled edge's slot is
// re-filled exactly when its key re-arrives — so the unbiasing factors
// are unchanged and the estimator stays exactly unbiased for the net
// count under arbitrary well-formed churn. The d_i/d_o pairing counters
// are still tracked (Estimator.PairingStats) and carried by snapshots.
//
// What a delete of an unsampled edge means: nothing is removed (the edge
// was never stored), but the signed counter update still applies — the
// deletion un-closes semi-triangles whose other two edges are sampled.
// Individual per-processor counters can therefore go transiently
// negative, and on small samples even the aggregated estimate can dip
// below zero; it is not clamped, because clamping would bias it. A
// deletion of an edge that was NEVER inserted violates the stream
// contract: the engine stays deterministic and finite, counts the event
// in PairingStats.PhantomDeletes, and the estimate is no longer
// meaningful.
//
// Guarantees under churn: the global and local estimators are unbiased
// for the net counts at every prefix, and their variance satisfies the
// natural generalization of Theorem 3 (the closed forms with the
// same-pair and shared-edge signed masses in place of τ and 2η —
// validated empirically by TestAccuracyFullyDynamic). The η̂-based
// plug-in Variance and the Graybill–Deal combination weights use the
// insert-only formulas with the signed counters substituted; under heavy
// churn treat Variance as a diagnostic approximation rather than an
// exact error bar. Insert-only streams behave bit-identically whether
// FullyDynamic is on or off; the flag is part of the snapshot
// fingerprint (format version 3; older snapshots restore as insert-only
// state).
//
// # Query views and staleness semantics
//
// Snapshot pays a full cross-shard barrier, which is exact but serializes
// against ingest — the wrong trade for query-heavy workloads (per-node
// lookups from many clients). StartViews decouples the two: a background
// publisher periodically takes ONE barrier and materializes an immutable
// epoch View (global estimate, variance, local counts, degrees,
// clustering coefficients, top-K ranking), published by an atomic pointer
// swap. Any number of readers then query the View lock-free and
// barrier-free while producers keep adding edges at full speed.
//
// The staleness contract: a View describes a consistent stream prefix
// that lags the live stream by at most roughly ViewConfig.Interval (plus
// one barrier latency), and SAYS which prefix — every View carries its
// Epoch sequence number, capture time (Age), and Processed count, so
// callers can always tell what they are looking at; with
// ViewConfig.EveryEdges the lag is additionally bounded in edges. An
// idle stream stops republishing (the view is already exact; only its
// wall-clock Age keeps growing). Reads through a View are monotone
// (epochs only move forward) but NOT read-your-writes: an edge added a
// moment ago appears only in the next epoch. Callers that need the
// current prefix use Views().Refresh() or SnapshotNow(), both of which
// pay the barrier. While views are running, Global, Local, and Locals
// answer from the current View under exactly these semantics.
//
// cmd/reptserve serves the view read path over HTTP — /estimate, /local,
// /topk (heavy hitters), /cc (clustering coefficients), /query (batch
// lookups, one epoch per batch), /stats, and Prometheus /metrics — with
// the epoch/age/prefix report embedded in every view-backed response and
// ?fresh=1 as the per-request escape hatch.
//
// Degree semantics: the degree table behind /cc and View.Degrees counts
// the LIVE graph, exactly like the sampled adjacency — a duplicate
// insertion of a live edge and a deletion of a non-live edge are both
// no-ops, filtered by a live-edge membership set (O(E) memory, carried
// by the opt-in tracker only). This keeps the clustering coefficient's
// denominator d·(d−1)/2 consistent with its sampled numerator τ̂_v on
// malformed streams; previously duplicates inflated degrees and phantom
// deletes corrupted them. One caveat: checkpoints persist only the
// degree counters, so a restored table re-learns membership from the
// restore point and honors deletions of pre-checkpoint edges best-effort
// under the historical floor-at-zero rule (exact on well-formed streams,
// which are the model's contract).
//
// # Performance
//
// The per-event hot path runs on flat, cache-friendly structures and is
// allocation-free in steady state. Each logical processor's sampled
// adjacency is an open-addressing node index over an arena of neighbor
// sets: the first few neighbors live inline in the arena entry, larger
// sets spill to sorted slices intersected by merge/galloping walks, and
// past 32 neighbors a set is promoted to an open-addressing hash set
// probed in O(1) (the inline → sorted → promoted ladder matches how
// degrees distribute under 1/m sampling: almost all nodes tiny, a few
// hubs hot). The per-edge η counters are an open-addressing table keyed
// by the canonical 64-bit edge key with tombstone-aware deletion and
// saturating (never wrapping) int32 arithmetic; clamp events — possible
// only on adversarially hot edges — are surfaced as
// Estimator.EtaSaturations / Concurrent.EtaSaturations, per epoch on
// View.EtaSaturations, and over HTTP in /stats and /metrics. On the reference CI machine this rework
// took insert-only per-event cost from ~1.5 µs to ~0.63 µs and
// fully-dynamic churn from ~1.1 µs to ~0.41 µs (both ≥2×) at 0 allocs/op,
// with testing.AllocsPerRun gates and a committed bench/BENCH_<sha>.json
// trajectory (cmd/benchdiff fails CI on >25% per-event regression)
// keeping it that way.
//
// The batch ingest path goes further. A wholesale batch travels from the
// caller to each shard's consumer as ONE ticket through an SPSC ring
// (padded head/tail indexes, brief spin then futex-style park — no
// channel machinery on the hand-off), and each engine applies it through
// a presence-mask fast path: a 64-bit per-node processor-membership mask
// lets the engine visit, per edge, only the storing processor and the
// processors holding BOTH endpoints — any other processor cannot close a
// triangle on that event. Estimates are bit-identical to the per-event
// path (gated by tests), and steady-state batch ingest runs at ~0.18 µs
// per event, ≥2× faster than the chunked broadcast path (the ratio is a
// CI gate), still at 0 allocs/op. ConcurrentConfig.HubDegree optionally
// re-splits oversized batches around high-degree vertices so hub work
// pipelines across shards — a granularity-only policy that never changes
// the estimates.
//
// # Durability
//
// Estimator state survives restarts through versioned binary snapshots:
// Estimator.WriteSnapshot and Concurrent.WriteSnapshot persist the config
// fingerprint, every logical processor's sampled edge set, the full τ/η
// counter state (global and per-node), and the processed/self-loop
// tallies; Resume and ResumeConcurrent rebuild an estimator that yields
// bit-for-bit identical estimates on any suffix stream. A Concurrent
// snapshot is barrier-consistent: every shard's state describes the same
// stream prefix, even while producers keep adding edges. Snapshots open
// with a magic string and a format version field — readers reject
// versions they do not understand, and the version is the compatibility
// hook for rolling upgrades and future cross-node state handoff. A
// restore is accepted only when the target configuration's statistical
// fields (M, C, Seed, TrackLocal, TrackEta — plus the shard count and
// TrackDegrees for ResumeConcurrent) match the snapshot's fingerprint,
// with the degree table carried inside the snapshot; mismatches fail
// with an error wrapping ErrSnapshotMismatch that names each differing
// field. cmd/reptserve exposes all of this as POST /checkpoint (atomic
// temp-file-rename writes) and a -restore boot flag.
//
// Snapshots protect the stream only up to the last checkpoint; the
// write-ahead log closes the rest of the gap. ResumeDurable opens a
// Concurrent estimator on a segmented, CRC-checked log of accepted
// events (WALOptions: local-disk directory or any WALBackend), and
// ApplyAllDurable returns only once the log acknowledges its events —
// fsynced in per-batch mode (zero loss window), appended in interval
// mode (loss window of at most the sync interval on power failure).
// Appends are group-committed by a dedicated logger goroutine off the
// allocation-free ingest hot path. The log folds itself into
// incremental checkpoints (WALOptions.CompactEvery, or CompactWAL on
// demand): a barrier-consistent snapshot becomes the recovery base and
// the sealed segments it covers are deleted, bounding replay time and
// disk usage. Recovery is snapshot-plus-tail — restore the log's
// checkpoint, replay the surviving records through the normal ingest
// path — and lands bit-for-bit on the acknowledged prefix: a torn final
// record is the expected shape of a crash and is dropped, while
// interior corruption, missing log stretches, and logs written under a
// different configuration are refused (ErrWALCorrupt, ErrWALGap,
// ErrWALMismatch). WALOptions.Bootstrap migrates a legacy snapshot into
// an empty log directory in one step. A write or sync failure is
// sticky: the failed batch (and every one after it) is refused rather
// than acknowledged, so "accepted" keeps meaning "recoverable".
// cmd/reptserve wires the layer to -wal-dir/-wal-sync/-wal-compact-every
// flags, reports positions and lag in /stats and /metrics, and its
// crash-kill harness SIGKILLs the real process mid-ingest and asserts
// zero acknowledged-event loss on restart.
//
// # Memory accounting and adaptive budgets
//
// Every flat storage layer under a Concurrent estimator — adjacency
// arenas, counter and presence-mask tables, ingest rings, recycled batch
// buffers, the degree table, published query views, WAL buffers —
// reports its backing bytes to an atomic per-component ledger at
// capacity-change moments only (growth, rehash, spill promotion,
// eviction sweep), never per event: the ingest hot path stays
// allocation-free and ledger-silent while the ledger tracks the real
// footprint at capacity granularity. Concurrent.MemStats returns the
// breakdown, Concurrent.MemTotalBytes the cheap total; accounting is
// purely observational and estimates are bit-identical with it on or
// off. WAL segment bytes are tracked in the same ledger but classed as
// disk, excluded from the process-memory total.
//
// The ledger is what makes an online memory budget enforceable.
// Concurrent.Downsample halves the sampling probability
// stream-consistently across every shard — stored edges are re-tested
// under the thinned keep filter and evicted, counters are rescaled by
// the REPT unbiasing factor, and the freed structures are compacted so
// the bytes actually return. The estimator stays unbiased at the
// effective partition size m_eff = M·2^shift (SampleShift,
// SampleProbability); its variance rises, and VarianceBound publishes
// the Theorem 3 bound at the current effective layout so the accuracy
// spent is always visible. η-tracking configurations cannot rescale
// their per-edge closing counters and refuse with ErrEtaDownsample.
// cmd/reptserve wires the loop together under -mem-budget: an adaptive
// controller ticks against the ledger, shrinks the top-K ranking first,
// downsamples next, and at the hard budget sheds ingest with HTTP 429 +
// Retry-After (queries and readiness keep serving), reporting every
// state transition through /stats, /readyz, and /metrics.
//
// # Observability
//
// NewTelemetry builds the estimator's observability bundle — a
// dependency-free metrics registry preloaded with latency histograms
// for every pipeline stage (NDJSON parse, shard dispatch, queue wait,
// engine apply, barrier, WAL append and fsync, view publish), per-shard
// queue-depth/batch/throughput series, Go runtime health series, and a
// lock-free flight recorder of recent pipeline events — and
// ConcurrentConfig.Telemetry attaches it before construction. The
// record path is zero-allocation (enforced by AllocsPerRun gates and
// the hotpathalloc analyzer) and nil-guarded, so an uninstrumented
// estimator pays one branch per site and an instrumented one stays
// within 5% of it (gated in CI). Telemetry.WritePrometheus renders the
// text exposition format that cmd/reptserve serves on /metrics, next to
// /debug/flight (the flight-recorder dump) and /readyz (readiness, as
// distinct from /healthz liveness); the format is round-trip checked by
// the conformance parser in internal/obs.
//
// # Static analysis
//
// The invariants above — allocation-free hot paths, deterministic map
// iteration in snapshot/merge code, saturating (never wrapping) counter
// arithmetic, epoch views that are re-loaded rather than cached, and no
// blocking operations under the sharded ingest mutex — are enforced by
// a bundled static-analysis suite, not just by tests. Functions, types,
// and fields opt in with //rept: directives (hotpath, deterministic,
// satcounter, viewholder, ingestmu, and their escape hatches), and
// `go run ./cmd/reptvet ./...` type-checks the module and reports every
// violation; CI runs it as a required gate. See internal/analysis and
// the README's "Static analysis" section.
//
// The package also exposes the baselines the paper compares against
// (NewMascot, NewTriest, NewGPS, and NewParallel for the "c independent
// instances" parallelization), exact counting for ground truth
// (ExactCount), and the paper's closed-form variance expressions
// (TheoreticalVariance, ParallelMascotVariance).
//
// Reproduction of the paper's tables and figures lives in cmd/reptbench
// and the root-level benchmarks; see DESIGN.md and EXPERIMENTS.md.
package rept
