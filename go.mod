module rept

go 1.22
