// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section IV) at the quick profile, plus micro-benchmarks of
// the estimators' per-edge cost. Run:
//
//	go test -bench=. -benchmem
//
// For full-size reproductions use cmd/reptbench with -profile default or
// -profile full; EXPERIMENTS.md records paper-vs-measured outcomes.
package rept_test

import (
	"io"
	"path/filepath"
	"strconv"
	"testing"

	"rept"
	"rept/internal/baselines"
	"rept/internal/core"
	"rept/internal/exper"
	"rept/internal/gen"
	"rept/internal/graph"
	"rept/internal/mem"
	"rept/internal/shard"
)

// benchProfile is the quick profile with a fixed tiny scale so benchmark
// timings are comparable across runs.
var benchProfile = exper.Quick

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := exper.Run(id, benchProfile, 1, io.Discard, ""); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates paper Table II (dataset statistics).
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig1 regenerates paper Figure 1 (τ vs η, variance terms).
func BenchmarkFig1(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig3 regenerates paper Figure 3 (global NRMSE vs c, p=0.01).
func BenchmarkFig3(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4 regenerates paper Figure 4 (global NRMSE vs c, p=0.1).
func BenchmarkFig4(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5 regenerates paper Figure 5 (local NRMSE vs c, p=0.01).
func BenchmarkFig5(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6 regenerates paper Figure 6 (local NRMSE vs c, p=0.1).
func BenchmarkFig6(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7 regenerates paper Figure 7 (runtime vs 1/p, c=10).
func BenchmarkFig7(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8 regenerates paper Figure 8 (REPT vs single-threaded
// equal-memory baselines on the Flickr analog).
func BenchmarkFig8(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkVariance regenerates the Theorem 3 validation experiment.
func BenchmarkVariance(b *testing.B) { runExperiment(b, "variance") }

// BenchmarkAblationCombine regenerates the combination-strategy ablation.
func BenchmarkAblationCombine(b *testing.B) { runExperiment(b, "ablation-combine") }

// BenchmarkAblationHash regenerates the hash-quality ablation.
func BenchmarkAblationHash(b *testing.B) { runExperiment(b, "ablation-hash") }

// BenchmarkVariants regenerates the improved-vs-basic baseline comparison.
func BenchmarkVariants(b *testing.B) { runExperiment(b, "variants") }

// BenchmarkLimits regenerates the paper §III-D streaming-vs-static
// comparison (REPT vs wedge sampling).
func BenchmarkLimits(b *testing.B) { runExperiment(b, "limits") }

// BenchmarkCoverage regenerates the confidence-interval coverage
// validation of the plug-in variance.
func BenchmarkCoverage(b *testing.B) { runExperiment(b, "coverage") }

// --- Micro-benchmarks: per-edge processing cost of each estimator. ---

var microStream = gen.Shuffle(gen.HolmeKim(4000, 8, 0.5, 3), 5)

func feedCounter(b *testing.B, mk func(seed int64) rept.Counter) {
	b.Helper()
	b.ReportAllocs()
	edges := microStream
	b.ResetTimer()
	done := 0
	for done < b.N {
		c := mk(int64(done))
		for _, e := range edges {
			c.Add(e.U, e.V)
			done++
			if done >= b.N {
				break
			}
		}
		if cl, ok := c.(interface{ Close() }); ok {
			cl.Close()
		}
	}
}

// BenchmarkREPTPerEdge measures REPT's per-edge cost (m=10, c=10, the
// covariance-free configuration), sequential.
func BenchmarkREPTPerEdge(b *testing.B) {
	feedCounter(b, func(seed int64) rept.Counter {
		est, err := rept.New(rept.Config{M: 10, C: 10, Seed: seed})
		if err != nil {
			b.Fatal(err)
		}
		return est
	})
}

// BenchmarkREPTPerEdgeWAL measures the per-event cost of DURABLE ingest:
// the same m=10, c=10 configuration behind a local-disk write-ahead log
// in per-batch sync mode, fed 512-event request batches (each batch is
// appended, CRC-stamped, and fsynced before the call returns). Compare
// with BenchmarkREPTPerEdge for the per-event durability overhead; the
// gap is dominated by the fsync, so larger request batches amortize it
// down and -wal-sync intervals remove it from the ingest path entirely.
func BenchmarkREPTPerEdgeWAL(b *testing.B) {
	ups := make([]rept.Update, len(microStream))
	for i, e := range microStream {
		ups[i] = rept.Update{U: e.U, V: e.V}
	}
	root := b.TempDir()
	b.ReportAllocs()
	b.ResetTimer()
	done, pass := 0, 0
	for done < b.N {
		pass++
		est, err := rept.ResumeDurable(
			rept.ConcurrentConfig{M: 10, C: 10, Seed: int64(pass)},
			rept.WALOptions{Dir: filepath.Join(root, strconv.Itoa(pass))},
		)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < len(ups) && done < b.N; i += 512 {
			end := i + 512
			if end > len(ups) {
				end = len(ups)
			}
			if rem := b.N - done; end-i > rem {
				end = i + rem
			}
			if err := est.ApplyAllDurable(ups[i:end]); err != nil {
				b.Fatal(err)
			}
			done += end - i
		}
		est.Close()
	}
}

// benchConcurrentPerEdge measures per-event ingest through the
// Concurrent shard fan-out (m=10, c=10, 512-event batches), optionally
// with a telemetry bundle attached — the instrumented/uninstrumented
// pair the CI bench gate holds within 5% of each other.
func benchConcurrentPerEdge(b *testing.B, instrumented bool) {
	ups := make([]rept.Update, len(microStream))
	for i, e := range microStream {
		ups[i] = rept.Update{U: e.U, V: e.V}
	}
	b.ReportAllocs()
	b.ResetTimer()
	done, pass := 0, 0
	for done < b.N {
		pass++
		cfg := rept.ConcurrentConfig{M: 10, C: 10, Seed: int64(pass)}
		if instrumented {
			cfg.Telemetry = rept.NewTelemetry()
		}
		est, err := rept.NewConcurrent(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < len(ups) && done < b.N; i += 512 {
			end := i + 512
			if end > len(ups) {
				end = len(ups)
			}
			if rem := b.N - done; end-i > rem {
				end = i + rem
			}
			est.ApplyAll(ups[i:end])
			done += end - i
		}
		est.Close()
	}
}

// BenchmarkConcurrentPerEdge is the uninstrumented concurrent per-event
// baseline BenchmarkREPTPerEdgeInstrumented is gated against.
func BenchmarkConcurrentPerEdge(b *testing.B) { benchConcurrentPerEdge(b, false) }

// BenchmarkREPTPerEdgeInstrumented is the identical workload with a full
// telemetry bundle attached: stage histograms, per-shard series, and the
// flight recorder all live. CI fails when it exceeds
// BenchmarkConcurrentPerEdge by more than 5% (benchdiff -pair), the
// always-on-instrumentation budget.
func BenchmarkREPTPerEdgeInstrumented(b *testing.B) { benchConcurrentPerEdge(b, true) }

// batchStream is the workload for the wholesale-ingest benchmarks: a
// sparse Erdős–Rényi stream (2000 nodes, mean degree 8) whose working
// set stays cache-resident, so the numbers measure the ingest path —
// dispatch, ring hand-off, mask-pruned apply — rather than DRAM latency
// on a growing graph. Degree 8 also keeps the presence-mask
// intersection tight: most events visit only their storing processor.
var batchStream = gen.Shuffle(gen.ErdosRenyi(2000, 8000, 7), 5)

// benchBatchSteady drives wholesale 8192-event batches through one warm
// Concurrent estimator: two priming passes build the graph and settle
// every pool and table, then the timed region cycles the stream (edge
// re-arrivals are ordinary stream events — REPT pins duplicates — so
// the measurement is the steady-state per-event cost of the batch path,
// free of setup-phase growth and GC traffic).
func benchBatchSteady(b *testing.B, cfg rept.ConcurrentConfig) {
	const span = 8192
	est, err := rept.NewConcurrent(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer est.Close()
	var batch rept.Batch
	feed := func(n int) {
		done := 0
		for done < n {
			for i := 0; i < len(batchStream) && done < n; i += span {
				end := i + span
				if end > len(batchStream) {
					end = len(batchStream)
				}
				if rem := n - done; end-i > rem {
					end = i + rem
				}
				batch.Reset()
				for _, e := range batchStream[i:end] {
					batch.Insert(e.U, e.V)
				}
				est.ApplyBatch(&batch)
				done += end - i
			}
		}
	}
	feed(2 * len(batchStream))
	b.ReportAllocs()
	b.ResetTimer()
	feed(b.N)
}

// BenchmarkBatchIngestPerEvent measures the steady-state per-event cost
// of wholesale batch ingest — whole bodies through Concurrent.ApplyBatch,
// the path an NDJSON request takes through reptserve — on one shard of
// 64 processors in a single group (m = c = 64, counting only), the
// engine's presence-mask fast path. CI holds it to at most half of
// BenchmarkApplyAllPerEvent (benchdiff -pair @0.5).
func BenchmarkBatchIngestPerEvent(b *testing.B) {
	benchBatchSteady(b, rept.ConcurrentConfig{M: 64, C: 64, Shards: 1, Seed: 1})
}

// BenchmarkApplyAllPerEvent is the chunked-broadcast twin of
// BenchmarkBatchIngestPerEvent: the identical stream, configuration, and
// steady-state harness, fed through ApplyAll in 512-event request
// chunks — the pre-wholesale ingest shape, which broadcasts every event
// to every processor. The pair ratio is the speedup the batch path buys.
func BenchmarkApplyAllPerEvent(b *testing.B) {
	cfg := rept.ConcurrentConfig{M: 64, C: 64, Shards: 1, Seed: 1}
	est, err := rept.NewConcurrent(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer est.Close()
	ups := make([]rept.Update, len(batchStream))
	for i, e := range batchStream {
		ups[i] = rept.Update{U: e.U, V: e.V}
	}
	feed := func(n int) {
		done := 0
		for done < n {
			for i := 0; i < len(ups) && done < n; i += 512 {
				end := i + 512
				if end > len(ups) {
					end = len(ups)
				}
				if rem := n - done; end-i > rem {
					end = i + rem
				}
				est.ApplyAll(ups[i:end])
				done += end - i
			}
		}
	}
	feed(2 * len(ups))
	b.ReportAllocs()
	b.ResetTimer()
	feed(b.N)
}

// benchShardIngest is the steady-state harness for the accounting-cost
// pair below, one level under Concurrent: a shard coordinator fed the
// wholesale batchStream through ApplyBatch in 8192-event bodies, with
// the byte ledger attached or absent. Concurrent always creates a
// ledger, so the unaccounted baseline only exists at this level — which
// is also where every ledger charge site lives.
func benchShardIngest(b *testing.B, ac *mem.Accountant) {
	const span = 8192
	s, err := shard.New(shard.Config{M: 64, C: 64, Shards: 1, Seed: 1, Mem: ac})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ups := make([]graph.Update, len(batchStream))
	for i, e := range batchStream {
		ups[i] = graph.Update{U: e.U, V: e.V}
	}
	feed := func(n int) {
		done := 0
		for done < n {
			for i := 0; i < len(ups) && done < n; i += span {
				end := i + span
				if end > len(ups) {
					end = len(ups)
				}
				if rem := n - done; end-i > rem {
					end = i + rem
				}
				s.ApplyBatch(ups[i:end])
				done += end - i
			}
		}
	}
	feed(2 * len(ups))
	b.ReportAllocs()
	b.ResetTimer()
	feed(b.N)
}

// BenchmarkIngestAccountedPerEvent is the wholesale ingest path with the
// memory ledger attached — the configuration every Concurrent estimator
// runs. Its pair twin below is the identical workload with no ledger;
// CI holds the ratio to 1.02 (benchdiff -pair @1.02), the accounting
// budget: charges land only at capacity transitions, so a warm steady
// state must be ledger-silent.
func BenchmarkIngestAccountedPerEvent(b *testing.B) {
	benchShardIngest(b, mem.New())
}

// BenchmarkIngestUnaccountedPerEvent is the unaccounted baseline of the
// accounting-cost pair: the same coordinator, stream, and harness with a
// nil ledger, so every charge site compiles to the nil-receiver no-op.
func BenchmarkIngestUnaccountedPerEvent(b *testing.B) {
	benchShardIngest(b, nil)
}

// benchScalingShards is the shard-scaling curve of the bench artifact:
// the same steady-state wholesale workload with a fixed processor
// budget (m=8, c=64, so 8 groups) spread across k engine shards. On a
// single-core runner the curve is flat-to-rising — extra shards only
// add hand-off work — while on a multi-core box it bends down until the
// rings saturate memory bandwidth.
func benchScalingShards(b *testing.B, shards int) {
	benchBatchSteady(b, rept.ConcurrentConfig{M: 8, C: 64, Shards: shards, Seed: 1})
}

func BenchmarkScalingShards1(b *testing.B) { benchScalingShards(b, 1) }
func BenchmarkScalingShards2(b *testing.B) { benchScalingShards(b, 2) }
func BenchmarkScalingShards4(b *testing.B) { benchScalingShards(b, 4) }
func BenchmarkScalingShards8(b *testing.B) { benchScalingShards(b, 8) }

// BenchmarkREPTPerEdgeParallel is the same configuration spread over
// worker goroutines.
func BenchmarkREPTPerEdgeParallel(b *testing.B) {
	feedCounter(b, func(seed int64) rept.Counter {
		est, err := rept.New(rept.Config{M: 10, C: 10, Seed: seed, Workers: 2})
		if err != nil {
			b.Fatal(err)
		}
		return est
	})
}

// BenchmarkFullyDynamicChurnPerEvent measures the per-event cost of the
// fully-dynamic mode on a 35%-deletion churn stream (m=10, c=10) — the
// deletion-stream datapoint tracked in the CI bench artifact next to the
// insert-only BenchmarkREPTPerEdge.
func BenchmarkFullyDynamicChurnPerEvent(b *testing.B) {
	base := gen.Shuffle(gen.HolmeKim(2000, 8, 0.3, 42), 3)
	ups := exper.DynStream(base, exper.DynOptions{Pattern: exper.Reinsert, DeleteFrac: 0.35, Seed: 11})
	newEst := func() *rept.Estimator {
		est, err := rept.New(rept.Config{M: 10, C: 10, Seed: 1, FullyDynamic: true})
		if err != nil {
			b.Fatal(err)
		}
		return est
	}
	est := newEst()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%len(ups) == 0 && i > 0 {
			// Start the schedule over on a fresh estimator outside the
			// timed region, so every measured event is part of a
			// well-formed churn stream.
			b.StopTimer()
			est.Close()
			est = newEst()
			b.StartTimer()
		}
		est.Apply(ups[i%len(ups)])
	}
	b.StopTimer()
	// Keep the estimator honest (and the loop un-eliminated).
	if g := est.Global(); g < -1e12 {
		b.Fatal(g)
	}
	est.Close()
}

// BenchmarkFullyDynamicDeleteOnly isolates the deletion path: a fully
// built graph torn down edge by edge.
func BenchmarkFullyDynamicDeleteOnly(b *testing.B) {
	base := gen.Shuffle(gen.HolmeKim(2000, 8, 0.3, 42), 3)
	est, err := rept.New(rept.Config{M: 10, C: 10, Seed: 1, FullyDynamic: true})
	if err != nil {
		b.Fatal(err)
	}
	defer est.Close()
	est.AddAll(base)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%len(base) == 0 && i > 0 {
			// Rebuild outside the timed region so deletes always target
			// live edges without billing the re-insertions.
			b.StopTimer()
			est.AddAll(base)
			b.StartTimer()
		}
		e := base[i%len(base)]
		est.Delete(e.U, e.V)
	}
}

// BenchmarkMascotPerEdge measures MASCOT's per-edge cost at p = 0.1.
func BenchmarkMascotPerEdge(b *testing.B) {
	feedCounter(b, func(seed int64) rept.Counter {
		m, err := rept.NewMascot(0.1, seed, false)
		if err != nil {
			b.Fatal(err)
		}
		return m
	})
}

// BenchmarkTriestPerEdge measures TRIÈST-IMPR's per-edge cost at budget
// |E|/10.
func BenchmarkTriestPerEdge(b *testing.B) {
	k := len(microStream) / 10
	feedCounter(b, func(seed int64) rept.Counter {
		tr, err := rept.NewTriest(k, seed, false)
		if err != nil {
			b.Fatal(err)
		}
		return tr
	})
}

// BenchmarkGPSPerEdge measures GPS's per-edge cost at budget |E|/20.
func BenchmarkGPSPerEdge(b *testing.B) {
	k := len(microStream) / 20
	feedCounter(b, func(seed int64) rept.Counter {
		g, err := rept.NewGPS(k, seed, false)
		if err != nil {
			b.Fatal(err)
		}
		return g
	})
}

// BenchmarkSimPerEdge measures the Monte-Carlo sim engine's per-edge cost
// for the same configuration as BenchmarkREPTPerEdge.
func BenchmarkSimPerEdge(b *testing.B) {
	b.ReportAllocs()
	edges := microStream
	b.ResetTimer()
	done := 0
	for done < b.N {
		sim, err := core.NewSim(core.Config{M: 10, C: 10, Seed: int64(done), TrackEta: true})
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range edges {
			sim.Add(e.U, e.V)
			done++
			if done >= b.N {
				break
			}
		}
	}
}

// BenchmarkExactCount measures the exact counter (with η) used for ground
// truth.
func BenchmarkExactCount(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = graph.CountExact(microStream, graph.ExactOptions{Local: true, Eta: true})
	}
	b.ReportMetric(float64(len(microStream)), "edges/op")
}

// BenchmarkParallelBaselineBroadcast measures the c-instance broadcast
// wrapper (c = 10 MASCOT instances over 2 workers).
func BenchmarkParallelBaselineBroadcast(b *testing.B) {
	b.ReportAllocs()
	edges := microStream
	b.ResetTimer()
	done := 0
	for done < b.N {
		par, err := baselines.NewParallelFrom(10, int64(done), 2, func(_ int, s int64) (baselines.Estimator, error) {
			return baselines.NewMascot(0.1, s, false)
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range edges {
			par.Add(e.U, e.V)
			done++
			if done >= b.N {
				break
			}
		}
		par.Close()
	}
}
