package rept_test

import (
	"math"
	"testing"

	"rept"
	"rept/internal/exper"
	"rept/internal/gen"
)

// TestFullyDynamicInsertOnlyIdentical pins the acceptance contract at
// the public API: on a deletion-free stream, estimators built with and
// without FullyDynamic produce bit-identical estimates, at both the
// single-caller and the concurrent layer.
func TestFullyDynamicInsertOnlyIdentical(t *testing.T) {
	edges := gen.Shuffle(gen.HolmeKim(250, 4, 0.4, 15), 2)

	t.Run("Estimator", func(t *testing.T) {
		cfg := rept.Config{M: 4, C: 10, Seed: 3, TrackLocal: true, TrackEta: true}
		plain, err := rept.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer plain.Close()
		cfg.FullyDynamic = true
		dyn, err := rept.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer dyn.Close()
		plain.AddAll(edges)
		dyn.ApplyAll(rept.Inserts(edges))
		a, b := plain.Result(), dyn.Result()
		if a.Global != b.Global || a.Variance != b.Variance || a.EtaHat != b.EtaHat {
			t.Errorf("insert-only estimates diverge: %+v vs %+v", a, b)
		}
		for v, x := range a.Local {
			if b.Local[v] != x {
				t.Fatalf("Local[%d] = %v vs %v", v, x, b.Local[v])
			}
		}
	})

	t.Run("Concurrent", func(t *testing.T) {
		cfg := rept.ConcurrentConfig{M: 4, C: 12, Shards: 2, Seed: 3, TrackLocal: true}
		plain, err := rept.NewConcurrent(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer plain.Close()
		cfg.FullyDynamic = true
		dyn, err := rept.NewConcurrent(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer dyn.Close()
		plain.AddAll(edges)
		dyn.ApplyAll(rept.Inserts(edges))
		a, b := plain.Snapshot(), dyn.Snapshot()
		if a.Global != b.Global {
			t.Errorf("insert-only concurrent estimates diverge: %v vs %v", a.Global, b.Global)
		}
	})
}

// TestFullyDynamicExactMode: with M = 1 (every edge sampled) the
// fully-dynamic estimator IS an exact net triangle counter; driving a
// churn schedule through the concurrent layer must land exactly on the
// reference count, and the pairing stats must classify every deletion as
// a sampled deletion.
func TestFullyDynamicExactMode(t *testing.T) {
	base := gen.Shuffle(gen.HolmeKim(120, 4, 0.5, 9), 4)
	ups := exper.DynStream(base, exper.DynOptions{Pattern: exper.BurstDelete, DeleteFrac: 0.3, Seed: 6})
	ref := exper.DynCountExact(ups, true)

	est, err := rept.New(rept.Config{M: 1, C: 1, Seed: 1, TrackLocal: true, FullyDynamic: true})
	if err != nil {
		t.Fatal(err)
	}
	defer est.Close()
	est.ApplyAll(ups)

	if g := est.Global(); g != float64(ref.Tau) {
		t.Errorf("exact-mode net Global = %v, reference %d", g, ref.Tau)
	}
	for v, want := range ref.TauV {
		if got := est.Local(v); got != float64(want) {
			t.Fatalf("exact-mode net Local[%d] = %v, reference %d", v, got, want)
		}
	}
	ps := est.PairingStats()
	if ps.UnsampledDeletes != 0 || ps.PhantomDeletes != 0 {
		t.Errorf("M=1 pairing stats %+v: every deletion should be a sampled deletion", ps)
	}
	if ps.SampledDeletes != uint64(ref.Deletes) {
		t.Errorf("SampledDeletes = %d, want %d", ps.SampledDeletes, ref.Deletes)
	}
	if est.SampledEdges() != ref.LiveEdges {
		t.Errorf("SampledEdges = %d, want live %d", est.SampledEdges(), ref.LiveEdges)
	}
}

// TestFullyDynamicViews: views over a fully-dynamic concurrent estimator
// report net counts and the deletion tally at a consistent prefix.
func TestFullyDynamicViews(t *testing.T) {
	base := gen.Shuffle(gen.HolmeKim(150, 4, 0.4, 23), 8)
	ups := exper.DynStream(base, exper.DynOptions{Pattern: exper.Churn, DeleteFrac: 0.33, Seed: 2})
	ref := exper.DynCountExact(ups, false)

	est, err := rept.NewConcurrent(rept.ConcurrentConfig{M: 1, C: 1, Seed: 1, FullyDynamic: true, TrackDegrees: true})
	if err != nil {
		t.Fatal(err)
	}
	defer est.Close()
	views, err := est.StartViews(rept.ViewConfig{})
	if err != nil {
		t.Fatal(err)
	}
	est.ApplyAll(ups)
	v := views.Refresh()
	if v.Global != float64(ref.Tau) {
		t.Errorf("view net Global = %v, reference %d", v.Global, ref.Tau)
	}
	if v.Deleted != uint64(ref.Deletes) || v.Processed != uint64(ref.Events) {
		t.Errorf("view tallies = (%d, %d), want (%d, %d)", v.Processed, v.Deleted, ref.Events, ref.Deletes)
	}
	if v.SampledEdges != ref.LiveEdges {
		t.Errorf("view SampledEdges = %d, want live %d", v.SampledEdges, ref.LiveEdges)
	}
	if math.IsNaN(v.Global) {
		t.Error("view Global is NaN")
	}
}
