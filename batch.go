package rept

// Batch is a reusable buffer of signed stream events for the wholesale
// ingest path (Concurrent.ApplyBatch): callers accumulate a request's
// (or an interval's) events into a Batch and hand the whole thing to
// the estimator at once, so ticket acquisition, ordered delivery,
// degree tracking, and barrier bookkeeping are paid once per batch
// instead of once per internal BatchSize chunk — and the shard engines
// take the presence-mask fast path across the batch.
//
// The zero value is ready to use. Reset keeps the backing array, so a
// long-lived Batch reaches a steady state where filling and applying
// it allocates nothing. A Batch is not safe for concurrent mutation;
// build it in one goroutine (distinct goroutines may each own their
// own Batch and call ApplyBatch concurrently).
type Batch struct {
	ups []Update
}

// Insert appends one edge insertion.
func (b *Batch) Insert(u, v NodeID) { b.ups = append(b.ups, Update{U: u, V: v}) }

// Delete appends one edge deletion. Applying a batch with deletions
// requires ConcurrentConfig.FullyDynamic.
func (b *Batch) Delete(u, v NodeID) { b.ups = append(b.ups, Update{U: u, V: v, Del: true}) }

// Push appends one signed event.
func (b *Batch) Push(up Update) { b.ups = append(b.ups, up) }

// Len returns the number of buffered events.
func (b *Batch) Len() int { return len(b.ups) }

// Reset empties the batch for reuse, keeping the backing array.
func (b *Batch) Reset() { b.ups = b.ups[:0] }

// Updates exposes the buffered events. The returned slice aliases the
// batch's backing array; it is invalidated by the next Push/Reset.
func (b *Batch) Updates() []Update { return b.ups }
