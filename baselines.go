package rept

import (
	"fmt"

	"rept/internal/baselines"
)

// This file exposes the baseline estimators the paper compares REPT
// against. All satisfy Counter, so they are drop-in replacements for the
// REPT Estimator in benchmarks and applications.

// Mascot is the improved MASCOT estimator (Lim & Kang, KDD'15): count
// first, then keep each edge with fixed probability p.
type Mascot = baselines.Mascot

// Triest is TRIÈST-IMPR (De Stefani et al., KDD'16): reservoir sampling
// with a fixed edge budget and weighted increments.
type Triest = baselines.Triest

// GPS is Graph Priority Sampling, In-Stream variant (Ahmed et al.,
// VLDB'17): weighted priority sampling with a fixed edge budget.
type GPS = baselines.GPS

// ParallelBaseline runs c independent instances of a baseline and averages
// their estimates — the paper's "parallelize in a direct manner".
type ParallelBaseline = baselines.Parallel

// NewMascot builds a MASCOT estimator with sampling probability p ∈ (0,1].
func NewMascot(p float64, seed int64, trackLocal bool) (*Mascot, error) {
	m, err := baselines.NewMascot(p, seed, trackLocal)
	if err != nil {
		return nil, fmt.Errorf("rept: %w", err)
	}
	return m, nil
}

// NewTriest builds a TRIÈST-IMPR estimator with reservoir budget k >= 2.
func NewTriest(k int, seed int64, trackLocal bool) (*Triest, error) {
	tr, err := baselines.NewTriest(k, seed, trackLocal)
	if err != nil {
		return nil, fmt.Errorf("rept: %w", err)
	}
	return tr, nil
}

// NewGPS builds a GPS In-Stream estimator with edge budget k >= 2.
func NewGPS(k int, seed int64, trackLocal bool) (*GPS, error) {
	g, err := baselines.NewGPS(k, seed, trackLocal)
	if err != nil {
		return nil, fmt.Errorf("rept: %w", err)
	}
	return g, nil
}

// BaselineKind names a baseline algorithm for NewParallel.
type BaselineKind string

// Baseline algorithm names accepted by NewParallel.
const (
	KindMascot BaselineKind = "mascot"
	KindTriest BaselineKind = "triest"
	KindGPS    BaselineKind = "gps"
)

// NewParallel builds the direct parallelization of a baseline: c
// independent instances with derived seeds, estimates averaged. For
// MASCOT, budget is interpreted as 1/p (the paper's m); for TRIÈST and
// GPS it is the per-instance edge budget k. workers <= 1 runs
// single-threaded.
func NewParallel(kind BaselineKind, c int, budget int, seed int64, trackLocal bool, workers int) (*ParallelBaseline, error) {
	var factory baselines.Factory
	switch kind {
	case KindMascot:
		if budget < 1 {
			return nil, fmt.Errorf("rept: MASCOT budget (1/p) = %d, need >= 1", budget)
		}
		p := 1 / float64(budget)
		factory = func(_ int, s int64) (baselines.Estimator, error) {
			return baselines.NewMascot(p, s, trackLocal)
		}
	case KindTriest:
		factory = func(_ int, s int64) (baselines.Estimator, error) {
			return baselines.NewTriest(budget, s, trackLocal)
		}
	case KindGPS:
		factory = func(_ int, s int64) (baselines.Estimator, error) {
			return baselines.NewGPS(budget, s, trackLocal)
		}
	default:
		return nil, fmt.Errorf("rept: unknown baseline kind %q", kind)
	}
	p, err := baselines.NewParallelFrom(c, seed, workers, factory)
	if err != nil {
		return nil, fmt.Errorf("rept: %w", err)
	}
	return p, nil
}
