package rept

import (
	"fmt"

	"rept/internal/core"
)

// Merge combines the counters of several REPT estimators that processed
// the SAME stream with DIFFERENT seeds into a single estimate, as if one
// estimator with the concatenated processor list had run. This is the
// distributed deployment pattern of paper Section III-B: each machine
// hosts one or more full processor groups, and group independence comes
// from independent seeds.
//
// Requirements:
//   - all estimators share the same M;
//   - every estimator except the last must have C as a multiple of M
//     (full groups); the last may hold a partial group;
//   - seeds must be pairwise distinct (checked) and should be independent;
//   - all estimators must have processed the same stream (not checkable
//     from counters; the caller must guarantee it).
//
// The merged estimate has the variance of REPT with c = ΣCᵢ processors
// (paper Section III-B): e.g. K machines each running C = M yield
// Var(τ̂) = τ(m−1)/K.
func Merge(ests ...*Estimator) (Estimate, error) {
	if len(ests) == 0 {
		return Estimate{}, fmt.Errorf("rept: Merge needs at least one estimator")
	}
	seen := make(map[int64]bool, len(ests))
	shards := make([]*core.Aggregates, len(ests))
	var processed uint64
	for i, e := range ests {
		cfg := e.Config()
		if seen[cfg.Seed] {
			return Estimate{}, fmt.Errorf("rept: Merge estimator %d shares seed %d with an earlier one; group hashes must be independent", i, cfg.Seed)
		}
		seen[cfg.Seed] = true
		if i == 0 {
			processed = e.Processed()
		} else if e.Processed() != processed {
			return Estimate{}, fmt.Errorf("rept: estimator %d processed %d edges, others %d; Merge requires identical streams", i, e.Processed(), processed)
		}
		shards[i] = e.eng.Aggregates()
	}
	merged, err := core.MergeGroups(shards...)
	if err != nil {
		return Estimate{}, fmt.Errorf("rept: %w", err)
	}
	res := merged.Estimate()
	return Estimate{Global: res.Global, Local: res.Local, Variance: res.Variance, EtaHat: res.EtaHat}, nil
}
