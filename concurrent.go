package rept

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"rept/internal/mem"
	"rept/internal/query"
	"rept/internal/shard"
	"rept/internal/wal"
)

// ConcurrentConfig configures a Concurrent estimator. M, C, Seed,
// TrackLocal, and TrackEta mean exactly what they do in Config; the
// remaining fields shape the concurrent ingest layer.
type ConcurrentConfig struct {
	// M sets the edge sampling probability p = 1/M. Required, >= 1.
	M int
	// C is the TOTAL number of logical processors across all shards.
	// Required, >= 1. As in Config, estimation error shrinks as C grows.
	C int
	// Shards is the number of independent engine shards; each owns whole
	// processor groups and its own hash family seed. Values <= 0 choose a
	// default from the group count. More shards increase ingest
	// parallelism; the estimate's distribution does not depend on it.
	Shards int
	// Seed makes the estimator deterministic: per-shard hash family seeds
	// are derived from it by a splitmix64 chain.
	Seed int64
	// TrackLocal enables per-node estimates.
	TrackLocal bool
	// FullyDynamic enables edge deletions, exactly as Config.FullyDynamic.
	FullyDynamic bool
	// TrackEta forces η̂ bookkeeping on every shard (see Config.TrackEta).
	TrackEta bool
	// TrackDegrees maintains a per-node stream degree table alongside the
	// shards (O(V) memory), the input clustering-coefficient queries
	// need. Degrees count non-loop edge arrivals: on streams where every
	// edge arrives once they equal graph degrees.
	TrackDegrees bool
	// HubDegree enables hub-aware batch routing: once a vertex's stream
	// degree (from the degree table, so TrackDegrees is required)
	// reaches this threshold, ApplyBatch splits oversized batches that
	// touch it into BatchSize-long segments so the hub's heavy
	// closing-edge work pipelines across the shard consumers instead of
	// serializing in one monolithic apply. 0 disables splitting. Purely
	// an execution detail: estimates, snapshots, and the WAL fingerprint
	// are unaffected.
	HubDegree int
	// Workers is the per-shard engine worker count (default 1: each shard
	// is already its own goroutine).
	Workers int
	// BatchSize is the ingest hand-off batch length (default 1024). Adds
	// are buffered under a mutex and broadcast to shards in batches.
	BatchSize int
	// QueueLen is the per-shard queue depth in batches (default 8);
	// producers block when a shard falls this far behind.
	QueueLen int
	// Telemetry attaches an observability bundle (see NewTelemetry):
	// stage-latency histograms across the ingest pipeline, per-shard
	// series, and a flight recorder. Nil runs uninstrumented. Telemetry
	// is operational state — it does not affect estimates, snapshots, or
	// the WAL fingerprint — and one bundle must not be shared between
	// estimators.
	Telemetry *Telemetry
}

// Concurrent is a REPT estimator that is safe for concurrent use by any
// number of goroutines, built from hash-partitioned engine shards whose
// counters merge exactly as in the distributed deployment of paper
// Section III-B (see Merge). Add, AddEdge, AddAll, Snapshot, and the
// Counter methods may all be called concurrently; Close must happen after
// all other calls have returned, and any use after Close panics.
//
// Snapshots are consistent: every shard reports its counters at the same
// stream prefix, so a Snapshot taken while producers are still adding
// edges reflects exactly the adds that completed before it.
type Concurrent struct {
	sh   *shard.Sharded
	cfg  ConcurrentConfig
	tele *Telemetry
	// acct is the per-component byte ledger every storage layer reports
	// to; always non-nil (see MemStats). Purely observational: accounting
	// happens at capacity-change moments, never per event, and the
	// estimator's output is bit-identical with or without it.
	acct *mem.Accountant
	// views is the epoch-view publisher once StartViews has run; while it
	// is nil every read goes through a fresh barrier.
	views atomic.Pointer[query.Publisher]

	// Durable-mode state, set by ResumeDurable (nil/zero otherwise): the
	// write-ahead log, the automatic-compaction trigger channel, and the
	// compactor goroutine's lifetime.
	lg           *wal.Log
	compactEvery uint64
	compactCh    chan struct{}
	compactWG    sync.WaitGroup
	compactErrs  atomic.Uint64
}

var _ Counter = (*Concurrent)(nil)

// shardConfig maps the public configuration onto the coordinator's.
// NewConcurrent and ResumeConcurrent must build from the identical
// mapping or a restored estimator could silently differ from the one
// that wrote the snapshot.
func (c ConcurrentConfig) shardConfig() shard.Config {
	return shard.Config{
		M:            c.M,
		C:            c.C,
		Shards:       c.Shards,
		Seed:         c.Seed,
		TrackLocal:   c.TrackLocal,
		FullyDynamic: c.FullyDynamic,
		TrackEta:     c.TrackEta,
		TrackDegrees: c.TrackDegrees,
		HubDegree:    c.HubDegree,
		Workers:      c.Workers,
		BatchSize:    c.BatchSize,
		QueueLen:     c.QueueLen,
		Obs:          c.Telemetry.obsPipeline(),
	}
}

// errViewsStarted reports a second StartViews on the same estimator.
var errViewsStarted = errors.New("rept: views already started")

// NewConcurrent builds a concurrency-safe REPT estimator.
func NewConcurrent(cfg ConcurrentConfig) (*Concurrent, error) {
	ac := mem.New()
	scfg := cfg.shardConfig()
	scfg.Mem = ac
	sh, err := shard.New(scfg)
	if err != nil {
		return nil, fmt.Errorf("rept: %w", err)
	}
	return &Concurrent{sh: sh, cfg: cfg, tele: cfg.Telemetry, acct: ac}, nil
}

// Add feeds one stream edge; self-loops are ignored. Safe for concurrent
// use.
func (c *Concurrent) Add(u, v NodeID) { c.sh.Add(u, v) }

// AddEdge feeds one stream edge.
func (c *Concurrent) AddEdge(edge Edge) { c.sh.Add(edge.U, edge.V) }

// AddAll feeds a slice of stream edges in order under one critical
// section; bulk callers should prefer it over per-edge Add.
func (c *Concurrent) AddAll(edges []Edge) { c.sh.AddAll(edges) }

// Delete feeds one stream edge deletion; estimates then track the net
// (live) graph. Requires ConcurrentConfig.FullyDynamic (panics with
// ErrNotDynamic otherwise). Safe for concurrent use.
func (c *Concurrent) Delete(u, v NodeID) { c.sh.Delete(u, v) }

// ApplyAll feeds a slice of signed stream events in order under one
// critical section — the bulk fully-dynamic ingest path. Deletion events
// require ConcurrentConfig.FullyDynamic.
func (c *Concurrent) ApplyAll(ups []Update) { c.sh.ApplyAll(ups) }

// ApplyBatch feeds every event in b, in order, as one wholesale
// delivery: the batch gets a single delivery ticket, travels the shard
// rings as one message, and each shard engine applies it through the
// presence-mask fast path — bit-identical results to ApplyAll, at a
// fraction of the per-event dispatch cost. With
// ConcurrentConfig.HubDegree set, oversized batches touching a hub
// vertex are split into BatchSize-long segments (see HubDegree). The
// batch is copied during the call; the caller may Reset and refill it
// immediately. Deletion events require ConcurrentConfig.FullyDynamic.
// Safe for concurrent use (one goroutine per Batch).
func (c *Concurrent) ApplyBatch(b *Batch) {
	if b == nil {
		return
	}
	c.sh.ApplyBatch(b.ups)
}

// Snapshot drains in-flight edges and returns the merged estimate at a
// consistent stream prefix — a full cross-shard barrier, regardless of
// whether views are running. The estimator keeps accepting edges.
// SnapshotNow is the same operation under the name the view-era read API
// uses; prefer View for high-rate queries.
func (c *Concurrent) Snapshot() Estimate {
	res := c.sh.Snapshot()
	return Estimate{Global: res.Global, Local: res.Local, Variance: res.Variance, EtaHat: res.EtaHat}
}

// SnapshotNow is the explicit fresh-barrier escape hatch: it always pays
// one cross-shard barrier and returns the estimate at the current stream
// prefix, even while views are serving bounded-stale answers.
func (c *Concurrent) SnapshotNow() Estimate { return c.Snapshot() }

// Global returns the global triangle count estimate. While views are
// running (StartViews) it answers from the current epoch view — lock-free
// and barrier-free, stale by at most the publish interval; otherwise it
// pays a full barrier snapshot. Use SnapshotNow for a guaranteed-fresh
// value.
func (c *Concurrent) Global() float64 {
	if p := c.views.Load(); p != nil {
		return p.View().Global
	}
	return c.sh.Snapshot().Global
}

// Local returns the local triangle count estimate for v (0 if the node
// was never seen or TrackLocal is off). While views are running it is an
// O(1) map lookup on the current epoch view instead of a barrier plus a
// full local-map materialization per call.
func (c *Concurrent) Local(v NodeID) float64 {
	if p := c.views.Load(); p != nil {
		return p.View().LocalOf(v)
	}
	return c.sh.Snapshot().Local[v]
}

// Locals returns all non-zero local estimates (nil unless TrackLocal).
// While views are running the returned map is the current epoch view's —
// shared and immutable, so callers must not modify it; otherwise it is a
// freshly materialized copy.
func (c *Concurrent) Locals() map[NodeID]float64 {
	if p := c.views.Load(); p != nil {
		return p.View().Local
	}
	return c.sh.Snapshot().Local
}

// Processed returns the number of non-loop events (insertions plus
// deletions) accepted so far, including events still buffered in flight.
func (c *Concurrent) Processed() uint64 { return c.sh.Processed() }

// Deleted returns the number of non-loop deletion events accepted so far
// (always 0 unless ConcurrentConfig.FullyDynamic).
func (c *Concurrent) Deleted() uint64 { return c.sh.Deleted() }

// SelfLoops returns the number of self-loop arrivals skipped.
func (c *Concurrent) SelfLoops() uint64 { return c.sh.SelfLoops() }

// SampledEdges returns the number of edges currently stored across all
// shards' logical processors (expected ≈ C·|E|/M), a memory diagnostic.
func (c *Concurrent) SampledEdges() int { return c.sh.SampledEdges() }

// EtaSaturations reports how many per-edge closing-counter updates were
// clamped at the int32 boundary across all shards (see
// Estimator.EtaSaturations). It pays a full barrier, like SampledEdges;
// views carry the same number per epoch (View.EtaSaturations).
func (c *Concurrent) EtaSaturations() uint64 { return c.sh.EtaSaturations() }

// Shards returns the effective number of engine shards.
func (c *Concurrent) Shards() int { return c.sh.Shards() }

// WriteSnapshot checkpoints every shard barrier-consistently into one
// multi-shard snapshot on w: all shard states, and the processed and
// self-loop tallies, describe exactly the same stream prefix. Safe for
// concurrent use with Add; edges added while the checkpoint is being
// taken land after it and are NOT in the snapshot. ResumeConcurrent with
// an equal ConcurrentConfig rebuilds an estimator that produces
// bit-for-bit identical estimates on any suffix stream.
func (c *Concurrent) WriteSnapshot(w io.Writer) error { return c.sh.WriteSnapshot(w) }

// ResumeConcurrent reads a snapshot written by Concurrent.WriteSnapshot
// and restores it into a new estimator built for cfg. The snapshot's
// fingerprint must match cfg's statistical fields (M, C, Seed,
// TrackLocal, TrackEta — and TrackDegrees, whose table is carried in the
// snapshot) and the effective shard count must equal the one cfg implies,
// because per-shard hash seeds derive from (Seed, shard index). Workers,
// BatchSize, and QueueLen may differ. Mismatches are rejected with an
// error wrapping ErrSnapshotMismatch.
func ResumeConcurrent(cfg ConcurrentConfig, r io.Reader) (*Concurrent, error) {
	ac := mem.New()
	scfg := cfg.shardConfig()
	scfg.Mem = ac
	sh, err := shard.Resume(scfg, r)
	if err != nil {
		return nil, fmt.Errorf("rept: %w", err)
	}
	return &Concurrent{sh: sh, cfg: cfg, tele: cfg.Telemetry, acct: ac}, nil
}

// Close stops the view publisher (when started), flushes pending edges,
// and releases the shard goroutines. The estimator must not be used after
// Close (uses panic); Close itself is idempotent but must not run
// concurrently with other methods. The last published view stays readable
// through a retained *Views handle even after Close.
func (c *Concurrent) Close() {
	if p := c.views.Load(); p != nil {
		p.Close()
	}
	// The compactor snapshots through the coordinator, so it must be
	// fully stopped before the coordinator shuts down.
	c.stopCompactor()
	c.sh.Close()
	if c.lg != nil {
		c.lg.Close()
	}
}

// Config returns the configuration the estimator was built with.
func (c *Concurrent) Config() ConcurrentConfig { return c.cfg }
