#!/usr/bin/env bash
# budget_soak.sh — end-to-end memory-budget soak against a real reptserve.
#
# Boots the server with a deliberately tight -mem-budget, drives several
# passes of seeded insert/delete/reinsert churn through POST /edges, and
# then asserts the adaptive control plane actually did its job:
#
#   1. /metrics reports rept_adaptations_total >= 1 — the controller
#      degraded something (top-K or sampling rate) instead of growing.
#   2. rept_mem_heap_bytes ends at or under the budget — the ledger
#      total converged below the cap, not merely slowed its growth.
#   3. The server process RSS stays under RSS_CAP_KB — the ledger is an
#      honest proxy for real memory, not a number that shrinks while the
#      process bloats.
#   4. The server is still ready and still answers /estimate — degraded,
#      not dead.
#
# Usage: scripts/budget_soak.sh [workdir]
# Environment: BUDGET (default 8MiB), RSS_CAP_KB (default 262144 = 256MiB).
set -euo pipefail

dir="${1:-$(mktemp -d)}"
budget="${BUDGET:-8MiB}"
rss_cap_kb="${RSS_CAP_KB:-262144}"
addr="127.0.0.1:8097"
base="http://$addr"

go build -o "$dir/reptserve" ./cmd/reptserve
go run ./cmd/genstream -model holmekim -n 20000 -k 6 -pt 0.4 -seed 21 \
  -out "$dir/edges.txt"

"$dir/reptserve" -addr "$addr" -m 4 -c 8 -dynamic \
  -mem-budget "$budget" -mem-headroom 0.10 -mem-tick 50ms \
  >"$dir/server.log" 2>&1 &
srv=$!
trap 'kill "$srv" 2>/dev/null || true' EXIT

for i in $(seq 1 100); do
  if curl -sf "$base/readyz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$srv" 2>/dev/null; then
    echo "server died during boot" >&2
    cat "$dir/server.log" >&2
    exit 1
  fi
  sleep 0.1
done

# NDJSON bodies: the full stream as inserts, and a seeded one-third of
# it as the churn set that each pass deletes and reinserts. The churn
# selection is positional (every 3rd line of a fixed shuffle), so the
# whole soak is deterministic.
awk '{printf "{\"u\":%d,\"v\":%d}\n", $1, $2}' "$dir/edges.txt" >"$dir/ins.ndjson"
awk 'NR%3==0 {printf "{\"u\":%d,\"v\":%d,\"op\":\"del\"}\n", $1, $2}' \
  "$dir/edges.txt" >"$dir/del.ndjson"
awk 'NR%3==0 {printf "{\"u\":%d,\"v\":%d}\n", $1, $2}' \
  "$dir/edges.txt" >"$dir/reins.ndjson"

# post streams a body in 20k-line chunks. 429 (shedding) is an expected,
# correct answer under a tight budget — the loop keeps going so later
# chunks observe the post-adaptation acceptance; any 5xx is a failure.
post() {
  split -l 20000 "$1" "$dir/chunk."
  for f in "$dir"/chunk.*; do
    code=$(curl -s -o /dev/null -w '%{http_code}' \
      -X POST --data-binary @"$f" "$base/edges")
    case "$code" in
      200|429) ;;
      *) echo "POST /edges: unexpected status $code" >&2; exit 1 ;;
    esac
    rm "$f"
  done
}

max_rss_kb=0
for pass in 1 2 3; do
  post "$dir/ins.ndjson"
  post "$dir/del.ndjson"
  post "$dir/reins.ndjson"
  rss_kb=$(awk '/^VmRSS:/ {print $2}' "/proc/$srv/status")
  if [ "$rss_kb" -gt "$max_rss_kb" ]; then max_rss_kb=$rss_kb; fi
  echo "pass $pass: RSS ${rss_kb}KiB"
done

# Let the controller run a few more ticks on the quiesced stream so the
# ledger can settle at its post-adaptation level.
sleep 1
curl -sf "$base/metrics" >"$dir/metrics.txt"
curl -sf "$base/estimate" >/dev/null
curl -sf "$base/readyz" >/dev/null

metric() { awk -v m="$1" '$1 == m {print $2}' "$dir/metrics.txt"; }

adaptations=$(metric rept_adaptations_total)
heap=$(metric rept_mem_heap_bytes)
budget_bytes=$(metric rept_mem_budget_bytes)
shed=$(metric rept_shed_requests_total)
echo "adaptations=$adaptations heap=$heap budget=$budget_bytes shed=$shed max_rss=${max_rss_kb}KiB"

fail=0
if ! [ "${adaptations:-0}" -ge 1 ] 2>/dev/null; then
  echo "FAIL: rept_adaptations_total = ${adaptations:-missing}, want >= 1" >&2
  fail=1
fi
if ! awk -v h="${heap:-inf}" -v b="${budget_bytes:-0}" \
  'BEGIN { exit !(h+0 <= b+0 && b+0 > 0) }'; then
  echo "FAIL: rept_mem_heap_bytes = ${heap:-missing} not within budget ${budget_bytes:-missing}" >&2
  fail=1
fi
if [ "$max_rss_kb" -gt "$rss_cap_kb" ]; then
  echo "FAIL: peak RSS ${max_rss_kb}KiB exceeds cap ${rss_cap_kb}KiB" >&2
  fail=1
fi
if [ "$fail" -ne 0 ]; then
  tail -20 "$dir/server.log" >&2
  exit 1
fi
echo "budget soak OK"
