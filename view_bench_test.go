package rept_test

import (
	"sync"
	"testing"
	"time"

	"rept"
	"rept/internal/gen"
)

// benchViewEstimator builds a Concurrent estimator with a representative
// mid-stream state and producers saturating ingest for the whole
// benchmark — the regime the read path is built for. It returns the
// estimator with views running.
func benchViewEstimator(b *testing.B, producers int) *rept.Concurrent {
	b.Helper()
	est, err := rept.NewConcurrent(rept.ConcurrentConfig{
		M: 8, C: 32, Shards: 4, Seed: 1, TrackLocal: true, TrackDegrees: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	est.AddAll(gen.Shuffle(gen.HolmeKim(5000, 6, 0.3, 5), 9))
	if _, err := est.StartViews(rept.ViewConfig{Interval: 50 * time.Millisecond, TopK: 100}); err != nil {
		b.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			chunk := gen.Shuffle(gen.HolmeKim(2000, 5, 0.3, seed), seed)
			for {
				select {
				case <-stop:
					return
				default:
					est.AddAll(chunk)
				}
			}
		}(uint64(p + 2))
	}
	b.Cleanup(func() {
		close(stop)
		wg.Wait()
		est.Close()
	})
	return est
}

// BenchmarkReadPathViewUnderIngest measures single-node queries through
// the epoch-view path while ingest is saturated: an atomic pointer load
// plus a map lookup, never a barrier. Compare against
// BenchmarkReadPathBarrierUnderIngest — the ratio is the point (the
// acceptance bar for this subsystem is ≥100×).
func BenchmarkReadPathViewUnderIngest(b *testing.B) {
	est := benchViewEstimator(b, 2)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += est.Local(rept.NodeID(i % 5000))
	}
	_ = sink
}

// BenchmarkReadPathViewParallel is the same query mix from parallel
// readers — the many-clients regime the HTTP endpoints map onto.
func BenchmarkReadPathViewParallel(b *testing.B) {
	est := benchViewEstimator(b, 2)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var sink float64
		i := 0
		for pb.Next() {
			sink += est.Local(rept.NodeID(i % 5000))
			i++
		}
		_ = sink
	})
}

// BenchmarkReadPathBarrierUnderIngest measures the pre-view read path:
// every single-node query pays a cross-shard barrier and materializes the
// full local map (what Concurrent.Local did before views, still available
// as SnapshotNow).
func BenchmarkReadPathBarrierUnderIngest(b *testing.B) {
	est := benchViewEstimator(b, 2)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += est.SnapshotNow().Local[rept.NodeID(i%5000)]
	}
	_ = sink
}

// BenchmarkViewTopK measures serving the precomputed top-100 ranking.
func BenchmarkViewTopK(b *testing.B) {
	est := benchViewEstimator(b, 2)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += len(est.View().Top(100))
	}
	_ = sink
}

// BenchmarkViewPublish measures materializing one epoch (barrier, merge,
// degree copy, top-K selection) — the cost the publisher pays per
// interval so that readers pay nothing.
func BenchmarkViewPublish(b *testing.B) {
	est := benchViewEstimator(b, 2)
	views := est.Views()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		views.Refresh()
	}
}
