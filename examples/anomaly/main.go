// Anomaly detection over time intervals — the motivating workload from
// paper Section II: "Π is a network packet stream collected on a router
// in a time interval ... and one wants to compute global and local
// triangle counts for each interval."
//
// We stream 12 intervals of background traffic (a stable communication
// graph with a steady triangle level) and inject a dense clique (a
// coordinated scanning/botnet-like burst) into one interval. A fresh REPT
// estimator per interval flags the anomaly as a spike in the triangle
// count, using a fraction of the memory exact counting would need.
//
//	go run ./examples/anomaly
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"rept"
	"rept/internal/gen"
	"rept/internal/stream"
)

const (
	intervals      = 12
	anomalyAt      = 8
	edgesPerWindow = 12000
)

func main() {
	full := buildTraffic()
	windows := stream.Intervals(full, intervals)

	fmt.Println("interval  edges   triangles(REPT)  baseline-ratio  flag")
	var history []float64
	for i, win := range windows {
		est, err := rept.New(rept.Config{M: 5, C: 5, Seed: int64(100 + i)})
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range win {
			est.Add(e.U, e.V)
		}
		tri := est.Global()
		est.Close()

		ratio, flagged := judge(history, tri)
		mark := ""
		if flagged {
			mark = "<-- ANOMALY"
		}
		fmt.Printf("%8d  %6d  %15.0f  %14.1f  %s\n", i, len(win), tri, ratio, mark)
		if !flagged { // anomalous windows don't update the baseline
			history = append(history, tri)
		}
	}
}

// judge compares a window's triangle count against the trailing mean.
func judge(history []float64, tri float64) (ratio float64, flagged bool) {
	if len(history) < 3 {
		return 1, false
	}
	mean := 0.0
	for _, h := range history {
		mean += h
	}
	mean /= float64(len(history))
	if mean <= 0 {
		return 1, tri > 100
	}
	ratio = tri / mean
	return ratio, ratio > 2
}

// buildTraffic generates background traffic — each window is a fresh
// communication graph with a modest, steady triangle count — and injects
// a 40-node clique into one window.
func buildTraffic() []rept.Edge {
	rng := rand.New(rand.NewPCG(7, 9))
	var full []rept.Edge
	for w := 0; w < intervals; w++ {
		// Background: lightly clustered traffic, ~1-2k triangles/window.
		win := gen.HolmeKim(edgesPerWindow/4, 4, 0.25, uint64(50+w))
		win = gen.Shuffle(win, uint64(w))
		if w == anomalyAt {
			// Coordinated burst: a 40-node clique (C(40,3) = 9880 triangles)
			// hidden among the background edges.
			members := rng.Perm(edgesPerWindow / 4)[:40]
			var clique []rept.Edge
			for i := 0; i < len(members); i++ {
				for j := i + 1; j < len(members); j++ {
					clique = append(clique, rept.Edge{
						U: rept.NodeID(members[i]), V: rept.NodeID(members[j]),
					})
				}
			}
			win = append(win, clique...)
			win = gen.Shuffle(win, uint64(w))
		}
		full = append(full, win...)
	}
	return full
}
