// Concurrent ingest: feed one edge stream into a goroutine-safe REPT
// estimator from several producers at once, snapshotting mid-stream.
//
//	go run ./examples/concurrent
package main

import (
	"fmt"
	"log"
	"sync"

	"rept"
	"rept/internal/gen"
)

func main() {
	edges := gen.Shuffle(gen.HolmeKim(5000, 8, 0.5, 42), 7)
	exact := rept.ExactCount(edges, rept.ExactOptions{})
	fmt.Printf("stream: %d edges, %d triangles exactly\n", len(edges), exact.Tau)

	// 64 logical processors spread over 4 engine shards. Unlike
	// rept.New, the returned estimator accepts Add from any number of
	// goroutines; statistically it behaves like one estimator with
	// C = 64 (Var(τ̂) ≈ τ(m−1)/c₁ = τ(m−1)/6 here, c₁ = ⌊C/M⌋).
	est, err := rept.NewConcurrent(rept.ConcurrentConfig{
		M:      10,
		C:      64,
		Shards: 4,
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer est.Close()

	// Eight producers ingest disjoint slices of the stream concurrently,
	// as network handlers would (cmd/reptserve is exactly this over HTTP).
	const producers = 8
	var wg sync.WaitGroup
	chunk := (len(edges) + producers - 1) / producers
	for p := 0; p < producers; p++ {
		lo := min(p*chunk, len(edges))
		hi := min(lo+chunk, len(edges))
		wg.Add(1)
		go func(part []rept.Edge) {
			defer wg.Done()
			est.AddAll(part)
		}(edges[lo:hi])
	}

	// Snapshots are safe while producers are still running: every shard
	// reports at the same consistent stream prefix.
	mid := est.Snapshot()
	fmt.Printf("mid-stream:  τ̂ = %.0f after %d edges\n", mid.Global, est.Processed())

	wg.Wait()
	final := est.Snapshot()
	relErr := (final.Global - float64(exact.Tau)) / float64(exact.Tau)
	fmt.Printf("final:       τ̂ = %.0f (exact %d, error %+.2f%%)\n",
		final.Global, exact.Tau, 100*relErr)
	fmt.Printf("memory:      %d sampled edges across %d shards\n",
		est.SampledEdges(), est.Shards())
}
