// Global clustering coefficient from a stream — a flagship application of
// triangle counting (paper Section I cites community detection and topic
// mining, both built on clustering structure).
//
// The global clustering coefficient is κ = 3τ/W, where W = Σ_v C(d_v, 2)
// is the wedge count. Degrees (and hence W) are cheap to track exactly in
// one pass; τ comes from REPT. The example streams graphs with known
// clustering levels and recovers their coefficients, with error bars from
// the estimator's plug-in variance.
//
//	go run ./examples/clustering
package main

import (
	"fmt"
	"log"
	"math"

	"rept"
	"rept/internal/gen"
)

func main() {
	fmt.Println("graph                         κ(exact)  κ(REPT)  ±95% CI")
	cases := []struct {
		name  string
		edges []rept.Edge
	}{
		{"Watts-Strogatz beta=0.05", gen.Shuffle(gen.WattsStrogatz(6000, 6, 0.05, 1), 2)},
		{"Holme-Kim pt=0.6", gen.Shuffle(gen.HolmeKim(6000, 6, 0.6, 3), 4)},
		{"Holme-Kim pt=0.1", gen.Shuffle(gen.HolmeKim(6000, 6, 0.1, 5), 6)},
		{"Erdos-Renyi (near zero)", gen.ErdosRenyi(6000, 36000, 7)},
	}
	for _, tc := range cases {
		kExact, kEst, ci := clustering(tc.edges)
		fmt.Printf("%-28s  %.4f    %.4f   ±%.4f\n", tc.name, kExact, kEst, ci)
	}
}

// clustering streams the edges once, tracking degrees exactly and τ via
// REPT with η̂ bookkeeping for the confidence interval.
func clustering(edges []rept.Edge) (exact, estimated, ci95 float64) {
	est, err := rept.New(rept.Config{M: 8, C: 8, Seed: 11, TrackEta: true, Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer est.Close()

	deg := make(map[rept.NodeID]int)
	for _, e := range edges {
		est.Add(e.U, e.V)
		deg[e.U]++
		deg[e.V]++
	}
	wedges := 0.0
	for _, d := range deg {
		wedges += float64(d) * float64(d-1) / 2
	}
	res := est.Result()
	estimated = 3 * res.Global / wedges
	// κ's CI scales τ̂'s by 3/W.
	ci95 = 1.96 * 3 * res.StdErr() / wedges

	ex := rept.ExactCount(edges, rept.ExactOptions{})
	exact = 3 * float64(ex.Tau) / wedges
	if math.IsNaN(estimated) {
		estimated = 0
	}
	return exact, estimated, ci95
}
