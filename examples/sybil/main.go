// Sybil / spam-account screening with local triangle counts — the use
// case from the paper's introduction (suspicious-account detection on
// online social networks, spam webpage detection).
//
// Genuine accounts embed in their friends' communities, so their local
// triangle count τ_v is high relative to their degree. Sybil accounts
// befriend many victims who do not know each other, so τ_v stays near
// zero while degree grows. We build a social graph, attach sybil nodes,
// stream it through REPT with local tracking, and rank nodes by the
// clustering score 2·τ̂_v / (d_v(d_v−1)).
//
//	go run ./examples/sybil
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"sort"

	"rept"
	"rept/internal/gen"
)

const (
	honestNodes = 4000
	sybils      = 12
	sybilDegree = 60
)

func main() {
	edges, sybilIDs := buildGraph()
	fmt.Printf("stream: %d edges, %d honest nodes, %d sybils\n",
		len(edges), honestNodes, sybils)

	est, err := rept.New(rept.Config{M: 4, C: 4, Seed: 3, TrackLocal: true, Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer est.Close()

	// Track degrees alongside (cheap; one counter per node).
	deg := make(map[rept.NodeID]int)
	for _, e := range edges {
		est.Add(e.U, e.V)
		deg[e.U]++
		deg[e.V]++
	}
	locals := est.Locals()

	// Score = estimated local clustering coefficient. Only high-degree
	// nodes are interesting (low-degree honest nodes can have zero
	// triangles by chance).
	type scored struct {
		v     rept.NodeID
		deg   int
		tauV  float64
		score float64
	}
	var candidates []scored
	for v, d := range deg {
		if d < 30 {
			continue
		}
		t := locals[v]
		candidates = append(candidates, scored{
			v: v, deg: d, tauV: t,
			score: 2 * t / float64(d*(d-1)),
		})
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].score < candidates[j].score })

	isSybil := make(map[rept.NodeID]bool, len(sybilIDs))
	for _, s := range sybilIDs {
		isSybil[s] = true
	}
	fmt.Println("\nmost suspicious high-degree nodes (lowest clustering):")
	fmt.Println("node     degree  τ̂_v     clustering  truth")
	hits := 0
	for i := 0; i < len(candidates) && i < 2*sybils; i++ {
		c := candidates[i]
		truth := "honest"
		if isSybil[c.v] {
			truth = "SYBIL"
			hits++
		}
		fmt.Printf("%-7d  %-6d  %-6.1f  %-10.5f  %s\n", c.v, c.deg, c.tauV, c.score, truth)
	}
	fmt.Printf("\nrecall: %d/%d sybils in the top-%d suspects\n", hits, sybils, 2*sybils)
}

// buildGraph creates a clustered honest community plus sybil nodes whose
// neighbors are random victims (no triangles among them).
func buildGraph() ([]rept.Edge, []rept.NodeID) {
	edges := gen.HolmeKim(honestNodes, 8, 0.6, 11)
	rng := rand.New(rand.NewPCG(5, 5))
	var ids []rept.NodeID
	seen := make(map[uint64]struct{})
	for _, e := range edges {
		seen[e.Key()] = struct{}{}
	}
	for s := 0; s < sybils; s++ {
		sv := rept.NodeID(honestNodes + s)
		ids = append(ids, sv)
		added := 0
		for added < sybilDegree {
			victim := rept.NodeID(rng.IntN(honestNodes))
			e := rept.Edge{U: sv, V: victim}
			if _, dup := seen[e.Key()]; dup {
				continue
			}
			seen[e.Key()] = struct{}{}
			edges = append(edges, e)
			added++
		}
	}
	return gen.Shuffle(edges, 99), ids
}
