// Quickstart: estimate global and local triangle counts of a streamed
// graph with REPT and compare against the exact answer.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"rept"
	"rept/internal/gen"
)

func main() {
	// A synthetic social-network-like stream: 5000 nodes, ~40k edges,
	// heavy-tailed degrees, plenty of triangles.
	edges := gen.Shuffle(gen.HolmeKim(5000, 8, 0.5, 42), 7)
	fmt.Printf("stream: %d edges\n", len(edges))

	// REPT with sampling probability p = 1/m = 1/10 on c = 10 logical
	// processors. Each processor stores ~|E|/10 edges, and with c = m the
	// covariance between sampled triangles is fully eliminated
	// (Var(τ̂) = τ(m−1), paper Theorem 3).
	est, err := rept.New(rept.Config{
		M:          10,
		C:          10,
		Seed:       1,
		TrackLocal: true,
		Workers:    4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer est.Close()

	for _, e := range edges {
		est.Add(e.U, e.V)
	}
	res := est.Result()

	exact := rept.ExactCount(edges, rept.ExactOptions{Local: true, Eta: true})
	fmt.Printf("exact triangles:     %d\n", exact.Tau)
	fmt.Printf("REPT estimate:       %.0f  (%.2f%% error)\n",
		res.Global, 100*abs(res.Global-float64(exact.Tau))/float64(exact.Tau))
	fmt.Printf("memory: %d sampled edges across all processors (stream has %d)\n",
		est.SampledEdges(), len(edges))

	// Predicted error from the closed form, for sizing m and c up front.
	variance := rept.TheoreticalVariance(10, 10, float64(exact.Tau), float64(exact.Eta))
	fmt.Printf("theoretical NRMSE:   %.4f\n", rept.TheoreticalNRMSE(variance, float64(exact.Tau)))

	// Local counts: top-5 nodes by estimated triangle membership.
	type kv struct {
		v rept.NodeID
		x float64
	}
	var top []kv
	for v, x := range res.Local {
		top = append(top, kv{v, x})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].x > top[j].x })
	fmt.Println("top nodes by estimated local triangle count:")
	for i := 0; i < 5 && i < len(top); i++ {
		fmt.Printf("  node %-6d τ̂_v=%-8.0f exact=%d\n",
			top[i].v, top[i].x, exact.TauV[top[i].v])
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
