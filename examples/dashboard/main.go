// Terminal dashboard for a running reptserve: scrapes /metrics on an
// interval and prints per-stage latency quantiles, ingest throughput,
// and shard balance — a minimal Grafana substitute built on the repo's
// own exposition parser, and a worked example of reading the stage
// histograms back out of a scrape.
//
//	reptserve -addr :8080 &
//	go run ./examples/dashboard -addr http://localhost:8080
//
// Each tick prints one block:
//
//	stage                     count        p50        p99
//	parse                      1203     41.0µs    312.0µs
//	dispatch                   1203     18.2µs    101.5µs
//	...
//
// The quantiles are reconstructed from the cumulative histogram buckets
// by linear interpolation, exactly the arithmetic a Prometheus
// histogram_quantile() would do; with 64 power-of-two buckets they are
// order-of-magnitude accurate, which is what latency triage needs.
package main

import (
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"rept/internal/obs"
)

// stages are the pipeline histograms in flow order.
var stages = []struct{ name, label string }{
	{"rept_stage_parse_seconds", "parse"},
	{"rept_stage_dispatch_seconds", "dispatch"},
	{"rept_stage_queue_wait_seconds", "queue wait"},
	{"rept_stage_apply_seconds", "apply"},
	{"rept_stage_barrier_seconds", "barrier"},
	{"rept_stage_wal_append_seconds", "wal append"},
	{"rept_stage_wal_fsync_seconds", "wal fsync"},
	{"rept_stage_view_publish_seconds", "view publish"},
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "reptserve base URL")
	interval := flag.Duration("interval", 2*time.Second, "scrape interval")
	once := flag.Bool("once", false, "print one block and exit")
	flag.Parse()

	var lastProcessed float64
	var lastScrape time.Time
	for {
		exp, err := scrape(*addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dashboard:", err)
			if *once {
				os.Exit(1)
			}
			time.Sleep(*interval)
			continue
		}
		now := time.Now()
		printBlock(exp, lastProcessed, lastScrape, now)
		if p, ok := exp.Sample("rept_processed_edges_total"); ok {
			lastProcessed, lastScrape = p, now
		}
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

func scrape(base string) (*obs.Exposition, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	return obs.ParseExposition(resp.Body)
}

func printBlock(exp *obs.Exposition, lastProcessed float64, lastScrape, now time.Time) {
	processed, _ := exp.Sample("rept_processed_edges_total")
	epoch, _ := exp.Sample("rept_view_epoch")
	age, _ := exp.Sample("rept_view_age_seconds")
	fmt.Printf("=== %s  processed=%.0f  epoch=%.0f  view_age=%.2fs",
		now.Format("15:04:05"), processed, epoch, age)
	if !lastScrape.IsZero() {
		if dt := now.Sub(lastScrape).Seconds(); dt > 0 {
			fmt.Printf("  ingest=%.0f edges/s", (processed-lastProcessed)/dt)
		}
	}
	fmt.Println()

	fmt.Printf("%-14s %10s %10s %10s\n", "stage", "count", "p50", "p99")
	for _, st := range stages {
		f := exp.Family(st.name)
		if f == nil {
			continue
		}
		count, _ := exp.Sample(st.name + "_count")
		if count == 0 {
			fmt.Printf("%-14s %10d %10s %10s\n", st.label, 0, "-", "-")
			continue
		}
		fmt.Printf("%-14s %10.0f %10s %10s\n", st.label, count,
			fmtSeconds(quantile(f, st.name, 0.50)),
			fmtSeconds(quantile(f, st.name, 0.99)))
	}

	// Shard balance: events applied per shard, flagged when skewed.
	if f := exp.Family("rept_shard_events_applied_total"); f != nil && len(f.Samples) > 0 {
		var parts []string
		var minV, maxV float64 = math.Inf(1), 0
		for i := range f.Samples {
			shard, _ := f.Samples[i].Get("shard")
			v := f.Samples[i].Value
			parts = append(parts, fmt.Sprintf("%s:%.0f", shard, v))
			minV, maxV = math.Min(minV, v), math.Max(maxV, v)
		}
		sort.Strings(parts)
		skew := ""
		if minV > 0 && maxV/minV > 1.5 {
			skew = "  (skewed!)"
		}
		fmt.Printf("shards applied: %s%s\n", strings.Join(parts, " "), skew)
	}
	fmt.Println()
}

// quantile reconstructs quantile q from the family's cumulative
// _bucket samples by linear interpolation inside the straddling bucket.
func quantile(f *obs.Family, name string, q float64) float64 {
	type bucket struct{ le, cum float64 }
	var bs []bucket
	for i := range f.Samples {
		s := &f.Samples[i]
		if s.Name != name+"_bucket" {
			continue
		}
		leStr, ok := s.Get("le")
		if !ok {
			continue
		}
		le := math.Inf(1)
		if leStr != "+Inf" {
			fmt.Sscanf(leStr, "%g", &le)
		}
		bs = append(bs, bucket{le, s.Value})
	}
	if len(bs) == 0 {
		return math.NaN()
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
	total := bs[len(bs)-1].cum
	rank := q * total
	prevLe, prevCum := 0.0, 0.0
	for _, b := range bs {
		if b.cum >= rank {
			if b.cum == prevCum || math.IsInf(b.le, 1) {
				return prevLe
			}
			return prevLe + (b.le-prevLe)*(rank-prevCum)/(b.cum-prevCum)
		}
		prevLe, prevCum = b.le, b.cum
	}
	return bs[len(bs)-1].le
}

func fmtSeconds(s float64) string {
	if math.IsNaN(s) {
		return "-"
	}
	return time.Duration(s * float64(time.Second)).Round(100 * time.Nanosecond).String()
}
