// Simulated cluster deployment of REPT — the distributed setting the
// paper targets ("a processor, referring to either a thread on a
// multi-core machine or a machine in a distributed computing
// environment", Section I).
//
// Each "machine" is a goroutine hosting one full REPT processor group
// (m processors sharing an independent group hash, i.e. rept.New with
// C = M), fed by a coordinator that broadcasts the edge stream over
// channels. Group estimates are independent and unbiased with variance
// τ(m−1) (paper Theorem 3, c = m), so averaging K machines reproduces
// exactly REPT(p = 1/m, c = K·m): variance τ(m−1)/K, the c₂ = 0 case of
// Section III-B. Within a machine, each of the m processors stores only
// ≈ |E|/m sampled edges — the paper's per-processor memory model.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"sync"

	"rept"
	"rept/internal/gen"
)

const (
	machines  = 4
	m         = 8 // per-processor sampling probability p = 1/8
	batchSize = 4096
)

type result struct {
	machine      int
	est          *rept.Estimator
	estimate     float64
	sampledEdges int
}

func main() {
	edges := gen.Shuffle(gen.HolmeKim(8000, 8, 0.5, 21), 13)
	exact := rept.ExactCount(edges, rept.ExactOptions{Eta: true})
	fmt.Printf("stream: %d edges, exact triangles: %d\n", len(edges), exact.Tau)

	// One broadcast channel per machine (machines consume at their own
	// pace; batches are read-only).
	chans := make([]chan []rept.Edge, machines)
	results := make(chan result, machines)
	var wg sync.WaitGroup
	for k := 0; k < machines; k++ {
		chans[k] = make(chan []rept.Edge, 4)
		wg.Add(1)
		go func(id int, in <-chan []rept.Edge) {
			defer wg.Done()
			// Every machine runs one full group: C = M with its own seed,
			// so group hashes are independent across machines.
			est, err := rept.New(rept.Config{M: m, C: m, Seed: int64(1000 + id), TrackEta: true})
			if err != nil {
				log.Fatal(err)
			}
			for batch := range in {
				for _, e := range batch {
					est.Add(e.U, e.V)
				}
			}
			// Hand the estimator back to the coordinator for merging;
			// the coordinator closes it after Merge.
			results <- result{id, est, est.Global(), est.SampledEdges()}
		}(k, chans[k])
	}

	// Coordinator: broadcast the stream in batches.
	for lo := 0; lo < len(edges); lo += batchSize {
		hi := lo + batchSize
		if hi > len(edges) {
			hi = len(edges)
		}
		batch := edges[lo:hi]
		for _, ch := range chans {
			ch <- batch
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	close(results)

	totalMem := 0
	fmt.Println("\nmachine  estimate   edges-per-processor")
	collected := make([]result, 0, machines)
	for r := range results {
		collected = append(collected, r)
	}
	ests := make([]*rept.Estimator, machines)
	for _, r := range collected {
		fmt.Printf("%7d  %9.0f  %19d\n", r.machine, r.estimate, r.sampledEdges/m)
		totalMem += r.sampledEdges
		ests[r.machine] = r.est
	}

	// Merge the machines' counters into the exact REPT(c = K·m) estimate,
	// including a plug-in variance for a confidence interval.
	merged, err := rept.Merge(ests...)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range ests {
		e.Close()
	}

	tau := float64(exact.Tau)
	fmt.Printf("\ncluster estimate (merged, %d machines) = %.0f (%.2f%% error)\n",
		machines, merged.Global, 100*abs(merged.Global-tau)/tau)
	fmt.Printf("95%% CI: %.0f ± %.0f\n", merged.Global, 1.96*merged.StdErr())
	fmt.Printf("cluster memory: %d processors × ≈%d edges each (stream: %d)\n",
		machines*m, totalMem/(machines*m), len(edges))

	// The cluster is statistically REPT with c = K·m processors.
	v := rept.TheoreticalVariance(m, machines*m, tau, float64(exact.Eta))
	fmt.Printf("theoretical NRMSE for c = %d: %.4f\n",
		machines*m, rept.TheoreticalNRMSE(v, tau))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
