// Heavy-hitter monitoring: watch the top-K nodes by local triangle count
// on a power-law stream with planted co-hub pairs (the structure behind
// spam/sybil rings), querying ONLY epoch views while producers keep
// ingesting — no query ever takes a cross-shard barrier.
//
//	go run ./examples/topk
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"rept"
	"rept/internal/gen"
)

func main() {
	// A heavy-tailed Holme–Kim base graph plus co-hub overlays: hub pairs
	// sharing an audience of followers, each follower closing a triangle
	// through the hub edge. The hubs (ids >= 4000) are the heavy hitters
	// a monitoring pipeline wants to surface.
	base := gen.HolmeKim(4000, 5, 0.3, 21)
	hubs := gen.CoHubOverlay(4000, 3, 120, 4000, 22)
	edges := gen.Shuffle(append(base, hubs...), 23)
	exact := rept.ExactCount(edges, rept.ExactOptions{Local: true})
	fmt.Printf("stream: %d edges, %d triangles, 6 planted hubs\n", len(edges), exact.Tau)

	est, err := rept.NewConcurrent(rept.ConcurrentConfig{
		M: 8, C: 64, Shards: 4, Seed: 1,
		TrackLocal:   true,
		TrackDegrees: true, // clustering coefficients need degrees
	})
	if err != nil {
		log.Fatal(err)
	}
	defer est.Close()

	// Views republish every 20ms — or sooner, whenever 10k new edges
	// arrive — so the monitor's answers are never more than one interval
	// stale, and every answer reports exactly how stale it is.
	views, err := est.StartViews(rept.ViewConfig{
		Interval:   20 * time.Millisecond,
		EveryEdges: 10_000,
		TopK:       10,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One producer streams the edges in arrival order; the monitor loop
	// below reads concurrently, exactly like dashboard traffic against
	// reptserve's /topk endpoint.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		const batch = 5_000
		for lo := 0; lo < len(edges); lo += batch {
			est.AddAll(edges[lo:min(lo+batch, len(edges))])
			time.Sleep(2 * time.Millisecond) // pace the stream for the demo
		}
	}()

	seen := uint64(0)
	for seen < uint64(len(edges)) {
		time.Sleep(25 * time.Millisecond)
		v := views.View() // atomic load: never blocks, never barriers
		if v.Processed == seen && seen > 0 {
			continue
		}
		seen = v.Processed
		fmt.Printf("epoch %3d  age %6s  %7d edges  top:", v.Epoch, v.Age().Round(time.Millisecond), v.Processed)
		for _, st := range v.Top(3) {
			fmt.Printf("  #%d τ̂=%.0f", st.Node, st.Local)
		}
		fmt.Println()
	}
	wg.Wait()

	// Final ranking from a fresh epoch, with clustering coefficients:
	// hubs rank by raw triangle count, while their cc stays low — the
	// wedge-closing signature that separates shared-audience hubs from
	// genuinely dense communities.
	v := views.Refresh()
	fmt.Println("\nfinal top-10 (fresh epoch):")
	fmt.Println("  rank   node      τ̂     exact    deg      cc")
	for i, st := range v.Top(10) {
		cc := "    -"
		if c, ok := v.CC(st.Node); ok {
			cc = fmt.Sprintf("%.3f", c)
		}
		fmt.Printf("  %4d  %5d  %7.0f  %7d  %5d  %s\n",
			i+1, st.Node, st.Local, exact.TauV[st.Node], st.Degree, cc)
	}

	// How good is the view ranking? Compare against the exact top-10.
	type pair struct {
		n rept.NodeID
		t uint64
	}
	all := make([]pair, 0, len(exact.TauV))
	for n, tv := range exact.TauV {
		all = append(all, pair{n, tv})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].t != all[j].t {
			return all[i].t > all[j].t
		}
		return all[i].n < all[j].n
	})
	exactTop := make(map[rept.NodeID]bool, 10)
	for _, p := range all[:10] {
		exactTop[p.n] = true
	}
	hits := 0
	for _, st := range v.Top(10) {
		if exactTop[st.Node] {
			hits++
		}
	}
	fmt.Printf("\noverlap with exact top-10: %d/10\n", hits)
}
