package rept_test

import (
	"math"
	"path/filepath"
	"testing"

	"rept"
	"rept/internal/gen"
	"rept/internal/graph"
	"rept/internal/stream"
)

// TestPipelineFileToEstimate exercises the full user pipeline: generate a
// stream, write it to disk, stream it back through a FileSource with
// dedup, estimate with REPT, and compare against exact ground truth.
func TestPipelineFileToEstimate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stream.txt")

	edges := gen.Shuffle(gen.HolmeKim(800, 6, 0.5, 7), 3)
	// Inject noise the pipeline must clean: duplicates and self-loops.
	noisy := make([]graph.Edge, 0, len(edges)+20)
	noisy = append(noisy, edges...)
	for i := 0; i < 10; i++ {
		noisy = append(noisy, edges[i*3], graph.Edge{U: graph.NodeID(i), V: graph.NodeID(i)})
	}
	if err := rept.WriteEdgeListFile(path, noisy); err != nil {
		t.Fatal(err)
	}

	src, err := stream.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	clean := stream.Dedup(src, true)

	est, err := rept.New(rept.Config{M: 4, C: 8, Seed: 5, TrackLocal: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer est.Close()
	if err := stream.Drain(clean, func(e graph.Edge) { est.Add(e.U, e.V) }); err != nil {
		t.Fatal(err)
	}
	if clean.Duplicates() != 10 || clean.SelfLoops() != 10 {
		t.Errorf("dedup saw %d dups, %d loops; want 10, 10", clean.Duplicates(), clean.SelfLoops())
	}

	exact := rept.ExactCount(edges, rept.ExactOptions{Eta: true})
	tau := float64(exact.Tau)
	sigma := math.Sqrt(rept.TheoreticalVariance(4, 8, tau, float64(exact.Eta)))
	if got := est.Global(); math.Abs(got-tau) > 6*sigma {
		t.Errorf("Global = %v, want %v ± %v", got, tau, 6*sigma)
	}
	if est.Processed() != uint64(len(edges)) {
		t.Errorf("Processed = %d, want %d deduped edges", est.Processed(), len(edges))
	}
}

// TestIntervalWorkflow pins the per-interval workload from paper §II: a
// fresh estimator per interval, mid-stream snapshots on a shared one.
func TestIntervalWorkflow(t *testing.T) {
	edges := gen.Shuffle(gen.HolmeKim(600, 5, 0.5, 9), 11)
	windows := stream.Intervals(edges, 4)

	// Per-interval estimators see only their window.
	var perWindow []float64
	for i, win := range windows {
		est, err := rept.New(rept.Config{M: 3, C: 3, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		est.AddAll(win)
		perWindow = append(perWindow, est.Global())
		est.Close()
	}
	// A shared estimator snapshots cumulative counts; the final snapshot
	// covers the whole stream.
	shared, err := rept.New(rept.Config{M: 3, C: 3, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	defer shared.Close()
	var cumulative []float64
	for _, win := range windows {
		shared.AddAll(win)
		cumulative = append(cumulative, shared.Global())
	}
	for i := 1; i < len(cumulative); i++ {
		if cumulative[i] < cumulative[i-1] {
			t.Errorf("cumulative estimate decreased: %v", cumulative)
		}
	}
	exact := rept.ExactCount(edges, rept.ExactOptions{Eta: true})
	tau := float64(exact.Tau)
	sigma := math.Sqrt(rept.TheoreticalVariance(3, 3, tau, float64(exact.Eta)))
	if math.Abs(cumulative[3]-tau) > 6*sigma {
		t.Errorf("final snapshot = %v, want %v ± %v", cumulative[3], tau, 6*sigma)
	}
	// Interval sums differ from the full count (cross-window triangles),
	// pinning that intervals are independent streams.
	sum := 0.0
	for _, x := range perWindow {
		sum += x
	}
	if sum > cumulative[3] {
		t.Logf("per-window sum %v vs cumulative %v (cross-window triangles)", sum, cumulative[3])
	}
}

// TestExtremeNodeIDs: estimators must handle the full uint32 id range.
func TestExtremeNodeIDs(t *testing.T) {
	const maxID = rept.NodeID(^uint32(0))
	edges := []rept.Edge{
		{U: 0, V: maxID},
		{U: maxID, V: maxID - 1},
		{U: maxID - 1, V: 0}, // closes triangle {0, maxID-1, maxID}
		{U: 1, V: maxID},     // extra wedges
		{U: 1, V: maxID - 1}, // closes triangle {1, maxID-1, maxID}
	}
	exact := rept.ExactCount(edges, rept.ExactOptions{Local: true})
	if exact.Tau != 2 {
		t.Fatalf("exact Tau = %d, want 2", exact.Tau)
	}
	est, err := rept.New(rept.Config{M: 1, C: 1, Seed: 1, TrackLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	defer est.Close()
	est.AddAll(edges)
	if got := est.Global(); got != 2 {
		t.Errorf("Global = %v, want 2", got)
	}
	if got := est.Local(maxID); got != 2 {
		t.Errorf("Local(maxID) = %v, want 2", got)
	}
}

// TestTriangleFreeStreams: all estimators report exactly zero on
// triangle-free graphs at any sampling rate.
func TestTriangleFreeStreams(t *testing.T) {
	streams := map[string][]rept.Edge{
		"star":  gen.Star(200),
		"cycle": gen.Cycle(200),
	}
	for name, edges := range streams {
		est, err := rept.New(rept.Config{M: 3, C: 5, Seed: 2, TrackLocal: true})
		if err != nil {
			t.Fatal(err)
		}
		est.AddAll(edges)
		if got := est.Global(); got != 0 {
			t.Errorf("%s: Global = %v, want 0", name, got)
		}
		if locals := est.Locals(); len(locals) != 0 {
			t.Errorf("%s: %d non-zero locals, want 0", name, len(locals))
		}
		est.Close()
	}
}

// TestEmptyAndTinyStreams: zero and sub-triangle streams are fine.
func TestEmptyAndTinyStreams(t *testing.T) {
	est, err := rept.New(rept.Config{M: 2, C: 3, Seed: 1, TrackLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	defer est.Close()
	if got := est.Global(); got != 0 {
		t.Errorf("empty stream Global = %v, want 0", got)
	}
	est.Add(1, 2)
	est.Add(2, 3)
	if got := est.Global(); got != 0 {
		t.Errorf("two-edge stream Global = %v, want 0", got)
	}
}
