package rept_test

import (
	"bytes"
	"errors"
	"testing"

	"rept"
	"rept/internal/exper"
	"rept/internal/gen"
)

func durableConfig() rept.ConcurrentConfig {
	return rept.ConcurrentConfig{
		M: 3, C: 9, Shards: 3, Seed: 41,
		TrackLocal: true, FullyDynamic: true, TrackDegrees: true,
		BatchSize: 128,
	}
}

// durableStream is loop-free and well-formed (a prefix of a well-formed
// stream is well-formed) so the recovered estimator can be compared bit
// for bit against a reference fed the same prefix. Well-formedness
// matters beyond estimate quality here: a degree table restored from a
// checkpoint tracks pre-checkpoint deletions through its legacy budget,
// which matches the never-restarted table only on well-formed input.
func durableStream(n int) []rept.Update {
	base := gen.Shuffle(gen.HolmeKim(900, 5, 0.4, 23), 7)
	ups := exper.DynStream(base, exper.DynOptions{Pattern: exper.Churn, DeleteFrac: 0.3, Seed: 7})
	if len(ups) < n {
		panic("durableStream: base graph too small")
	}
	return ups[:n]
}

// TestResumeDurableRoundTrip drives the full public lifecycle on a real
// directory: durable ingest with automatic compaction, clean close,
// reopen, verify the estimator picked up exactly where it stopped, ingest
// more, and confirm the final state matches a never-restarted reference.
func TestResumeDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig()
	ups := durableStream(4000)

	opt := rept.WALOptions{Dir: dir, SegmentBytes: 4096, CompactEvery: 1000}
	c, err := rept.ResumeDurable(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Position(); got != 0 {
		t.Fatalf("fresh durable estimator at position %d, want 0", got)
	}
	for i := 0; i < 2000; i += 250 {
		if err := c.ApplyAllDurable(ups[i : i+250]); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.WALStats(); st.DurablePos != 2000 {
		t.Fatalf("durable position %d, want 2000", st.DurablePos)
	}
	c.Close()

	c2, err := rept.ResumeDurable(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if got := c2.Position(); got != 2000 {
		t.Fatalf("reopened at position %d, want 2000", got)
	}
	if err := c2.ApplyAllDurable(ups[2000:]); err != nil {
		t.Fatal(err)
	}

	ref, err := rept.NewConcurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	ref.ApplyAll(ups)

	var got, want bytes.Buffer
	if err := c2.WriteSnapshot(&got); err != nil {
		t.Fatal(err)
	}
	if err := ref.WriteSnapshot(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("restarted durable estimator differs from never-restarted reference")
	}
}

// TestResumeDurableManualCompaction exercises CompactWAL and verifies the
// checkpoint advances and recovery still lands on the right position.
func TestResumeDurableManualCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig()
	opt := rept.WALOptions{Dir: dir, SegmentBytes: 2048}
	c, err := rept.ResumeDurable(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	ups := durableStream(1500)
	if err := c.ApplyAllDurable(ups[:1000]); err != nil {
		t.Fatal(err)
	}
	if err := c.CompactWAL(); err != nil {
		t.Fatal(err)
	}
	if st := c.WALStats(); st.CheckpointPos != 1000 {
		t.Fatalf("checkpoint at %d, want 1000", st.CheckpointPos)
	}
	if err := c.ApplyAllDurable(ups[1000:]); err != nil {
		t.Fatal(err)
	}
	c.Close()

	c2, err := rept.ResumeDurable(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if got := c2.Position(); got != 1500 {
		t.Fatalf("recovered position %d, want 1500", got)
	}
}

// TestResumeDurableRejectsForeignLog: reopening a log directory under a
// different statistical configuration must fail with ErrWALMismatch
// before any event replays.
func TestResumeDurableRejectsForeignLog(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig()
	c, err := rept.ResumeDurable(cfg, rept.WALOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ApplyAllDurable(durableStream(100)); err != nil {
		t.Fatal(err)
	}
	c.Close()

	other := cfg
	other.Seed++
	if _, err := rept.ResumeDurable(other, rept.WALOptions{Dir: dir}); !errors.Is(err, rept.ErrWALMismatch) {
		t.Fatalf("resume under foreign config: %v, want ErrWALMismatch", err)
	}
}

// TestResumeDurableRejectsDeletionsWhenStatic: a log written by a
// fully-dynamic estimator must not replay into a static one.
func TestResumeDurableRejectsDeletionsWhenStatic(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig()
	c, err := rept.ResumeDurable(cfg, rept.WALOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ApplyAllDurable(durableStream(200)); err != nil {
		t.Fatal(err)
	}
	c.Close()

	static := cfg
	static.FullyDynamic = false
	if _, err := rept.ResumeDurable(static, rept.WALOptions{Dir: dir}); !errors.Is(err, rept.ErrWALMismatch) {
		t.Fatalf("static resume of dynamic log: %v, want ErrWALMismatch", err)
	}
}

// TestDurableSelfLoopsNotLogged documents the self-loop limitation: loops
// are filtered before the log, so the SelfLoops tally has
// checkpoint granularity across restarts while Position is exact.
func TestDurableSelfLoopsNotLogged(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig()
	c, err := rept.ResumeDurable(cfg, rept.WALOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ups := []rept.Update{{U: 1, V: 2}, {U: 3, V: 3}, {U: 2, V: 4}}
	if err := c.ApplyAllDurable(ups); err != nil {
		t.Fatal(err)
	}
	if got := c.SelfLoops(); got != 1 {
		t.Fatalf("SelfLoops = %d, want 1", got)
	}
	if got := c.Position(); got != 2 {
		t.Fatalf("Position = %d, want 2 (loops are not stream events)", got)
	}
	c.Close()

	c2, err := rept.ResumeDurable(cfg, rept.WALOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if got := c2.Position(); got != 2 {
		t.Fatalf("recovered Position = %d, want 2", got)
	}
	if got := c2.SelfLoops(); got != 0 {
		t.Fatalf("recovered SelfLoops = %d, want 0 (no checkpoint covered the loop)", got)
	}
	// After a checkpoint the tally persists.
	if err := c2.CompactWAL(); err != nil {
		t.Fatal(err)
	}
	c2.Add(5, 5)
	c2.Close()

	c3, err := rept.ResumeDurable(cfg, rept.WALOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if got := c3.SelfLoops(); got != 0 {
		t.Fatalf("post-checkpoint SelfLoops = %d, want 0 (loop arrived after the checkpoint)", got)
	}
}
