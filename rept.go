package rept

import (
	"fmt"
	"io"
	"math"

	"rept/internal/core"
	"rept/internal/graph"
	"rept/internal/snapshot"
)

// ErrNotDynamic is panicked when a deletion is fed to an estimator built
// without FullyDynamic.
var ErrNotDynamic = core.ErrNotDynamic

// ErrSnapshotMismatch is the sentinel wrapped by Resume/ResumeConcurrent
// errors when the snapshot's config fingerprint (M, C, Seed, TrackLocal,
// TrackEta, FullyDynamic — and, for ResumeConcurrent, the effective
// shard count and TrackDegrees) does not match the configuration being
// restored into. The error text names every differing field.
var ErrSnapshotMismatch = snapshot.ErrMismatch

// NodeID identifies a node of the streamed graph.
type NodeID = graph.NodeID

// Edge is one undirected stream edge.
type Edge = graph.Edge

// Update is one event of a fully-dynamic edge stream: the insertion of
// {U, V}, or its deletion when Del is set. Insert-only streams are the
// Del == false special case.
type Update = graph.Update

// Insert returns the insertion event for {u, v}.
func Insert(u, v NodeID) Update { return Update{U: u, V: v} }

// Remove returns the deletion event for {u, v}.
func Remove(u, v NodeID) Update { return Update{U: u, V: v, Del: true} }

// Inserts wraps an insert-only edge stream as an update stream.
func Inserts(edges []Edge) []Update { return graph.Inserts(edges) }

// Counter is the streaming interface shared by the REPT estimator and the
// baseline estimators in this package: feed edges one at a time, read
// estimates at any point.
type Counter interface {
	// Add feeds one stream edge; self-loops are ignored.
	Add(u, v NodeID)
	// Global returns the current estimate of the global triangle count τ.
	Global() float64
	// Local returns the current estimate of the local triangle count τ_v.
	Local(v NodeID) float64
}

// Config configures a REPT estimator.
type Config struct {
	// M sets the edge sampling probability p = 1/M for every logical
	// processor. M = 1 yields exact counting. Required, >= 1.
	M int
	// C is the number of logical processors. Required, >= 1. Estimation
	// error shrinks as C grows (paper Theorem 3): for C = c₁·M the
	// variance is τ(M−1)/c₁.
	C int
	// Seed makes the estimator deterministic; two estimators with equal
	// Config produce identical estimates on identical streams.
	Seed int64
	// TrackLocal enables per-node estimates (Local/Locals). Costs memory
	// proportional to the number of nodes seen in sampled semi-triangles.
	TrackLocal bool
	// FullyDynamic enables edge deletions (Delete/ApplyAll with deletion
	// events): estimates then track the NET triangle count of the live
	// graph under churn, with the same unbiasedness and unchanged scaling
	// factors (see the package documentation, "Fully-dynamic streams").
	// Insert-only behavior is bit-identical with the flag on or off; the
	// flag is part of the snapshot fingerprint.
	FullyDynamic bool
	// TrackEta forces the η⁽ⁱ⁾ bookkeeping of paper Algorithm 2 even when
	// the (M, C) combination does not require it, which makes
	// Estimate.Variance available for every configuration. The C > M,
	// C%M ≠ 0 case enables it automatically.
	TrackEta bool
	// Workers spreads the logical processors over this many goroutines
	// (values <= 1 run single-threaded). C is a statistical parameter and
	// Workers an execution detail; results do not depend on Workers.
	Workers int
	// BatchSize is the edge-broadcast batch length of the parallel path
	// (default 2048; ignored when Workers <= 1). Like Workers it is an
	// execution detail: results do not depend on it.
	BatchSize int
}

// Estimate is a snapshot of the estimator's output.
type Estimate struct {
	// Global is τ̂, the estimated number of triangles seen so far.
	Global float64
	// Local maps nodes to τ̂_v. Nil unless Config.TrackLocal. Nodes absent
	// from the map have estimate 0.
	Local map[NodeID]float64
	// Variance is the plug-in estimate of Var(Global): the paper's closed
	// form with τ̂ and η̂ substituted for τ and η. NaN when the required η
	// counters were not tracked (see Config.TrackEta). A normal-theory
	// confidence interval is Global ± z·StdErr().
	Variance float64
	// EtaHat is the streaming estimate η̂ of the paper's η statistic (0
	// when not tracked). Large η̂/Global ratios signal streams where
	// naive parallel sampling would do badly.
	EtaHat float64
}

// StdErr returns sqrt(Variance) (NaN when Variance is unavailable).
func (e Estimate) StdErr() float64 { return math.Sqrt(e.Variance) }

// Estimator is the streaming REPT estimator (paper Algorithms 1 and 2).
// It is driven by a single caller; parallelism is internal (see
// Config.Workers). Close it to release worker goroutines.
type Estimator struct {
	eng *core.Engine
	cfg Config
}

var _ Counter = (*Estimator)(nil)

// coreConfig maps the public configuration onto the engine's. New and
// Resume must build from the identical mapping or a restored estimator
// could silently differ from the one that wrote the snapshot.
func (c Config) coreConfig() core.Config {
	return core.Config{
		M:            c.M,
		C:            c.C,
		Seed:         c.Seed,
		TrackLocal:   c.TrackLocal,
		FullyDynamic: c.FullyDynamic,
		TrackEta:     c.TrackEta,
		Workers:      c.Workers,
		BatchSize:    c.BatchSize,
	}
}

// New builds a REPT estimator.
func New(cfg Config) (*Estimator, error) {
	eng, err := core.NewEngine(cfg.coreConfig())
	if err != nil {
		return nil, fmt.Errorf("rept: %w", err)
	}
	return &Estimator{eng: eng, cfg: cfg}, nil
}

// Add feeds one stream edge. Self-loops are ignored.
func (e *Estimator) Add(u, v NodeID) { e.eng.Add(u, v) }

// AddEdge feeds one stream edge.
func (e *Estimator) AddEdge(edge Edge) { e.eng.Add(edge.U, edge.V) }

// AddAll feeds a slice of stream edges in order.
func (e *Estimator) AddAll(edges []Edge) { e.eng.AddAll(edges) }

// Delete feeds one stream edge deletion: the estimator's counts then
// track the net (live) graph. It requires Config.FullyDynamic and panics
// with ErrNotDynamic otherwise. Deleting an edge that was never inserted
// is a stream-contract violation: the estimator stays deterministic and
// finite, but its estimate is no longer meaningful (see
// Estimator.PairingStats).
func (e *Estimator) Delete(u, v NodeID) { e.eng.Delete(u, v) }

// DeleteEdge feeds one stream edge deletion.
func (e *Estimator) DeleteEdge(edge Edge) { e.eng.Delete(edge.U, edge.V) }

// Apply feeds one signed stream event (deletions require
// Config.FullyDynamic).
func (e *Estimator) Apply(up Update) { e.eng.Apply(up) }

// ApplyAll feeds a slice of signed stream events in order.
func (e *Estimator) ApplyAll(ups []Update) { e.eng.ApplyAll(ups) }

// Result returns the current estimates. It may be called mid-stream; the
// estimator keeps accepting edges afterwards.
func (e *Estimator) Result() Estimate {
	res := e.eng.Result()
	return Estimate{Global: res.Global, Local: res.Local, Variance: res.Variance, EtaHat: res.EtaHat}
}

// Global returns the current global triangle count estimate.
func (e *Estimator) Global() float64 { return e.eng.Result().Global }

// Local returns the current local triangle count estimate for v (0 if the
// node was never seen or TrackLocal is off).
func (e *Estimator) Local(v NodeID) float64 { return e.eng.Result().Local[v] }

// Locals returns all non-zero local estimates (nil unless TrackLocal).
func (e *Estimator) Locals() map[NodeID]float64 { return e.eng.Result().Local }

// Processed returns the number of non-loop events (insertions plus
// deletions) fed so far.
func (e *Estimator) Processed() uint64 { return e.eng.Processed() }

// Deleted returns the number of non-loop deletion events fed so far
// (always 0 unless Config.FullyDynamic).
func (e *Estimator) Deleted() uint64 { return e.eng.Deleted() }

// PairingStats reports the random-pairing deletion tallies: deletions of
// sampled edges (d_i), of live-but-unsampled edges (d_o), and of edges
// that were never inserted at all ("phantom" deletions, which flag a
// malformed stream). All zero unless Config.FullyDynamic.
type PairingStats = core.PairingStats

// PairingStats returns the estimator-wide random-pairing deletion
// tallies. A non-zero PhantomDeletes means the stream violated the
// delete-only-live-edges contract and the estimate is unreliable.
func (e *Estimator) PairingStats() PairingStats { return e.eng.PairingCounters() }

// SampledEdges returns the number of edges currently stored across all
// logical processors (expected ≈ C·|E|/M), a memory diagnostic.
func (e *Estimator) SampledEdges() int { return e.eng.SampledEdges() }

// EtaSaturations reports how many per-edge closing-counter updates were
// clamped at the int32 boundary instead of wrapping — 0 on every
// realistic stream. A non-zero value flags an adversarially hot edge
// whose η̂ contribution is now a bounded under-estimate; treat the
// variance report as optimistic.
func (e *Estimator) EtaSaturations() uint64 { return e.eng.EtaSaturations() }

// WriteSnapshot writes the estimator's complete state — config
// fingerprint, every logical processor's sampled edges and counters, and
// the processed/self-loop tallies — to w in the versioned binary snapshot
// format (see the package documentation). The estimator stays usable;
// checkpoints may be taken mid-stream. Resume with an equal Config
// rebuilds an estimator that produces bit-for-bit identical estimates on
// any suffix stream.
func (e *Estimator) WriteSnapshot(w io.Writer) error { return e.eng.WriteSnapshot(w) }

// Resume reads a snapshot written by Estimator.WriteSnapshot and restores
// it into a new estimator built for cfg. The snapshot's fingerprint must
// match cfg's statistical fields exactly (M, C, Seed, TrackLocal,
// TrackEta); Workers and BatchSize are execution details and may differ.
// A mismatch is rejected with an error wrapping ErrSnapshotMismatch that
// names every differing field.
func Resume(cfg Config, r io.Reader) (*Estimator, error) {
	eng, err := core.ResumeEngine(cfg.coreConfig(), r)
	if err != nil {
		return nil, fmt.Errorf("rept: %w", err)
	}
	return &Estimator{eng: eng, cfg: cfg}, nil
}

// Close releases worker goroutines. The estimator must not be used after
// Close. Close is idempotent and safe with Workers <= 1.
func (e *Estimator) Close() { e.eng.Close() }

// Config returns the configuration the estimator was built with.
func (e *Estimator) Config() Config { return e.cfg }
