package rept

import (
	"io"

	"rept/internal/obs"
)

// Telemetry is the estimator's observability bundle: a metrics registry
// with the standard pipeline stage histograms, per-shard series, Go
// runtime health series, and a flight recorder of recent pipeline
// events. Attach one to a Concurrent estimator via
// ConcurrentConfig.Telemetry (or DurableOptions' config) before
// construction; recording is zero-allocation and adds only nil-guarded
// atomic work to the ingest path, so a production deployment runs with
// it on.
//
// A Telemetry value must instrument at most ONE estimator: the standard
// series names register once per registry, and a second estimator would
// panic on the duplicate registration — by design, at startup.
//
// The accessors expose internal/obs types directly; they are usable
// only from inside this module (tests, cmd/, examples/), which is
// exactly their audience — external consumers scrape the rendered
// exposition instead.
type Telemetry struct {
	reg  *obs.Registry
	pipe *obs.Pipeline
}

// NewTelemetry builds a registry preloaded with the standard pipeline
// instruments, the Go runtime series, and a flight recorder of
// obs.DefaultFlightEvents events.
func NewTelemetry() *Telemetry {
	reg := obs.NewRegistry()
	pipe := obs.NewPipeline(reg)
	obs.RegisterRuntime(reg)
	return &Telemetry{reg: reg, pipe: pipe}
}

// Registry returns the underlying metrics registry, for registering
// additional series (the HTTP server adds its own request counters
// here).
func (t *Telemetry) Registry() *obs.Registry { return t.reg }

// Pipeline returns the stage instruments bundle.
func (t *Telemetry) Pipeline() *obs.Pipeline { return t.pipe }

// Flight returns the flight recorder.
func (t *Telemetry) Flight() *obs.Flight { return t.pipe.Flight }

// WritePrometheus renders every registered series in the Prometheus
// text exposition format.
func (t *Telemetry) WritePrometheus(w io.Writer) error { return t.reg.WritePrometheus(w) }

// obsPipeline returns the pipeline to wire into internal layers, nil
// when t is nil — so construction sites need no guard.
func (t *Telemetry) obsPipeline() *obs.Pipeline {
	if t == nil {
		return nil
	}
	return t.pipe
}

// Telemetry returns the bundle attached at construction, or nil.
func (c *Concurrent) Telemetry() *Telemetry { return c.tele }
