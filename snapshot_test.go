package rept_test

import (
	"bytes"
	"errors"
	"math"
	"math/rand/v2"
	"reflect"
	"sync"
	"testing"

	"rept"
	"rept/internal/gen"
)

func sameEstimate(a, b rept.Estimate) bool {
	if a.Global != b.Global || a.EtaHat != b.EtaHat {
		return false
	}
	if a.Variance != b.Variance && !(math.IsNaN(a.Variance) && math.IsNaN(b.Variance)) {
		return false
	}
	return reflect.DeepEqual(a.Local, b.Local)
}

// TestEstimatorSnapshotRoundTrip: the public single-caller estimator
// round-trips through WriteSnapshot/Resume with identical estimates.
func TestEstimatorSnapshotRoundTrip(t *testing.T) {
	edges := gen.Shuffle(gen.HolmeKim(250, 5, 0.4, 3), 8)
	cfg := rept.Config{M: 6, C: 20, Seed: 10, TrackLocal: true, TrackEta: true}
	cut := len(edges) * 2 / 3

	full, err := rept.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full.AddAll(edges)
	want := full.Result()
	full.Close()

	first, err := rept.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first.AddAll(edges[:cut])
	var buf bytes.Buffer
	if err := first.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	first.Close()

	resumed, err := rept.Resume(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	resumed.AddAll(edges[cut:])
	if got := resumed.Result(); !sameEstimate(got, want) {
		t.Errorf("resumed estimate %+v, want %+v", got, want)
	}
}

// TestConcurrentSnapshotRoundTripProperty: for random (M, C, TrackLocal,
// TrackEta, Shards) configurations, a Concurrent estimator interrupted by
// snapshot → ResumeConcurrent → continue must match an uninterrupted run
// bit-for-bit. Feeding is single-caller so both instances see the same
// arrival order (estimates are order-dependent through η); the tier-1
// -race run still exercises the full concurrent machinery underneath.
func TestConcurrentSnapshotRoundTripProperty(t *testing.T) {
	edges := gen.Shuffle(gen.HolmeKim(300, 5, 0.4, 7), 4)
	rng := rand.New(rand.NewPCG(7, 11))

	for trial := 0; trial < 12; trial++ {
		cfg := rept.ConcurrentConfig{
			M:          1 + rng.IntN(8),
			C:          1 + rng.IntN(24),
			Shards:     rng.IntN(4), // 0 = auto
			Seed:       int64(rng.Uint64()),
			TrackLocal: rng.IntN(2) == 0,
			TrackEta:   rng.IntN(2) == 0,
			BatchSize:  1 + rng.IntN(200),
		}
		cut := rng.IntN(len(edges) + 1)

		full, err := rept.NewConcurrent(cfg)
		if err != nil {
			t.Fatal(err)
		}
		full.AddAll(edges)
		want := full.Snapshot()
		full.Close()

		first, err := rept.NewConcurrent(cfg)
		if err != nil {
			t.Fatal(err)
		}
		first.AddAll(edges[:cut])
		var buf bytes.Buffer
		if err := first.WriteSnapshot(&buf); err != nil {
			t.Fatalf("trial %d (%+v cut %d): WriteSnapshot: %v", trial, cfg, cut, err)
		}
		first.Close()

		resumed, err := rept.ResumeConcurrent(cfg, bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d (%+v cut %d): ResumeConcurrent: %v", trial, cfg, cut, err)
		}
		resumed.AddAll(edges[cut:])
		if got := resumed.Snapshot(); !sameEstimate(got, want) {
			t.Errorf("trial %d (%+v cut %d): resumed diverged: %+v vs %+v", trial, cfg, cut, got, want)
		}
		if resumed.Processed() != uint64(len(edges)) {
			t.Errorf("trial %d: Processed = %d, want %d", trial, resumed.Processed(), len(edges))
		}
		resumed.Close()
	}
}

// TestConcurrentSnapshotWhileStreaming races WriteSnapshot against
// concurrent producers (data-race probe under the tier-1 -race run) and
// checks every snapshot restores cleanly.
func TestConcurrentSnapshotWhileStreaming(t *testing.T) {
	cfg := rept.ConcurrentConfig{M: 3, C: 12, Shards: 2, Seed: 5, TrackLocal: true, BatchSize: 16}
	est, err := rept.NewConcurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer est.Close()

	edges := gen.Shuffle(gen.HolmeKim(250, 4, 0.3, 9), 6)
	var wg sync.WaitGroup
	const producers = 3
	chunk := (len(edges) + producers - 1) / producers
	for p := 0; p < producers; p++ {
		lo := min(p*chunk, len(edges))
		hi := min(lo+chunk, len(edges))
		wg.Add(1)
		go func(part []rept.Edge) {
			defer wg.Done()
			for _, e := range part {
				est.Add(e.U, e.V)
			}
		}(edges[lo:hi])
	}
	for i := 0; i < 4; i++ {
		var buf bytes.Buffer
		if err := est.WriteSnapshot(&buf); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		r, err := rept.ResumeConcurrent(cfg, &buf)
		if err != nil {
			t.Fatalf("snapshot %d: restore: %v", i, err)
		}
		r.Close()
	}
	wg.Wait()
}

// TestResumeMismatchIsDescriptive: the public wrappers surface
// ErrSnapshotMismatch with field-by-field detail.
func TestResumeMismatchIsDescriptive(t *testing.T) {
	est, err := rept.New(rept.Config{M: 4, C: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := est.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	est.Close()

	if _, err := rept.Resume(rept.Config{M: 5, C: 8, Seed: 2}, bytes.NewReader(buf.Bytes())); !errors.Is(err, rept.ErrSnapshotMismatch) {
		t.Errorf("Resume mismatch err = %v, want ErrSnapshotMismatch", err)
	}
	// An engine snapshot cannot boot a Concurrent estimator.
	if _, err := rept.ResumeConcurrent(rept.ConcurrentConfig{M: 4, C: 8, Seed: 2}, bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("ResumeConcurrent accepted a single-engine snapshot")
	}
}
