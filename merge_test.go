package rept_test

import (
	"math"
	"testing"

	"rept"
	"rept/internal/gen"
)

// TestMergeClusterPattern: K estimators with C = M and distinct seeds,
// merged, behave like one REPT run with c = K·M — unbiased, with the
// merged variance estimate available.
func TestMergeClusterPattern(t *testing.T) {
	edges := gen.Shuffle(gen.HolmeKim(600, 6, 0.5, 8), 3)
	exact := rept.ExactCount(edges, rept.ExactOptions{Eta: true})
	tau := float64(exact.Tau)

	const machines, m = 4, 6
	ests := make([]*rept.Estimator, machines)
	for k := range ests {
		est, err := rept.New(rept.Config{M: m, C: m, Seed: int64(100 + k), TrackEta: true, TrackLocal: true})
		if err != nil {
			t.Fatal(err)
		}
		defer est.Close()
		est.AddAll(edges)
		ests[k] = est
	}
	merged, err := rept.Merge(ests...)
	if err != nil {
		t.Fatal(err)
	}
	// Merged estimate = average of the group estimates (full groups).
	sum := 0.0
	for _, e := range ests {
		sum += e.Global()
	}
	if want := sum / machines; math.Abs(merged.Global-want) > 1e-9 {
		t.Errorf("merged Global = %v, want mean of groups %v", merged.Global, want)
	}
	// Sanity: within 6 theoretical standard errors of the truth.
	sigma := math.Sqrt(rept.TheoreticalVariance(m, machines*m, tau, float64(exact.Eta)))
	if math.Abs(merged.Global-tau) > 6*sigma {
		t.Errorf("merged Global = %v, want %v ± %v", merged.Global, tau, 6*sigma)
	}
	if math.IsNaN(merged.Variance) {
		t.Error("merged Variance is NaN despite full η tracking")
	}
	if merged.Local == nil {
		t.Error("merged Local is nil despite TrackLocal")
	}
	if math.IsNaN(merged.StdErr()) {
		t.Error("StdErr NaN")
	}
}

func TestMergeValidation(t *testing.T) {
	edges := gen.Complete(20)
	mk := func(m, c int, seed int64, n int) *rept.Estimator {
		est, err := rept.New(rept.Config{M: m, C: c, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(est.Close)
		est.AddAll(edges[:n])
		return est
	}
	if _, err := rept.Merge(); err == nil {
		t.Error("Merge(): got nil error")
	}
	// Shared seeds rejected.
	if _, err := rept.Merge(mk(3, 3, 5, len(edges)), mk(3, 3, 5, len(edges))); err == nil {
		t.Error("shared seeds: got nil error")
	}
	// Mismatched stream lengths rejected.
	if _, err := rept.Merge(mk(3, 3, 1, len(edges)), mk(3, 3, 2, len(edges)-5)); err == nil {
		t.Error("different stream lengths: got nil error")
	}
	// Mixed M rejected.
	if _, err := rept.Merge(mk(3, 3, 1, len(edges)), mk(4, 4, 2, len(edges))); err == nil {
		t.Error("mixed M: got nil error")
	}
}

func TestVarianceInFacade(t *testing.T) {
	edges := gen.Shuffle(gen.HolmeKim(300, 5, 0.5, 2), 5)
	est, err := rept.New(rept.Config{M: 5, C: 5, Seed: 9, TrackEta: true})
	if err != nil {
		t.Fatal(err)
	}
	defer est.Close()
	est.AddAll(edges)
	res := est.Result()
	if math.IsNaN(res.Variance) || res.Variance < 0 {
		t.Errorf("Variance = %v, want finite non-negative", res.Variance)
	}
	if res.EtaHat < 0 {
		t.Errorf("EtaHat = %v, want >= 0", res.EtaHat)
	}
	exact := rept.ExactCount(edges, rept.ExactOptions{Eta: true})
	// η̂ should be in the right ballpark of the exact η (it is unbiased
	// but heavy-tailed; accept a wide band).
	if eta := float64(exact.Eta); res.EtaHat > 10*eta {
		t.Errorf("EtaHat = %v, exact η = %v", res.EtaHat, eta)
	}
}
