package rept_test

import (
	"bytes"
	"testing"

	"rept"
	"rept/internal/gen"
)

// snapshotBenchEstimator builds a mid-stream estimator whose state is
// representative of a long-running server (local + η tracking on).
func snapshotBenchEstimator(b *testing.B) *rept.Estimator {
	b.Helper()
	est, err := rept.New(rept.Config{M: 8, C: 32, Seed: 1, TrackLocal: true, TrackEta: true})
	if err != nil {
		b.Fatal(err)
	}
	est.AddAll(gen.Shuffle(gen.HolmeKim(2000, 6, 0.3, 5), 9))
	return est
}

// BenchmarkSnapshotWrite measures serializing full estimator state.
func BenchmarkSnapshotWrite(b *testing.B) {
	est := snapshotBenchEstimator(b)
	defer est.Close()
	var buf bytes.Buffer
	if err := est.WriteSnapshot(&buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := est.WriteSnapshot(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotRestore measures decode + estimator rebuild.
func BenchmarkSnapshotRestore(b *testing.B) {
	est := snapshotBenchEstimator(b)
	var buf bytes.Buffer
	if err := est.WriteSnapshot(&buf); err != nil {
		b.Fatal(err)
	}
	est.Close()
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := rept.Resume(rept.Config{M: 8, C: 32, Seed: 1, TrackLocal: true, TrackEta: true}, bytes.NewReader(buf.Bytes()))
		if err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
}
