package rept_test

import (
	"errors"
	"math"
	"testing"

	"rept"
	"rept/internal/control"
	"rept/internal/exper"
	"rept/internal/gen"
)

// TestAccuracyAfterDownsample is the statistical gate for the adaptive
// control plane's one irreversible action: over 40 independent hash-family
// seeds on a churn stream with a mid-stream Downsample(1), the estimator
// must still match the exact net triangle count of the final live graph.
// The adaptation rescales every counter by the REPT unbiasing factor and
// re-partitions the sample under the tightened keep filter, so any error
// in the rescale arithmetic, the eviction sweep, or the effective-m
// plumbing shifts the error distribution far outside these gates.
//
// The variance windows bracket the mixed process: events processed before
// the adaptation contribute at the original partition size m and are then
// thinned, events after it at m_eff = 2m, so the empirical MSE must sit
// between the closed-form variance at m (scaled by the usual 0.35 noise
// floor) and the variance at m_eff (scaled by the usual 2.2 ceiling). The
// bias gate is 4.5 standard errors at m_eff. Stream and seeds are fixed;
// the test is fully deterministic.
func TestAccuracyAfterDownsample(t *testing.T) {
	base := gen.Shuffle(gen.HolmeKim(800, 5, 0.35, 77), 123)
	ups := exper.DynStream(base, exper.DynOptions{Pattern: exper.Reinsert, DeleteFrac: 0.35, ReinsertFrac: 0.85, Seed: 99})
	ref := exper.DynCountExact(ups, false)
	if frac := float64(ref.Deletes) / float64(ref.Events); frac < 0.30 {
		t.Fatalf("deletion fraction = %.3f, need >= 0.30 for a meaningful churn gate", frac)
	}
	tau := float64(ref.Tau)
	if tau < 500 {
		t.Fatalf("net graph too sparse for a meaningful bound: τ = %v", tau)
	}
	cut := len(ups) * 3 / 5

	const seeds = 40
	cases := []struct {
		name string
		m, c int
	}{
		// Only downsample-legal layouts (no η tracking): full groups and a
		// single undersized group. The partial-group combination refuses
		// Downsample by design — see TestDownsampleRefusedOnEtaConfig.
		{"FullGroups_M8_C32", 8, 32},
		{"SingleGroup_M16_C8", 16, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			varBase := rept.TheoreticalVariance(tc.m, tc.c, ref.A, ref.B/2)
			varEff := rept.TheoreticalVariance(2*tc.m, tc.c, ref.A, ref.B/2)
			if !(varBase > 0) || !(varEff > varBase) {
				t.Fatalf("variance bounds: base %v, effective %v", varBase, varEff)
			}
			var sumErr, sumSq float64
			for seed := int64(1); seed <= seeds; seed++ {
				est, err := rept.NewConcurrent(rept.ConcurrentConfig{M: tc.m, C: tc.c, Seed: seed, FullyDynamic: true})
				if err != nil {
					t.Fatal(err)
				}
				est.ApplyAll(ups[:cut])
				if err := est.Downsample(1); err != nil {
					t.Fatal(err)
				}
				est.ApplyAll(ups[cut:])
				if got := est.SampleShift(); got != 1 {
					t.Fatalf("SampleShift = %d after Downsample(1), want 1", got)
				}
				d := est.Global() - tau
				est.Close()
				sumErr += d
				sumSq += d * d
			}
			mse := sumSq / seeds
			bias := sumErr / seeds
			t.Logf("net τ=%.0f A=%.0f B=%.0f: MSE = %.1f (Var[m]=%.1f, Var[m_eff]=%.1f), bias = %.1f",
				tau, ref.A, ref.B, mse, varBase, varEff, bias)

			if mse > 2.2*varEff {
				t.Errorf("empirical MSE %.1f exceeds post-adaptation variance %.1f by ratio %.2f (> 2.2): the downsample rescale has regressed", mse, varEff, mse/varEff)
			}
			if mse < 0.35*varBase {
				t.Errorf("empirical MSE %.1f implausibly below pre-adaptation variance %.1f (ratio %.2f < 0.35): sampling is likely broken", mse, varBase, mse/varBase)
			}
			if gate := 4.5 * math.Sqrt(varEff/seeds); math.Abs(bias) > gate {
				t.Errorf("empirical bias %.1f exceeds %.1f (4.5 standard errors): the estimator is no longer unbiased after adaptation", bias, gate)
			}
		})
	}
}

// TestDownsampleRefusedOnEtaConfig: a layout with a partial processor
// group tracks η, whose per-edge closing counters cannot be rescaled, so
// Downsample must refuse with ErrEtaDownsample — and leave the estimator
// fully usable.
func TestDownsampleRefusedOnEtaConfig(t *testing.T) {
	est, err := rept.NewConcurrent(rept.ConcurrentConfig{M: 6, C: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer est.Close()
	est.AddAll(gen.HolmeKim(200, 4, 0.3, 9))
	if err := est.Downsample(1); !errors.Is(err, rept.ErrEtaDownsample) {
		t.Fatalf("Downsample on an η config = %v, want ErrEtaDownsample", err)
	}
	if got := est.SampleShift(); got != 0 {
		t.Fatalf("SampleShift = %d after a refused Downsample, want 0", got)
	}
	if g := est.Global(); !(g > 0) {
		t.Fatalf("estimator unusable after refused Downsample: Global = %v", g)
	}
}

// TestMemStatsSurface: the public accounting surface — component
// breakdown, process-memory total, and the sampling diagnostics the
// controller publishes.
func TestMemStatsSurface(t *testing.T) {
	est, err := rept.NewConcurrent(rept.ConcurrentConfig{
		M: 4, C: 8, Seed: 5, TrackLocal: true, TrackDegrees: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer est.Close()
	est.AddAll(gen.Shuffle(gen.HolmeKim(1000, 6, 0.4, 3), 13))
	est.Snapshot() // barrier: pending capacity transitions land

	ms := est.MemStats()
	for _, comp := range []string{"adjacency", "counters", "degrees", "rings"} {
		if ms.ByComponent[comp] <= 0 {
			t.Errorf("component %q = %d bytes after ingest, want > 0", comp, ms.ByComponent[comp])
		}
	}
	var heap int64
	for comp, b := range ms.ByComponent {
		if comp != "wal_segments" {
			heap += b
		}
	}
	if ms.HeapBytes != heap {
		t.Errorf("HeapBytes = %d, component sum = %d", ms.HeapBytes, heap)
	}
	if ms.WALSegmentBytes != 0 {
		t.Errorf("WALSegmentBytes = %d without a WAL, want 0", ms.WALSegmentBytes)
	}
	if got, tot := est.MemTotalBytes(), ms.HeapBytes; got != tot {
		t.Errorf("MemTotalBytes = %d, MemStats.HeapBytes = %d", got, tot)
	}

	if p := est.SampleProbability(); p != 0.25 {
		t.Errorf("SampleProbability = %v at M=4 shift=0, want 0.25", p)
	}
	vb0 := est.VarianceBound()
	if !(vb0 > 0) {
		t.Fatalf("VarianceBound = %v on a triangle-rich stream, want > 0", vb0)
	}
	if err := est.Downsample(1); err != nil {
		t.Fatal(err)
	}
	if p := est.SampleProbability(); p != 0.125 {
		t.Errorf("SampleProbability = %v after Downsample(1), want 0.125", p)
	}
	if vb1 := est.VarianceBound(); !(vb1 > vb0) {
		t.Errorf("VarianceBound = %v after Downsample(1), want > pre-adaptation %v (accuracy was traded for memory)", vb1, vb0)
	}
}

// TestControllerChurnSoak drives the real estimator under the real
// controller on a churn stream with a budget between the incompressible
// floor and the unconstrained footprint: the controller must adapt at
// least once, the ledger total must end at or under the budget, and the
// published variance bound must record the accuracy that was traded.
func TestControllerChurnSoak(t *testing.T) {
	base := gen.Shuffle(gen.HolmeKim(2500, 8, 0.4, 21), 5)
	ups := exper.DynStream(base, exper.DynOptions{Pattern: exper.Reinsert, DeleteFrac: 0.25, ReinsertFrac: 0.7, Seed: 8})

	build := func() *rept.Concurrent {
		est, err := rept.NewConcurrent(rept.ConcurrentConfig{
			M: 4, C: 8, Seed: 17, TrackLocal: true, FullyDynamic: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return est
	}

	// Calibration pass: the unconstrained footprint and its sample-bearing
	// share fix a budget that genuinely forces adaptation yet stays above
	// the incompressible floor (rings, batches, masks).
	ref := build()
	ref.ApplyAll(ups)
	ref.Snapshot()
	ms := ref.MemStats()
	full := ms.HeapBytes
	sampleBytes := ms.ByComponent["adjacency"] + ms.ByComponent["counters"]
	ref.Close()
	if sampleBytes <= 0 || full <= sampleBytes {
		t.Fatalf("calibration: full=%d sample-bearing=%d", full, sampleBytes)
	}
	budget := full - sampleBytes/2
	t.Logf("unconstrained footprint %d bytes (%d sample-bearing); budget %d", full, sampleBytes, budget)

	est := build()
	defer est.Close()
	vb0 := -1.0
	ctrl := control.New(control.Config{
		Budget:      budget,
		MemTotal:    est.MemTotalBytes,
		Processed:   est.Processed,
		SampleShift: est.SampleShift,
		Downsample:  est.Downsample,
	})
	const chunks = 20
	for i := 0; i < chunks; i++ {
		lo, hi := i*len(ups)/chunks, (i+1)*len(ups)/chunks
		est.ApplyAll(ups[lo:hi])
		est.Snapshot() // quiesce: Downsample from a tick needs a drained pipeline
		if vb0 < 0 && i == chunks/2 {
			vb0 = est.VarianceBound()
		}
		ctrl.Tick()
	}
	// Drain any residual pressure the tail of the stream re-created.
	for i := 0; i < 8 && est.MemTotalBytes() > budget; i++ {
		est.Snapshot()
		ctrl.Tick()
	}

	if got := ctrl.Adaptations(); got < 1 {
		t.Fatalf("Adaptations = %d under a %d-byte budget (unconstrained %d), want >= 1", got, budget, full)
	}
	if got := est.SampleShift(); got < 1 {
		t.Fatalf("SampleShift = %d after %d adaptations, want >= 1", got, ctrl.Adaptations())
	}
	if got := est.MemTotalBytes(); got > budget {
		t.Errorf("ledger total %d exceeds budget %d after the soak", got, budget)
	}
	if vb := est.VarianceBound(); vb0 > 0 && !(vb > vb0) {
		t.Errorf("VarianceBound = %v after adaptation, want > mid-stream %v", vb, vb0)
	}
	st := ctrl.Status()
	if st.SampleShift != est.SampleShift() {
		t.Errorf("controller reports shift %d, estimator %d", st.SampleShift, est.SampleShift())
	}
}
