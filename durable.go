package rept

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"rept/internal/graph"
	"rept/internal/mem"
	"rept/internal/shard"
	"rept/internal/wal"
)

// WALBackend is the pluggable storage behind a write-ahead log: a flat
// namespace of append-only files with explicit sync. The default is the
// local filesystem (one directory); tests inject an in-memory
// fault-injecting implementation through the same interface.
type WALBackend = wal.Backend

// WALFile is an open append-only file on a WALBackend.
type WALFile = wal.File

// Durability-layer errors, re-exported so callers can classify recovery
// failures without importing internal packages. All are wrapped.
var (
	// ErrWALCorrupt reports undecodable bytes in the interior of the log
	// (a torn tail at the very end is NOT corruption — it is the expected
	// shape of a crash and is dropped silently).
	ErrWALCorrupt = wal.ErrCorrupt
	// ErrWALGap reports a missing stretch of the log: a segment is lost
	// or interior-damaged and replay cannot bridge the positions.
	ErrWALGap = wal.ErrGap
	// ErrWALMismatch reports a log directory written under a different
	// estimator configuration (the fingerprint in the segment headers or
	// checkpoint does not match).
	ErrWALMismatch = wal.ErrMismatch
)

// WALStats is a point-in-time report of the write-ahead log, safe to
// read concurrently with ingest. Positions count accepted non-loop
// events since the estimator's birth, the same scale as Processed.
type WALStats = wal.Stats

// WALOptions configures the durability layer of a Concurrent estimator.
type WALOptions struct {
	// Dir is the log directory on the local filesystem (created if
	// absent). Ignored when Backend is set; required otherwise.
	Dir string
	// Backend overrides the storage implementation (nil: local disk
	// under Dir).
	Backend WALBackend
	// SyncInterval selects the sync mode. Zero (the default) is
	// per-batch: ApplyAllDurable returns only after its events are
	// fsynced — group commit amortizes the sync across concurrent
	// callers, but the floor is one sync per call. A positive interval
	// acknowledges on append and syncs on this period instead: much
	// cheaper, with a loss window of at most the interval on a crash.
	SyncInterval time.Duration
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 64 MiB).
	SegmentBytes int64
	// CompactEvery folds the log into an incremental checkpoint whenever
	// at least this many events have accumulated past the last one: a
	// barrier-consistent snapshot replaces the sealed segments it covers,
	// bounding both recovery time and disk usage. Zero disables automatic
	// compaction; CompactWAL remains available.
	CompactEvery uint64
	// Bootstrap seeds an EMPTY log directory from an existing snapshot
	// (a Concurrent.WriteSnapshot image, e.g. a pre-WAL checkpoint file):
	// the estimator restores from it and the snapshot immediately becomes
	// the log's first checkpoint, so the migrated state survives the next
	// crash. ResumeDurable refuses a Bootstrap against a directory that
	// already holds WAL state — recovery would otherwise silently prefer
	// one source over the other.
	Bootstrap io.Reader
}

// ResumeDurable opens (or creates) a durable estimator on a write-ahead
// log. Recovery is snapshot-plus-tail: the latest checkpoint in the log
// directory (if any) restores the estimator, then the log events past
// the checkpoint's position replay through the normal ingest path, so
// the recovered state is bit-for-bit the one that accepted those events.
// The directory's fingerprint must match cfg (ErrWALMismatch otherwise);
// an empty or absent directory starts a fresh estimator with an empty
// log.
//
// The returned estimator accepts all the usual methods; events fed
// through any ingest path are logged, but only ApplyAllDurable waits for
// the log's acknowledgment. Close flushes, group-commits the tail, and
// closes the log.
func ResumeDurable(cfg ConcurrentConfig, opt WALOptions) (*Concurrent, error) {
	be := opt.Backend
	if be == nil {
		if opt.Dir == "" {
			return nil, fmt.Errorf("rept: WALOptions.Dir or Backend required")
		}
		var err error
		be, err = wal.NewDiskBackend(opt.Dir)
		if err != nil {
			return nil, fmt.Errorf("rept: %w", err)
		}
	}
	ac := mem.New()
	scfg := cfg.shardConfig()
	scfg.Mem = ac
	rec, err := wal.Recover(be, scfg.FingerprintHash())
	if err != nil {
		return nil, fmt.Errorf("rept: wal recovery: %w", err)
	}
	if opt.Bootstrap != nil && !rec.Empty() {
		return nil, fmt.Errorf("rept: refusing to bootstrap: the log directory already holds WAL state (remove it, or resume without Bootstrap)")
	}
	var sh *shard.Sharded
	switch {
	case opt.Bootstrap != nil:
		sh, err = shard.Resume(scfg, opt.Bootstrap)
	case rec.Snapshot != nil:
		sh, err = shard.Resume(scfg, bytes.NewReader(rec.Snapshot))
	default:
		sh, err = shard.New(scfg)
	}
	if err != nil {
		return nil, fmt.Errorf("rept: %w", err)
	}
	pos, err := rec.Replay(sh.Position(), func(ups []graph.Update) error {
		if !cfg.FullyDynamic {
			for _, up := range ups {
				if up.Del {
					return fmt.Errorf("%w: log contains deletions but FullyDynamic is off", wal.ErrMismatch)
				}
			}
		}
		sh.ApplyAll(ups)
		return nil
	})
	if err != nil {
		sh.Close()
		return nil, fmt.Errorf("rept: wal replay: %w", err)
	}
	if got := sh.Position(); got != pos {
		sh.Close()
		return nil, fmt.Errorf("rept: wal replay: %w: estimator at position %d after replaying to %d", wal.ErrCorrupt, got, pos)
	}
	wopt := wal.Options{SegmentBytes: opt.SegmentBytes, Mem: ac}
	if pipe := cfg.Telemetry.obsPipeline(); pipe != nil {
		wopt.AppendHist = pipe.WALAppend
		wopt.SyncHist = pipe.WALSync
		wopt.Flight = pipe.Flight
	}
	lg, err := rec.Log(wopt)
	if err != nil {
		sh.Close()
		return nil, fmt.Errorf("rept: %w", err)
	}
	sh.StartWAL(lg, opt.SyncInterval)
	c := &Concurrent{sh: sh, cfg: cfg, tele: cfg.Telemetry, acct: ac, lg: lg, compactEvery: opt.CompactEvery}
	if opt.Bootstrap != nil {
		// Persist the bootstrapped state as the log's first checkpoint:
		// without it the next recovery would find segments starting at
		// position pos with nothing covering [0, pos) and report a gap.
		if err := c.CompactWAL(); err != nil {
			c.Close()
			return nil, fmt.Errorf("rept: bootstrap checkpoint: %w", err)
		}
	}
	if opt.CompactEvery > 0 {
		c.compactCh = make(chan struct{}, 1)
		c.compactWG.Add(1)
		go c.compactor()
	}
	return c, nil
}

// ApplyAllDurable feeds a slice of signed stream events and returns only
// once the write-ahead log acknowledges every one of them under the
// configured sync mode — fsynced in per-batch mode, appended in interval
// mode. A nil return is the durability contract: a crash immediately
// after it cannot lose these events. A non-nil error means the events
// must not be acknowledged to any upstream client (they may or may not
// have reached the in-memory estimate, and a restart may not recover
// them); the log failure is sticky and every later call fails too.
// Without a WAL (NewConcurrent) it degrades to ApplyAll and returns nil.
func (c *Concurrent) ApplyAllDurable(ups []Update) error {
	err := c.sh.ApplyAllDurable(ups)
	if err == nil && c.compactCh != nil {
		st := c.lg.Stats()
		if st.DurablePos-st.CheckpointPos >= c.compactEvery {
			select {
			case c.compactCh <- struct{}{}:
			default: // a compaction is already pending or running
			}
		}
	}
	return err
}

// ApplyBatchDurable is ApplyBatch with ApplyAllDurable's durability
// barrier: the batch travels as wholesale ring deliveries (hub
// splitting included) and the call returns only once the write-ahead
// log acknowledges every event under the configured sync mode. Without
// a WAL (NewConcurrent) it degrades to ApplyBatch and returns nil.
func (c *Concurrent) ApplyBatchDurable(b *Batch) error {
	if b == nil {
		return nil
	}
	err := c.sh.ApplyBatchDurable(b.ups)
	if err == nil && c.compactCh != nil {
		st := c.lg.Stats()
		if st.DurablePos-st.CheckpointPos >= c.compactEvery {
			select {
			case c.compactCh <- struct{}{}:
			default: // a compaction is already pending or running
			}
		}
	}
	return err
}

// Durable reports whether a write-ahead log is attached (the estimator
// came from ResumeDurable).
func (c *Concurrent) Durable() bool { return c.lg != nil }

// Position returns the estimator's stream position: accepted non-loop
// events since birth, the scale the write-ahead log addresses records
// by. After ResumeDurable it equals the recovered log's end.
func (c *Concurrent) Position() uint64 { return c.sh.Position() }

// WALStats reports the write-ahead log's positions, segment footprint,
// and failure flag; zero-valued without a WAL.
func (c *Concurrent) WALStats() WALStats {
	if c.lg == nil {
		return WALStats{}
	}
	return c.lg.Stats()
}

// CompactWAL folds the current state into an incremental checkpoint: it
// takes a barrier-consistent snapshot, installs it atomically as the
// log's recovery base, and deletes the sealed segments it covers.
// Ingest keeps running throughout. Returns an error without a WAL.
func (c *Concurrent) CompactWAL() error {
	if c.lg == nil {
		return fmt.Errorf("rept: no write-ahead log attached")
	}
	return c.lg.Compact(c.sh.WriteSnapshotPos)
}

// compactor runs automatic compactions off the ingest path; triggers are
// coalesced through a 1-buffered channel, so at most one compaction runs
// at a time and a burst of triggers folds into one pass.
func (c *Concurrent) compactor() {
	defer c.compactWG.Done()
	for range c.compactCh {
		if err := c.lg.Compact(c.sh.WriteSnapshotPos); err != nil {
			// Compaction failure is not a durability failure: the log
			// still holds everything, the previous checkpoint is intact,
			// and recovery just replays a longer tail. Count it (see
			// WALCompactionFailures) and keep serving.
			c.compactErrs.Add(1)
		}
	}
}

// WALCompactionFailures returns how many automatic compactions have
// failed since ResumeDurable (manual CompactWAL errors are returned to
// the caller instead). Persistently non-zero and growing means the log
// cannot be trimmed and recovery time is growing unbounded.
func (c *Concurrent) WALCompactionFailures() uint64 { return c.compactErrs.Load() }

// stopCompactor ends automatic compaction and waits the compactor
// goroutine out; idempotent, and a no-op when automatic compaction was
// never enabled.
func (c *Concurrent) stopCompactor() {
	if c.compactCh == nil {
		return
	}
	close(c.compactCh)
	c.compactWG.Wait()
	c.compactCh = nil
}
