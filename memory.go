package rept

import (
	"fmt"

	"rept/internal/core"
	"rept/internal/mem"
)

// ErrEtaDownsample reports a Downsample call on an η-tracking
// configuration: the per-edge closing counters η̂ is built from count
// triangles closed by PAST arrivals, a quantity that cannot be soundly
// rescaled when the sample thins. Configurations with c₁>0 and c₂>0 (or
// TrackEta set) therefore cannot adapt their sampling probability online;
// pick C as a multiple of M (or C < M) when running under a memory
// budget.
var ErrEtaDownsample = core.ErrEtaDownsample

// MemStats is a point-in-time breakdown of the estimator's accounted
// bytes, by storage component. Accounting is exact at capacity
// granularity: every flat structure reports its backing bytes when its
// capacity changes (growth, rehash, spill promotion, ring construction,
// view publication), never per event — so the ledger tracks the real
// footprint at zero hot-path cost, and the numbers move in steps, not
// continuously.
type MemStats struct {
	// ByComponent maps stable component names (adjacency, counters,
	// degrees, masks, rings, batches, wal_buffers, wal_segments, views)
	// to their accounted bytes.
	ByComponent map[string]int64
	// HeapBytes is the process-memory total: every component except
	// wal_segments. This is the value a memory budget is enforced
	// against.
	HeapBytes int64
	// WALSegmentBytes is the disk-class entry: live bytes in the
	// write-ahead log's segments (sealed clean extents plus the active
	// segment), 0 without a WAL. Compaction shrinks it; it never counts
	// toward HeapBytes.
	WALSegmentBytes int64
}

// MemStats returns the current ledger breakdown. Safe for concurrent use
// with ingest; component entries are independent atomic loads (the
// breakdown is not barrier-consistent, which its consumers — metrics,
// budget thresholds — do not need).
func (c *Concurrent) MemStats() MemStats {
	snap := c.acct.Snapshot()
	by := make(map[string]int64, mem.NumComponents)
	var heap int64
	for i, b := range snap {
		comp := mem.Component(i)
		by[comp.String()] = b
		if comp != mem.CompWALSegments {
			heap += b
		}
	}
	return MemStats{
		ByComponent:     by,
		HeapBytes:       heap,
		WALSegmentBytes: snap[mem.CompWALSegments],
	}
}

// MemTotalBytes returns the accounted process-memory total (HeapBytes
// without building the full breakdown) — the cheap read the adaptive
// controller polls.
func (c *Concurrent) MemTotalBytes() int64 { return c.acct.MemoryTotal() }

// Downsample halves the sampling probability extra times (p → p/2^extra),
// stream-consistently across every shard: an in-band barrier makes all
// shards re-partition at the same stream prefix, each stored edge is
// re-tested under the thinned keep filter and evicted if it no longer
// qualifies, and all counters are rescaled by the REPT unbiasing factor
// (τ and τ_v scale by 2^(−2·extra), matching the m² factor of the
// estimator at the effective partition size m_eff = M·2^shift). The
// estimator stays unbiased after the shift; its variance rises, which is
// the traded good — memory falls because the expected stored-edge count
// halves per step.
//
// Downsample is how the adaptive controller shrinks the estimator under
// a memory budget; it is also callable directly. It fails with
// ErrEtaDownsample on η-tracking configurations (see that error), and is
// NOT logged to the write-ahead log: recovery restores the
// pre-adaptation sampling state (checkpoints carry the shift, the log
// tail replays into it), and the controller simply re-adapts if the
// recovered footprint still exceeds the budget.
func (c *Concurrent) Downsample(extra int) error {
	if err := c.sh.Downsample(extra); err != nil {
		return fmt.Errorf("rept: %w", err)
	}
	return nil
}

// SampleShift returns the cumulative downsampling shift: 0 until the
// first Downsample, k after the probability has been halved k times.
// Snapshots carry it, so a resumed estimator reports the shift it was
// checkpointed with.
func (c *Concurrent) SampleShift() int { return c.sh.SampleShift() }

// SampleProbability returns the effective per-edge sampling probability
// p_eff = 1/(M·2^shift).
func (c *Concurrent) SampleProbability() float64 {
	return 1 / (float64(c.cfg.M) * float64(uint64(1)<<uint(c.sh.SampleShift())))
}

// VarianceBound returns the plug-in variance bound of the current global
// estimate at the EFFECTIVE sampling denominator m_eff = M·2^shift:
// the paper's closed form Var(τ̂) with τ̂ (and η̂ when tracked, 0
// otherwise) substituted for the true values. It is the number the
// adaptive controller publishes as rept_variance_bound — after every
// downsample it steps up, quantifying exactly how much accuracy was
// traded for memory. Negative plug-ins are clamped to 0; with η
// untracked the η term is omitted (exact when no two triangles share an
// edge, an undercount otherwise). Answers from the current view when
// views are running, else pays a barrier snapshot.
func (c *Concurrent) VarianceBound() float64 {
	var g, eta float64
	if p := c.views.Load(); p != nil {
		v := p.View()
		g, eta = v.Global, v.EtaHat
	} else {
		e := c.Snapshot()
		g, eta = e.Global, e.EtaHat
	}
	if g < 0 {
		g = 0
	}
	if eta < 0 {
		eta = 0
	}
	return core.VarREPT(c.cfg.M<<uint(c.sh.SampleShift()), c.cfg.C, g, eta)
}

// SetTopK changes the view publisher's heavy-hitter ranking size (clamped
// to ≥ 1), effective at the next epoch. The adaptive controller shrinks
// it first under memory pressure — the ranking is pure query convenience,
// so it is the cheapest thing to give back — and restores it when
// pressure clears. A no-op before StartViews.
func (c *Concurrent) SetTopK(k int) {
	if p := c.views.Load(); p != nil {
		p.SetTopK(k)
	}
}
