package rept_test

import (
	"math"
	"sync"
	"testing"

	"rept"
	"rept/internal/gen"
)

func concurrentStream() []rept.Edge {
	return gen.Shuffle(gen.HolmeKim(500, 5, 0.4, 21), 13)
}

// TestConcurrentMatchesEstimatorEnvelope drives NewConcurrent from many
// goroutines under the race detector and checks the merged estimate lands
// in the same error envelope as a single-caller Estimator on the identical
// stream. The envelope is 6 theoretical standard errors around the exact
// count, evaluated for each estimator's own (M, C).
func TestConcurrentMatchesEstimatorEnvelope(t *testing.T) {
	edges := concurrentStream()
	exact := rept.ExactCount(edges, rept.ExactOptions{Eta: true})
	tau := float64(exact.Tau)
	eta := float64(exact.Eta)

	const m, c = 4, 64
	envelope := 6 * math.Sqrt(rept.TheoreticalVariance(m, c, tau, eta))

	single, err := rept.New(rept.Config{M: m, C: c, Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	single.AddAll(edges)
	if diff := math.Abs(single.Global() - tau); diff > envelope {
		t.Fatalf("single-caller Estimator off by %v, envelope %v", diff, envelope)
	}

	conc, err := rept.NewConcurrent(rept.ConcurrentConfig{M: m, C: c, Shards: 4, Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	defer conc.Close()

	const producers = 6
	var wg sync.WaitGroup
	chunk := (len(edges) + producers - 1) / producers
	for p := 0; p < producers; p++ {
		lo := min(p*chunk, len(edges))
		hi := min(lo+chunk, len(edges))
		wg.Add(1)
		go func(part []rept.Edge) {
			defer wg.Done()
			conc.AddAll(part)
		}(edges[lo:hi])
	}
	wg.Wait()

	if got := conc.Processed(); got != uint64(len(edges)) {
		t.Fatalf("Processed = %d, want %d", got, len(edges))
	}
	snap := conc.Snapshot()
	if diff := math.Abs(snap.Global - tau); diff > envelope {
		t.Errorf("Concurrent off by %v, envelope %v (exact %v, got %v)", diff, envelope, tau, snap.Global)
	}
}

// TestConcurrentCounterInterface exercises Concurrent through the shared
// Counter interface, including local estimates.
func TestConcurrentCounterInterface(t *testing.T) {
	edges := concurrentStream()
	exact := rept.ExactCount(edges, rept.ExactOptions{Local: true})

	var ctr rept.Counter
	conc, err := rept.NewConcurrent(rept.ConcurrentConfig{M: 2, C: 16, Seed: 7, TrackLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	defer conc.Close()
	ctr = conc
	for _, e := range edges {
		ctr.Add(e.U, e.V)
	}
	tau := float64(exact.Tau)
	if rel := math.Abs(ctr.Global()-tau) / tau; rel > 0.2 {
		t.Errorf("Global = %v, exact = %v", ctr.Global(), tau)
	}

	// Local estimates should be in the right ballpark for a high-count node.
	var hot rept.NodeID
	var hotCount uint64
	for v, n := range exact.TauV {
		if n > hotCount {
			hot, hotCount = v, n
		}
	}
	if hotCount > 0 {
		got := ctr.Local(hot)
		if got <= 0 {
			t.Errorf("Local(%d) = %v for node with exact count %d", hot, got, hotCount)
		}
	}
}

// TestConcurrentCloseContract: using a closed Concurrent panics, closing
// twice does not.
func TestConcurrentCloseContract(t *testing.T) {
	conc, err := rept.NewConcurrent(rept.ConcurrentConfig{M: 2, C: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	conc.Add(1, 2)
	conc.Close()
	conc.Close()
	defer func() {
		if recover() == nil {
			t.Error("Add after Close did not panic")
		}
	}()
	conc.Add(2, 3)
}

func TestNewConcurrentValidation(t *testing.T) {
	for _, cfg := range []rept.ConcurrentConfig{
		{M: 0, C: 8},
		{M: 4, C: 0},
	} {
		if _, err := rept.NewConcurrent(cfg); err == nil {
			t.Errorf("NewConcurrent(%+v) succeeded, want error", cfg)
		}
	}
}

// TestBatchSizePlumbed checks the Config.BatchSize fix: a custom batch
// size must reach the parallel engine and must not change results, which
// are defined to be independent of Workers and BatchSize.
func TestBatchSizePlumbed(t *testing.T) {
	edges := concurrentStream()
	run := func(workers, batch int) float64 {
		est, err := rept.New(rept.Config{M: 3, C: 9, Seed: 5, Workers: workers, BatchSize: batch})
		if err != nil {
			t.Fatal(err)
		}
		defer est.Close()
		est.AddAll(edges)
		return est.Global()
	}
	want := run(0, 0)
	for _, batch := range []int{1, 7, 4096} {
		if got := run(3, batch); got != want {
			t.Errorf("Workers=3 BatchSize=%d: Global = %v, sequential = %v", batch, got, want)
		}
	}
}
