package rept

import (
	"time"

	"rept/internal/query"
)

// View is one immutable materialized epoch of a Concurrent estimator:
// global estimate, variance, per-node local counts, per-node degrees and
// clustering coefficients, and a precomputed top-K heavy-hitter ranking,
// all describing exactly the same stream prefix. Views are published by
// the background publisher started with Concurrent.StartViews and read
// with Concurrent.View (an atomic pointer load): any number of goroutines
// can query a view lock-free and barrier-free while ingest runs at full
// speed. Staleness is bounded and reported — every view carries its epoch
// number, capture time (Age), and the processed count it describes.
type View = query.View

// NodeStat is one node's row of a View: local estimate, stream degree,
// and clustering coefficient.
type NodeStat = query.NodeStat

// Views is the handle of a running epoch-view publisher (see
// Concurrent.StartViews): View returns the current epoch, Refresh forces
// a fresh one.
type Views = query.Publisher

// ViewConfig shapes the epoch-view publisher.
type ViewConfig struct {
	// Interval is the maximum time between epoch publications (default
	// 200ms). While edges are arriving, every view's age is bounded by
	// roughly Interval plus one barrier latency; an idle stream stops
	// republishing (the view already describes the exact current prefix,
	// so only its wall-clock Age keeps growing).
	Interval time.Duration
	// EveryEdges additionally republishes as soon as this many new edges
	// arrived since the current epoch (0 disables the edge trigger).
	EveryEdges uint64
	// TopK is the precomputed heavy-hitter ranking size (default 100).
	// Requires TrackLocal to be useful.
	TopK int
}

// StartViews starts the epoch-view publisher: a goroutine that
// periodically (per cfg) takes ONE barrier snapshot and publishes it as
// an immutable View. From then on Global, Local, and Locals answer from
// the current view instead of paying a barrier per call, and View/Views
// expose the full read API (top-K, clustering coefficients, staleness).
// The first epoch is published synchronously, so View is non-nil once
// StartViews returns. StartViews errors if views are already running;
// Close stops the publisher.
func (c *Concurrent) StartViews(cfg ViewConfig) (*Views, error) {
	qcfg := query.Config{
		Interval:   cfg.Interval,
		EveryEdges: cfg.EveryEdges,
		TopK:       cfg.TopK,
		Mem:        c.acct,
	}
	if pipe := c.tele.obsPipeline(); pipe != nil {
		qcfg.PublishHist = pipe.ViewPublish
		qcfg.Flight = pipe.Flight
	}
	p := query.NewPublisher(c.sh, qcfg)
	if !c.views.CompareAndSwap(nil, p) {
		p.Close()
		return nil, errViewsStarted
	}
	return p, nil
}

// Views returns the running publisher handle, or nil before StartViews.
func (c *Concurrent) Views() *Views { return c.views.Load() }

// View returns the current epoch view, or nil before StartViews. The
// returned view is immutable and may be retained; its Age keeps growing
// until the next epoch replaces it.
func (c *Concurrent) View() *View {
	if p := c.views.Load(); p != nil {
		return p.View()
	}
	return nil
}
