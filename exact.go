package rept

import "rept/internal/graph"

// ExactResult holds exact triangle statistics of a stream, including the
// paper's η statistics that drive the variance of sampling estimators.
type ExactResult struct {
	// Nodes and Edges count the distinct non-loop nodes and edges.
	Nodes, Edges int
	// Tau is the exact global triangle count τ.
	Tau uint64
	// TauV holds exact local counts τ_v (nil unless requested).
	TauV map[NodeID]uint64
	// Eta is the number of unordered pairs of distinct triangles that
	// share an edge which is the last stream edge of neither (paper's η);
	// zero unless requested.
	Eta uint64
	// EtaV restricts Eta to pairs of triangles both containing v (paper's
	// η_v); nil unless requested.
	EtaV map[NodeID]uint64
}

// ExactOptions selects which exact statistics ExactCount computes.
type ExactOptions struct {
	Local    bool // compute TauV
	Eta      bool // compute Eta (order-dependent!)
	EtaLocal bool // compute EtaV
}

// ExactCount computes exact triangle statistics of the stream in arrival
// order, skipping self-loops and duplicate edges. η and η_v depend on the
// stream order, as in the paper.
func ExactCount(edges []Edge, opt ExactOptions) *ExactResult {
	r := graph.CountExact(edges, graph.ExactOptions{
		Local:    opt.Local,
		Eta:      opt.Eta,
		EtaLocal: opt.EtaLocal,
	})
	return &ExactResult{
		Nodes: r.Nodes,
		Edges: r.Edges,
		Tau:   r.Tau,
		TauV:  r.TauV,
		Eta:   r.Eta,
		EtaV:  r.EtaV,
	}
}

// ReadEdgeListFile loads a SNAP-style text edge list ("u v" per line, '#'
// and '%' comments) with node ids that fit in uint32.
func ReadEdgeListFile(path string) ([]Edge, error) {
	return graph.ReadEdgeListFile(path, graph.ReadOptions{})
}

// WriteEdgeListFile writes a stream as a text edge list, preserving order.
func WriteEdgeListFile(path string, edges []Edge) error {
	return graph.WriteEdgeListFile(path, edges)
}
