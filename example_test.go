package rept_test

import (
	"fmt"

	"rept"
	"rept/internal/gen"
)

// Example demonstrates basic global triangle counting: m = 1 makes the
// estimator exact, larger m trades accuracy for memory.
func Example() {
	// A 5-clique contains C(5,3) = 10 triangles.
	est, err := rept.New(rept.Config{M: 1, C: 1, Seed: 1})
	if err != nil {
		panic(err)
	}
	defer est.Close()
	for u := rept.NodeID(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			est.Add(u, v)
		}
	}
	fmt.Printf("triangles: %.0f\n", est.Global())
	// Output:
	// triangles: 10
}

// ExampleEstimator_Local shows per-node (local) triangle counts.
func ExampleEstimator_Local() {
	est, err := rept.New(rept.Config{M: 1, C: 1, Seed: 1, TrackLocal: true})
	if err != nil {
		panic(err)
	}
	defer est.Close()
	// Two triangles sharing the edge (0, 1).
	for _, e := range []rept.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 1, V: 3}, {U: 0, V: 3}} {
		est.Add(e.U, e.V)
	}
	fmt.Printf("node 0: %.0f\n", est.Local(0))
	fmt.Printf("node 2: %.0f\n", est.Local(2))
	// Output:
	// node 0: 2
	// node 2: 1
}

// ExampleExactCount computes ground truth, including the paper's η
// statistic that predicts sampling-estimator error.
func ExampleExactCount() {
	edges := []rept.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 1, V: 3}, {U: 0, V: 3}}
	res := rept.ExactCount(edges, rept.ExactOptions{Local: true, Eta: true})
	fmt.Printf("triangles: %d, eta: %d\n", res.Tau, res.Eta)
	// Output:
	// triangles: 2, eta: 1
}

// ExampleTheoreticalVariance sizes (m, c) to an error target before
// streaming: REPT with c = m eliminates the covariance term entirely.
func ExampleTheoreticalVariance() {
	const tau, eta = 1000.0, 50000.0
	rept10 := rept.TheoreticalVariance(10, 10, tau, eta)
	mascot10 := rept.ParallelMascotVariance(10, 10, tau, eta)
	fmt.Printf("REPT:   %.0f\n", rept10)
	fmt.Printf("MASCOT: %.0f\n", mascot10)
	// Output:
	// REPT:   9000
	// MASCOT: 99900
}

// ExampleMerge combines estimators run on different machines (here:
// sequentially) into one higher-precision estimate.
func ExampleMerge() {
	edges := gen.Complete(12) // τ = C(12,3) = 220
	var ests []*rept.Estimator
	for machine := 0; machine < 3; machine++ {
		est, err := rept.New(rept.Config{M: 2, C: 2, Seed: int64(machine + 1)})
		if err != nil {
			panic(err)
		}
		defer est.Close()
		est.AddAll(edges)
		ests = append(ests, est)
	}
	merged, err := rept.Merge(ests...)
	if err != nil {
		panic(err)
	}
	// The merged estimate equals REPT with c = 6 processors; it is
	// unbiased, so it lands near 220 (exact value depends on the seeds).
	fmt.Printf("plausible: %v\n", merged.Global > 150 && merged.Global < 300)
	// Output:
	// plausible: true
}
