package rept_test

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rept"
	"rept/internal/gen"
)

// TestViewMatchesSnapshotAtSameEpoch is the equivalence property: with
// ingest quiesced, a refreshed view must answer every query exactly as a
// barrier Snapshot at the same prefix does — the view layer adds bounded
// staleness, never a different answer.
func TestViewMatchesSnapshotAtSameEpoch(t *testing.T) {
	est, err := rept.NewConcurrent(rept.ConcurrentConfig{
		M: 4, C: 16, Shards: 2, Seed: 9, TrackLocal: true, TrackEta: true, TrackDegrees: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer est.Close()
	if _, err := est.StartViews(rept.ViewConfig{Interval: time.Hour, TopK: 25}); err != nil {
		t.Fatal(err)
	}

	est.AddAll(gen.Shuffle(gen.HolmeKim(800, 5, 0.4, 3), 11))
	v := est.Views().Refresh()
	snap := est.SnapshotNow()

	if v.Global != snap.Global {
		t.Errorf("view global %v != snapshot global %v", v.Global, snap.Global)
	}
	if v.EtaHat != snap.EtaHat {
		t.Errorf("view etaHat %v != snapshot etaHat %v", v.EtaHat, snap.EtaHat)
	}
	if v.Variance != snap.Variance && !(math.IsNaN(v.Variance) && math.IsNaN(snap.Variance)) {
		t.Errorf("view variance %v != snapshot variance %v", v.Variance, snap.Variance)
	}
	if !reflect.DeepEqual(v.Local, snap.Local) {
		t.Errorf("view local map (%d entries) differs from snapshot local map (%d entries)", len(v.Local), len(snap.Local))
	}
	if v.Processed != est.Processed() {
		t.Errorf("view processed %d != estimator processed %d", v.Processed, est.Processed())
	}
	// The precomputed ranking agrees with a scan of the snapshot map.
	for i, st := range v.Top(25) {
		if got, want := st.Local, snap.Local[st.Node]; got != want {
			t.Errorf("topK[%d] node %d local %v != snapshot %v", i, st.Node, got, want)
		}
		stronger := 0
		for n, l := range snap.Local {
			if l > st.Local || (l == st.Local && n < st.Node) {
				stronger++
			}
		}
		if stronger > i {
			t.Errorf("topK[%d] node %d is outranked by %d nodes in the snapshot", i, st.Node, stronger)
		}
	}
	// Accessors route through the same view.
	if est.Global() != v.Global {
		t.Errorf("Global() = %v, want view global %v", est.Global(), v.Global)
	}
	for n := range snap.Local {
		if est.Local(n) != snap.Local[n] {
			t.Fatalf("Local(%d) = %v, want %v", n, est.Local(n), snap.Local[n])
		}
	}
}

// TestViewCCMatchesExact checks the clustering coefficients end to end in
// exact mode (M=1): cc from the view equals 2·τ_v/(d·(d−1)) computed from
// exact counts and true degrees.
func TestViewCCMatchesExact(t *testing.T) {
	edges := gen.Shuffle(gen.HolmeKim(300, 4, 0.5, 8), 2)
	exact := rept.ExactCount(edges, rept.ExactOptions{Local: true})

	est, err := rept.NewConcurrent(rept.ConcurrentConfig{M: 1, C: 1, Seed: 1, TrackLocal: true, TrackDegrees: true})
	if err != nil {
		t.Fatal(err)
	}
	defer est.Close()
	if _, err := est.StartViews(rept.ViewConfig{Interval: time.Hour}); err != nil {
		t.Fatal(err)
	}
	est.AddAll(edges)
	v := est.Views().Refresh()

	deg := make(map[rept.NodeID]int)
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	checked := 0
	for n, d := range deg {
		cc, ok := v.CC(n)
		if d < 2 {
			if ok {
				t.Errorf("cc(%d) defined with degree %d", n, d)
			}
			continue
		}
		want := 2 * float64(exact.TauV[n]) / (float64(d) * float64(d-1))
		if !ok || cc != want {
			t.Errorf("cc(%d) = %v,%v, want %v", n, cc, ok, want)
		}
		checked++
	}
	if checked < 100 {
		t.Fatalf("only %d nodes checked, generator produced a degenerate stream", checked)
	}
}

// TestReadersNeverBlockWhileIngestSaturated is the non-blocking-readers
// race test: with producers saturating ingest, a large burst of view
// reads must finish promptly (they are atomic pointer loads), while
// epochs keep advancing underneath. Run under -race this also proves the
// view hand-off is properly synchronized.
func TestReadersNeverBlockWhileIngestSaturated(t *testing.T) {
	est, err := rept.NewConcurrent(rept.ConcurrentConfig{
		M: 4, C: 16, Shards: 2, Seed: 5, TrackLocal: true, TrackDegrees: true, BatchSize: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer est.Close()
	views, err := est.StartViews(rept.ViewConfig{Interval: 5 * time.Millisecond, TopK: 10})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			chunk := gen.Shuffle(gen.HolmeKim(400, 4, 0.3, seed), seed)
			for {
				select {
				case <-stop:
					return
				default:
					est.AddAll(chunk)
				}
			}
		}(uint64(p + 1))
	}

	firstEpoch := views.View().Epoch
	const readers, reads = 8, 50_000
	var total atomic.Uint64
	var rg sync.WaitGroup
	start := time.Now()
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func(id rept.NodeID) {
			defer rg.Done()
			var sum float64
			for i := 0; i < reads; i++ {
				v := views.View()
				sum += v.Global + v.LocalOf(id+rept.NodeID(i%1000))
				if cc, ok := v.CC(id); ok {
					sum += cc
				}
			}
			_ = sum
			total.Add(reads)
		}(rept.NodeID(r))
	}
	rg.Wait()
	elapsed := time.Since(start)

	if total.Load() != readers*reads {
		t.Fatalf("readers completed %d reads, want %d", total.Load(), readers*reads)
	}
	// 400k view reads are sub-second even on a loaded CI box; a minute
	// means readers blocked on ingest.
	if elapsed > time.Minute {
		t.Errorf("readers took %v under saturated ingest — the read path is blocking", elapsed)
	}
	// With ingest still saturated, the publisher must keep landing
	// epochs (readers often drain their loop faster than one interval,
	// so wait for the advance rather than sampling instantly).
	advance := time.Now().Add(10 * time.Second)
	for views.View().Epoch == firstEpoch && time.Now().Before(advance) {
		time.Sleep(time.Millisecond)
	}
	epochAdvanced := views.View().Epoch > firstEpoch
	close(stop)
	wg.Wait()
	if !epochAdvanced {
		t.Errorf("epoch stuck at %d while ingest ran — publisher starved", firstEpoch)
	}
}

// TestViewStalenessBound: the published view's age must stay within the
// configured interval plus slack (poll granularity + one barrier + CI
// noise), and once ingest quiesces the view must converge to the full
// stream prefix within the same bound.
func TestViewStalenessBound(t *testing.T) {
	const interval = 25 * time.Millisecond
	// Generous CI slack; the bound still catches a publisher stuck on a
	// barrier or ticking at the wrong rate.
	const slack = 2 * time.Second

	est, err := rept.NewConcurrent(rept.ConcurrentConfig{M: 4, C: 8, Seed: 3, TrackLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	defer est.Close()
	if _, err := est.StartViews(rept.ViewConfig{Interval: interval}); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		chunk := gen.ErdosRenyi(500, 4000, 7)
		for {
			select {
			case <-stop:
				return
			default:
				est.AddAll(chunk)
			}
		}
	}()

	deadline := time.Now().Add(3 * time.Second)
	var maxAge time.Duration
	for time.Now().Before(deadline) {
		if age := est.View().Age(); age > maxAge {
			maxAge = age
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if maxAge > interval+slack {
		t.Errorf("view age reached %v, bound is interval %v + slack %v", maxAge, interval, slack)
	}

	// Convergence after quiescence: the next epochs must catch up to the
	// final prefix without any Refresh.
	final := est.Processed()
	catchup := time.Now().Add(interval + slack)
	for est.View().Processed != final && time.Now().Before(catchup) {
		time.Sleep(time.Millisecond)
	}
	if got := est.View().Processed; got != final {
		t.Errorf("view stuck at processed %d, want %d after quiescence", got, final)
	}
}

// TestStartViewsLifecycle covers the API edges: double start errors, View
// before StartViews is nil, accessors fall back to barriers before views,
// and the last view outlives Close.
func TestStartViewsLifecycle(t *testing.T) {
	est, err := rept.NewConcurrent(rept.ConcurrentConfig{M: 2, C: 4, Seed: 1, TrackLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	if est.View() != nil || est.Views() != nil {
		t.Error("View/Views non-nil before StartViews")
	}
	est.Add(1, 2)
	if got := est.Global(); got != est.SnapshotNow().Global {
		t.Errorf("barrier-path Global() = %v, want snapshot value", got)
	}

	views, err := est.StartViews(rept.ViewConfig{Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.StartViews(rept.ViewConfig{}); err == nil {
		t.Error("second StartViews succeeded")
	}
	if est.Views() != views || est.View() == nil {
		t.Error("Views/View do not expose the started publisher")
	}

	est.Add(2, 3)
	est.Add(1, 3)
	v := views.Refresh()
	if v.Processed != 3 || v.Epoch < 2 {
		t.Errorf("refreshed view = processed %d epoch %d, want 3 and >= 2", v.Processed, v.Epoch)
	}
	est.Close()
	if got := est.View(); got == nil || got.Epoch != v.Epoch {
		t.Error("last view not readable after Close")
	}
}

// TestConcurrentSnapshotRoundTripWithDegrees: checkpoints carry the
// degree table, and TrackDegrees is part of the restore contract in both
// directions.
func TestConcurrentSnapshotRoundTripWithDegrees(t *testing.T) {
	cfg := rept.ConcurrentConfig{M: 3, C: 9, Shards: 2, Seed: 4, TrackLocal: true, TrackDegrees: true}
	est, err := rept.NewConcurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	edges := gen.Shuffle(gen.HolmeKim(200, 4, 0.3, 6), 9)
	est.AddAll(edges)

	var buf bytes.Buffer
	if err := est.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	est.Close()

	restored, err := rept.ResumeConcurrent(cfg, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if _, err := restored.StartViews(rept.ViewConfig{Interval: time.Hour}); err != nil {
		t.Fatal(err)
	}
	v := restored.Views().Refresh()
	if v.Degrees == nil {
		t.Fatal("restored view has no degree table")
	}
	deg := make(map[rept.NodeID]uint32)
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	if !reflect.DeepEqual(v.Degrees, deg) {
		t.Errorf("restored degree table has %d entries and differs from the stream's (%d entries)", len(v.Degrees), len(deg))
	}

	// Mismatch both ways.
	noDeg := cfg
	noDeg.TrackDegrees = false
	if _, err := rept.ResumeConcurrent(noDeg, bytes.NewReader(buf.Bytes())); !errors.Is(err, rept.ErrSnapshotMismatch) {
		t.Errorf("restore with TrackDegrees off: err = %v, want ErrSnapshotMismatch", err)
	}
	plain, err := rept.NewConcurrent(noDeg)
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := plain.WriteSnapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	plain.Close()
	if _, err := rept.ResumeConcurrent(cfg, bytes.NewReader(buf2.Bytes())); !errors.Is(err, rept.ErrSnapshotMismatch) {
		t.Errorf("restore degree-less snapshot with TrackDegrees on: err = %v, want ErrSnapshotMismatch", err)
	}
}
