package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"rept/internal/graph"
)

func TestGenModels(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{"-model", "er", "-n", "50", "-edges", "100"},
		{"-model", "ba", "-n", "50", "-k", "3"},
		{"-model", "holmekim", "-n", "50", "-k", "3", "-pt", "0.5"},
		{"-model", "ws", "-n", "50", "-k", "3", "-beta", "0.2"},
		{"-model", "cohub", "-n", "50", "-pairs", "2", "-followers", "10"},
	}
	for i, args := range cases {
		path := filepath.Join(dir, "out.txt")
		var out, errOut bytes.Buffer
		if err := run(append(args, "-out", path), &out, &errOut); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		edges, err := graph.ReadEdgeListFile(path, graph.ReadOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(edges) == 0 {
			t.Errorf("case %d: empty output", i)
		}
	}
}

func TestGenDatasetToStdout(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-dataset", "sim-youtube", "-scale", "0.05"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	edges, err := graph.ReadEdgeList(strings.NewReader(out.String()), graph.ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) < 100 {
		t.Errorf("only %d edges generated", len(edges))
	}
}

func TestGenList(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-list"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sim-twitter") {
		t.Errorf("list output missing datasets: %q", out.String())
	}
}

func TestGenErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(nil, &out, &errOut); err == nil {
		t.Error("no model/dataset: got nil error")
	}
	if err := run([]string{"-model", "bogus"}, &out, &errOut); err == nil {
		t.Error("unknown model: got nil error")
	}
	if err := run([]string{"-model", "er", "-n", "50"}, &out, &errOut); err == nil {
		t.Error("er without -edges: got nil error")
	}
	if err := run([]string{"-dataset", "bogus"}, &out, &errOut); err == nil {
		t.Error("unknown dataset: got nil error")
	}
}
