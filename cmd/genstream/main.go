// Command genstream generates synthetic graph streams: either one of the
// named dataset analogs from the experiment registry, or a raw model with
// explicit parameters.
//
// Usage:
//
//	genstream -dataset sim-flickr -scale 0.5 -out flickr.txt
//	genstream -model holmekim -n 10000 -k 8 -pt 0.5 -seed 7 -out hk.txt
//	genstream -model er -n 1000 -edges 5000 -out er.txt
//	genstream -model cohub -n 1000 -pairs 3 -followers 200 -out hubs.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rept/internal/exper"
	"rept/internal/gen"
	"rept/internal/graph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "genstream:", err)
		os.Exit(1)
	}
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("genstream", flag.ContinueOnError)
	var (
		dataset   = fs.String("dataset", "", "named dataset analog (one of the registry names)")
		scale     = fs.Float64("scale", 1.0, "dataset scale factor")
		model     = fs.String("model", "", "raw model: er|ba|holmekim|ws|cohub")
		n         = fs.Int("n", 1000, "nodes")
		k         = fs.Int("k", 4, "edges per node (ba/holmekim/ws)")
		edges     = fs.Int("edges", 0, "edge count (er)")
		pt        = fs.Float64("pt", 0.5, "triad-formation probability (holmekim)")
		beta      = fs.Float64("beta", 0.1, "rewiring probability (ws)")
		pairs     = fs.Int("pairs", 2, "hub pairs (cohub)")
		followers = fs.Int("followers", 100, "followers per hub pair (cohub)")
		seed      = fs.Uint64("seed", 1, "generator seed")
		shuffle   = fs.Bool("shuffle", true, "shuffle stream order")
		out2      = fs.String("out", "", "output path (default stdout)")
		list      = fs.Bool("list", false, "list registry datasets and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, s := range exper.Registry {
			fmt.Fprintf(out, "%-16s %-12s %s\n", s.Name, s.PaperRef, s.Desc)
		}
		return nil
	}

	var stream []graph.Edge
	switch {
	case *dataset != "":
		d, err := exper.Load(*dataset, *scale)
		if err != nil {
			return err
		}
		stream = d.Edges
	case *model != "":
		switch *model {
		case "er":
			if *edges <= 0 {
				return fmt.Errorf("er model needs -edges > 0")
			}
			stream = gen.ErdosRenyi(*n, *edges, *seed)
		case "ba":
			stream = gen.BarabasiAlbert(*n, *k, *seed)
		case "holmekim":
			stream = gen.HolmeKim(*n, *k, *pt, *seed)
		case "ws":
			stream = gen.WattsStrogatz(*n, *k, *beta, *seed)
		case "cohub":
			stream = gen.CoHubOverlay(*n, *pairs, *followers, graph.NodeID(*n), *seed)
		default:
			return fmt.Errorf("unknown -model %q", *model)
		}
		if *shuffle {
			stream = gen.Shuffle(stream, *seed^0xabcd)
		}
	default:
		fs.Usage()
		return fmt.Errorf("need -dataset or -model")
	}

	if *out2 == "" {
		return graph.WriteEdgeList(out, stream)
	}
	if err := graph.WriteEdgeListFile(*out2, stream); err != nil {
		return err
	}
	fmt.Fprintf(errOut, "wrote %d edges to %s\n", len(stream), *out2)
	return nil
}
